/**
 * @file
 * rrsim — command-line driver for the RelaxReplay platform.
 *
 *   rrsim list
 *       List the bundled workloads.
 *   rrsim record <kernel> [--cores N] [--scale S] [--mode base|opt]
 *                [--interval CAP|inf] [--deps] [--out FILE.rrlog]
 *       Record a kernel; print recording statistics; with --out,
 *       stream the log to a persistent .rrlog container as intervals
 *       close (rnr::LogWriter; inspect it with the rrlog tool).
 *   rrsim replay <kernel|FILE.rrlog> [--cores N] [--scale S]
 *                [--mode ...] [--interval ...] [--parallel]
 *                [--parallel-replay] [--jobs N]
 *       With a kernel name: record, then replay in-process and verify
 *       determinism. With a .rrlog file: load the recording from disk
 *       in this (separate) process, rebuild the workload from the
 *       file's metadata, replay, and verify the replayed load-value
 *       hashes and instruction counts against the recorded summary.
 *       --parallel replays the dependency DAG's schedule order on one
 *       thread; --parallel-replay (or --jobs N) runs the real
 *       multi-threaded engine (rnr::ParallelReplayer) and reports
 *       measured wall-clock speedup over the sequential replayer.
 *   rrsim inspect <kernel> [...]
 *       Record and dump the first intervals of core 0's log.
 *   rrsim sweep <kernel|all> [--cores N] [--scale S] [--jobs J]
 *       Record one kernel (or the whole suite) under all four paper
 *       policies concurrently on J host threads via sim::SweepRunner,
 *       and report per-kernel log stats plus wall-clock and
 *       simulated-instruction throughput (self-timing mode).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "rnr/logstore.hh"
#include "rnr/parallel_replayer.hh"
#include "rnr/parallel_schedule.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"
#include "sim/faultinject.hh"
#include "sim/sweep.hh"
#include "sim/trace.hh"
#include "workloads/kernels.hh"

using namespace rr;

namespace
{

struct Options
{
    std::string command;
    std::string kernel;
    std::uint32_t cores = 8;
    std::uint64_t scale = 1;
    sim::RecorderMode mode = sim::RecorderMode::Opt;
    std::uint64_t interval = 0; // INF
    bool deps = false;
    bool parallel = false;
    bool parallelReplay = false; // multi-threaded replay engine
    std::uint32_t jobs = 0; // sweep/replay worker threads; 0 = all cores
    std::string outFile;
    std::string traceFile;
    std::string statsJson;
    std::string faults;          // --faults fault-plan spec
    std::uint64_t chunkBytes = 0; // --chunk-bytes; 0 = format default
    bool allowPartial = false;   // replay: accept partial/torn files
    rnr::IngestMode ingest = rnr::IngestMode::Auto; // --ingest
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: rrsim <list|record|replay|inspect|sweep> [kernel] "
        "[options]\n"
        "  --cores N        cores/threads (default 8)\n"
        "  --scale S        problem-size multiplier (default 1)\n"
        "  --mode base|opt  recorder design (default opt)\n"
        "  --interval N|inf max interval size (default inf)\n"
        "  --deps           record dependency edges (parallel replay)\n"
        "  --parallel       replay in dependency-DAG order "
        "(single-threaded)\n"
        "  --parallel-replay  replay on the multi-threaded engine and "
        "report measured speedup\n"
        "  --jobs J         worker threads: sweep recordings, or the "
        "replay engine\n"
        "                   (replay: implies --parallel-replay; "
        "default: all host cores)\n"
        "  --out FILE       stream the recording to FILE.rrlog "
        "(record)\n"
        "  --trace FILE     write a Chrome-trace-format event trace "
        "(also: env RR_TRACE)\n"
        "  --stats-json FILE  export simulator statistics as JSON\n"
        "  --faults SPEC    inject faults per the comma-separated plan "
        "(also: env RR_FAULTS;\n"
        "                   see docs/ROBUSTNESS.md for the grammar)\n"
        "  --chunk-bytes N  .rrlog chunk flush threshold (record; "
        "default 64 KiB)\n"
        "  --allow-partial  replay: salvage and replay the consistent "
        "prefix of a\n"
        "                   partial or torn .rrlog instead of refusing "
        "it\n"
        "  --ingest MODE    .rrlog read path: auto (default; mmap with "
        "streamed\n"
        "                   fallback), mmap (zero-copy, required), or "
        "stream\n"
        "sweep takes a kernel name or 'all' for the whole suite.\n"
        "flags may appear before or after the command.\n");
    std::exit(2);
}

std::uint64_t
parseNum(const std::string &text)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        usage();
    return std::strtoull(text.c_str(), nullptr, 10);
}

Options
parse(int argc, char **argv)
{
    Options o;
    // Normalize "--flag=value" into "--flag value" so every option
    // accepts both spellings.
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
            args.push_back(arg.substr(0, eq));
            args.push_back(arg.substr(eq + 1));
        } else {
            args.push_back(arg);
        }
    }
    std::vector<std::string> positional;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string arg = args[i];
        auto next = [&]() -> std::string {
            if (++i >= args.size())
                usage();
            return args[i];
        };
        if (arg.rfind("--", 0) != 0) {
            positional.push_back(arg);
        } else if (arg == "--trace") {
            o.traceFile = next();
        } else if (arg == "--stats-json") {
            o.statsJson = next();
        } else if (arg == "--cores") {
            o.cores = static_cast<std::uint32_t>(parseNum(next()));
        } else if (arg == "--scale") {
            o.scale = parseNum(next());
        } else if (arg == "--mode") {
            const std::string m = next();
            if (m == "base")
                o.mode = sim::RecorderMode::Base;
            else if (m == "opt")
                o.mode = sim::RecorderMode::Opt;
            else
                usage();
        } else if (arg == "--interval") {
            const std::string v = next();
            o.interval = v == "inf" ? 0 : parseNum(v);
        } else if (arg == "--deps") {
            o.deps = true;
        } else if (arg == "--parallel") {
            o.parallel = true;
            o.deps = true;
        } else if (arg == "--parallel-replay") {
            o.parallelReplay = true;
            o.deps = true;
        } else if (arg == "--jobs") {
            o.jobs = static_cast<std::uint32_t>(parseNum(next()));
        } else if (arg == "--out") {
            o.outFile = next();
        } else if (arg == "--faults") {
            o.faults = next();
        } else if (arg == "--chunk-bytes") {
            o.chunkBytes = parseNum(next());
        } else if (arg == "--allow-partial") {
            o.allowPartial = true;
        } else if (arg == "--ingest") {
            const std::string m = next();
            if (m == "auto")
                o.ingest = rnr::IngestMode::Auto;
            else if (m == "mmap")
                o.ingest = rnr::IngestMode::Mmap;
            else if (m == "stream")
                o.ingest = rnr::IngestMode::Streamed;
            else
                usage();
        } else {
            usage();
        }
    }
    if (positional.empty())
        usage();
    o.command = positional[0];
    if (o.command == "list") {
        if (positional.size() > 1)
            usage();
    } else {
        if (positional.size() != 2)
            usage();
        o.kernel = positional[1];
    }
    return o;
}

/** Export @p sets as JSON to @p path (the --stats-json flag). */
bool
writeStatsFile(const std::string &path,
               const std::vector<const sim::StatSet *> &sets)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return false;
    }
    sim::writeStatsJson(out, sets);
    std::printf("stats saved     %s\n", path.c_str());
    return true;
}

bool
maybeExportStats(const Options &o, machine::Machine &m,
                 std::vector<const sim::StatSet *> extra = {})
{
    if (o.statsJson.empty())
        return true;
    std::vector<const sim::StatSet *> sets;
    m.collectStats(sets);
    sets.insert(sets.end(), extra.begin(), extra.end());
    return writeStatsFile(o.statsJson, sets);
}

struct Run
{
    workloads::Workload workload;
    std::unique_ptr<machine::Machine> machine;
    mem::BackingStore initial;
    machine::RecordingResult rec;
};

/** The .rrlog metadata describing a recording with these options. */
rnr::RecordingMeta
metaFor(const Options &o)
{
    const workloads::WorkloadParams wp; // source of the seed defaults
    const sim::MachineConfig cfg;
    rnr::RecordingMeta meta;
    meta.kernel = o.kernel;
    meta.cores = o.cores;
    meta.scale = o.scale;
    meta.intensity = wp.intensity;
    meta.workloadSeed = wp.seed;
    meta.machineSeed = cfg.seed;
    meta.mode = o.mode;
    meta.intervalCap = o.interval;
    meta.deps = o.deps;
    return meta;
}

/** The replay-verification targets of a finished recording. */
rnr::RecordingSummary
summaryOf(const machine::RecordingResult &rec,
          std::size_t policy = 0)
{
    rnr::RecordingSummary s;
    s.totalInstructions = rec.totalInstructions;
    s.cycles = rec.cycles;
    s.memoryFingerprint = rec.memoryFingerprint;
    for (std::size_t c = 0; c < rec.cores.size(); ++c) {
        rnr::CoreReplaySummary core;
        core.intervals = rec.logs[policy][c].intervals.size();
        core.retiredInstructions = rec.cores[c].retiredInstructions;
        core.retiredLoads = rec.cores[c].retiredLoads;
        core.loadValueHash = rec.cores[c].loadValueHash;
        s.cores.push_back(core);
    }
    return s;
}

/** @param writer When set, streams policy 0's intervals during the run. */
Run
record(const Options &o, rnr::LogWriter *writer = nullptr)
{
    workloads::WorkloadParams wp;
    wp.numThreads = o.cores;
    wp.scale = o.scale;
    Run run;
    run.workload = workloads::buildKernel(o.kernel, wp);

    sim::MachineConfig cfg;
    cfg.numCores = o.cores;
    std::vector<sim::RecorderConfig> policies(1);
    policies[0].mode = o.mode;
    policies[0].maxIntervalInstructions = o.interval;
    policies[0].recordDependencies = o.deps;

    run.machine = std::make_unique<machine::Machine>(
        cfg, run.workload.program, policies);
    if (writer) {
        run.machine->setIntervalSink(
            0, [writer](sim::CoreId core, const rnr::IntervalRecord &iv) {
                writer->append(core, iv);
            });
    }
    run.initial = run.machine->initialMemory();
    run.rec = run.machine->run();
    return run;
}

void
printRecordingStats(const Run &run, const Options &o)
{
    rnr::LogStats stats;
    for (const auto &log : run.rec.logs[0])
        stats.accumulate(log);
    std::printf("kernel          %s (scale %llu, %u cores)\n",
                o.kernel.c_str(), (unsigned long long)o.scale, o.cores);
    std::printf("recorder        RelaxReplay_%s, interval cap %s%s\n",
                sim::toString(o.mode),
                o.interval ? std::to_string(o.interval).c_str() : "INF",
                o.deps ? ", dependency edges" : "");
    std::printf("instructions    %llu in %llu cycles (IPC/core %.2f)\n",
                (unsigned long long)run.rec.totalInstructions,
                (unsigned long long)run.rec.cycles,
                (double)run.rec.totalInstructions / run.rec.cycles /
                    o.cores);
    std::printf("intervals       %llu\n",
                (unsigned long long)stats.intervals);
    std::printf("reordered       %llu accesses (%.4f%% of all "
                "instructions)\n",
                (unsigned long long)stats.reordered(),
                100.0 * stats.reordered() /
                    std::max<std::uint64_t>(
                        1, stats.reordered() +
                               stats.inorderInstructions));
    std::printf("log size        %llu bits (%.1f bits/kinst, "
                "%.1f MB/s at 2GHz)\n",
                (unsigned long long)stats.totalBits,
                1000.0 * stats.totalBits / run.rec.totalInstructions,
                (double)stats.totalBits / run.rec.cycles * 2e9 / 8e6);
}

int
cmdRecord(const Options &o)
{
    std::unique_ptr<rnr::LogWriter> writer;
    if (!o.outFile.empty()) {
        rnr::WriterOptions wopts;
        if (o.chunkBytes != 0)
            wopts.chunkTargetBytes = o.chunkBytes;
        writer = std::make_unique<rnr::LogWriter>(o.outFile, metaFor(o),
                                                  wopts);
    }
    try {
        Run run = record(o, writer.get());
        printRecordingStats(run, o);
        std::vector<const sim::StatSet *> extra;
        if (writer) {
            writer->finish(summaryOf(run.rec));
            std::printf("log saved       %s (%llu bytes, %llu chunks%s)\n",
                        o.outFile.c_str(),
                        (unsigned long long)writer->bytesWritten(),
                        (unsigned long long)writer->stats().counterValue(
                            "chunks_written"),
                        (writer->headerFlags() & rnr::fmt::kFlagPartial)
                            ? ", PARTIAL: log budget reached"
                            : "");
            extra.push_back(&writer->stats());
        }
        if (sim::FaultInjector::enabled())
            extra.push_back(&sim::FaultInjector::get()->stats());
        return maybeExportStats(o, *run.machine, extra) ? 0 : 1;
    } catch (const rnr::LogStoreError &e) {
        // A planned crash-at fault firing is this run's expected
        // product: a torn staging file for `rrlog repair` to salvage.
        if (e.kind() == rnr::LogErrorKind::Crash && writer) {
            std::printf("injected crash  %s\n", e.what());
            std::printf("torn file       %s\n",
                        writer->currentPath().c_str());
            return 0;
        }
        throw;
    }
}

/**
 * Replay a .rrlog file in this (fresh) process: rebuild the workload
 * from the file's metadata, reconstruct and patch the per-core logs,
 * replay, and verify every per-core load-value hash and instruction
 * count plus the final memory image against the recorded summary.
 */
int
cmdReplayFile(const Options &o)
{
    rnr::LogReader reader(o.kernel, o.ingest);
    const rnr::RecordingMeta &meta = reader.meta();

    // Full verification (against the recorded summary) only makes sense
    // when the file holds the complete recording. With --allow-partial
    // we salvage the longest consistent prefix instead and verify that
    // it replays divergence-free.
    bool verify_full = true;
    rnr::RecordingSummary summary;
    std::vector<rnr::CoreLog> logs;
    if (o.allowPartial) {
        rnr::RecoveryResult rec = reader.recoverPrefix();
        const bool sound = rec.cleanEnd && rec.hasSummary &&
                           rec.issues.empty() && !reader.partial();
        logs = std::move(rec.logs);
        if (sound) {
            summary = rec.summary;
        } else {
            verify_full = false;
            const std::uint64_t cut =
                rnr::consistentCut(logs, rec.coreTruncated);
            std::uint64_t kept = 0;
            for (const auto &log : logs)
                kept += log.intervals.size();
            std::printf("salvage         %llu intervals from %llu "
                        "chunks (%llu chunks dropped); %llu replayable "
                        "after the consistent cut at ts %llu\n",
                        (unsigned long long)rec.salvagedIntervals,
                        (unsigned long long)rec.salvagedChunks,
                        (unsigned long long)rec.droppedChunks,
                        (unsigned long long)kept,
                        (unsigned long long)cut);
        }
    } else {
        if (reader.partial()) {
            std::fprintf(stderr,
                         "rrsim: %s is flagged as a partial recording; "
                         "replay it with --allow-partial\n",
                         o.kernel.c_str());
            return 1;
        }
        summary = reader.summary();
        // Chunk payloads decode concurrently (identical result and
        // errors to readAll); --jobs bounds the decode fan-out too.
        logs = reader.readAllParallel(o.jobs);
    }

    std::printf("log file        %s (format v%u, fingerprint %016llx%s)\n",
                o.kernel.c_str(), reader.version(),
                (unsigned long long)reader.fingerprint(),
                reader.partial() ? ", partial" : "");
    std::printf("recording       %s, %u cores, scale %llu, "
                "RelaxReplay_%s, interval cap %s%s\n",
                meta.kernel.c_str(), meta.cores,
                (unsigned long long)meta.scale, sim::toString(meta.mode),
                meta.intervalCap
                    ? std::to_string(meta.intervalCap).c_str()
                    : "INF",
                meta.deps ? ", dependency edges" : "");

    workloads::WorkloadParams wp;
    wp.numThreads = meta.cores;
    wp.scale = meta.scale;
    wp.intensity = meta.intensity;
    wp.seed = meta.workloadSeed;
    const auto w = workloads::buildKernel(meta.kernel, wp);

    // A fresh machine only to materialize the initial memory image the
    // recording started from (deterministic given program + config).
    sim::MachineConfig cfg;
    cfg.numCores = meta.cores;
    cfg.seed = meta.machineSeed;
    std::vector<sim::RecorderConfig> policies(1);
    policies[0].mode = meta.mode;
    machine::Machine m(cfg, w.program, policies);

    std::vector<rnr::CoreLog> patched;
    for (auto &log : logs)
        patched.push_back(rnr::patch(log));

    bool engine = o.parallelReplay || o.jobs > 0;
    if (engine && !meta.deps) {
        std::fprintf(stderr,
                     "%s was recorded without dependency edges; "
                     "replaying sequentially\n",
                     o.kernel.c_str());
        engine = false;
    }

    std::vector<rnr::Replayer::OrderItem> order;
    if (!engine && o.parallel && meta.deps) {
        const auto sched = rnr::buildParallelSchedule(patched);
        for (const auto &node : sched.order)
            order.push_back({node.core, node.index});
    } else if (!engine && o.parallel) {
        std::fprintf(stderr,
                     "%s was recorded without dependency edges; "
                     "replaying sequentially\n",
                     o.kernel.c_str());
    }

    std::vector<std::uint64_t> hashes(meta.cores, 0);
    std::vector<std::uint64_t> load_counts(meta.cores, 0);
    const auto hook = [&](sim::CoreId c, std::uint64_t v) {
        hashes[c] = machine::mixLoadValue(hashes[c], v);
        ++load_counts[c];
    };

    rnr::ReplayResult res;
    try {
        if (engine) {
            rnr::ParallelReplayOptions popts;
            popts.workers = o.jobs;
            rnr::ParallelReplayer rep(w.program, std::move(patched),
                                      m.initialMemory().clone(), popts);
            rep.setLoadHook(hook);
            res = rep.run();
            std::printf("parallel engine %u workers, %.1f ms replay "
                        "wall clock, measured speedup %.2fx\n",
                        res.workers, res.wallSeconds * 1e3,
                        res.measuredSpanSeconds > 0.0
                            ? res.measuredSerialSeconds /
                                  res.measuredSpanSeconds
                            : 1.0);
        } else {
            rnr::Replayer rep(w.program, std::move(patched),
                              m.initialMemory().clone());
            rep.setLoadHook(hook);
            res = order.empty() ? rep.run() : rep.runInOrder(order);
        }
    } catch (const rnr::ReplayDivergence &d) {
        std::fprintf(stderr,
                     "replay of %s diverged at core %u, interval %u:\n%s\n",
                     o.kernel.c_str(), d.report().core,
                     d.report().intervalIndex,
                     d.report().format().c_str());
        return 1;
    }

    if (!verify_full) {
        // A consistent prefix carries no end-state targets to check
        // against; success is the replay completing divergence-free.
        std::printf("partial replay  OK (%llu instructions replayed "
                    "divergence-free)\n",
                    (unsigned long long)res.instructions);
        return 0;
    }

    bool ok = res.memory.fingerprint() == summary.memoryFingerprint &&
              res.instructions == summary.totalInstructions;
    for (sim::CoreId c = 0; c < meta.cores; ++c) {
        const auto &cs = summary.cores[c];
        if (hashes[c] != cs.loadValueHash ||
            load_counts[c] != cs.retiredLoads ||
            res.contexts[c].instructions != cs.retiredInstructions) {
            std::fprintf(stderr,
                         "core %u mismatch: load hash %016llx/%016llx, "
                         "loads %llu/%llu, instructions %llu/%llu "
                         "(replayed/recorded)\n",
                         c, (unsigned long long)hashes[c],
                         (unsigned long long)cs.loadValueHash,
                         (unsigned long long)load_counts[c],
                         (unsigned long long)cs.retiredLoads,
                         (unsigned long long)
                             res.contexts[c].instructions,
                         (unsigned long long)cs.retiredInstructions);
            ok = false;
        }
    }
    std::printf("determinism     %s (%llu instructions replayed "
                "from disk)\n",
                ok ? "OK" : "MISMATCH",
                (unsigned long long)res.instructions);
    return ok ? 0 : 1;
}

bool
looksLikeLogFile(const std::string &name)
{
    const std::string suffix = ".rrlog";
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(),
                     suffix) == 0)
        return true;
    std::ifstream probe(name, std::ios::binary);
    return probe.good();
}

/**
 * Replay @p patched on the multi-threaded engine AND the sequential
 * replayer, verify both against the recording (and each other), and
 * report the measured wall-clock speedup next to the cost model's
 * bound.
 */
int
runEngineReplay(const Options &o, Run &run,
                const std::vector<rnr::CoreLog> &patched)
{
    auto verify = [&](const rnr::ReplayResult &res,
                      const std::vector<std::uint64_t> &hashes) {
        bool ok =
            res.memory.fingerprint() == run.rec.memoryFingerprint &&
            res.instructions == run.rec.totalInstructions;
        for (sim::CoreId c = 0; c < o.cores && ok; ++c)
            ok = hashes[c] == run.rec.cores[c].loadValueHash;
        return ok;
    };
    auto hashing = [](std::vector<std::uint64_t> &hashes) {
        return [&hashes](sim::CoreId c, std::uint64_t v) {
            hashes[c] = machine::mixLoadValue(hashes[c], v);
        };
    };

    rnr::Replayer seq(run.workload.program, patched,
                      run.initial.clone());
    std::vector<std::uint64_t> seq_hashes(o.cores, 0);
    seq.setLoadHook(hashing(seq_hashes));
    const rnr::ReplayResult seq_res = seq.run();

    rnr::ParallelReplayOptions popts;
    popts.workers = o.jobs;
    rnr::ParallelReplayer par(run.workload.program, patched,
                              run.initial.clone(), popts);
    std::vector<std::uint64_t> par_hashes(o.cores, 0);
    par.setLoadHook(hashing(par_hashes));
    const rnr::ReplayResult par_res = par.run();

    const auto sched = rnr::buildParallelSchedule(patched);
    std::printf("parallel engine %u workers: %.1f ms wall (%.1f ms "
                "sequential), %llu dependency edges\n",
                par_res.workers, par_res.wallSeconds * 1e3,
                seq_res.wallSeconds * 1e3,
                (unsigned long long)sched.edges);
    std::printf("measured speedup %.2fx on %u workers (%.2f ms serial "
                "work in a %.2f ms schedule; modelled bound %.2fx)\n",
                par_res.measuredSpanSeconds > 0.0
                    ? par_res.measuredSerialSeconds /
                          par_res.measuredSpanSeconds
                    : 1.0,
                par_res.workers,
                par_res.measuredSerialSeconds * 1e3,
                par_res.measuredSpanSeconds * 1e3, sched.speedup());
    const auto &scalars = par_res.engineStats.scalars();
    const auto util = scalars.find("utilization");
    std::printf("utilization     %.0f%% mean worker busy over the "
                "replay wall clock\n",
                util == scalars.end() ? 0.0
                                      : 100.0 * util->second.mean());

    const bool ok = verify(seq_res, seq_hashes) &&
                    verify(par_res, par_hashes) &&
                    par_res.cost.total() == seq_res.cost.total();
    std::printf("determinism     %s (%llu instructions replayed on "
                "both engines)\n",
                ok ? "OK" : "MISMATCH",
                (unsigned long long)par_res.instructions);
    if (!maybeExportStats(o, *run.machine, {&par_res.engineStats}))
        return 1;
    return ok ? 0 : 1;
}

int
cmdReplay(const Options &o)
{
    if (looksLikeLogFile(o.kernel))
        return cmdReplayFile(o);
    Options ro = o;
    if (ro.parallelReplay || ro.jobs > 0) {
        ro.parallelReplay = true; // --jobs N implies the engine
        ro.deps = true;           // the engine needs the DAG
    }
    Run run = record(ro);
    printRecordingStats(run, ro);

    std::vector<rnr::CoreLog> patched;
    for (const auto &log : run.rec.logs[0])
        patched.push_back(rnr::patch(log));

    if (ro.parallelReplay)
        return runEngineReplay(ro, run, patched);

    rnr::Replayer rep(run.workload.program, patched,
                      run.initial.clone());
    rnr::ReplayResult res;
    if (o.parallel) {
        const auto sched = rnr::buildParallelSchedule(patched);
        std::vector<rnr::Replayer::OrderItem> order;
        for (const auto &node : sched.order)
            order.push_back({node.core, node.index});
        res = rep.runInOrder(order);
        std::printf("parallel replay %llu-cycle makespan, speedup "
                    "%.2fx over sequential (%llu edges)\n",
                    (unsigned long long)sched.makespan, sched.speedup(),
                    (unsigned long long)sched.edges);
    } else {
        res = rep.run();
        std::printf("sequential replay estimate: %llu user + %llu os "
                    "cycles (%.1fx recording)\n",
                    (unsigned long long)res.cost.userCycles,
                    (unsigned long long)res.cost.osCycles,
                    (double)res.cost.total() / run.rec.cycles);
    }

    const bool ok =
        res.memory.fingerprint() == run.rec.memoryFingerprint &&
        res.instructions == run.rec.totalInstructions;
    std::printf("determinism     %s (%llu instructions replayed)\n",
                ok ? "OK" : "MISMATCH",
                (unsigned long long)res.instructions);
    if (!maybeExportStats(o, *run.machine))
        return 1;
    return ok ? 0 : 1;
}

int
cmdInspect(const Options &o)
{
    Run run = record(o);
    printRecordingStats(run, o);
    const auto &log = run.rec.logs[0][0];
    const std::size_t show = std::min<std::size_t>(8, log.intervals.size());
    std::printf("\nfirst %zu intervals of core 0:\n", show);
    for (std::size_t i = 0; i < show; ++i) {
        const auto &iv = log.intervals[i];
        std::printf("  interval %zu (ts %llu)", i,
                    (unsigned long long)iv.timestamp);
        for (const auto &d : iv.predecessors)
            std::printf(" [after core%u#%llu]", d.core,
                        (unsigned long long)d.isn);
        std::printf(":\n");
        for (const auto &e : iv.entries) {
            switch (e.kind) {
              case rnr::EntryKind::InorderBlock:
                std::printf("    InorderBlock    %llu instructions\n",
                            (unsigned long long)e.blockSize);
                break;
              case rnr::EntryKind::ReorderedLoad:
                std::printf("    ReorderedLoad   value=%llu\n",
                            (unsigned long long)e.loadValue);
                break;
              case rnr::EntryKind::ReorderedStore:
                std::printf("    ReorderedStore  addr=0x%llx value=%llu "
                            "offset=%u\n",
                            (unsigned long long)e.addr,
                            (unsigned long long)e.storeValue, e.offset);
                break;
              case rnr::EntryKind::ReorderedAtomic:
                std::printf("    ReorderedAtomic addr=0x%llx old=%llu "
                            "new=%llu offset=%u\n",
                            (unsigned long long)e.addr,
                            (unsigned long long)e.loadValue,
                            (unsigned long long)e.storeValue, e.offset);
                break;
              default:
                std::printf("    %s\n", rnr::toString(e.kind));
                break;
            }
        }
    }
    return maybeExportStats(o, *run.machine) ? 0 : 1;
}

int
cmdSweep(const Options &o)
{
    std::vector<std::string> kernels;
    if (o.kernel == "all")
        kernels = workloads::kernelNames();
    else
        kernels.push_back(o.kernel);

    // The paper's four evaluation policies, recorded simultaneously.
    std::vector<sim::RecorderConfig> pol(4);
    pol[0].mode = sim::RecorderMode::Base;
    pol[0].maxIntervalInstructions = 4096;
    pol[1].mode = sim::RecorderMode::Base;
    pol[1].maxIntervalInstructions = 0;
    pol[2].mode = sim::RecorderMode::Opt;
    pol[2].maxIntervalInstructions = 4096;
    pol[3].mode = sim::RecorderMode::Opt;
    pol[3].maxIntervalInstructions = 0;
    const char *pol_names[4] = {"Base-4K", "Base-INF", "Opt-4K",
                                "Opt-INF"};

    sim::SweepRunner runner(o.jobs);
    std::vector<machine::RecordingResult> recs(kernels.size());
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        runner.enqueue(kernels[i], [&, i] {
            workloads::WorkloadParams wp;
            wp.numThreads = o.cores;
            wp.scale = o.scale;
            const auto w = workloads::buildKernel(kernels[i], wp);
            sim::MachineConfig cfg;
            cfg.numCores = o.cores;
            machine::Machine m(cfg, w.program, pol);
            recs[i] = m.run(5'000'000'000ULL);
            runner.countInstructions(recs[i].totalInstructions);
            if (!o.statsJson.empty()) {
                std::vector<const sim::StatSet *> sets;
                m.collectStats(sets);
                for (const sim::StatSet *s : sets)
                    runner.accumulateStats(*s);
            }
        });
    }
    runner.run();

    std::printf("%-12s%12s%12s", "kernel", "instrs", "cycles");
    for (const char *name : pol_names)
        std::printf("%12s", name);
    std::printf("\n%48s (bits/kinst)\n", "");
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const auto &rec = recs[i];
        std::printf("%-12s%12llu%12llu", kernels[i].c_str(),
                    (unsigned long long)rec.totalInstructions,
                    (unsigned long long)rec.cycles);
        for (std::size_t p = 0; p < pol.size(); ++p) {
            rnr::LogStats stats;
            for (const auto &log : rec.logs[p])
                stats.accumulate(log);
            std::printf("%12.1f",
                        1000.0 * static_cast<double>(stats.totalBits) /
                            static_cast<double>(rec.totalInstructions));
        }
        std::printf("\n");
    }

    const sim::SweepStats &stats = runner.lastStats();
    std::printf("[sweep] %llu jobs on %u workers: %.2fs wall, "
                "%.1fM simulated instructions, %.2fM instr/s\n",
                (unsigned long long)stats.jobsRun, stats.workers,
                stats.wallSeconds,
                static_cast<double>(stats.totalInstructions) / 1e6,
                stats.instructionsPerSecond() / 1e6);
    if (!o.statsJson.empty() &&
        !writeStatsFile(o.statsJson, {&runner.aggregatedStats()}))
        return 1;
    return 0;
}

int
dispatch(const Options &o)
{
    if (o.command == "record")
        return cmdRecord(o);
    if (o.command == "replay")
        return cmdReplay(o);
    if (o.command == "inspect")
        return cmdInspect(o);
    if (o.command == "sweep")
        return cmdSweep(o);
    usage();
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);
    if (o.command == "list") {
        for (const auto &name : workloads::kernelNames())
            std::printf("%s\n", name.c_str());
        return 0;
    }

    if (!o.traceFile.empty())
        sim::TraceSink::open(o.traceFile);
    else
        sim::TraceSink::openFromEnv();

    if (!o.faults.empty()) {
        try {
            sim::FaultInjector::install(sim::FaultPlan::parse(o.faults));
        } catch (const std::invalid_argument &e) {
            std::fprintf(stderr, "rrsim: bad --faults spec: %s\n",
                         e.what());
            return 2;
        }
    } else {
        sim::FaultInjector::installFromEnv();
    }
    if (sim::FaultInjector::enabled() &&
        sim::FaultInjector::get()->plan().any())
        std::printf("fault plan      %s\n",
                    sim::FaultInjector::get()->plan().describe().c_str());

    int rc;
    try {
        rc = dispatch(o);
    } catch (const rnr::ReplayDivergence &d) {
        std::fprintf(stderr, "%s\n", d.report().format().c_str());
        rc = 1;
    } catch (const rnr::LogStoreError &e) {
        std::fprintf(stderr, "rrsim: %s\n", e.what());
        rc = e.kind() == rnr::LogErrorKind::Io ? 3 : 1;
    }
    sim::TraceSink::close();
    return rc;
}
