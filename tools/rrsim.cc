/**
 * @file
 * rrsim — command-line driver for the RelaxReplay platform.
 *
 *   rrsim list
 *       List the bundled workloads.
 *   rrsim record <kernel> [--cores N] [--scale S] [--mode base|opt]
 *                [--interval CAP|inf] [--deps] [--out FILE.rrlog]
 *       Record a kernel; print recording statistics; with --out,
 *       stream the log to a persistent .rrlog container as intervals
 *       close (rnr::LogWriter; inspect it with the rrlog tool).
 *   rrsim replay <kernel|FILE.rrlog> [--cores N] [--scale S]
 *                [--mode ...] [--interval ...] [--parallel]
 *                [--parallel-replay] [--jobs N]
 *       With a kernel name: record, then replay in-process and verify
 *       determinism. With a .rrlog file: load the recording from disk
 *       in this (separate) process, rebuild the workload from the
 *       file's metadata, replay, and verify the replayed load-value
 *       hashes and instruction counts against the recorded summary.
 *       --parallel replays the dependency DAG's schedule order on one
 *       thread; --parallel-replay (or --jobs N) runs the real
 *       multi-threaded engine (rnr::ParallelReplayer) and reports
 *       measured wall-clock speedup over the sequential replayer.
 *   rrsim inspect <kernel> [...]
 *       Record and dump the first intervals of core 0's log.
 *   rrsim sweep <kernel|all> [--cores N] [--scale S] [--jobs J]
 *       Record one kernel (or the whole suite) under all four paper
 *       policies concurrently on J host threads via sim::SweepRunner,
 *       and report per-kernel log stats plus wall-clock and
 *       simulated-instruction throughput (self-timing mode).
 *   rrsim serve [--socket PATH] [--tcp PORT] [--capacity N]
 *               [--quota N] [--exec-jobs N] [--timeout SEC]
 *               [--daemonize] [--pidfile FILE]
 *       Run the replay service daemon (svc::Server): a multi-tenant
 *       job queue over a Unix-domain (and optionally loopback TCP)
 *       socket speaking newline-delimited JSON. See docs/SERVICE.md.
 *   rrsim submit <record|replay|verify|stats> <kernel|FILE> [options]
 *   rrsim submit <ping|status|cancel|shutdown> [JOBID]
 *       Client for a running daemon: submit a job and stream its
 *       lifecycle events to stdout (exit code mirrors the one-shot
 *       commands), or poke the server.
 *
 * Exit codes (all subcommands, same convention as rrlog):
 *   0 success, 1 corrupt input / replay mismatch / job failed,
 *   2 usage error (including unknown kernels), 3 OS-level I/O error.
 */

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "machine/machine.hh"
#include "rnr/logstore.hh"
#include "rnr/parallel_replayer.hh"
#include "rnr/parallel_schedule.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"
#include "sim/faultinject.hh"
#include "sim/sweep.hh"
#include "sim/trace.hh"
#include "svc/client.hh"
#include "svc/server.hh"
#include "workloads/kernels.hh"

using namespace rr;

namespace
{

struct Options
{
    std::string command;
    std::string kernel;
    std::uint32_t cores = 8;
    std::uint64_t scale = 1;
    sim::RecorderMode mode = sim::RecorderMode::Opt;
    std::uint64_t interval = 0; // INF
    bool deps = false;
    sim::CoherenceKind coherence = sim::CoherenceKind::Snoopy;
    bool coherenceSet = false; // replay: explicit --coherence given
    bool parallel = false;
    bool parallelReplay = false; // multi-threaded replay engine
    std::uint32_t jobs = 0; // sweep/replay worker threads; 0 = all cores
    std::string outFile;
    std::string traceFile;
    std::string statsJson;
    std::string faults;          // --faults fault-plan spec
    std::uint64_t chunkBytes = 0; // --chunk-bytes; 0 = format default
    bool allowPartial = false;   // replay: accept partial/torn files
    rnr::IngestMode ingest = rnr::IngestMode::Auto; // --ingest

    // serve / submit (the replay service; see docs/SERVICE.md)
    std::string socketPath;      // --socket; default $RRSIM_SOCKET
    int tcpPort = 0;             // --tcp (serve: listen; submit: connect)
    std::uint64_t capacity = 1024; // --capacity: global queue bound
    std::uint64_t quota = 256;   // --quota: per-tenant queue bound
    std::uint32_t execJobs = 2;  // --exec-jobs: concurrent job slots
    double timeoutSec = 0.0;     // --timeout: per-job seconds (0 = off)
    bool daemonize = false;      // --daemonize: fork into background
    std::string pidfile;         // --pidfile: write daemon pid here
    std::string tenant = "default"; // --tenant
    std::uint64_t weight = 1;    // --weight: fair-share weight [1,100]
    std::string tag;             // --tag: correlation tag on events
    bool noWait = false;         // --no-wait: exit after acceptance
    bool noDrain = false;        // --no-drain: shutdown aborts jobs
    std::string submitOp;        // submit positional 1
    std::string submitTarget;    // submit positional 2
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: rrsim <list|record|replay|inspect|sweep|serve|submit> "
        "[kernel] [options]\n"
        "  --cores N        cores/threads (default 8)\n"
        "  --scale S        problem-size multiplier (default 1)\n"
        "  --mode base|opt  recorder design (default opt)\n"
        "  --interval N|inf max interval size (default inf)\n"
        "  --deps           record dependency edges (parallel replay)\n"
        "  --coherence K    coherence backend: snoopy (default) or "
        "directory\n"
        "                   (replay from .rrlog: must match the file's "
        "tag)\n"
        "  --parallel       replay in dependency-DAG order "
        "(single-threaded)\n"
        "  --parallel-replay  replay on the multi-threaded engine and "
        "report measured speedup\n"
        "  --jobs J         worker threads: sweep recordings, or the "
        "replay engine\n"
        "                   (replay: implies --parallel-replay; "
        "default: all host cores)\n"
        "  --out FILE       stream the recording to FILE.rrlog "
        "(record)\n"
        "  --trace FILE     write a Chrome-trace-format event trace "
        "(also: env RR_TRACE)\n"
        "  --stats-json FILE  export simulator statistics as JSON\n"
        "  --faults SPEC    inject faults per the comma-separated plan "
        "(also: env RR_FAULTS;\n"
        "                   see docs/ROBUSTNESS.md for the grammar)\n"
        "  --chunk-bytes N  .rrlog chunk flush threshold (record; "
        "default 64 KiB)\n"
        "  --allow-partial  replay: salvage and replay the consistent "
        "prefix of a\n"
        "                   partial or torn .rrlog instead of refusing "
        "it\n"
        "  --ingest MODE    .rrlog read path: auto (default; mmap with "
        "streamed\n"
        "                   fallback), mmap (zero-copy, required), or "
        "stream\n"
        "service (rrsim serve / rrsim submit; see docs/SERVICE.md):\n"
        "  --socket PATH    Unix socket (default $RRSIM_SOCKET or "
        "/tmp/rrsim.sock)\n"
        "  --tcp PORT       serve: also listen on 127.0.0.1:PORT; "
        "submit: connect there\n"
        "  --capacity N     serve: global queued-job bound (default "
        "1024)\n"
        "  --quota N        serve: per-tenant queued-job bound "
        "(default 256)\n"
        "  --exec-jobs N    serve: concurrently running jobs (default "
        "2)\n"
        "  --timeout SEC    serve: default per-job timeout; submit: "
        "this job's timeout\n"
        "  --daemonize      serve: fork into the background once "
        "listening\n"
        "  --pidfile FILE   serve: write the daemon pid to FILE\n"
        "  --tenant NAME    submit: tenant for quota/fair-share "
        "(default 'default')\n"
        "  --weight W       submit: tenant fair-share weight 1..100\n"
        "  --tag TAG        submit: correlation tag echoed on events\n"
        "  --no-wait        submit: exit once the job is accepted\n"
        "  --no-drain       submit shutdown: abort queued/running "
        "jobs\n"
        "sweep takes a kernel name or 'all' for the whole suite.\n"
        "flags may appear before or after the command.\n");
    std::exit(2);
}

std::uint64_t
parseNum(const std::string &text)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        usage();
    return std::strtoull(text.c_str(), nullptr, 10);
}

Options
parse(int argc, char **argv)
{
    Options o;
    // Normalize "--flag=value" into "--flag value" so every option
    // accepts both spellings.
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
            args.push_back(arg.substr(0, eq));
            args.push_back(arg.substr(eq + 1));
        } else {
            args.push_back(arg);
        }
    }
    std::vector<std::string> positional;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string arg = args[i];
        auto next = [&]() -> std::string {
            if (++i >= args.size())
                usage();
            return args[i];
        };
        if (arg.rfind("--", 0) != 0) {
            positional.push_back(arg);
        } else if (arg == "--trace") {
            o.traceFile = next();
        } else if (arg == "--stats-json") {
            o.statsJson = next();
        } else if (arg == "--cores") {
            o.cores = static_cast<std::uint32_t>(parseNum(next()));
        } else if (arg == "--scale") {
            o.scale = parseNum(next());
        } else if (arg == "--mode") {
            const std::string m = next();
            if (m == "base")
                o.mode = sim::RecorderMode::Base;
            else if (m == "opt")
                o.mode = sim::RecorderMode::Opt;
            else
                usage();
        } else if (arg == "--interval") {
            const std::string v = next();
            o.interval = v == "inf" ? 0 : parseNum(v);
        } else if (arg == "--coherence") {
            if (!sim::parseCoherenceKind(next(), o.coherence))
                usage();
            o.coherenceSet = true;
        } else if (arg == "--deps") {
            o.deps = true;
        } else if (arg == "--parallel") {
            o.parallel = true;
            o.deps = true;
        } else if (arg == "--parallel-replay") {
            o.parallelReplay = true;
            o.deps = true;
        } else if (arg == "--jobs") {
            o.jobs = static_cast<std::uint32_t>(parseNum(next()));
        } else if (arg == "--out") {
            o.outFile = next();
        } else if (arg == "--faults") {
            o.faults = next();
        } else if (arg == "--chunk-bytes") {
            o.chunkBytes = parseNum(next());
        } else if (arg == "--allow-partial") {
            o.allowPartial = true;
        } else if (arg == "--socket") {
            o.socketPath = next();
        } else if (arg == "--tcp") {
            o.tcpPort = static_cast<int>(parseNum(next()));
            if (o.tcpPort <= 0 || o.tcpPort > 65535)
                usage();
        } else if (arg == "--capacity") {
            o.capacity = parseNum(next());
        } else if (arg == "--quota") {
            o.quota = parseNum(next());
        } else if (arg == "--exec-jobs") {
            o.execJobs = static_cast<std::uint32_t>(parseNum(next()));
        } else if (arg == "--timeout") {
            const std::string v = next();
            char *end = nullptr;
            o.timeoutSec = std::strtod(v.c_str(), &end);
            if (v.empty() || (end && *end) || o.timeoutSec < 0.0)
                usage();
        } else if (arg == "--daemonize") {
            o.daemonize = true;
        } else if (arg == "--pidfile") {
            o.pidfile = next();
        } else if (arg == "--tenant") {
            o.tenant = next();
        } else if (arg == "--weight") {
            o.weight = parseNum(next());
        } else if (arg == "--tag") {
            o.tag = next();
        } else if (arg == "--no-wait") {
            o.noWait = true;
        } else if (arg == "--no-drain") {
            o.noDrain = true;
        } else if (arg == "--ingest") {
            const std::string m = next();
            if (m == "auto")
                o.ingest = rnr::IngestMode::Auto;
            else if (m == "mmap")
                o.ingest = rnr::IngestMode::Mmap;
            else if (m == "stream")
                o.ingest = rnr::IngestMode::Streamed;
            else
                usage();
        } else {
            usage();
        }
    }
    if (positional.empty())
        usage();
    o.command = positional[0];
    if (o.command == "list") {
        if (positional.size() > 1)
            usage();
    } else if (o.command == "serve") {
        if (positional.size() != 1)
            usage();
    } else if (o.command == "submit") {
        if (positional.size() < 2 || positional.size() > 3)
            usage();
        o.submitOp = positional[1];
        if (positional.size() == 3)
            o.submitTarget = positional[2];
        const bool needs_target =
            o.submitOp == "record" || o.submitOp == "replay" ||
            o.submitOp == "verify" || o.submitOp == "stats" ||
            o.submitOp == "cancel";
        const bool bare = o.submitOp == "ping" ||
                          o.submitOp == "status" ||
                          o.submitOp == "shutdown";
        if (!needs_target && !bare)
            usage();
        if (needs_target && o.submitTarget.empty())
            usage();
        if (bare && !o.submitTarget.empty())
            usage();
        if (o.submitOp == "cancel" &&
            o.submitTarget.find_first_not_of("0123456789") !=
                std::string::npos)
            usage();
    } else {
        if (positional.size() != 2)
            usage();
        o.kernel = positional[1];
    }
    return o;
}

/** Export @p sets as JSON to @p path (the --stats-json flag). */
bool
writeStatsFile(const std::string &path,
               const std::vector<const sim::StatSet *> &sets)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return false;
    }
    sim::writeStatsJson(out, sets);
    std::printf("stats saved     %s\n", path.c_str());
    return true;
}

bool
maybeExportStats(const Options &o, machine::Machine &m,
                 std::vector<const sim::StatSet *> extra = {})
{
    if (o.statsJson.empty())
        return true;
    std::vector<const sim::StatSet *> sets;
    m.collectStats(sets);
    sets.insert(sets.end(), extra.begin(), extra.end());
    return writeStatsFile(o.statsJson, sets);
}

struct Run
{
    workloads::Workload workload;
    std::unique_ptr<machine::Machine> machine;
    mem::BackingStore initial;
    machine::RecordingResult rec;
};

/** The .rrlog metadata describing a recording with these options. */
rnr::RecordingMeta
metaFor(const Options &o)
{
    const workloads::WorkloadParams wp; // source of the seed defaults
    const sim::MachineConfig cfg;
    rnr::RecordingMeta meta;
    meta.kernel = o.kernel;
    meta.cores = o.cores;
    meta.scale = o.scale;
    meta.intensity = wp.intensity;
    meta.workloadSeed = wp.seed;
    meta.machineSeed = cfg.seed;
    meta.mode = o.mode;
    meta.intervalCap = o.interval;
    meta.deps = o.deps;
    meta.coherence = o.coherence;
    return meta;
}

/** The replay-verification targets of a finished recording. */
rnr::RecordingSummary
summaryOf(const machine::RecordingResult &rec,
          std::size_t policy = 0)
{
    rnr::RecordingSummary s;
    s.totalInstructions = rec.totalInstructions;
    s.cycles = rec.cycles;
    s.memoryFingerprint = rec.memoryFingerprint;
    for (std::size_t c = 0; c < rec.cores.size(); ++c) {
        rnr::CoreReplaySummary core;
        core.intervals = rec.logs[policy][c].intervals.size();
        core.retiredInstructions = rec.cores[c].retiredInstructions;
        core.retiredLoads = rec.cores[c].retiredLoads;
        core.loadValueHash = rec.cores[c].loadValueHash;
        s.cores.push_back(core);
    }
    return s;
}

/** @param writer When set, streams policy 0's intervals during the run. */
Run
record(const Options &o, rnr::LogWriter *writer = nullptr)
{
    workloads::WorkloadParams wp;
    wp.numThreads = o.cores;
    wp.scale = o.scale;
    Run run;
    run.workload = workloads::buildKernel(o.kernel, wp);

    sim::MachineConfig cfg;
    cfg.numCores = o.cores;
    cfg.coherence = o.coherence;
    std::vector<sim::RecorderConfig> policies(1);
    policies[0].mode = o.mode;
    policies[0].maxIntervalInstructions = o.interval;
    policies[0].recordDependencies = o.deps;

    run.machine = std::make_unique<machine::Machine>(
        cfg, run.workload.program, policies);
    if (writer) {
        run.machine->setIntervalSink(
            0, [writer](sim::CoreId core, const rnr::IntervalRecord &iv) {
                writer->append(core, iv);
            });
    }
    run.initial = run.machine->initialMemory();
    run.rec = run.machine->run();
    return run;
}

void
printRecordingStats(const Run &run, const Options &o)
{
    rnr::LogStats stats;
    for (const auto &log : run.rec.logs[0])
        stats.accumulate(log);
    std::printf("kernel          %s (scale %llu, %u cores)\n",
                o.kernel.c_str(), (unsigned long long)o.scale, o.cores);
    std::printf("recorder        RelaxReplay_%s, interval cap %s%s\n",
                sim::toString(o.mode),
                o.interval ? std::to_string(o.interval).c_str() : "INF",
                o.deps ? ", dependency edges" : "");
    std::printf("coherence       %s\n", sim::toString(o.coherence));
    std::printf("instructions    %llu in %llu cycles (IPC/core %.2f)\n",
                (unsigned long long)run.rec.totalInstructions,
                (unsigned long long)run.rec.cycles,
                (double)run.rec.totalInstructions / run.rec.cycles /
                    o.cores);
    std::printf("intervals       %llu\n",
                (unsigned long long)stats.intervals);
    std::printf("reordered       %llu accesses (%.4f%% of all "
                "instructions)\n",
                (unsigned long long)stats.reordered(),
                100.0 * stats.reordered() /
                    std::max<std::uint64_t>(
                        1, stats.reordered() +
                               stats.inorderInstructions));
    std::printf("log size        %llu bits (%.1f bits/kinst, "
                "%.1f MB/s at 2GHz)\n",
                (unsigned long long)stats.totalBits,
                1000.0 * stats.totalBits / run.rec.totalInstructions,
                (double)stats.totalBits / run.rec.cycles * 2e9 / 8e6);
}

int
cmdRecord(const Options &o)
{
    std::unique_ptr<rnr::LogWriter> writer;
    if (!o.outFile.empty()) {
        rnr::WriterOptions wopts;
        if (o.chunkBytes != 0)
            wopts.chunkTargetBytes = o.chunkBytes;
        writer = std::make_unique<rnr::LogWriter>(o.outFile, metaFor(o),
                                                  wopts);
    }
    try {
        Run run = record(o, writer.get());
        printRecordingStats(run, o);
        std::vector<const sim::StatSet *> extra;
        if (writer) {
            writer->finish(summaryOf(run.rec));
            std::printf("log saved       %s (%llu bytes, %llu chunks%s)\n",
                        o.outFile.c_str(),
                        (unsigned long long)writer->bytesWritten(),
                        (unsigned long long)writer->stats().counterValue(
                            "chunks_written"),
                        (writer->headerFlags() & rnr::fmt::kFlagPartial)
                            ? ", PARTIAL: log budget reached"
                            : "");
            extra.push_back(&writer->stats());
        }
        if (sim::FaultInjector::enabled())
            extra.push_back(&sim::FaultInjector::get()->stats());
        return maybeExportStats(o, *run.machine, extra) ? 0 : 3;
    } catch (const rnr::LogStoreError &e) {
        // A planned crash-at fault firing is this run's expected
        // product: a torn staging file for `rrlog repair` to salvage.
        if (e.kind() == rnr::LogErrorKind::Crash && writer) {
            std::printf("injected crash  %s\n", e.what());
            std::printf("torn file       %s\n",
                        writer->currentPath().c_str());
            return 0;
        }
        throw;
    }
}

/**
 * Replay a .rrlog file in this (fresh) process: rebuild the workload
 * from the file's metadata, reconstruct and patch the per-core logs,
 * replay, and verify every per-core load-value hash and instruction
 * count plus the final memory image against the recorded summary.
 */
int
cmdReplayFile(const Options &o)
{
    rnr::LogReader reader(o.kernel, o.ingest);
    const rnr::RecordingMeta &meta = reader.meta();

    // Full verification (against the recorded summary) only makes sense
    // when the file holds the complete recording. With --allow-partial
    // we salvage the longest consistent prefix instead and verify that
    // it replays divergence-free.
    bool verify_full = true;
    rnr::RecordingSummary summary;
    std::vector<rnr::CoreLog> logs;
    if (o.allowPartial) {
        rnr::RecoveryResult rec = reader.recoverPrefix();
        const bool sound = rec.cleanEnd && rec.hasSummary &&
                           rec.issues.empty() && !reader.partial();
        logs = std::move(rec.logs);
        if (sound) {
            summary = rec.summary;
        } else {
            verify_full = false;
            const std::uint64_t cut =
                rnr::consistentCut(logs, rec.coreTruncated);
            std::uint64_t kept = 0;
            for (const auto &log : logs)
                kept += log.intervals.size();
            std::printf("salvage         %llu intervals from %llu "
                        "chunks (%llu chunks dropped); %llu replayable "
                        "after the consistent cut at ts %llu\n",
                        (unsigned long long)rec.salvagedIntervals,
                        (unsigned long long)rec.salvagedChunks,
                        (unsigned long long)rec.droppedChunks,
                        (unsigned long long)kept,
                        (unsigned long long)cut);
        }
    } else {
        if (reader.partial()) {
            std::fprintf(stderr,
                         "rrsim: %s is flagged as a partial recording; "
                         "replay it with --allow-partial\n",
                         o.kernel.c_str());
            return 1;
        }
        summary = reader.summary();
        // Chunk payloads decode concurrently (identical result and
        // errors to readAll); --jobs bounds the decode fan-out too.
        logs = reader.readAllParallel(o.jobs);
    }

    std::printf("log file        %s (format v%u, fingerprint %016llx%s)\n",
                o.kernel.c_str(), reader.version(),
                (unsigned long long)reader.fingerprint(),
                reader.partial() ? ", partial" : "");
    std::printf("recording       %s, %u cores, scale %llu, "
                "RelaxReplay_%s, interval cap %s%s\n",
                meta.kernel.c_str(), meta.cores,
                (unsigned long long)meta.scale, sim::toString(meta.mode),
                meta.intervalCap
                    ? std::to_string(meta.intervalCap).c_str()
                    : "INF",
                meta.deps ? ", dependency edges" : "");
    std::printf("coherence       %s\n", sim::toString(meta.coherence));

    // The log's protocol tag decides the machine; an explicit
    // --coherence that disagrees is a request for the wrong machine
    // and is refused rather than silently overridden.
    if (o.coherenceSet && o.coherence != meta.coherence) {
        std::fprintf(stderr,
                     "rrsim: %s was recorded under %s coherence; "
                     "refusing to replay it on a %s machine\n",
                     o.kernel.c_str(), sim::toString(meta.coherence),
                     sim::toString(o.coherence));
        return 1;
    }

    workloads::WorkloadParams wp;
    wp.numThreads = meta.cores;
    wp.scale = meta.scale;
    wp.intensity = meta.intensity;
    wp.seed = meta.workloadSeed;
    const auto w = workloads::buildKernel(meta.kernel, wp);

    // A fresh machine only to materialize the initial memory image the
    // recording started from (deterministic given program + config).
    sim::MachineConfig cfg;
    cfg.numCores = meta.cores;
    cfg.seed = meta.machineSeed;
    cfg.coherence = meta.coherence;
    std::vector<sim::RecorderConfig> policies(1);
    policies[0].mode = meta.mode;
    machine::Machine m(cfg, w.program, policies);

    std::vector<rnr::CoreLog> patched;
    for (auto &log : logs)
        patched.push_back(rnr::patch(log));

    bool engine = o.parallelReplay || o.jobs > 0;
    if (engine && !meta.deps) {
        std::fprintf(stderr,
                     "%s was recorded without dependency edges; "
                     "replaying sequentially\n",
                     o.kernel.c_str());
        engine = false;
    }

    std::vector<rnr::Replayer::OrderItem> order;
    if (!engine && o.parallel && meta.deps) {
        const auto sched = rnr::buildParallelSchedule(patched);
        for (const auto &node : sched.order)
            order.push_back({node.core, node.index});
    } else if (!engine && o.parallel) {
        std::fprintf(stderr,
                     "%s was recorded without dependency edges; "
                     "replaying sequentially\n",
                     o.kernel.c_str());
    }

    std::vector<std::uint64_t> hashes(meta.cores, 0);
    std::vector<std::uint64_t> load_counts(meta.cores, 0);
    const auto hook = [&](sim::CoreId c, std::uint64_t v) {
        hashes[c] = machine::mixLoadValue(hashes[c], v);
        ++load_counts[c];
    };

    rnr::ReplayResult res;
    try {
        if (engine) {
            rnr::ParallelReplayOptions popts;
            popts.workers = o.jobs;
            rnr::ParallelReplayer rep(w.program, std::move(patched),
                                      m.initialMemory().clone(), popts);
            rep.setLoadHook(hook);
            res = rep.run();
            std::printf("parallel engine %u workers, %.1f ms replay "
                        "wall clock, measured speedup %.2fx\n",
                        res.workers, res.wallSeconds * 1e3,
                        res.measuredSpanSeconds > 0.0
                            ? res.measuredSerialSeconds /
                                  res.measuredSpanSeconds
                            : 1.0);
        } else {
            rnr::Replayer rep(w.program, std::move(patched),
                              m.initialMemory().clone());
            rep.setLoadHook(hook);
            res = order.empty() ? rep.run() : rep.runInOrder(order);
        }
    } catch (const rnr::ReplayDivergence &d) {
        std::fprintf(stderr,
                     "replay of %s diverged at core %u, interval %u:\n%s\n",
                     o.kernel.c_str(), d.report().core,
                     d.report().intervalIndex,
                     d.report().format().c_str());
        return 1;
    }

    if (!verify_full) {
        // A consistent prefix carries no end-state targets to check
        // against; success is the replay completing divergence-free.
        std::printf("partial replay  OK (%llu instructions replayed "
                    "divergence-free)\n",
                    (unsigned long long)res.instructions);
        return 0;
    }

    bool ok = res.memory.fingerprint() == summary.memoryFingerprint &&
              res.instructions == summary.totalInstructions;
    for (sim::CoreId c = 0; c < meta.cores; ++c) {
        const auto &cs = summary.cores[c];
        if (hashes[c] != cs.loadValueHash ||
            load_counts[c] != cs.retiredLoads ||
            res.contexts[c].instructions != cs.retiredInstructions) {
            std::fprintf(stderr,
                         "core %u mismatch: load hash %016llx/%016llx, "
                         "loads %llu/%llu, instructions %llu/%llu "
                         "(replayed/recorded)\n",
                         c, (unsigned long long)hashes[c],
                         (unsigned long long)cs.loadValueHash,
                         (unsigned long long)load_counts[c],
                         (unsigned long long)cs.retiredLoads,
                         (unsigned long long)
                             res.contexts[c].instructions,
                         (unsigned long long)cs.retiredInstructions);
            ok = false;
        }
    }
    std::printf("determinism     %s (%llu instructions replayed "
                "from disk)\n",
                ok ? "OK" : "MISMATCH",
                (unsigned long long)res.instructions);
    return ok ? 0 : 1;
}

bool
looksLikeLogFile(const std::string &name)
{
    const std::string suffix = ".rrlog";
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(),
                     suffix) == 0)
        return true;
    std::ifstream probe(name, std::ios::binary);
    return probe.good();
}

/**
 * Replay @p patched on the multi-threaded engine AND the sequential
 * replayer, verify both against the recording (and each other), and
 * report the measured wall-clock speedup next to the cost model's
 * bound.
 */
int
runEngineReplay(const Options &o, Run &run,
                const std::vector<rnr::CoreLog> &patched)
{
    auto verify = [&](const rnr::ReplayResult &res,
                      const std::vector<std::uint64_t> &hashes) {
        bool ok =
            res.memory.fingerprint() == run.rec.memoryFingerprint &&
            res.instructions == run.rec.totalInstructions;
        for (sim::CoreId c = 0; c < o.cores && ok; ++c)
            ok = hashes[c] == run.rec.cores[c].loadValueHash;
        return ok;
    };
    auto hashing = [](std::vector<std::uint64_t> &hashes) {
        return [&hashes](sim::CoreId c, std::uint64_t v) {
            hashes[c] = machine::mixLoadValue(hashes[c], v);
        };
    };

    rnr::Replayer seq(run.workload.program, patched,
                      run.initial.clone());
    std::vector<std::uint64_t> seq_hashes(o.cores, 0);
    seq.setLoadHook(hashing(seq_hashes));
    const rnr::ReplayResult seq_res = seq.run();

    rnr::ParallelReplayOptions popts;
    popts.workers = o.jobs;
    rnr::ParallelReplayer par(run.workload.program, patched,
                              run.initial.clone(), popts);
    std::vector<std::uint64_t> par_hashes(o.cores, 0);
    par.setLoadHook(hashing(par_hashes));
    const rnr::ReplayResult par_res = par.run();

    const auto sched = rnr::buildParallelSchedule(patched);
    std::printf("parallel engine %u workers: %.1f ms wall (%.1f ms "
                "sequential), %llu dependency edges\n",
                par_res.workers, par_res.wallSeconds * 1e3,
                seq_res.wallSeconds * 1e3,
                (unsigned long long)sched.edges);
    std::printf("measured speedup %.2fx on %u workers (%.2f ms serial "
                "work in a %.2f ms schedule; modelled bound %.2fx)\n",
                par_res.measuredSpanSeconds > 0.0
                    ? par_res.measuredSerialSeconds /
                          par_res.measuredSpanSeconds
                    : 1.0,
                par_res.workers,
                par_res.measuredSerialSeconds * 1e3,
                par_res.measuredSpanSeconds * 1e3, sched.speedup());
    const auto &scalars = par_res.engineStats.scalars();
    const auto util = scalars.find("utilization");
    std::printf("utilization     %.0f%% mean worker busy over the "
                "replay wall clock\n",
                util == scalars.end() ? 0.0
                                      : 100.0 * util->second.mean());

    const bool ok = verify(seq_res, seq_hashes) &&
                    verify(par_res, par_hashes) &&
                    par_res.cost.total() == seq_res.cost.total();
    std::printf("determinism     %s (%llu instructions replayed on "
                "both engines)\n",
                ok ? "OK" : "MISMATCH",
                (unsigned long long)par_res.instructions);
    if (!maybeExportStats(o, *run.machine, {&par_res.engineStats}))
        return 3;
    return ok ? 0 : 1;
}

int
cmdReplay(const Options &o)
{
    if (looksLikeLogFile(o.kernel))
        return cmdReplayFile(o);
    Options ro = o;
    if (ro.parallelReplay || ro.jobs > 0) {
        ro.parallelReplay = true; // --jobs N implies the engine
        ro.deps = true;           // the engine needs the DAG
    }
    Run run = record(ro);
    printRecordingStats(run, ro);

    std::vector<rnr::CoreLog> patched;
    for (const auto &log : run.rec.logs[0])
        patched.push_back(rnr::patch(log));

    if (ro.parallelReplay)
        return runEngineReplay(ro, run, patched);

    rnr::Replayer rep(run.workload.program, patched,
                      run.initial.clone());
    rnr::ReplayResult res;
    if (o.parallel) {
        const auto sched = rnr::buildParallelSchedule(patched);
        std::vector<rnr::Replayer::OrderItem> order;
        for (const auto &node : sched.order)
            order.push_back({node.core, node.index});
        res = rep.runInOrder(order);
        std::printf("parallel replay %llu-cycle makespan, speedup "
                    "%.2fx over sequential (%llu edges)\n",
                    (unsigned long long)sched.makespan, sched.speedup(),
                    (unsigned long long)sched.edges);
    } else {
        res = rep.run();
        std::printf("sequential replay estimate: %llu user + %llu os "
                    "cycles (%.1fx recording)\n",
                    (unsigned long long)res.cost.userCycles,
                    (unsigned long long)res.cost.osCycles,
                    (double)res.cost.total() / run.rec.cycles);
    }

    const bool ok =
        res.memory.fingerprint() == run.rec.memoryFingerprint &&
        res.instructions == run.rec.totalInstructions;
    std::printf("determinism     %s (%llu instructions replayed)\n",
                ok ? "OK" : "MISMATCH",
                (unsigned long long)res.instructions);
    if (!maybeExportStats(o, *run.machine))
        return 3;
    return ok ? 0 : 1;
}

int
cmdInspect(const Options &o)
{
    Run run = record(o);
    printRecordingStats(run, o);
    const auto &log = run.rec.logs[0][0];
    const std::size_t show = std::min<std::size_t>(8, log.intervals.size());
    std::printf("\nfirst %zu intervals of core 0:\n", show);
    for (std::size_t i = 0; i < show; ++i) {
        const auto &iv = log.intervals[i];
        std::printf("  interval %zu (ts %llu)", i,
                    (unsigned long long)iv.timestamp);
        for (const auto &d : iv.predecessors)
            std::printf(" [after core%u#%llu]", d.core,
                        (unsigned long long)d.isn);
        std::printf(":\n");
        for (const auto &e : iv.entries) {
            switch (e.kind) {
              case rnr::EntryKind::InorderBlock:
                std::printf("    InorderBlock    %llu instructions\n",
                            (unsigned long long)e.blockSize);
                break;
              case rnr::EntryKind::ReorderedLoad:
                std::printf("    ReorderedLoad   value=%llu\n",
                            (unsigned long long)e.loadValue);
                break;
              case rnr::EntryKind::ReorderedStore:
                std::printf("    ReorderedStore  addr=0x%llx value=%llu "
                            "offset=%u\n",
                            (unsigned long long)e.addr,
                            (unsigned long long)e.storeValue, e.offset);
                break;
              case rnr::EntryKind::ReorderedAtomic:
                std::printf("    ReorderedAtomic addr=0x%llx old=%llu "
                            "new=%llu offset=%u\n",
                            (unsigned long long)e.addr,
                            (unsigned long long)e.loadValue,
                            (unsigned long long)e.storeValue, e.offset);
                break;
              default:
                std::printf("    %s\n", rnr::toString(e.kind));
                break;
            }
        }
    }
    return maybeExportStats(o, *run.machine) ? 0 : 3;
}

int
cmdSweep(const Options &o)
{
    std::vector<std::string> kernels;
    if (o.kernel == "all")
        kernels = workloads::kernelNames();
    else
        kernels.push_back(o.kernel);

    // The paper's four evaluation policies, recorded simultaneously.
    std::vector<sim::RecorderConfig> pol(4);
    pol[0].mode = sim::RecorderMode::Base;
    pol[0].maxIntervalInstructions = 4096;
    pol[1].mode = sim::RecorderMode::Base;
    pol[1].maxIntervalInstructions = 0;
    pol[2].mode = sim::RecorderMode::Opt;
    pol[2].maxIntervalInstructions = 4096;
    pol[3].mode = sim::RecorderMode::Opt;
    pol[3].maxIntervalInstructions = 0;
    const char *pol_names[4] = {"Base-4K", "Base-INF", "Opt-4K",
                                "Opt-INF"};

    sim::SweepRunner runner(o.jobs);
    std::vector<machine::RecordingResult> recs(kernels.size());
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        runner.enqueue(kernels[i], [&, i] {
            workloads::WorkloadParams wp;
            wp.numThreads = o.cores;
            wp.scale = o.scale;
            const auto w = workloads::buildKernel(kernels[i], wp);
            sim::MachineConfig cfg;
            cfg.numCores = o.cores;
            cfg.coherence = o.coherence;
            machine::Machine m(cfg, w.program, pol);
            recs[i] = m.run(5'000'000'000ULL);
            runner.countInstructions(recs[i].totalInstructions);
            if (!o.statsJson.empty()) {
                std::vector<const sim::StatSet *> sets;
                m.collectStats(sets);
                for (const sim::StatSet *s : sets)
                    runner.accumulateStats(*s);
            }
        });
    }
    runner.run();

    std::printf("%-12s%12s%12s", "kernel", "instrs", "cycles");
    for (const char *name : pol_names)
        std::printf("%12s", name);
    std::printf("\n%48s (bits/kinst)\n", "");
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const auto &rec = recs[i];
        std::printf("%-12s%12llu%12llu", kernels[i].c_str(),
                    (unsigned long long)rec.totalInstructions,
                    (unsigned long long)rec.cycles);
        for (std::size_t p = 0; p < pol.size(); ++p) {
            rnr::LogStats stats;
            for (const auto &log : rec.logs[p])
                stats.accumulate(log);
            std::printf("%12.1f",
                        1000.0 * static_cast<double>(stats.totalBits) /
                            static_cast<double>(rec.totalInstructions));
        }
        std::printf("\n");
    }

    const sim::SweepStats &stats = runner.lastStats();
    std::printf("[sweep] %llu jobs on %u workers: %.2fs wall, "
                "%.1fM simulated instructions, %.2fM instr/s\n",
                (unsigned long long)stats.jobsRun, stats.workers,
                stats.wallSeconds,
                static_cast<double>(stats.totalInstructions) / 1e6,
                stats.instructionsPerSecond() / 1e6);
    if (!o.statsJson.empty() &&
        !writeStatsFile(o.statsJson, {&runner.aggregatedStats()}))
        return 3;
    return 0;
}

// --- replay service (rrsim serve / rrsim submit) ---------------------

svc::Server *g_server = nullptr;

void
onServeSignal(int sig)
{
    if (g_server)
        g_server->requestStop(sig != SIGINT); // SIGTERM drains
}

std::string
socketPathOf(const Options &o)
{
    if (!o.socketPath.empty())
        return o.socketPath;
    const char *env = std::getenv("RRSIM_SOCKET");
    if (env && *env)
        return env;
    return "/tmp/rrsim.sock";
}

/**
 * Fork the daemon. The parent polls the socket until the child
 * listens (then exits 0) or the child dies (then propagates its exit
 * code); the child detaches from the terminal and carries on.
 */
int
daemonizeParent(const std::string &sock, pid_t child)
{
    for (int i = 0; i < 100; ++i) {
        int status = 0;
        if (::waitpid(child, &status, WNOHANG) == child)
            return WIFEXITED(status) ? WEXITSTATUS(status) : 3;
        std::string err;
        if (svc::Client::connectUnix(sock, err))
            return 0;
        ::usleep(100 * 1000);
    }
    std::fprintf(stderr,
                 "rrsim: daemon did not start listening on %s\n",
                 sock.c_str());
    return 3;
}

int
cmdServe(const Options &o)
{
    const std::string sock = socketPathOf(o);
    if (o.daemonize) {
        const pid_t pid = ::fork();
        if (pid < 0) {
            std::fprintf(stderr, "rrsim: fork: %s\n",
                         std::strerror(errno));
            return 3;
        }
        if (pid > 0)
            return daemonizeParent(sock, pid);
        ::setsid();
        // Detach stdio so whoever spawned us (a ctest fixture, a
        // shell) does not wait on our inherited pipes.
        if (std::freopen("/dev/null", "r", stdin) == nullptr ||
            std::freopen("/dev/null", "w", stdout) == nullptr ||
            std::freopen("/dev/null", "w", stderr) == nullptr) {
            // Keep going; worst case the parent's pipes stay open.
        }
    }
    if (!o.pidfile.empty()) {
        std::ofstream pf(o.pidfile);
        if (!pf) {
            std::fprintf(stderr, "rrsim: cannot write pidfile %s\n",
                         o.pidfile.c_str());
            return 3;
        }
        pf << ::getpid() << "\n";
    }

    svc::Server::Options sopts;
    sopts.socketPath = sock;
    sopts.tcpPort = o.tcpPort;
    sopts.queue.capacity = o.capacity;
    sopts.queue.tenantQuota = o.quota;
    sopts.sched.executors = o.execJobs;
    sopts.sched.defaultTimeoutSec = o.timeoutSec;

    try {
        svc::Server server(sopts);
        g_server = &server;
        std::signal(SIGPIPE, SIG_IGN);
        std::signal(SIGTERM, onServeSignal);
        std::signal(SIGINT, onServeSignal);
        if (!o.daemonize) {
            std::printf("serving on      %s%s (capacity %llu, quota "
                        "%llu, %u executors)\n",
                        sock.c_str(),
                        server.boundTcpPort()
                            ? (" + 127.0.0.1:" +
                               std::to_string(server.boundTcpPort()))
                                  .c_str()
                            : "",
                        (unsigned long long)o.capacity,
                        (unsigned long long)o.quota, o.execJobs);
            std::fflush(stdout);
        }
        server.run();
        g_server = nullptr;
    } catch (const std::runtime_error &e) {
        std::fprintf(stderr, "rrsim: serve: %s\n", e.what());
        return 3;
    }
    if (!o.pidfile.empty())
        std::remove(o.pidfile.c_str());
    return 0;
}

/** Compose the submit/control request line for the daemon. */
std::string
buildRequest(const Options &o)
{
    std::string j = "{\"op\":" + svc::jsonQuote(o.submitOp);
    j += ",\"tenant\":" + svc::jsonQuote(o.tenant);
    if (o.weight != 1)
        j += ",\"weight\":" + std::to_string(o.weight);
    if (!o.tag.empty())
        j += ",\"tag\":" + svc::jsonQuote(o.tag);
    if (o.timeoutSec > 0.0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f", o.timeoutSec);
        j += ",\"timeout\":";
        j += buf;
    }
    if (o.submitOp == "record" || o.submitOp == "replay" ||
        o.submitOp == "verify" || o.submitOp == "stats") {
        const bool is_file = o.submitOp != "record" &&
                             (o.submitOp != "replay" ||
                              looksLikeLogFile(o.submitTarget));
        j += (is_file ? ",\"file\":" : ",\"kernel\":") +
             svc::jsonQuote(o.submitTarget);
        j += ",\"cores\":" + std::to_string(o.cores);
        j += ",\"scale\":" + std::to_string(o.scale);
        j += ",\"mode\":\"";
        j += o.mode == sim::RecorderMode::Base ? "base" : "opt";
        j += "\"";
        if (o.interval)
            j += ",\"interval\":" + std::to_string(o.interval);
        if (o.deps)
            j += ",\"deps\":true";
        if (o.coherenceSet)
            j += std::string(",\"coherence\":\"") +
                 sim::toString(o.coherence) + "\"";
        if (!o.outFile.empty())
            j += ",\"out\":" + svc::jsonQuote(o.outFile);
        if (o.jobs)
            j += ",\"jobs\":" + std::to_string(o.jobs);
        if (o.ingest != rnr::IngestMode::Auto)
            j += std::string(",\"ingest\":\"") +
                 (o.ingest == rnr::IngestMode::Mmap ? "mmap"
                                                    : "stream") +
                 "\"";
        if (o.allowPartial)
            j += ",\"allowPartial\":true";
    } else if (o.submitOp == "cancel") {
        j += ",\"job\":" + o.submitTarget;
    } else if (o.submitOp == "shutdown") {
        j += std::string(",\"drain\":") +
             (o.noDrain ? "false" : "true");
    }
    j += "}";
    return j;
}

/** Exit code for a terminal event line, per the 0/1/2/3 convention. */
int
exitCodeForEvent(const svc::Json &ev)
{
    const std::string &kind = ev.get("event").asString();
    if (kind == "completed" || kind == "pong" || kind == "status" ||
        kind == "shutdown" || kind == "cancel_ok")
        return 0;
    if (kind == "failed") {
        const std::string &cls = ev.get("error").asString();
        if (cls == "INVALID")
            return 2;
        if (cls == "IO")
            return 3;
        return 1;
    }
    if (kind == "rejected")
        return ev.get("error").asString() == "BAD_REQUEST" ? 2 : 1;
    return 1; // cancelled, or something unrecognized
}

int
cmdSubmit(const Options &o)
{
    std::string err;
    std::optional<svc::Client> cli;
    if (o.tcpPort > 0)
        cli = svc::Client::connectTcp("127.0.0.1", o.tcpPort, err);
    else
        cli = svc::Client::connectUnix(socketPathOf(o), err);
    if (!cli) {
        std::fprintf(stderr, "rrsim: %s\n", err.c_str());
        return 3;
    }
    if (!cli->sendLine(buildRequest(o), err)) {
        std::fprintf(stderr, "rrsim: %s\n", err.c_str());
        return 3;
    }

    const bool is_job = o.submitOp == "record" ||
                        o.submitOp == "replay" ||
                        o.submitOp == "verify" || o.submitOp == "stats";
    std::uint64_t job = 0;
    for (;;) {
        std::optional<std::string> line = cli->readLine(err);
        if (!line) {
            std::fprintf(stderr, "rrsim: connection closed%s%s\n",
                         err.empty() ? "" : ": ", err.c_str());
            return 3;
        }
        std::printf("%s\n", line->c_str());
        std::fflush(stdout);
        std::string perr;
        std::optional<svc::Json> ev = svc::parseJson(*line, perr);
        if (!ev)
            continue;
        const std::string &kind = ev->get("event").asString();
        if (!is_job)
            return exitCodeForEvent(*ev);
        if (kind == "rejected")
            return exitCodeForEvent(*ev);
        if (kind == "accepted") {
            job = svc::eventJobId(*ev);
            if (o.noWait)
                return 0;
            continue;
        }
        if (svc::eventIsTerminal(*ev) && svc::eventJobId(*ev) == job)
            return exitCodeForEvent(*ev);
    }
}

bool
knownKernelCli(const std::string &name)
{
    const auto &names = workloads::kernelNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

int
dispatch(const Options &o)
{
    // Unknown kernels are usage errors (exit 2), caught up front —
    // workloads::buildKernel() aborts the process on unknown names.
    const bool kernel_cmd =
        o.command == "record" || o.command == "inspect" ||
        (o.command == "sweep" && o.kernel != "all") ||
        (o.command == "replay" && !looksLikeLogFile(o.kernel));
    if (kernel_cmd && !knownKernelCli(o.kernel)) {
        std::fprintf(stderr,
                     "rrsim: unknown kernel '%s' (see `rrsim list`)\n",
                     o.kernel.c_str());
        return 2;
    }
    if (o.command == "record")
        return cmdRecord(o);
    if (o.command == "replay")
        return cmdReplay(o);
    if (o.command == "inspect")
        return cmdInspect(o);
    if (o.command == "sweep")
        return cmdSweep(o);
    if (o.command == "serve")
        return cmdServe(o);
    if (o.command == "submit")
        return cmdSubmit(o);
    usage();
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);
    if (o.command == "list") {
        for (const auto &name : workloads::kernelNames())
            std::printf("%s\n", name.c_str());
        return 0;
    }

    if (!o.traceFile.empty())
        sim::TraceSink::open(o.traceFile);
    else
        sim::TraceSink::openFromEnv();

    if (!o.faults.empty()) {
        try {
            sim::FaultInjector::install(sim::FaultPlan::parse(o.faults));
        } catch (const std::invalid_argument &e) {
            std::fprintf(stderr, "rrsim: bad --faults spec: %s\n",
                         e.what());
            return 2;
        }
    } else {
        sim::FaultInjector::installFromEnv();
    }
    if (sim::FaultInjector::enabled() &&
        sim::FaultInjector::get()->plan().any())
        std::printf("fault plan      %s\n",
                    sim::FaultInjector::get()->plan().describe().c_str());

    int rc;
    try {
        rc = dispatch(o);
    } catch (const rnr::ReplayDivergence &d) {
        std::fprintf(stderr, "%s\n", d.report().format().c_str());
        rc = 1;
    } catch (const rnr::LogStoreError &e) {
        std::fprintf(stderr, "rrsim: %s\n", e.what());
        rc = e.kind() == rnr::LogErrorKind::Io ? 3 : 1;
    }
    sim::TraceSink::close();
    return rc;
}
