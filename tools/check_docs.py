#!/usr/bin/env python3
"""Doc-drift check: keep the CLI surface and the markdown honest.

Two invariants, enforced in ctest (see tests/CMakeLists.txt):

  * every command-line flag the rrsim and rrlog drivers actually
    accept (scraped from the `arg == "--flag"` comparisons in their
    sources, the authoritative parse sites) is mentioned in README.md
    or somewhere under docs/*.md — a flag nobody documents is a flag
    nobody finds;
  * every relative markdown link in README.md, the top-level *.md
    files and docs/*.md resolves to an existing file (anchors are
    stripped; external http(s)/mailto links are ignored).

Usage: check_docs.py [REPO_ROOT]
Exit status 0 when the docs are in sync, 1 otherwise.
"""

import pathlib
import re
import sys


def fail(errors):
    for e in errors:
        print(f"check_docs: {e}", file=sys.stderr)
    sys.exit(1)


def cli_flags(source):
    """Flags a driver accepts: its `arg == "--x"` comparison sites."""
    return set(re.findall(r'arg(?:\.rfind\(|\s*==\s*)"(--[a-z-]+)"',
                          source))


def markdown_links(text):
    """Relative link targets of [text](target) links."""
    out = []
    for target in re.findall(r"\]\(([^)\s]+)\)", text):
        if re.match(r"^(https?|mailto):", target) or target.startswith("#"):
            continue
        out.append(target.split("#", 1)[0])
    return out


def main():
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    doc_paths = sorted(root.glob("*.md")) + sorted(root.glob("docs/*.md"))
    if not doc_paths:
        fail([f"no markdown files under {root}"])
    docs = {p: p.read_text(encoding="utf-8") for p in doc_paths}
    errors = []

    # --- Every accepted CLI flag is documented somewhere. -------------
    flag_corpus = "\n".join(
        text for p, text in docs.items()
        if p.name == "README.md" or p.parent.name == "docs")
    for tool in ("rrsim", "rrlog"):
        source_path = root / "tools" / f"{tool}.cc"
        flags = cli_flags(source_path.read_text(encoding="utf-8"))
        if not flags:
            errors.append(f"scraped no flags from {source_path}; "
                          "did the parser idiom change?")
        for flag in sorted(flags):
            if f"`{flag}" not in flag_corpus and flag not in flag_corpus:
                errors.append(
                    f"{tool} accepts {flag} but neither README.md nor "
                    f"docs/*.md mentions it")

    # --- Every relative markdown link resolves. -----------------------
    for path, text in docs.items():
        for target in markdown_links(text):
            if not target:
                continue
            if not (path.parent / target).exists():
                errors.append(f"{path}: broken link -> {target}")

    if errors:
        fail(errors)
    print(f"check_docs: {len(doc_paths)} markdown files OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
