#!/usr/bin/env python3
"""Compare two BENCH_replay_throughput.json files.

Usage: perf_compare.py BASELINE.json CURRENT.json [--threshold PCT]

For every stage present in both files, compares intervals_per_sec and
fails (exit 1) when the current run is more than --threshold percent
(default 20) slower than the baseline. Stages present in only one file
are reported but not fatal (the stage set may legitimately evolve).
Stdlib only.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"perf_compare: cannot read {path}: {e}")
    stages = doc.get("stages")
    if not isinstance(stages, dict) or not stages:
        sys.exit(f"perf_compare: {path} has no stages")
    return doc, stages


def main():
    ap = argparse.ArgumentParser(
        description="Diff two replay-throughput bench results.")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=20.0,
                    help="max tolerated slowdown in percent (default 20)")
    args = ap.parse_args()

    base_doc, base = load(args.baseline)
    cur_doc, cur = load(args.current)

    if base_doc.get("kernel") != cur_doc.get("kernel") or \
            base_doc.get("scale") != cur_doc.get("scale"):
        print(f"note: comparing different workloads "
              f"({base_doc.get('kernel')}/{base_doc.get('scale')} vs "
              f"{cur_doc.get('kernel')}/{cur_doc.get('scale')})")

    regressions = []
    print(f"{'stage':<28}{'baseline':>14}{'current':>14}{'delta':>9}")
    for name in base:
        if name not in cur:
            print(f"{name:<28}{'(only in baseline)':>37}")
            continue
        b = base[name].get("intervals_per_sec", 0.0)
        c = cur[name].get("intervals_per_sec", 0.0)
        if b <= 0:
            print(f"{name:<28}{'(no baseline rate)':>37}")
            continue
        delta = 100.0 * (c - b) / b
        print(f"{name:<28}{b:>14.0f}{c:>14.0f}{delta:>+8.1f}%")
        if delta < -args.threshold:
            regressions.append((name, delta))
    for name in cur:
        if name not in base:
            print(f"{name:<28}{'(only in current)':>37}")

    if regressions:
        for name, delta in regressions:
            print(f"FAIL: {name} regressed {delta:.1f}% "
                  f"(threshold -{args.threshold:.0f}%)")
        return 1
    print(f"OK: no stage regressed more than {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
