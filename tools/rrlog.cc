/**
 * @file
 * rrlog — inspection tool for persistent RelaxReplay logs (.rrlog).
 *
 *   rrlog info FILE
 *       Header, metadata, chunk layout and recording summary.
 *   rrlog stats FILE [--stats-json OUT]
 *       Aggregate and per-core LogStats plus entry/interval histograms
 *       (sim::StatSet; exportable as JSON).
 *   rrlog dump FILE [--core N] [--max N]
 *       Human-readable interval listing (default: first 8 intervals of
 *       every core).
 *   rrlog verify FILE
 *       Full integrity walk: CRCs, framing, decode, summary
 *       cross-checks. Exit 0 only when the file is sound; every
 *       problem is reported with its file offset and chunk id.
 *   rrlog diff FILE1 FILE2
 *       First divergent interval between two recordings (metadata,
 *       per-core interval streams, summaries).
 *   rrlog repair IN OUT
 *       Salvage the longest consistent prefix of a torn or corrupt
 *       file (e.g. the .tmp left by a crashed recorder) and write it
 *       to OUT as a structurally valid, partial-flagged .rrlog that
 *       `rrsim replay --allow-partial` accepts.
 *
 * Exit codes: 0 success, 1 corrupt/differing file, 2 usage error,
 * 3 operating-system I/O failure.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "rnr/logstore.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

using namespace rr;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: rrlog <info|stats|dump|verify|diff|repair> FILE [FILE2] "
        "[options]\n"
        "  --core N         dump: restrict to one core\n"
        "  --max N          dump: intervals per core (default 8)\n"
        "  --stats-json F   stats: export the StatSets as JSON\n"
        "  --ingest MODE    read path: auto (default; mmap with "
        "streamed fallback),\n"
        "                   mmap (zero-copy, required) or stream\n"
        "repair salvages FILE's consistent prefix into FILE2.\n"
        "exit codes: 0 ok, 1 corrupt/differs, 2 usage, 3 I/O error.\n");
    std::exit(2);
}

struct Options
{
    std::string command;
    std::vector<std::string> files;
    std::uint32_t core = UINT32_MAX;
    std::uint64_t max = 8;
    std::string statsJson;
    rnr::IngestMode ingest = rnr::IngestMode::Auto;
};

Options
parse(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
            args.push_back(arg.substr(0, eq));
            args.push_back(arg.substr(eq + 1));
        } else {
            args.push_back(arg);
        }
    }
    Options o;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> std::string {
            if (++i >= args.size())
                usage();
            return args[i];
        };
        if (arg == "--core")
            o.core = static_cast<std::uint32_t>(
                std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--max")
            o.max = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--stats-json")
            o.statsJson = next();
        else if (arg == "--ingest") {
            const std::string m = next();
            if (m == "auto")
                o.ingest = rnr::IngestMode::Auto;
            else if (m == "mmap")
                o.ingest = rnr::IngestMode::Mmap;
            else if (m == "stream")
                o.ingest = rnr::IngestMode::Streamed;
            else
                usage();
        } else if (arg.rfind("--", 0) == 0)
            usage();
        else if (o.command.empty())
            o.command = arg;
        else
            o.files.push_back(arg);
    }
    const std::size_t want =
        o.command == "diff" || o.command == "repair" ? 2 : 1;
    if (o.command.empty() || o.files.size() != want)
        usage();
    return o;
}

void
printEntry(const rnr::LogEntry &e)
{
    switch (e.kind) {
      case rnr::EntryKind::InorderBlock:
        std::printf("    InorderBlock    %llu instructions\n",
                    (unsigned long long)e.blockSize);
        break;
      case rnr::EntryKind::ReorderedLoad:
        std::printf("    ReorderedLoad   value=%llu\n",
                    (unsigned long long)e.loadValue);
        break;
      case rnr::EntryKind::ReorderedStore:
        std::printf("    ReorderedStore  addr=0x%llx value=%llu "
                    "offset=%u\n",
                    (unsigned long long)e.addr,
                    (unsigned long long)e.storeValue, e.offset);
        break;
      case rnr::EntryKind::ReorderedAtomic:
        std::printf("    ReorderedAtomic addr=0x%llx old=%llu new=%llu "
                    "offset=%u\n",
                    (unsigned long long)e.addr,
                    (unsigned long long)e.loadValue,
                    (unsigned long long)e.storeValue, e.offset);
        break;
      case rnr::EntryKind::PatchedStore:
        std::printf("    PatchedStore    addr=0x%llx value=%llu\n",
                    (unsigned long long)e.addr,
                    (unsigned long long)e.storeValue);
        break;
      default:
        std::printf("    %s\n", rnr::toString(e.kind));
        break;
    }
}

void
printMeta(const rnr::LogReader &reader)
{
    const rnr::RecordingMeta &m = reader.meta();
    std::printf("format          v%u, fingerprint %016llx\n",
                reader.version(),
                (unsigned long long)reader.fingerprint());
    std::printf("kernel          %s (scale %llu, intensity %llu, "
                "seed %llu)\n",
                m.kernel.c_str(), (unsigned long long)m.scale,
                (unsigned long long)m.intensity,
                (unsigned long long)m.workloadSeed);
    std::printf("machine         %u cores, seed %llu, coherence %s\n",
                m.cores, (unsigned long long)m.machineSeed,
                sim::toString(m.coherence));
    std::printf("recorder        RelaxReplay_%s, interval cap %s%s\n",
                sim::toString(m.mode),
                m.intervalCap ? std::to_string(m.intervalCap).c_str()
                              : "INF",
                m.deps ? ", dependency edges" : "");
}

int
cmdInfo(const Options &o)
{
    rnr::LogReader reader(o.files[0], o.ingest);
    printMeta(reader);
    const rnr::LogFileInfo info = reader.info();
    std::printf("file            %llu bytes, %llu chunks "
                "(%llu data), clean end: %s\n",
                (unsigned long long)info.fileBytes,
                (unsigned long long)info.chunks,
                (unsigned long long)info.dataChunks,
                info.cleanEnd ? "yes" : "NO (truncated)");
    std::printf("intervals       %llu across %u cores "
                "(%llu payload bits on disk)\n",
                (unsigned long long)info.intervals, info.coreCount,
                (unsigned long long)info.payloadBits);
    if (info.hasSummary) {
        const auto &s = info.summary;
        std::printf("recorded run    %llu instructions, %llu cycles, "
                    "memory fingerprint %016llx\n",
                    (unsigned long long)s.totalInstructions,
                    (unsigned long long)s.cycles,
                    (unsigned long long)s.memoryFingerprint);
        for (std::size_t c = 0; c < s.cores.size(); ++c)
            std::printf("  core %-2zu       %llu intervals, "
                        "%llu instructions, %llu loads, "
                        "load hash %016llx\n",
                        c, (unsigned long long)s.cores[c].intervals,
                        (unsigned long long)
                            s.cores[c].retiredInstructions,
                        (unsigned long long)s.cores[c].retiredLoads,
                        (unsigned long long)s.cores[c].loadValueHash);
    } else {
        std::printf("recorded run    (no summary chunk)\n");
    }
    return 0;
}

int
cmdStats(const Options &o)
{
    rnr::LogReader reader(o.files[0], o.ingest);
    std::vector<rnr::LogStats> per_core(reader.coreCount());
    std::vector<sim::StatSet> core_sets;
    for (std::uint32_t c = 0; c < reader.coreCount(); ++c)
        core_sets.emplace_back("rrlog.core" + std::to_string(c));
    sim::StatSet total("rrlog");
    sim::Histogram &entries_h =
        total.histogram("entries_per_interval", 4, 16);
    sim::Histogram &bits_h = total.histogram("interval_bits", 64, 16);

    // One streaming pass: per-interval stats and on-disk payload bits
    // (counted once per chunk — all of a chunk's intervals share a
    // ChunkView) together, so the file is decoded once and peak memory
    // stays one chunk regardless of file size.
    std::uint64_t disk_payload_bits = 0;
    std::uint64_t last_chunk_seq = 0; // the meta chunk; never data
    reader.walkIntervals([&](sim::CoreId core,
                             const rnr::IntervalRecord &iv,
                             const rnr::LogReader::ChunkView &chunk) {
        if (chunk.seq != last_chunk_seq) {
            last_chunk_seq = chunk.seq;
            disk_payload_bits += chunk.payloadBits;
        }
        rnr::CoreLog one;
        one.intervals.push_back(iv);
        per_core[core].accumulate(one);
        entries_h.sample(iv.entries.size());
        bits_h.sample(iv.sizeBits());
        core_sets[core].counter("intervals")++;
        core_sets[core].counter("entries") += iv.entries.size();
        core_sets[core].counter("dependency_edges") +=
            iv.predecessors.size();
        return true;
    });

    rnr::LogStats sum;
    std::printf("%-8s%12s%12s%12s%12s%12s%14s\n", "core", "intervals",
                "inorder", "re-loads", "re-stores", "re-atomics",
                "model bits");
    for (std::uint32_t c = 0; c < reader.coreCount(); ++c) {
        const auto &s = per_core[c];
        std::printf("%-8u%12llu%12llu%12llu%12llu%12llu%14llu\n", c,
                    (unsigned long long)s.intervals,
                    (unsigned long long)s.inorderInstructions,
                    (unsigned long long)s.reorderedLoads,
                    (unsigned long long)s.reorderedStores,
                    (unsigned long long)s.reorderedAtomics,
                    (unsigned long long)s.totalBits);
        sum += s;
        total.counter("intervals") += s.intervals;
        total.counter("reordered") += s.reordered();
        total.counter("model_bits") += s.totalBits;
    }
    std::printf("%-8s%12llu%12llu%12llu%12llu%12llu%14llu\n", "total",
                (unsigned long long)sum.intervals,
                (unsigned long long)sum.inorderInstructions,
                (unsigned long long)sum.reorderedLoads,
                (unsigned long long)sum.reorderedStores,
                (unsigned long long)sum.reorderedAtomics,
                (unsigned long long)sum.totalBits);
    std::printf("\non disk         %llu bytes total, %llu data payload "
                "bits (%.1f%% of the %llu-bit packed model)\n",
                (unsigned long long)reader.fileBytes(),
                (unsigned long long)disk_payload_bits,
                sum.totalBits
                    ? 100.0 * static_cast<double>(disk_payload_bits) /
                          static_cast<double>(sum.totalBits)
                    : 0.0,
                (unsigned long long)sum.totalBits);
    total.counter("disk_bytes") += reader.fileBytes();
    total.counter("disk_payload_bits") += disk_payload_bits;

    total.print(std::cout);
    if (!o.statsJson.empty()) {
        std::ofstream out(o.statsJson);
        if (!out) {
            std::fprintf(stderr, "cannot open %s\n",
                         o.statsJson.c_str());
            return 1;
        }
        std::vector<const sim::StatSet *> sets{&total};
        for (const auto &cs : core_sets)
            sets.push_back(&cs);
        sim::writeStatsJson(out, sets);
        std::printf("stats saved     %s\n", o.statsJson.c_str());
    }
    return 0;
}

int
cmdDump(const Options &o)
{
    rnr::LogReader reader(o.files[0], o.ingest);
    printMeta(reader);
    std::vector<std::uint64_t> shown(reader.coreCount(), 0);
    // Early stop: once every requested core is past --max, nothing
    // later in the file can reach the output, so stop the walk — the
    // remaining chunks are neither read nor decoded. Dumping the head
    // of a multi-gigabyte log touches only its first chunks.
    const bool walked_all = reader.walkIntervals(
        [&](sim::CoreId core, const rnr::IntervalRecord &iv,
            const rnr::LogReader::ChunkView &chunk) {
            if (o.core != UINT32_MAX && core != o.core)
                return true;
            if (shown[core]++ < o.max) {
                std::printf("core %u interval %llu (ts %llu, chunk "
                            "%llu)",
                            core, (unsigned long long)iv.cisn,
                            (unsigned long long)iv.timestamp,
                            (unsigned long long)chunk.seq);
                for (const auto &d : iv.predecessors)
                    std::printf(" [after core%u#%llu]", d.core,
                                (unsigned long long)d.isn);
                std::printf(":\n");
                for (const auto &e : iv.entries)
                    printEntry(e);
            }
            for (std::uint32_t c = 0; c < reader.coreCount(); ++c) {
                if (o.core != UINT32_MAX && c != o.core)
                    continue;
                if (shown[c] <= o.max)
                    return true; // this core may still print
            }
            return false;
        });
    for (std::uint32_t c = 0; c < reader.coreCount(); ++c) {
        if (o.core != UINT32_MAX && c != o.core)
            continue;
        if (!walked_all && shown[c] > o.max)
            std::printf("core %u: ... more intervals (not decoded)\n",
                        c);
        else if (shown[c] > o.max)
            std::printf("core %u: ... %llu more intervals\n", c,
                        (unsigned long long)(shown[c] - o.max));
    }
    return 0;
}

int
cmdVerify(const Options &o)
{
    rnr::LogReader reader(o.files[0], o.ingest);
    const std::vector<rnr::VerifyIssue> issues = reader.verify();
    if (issues.empty()) {
        std::printf("%s: OK (fingerprint %016llx, %u cores)\n",
                    o.files[0].c_str(),
                    (unsigned long long)reader.fingerprint(),
                    reader.coreCount());
        return 0;
    }
    for (const auto &issue : issues) {
        if (issue.chunkSeq >= 0)
            std::fprintf(stderr,
                         "%s: offset %llu chunk %lld: %s\n",
                         o.files[0].c_str(),
                         (unsigned long long)issue.fileOffset,
                         (long long)issue.chunkSeq,
                         issue.message.c_str());
        else
            std::fprintf(stderr, "%s: offset %llu: %s\n",
                         o.files[0].c_str(),
                         (unsigned long long)issue.fileOffset,
                         issue.message.c_str());
    }
    std::fprintf(stderr, "%s: %zu problem%s found\n", o.files[0].c_str(),
                 issues.size(), issues.size() == 1 ? "" : "s");
    return 1;
}

/** 1 for a corrupt/invalid file, 3 for an OS-level I/O failure. */
int
exitCodeFor(const rnr::LogStoreError &e)
{
    return e.kind() == rnr::LogErrorKind::Io ? 3 : 1;
}

rnr::LogReader
open(const std::string &path, rnr::IngestMode mode)
{
    try {
        return rnr::LogReader(path, mode);
    } catch (const rnr::LogStoreError &e) {
        std::fprintf(stderr, "rrlog: %s: %s\n", path.c_str(), e.what());
        std::exit(exitCodeFor(e));
    }
}

int
cmdRepair(const Options &o)
{
    const std::string &src = o.files[0];
    const std::string &dst = o.files[1];
    rnr::LogReader reader(src, o.ingest);
    rnr::RecoveryResult rec = reader.recoverPrefix();
    for (const auto &issue : rec.issues)
        std::fprintf(stderr, "%s: offset %llu: %s\n", src.c_str(),
                     (unsigned long long)issue.fileOffset,
                     issue.message.c_str());

    const std::uint64_t cut =
        rnr::consistentCut(rec.logs, rec.coreTruncated);
    std::uint64_t kept = 0;
    for (const auto &log : rec.logs)
        kept += log.intervals.size();
    std::printf("salvaged        %llu intervals from %llu data chunks "
                "(%llu chunks dropped)\n",
                (unsigned long long)rec.salvagedIntervals,
                (unsigned long long)rec.salvagedChunks,
                (unsigned long long)rec.droppedChunks);
    std::printf("consistent cut  ts %llu; %llu intervals replayable\n",
                (unsigned long long)cut, (unsigned long long)kept);

    rnr::WriterOptions wopts;
    wopts.headerFlags = rnr::fmt::kFlagPartial;
    rnr::LogWriter writer(dst, reader.meta(), wopts);
    for (sim::CoreId c = 0; c < rec.logs.size(); ++c)
        for (const auto &iv : rec.logs[c].intervals)
            writer.append(c, iv);
    // Preserve the original full-run summary when it survived: it is
    // reference information (the partial flag exempts it from interval
    // count cross-checks) and lets `rrlog info` show the recorded run.
    writer.finishPartial(rec.hasSummary ? &rec.summary : nullptr);
    std::printf("repaired file   %s (%llu bytes, partial-flagged%s)\n",
                dst.c_str(), (unsigned long long)writer.bytesWritten(),
                rec.hasSummary ? ", original summary preserved" : "");
    return 0;
}

int
cmdDiff(const Options &o)
{
    rnr::LogReader a(open(o.files[0], o.ingest));
    rnr::LogReader b(open(o.files[1], o.ingest));
    if (a.fingerprint() != b.fingerprint()) {
        std::printf("metadata differs: fingerprints %016llx vs %016llx "
                    "(%s/%u cores vs %s/%u cores)\n",
                    (unsigned long long)a.fingerprint(),
                    (unsigned long long)b.fingerprint(),
                    a.meta().kernel.c_str(), a.meta().cores,
                    b.meta().kernel.c_str(), b.meta().cores);
        return 1;
    }
    const auto logs_a = a.readAll();
    const auto logs_b = b.readAll();
    for (std::uint32_t c = 0; c < a.coreCount(); ++c) {
        const auto &ia = logs_a[c].intervals;
        const auto &ib = logs_b[c].intervals;
        const std::size_t n = std::min(ia.size(), ib.size());
        for (std::size_t i = 0; i < n; ++i) {
            const bool same = ia[i].entries == ib[i].entries &&
                              ia[i].cisn == ib[i].cisn &&
                              ia[i].timestamp == ib[i].timestamp &&
                              ia[i].predecessors == ib[i].predecessors;
            if (same)
                continue;
            std::printf("first divergence: core %u interval %zu\n", c,
                        i);
            std::printf("--- %s (ts %llu, %zu entries)\n",
                        o.files[0].c_str(),
                        (unsigned long long)ia[i].timestamp,
                        ia[i].entries.size());
            for (const auto &e : ia[i].entries)
                printEntry(e);
            std::printf("+++ %s (ts %llu, %zu entries)\n",
                        o.files[1].c_str(),
                        (unsigned long long)ib[i].timestamp,
                        ib[i].entries.size());
            for (const auto &e : ib[i].entries)
                printEntry(e);
            return 1;
        }
        if (ia.size() != ib.size()) {
            std::printf("core %u: interval counts differ "
                        "(%zu vs %zu; first %zu identical)\n",
                        c, ia.size(), ib.size(), n);
            return 1;
        }
    }
    std::printf("identical: %llu intervals across %u cores\n",
                (unsigned long long)a.info().intervals, a.coreCount());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);
    try {
        if (o.command == "info")
            return cmdInfo(o);
        if (o.command == "stats")
            return cmdStats(o);
        if (o.command == "dump")
            return cmdDump(o);
        if (o.command == "verify")
            return cmdVerify(o);
        if (o.command == "diff")
            return cmdDiff(o);
        if (o.command == "repair")
            return cmdRepair(o);
    } catch (const rnr::LogStoreError &e) {
        std::fprintf(stderr, "rrlog: %s: %s\n",
                     o.files.empty() ? "?" : o.files[0].c_str(),
                     e.what());
        return exitCodeFor(e);
    }
    usage();
}
