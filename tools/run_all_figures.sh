#!/usr/bin/env bash
#
# Build, test, and regenerate every paper figure in one shot.
#
#   tools/run_all_figures.sh [--jobs N] [--build-dir DIR] [--check]
#                            [--faults]
#
# Builds RelWithDebInfo, runs the full ctest suite, then runs every
# fig*/ablation*/table* bench through the SweepRunner parallel engine
# (--jobs N workers per bench, --timing so each prints its [sweep]
# throughput line). Any nonzero exit aborts the run.
#
# --check: instead of the figure run, configure a separate
# AddressSanitizer build (-DRR_SANITIZE=address, build-asan/) and run
# the tier-1 ctest suite under it. Use RR_SANITIZE=thread in the
# environment to check with ThreadSanitizer instead.
#
# --faults: instead of the figure run, exercise the fault-injection
# robustness surface end to end through the installed binaries (see
# docs/ROBUSTNESS.md): zero-fault plans are byte-identical, transient
# I/O faults are absorbed invisibly, an injected crash leaves a torn
# staging file that `rrlog repair` salvages into a replayable prefix,
# and a log-byte budget yields a partial-flagged file that replays
# with --allow-partial.

set -euo pipefail

jobs="${RR_JOBS:-$(nproc)}"
build_dir="build"
check=0
faults=0
while [[ $# -gt 0 ]]; do
    case "$1" in
        --jobs|-j) jobs="$2"; shift 2 ;;
        --jobs=*) jobs="${1#*=}"; shift ;;
        --build-dir) build_dir="$2"; shift 2 ;;
        --check) check=1; shift ;;
        --faults) faults=1; shift ;;
        *) echo "usage: $0 [--jobs N] [--build-dir DIR]" \
                "[--check] [--faults]" >&2
           exit 2 ;;
    esac
done

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

if [[ $check -eq 1 ]]; then
    sanitizer="${RR_SANITIZE:-address}"
    san_dir="build-${sanitizer:0:4}san"
    echo "== sanitizer check ($sanitizer, $san_dir) =="
    cmake -B "$san_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DRR_SANITIZE="$sanitizer"
    cmake --build "$san_dir" -j "$(nproc)"
    ctest --test-dir "$san_dir" --output-on-failure -j "$(nproc)"
    echo "== sanitizer check passed ($sanitizer) =="
    exit 0
fi

echo "== configure + build ($build_dir, RelWithDebInfo) =="
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)"

if [[ $faults -eq 1 ]]; then
    rec=("$build_dir"/rrsim record fft --cores 2 --scale 8
         --chunk-bytes 256)
    clean="$build_dir/faults_clean.rrlog"

    echo "== faults: zero-fault plan is byte-identical =="
    "${rec[@]}" --out "$clean"
    "${rec[@]}" --faults seed=7 --out "$build_dir/faults_seeded.rrlog"
    cmp "$clean" "$build_dir/faults_seeded.rrlog"

    echo "== faults: transient I/O faults are absorbed invisibly =="
    "${rec[@]}" \
        --faults short-write=0.3,io-error=0.1,enospc=0.05,fsync-fail=1,seed=11 \
        --out "$build_dir/faults_transient.rrlog"
    cmp "$clean" "$build_dir/faults_transient.rrlog"

    echo "== faults: crash -> repair -> partial replay =="
    "${rec[@]}" --faults crash-at=700 --out "$build_dir/faults_torn.rrlog"
    test ! -e "$build_dir/faults_torn.rrlog"   # never published
    "$build_dir"/rrlog repair "$build_dir/faults_torn.rrlog.tmp" \
        "$build_dir/faults_repaired.rrlog"
    "$build_dir"/rrlog verify "$build_dir/faults_repaired.rrlog"
    "$build_dir"/rrsim replay --allow-partial \
        "$build_dir/faults_repaired.rrlog"

    echo "== faults: log budget yields a replayable partial file =="
    budget=$(( $(stat -c %s "$clean") / 2 ))
    "${rec[@]}" --faults "budget=$budget" \
        --out "$build_dir/faults_budget.rrlog"
    "$build_dir"/rrlog verify "$build_dir/faults_budget.rrlog"
    "$build_dir"/rrsim replay --allow-partial \
        "$build_dir/faults_budget.rrlog"

    rm -f "$build_dir"/faults_{clean,seeded,transient,repaired,budget}.rrlog \
          "$build_dir"/faults_torn.rrlog.tmp
    echo "== fault smoke passed =="
    exit 0
fi

echo "== ctest =="
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

echo "== rrlog smoke (record -> verify -> stats -> replay) =="
smoke="$build_dir/smoke.rrlog"
"$build_dir"/rrsim record fft --cores 4 --out "$smoke"
"$build_dir"/rrlog verify "$smoke"
"$build_dir"/rrlog stats "$smoke"
"$build_dir"/rrsim replay "$smoke"
rm -f "$smoke"

benches=(
    table1_params
    fig1_ooo_fraction
    fig9_reordered_fraction
    fig10_inorder_blocks
    fig11_log_size
    fig12_traq_utilization
    fig13_replay_time
    fig14_scalability
    fig15_parallel_replay
    ablation_interval_cap
    ablation_snoop_table
    ablation_traq_size
    ablation_directory
)

start=$SECONDS
for bench in "${benches[@]}"; do
    echo
    echo "== $bench (--jobs $jobs) =="
    if [[ "$bench" == "table1_params" ]]; then
        # Prints static structure sizes; no sweep options.
        "$build_dir/bench/$bench"
    else
        "$build_dir/bench/$bench" --jobs "$jobs" --timing
    fi
done

echo
echo "== all figures done in $((SECONDS - start))s (jobs=$jobs) =="
