#!/usr/bin/env bash
#
# Build, test, and regenerate every paper figure in one shot.
#
#   tools/run_all_figures.sh [--jobs N] [--build-dir DIR]
#
# Builds RelWithDebInfo, runs the full ctest suite, then runs every
# fig*/ablation*/table* bench through the SweepRunner parallel engine
# (--jobs N workers per bench, --timing so each prints its [sweep]
# throughput line). Any nonzero exit aborts the run.

set -euo pipefail

jobs="${RR_JOBS:-$(nproc)}"
build_dir="build"
while [[ $# -gt 0 ]]; do
    case "$1" in
        --jobs|-j) jobs="$2"; shift 2 ;;
        --jobs=*) jobs="${1#*=}"; shift ;;
        --build-dir) build_dir="$2"; shift 2 ;;
        *) echo "usage: $0 [--jobs N] [--build-dir DIR]" >&2; exit 2 ;;
    esac
done

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

echo "== configure + build ($build_dir, RelWithDebInfo) =="
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)"

echo "== ctest =="
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

benches=(
    table1_params
    fig1_ooo_fraction
    fig9_reordered_fraction
    fig10_inorder_blocks
    fig11_log_size
    fig12_traq_utilization
    fig13_replay_time
    fig14_scalability
    fig15_parallel_replay
    ablation_interval_cap
    ablation_snoop_table
    ablation_traq_size
    ablation_directory
)

start=$SECONDS
for bench in "${benches[@]}"; do
    echo
    echo "== $bench (--jobs $jobs) =="
    if [[ "$bench" == "table1_params" ]]; then
        # Prints static structure sizes; no sweep options.
        "$build_dir/bench/$bench"
    else
        "$build_dir/bench/$bench" --jobs "$jobs" --timing
    fi
done

echo
echo "== all figures done in $((SECONDS - start))s (jobs=$jobs) =="
