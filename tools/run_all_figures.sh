#!/usr/bin/env bash
#
# Build, test, and regenerate every paper figure in one shot.
#
#   tools/run_all_figures.sh [--jobs N] [--build-dir DIR] [--check]
#
# Builds RelWithDebInfo, runs the full ctest suite, then runs every
# fig*/ablation*/table* bench through the SweepRunner parallel engine
# (--jobs N workers per bench, --timing so each prints its [sweep]
# throughput line). Any nonzero exit aborts the run.
#
# --check: instead of the figure run, configure a separate
# AddressSanitizer build (-DRR_SANITIZE=address, build-asan/) and run
# the tier-1 ctest suite under it. Use RR_SANITIZE=thread in the
# environment to check with ThreadSanitizer instead.

set -euo pipefail

jobs="${RR_JOBS:-$(nproc)}"
build_dir="build"
check=0
while [[ $# -gt 0 ]]; do
    case "$1" in
        --jobs|-j) jobs="$2"; shift 2 ;;
        --jobs=*) jobs="${1#*=}"; shift ;;
        --build-dir) build_dir="$2"; shift 2 ;;
        --check) check=1; shift ;;
        *) echo "usage: $0 [--jobs N] [--build-dir DIR] [--check]" >&2
           exit 2 ;;
    esac
done

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

if [[ $check -eq 1 ]]; then
    sanitizer="${RR_SANITIZE:-address}"
    san_dir="build-${sanitizer:0:4}san"
    echo "== sanitizer check ($sanitizer, $san_dir) =="
    cmake -B "$san_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DRR_SANITIZE="$sanitizer"
    cmake --build "$san_dir" -j "$(nproc)"
    ctest --test-dir "$san_dir" --output-on-failure -j "$(nproc)"
    echo "== sanitizer check passed ($sanitizer) =="
    exit 0
fi

echo "== configure + build ($build_dir, RelWithDebInfo) =="
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)"

echo "== ctest =="
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

echo "== rrlog smoke (record -> verify -> stats -> replay) =="
smoke="$build_dir/smoke.rrlog"
"$build_dir"/rrsim record fft --cores 4 --out "$smoke"
"$build_dir"/rrlog verify "$smoke"
"$build_dir"/rrlog stats "$smoke"
"$build_dir"/rrsim replay "$smoke"
rm -f "$smoke"

benches=(
    table1_params
    fig1_ooo_fraction
    fig9_reordered_fraction
    fig10_inorder_blocks
    fig11_log_size
    fig12_traq_utilization
    fig13_replay_time
    fig14_scalability
    fig15_parallel_replay
    ablation_interval_cap
    ablation_snoop_table
    ablation_traq_size
    ablation_directory
)

start=$SECONDS
for bench in "${benches[@]}"; do
    echo
    echo "== $bench (--jobs $jobs) =="
    if [[ "$bench" == "table1_params" ]]; then
        # Prints static structure sizes; no sweep options.
        "$build_dir/bench/$bench"
    else
        "$build_dir/bench/$bench" --jobs "$jobs" --timing
    fi
done

echo
echo "== all figures done in $((SECONDS - start))s (jobs=$jobs) =="
