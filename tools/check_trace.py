#!/usr/bin/env python3
"""Validate a trace file emitted by rrsim/sim::TraceSink.

Checks that the file is well-formed Chrome trace format (the subset the
simulator emits) and that its event structure is sane:

  * top level is an object with a "traceEvents" list;
  * every event has name/ph/pid/tid, a numeric ts (except "M" metadata),
    and a known phase ("X", "i", "C" or "M");
  * "X" (complete) events carry a non-negative numeric "dur";
  * per (pid, tid, name) series, "X" events are properly nested: two
    events either do not overlap in time or one fully contains the
    other. Grouping by name keeps simultaneous-policy recordings valid:
    each recorder policy emits its own back-to-back interval series on
    the core's track, and different policies' intervals may overlap;
  * instant events use thread scope ("s": "t"), so Perfetto does not
    draw them as whole-trace vertical lines.

Usage: check_trace.py FILE [--quiet]
Exit status 0 when the trace is valid, 1 otherwise.
"""

import json
import sys

KNOWN_PHASES = {"X", "i", "C", "M"}


def fail(msg):
    print(f"check_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_events(events):
    """Field-level validation; returns per-track lists of X events."""
    tracks = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i}: not an object")
        for field in ("name", "ph", "pid", "tid"):
            if field not in ev:
                fail(f"event {i}: missing '{field}'")
        ph = ev["ph"]
        if ph not in KNOWN_PHASES:
            fail(f"event {i}: unknown phase {ph!r}")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"event {i} ({ev['name']!r}): missing/non-numeric 'ts'")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"event {i} ({ev['name']!r}): bad 'dur' {dur!r}")
            tracks.setdefault((ev["pid"], ev["tid"], ev["name"]),
                              []).append((ts, ts + dur, i, ev["name"]))
        if ph == "i" and ev.get("s") not in (None, "t", "p", "g"):
            fail(f"event {i}: bad instant scope {ev.get('s')!r}")
    return tracks


def check_nesting(tracks):
    """X events of one series must not partially overlap."""
    for (pid, tid, _series), spans in tracks.items():
        # Earlier start first; for ties, the longer (outer) event first.
        spans.sort(key=lambda s: (s[0], -(s[1] - s[0])))
        stack = []
        for start, end, idx, name in spans:
            while stack and stack[-1][1] <= start:
                stack.pop()
            if stack and end > stack[-1][1]:
                o_start, o_end, o_idx, o_name = stack[-1]
                fail(f"track pid={pid} tid={tid}: event {idx} "
                     f"({name!r}, [{start}, {end})) partially overlaps "
                     f"event {o_idx} ({o_name!r}, [{o_start}, {o_end}))")
            stack.append((start, end, idx, name))


def main(argv):
    args = [a for a in argv[1:] if a != "--quiet"]
    quiet = "--quiet" in argv[1:]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(args[0], encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read {args[0]}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{args[0]}: invalid JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' must be a list")

    tracks = validate_events(events)
    check_nesting(tracks)

    if not quiet:
        n_x = sum(len(s) for s in tracks.values())
        print(f"check_trace: OK — {len(events)} events, "
              f"{n_x} complete events on {len(tracks)} tracks")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
