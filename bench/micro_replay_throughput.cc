/**
 * @file
 * Replay data-path throughput microbenchmark: records the largest
 * suite kernel (lu, scale 24, 8 cores) with dependency edges, persists
 * the patched logs to a `.rrlog`, then times every stage of the
 * disk-to-memory replay pipeline:
 *
 *  - decode_streamed     sequential chunk decode over buffered reads
 *                        (the pre-optimization ingest path);
 *  - decode_parallel     zero-copy (mmap) ingest + per-core parallel
 *                        chunk decode into bump arenas;
 *  - replay_sequential   end-to-end: streamed decode + sequential
 *                        Replayer (the pre-optimization disk-replay
 *                        path, and the baseline of the 2x gate);
 *  - replay_parallel_unbatched  end-to-end: parallel decode + parallel
 *                        engine with per-interval commits;
 *  - replay_parallel     end-to-end: parallel decode + parallel engine
 *                        with batched, affinity-aware commits (the
 *                        shipping path);
 *  - replay_parallel_directory  the shipping path on a log recorded
 *                        under the home-directory coherence backend
 *                        (Section 4.3) — different log shape, same
 *                        data path; informational, outside the gate.
 *
 * Every stage reports wall-clock intervals/sec and MiB/s (of on-disk
 * log bytes); results land in BENCH_replay_throughput.json for
 * tools/perf_compare.py. Both decoded log sets are checked
 * bit-identical and all three replays must agree on memory
 * fingerprint and instruction count.
 *
 * The gated end-to-end speedup is host-core-count independent, per
 * the repo's fig15 methodology (docs/REPLAY.md, "Measured speedup"):
 * raw wall-clock only shows parallel gains when the host really has
 * >= workers free cores, so the new path's time is measured as what
 * its schedules support on `workers` lanes — the per-chunk decode
 * durations list-scheduled on the worker count, plus the parallel
 * engine's measured schedule span — against the honestly
 * single-threaded wall of streamed decode + sequential replay.
 * Unless --tiny, the run fails below 2x.
 */

#include "bench/common.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "rnr/logstore.hh"
#include "rnr/parallel_replayer.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"
#include "sim/jobs.hh"
#include "sim/logging.hh"

namespace
{

using namespace rr;

struct Options
{
    std::uint32_t jobs = 0; ///< engine/decode workers; 0 = all cores
    bool tiny = false;      ///< CI smoke: small kernel, no 2x gate
    std::string json = "BENCH_replay_throughput.json";
};

[[noreturn]] void
usage(const char *prog)
{
    std::fprintf(stderr,
                 "usage: %s [--jobs N] [--tiny] [--json FILE]\n"
                 "  --jobs N     decode/replay workers "
                 "(default: all host cores; env RR_JOBS)\n"
                 "  --tiny       small kernel, skip the 2x gate "
                 "(CI smoke)\n"
                 "  --json FILE  output file "
                 "(default BENCH_replay_throughput.json)\n",
                 prog);
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    if (const char *env = std::getenv("RR_JOBS"))
        o.jobs = static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if ((arg == "--jobs" || arg == "-j") && i + 1 < argc)
            o.jobs = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (arg.rfind("--jobs=", 0) == 0)
            o.jobs = static_cast<std::uint32_t>(
                std::strtoul(arg.c_str() + 7, nullptr, 10));
        else if (arg == "--tiny")
            o.tiny = true;
        else if (arg == "--json" && i + 1 < argc)
            o.json = argv[++i];
        else if (arg.rfind("--json=", 0) == 0)
            o.json = arg.substr(7);
        else
            usage(argv[0]);
    }
    return o;
}

/** Minimum wall-clock of @p reps runs of @p fn (steady clock). */
template <typename Fn>
double
bestOf(int reps, Fn &&fn)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        const double s = std::chrono::duration<double>(t1 - t0).count();
        if (r == 0 || s < best)
            best = s;
    }
    return best;
}

struct StageResult
{
    std::string name;
    double seconds = 0.0;
    double intervalsPerSec = 0.0;
    double mibPerSec = 0.0;
};

/**
 * Time every chunk's decode with a serial walk, then list-schedule the
 * durations on @p lanes workers (greedy least-loaded, the same
 * schedule model the parallel engine reports): the decode wall that
 * readAllParallel supports on a host with that many free cores.
 * Chunks carry no dependencies, so unlike the engine's span there is
 * no DAG to respect — only lane capacity.
 */
double
decodeSpanSeconds(const std::string &path, std::uint32_t lanes)
{
    rr::rnr::LogReader reader(path, rr::rnr::IngestMode::Auto);
    std::vector<double> chunk_secs;
    std::uint64_t cur_seq = ~std::uint64_t{0};
    auto t0 = std::chrono::steady_clock::now();
    const auto close = [&] {
        const auto now = std::chrono::steady_clock::now();
        chunk_secs.push_back(
            std::chrono::duration<double>(now - t0).count());
        t0 = now;
    };
    reader.walkIntervals([&](rr::sim::CoreId, const rr::rnr::IntervalRecord &,
                             const rr::rnr::LogReader::ChunkView &view) {
        if (view.seq != cur_seq) {
            if (cur_seq != ~std::uint64_t{0})
                close();
            else
                t0 = std::chrono::steady_clock::now();
            cur_seq = view.seq;
        }
        return true;
    });
    if (cur_seq != ~std::uint64_t{0})
        close();

    std::vector<double> lane(lanes == 0 ? 1 : lanes, 0.0);
    for (double d : chunk_secs)
        *std::min_element(lane.begin(), lane.end()) += d;
    return *std::max_element(lane.begin(), lane.end());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rrbench;
    const Options o = parseArgs(argc, argv);
    const std::uint32_t workers = sim::resolveJobs(o.jobs);

    // The largest suite kernel; --tiny shrinks it to CI-smoke size.
    const App app = o.tiny ? App{"lu", 2} : App{"lu", 24};
    const std::uint32_t cores = o.tiny ? 4 : 8;
    sim::RecorderConfig policy;
    policy.mode = sim::RecorderMode::Opt;
    // Small intervals are the design point that exposes replay
    // parallelism (fig15); they also make the decode side chunk-rich.
    policy.maxIntervalInstructions = 128;
    policy.recordDependencies = true;

    printTitle("Replay data-path throughput (" + app.name + " scale " +
               std::to_string(app.scale) + ", " + std::to_string(cores) +
               " cores, " + std::to_string(workers) + " workers)");

    const Recorded rec = record(app, cores, {policy});
    std::vector<rnr::CoreLog> patched;
    for (const auto &log : rec.result.logs.at(0))
        patched.push_back(rnr::patch(log));

    // Persist once; every stage starts from this file.
    const char *tmpdir = std::getenv("TMPDIR");
    const std::string path =
        std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") + "/rr_micro_" +
        std::to_string(static_cast<unsigned long>(::getpid())) + ".rrlog";
    {
        rnr::RecordingMeta meta;
        meta.kernel = app.name;
        meta.cores = cores;
        meta.scale = app.scale;
        meta.mode = policy.mode;
        meta.intervalCap = policy.maxIntervalInstructions;
        meta.deps = true;
        rnr::LogWriter writer(path, meta);
        for (sim::CoreId c = 0; c < patched.size(); ++c)
            for (const auto &iv : patched[c].intervals)
                writer.append(c, iv);
        rnr::RecordingSummary summary;
        summary.cores.resize(patched.size());
        for (std::size_t c = 0; c < patched.size(); ++c)
            summary.cores[c].intervals = patched[c].intervals.size();
        writer.finish(summary);
    }

    std::uint64_t fileBytes = 0;
    std::uint64_t totalIntervals = 0;
    for (const auto &log : patched)
        totalIntervals += log.intervals.size();

    const int reps = 3;
    std::vector<StageResult> stages;
    const auto addStage = [&](const char *name, double seconds) {
        StageResult s;
        s.name = name;
        s.seconds = seconds;
        s.intervalsPerSec =
            static_cast<double>(totalIntervals) / seconds;
        s.mibPerSec = static_cast<double>(fileBytes) /
                      (1024.0 * 1024.0) / seconds;
        stages.push_back(s);
    };

    // -- decode-only stages ------------------------------------------
    std::vector<rnr::CoreLog> decodedStreamed;
    addStage("decode_streamed", bestOf(reps, [&] {
        rnr::LogReader reader(path, rnr::IngestMode::Streamed);
        fileBytes = reader.fileBytes();
        decodedStreamed = reader.readAll();
    }));

    std::vector<rnr::CoreLog> decodedParallel;
    rnr::IngestMode fastIngest = rnr::IngestMode::Auto;
    addStage("decode_parallel", bestOf(reps, [&] {
        rnr::LogReader reader(path, rnr::IngestMode::Auto);
        fastIngest = reader.ingestMode();
        decodedParallel = reader.readAllParallel(workers);
    }));
    // Recompute rates for decode_streamed now that fileBytes is known.
    stages[0].mibPerSec = static_cast<double>(fileBytes) /
                          (1024.0 * 1024.0) / stages[0].seconds;

    RR_ASSERT(decodedStreamed.size() == decodedParallel.size(),
              "ingest modes decoded different core counts");
    for (std::size_t c = 0; c < decodedStreamed.size(); ++c)
        RR_ASSERT(decodedStreamed[c].intervals ==
                      decodedParallel[c].intervals,
                  "streamed and parallel decode disagree");

    // -- end-to-end replay stages (disk -> final memory) -------------
    std::uint64_t seqFingerprint = 0, seqInstructions = 0;
    addStage("replay_sequential", bestOf(reps, [&] {
        rnr::LogReader reader(path, rnr::IngestMode::Streamed);
        rnr::Replayer rep(rec.workload.program, reader.readAll(),
                          rec.initial.clone());
        const rnr::ReplayResult res = rep.run();
        seqFingerprint = res.memory.fingerprint();
        seqInstructions = res.instructions;
    }));

    const auto parallelReplay = [&](bool batch) {
        rnr::LogReader reader(path, rnr::IngestMode::Auto);
        rnr::ParallelReplayOptions popts;
        popts.workers = workers;
        popts.batchCommits = batch;
        rnr::ParallelReplayer rep(rec.workload.program,
                                  reader.readAllParallel(workers),
                                  rec.initial.clone(), popts);
        const rnr::ReplayResult res = rep.run();
        RR_ASSERT(res.memory.fingerprint() == seqFingerprint &&
                      res.instructions == seqInstructions,
                  "parallel replay diverged from sequential replay");
        return res;
    };
    addStage("replay_parallel_unbatched",
             bestOf(reps, [&] { parallelReplay(false); }));
    double replaySpan = 0.0, replaySerial = 0.0;
    addStage("replay_parallel", bestOf(reps, [&] {
        const rnr::ReplayResult res = parallelReplay(true);
        if (replaySpan == 0.0 || res.measuredSpanSeconds < replaySpan) {
            replaySpan = res.measuredSpanSeconds;
            replaySerial = res.measuredSerialSeconds;
        }
    }));

    // The decode wall the new path supports on `workers` lanes (see
    // decodeSpanSeconds); measured before the file goes away.
    const double decodeSpan = decodeSpanSeconds(path, workers);

    std::remove(path.c_str());

    // -- directory-backend row ---------------------------------------
    // The same kernel recorded on the home-directory backend (Section
    // 4.3), replayed by the shipping parallel path. Directory logs have
    // a different shape (conservative Snoop Table bumps, sparse snoop
    // stream), so this row keeps the data path's throughput visible on
    // both coherence backends. Not part of the 2x gate — its baseline
    // is a different recording.
    const Recorded drec =
        record(app, cores, {policy}, sim::CoherenceKind::Directory);
    std::vector<rnr::CoreLog> dpatched;
    for (const auto &log : drec.result.logs.at(0))
        dpatched.push_back(rnr::patch(log));
    const std::string dpath = path + ".dir";
    {
        rnr::RecordingMeta meta;
        meta.kernel = app.name;
        meta.cores = cores;
        meta.scale = app.scale;
        meta.mode = policy.mode;
        meta.intervalCap = policy.maxIntervalInstructions;
        meta.deps = true;
        meta.coherence = sim::CoherenceKind::Directory;
        rnr::LogWriter writer(dpath, meta);
        for (sim::CoreId c = 0; c < dpatched.size(); ++c)
            for (const auto &iv : dpatched[c].intervals)
                writer.append(c, iv);
        rnr::RecordingSummary summary;
        summary.cores.resize(dpatched.size());
        for (std::size_t c = 0; c < dpatched.size(); ++c)
            summary.cores[c].intervals = dpatched[c].intervals.size();
        writer.finish(summary);
    }
    std::uint64_t dirBytes = 0, dirIntervals = 0;
    for (const auto &log : dpatched)
        dirIntervals += log.intervals.size();
    const double dirSeconds = bestOf(reps, [&] {
        rnr::LogReader reader(dpath, rnr::IngestMode::Auto);
        dirBytes = reader.fileBytes();
        rnr::ParallelReplayOptions popts;
        popts.workers = workers;
        rnr::ParallelReplayer rep(drec.workload.program,
                                  reader.readAllParallel(workers),
                                  drec.initial.clone(), popts);
        const rnr::ReplayResult res = rep.run();
        RR_ASSERT(res.memory.fingerprint() ==
                          drec.result.memoryFingerprint &&
                      res.instructions == drec.result.totalInstructions,
                  "directory replay diverged from its recording");
    });
    {
        StageResult s;
        s.name = "replay_parallel_directory";
        s.seconds = dirSeconds;
        s.intervalsPerSec =
            static_cast<double>(dirIntervals) / dirSeconds;
        s.mibPerSec = static_cast<double>(dirBytes) /
                      (1024.0 * 1024.0) / dirSeconds;
        stages.push_back(s);
    }
    std::remove(dpath.c_str());

    // -- report -------------------------------------------------------
    std::printf("log: %llu intervals, %.2f MiB on disk, fast ingest: "
                "%s\n",
                static_cast<unsigned long long>(totalIntervals),
                static_cast<double>(fileBytes) / (1024.0 * 1024.0),
                fastIngest == rnr::IngestMode::Mmap ? "mmap"
                                                    : "streamed");
    printColumns({"stage", "seconds", "Kintv/s", "MiB/s"});
    for (const StageResult &s : stages) {
        printCell(s.name);
        printCell(s.seconds, 4);
        printCell(s.intervalsPerSec / 1e3, 1);
        printCell(s.mibPerSec, 2);
        endRow();
    }

    // Host-core-count independent end-to-end comparison (fig15
    // methodology, see the file header): single-threaded baseline wall
    // vs what the new path's schedules support on `workers` lanes.
    const double baselineSeconds = stages[2].seconds;
    const double newPathSeconds = decodeSpan + replaySpan;
    const double speedup = baselineSeconds / newPathSeconds;
    const double wallSpeedup =
        stages[4].intervalsPerSec / stages[2].intervalsPerSec;
    std::printf(
        "end-to-end disk-replay speedup: %.2fx on %u workers\n"
        "  streamed decode + sequential replay: %8.2f ms wall\n"
        "  parallel decode span + engine span:  %8.2f ms "
        "(%.2f + %.2f; schedule-measured,\n"
        "    host-core independent — raw wall gives %.2fx on this "
        "host)\n",
        speedup, workers, baselineSeconds * 1e3, newPathSeconds * 1e3,
        decodeSpan * 1e3, replaySpan * 1e3, wallSpeedup);

    std::ofstream os(o.json);
    if (os) {
        os << "{\n"
           << "  \"bench\": \"replay_throughput\",\n"
           << "  \"kernel\": \"" << app.name << "\",\n"
           << "  \"scale\": " << app.scale << ",\n"
           << "  \"cores\": " << cores << ",\n"
           << "  \"workers\": " << workers << ",\n"
           << "  \"file_bytes\": " << fileBytes << ",\n"
           << "  \"intervals\": " << totalIntervals << ",\n"
           << "  \"end_to_end_speedup\": " << speedup << ",\n"
           << "  \"end_to_end_wall_speedup\": " << wallSpeedup << ",\n"
           << "  \"baseline_seconds\": " << baselineSeconds << ",\n"
           << "  \"decode_span_seconds\": " << decodeSpan << ",\n"
           << "  \"replay_span_seconds\": " << replaySpan << ",\n"
           << "  \"replay_serial_seconds\": " << replaySerial << ",\n"
           << "  \"stages\": {\n";
        for (std::size_t i = 0; i < stages.size(); ++i) {
            const StageResult &s = stages[i];
            os << "    \"" << s.name << "\": {"
               << "\"seconds\": " << s.seconds << ", "
               << "\"intervals_per_sec\": " << s.intervalsPerSec << ", "
               << "\"mib_per_sec\": " << s.mibPerSec << "}"
               << (i + 1 < stages.size() ? "," : "") << "\n";
        }
        os << "  }\n}\n";
        std::printf("[json] saved %s\n", o.json.c_str());
    } else {
        std::fprintf(stderr, "[json] cannot open %s\n", o.json.c_str());
    }

    if (!o.tiny && speedup < 2.0) {
        std::printf("FAIL: end-to-end speedup %.2fx < 2.0x\n", speedup);
        return 1;
    }
    return 0;
}
