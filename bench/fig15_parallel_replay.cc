/**
 * @file
 * Extension bench (paper Section 3.6): parallel replay. Recording with
 * explicit dependency edges (Cyrus/Karma-style ordering) lets the
 * replayer run intervals of different cores concurrently; the paper
 * notes that pairing RelaxReplay with such an ordering "will admit
 * parallel replay of intervals" and expects "substantially faster
 * replay". This bench quantifies it: for each application, sequential
 * replay cycles vs the dependency-DAG makespan, under small (1K) and
 * large (4K) interval caps — smaller intervals expose more parallelism
 * (the Karma/Cyrus design point), at the log-size cost Figure 11
 * showed.
 */

#include "bench/common.hh"

#include "rnr/parallel_schedule.hh"
#include "rnr/patcher.hh"

namespace
{

rr::rnr::ParallelSchedule
scheduleFor(const rrbench::Recorded &r, int policy)
{
    std::vector<rr::rnr::CoreLog> patched;
    for (const auto &log : r.result.logs.at(policy))
        patched.push_back(rr::rnr::patch(log));
    return rr::rnr::buildParallelSchedule(patched);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rrbench;
    const BenchOptions opt = parseBenchOptions(argc, argv);

    printTitle("Extension: parallel replay speedup from recorded "
               "dependencies (Opt, 8 cores)");

    std::vector<rr::sim::RecorderConfig> pol(2);
    pol[0].mode = rr::sim::RecorderMode::Opt;
    pol[0].maxIntervalInstructions = 1024;
    pol[0].recordDependencies = true;
    pol[1].mode = rr::sim::RecorderMode::Opt;
    pol[1].maxIntervalInstructions = 4096;
    pol[1].recordDependencies = true;

    const std::vector<Recorded> suite = recordSuite(8, pol, opt);
    std::vector<rr::rnr::ParallelSchedule> s1s(suite.size());
    std::vector<rr::rnr::ParallelSchedule> s4s(suite.size());
    forEachParallel(suite.size() * 2, opt, [&](std::size_t j) {
        const std::size_t i = j / 2;
        if (j % 2 == 0)
            s1s[i] = scheduleFor(suite[i], 0);
        else
            s4s[i] = scheduleFor(suite[i], 1);
    });

    printColumns({"app", "speedup-1K", "speedup-4K", "edges-1K",
                  "edges/interval"});
    double sum1k = 0, sum4k = 0;
    for (std::size_t i = 0; i < apps().size(); ++i) {
        const App &app = apps()[i];
        const auto &s1 = s1s[i];
        const auto &s4 = s4s[i];
        sum1k += s1.speedup();
        sum4k += s4.speedup();
        printCell(app.name);
        printCell(s1.speedup(), 2);
        printCell(s4.speedup(), 2);
        printCell(static_cast<double>(s1.edges), 0);
        printCell(static_cast<double>(s1.edges) /
                      static_cast<double>(
                          std::max<std::uint64_t>(1, s1.order.size())),
                  2);
        endRow();
    }
    printCell("average");
    printCell(sum1k / apps().size(), 2);
    printCell(sum4k / apps().size(), 2);
    endRow();
    std::printf("(upper bound is the core count, 8; barrier-heavy apps "
                "serialize at barriers)\n");
    return 0;
}
