/**
 * @file
 * Extension bench (paper Section 3.6): parallel replay. Recording with
 * explicit dependency edges (Cyrus/Karma-style ordering) lets the
 * replayer run intervals of different cores concurrently; the paper
 * notes that pairing RelaxReplay with such an ordering "will admit
 * parallel replay of intervals" and expects "substantially faster
 * replay". This bench quantifies it two ways, per application and under
 * small (1K) and large (4K) interval caps — smaller intervals expose
 * more parallelism (the Karma/Cyrus design point), at the log-size cost
 * Figure 11 showed:
 *
 *  - modelled: sequential replay cycles vs the dependency-DAG makespan
 *    under the ReplayCostModel (buildParallelSchedule);
 *  - measured: the multi-threaded engine (rnr::ParallelReplayer)
 *    actually replays the 1K log with 8 workers, times every interval,
 *    and reports serial-work / schedule-span from those measured
 *    durations. The span is the wall-clock the DAG supports on 8
 *    hardware threads, so the ratio is host-CPU-count independent
 *    (raw wall-clock equals it only when the host really has >= 8
 *    free cores). Each run is also verified bit-identical to the
 *    sequential replayer.
 */

#include "bench/common.hh"

#include <algorithm>

#include "rnr/parallel_replayer.hh"
#include "rnr/parallel_schedule.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"
#include "sim/logging.hh"

namespace
{

std::vector<rr::rnr::CoreLog>
patchedLogs(const rrbench::Recorded &r, int policy)
{
    std::vector<rr::rnr::CoreLog> patched;
    for (const auto &log : r.result.logs.at(policy))
        patched.push_back(rr::rnr::patch(log));
    return patched;
}

rr::rnr::ParallelSchedule
scheduleFor(const rrbench::Recorded &r, int policy)
{
    return rr::rnr::buildParallelSchedule(patchedLogs(r, policy));
}

/** Measured engine speedup on @p workers threads; dies on divergence
 *  or any mismatch with the sequential replayer. */
double
measuredSpeedup(const rrbench::Recorded &r, int policy,
                std::uint32_t workers)
{
    // Both engines replay what the persistent data path delivers
    // (mmap ingest + parallel chunk decode), like `rrsim replay` on a
    // .rrlog file. The engine runs go one at a time, so the decode can
    // use the engine's worker count.
    std::vector<rr::rnr::CoreLog> patched =
        rrbench::roundTripThroughDisk(patchedLogs(r, policy), workers);

    rr::rnr::Replayer seq(r.workload.program, patched,
                          r.initial.clone());
    const rr::rnr::ReplayResult sres = seq.run();

    rr::rnr::ParallelReplayOptions popts;
    popts.workers = workers;
    rr::rnr::ParallelReplayer par(r.workload.program,
                                  std::move(patched),
                                  r.initial.clone(), popts);
    const rr::rnr::ReplayResult pres = par.run();
    RR_ASSERT(pres.memory.fingerprint() == sres.memory.fingerprint() &&
                  pres.instructions == sres.instructions,
              "parallel engine diverged from sequential replay");
    return pres.measuredSpanSeconds > 0.0
               ? pres.measuredSerialSeconds / pres.measuredSpanSeconds
               : 1.0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rrbench;
    const BenchOptions opt = parseBenchOptions(argc, argv);

    printTitle("Extension: parallel replay speedup from recorded "
               "dependencies (Opt, 8 cores)");

    std::vector<rr::sim::RecorderConfig> pol(2);
    pol[0].mode = rr::sim::RecorderMode::Opt;
    pol[0].maxIntervalInstructions = 1024;
    pol[0].recordDependencies = true;
    pol[1].mode = rr::sim::RecorderMode::Opt;
    pol[1].maxIntervalInstructions = 4096;
    pol[1].recordDependencies = true;

    // The same 1K-cap configuration recorded on the home-directory
    // backend (Section 4.3): the dependency edges come from the sparse
    // routed snoop stream instead of the ring broadcast, so this column
    // shows parallel replay neither needs dense snooping nor loses its
    // speedup without it.
    std::vector<rr::sim::RecorderConfig> dpol(1);
    dpol[0] = pol[0];

    std::vector<RecordJob> jobs;
    for (const App &app : apps())
        jobs.push_back({app, 8, pol, rr::sim::CoherenceKind::Snoopy});
    for (const App &app : apps())
        jobs.push_back(
            {app, 8, dpol, rr::sim::CoherenceKind::Directory});
    const std::vector<Recorded> runs = recordAll(jobs, opt);
    const std::size_t napps = apps().size();
    // Recorded is move-only, so address the halves of `runs` in place.
    const auto suite = [&](std::size_t i) -> const Recorded & {
        return runs[i];
    };
    const auto dsuite = [&](std::size_t i) -> const Recorded & {
        return runs[napps + i];
    };

    std::vector<rr::rnr::ParallelSchedule> s1s(napps);
    std::vector<rr::rnr::ParallelSchedule> s4s(napps);
    std::vector<rr::rnr::ParallelSchedule> d1s(napps);
    forEachParallel(napps * 3, opt, [&](std::size_t j) {
        const std::size_t i = j / 3;
        if (j % 3 == 0)
            s1s[i] = scheduleFor(suite(i), 0);
        else if (j % 3 == 1)
            s4s[i] = scheduleFor(suite(i), 1);
        else
            d1s[i] = scheduleFor(dsuite(i), 0);
    });

    // The engine runs are themselves multi-threaded (8 workers each),
    // so they go one at a time — overlapping them would just have the
    // engines contend for the same host cores and distort every
    // measured duration.
    std::vector<double> m1s(napps);
    std::vector<double> md1s(napps);
    for (std::size_t i = 0; i < napps; ++i) {
        m1s[i] = measuredSpeedup(suite(i), 0, 8);
        md1s[i] = measuredSpeedup(dsuite(i), 0, 8);
    }

    printColumns({"app", "model-1K", "measured-1K", "model-4K",
                  "dir-1K", "dir-meas", "edges/interval"});
    double sum1k = 0, summ = 0, sum4k = 0, sumd = 0, sumdm = 0;
    for (std::size_t i = 0; i < apps().size(); ++i) {
        const App &app = apps()[i];
        const auto &s1 = s1s[i];
        const auto &s4 = s4s[i];
        sum1k += s1.speedup();
        summ += m1s[i];
        sum4k += s4.speedup();
        sumd += d1s[i].speedup();
        sumdm += md1s[i];
        printCell(app.name);
        printCell(s1.speedup(), 2);
        printCell(m1s[i], 2);
        printCell(s4.speedup(), 2);
        printCell(d1s[i].speedup(), 2);
        printCell(md1s[i], 2);
        printCell(static_cast<double>(s1.edges) /
                      static_cast<double>(
                          std::max<std::uint64_t>(1, s1.order.size())),
                  2);
        endRow();
    }
    printCell("average");
    printCell(sum1k / apps().size(), 2);
    printCell(summ / apps().size(), 2);
    printCell(sum4k / apps().size(), 2);
    printCell(sumd / apps().size(), 2);
    printCell(sumdm / apps().size(), 2);
    endRow();
    std::printf("(measured-1K: ParallelReplayer, 8 workers, verified "
                "against sequential replay; upper bound is the core "
                "count, 8; barrier-heavy apps serialize at barriers)\n");

    const double best =
        *std::max_element(m1s.begin(), m1s.end());
    const double dbest =
        *std::max_element(md1s.begin(), md1s.end());
    if (best < 1.5 || dbest < 1.5) {
        std::printf("FAIL: best measured speedup snoopy %.2fx / "
                    "directory %.2fx < 1.5x\n",
                    best, dbest);
        return 1;
    }
    std::printf("best measured speedup snoopy %.2fx, directory %.2fx "
                "(>= 1.5x threshold)\n",
                best, dbest);
    return 0;
}
