/**
 * @file
 * Ablation: the directory-coherence extension (Section 4.3). Under a
 * directory protocol a cache stops observing a line's transactions
 * after losing its tracking state, so RelaxReplay_Opt conservatively
 * bumps the Snoop Table on those events — turning any still-uncounted
 * access to the line into a reordered entry. This bench measures the
 * cost of that conservatism as extra reordered accesses and log bits,
 * three ways:
 *
 *  - "snoopy":    the ring backend, no bump (the paper's baseline);
 *  - "emulated":  the ring backend with `directoryEvictionBump`, the
 *                 pre-backend approximation that bumped on the
 *                 recording core's own dirty L1 evictions. DEPRECATED:
 *                 the real backend below supersedes it; this column is
 *                 kept for one release as a comparison point and will
 *                 be removed together with the RecorderConfig knob's
 *                 snoopy-mode use.
 *  - "directory": the real home-directory MESI backend (src/mem/
 *                 directory.cc), where the bumps come from actual
 *                 protocol events — PutM writebacks and directory
 *                 entry destruction — and the snoop stream itself is
 *                 sparse (only routed transactions are observed).
 *
 * Correctness of all three is enforced by the conformance suite
 * (tests/integration/test_coherence_conformance.cc); this bench only
 * quantifies the log-size cost.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace rrbench;
    const BenchOptions opt = parseBenchOptions(argc, argv);

    printTitle("Ablation: Section 4.3 dirty-eviction conservatism "
               "(Opt-INF, 8 cores)");

    // Columns 1+2 record on the snoopy machine (plain and emulated
    // bump side by side); column 3 re-records on the directory backend.
    std::vector<rr::sim::RecorderConfig> pol(2);
    pol[0].mode = rr::sim::RecorderMode::Opt;
    pol[1].mode = rr::sim::RecorderMode::Opt;
    pol[1].directoryEvictionBump = true;

    std::vector<rr::sim::RecorderConfig> dir_pol(1);
    dir_pol[0].mode = rr::sim::RecorderMode::Opt;

    std::vector<RecordJob> jobs;
    for (const App &app : apps())
        jobs.push_back({app, 8, pol, rr::sim::CoherenceKind::Snoopy});
    for (const App &app : apps())
        jobs.push_back(
            {app, 8, dir_pol, rr::sim::CoherenceKind::Directory});
    const std::vector<Recorded> runs = recordAll(jobs, opt);

    printColumns({"app", "snoopy r%", "emulated r%", "dir r%",
                  "snoopy b/ki", "emul b/ki", "dir b/ki"});
    double s_sum = 0, e_sum = 0, d_sum = 0;
    for (std::size_t i = 0; i < apps().size(); ++i) {
        const App &app = apps()[i];
        const Recorded &r = runs[i];
        const Recorded &rd = runs[apps().size() + i];
        const double mem = static_cast<double>(r.countedMem());
        const double dmem = static_cast<double>(rd.countedMem());
        const double s = 100.0 * r.logStats(0).reordered() / mem;
        const double e = 100.0 * r.logStats(1).reordered() / mem;
        const double d = 100.0 * rd.logStats(0).reordered() / dmem;
        s_sum += s;
        e_sum += e;
        d_sum += d;
        printCell(app.name);
        printCell(s, 4);
        printCell(e, 4);
        printCell(d, 4);
        printCell(bitsPerKinst(r, 0), 1);
        printCell(bitsPerKinst(r, 1), 1);
        printCell(bitsPerKinst(rd, 0), 1);
        endRow();
    }
    printCell("average");
    printCell(s_sum / apps().size(), 4);
    printCell(e_sum / apps().size(), 4);
    printCell(d_sum / apps().size(), 4);
    endRow();
    std::printf("(emulated bumps approximate from the recording core's "
                "own dirty evictions; the real backend bumps on actual "
                "tracking-state loss and observes only routed snoops — "
                "the emulated column is deprecated and kept one "
                "release)\n");
    return 0;
}
