/**
 * @file
 * Ablation: the directory-coherence extension (Section 4.3). Under a
 * directory protocol a cache stops observing a line's transactions
 * after evicting it dirty, so RelaxReplay_Opt conservatively bumps the
 * Snoop Table on dirty evictions — turning any still-uncounted access
 * to that line into a reordered entry. This bench measures the cost of
 * that conservatism: extra reordered accesses and log bits, with
 * correctness (verified by the integration tests) unaffected.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace rrbench;
    const BenchOptions opt = parseBenchOptions(argc, argv);

    printTitle("Ablation: Section 4.3 dirty-eviction bump "
               "(Opt-INF, 8 cores)");

    std::vector<rr::sim::RecorderConfig> pol(2);
    pol[0].mode = rr::sim::RecorderMode::Opt;
    pol[1].mode = rr::sim::RecorderMode::Opt;
    pol[1].directoryEvictionBump = true;
    const std::vector<Recorded> suite = recordSuite(8, pol, opt);

    printColumns({"app", "snoopy reord%", "directory reord%",
                  "snoopy bits/ki", "dir bits/ki"});
    double s_sum = 0, d_sum = 0;
    for (std::size_t i = 0; i < apps().size(); ++i) {
        const App &app = apps()[i];
        const Recorded &r = suite[i];
        const double mem = static_cast<double>(r.countedMem());
        const double s = 100.0 * r.logStats(0).reordered() / mem;
        const double d = 100.0 * r.logStats(1).reordered() / mem;
        s_sum += s;
        d_sum += d;
        printCell(app.name);
        printCell(s, 4);
        printCell(d, 4);
        printCell(bitsPerKinst(r, 0), 1);
        printCell(bitsPerKinst(r, 1), 1);
        endRow();
    }
    printCell("average");
    printCell(s_sum / apps().size(), 4);
    printCell(d_sum / apps().size(), 4);
    endRow();
    std::printf("(the conservative bump preserves correctness at a "
                "modest increase in reordered entries)\n");
    return 0;
}
