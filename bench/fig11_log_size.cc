/**
 * @file
 * Figure 11 reproduction: uncompressed log size in bits per 1000
 * instructions for Base/Opt under 4K/INF intervals, plus the aggregate
 * log generation rates (MB/s at 2GHz) quoted in Section 5.2, and the
 * size of the same logs in the persistent .rrlog container (varint +
 * delta encoding with CRC chunk framing; see docs/LOG_FORMAT.md).
 * Paper reference: 4K: Base 360 -> Opt 22 bits/kinst; INF: 42 -> 12.
 * Rates: Opt 48/25 MB/s (4K/INF); Base 840/90 MB/s.
 */

#include <sstream>

#include "bench/common.hh"
#include "rnr/logstore.hh"

namespace
{

/**
 * Serialize one policy's logs through the streaming LogWriter into a
 * memory sink and report the container size in bytes — what `rrsim
 * record --out` would put on disk for this recording.
 */
std::uint64_t
diskBytes(const rrbench::Recorded &r, const rrbench::App &app, int p)
{
    using namespace rr;
    const auto policies = rrbench::fourPolicies();
    rnr::RecordingMeta meta;
    meta.kernel = app.name;
    meta.cores = 8;
    meta.scale = app.scale;
    meta.mode = policies[p].mode;
    meta.intervalCap = policies[p].maxIntervalInstructions;

    std::ostringstream sink;
    rnr::LogWriter writer(sink, meta);
    const auto &logs = r.result.logs[p];
    for (sim::CoreId c = 0; c < logs.size(); ++c)
        for (const auto &iv : logs[c].intervals)
            writer.append(static_cast<sim::CoreId>(c), iv);

    rnr::RecordingSummary s;
    s.totalInstructions = r.result.totalInstructions;
    s.cycles = r.result.cycles;
    s.memoryFingerprint = r.result.memoryFingerprint;
    for (std::size_t c = 0; c < logs.size(); ++c)
        s.cores.push_back(rnr::CoreReplaySummary{
            logs[c].intervals.size(),
            r.result.cores[c].retiredInstructions,
            r.result.cores[c].retiredLoads,
            r.result.cores[c].loadValueHash});
    writer.finish(s);
    return writer.bytesWritten();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rrbench;
    const BenchOptions opt = parseBenchOptions(argc, argv);

    printTitle("Figure 11: uncompressed log size (bits per 1000 "
               "instructions, 8 cores)");
    const std::vector<Recorded> suite = recordSuite(8, fourPolicies(), opt);
    printColumns({"app", "Base-4K", "Opt-4K", "Base-INF", "Opt-INF"});

    double bit_sum[kNumPolicies] = {};
    double rate_sum[kNumPolicies] = {};
    for (std::size_t i = 0; i < apps().size(); ++i) {
        const App &app = apps()[i];
        const Recorded &r = suite[i];
        printCell(app.name);
        for (int p : {kBase4K, kOpt4K, kBaseInf, kOptInf}) {
            const double bits = bitsPerKinst(r, p);
            bit_sum[p] += bits;
            rate_sum[p] += logRateMBps(r, p);
            printCell(bits, 1);
        }
        endRow();
    }
    printCell("average");
    for (int p : {kBase4K, kOpt4K, kBaseInf, kOptInf})
        printCell(bit_sum[p] / apps().size(), 1);
    endRow();
    std::printf("(paper averages: Base-4K 360, Opt-4K 22, Base-INF 42, "
                "Opt-INF 12)\n");

    printTitle("Log generation rate (MB/s at 2GHz, average over apps)");
    printColumns({"", "Base-4K", "Opt-4K", "Base-INF", "Opt-INF"});
    printCell("MB/s");
    for (int p : {kBase4K, kOpt4K, kBaseInf, kOptInf})
        printCell(rate_sum[p] / apps().size(), 1);
    endRow();
    std::printf("(paper: Base 840/90, Opt 48/25 for 4K/INF)\n");

    printTitle("Persistent .rrlog container (on-disk KB / bits per "
               "1000 instructions)");
    printColumns({"app", "Base-4K", "b/ki", "Opt-INF", "b/ki"});
    double disk_bits_sum[kNumPolicies] = {};
    for (std::size_t i = 0; i < apps().size(); ++i) {
        const App &app = apps()[i];
        const Recorded &r = suite[i];
        printCell(app.name);
        for (int p : {kBase4K, kOptInf}) {
            const std::uint64_t bytes = diskBytes(r, app, p);
            const double bki =
                static_cast<double>(bytes) * 8.0 * 1000.0 /
                static_cast<double>(r.result.totalInstructions);
            disk_bits_sum[p] += bki;
            printCell(static_cast<double>(bytes) / 1024.0, 1);
            printCell(bki, 1);
        }
        endRow();
    }
    printCell("average");
    for (int p : {kBase4K, kOptInf}) {
        printCell("");
        printCell(disk_bits_sum[p] / apps().size(), 1);
    }
    endRow();
    std::printf("(container vs modelled packed bits: varint/delta "
                "coding plus 24B header + 32B/chunk CRC framing)\n");
    return 0;
}
