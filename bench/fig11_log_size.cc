/**
 * @file
 * Figure 11 reproduction: uncompressed log size in bits per 1000
 * instructions for Base/Opt under 4K/INF intervals, plus the aggregate
 * log generation rates (MB/s at 2GHz) quoted in Section 5.2.
 * Paper reference: 4K: Base 360 -> Opt 22 bits/kinst; INF: 42 -> 12.
 * Rates: Opt 48/25 MB/s (4K/INF); Base 840/90 MB/s.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace rrbench;
    const BenchOptions opt = parseBenchOptions(argc, argv);

    printTitle("Figure 11: uncompressed log size (bits per 1000 "
               "instructions, 8 cores)");
    const std::vector<Recorded> suite = recordSuite(8, fourPolicies(), opt);
    printColumns({"app", "Base-4K", "Opt-4K", "Base-INF", "Opt-INF"});

    double bit_sum[kNumPolicies] = {};
    double rate_sum[kNumPolicies] = {};
    for (std::size_t i = 0; i < apps().size(); ++i) {
        const App &app = apps()[i];
        const Recorded &r = suite[i];
        printCell(app.name);
        for (int p : {kBase4K, kOpt4K, kBaseInf, kOptInf}) {
            const double bits = bitsPerKinst(r, p);
            bit_sum[p] += bits;
            rate_sum[p] += logRateMBps(r, p);
            printCell(bits, 1);
        }
        endRow();
    }
    printCell("average");
    for (int p : {kBase4K, kOpt4K, kBaseInf, kOptInf})
        printCell(bit_sum[p] / apps().size(), 1);
    endRow();
    std::printf("(paper averages: Base-4K 360, Opt-4K 22, Base-INF 42, "
                "Opt-INF 12)\n");

    printTitle("Log generation rate (MB/s at 2GHz, average over apps)");
    printColumns({"", "Base-4K", "Opt-4K", "Base-INF", "Opt-INF"});
    printCell("MB/s");
    for (int p : {kBase4K, kOpt4K, kBaseInf, kOptInf})
        printCell(rate_sum[p] / apps().size(), 1);
    endRow();
    std::printf("(paper: Base 840/90, Opt 48/25 for 4K/INF)\n");
    return 0;
}
