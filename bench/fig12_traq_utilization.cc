/**
 * @file
 * Figure 12 reproduction: TRAQ utilization. Chart (a): average number
 * of occupied TRAQ entries per application (all < 64 of 176 in the
 * paper). Chart (b): occupancy distribution in bins of 10 entries for
 * four representative applications.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace rrbench;
    using rr::sim::CoreId;
    const BenchOptions opt = parseBenchOptions(argc, argv);

    std::vector<rr::sim::RecorderConfig> policy(1);
    policy[0].mode = rr::sim::RecorderMode::Opt;

    printTitle("Figure 12(a): average TRAQ occupancy (176 entries, "
               "8 cores)");
    const std::vector<Recorded> suite = recordSuite(8, policy, opt);
    printColumns({"app", "avg-entries", "max-seen"});

    std::vector<const Recorded *> kept;
    const std::vector<std::string> representatives = {"fft", "ocean",
                                                      "radix",
                                                      "water-nsq"};
    for (std::size_t i = 0; i < apps().size(); ++i) {
        const App &app = apps()[i];
        const Recorded &r = suite[i];
        double mean = 0, maxv = 0;
        for (CoreId c = 0; c < 8; ++c) {
            const auto &occ =
                r.machine->hub(c).stats().scalars().at("traq_occupancy");
            mean += occ.mean();
            maxv = std::max(maxv, occ.max());
        }
        printCell(app.name);
        printCell(mean / 8, 1);
        printCell(maxv, 0);
        endRow();
        for (const auto &rep : representatives) {
            if (rep == app.name)
                kept.push_back(&r);
        }
    }

    printTitle("Figure 12(b): occupancy distribution, bins of 10 "
               "(fraction of cycles)");
    for (const Recorded *rp : kept) {
        const Recorded &r = *rp;
        std::printf("%s:\n", r.workload.name.c_str());
        // Merge the 8 per-core histograms.
        const auto &h0 = r.machine->hub(0).occupancyHistogram();
        for (std::size_t bin = 0; bin < h0.numBins(); ++bin) {
            std::uint64_t count = 0, total = 0;
            for (CoreId c = 0; c < 8; ++c) {
                const auto &h = r.machine->hub(c).occupancyHistogram();
                count += h.binCount(bin);
                total += h.total();
            }
            const double frac =
                total ? static_cast<double>(count) / total : 0.0;
            if (frac < 0.001)
                continue;
            const bool overflow = bin == h0.numBins() - 1;
            if (overflow) {
                std::printf("  [%3zu+      ) %6.1f%% ",
                            bin * h0.binWidth(), 100 * frac);
            } else {
                std::printf("  [%3zu - %3zu) %6.1f%% ",
                            bin * h0.binWidth(),
                            (bin + 1) * h0.binWidth(), 100 * frac);
            }
            for (int i = 0; i < static_cast<int>(frac * 60); ++i)
                std::printf("#");
            std::printf("\n");
        }
    }
    std::printf("(paper: all averages < 64 entries; mass below ~80 "
                "entries)\n");
    return 0;
}
