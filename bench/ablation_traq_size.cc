/**
 * @file
 * Ablation: TRAQ capacity (Sections 4.1/5.3). The TRAQ must cover the
 * window from dispatch to counting; when it fills, instruction dispatch
 * stalls. Figure 12 shows 176 entries are ample (average occupancy
 * < 64); this sweep quantifies the recording slowdown of smaller TRAQs
 * and confirms correctness is unaffected (back-pressure only).
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace rrbench;
    const BenchOptions opt = parseBenchOptions(argc, argv);

    const std::uint32_t sizes[] = {16, 32, 64, 128, 176, 256};
    const App radix{"radix", 8}; // the suite's deepest TRAQ user

    // Job 0 is the back-pressure-free baseline (huge TRAQ); the sweep
    // points follow.
    std::vector<RecordJob> jobs;
    std::vector<rr::sim::RecorderConfig> base_pol(1);
    base_pol[0].mode = rr::sim::RecorderMode::Opt;
    base_pol[0].traqEntries = 100000;
    jobs.push_back({radix, 8, base_pol});
    for (std::uint32_t entries : sizes) {
        std::vector<rr::sim::RecorderConfig> pol(1);
        pol[0].mode = rr::sim::RecorderMode::Opt;
        pol[0].traqEntries = entries;
        jobs.push_back({radix, 8, pol});
    }

    printTitle("Ablation: TRAQ entries vs recording slowdown "
               "(radix, 8 cores)");
    const std::vector<Recorded> runs = recordAll(jobs, opt);
    const double base_cycles =
        static_cast<double>(runs[0].result.cycles);

    printColumns({"entries", "cycles", "slowdown", "dispatch-stalls"});
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
        const std::uint32_t entries = sizes[i];
        const Recorded &r = runs[i + 1];
        std::uint64_t stalls = 0;
        for (rr::sim::CoreId c = 0; c < 8; ++c)
            stalls += r.machine->core(c).stats().counterValue(
                "traq_full_stalls");
        printCell(std::to_string(entries));
        printCell(static_cast<double>(r.result.cycles), 0);
        printCell(static_cast<double>(r.result.cycles) / base_cycles, 3);
        printCell(static_cast<double>(stalls), 0);
        endRow();
    }
    std::printf("(paper: 176 entries; stalls account for <0.3%% of "
                "execution)\n");
    return 0;
}
