/**
 * @file
 * Figure 1 reproduction: fraction of memory-access instructions that
 * perform out of program order (some older memory instruction still
 * pending at their perform point), split into loads and stores.
 * Paper reference (SPLASH-2, 8-core RC): ~59% OOO loads, ~3% OOO
 * stores on average.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace rrbench;
    const BenchOptions opt = parseBenchOptions(argc, argv);

    printTitle("Figure 1: accesses performed out of program order "
               "(8 cores, RC)");

    // Only one (cheap) recorder policy is needed; the metric comes from
    // the TRAQ, which is policy-independent.
    std::vector<rr::sim::RecorderConfig> policy(1);
    policy[0].mode = rr::sim::RecorderMode::Base;
    const std::vector<Recorded> suite = recordSuite(8, policy, opt);

    printColumns({"app", "ooo-loads%", "ooo-stores%", "mem-instrs"});
    double sum_loads = 0, sum_stores = 0;
    for (std::size_t i = 0; i < apps().size(); ++i) {
        const App &app = apps()[i];
        const Recorded &r = suite[i];
        const double mem = static_cast<double>(r.countedMem());
        const double ld = 100.0 * r.hubCounter("ooo_loads") / mem;
        const double st = 100.0 * r.hubCounter("ooo_stores") / mem;
        sum_loads += ld;
        sum_stores += st;
        printCell(app.name);
        printCell(ld);
        printCell(st);
        printCell(static_cast<double>(mem), 0);
        endRow();
    }
    printCell("average");
    printCell(sum_loads / apps().size());
    printCell(sum_stores / apps().size());
    endRow();
    std::printf("(paper: 59%% OOO loads, 3%% OOO stores on average)\n");
    return 0;
}
