/**
 * @file
 * Replay-service throughput microbenchmark: starts a real svc::Server
 * in-process on a temp Unix socket and hammers it over the actual wire
 * protocol, measuring the daemon's job-turnaround capacity:
 *
 *  - ping_roundtrip   protocol + poll-loop floor: request->response
 *                     round-trips per second on one connection;
 *  - submit_stats     full job lifecycle (admit -> queue -> dispatch ->
 *                     execute -> stream) for the cheapest real job kind
 *                     (stats over a small recording), N concurrent
 *                     client connections;
 *  - submit_record    same lifecycle for simulation-heavy jobs (record
 *                     fft), where executor parallelism dominates.
 *
 * Each stage reports jobs (or round-trips) per second plus p50/p99
 * client-observed latency. Results land in BENCH_serve_throughput.json
 * with the same shape tools/perf_compare.py consumes
 * (stages.*.intervals_per_sec carries the rate).
 */

#include "bench/common.hh"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.hh"
#include "svc/job_runner.hh"
#include "svc/protocol.hh"
#include "svc/server.hh"

namespace
{

using namespace rr;
using Clock = std::chrono::steady_clock;

struct Options
{
    std::uint32_t clients = 4;
    std::uint32_t jobsPerClient = 50;
    std::uint32_t executors = 4;
    bool tiny = false; ///< CI smoke: fewer clients/jobs
    std::string json = "BENCH_serve_throughput.json";
};

[[noreturn]] void
usage(const char *prog)
{
    std::fprintf(stderr,
                 "usage: %s [--clients N] [--jobs-per-client M]\n"
                 "          [--exec-jobs E] [--tiny] [--json FILE]\n"
                 "  --clients N          concurrent connections "
                 "(default 4)\n"
                 "  --jobs-per-client M  stats jobs per connection "
                 "(default 50)\n"
                 "  --exec-jobs E        server executor threads "
                 "(default 4)\n"
                 "  --tiny               CI smoke size\n"
                 "  --json FILE          output file (default "
                 "BENCH_serve_throughput.json)\n",
                 prog);
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--clients" && i + 1 < argc)
            o.clients = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (arg == "--jobs-per-client" && i + 1 < argc)
            o.jobsPerClient = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (arg == "--exec-jobs" && i + 1 < argc)
            o.executors = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (arg == "--tiny")
            o.tiny = true;
        else if (arg == "--json" && i + 1 < argc)
            o.json = argv[++i];
        else if (arg.rfind("--json=", 0) == 0)
            o.json = arg.substr(7);
        else
            usage(argv[0]);
    }
    if (o.tiny) {
        o.clients = std::min<std::uint32_t>(o.clients, 2);
        o.jobsPerClient = std::min<std::uint32_t>(o.jobsPerClient, 10);
    }
    if (o.clients == 0 || o.jobsPerClient == 0)
        usage(argv[0]);
    return o;
}

struct StageResult
{
    std::string name;
    std::uint64_t ops = 0;
    double seconds = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    double rate() const
    {
        return seconds > 0.0 ? static_cast<double>(ops) / seconds : 0.0;
    }
};

double
percentileMs(std::vector<double> &ms, double p)
{
    if (ms.empty())
        return 0.0;
    std::sort(ms.begin(), ms.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(ms.size() - 1));
    return ms[idx];
}

/** Await the terminal event of @p job; dies on failure (a bench run
 *  with failing jobs measures nothing). */
void
mustComplete(svc::Client &client, std::uint64_t job)
{
    std::vector<std::string> transcript;
    std::string error;
    auto terminal = client.awaitTerminal(job, transcript, error, 600.0);
    if (!terminal) {
        std::fprintf(stderr, "FATAL: lost job %llu: %s\n",
                     static_cast<unsigned long long>(job),
                     error.c_str());
        std::exit(1);
    }
    if (terminal->find("\"event\":\"completed\"") == std::string::npos) {
        std::fprintf(stderr, "FATAL: job %llu did not complete: %s\n",
                     static_cast<unsigned long long>(job),
                     terminal->c_str());
        std::exit(1);
    }
}

/** Submit one request and return its accepted job id (dies on
 *  rejection). */
std::uint64_t
mustSubmit(svc::Client &client, const std::string &req)
{
    std::string error;
    if (!client.sendLine(req, error)) {
        std::fprintf(stderr, "FATAL: send failed: %s\n", error.c_str());
        std::exit(1);
    }
    auto ack = client.readLine(error, 600.0);
    if (!ack || ack->find("\"event\":\"accepted\"") == std::string::npos) {
        std::fprintf(stderr, "FATAL: submission not accepted: %s\n",
                     ack ? ack->c_str() : error.c_str());
        std::exit(1);
    }
    std::string perr;
    auto ev = svc::parseJson(*ack, perr);
    return ev ? static_cast<std::uint64_t>(ev->get("job").asInt()) : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rrbench;
    const Options o = parseArgs(argc, argv);

    const std::string socket =
        "/tmp/rrsim-bench-" +
        std::to_string(static_cast<unsigned long>(::getpid())) +
        ".sock";
    const std::string probe = socket + ".rrlog";

    // The recording every stats job feeds on.
    {
        svc::JobParams p;
        p.kind = svc::JobKind::Record;
        p.kernel = "fft";
        p.cores = 2;
        p.scale = 1;
        p.deps = true;
        p.outFile = probe;
        svc::CancelToken token;
        const svc::JobOutcome out = svc::runJob(p, token);
        if (!out.ok) {
            std::fprintf(stderr, "FATAL: probe recording failed: %s\n",
                         out.message.c_str());
            return 1;
        }
    }

    svc::Server::Options sopts;
    sopts.socketPath = socket;
    sopts.sched.executors = o.executors;
    svc::Server server(sopts);
    std::thread serverThread([&server] { server.run(); });
    for (int i = 0; i < 500; ++i) {
        std::string error;
        if (svc::Client::connectUnix(socket, error))
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    printTitle("Replay-service throughput (" +
               std::to_string(o.clients) + " clients x " +
               std::to_string(o.jobsPerClient) + " jobs, " +
               std::to_string(o.executors) + " executors)");

    std::vector<StageResult> stages;

    // -- ping round-trips ---------------------------------------------
    {
        std::string error;
        auto client = svc::Client::connectUnix(socket, error);
        if (!client) {
            std::fprintf(stderr, "FATAL: connect: %s\n", error.c_str());
            return 1;
        }
        const std::uint64_t pings = o.tiny ? 200 : 2000;
        std::vector<double> lat;
        lat.reserve(pings);
        const auto t0 = Clock::now();
        for (std::uint64_t i = 0; i < pings; ++i) {
            const auto s0 = Clock::now();
            if (!client->sendLine(R"({"op":"ping"})", error) ||
                !client->readLine(error, 600.0)) {
                std::fprintf(stderr, "FATAL: ping: %s\n",
                             error.c_str());
                return 1;
            }
            lat.push_back(std::chrono::duration<double, std::milli>(
                              Clock::now() - s0)
                              .count());
        }
        StageResult s;
        s.name = "ping_roundtrip";
        s.ops = pings;
        s.seconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
        s.p50Ms = percentileMs(lat, 0.50);
        s.p99Ms = percentileMs(lat, 0.99);
        stages.push_back(s);
    }

    // -- concurrent job stages ----------------------------------------
    const auto jobStage = [&](const char *name, const std::string &req,
                              std::uint32_t per_client) {
        std::vector<std::thread> threads;
        std::vector<std::vector<double>> lats(o.clients);
        const auto t0 = Clock::now();
        for (std::uint32_t c = 0; c < o.clients; ++c) {
            threads.emplace_back([&, c] {
                std::string error;
                auto client = svc::Client::connectUnix(socket, error);
                if (!client) {
                    std::fprintf(stderr, "FATAL: connect: %s\n",
                                 error.c_str());
                    std::exit(1);
                }
                for (std::uint32_t i = 0; i < per_client; ++i) {
                    const auto s0 = Clock::now();
                    mustComplete(*client, mustSubmit(*client, req));
                    lats[c].push_back(
                        std::chrono::duration<double, std::milli>(
                            Clock::now() - s0)
                            .count());
                }
            });
        }
        for (auto &t : threads)
            t.join();
        StageResult s;
        s.name = name;
        s.ops = static_cast<std::uint64_t>(o.clients) * per_client;
        s.seconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
        std::vector<double> all;
        for (auto &l : lats)
            all.insert(all.end(), l.begin(), l.end());
        s.p50Ms = percentileMs(all, 0.50);
        s.p99Ms = percentileMs(all, 0.99);
        stages.push_back(s);
    };

    jobStage("submit_stats",
             R"({"op":"stats","file":)" + svc::jsonQuote(probe) + "}",
             o.jobsPerClient);
    jobStage("submit_record",
             R"({"op":"record","kernel":"fft","cores":2})",
             std::max<std::uint32_t>(o.jobsPerClient / 10, 2));

    server.requestStop(/*drain=*/true);
    serverThread.join();
    std::remove(probe.c_str());

    // -- report --------------------------------------------------------
    printColumns({"stage", "ops", "ops/s", "p50 ms", "p99 ms"});
    for (const StageResult &s : stages) {
        printCell(s.name);
        printCell(static_cast<double>(s.ops), 0);
        printCell(s.rate(), 1);
        printCell(s.p50Ms, 3);
        printCell(s.p99Ms, 3);
        endRow();
    }

    std::ofstream os(o.json);
    if (os) {
        os << "{\n"
           << "  \"bench\": \"serve_throughput\",\n"
           << "  \"kernel\": \"fft\",\n"
           << "  \"scale\": 1,\n"
           << "  \"clients\": " << o.clients << ",\n"
           << "  \"executors\": " << o.executors << ",\n"
           << "  \"stages\": {\n";
        for (std::size_t i = 0; i < stages.size(); ++i) {
            const StageResult &s = stages[i];
            os << "    \"" << s.name << "\": {"
               << "\"seconds\": " << s.seconds << ", "
               << "\"intervals_per_sec\": " << s.rate() << ", "
               << "\"ops\": " << s.ops << ", "
               << "\"p50_ms\": " << s.p50Ms << ", "
               << "\"p99_ms\": " << s.p99Ms << "}"
               << (i + 1 < stages.size() ? "," : "") << "\n";
        }
        os << "  }\n}\n";
        std::printf("[json] saved %s\n", o.json.c_str());
    } else {
        std::fprintf(stderr, "[json] cannot open %s\n", o.json.c_str());
    }
    return 0;
}
