/**
 * @file
 * Figure 10 reproduction: number of InorderBlock entries in the log,
 * normalized to RelaxReplay_Base, for 4K and INF intervals.
 * Paper reference: Opt logs on average only 13% (4K) and 48% (INF) as
 * many InorderBlocks as Base.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace rrbench;
    const BenchOptions opt = parseBenchOptions(argc, argv);

    printTitle("Figure 10: InorderBlock entries, normalized to Base "
               "(8 cores)");
    const std::vector<Recorded> suite = recordSuite(8, fourPolicies(), opt);
    printColumns({"app", "Opt/Base-4K", "Opt/Base-INF", "Base-4K(abs)",
                  "Base-INF(abs)"});

    double sum4k = 0, suminf = 0;
    for (std::size_t i = 0; i < apps().size(); ++i) {
        const App &app = apps()[i];
        const Recorded &r = suite[i];
        const double b4 =
            static_cast<double>(r.logStats(kBase4K).inorderBlocks);
        const double o4 =
            static_cast<double>(r.logStats(kOpt4K).inorderBlocks);
        const double bi =
            static_cast<double>(r.logStats(kBaseInf).inorderBlocks);
        const double oi =
            static_cast<double>(r.logStats(kOptInf).inorderBlocks);
        sum4k += o4 / b4;
        suminf += oi / bi;
        printCell(app.name);
        printCell(o4 / b4, 3);
        printCell(oi / bi, 3);
        printCell(b4, 0);
        printCell(bi, 0);
        endRow();
    }
    printCell("average");
    printCell(sum4k / apps().size(), 3);
    printCell(suminf / apps().size(), 3);
    endRow();
    std::printf("(paper averages: 0.13 for 4K, 0.48 for INF)\n");
    return 0;
}
