/**
 * @file
 * Figure 10 reproduction: number of InorderBlock entries in the log,
 * normalized to RelaxReplay_Base, for 4K and INF intervals.
 * Paper reference: Opt logs on average only 13% (4K) and 48% (INF) as
 * many InorderBlocks as Base.
 */

#include "bench/common.hh"

int
main()
{
    using namespace rrbench;

    printTitle("Figure 10: InorderBlock entries, normalized to Base "
               "(8 cores)");
    printColumns({"app", "Opt/Base-4K", "Opt/Base-INF", "Base-4K(abs)",
                  "Base-INF(abs)"});

    double sum4k = 0, suminf = 0;
    for (const App &app : apps()) {
        Recorded r = record(app, 8, fourPolicies());
        const double b4 =
            static_cast<double>(r.logStats(kBase4K).inorderBlocks);
        const double o4 =
            static_cast<double>(r.logStats(kOpt4K).inorderBlocks);
        const double bi =
            static_cast<double>(r.logStats(kBaseInf).inorderBlocks);
        const double oi =
            static_cast<double>(r.logStats(kOptInf).inorderBlocks);
        sum4k += o4 / b4;
        suminf += oi / bi;
        printCell(app.name);
        printCell(o4 / b4, 3);
        printCell(oi / bi, 3);
        printCell(b4, 0);
        printCell(bi, 0);
        endRow();
    }
    printCell("average");
    printCell(sum4k / apps().size(), 3);
    printCell(suminf / apps().size(), 3);
    endRow();
    std::printf("(paper averages: 0.13 for 4K, 0.48 for INF)\n");
    return 0;
}
