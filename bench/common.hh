/**
 * @file
 * Shared infrastructure for the evaluation benches: the application
 * suite with its calibrated scales, the four recorder configurations
 * of the paper's evaluation, a record-once helper, and table printing.
 */

#ifndef RR_BENCH_COMMON_HH
#define RR_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "rnr/log.hh"
#include "workloads/kernels.hh"

namespace rrbench
{

/** One application of the evaluation suite. */
struct App
{
    std::string name;
    /** Scale calibrated for roughly 1-3M instructions on 8 cores. */
    std::uint64_t scale;
};

/** The ten SPLASH-2-style applications, in the figures' order. */
const std::vector<App> &apps();

/** Indices into fourPolicies() / RecordingResult::logs. */
enum PolicyIndex
{
    kBase4K = 0,
    kBaseInf = 1,
    kOpt4K = 2,
    kOptInf = 3,
    kNumPolicies = 4,
};

const char *policyName(int idx);

/** Base/Opt x 4K/INF, as evaluated throughout Section 5. */
std::vector<rr::sim::RecorderConfig> fourPolicies();

/** A completed recording, with the machine kept alive for its stats. */
struct Recorded
{
    rr::workloads::Workload workload;
    std::unique_ptr<rr::machine::Machine> machine;
    rr::mem::BackingStore initial;
    rr::machine::RecordingResult result;

    /** Counted memory-access instructions, summed over cores. */
    std::uint64_t countedMem() const;
    /** Aggregate a policy's logs. */
    rr::rnr::LogStats logStats(int policy) const;
    /** Sum of a recorder-stat counter over all cores. */
    std::uint64_t recorderCounter(int policy, const std::string &c) const;
    /** Sum of a hub-stat counter over all cores. */
    std::uint64_t hubCounter(const std::string &c) const;
};

/** Record one app; uses the calibrated scale unless overridden. */
Recorded record(const App &app, std::uint32_t cores,
                std::vector<rr::sim::RecorderConfig> policies);

/** Bits-per-kiloinstruction of a policy's aggregate log. */
double bitsPerKinst(const Recorded &r, int policy);

/**
 * Log generation rate in MB/s at the paper's 2 GHz clock:
 * bits / cycles * 2e9 / 8 / 1e6.
 */
double logRateMBps(const Recorded &r, int policy);

/** Simple fixed-width table printing. */
void printTitle(const std::string &title);
void printColumns(const std::vector<std::string> &cols);
void printCell(const std::string &text);
void printCell(double value, int precision = 2);
void endRow();

} // namespace rrbench

#endif // RR_BENCH_COMMON_HH
