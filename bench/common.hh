/**
 * @file
 * Shared infrastructure for the evaluation benches: the application
 * suite with its calibrated scales, the four recorder configurations
 * of the paper's evaluation, record helpers that run the sweep through
 * the parallel experiment engine (sim::SweepRunner), and table
 * printing. Every bench accepts `--jobs N` (host threads; default all
 * cores, also settable via the RR_JOBS environment variable) and
 * `--timing` (print wall-clock and simulated-instruction throughput).
 */

#ifndef RR_BENCH_COMMON_HH
#define RR_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "rnr/log.hh"
#include "sim/sweep.hh"
#include "workloads/kernels.hh"

namespace rrbench
{

/** One application of the evaluation suite. */
struct App
{
    std::string name;
    /** Scale calibrated for roughly 1-3M instructions on 8 cores. */
    std::uint64_t scale;
};

/** The ten SPLASH-2-style applications, in the figures' order. */
const std::vector<App> &apps();

/** Indices into fourPolicies() / RecordingResult::logs. */
enum PolicyIndex
{
    kBase4K = 0,
    kBaseInf = 1,
    kOpt4K = 2,
    kOptInf = 3,
    kNumPolicies = 4,
};

const char *policyName(int idx);

/** Base/Opt x 4K/INF, as evaluated throughout Section 5. */
std::vector<rr::sim::RecorderConfig> fourPolicies();

/** A completed recording, with the machine kept alive for its stats. */
struct Recorded
{
    rr::workloads::Workload workload;
    std::unique_ptr<rr::machine::Machine> machine;
    rr::mem::BackingStore initial;
    rr::machine::RecordingResult result;

    /** Counted memory-access instructions, summed over cores. */
    std::uint64_t countedMem() const;
    /** Aggregate a policy's logs. */
    rr::rnr::LogStats logStats(int policy) const;
    /** Sum of a recorder-stat counter over all cores. */
    std::uint64_t recorderCounter(int policy, const std::string &c) const;
    /** Sum of a hub-stat counter over all cores. */
    std::uint64_t hubCounter(const std::string &c) const;
};

/** Record one app; uses the calibrated scale unless overridden. */
Recorded record(const App &app, std::uint32_t cores,
                std::vector<rr::sim::RecorderConfig> policies,
                rr::sim::CoherenceKind coherence =
                    rr::sim::CoherenceKind::Snoopy);

/** Common bench command-line options. */
struct BenchOptions
{
    /** Concurrent recording jobs; 0 means all host cores. */
    std::uint32_t jobs = 0;
    /** Print the [sweep] wall-clock / throughput summary line. */
    bool timing = false;
    /** Export the aggregated recording stats as JSON after recordAll. */
    std::string statsJson;
    /** Coherence backend for every recording (`--coherence`). */
    rr::sim::CoherenceKind coherence = rr::sim::CoherenceKind::Snoopy;
};

/**
 * Parse `--jobs N` / `-j N` / `--timing` / `--stats-json FILE` /
 * `--coherence snoopy|directory`; honors RR_JOBS when the flag is
 * absent and opens the trace sink when RR_TRACE is set. Exits with a
 * usage message on unknown arguments.
 */
BenchOptions parseBenchOptions(int argc, char **argv);

/** One recording of a sweep: app x core count x policy set. */
struct RecordJob
{
    App app;
    std::uint32_t cores = 8;
    std::vector<rr::sim::RecorderConfig> policies;
    rr::sim::CoherenceKind coherence = rr::sim::CoherenceKind::Snoopy;
};

/**
 * Record all jobs concurrently on opt.jobs host threads. Results are
 * indexed like @p jobs regardless of completion order, and each
 * recording is bit-identical to a serial run (jobs share no state).
 * Prints the throughput summary when opt.timing is set.
 */
std::vector<Recorded> recordAll(const std::vector<RecordJob> &jobs,
                                const BenchOptions &opt);

/** The whole app suite at one core count (the common figure pattern). */
std::vector<Recorded> recordSuite(std::uint32_t cores,
                                  const std::vector<rr::sim::RecorderConfig> &policies,
                                  const BenchOptions &opt);

/**
 * Run @p count independent post-processing tasks (replays, schedule
 * builds) on opt.jobs threads; task i must write only its own slots.
 */
void forEachParallel(std::size_t count, const BenchOptions &opt,
                     const std::function<void(std::size_t)> &task);

/**
 * Write @p logs to a temporary `.rrlog` and read them back through
 * LogReader::readAllParallel on @p jobs workers (0 = all host cores),
 * so the replay benches exercise the same zero-copy ingest + parallel
 * chunk decode path as `rrsim replay` on a file. The round trip is
 * exact except IntervalRecord::cycle, which the format does not
 * persist (reporting-only; replay never reads it). The temporary file
 * is removed before returning.
 */
std::vector<rr::rnr::CoreLog>
roundTripThroughDisk(const std::vector<rr::rnr::CoreLog> &logs,
                     std::uint32_t jobs = 0);

/** Print the [sweep] summary line of a finished run. */
void printSweepStats(const rr::sim::SweepStats &stats);

/** Bits-per-kiloinstruction of a policy's aggregate log. */
double bitsPerKinst(const Recorded &r, int policy);

/**
 * Log generation rate in MB/s at the paper's 2 GHz clock:
 * bits / cycles * 2e9 / 8 / 1e6.
 */
double logRateMBps(const Recorded &r, int policy);

/** Simple fixed-width table printing. */
void printTitle(const std::string &title);
void printColumns(const std::vector<std::string> &cols);
void printCell(const std::string &text);
void printCell(double value, int precision = 2);
void endRow();

} // namespace rrbench

#endif // RR_BENCH_COMMON_HH
