/**
 * @file
 * Ablation: Snoop Table geometry (Section 4.2). The table filters the
 * accesses whose perform-to-counting window crossed an interval
 * boundary; aliasing in its counter arrays turns unobserved accesses
 * into (false) reordered entries. Sweeping the per-array entry count
 * shows why the paper's 64 entries suffice: the false-positive tail
 * vanishes well before that size, and beyond it the residual reorders
 * are real conflicts.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace rrbench;
    const BenchOptions opt = parseBenchOptions(argc, argv);

    const std::uint32_t sizes[] = {4, 8, 16, 32, 64, 128};
    const App fft{"fft", 8};
    const App water{"water-sp", 16};

    printTitle("Ablation: Snoop Table entries per array vs Opt-INF "
               "reordered accesses (8 cores)");

    std::vector<RecordJob> jobs;
    for (std::uint32_t entries : sizes) {
        std::vector<rr::sim::RecorderConfig> pol(1);
        pol[0].mode = rr::sim::RecorderMode::Opt;
        pol[0].maxIntervalInstructions = 0;
        pol[0].snoopTableEntries = entries;
        jobs.push_back({fft, 8, pol});
        jobs.push_back({water, 8, pol});
    }
    const std::vector<Recorded> runs = recordAll(jobs, opt);

    printColumns({"entries", "fft %", "water-sp %", "fft bits/ki",
                  "water bits/ki"});
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
        const std::uint32_t entries = sizes[i];
        const Recorded &rf = runs[2 * i];
        const Recorded &rw = runs[2 * i + 1];
        printCell(std::to_string(entries));
        printCell(100.0 * rf.logStats(0).reordered() / rf.countedMem(),
                  4);
        printCell(100.0 * rw.logStats(0).reordered() / rw.countedMem(),
                  4);
        printCell(bitsPerKinst(rf, 0), 1);
        printCell(bitsPerKinst(rw, 0), 1);
        endRow();
    }
    std::printf("(paper uses 2 x 64 x 16-bit; larger tables buy little "
                "because the residue is true conflicts)\n");
    return 0;
}
