/**
 * @file
 * Ablation: maximum interval size (Section 5.1's 4K-vs-INF design
 * axis). Small caps are what parallel-replay schemes (Karma, Cyrus)
 * need; large caps are what sequential-replay schemes (CoreRacer,
 * QuickRec) prefer. The sweep shows the cost curve: log size and
 * Base-mode reordered fraction fall as intervals grow, flattening once
 * conflicts (not the cap) terminate intervals.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace rrbench;
    const BenchOptions opt = parseBenchOptions(argc, argv);

    const std::uint64_t caps[] = {256, 1024, 4096, 16384, 65536, 0};
    const App fft{"fft", 8};

    printTitle("Ablation: max interval size (fft, 8 cores)");

    std::vector<RecordJob> jobs;
    for (std::uint64_t cap : caps) {
        std::vector<rr::sim::RecorderConfig> pol(2);
        pol[0].mode = rr::sim::RecorderMode::Base;
        pol[0].maxIntervalInstructions = cap;
        pol[1].mode = rr::sim::RecorderMode::Opt;
        pol[1].maxIntervalInstructions = cap;
        jobs.push_back({fft, 8, pol});
    }
    const std::vector<Recorded> runs = recordAll(jobs, opt);

    printColumns({"cap", "intervals", "Base reord%", "Base bits/ki",
                  "Opt bits/ki"});
    for (std::size_t i = 0; i < std::size(caps); ++i) {
        const std::uint64_t cap = caps[i];
        const Recorded &r = runs[i];
        printCell(cap == 0 ? "INF" : std::to_string(cap));
        printCell(static_cast<double>(r.logStats(0).intervals), 0);
        printCell(100.0 * r.logStats(0).reordered() / r.countedMem(), 4);
        printCell(bitsPerKinst(r, 0), 1);
        printCell(bitsPerKinst(r, 1), 1);
        endRow();
    }
    std::printf("(shorter intervals -> more replay parallelism but "
                "bigger logs and more Base reorders)\n");
    return 0;
}
