/**
 * @file
 * Figure 14 reproduction: scalability with the processor count.
 * Chart (a): fraction of memory accesses perceived as reordered, and
 * chart (b): log generation rate (MB/s), for 4, 8 and 16 cores under
 * all four recorder configurations (averaged over the suite).
 * Paper reference: both metrics grow with core count (ring snoopy:
 * every core sees all traffic) but not exponentially; Base-4K is the
 * least sensitive configuration.
 *
 * A second section extends the sweep past the ring's comfort zone:
 * snoopy vs the home-directory backend (Section 4.3) on 8/16/32/64
 * cores for the two largest kernels. The ring serializes one grant per
 * cycle and pays numCores hops per transaction, so its simulated
 * execution time degrades with the core count; the directory grants
 * per home bank with point-to-point latencies. The section also shows
 * what sparse snooping costs the recorder (reordered fraction and log
 * bits under Opt-INF), and lands a machine-readable summary in
 * BENCH_directory_scaling.json (perf_compare.py compatible; the rates
 * are derived from simulated time, so the file is deterministic).
 */

#include "bench/common.hh"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

int
main(int argc, char **argv)
{
    using namespace rrbench;
    const BenchOptions opt = parseBenchOptions(argc, argv);

    const std::uint32_t core_counts[] = {4, 8, 16};
    double reordered[3][kNumPolicies] = {};
    double rate[3][kNumPolicies] = {};

    // One job per app x core count: the full 30-recording sweep runs
    // concurrently rather than per core-count batch.
    std::vector<RecordJob> jobs;
    for (std::uint32_t cores : core_counts)
        for (const App &app : apps())
            jobs.push_back({app, cores, fourPolicies()});
    const std::vector<Recorded> runs = recordAll(jobs, opt);

    for (int ci = 0; ci < 3; ++ci) {
        for (std::size_t a = 0; a < apps().size(); ++a) {
            const Recorded &r = runs[ci * apps().size() + a];
            const double mem = static_cast<double>(r.countedMem());
            for (int p = 0; p < kNumPolicies; ++p) {
                reordered[ci][p] +=
                    100.0 *
                    static_cast<double>(r.logStats(p).reordered()) / mem;
                rate[ci][p] += logRateMBps(r, p);
            }
        }
        for (int p = 0; p < kNumPolicies; ++p) {
            reordered[ci][p] /= apps().size();
            rate[ci][p] /= apps().size();
        }
    }

    printTitle("Figure 14(a): reordered accesses (%) vs core count "
               "(suite average)");
    printColumns({"config", "P4", "P8", "P16"});
    for (int p : {kBase4K, kOpt4K, kBaseInf, kOptInf}) {
        printCell(policyName(p));
        for (int ci = 0; ci < 3; ++ci)
            printCell(reordered[ci][p], 4);
        endRow();
    }

    printTitle("Figure 14(b): log generation rate (MB/s) vs core count "
               "(suite average)");
    printColumns({"config", "P4", "P8", "P16"});
    for (int p : {kBase4K, kOpt4K, kBaseInf, kOptInf}) {
        printCell(policyName(p));
        for (int ci = 0; ci < 3; ++ci)
            printCell(rate[ci][p], 1);
        endRow();
    }
    std::printf("(paper: both grow with cores, noticeably but not "
                "exponentially; Base-4K least sensitive)\n");

    // --- directory scaling: 8/16/32/64 cores, snoopy vs directory ---
    const std::uint32_t big_counts[] = {8, 16, 32, 64};
    // The two largest suite kernels, at their calibrated scales.
    std::vector<App> big_apps;
    for (const App &app : apps())
        if (app.name == "lu" || app.name == "radix")
            big_apps.push_back(app);
    std::vector<rr::sim::RecorderConfig> opt_inf(1);
    opt_inf[0].mode = rr::sim::RecorderMode::Opt;

    std::vector<RecordJob> scale_jobs;
    for (const auto kind : {rr::sim::CoherenceKind::Snoopy,
                            rr::sim::CoherenceKind::Directory})
        for (std::uint32_t cores : big_counts)
            for (const App &app : big_apps)
                scale_jobs.push_back({app, cores, opt_inf, kind});
    const std::vector<Recorded> scale_runs = recordAll(scale_jobs, opt);

    struct Row
    {
        double cycles = 0;      ///< avg simulated cycles
        double reordered = 0;   ///< avg reordered %
        double bits = 0;        ///< avg log bits / kinst
        double intervals = 0;   ///< summed intervals
    };
    Row rows[2][4];
    for (std::size_t j = 0; j < scale_jobs.size(); ++j) {
        const std::size_t kind =
            j / (4 * big_apps.size()); // 0 snoopy, 1 directory
        const std::size_t ci = (j / big_apps.size()) % 4;
        const Recorded &r = scale_runs[j];
        Row &row = rows[kind][ci];
        row.cycles += static_cast<double>(r.result.cycles) /
                      static_cast<double>(big_apps.size());
        row.reordered += 100.0 *
                         static_cast<double>(r.logStats(0).reordered()) /
                         static_cast<double>(r.countedMem()) /
                         static_cast<double>(big_apps.size());
        row.bits +=
            bitsPerKinst(r, 0) / static_cast<double>(big_apps.size());
        row.intervals +=
            static_cast<double>(r.logStats(0).intervals);
    }

    printTitle("Directory scaling: simulated execution cycles "
               "(lu+radix average, Opt-INF)");
    printColumns({"backend", "P8", "P16", "P32", "P64"});
    for (int k = 0; k < 2; ++k) {
        printCell(k == 0 ? "snoopy" : "directory");
        for (int ci = 0; ci < 4; ++ci)
            printCell(rows[k][ci].cycles, 0);
        endRow();
    }
    printTitle("Directory scaling: reordered accesses (%)");
    printColumns({"backend", "P8", "P16", "P32", "P64"});
    for (int k = 0; k < 2; ++k) {
        printCell(k == 0 ? "snoopy" : "directory");
        for (int ci = 0; ci < 4; ++ci)
            printCell(rows[k][ci].reordered, 4);
        endRow();
    }
    printTitle("Directory scaling: log bits per kilo-instruction");
    printColumns({"backend", "P8", "P16", "P32", "P64"});
    for (int k = 0; k < 2; ++k) {
        printCell(k == 0 ? "snoopy" : "directory");
        for (int ci = 0; ci < 4; ++ci)
            printCell(rows[k][ci].bits, 1);
        endRow();
    }
    std::printf("(the ring pays numCores hops and one grant/cycle; the "
                "directory's banked point-to-point grants keep cycles "
                "flat, at a conservative-bump log cost)\n");

    // perf_compare.py-compatible summary. The per-stage rate is
    // intervals per *simulated* second (cycles at a nominal 2 GHz), so
    // identical binaries produce identical files (self-diff gate).
    const char *json_path = "BENCH_directory_scaling.json";
    std::ofstream os(json_path);
    if (os) {
        os << "{\n  \"bench\": \"directory_scaling\",\n"
           << "  \"kernel\": \"lu+radix\",\n  \"scale\": 0,\n"
           << "  \"stages\": {\n";
        for (int k = 0; k < 2; ++k) {
            for (int ci = 0; ci < 4; ++ci) {
                const Row &row = rows[k][ci];
                const double sim_seconds = row.cycles / 2e9;
                os << "    \"" << (k == 0 ? "snoopy" : "directory")
                   << "_c" << big_counts[ci] << "\": {"
                   << "\"intervals_per_sec\": "
                   << row.intervals / sim_seconds << ", "
                   << "\"cycles\": " << row.cycles << ", "
                   << "\"reordered_pct\": " << row.reordered << ", "
                   << "\"bits_per_kinst\": " << row.bits << "}"
                   << (k == 1 && ci == 3 ? "" : ",") << "\n";
            }
        }
        os << "  }\n}\n";
        std::printf("[json] saved %s\n", json_path);
    } else {
        std::fprintf(stderr, "[json] cannot open %s\n", json_path);
    }
    return 0;
}
