/**
 * @file
 * Figure 14 reproduction: scalability with the processor count.
 * Chart (a): fraction of memory accesses perceived as reordered, and
 * chart (b): log generation rate (MB/s), for 4, 8 and 16 cores under
 * all four recorder configurations (averaged over the suite).
 * Paper reference: both metrics grow with core count (ring snoopy:
 * every core sees all traffic) but not exponentially; Base-4K is the
 * least sensitive configuration.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace rrbench;
    const BenchOptions opt = parseBenchOptions(argc, argv);

    const std::uint32_t core_counts[] = {4, 8, 16};
    double reordered[3][kNumPolicies] = {};
    double rate[3][kNumPolicies] = {};

    // One job per app x core count: the full 30-recording sweep runs
    // concurrently rather than per core-count batch.
    std::vector<RecordJob> jobs;
    for (std::uint32_t cores : core_counts)
        for (const App &app : apps())
            jobs.push_back({app, cores, fourPolicies()});
    const std::vector<Recorded> runs = recordAll(jobs, opt);

    for (int ci = 0; ci < 3; ++ci) {
        for (std::size_t a = 0; a < apps().size(); ++a) {
            const Recorded &r = runs[ci * apps().size() + a];
            const double mem = static_cast<double>(r.countedMem());
            for (int p = 0; p < kNumPolicies; ++p) {
                reordered[ci][p] +=
                    100.0 *
                    static_cast<double>(r.logStats(p).reordered()) / mem;
                rate[ci][p] += logRateMBps(r, p);
            }
        }
        for (int p = 0; p < kNumPolicies; ++p) {
            reordered[ci][p] /= apps().size();
            rate[ci][p] /= apps().size();
        }
    }

    printTitle("Figure 14(a): reordered accesses (%) vs core count "
               "(suite average)");
    printColumns({"config", "P4", "P8", "P16"});
    for (int p : {kBase4K, kOpt4K, kBaseInf, kOptInf}) {
        printCell(policyName(p));
        for (int ci = 0; ci < 3; ++ci)
            printCell(reordered[ci][p], 4);
        endRow();
    }

    printTitle("Figure 14(b): log generation rate (MB/s) vs core count "
               "(suite average)");
    printColumns({"config", "P4", "P8", "P16"});
    for (int p : {kBase4K, kOpt4K, kBaseInf, kOptInf}) {
        printCell(policyName(p));
        for (int ci = 0; ci < 3; ++ci)
            printCell(rate[ci][p], 1);
        endRow();
    }
    std::printf("(paper: both grow with cores, noticeably but not "
                "exponentially; Base-4K least sensitive)\n");
    return 0;
}
