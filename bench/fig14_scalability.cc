/**
 * @file
 * Figure 14 reproduction: scalability with the processor count.
 * Chart (a): fraction of memory accesses perceived as reordered, and
 * chart (b): log generation rate (MB/s), for 4, 8 and 16 cores under
 * all four recorder configurations (averaged over the suite).
 * Paper reference: both metrics grow with core count (ring snoopy:
 * every core sees all traffic) but not exponentially; Base-4K is the
 * least sensitive configuration.
 */

#include "bench/common.hh"

int
main()
{
    using namespace rrbench;

    const std::uint32_t core_counts[] = {4, 8, 16};
    double reordered[3][kNumPolicies] = {};
    double rate[3][kNumPolicies] = {};

    for (int ci = 0; ci < 3; ++ci) {
        for (const App &app : apps()) {
            Recorded r = record(app, core_counts[ci], fourPolicies());
            const double mem = static_cast<double>(r.countedMem());
            for (int p = 0; p < kNumPolicies; ++p) {
                reordered[ci][p] +=
                    100.0 *
                    static_cast<double>(r.logStats(p).reordered()) / mem;
                rate[ci][p] += logRateMBps(r, p);
            }
        }
        for (int p = 0; p < kNumPolicies; ++p) {
            reordered[ci][p] /= apps().size();
            rate[ci][p] /= apps().size();
        }
    }

    printTitle("Figure 14(a): reordered accesses (%) vs core count "
               "(suite average)");
    printColumns({"config", "P4", "P8", "P16"});
    for (int p : {kBase4K, kOpt4K, kBaseInf, kOptInf}) {
        printCell(policyName(p));
        for (int ci = 0; ci < 3; ++ci)
            printCell(reordered[ci][p], 4);
        endRow();
    }

    printTitle("Figure 14(b): log generation rate (MB/s) vs core count "
               "(suite average)");
    printColumns({"config", "P4", "P8", "P16"});
    for (int p : {kBase4K, kOpt4K, kBaseInf, kOptInf}) {
        printCell(policyName(p));
        for (int ci = 0; ci < 3; ++ci)
            printCell(rate[ci][p], 1);
        endRow();
    }
    std::printf("(paper: both grow with cores, noticeably but not "
                "exponentially; Base-4K least sensitive)\n");
    return 0;
}
