#include "bench/common.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include <unistd.h>

#include "rnr/logstore.hh"
#include "sim/trace.hh"

namespace rrbench
{

using namespace rr;

const std::vector<App> &
apps()
{
    static const std::vector<App> suite = {
        {"barnes", 8},   {"cholesky", 8}, {"fft", 8},
        {"fmm", 16},     {"lu", 24},       {"ocean", 2},
        {"radix", 16},   {"raytrace", 24}, {"water-nsq", 8},
        {"water-sp", 16},
    };
    return suite;
}

const char *
policyName(int idx)
{
    switch (idx) {
      case kBase4K: return "Base-4K";
      case kBaseInf: return "Base-INF";
      case kOpt4K: return "Opt-4K";
      case kOptInf: return "Opt-INF";
    }
    return "?";
}

std::vector<sim::RecorderConfig>
fourPolicies()
{
    std::vector<sim::RecorderConfig> p(kNumPolicies);
    p[kBase4K].mode = sim::RecorderMode::Base;
    p[kBase4K].maxIntervalInstructions = 4096;
    p[kBaseInf].mode = sim::RecorderMode::Base;
    p[kBaseInf].maxIntervalInstructions = 0;
    p[kOpt4K].mode = sim::RecorderMode::Opt;
    p[kOpt4K].maxIntervalInstructions = 4096;
    p[kOptInf].mode = sim::RecorderMode::Opt;
    p[kOptInf].maxIntervalInstructions = 0;
    return p;
}

std::uint64_t
Recorded::countedMem() const
{
    return hubCounter("counted_mem");
}

rnr::LogStats
Recorded::logStats(int policy) const
{
    rnr::LogStats stats;
    for (const auto &log : result.logs.at(policy))
        stats.accumulate(log);
    return stats;
}

std::uint64_t
Recorded::recorderCounter(int policy, const std::string &c) const
{
    std::uint64_t sum = 0;
    for (sim::CoreId core = 0; core < machine->config().numCores; ++core)
        sum += machine->hub(core).recorder(policy).stats().counterValue(c);
    return sum;
}

std::uint64_t
Recorded::hubCounter(const std::string &c) const
{
    std::uint64_t sum = 0;
    for (sim::CoreId core = 0; core < machine->config().numCores; ++core)
        sum += machine->hub(core).stats().counterValue(c);
    return sum;
}

Recorded
record(const App &app, std::uint32_t cores,
       std::vector<sim::RecorderConfig> policies,
       sim::CoherenceKind coherence)
{
    workloads::WorkloadParams wp;
    wp.numThreads = cores;
    wp.scale = app.scale;
    Recorded r;
    r.workload = workloads::buildKernel(app.name, wp);

    sim::MachineConfig cfg;
    cfg.numCores = cores;
    cfg.coherence = coherence;
    r.machine = std::make_unique<machine::Machine>(
        cfg, r.workload.program, policies);
    r.initial = r.machine->initialMemory();
    r.result = r.machine->run(5'000'000'000ULL);
    return r;
}

namespace
{

[[noreturn]] void
benchUsage(const char *prog)
{
    std::fprintf(stderr,
                 "usage: %s [--jobs N] [--timing] [--stats-json FILE]"
                 " [--coherence K]\n"
                 "  --jobs N           concurrent recordings "
                 "(default: all host cores; env RR_JOBS)\n"
                 "  --coherence K      coherence backend: snoopy "
                 "(default) or directory\n"
                 "  --timing           print wall-clock and simulated-"
                 "instruction throughput\n"
                 "  --stats-json FILE  export aggregated recording "
                 "stats as JSON\n"
                 "event tracing: set RR_TRACE=FILE.\n",
                 prog);
    std::exit(2);
}

std::uint32_t
parseJobs(const std::string &text, const char *prog)
{
    if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos)
        benchUsage(prog);
    return static_cast<std::uint32_t>(
        std::strtoul(text.c_str(), nullptr, 10));
}

} // namespace

BenchOptions
parseBenchOptions(int argc, char **argv)
{
    BenchOptions o;
    if (const char *env = std::getenv("RR_JOBS"))
        o.jobs = static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if ((arg == "--jobs" || arg == "-j") && i + 1 < argc) {
            o.jobs = parseJobs(argv[++i], argv[0]);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            o.jobs = parseJobs(arg.substr(7), argv[0]);
        } else if (arg == "--timing") {
            o.timing = true;
        } else if (arg == "--stats-json" && i + 1 < argc) {
            o.statsJson = argv[++i];
        } else if (arg.rfind("--stats-json=", 0) == 0) {
            o.statsJson = arg.substr(13);
        } else if (arg == "--coherence" && i + 1 < argc) {
            if (!sim::parseCoherenceKind(argv[++i], o.coherence))
                benchUsage(argv[0]);
        } else if (arg.rfind("--coherence=", 0) == 0) {
            if (!sim::parseCoherenceKind(arg.substr(12), o.coherence))
                benchUsage(argv[0]);
        } else {
            benchUsage(argv[0]);
        }
    }
    sim::TraceSink::openFromEnv();
    return o;
}

std::vector<Recorded>
recordAll(const std::vector<RecordJob> &jobs, const BenchOptions &opt)
{
    sim::SweepRunner runner(opt.jobs);
    std::vector<Recorded> out(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        runner.enqueue(jobs[i].app.name, [&runner, &jobs, &out, &opt, i] {
            out[i] = record(jobs[i].app, jobs[i].cores, jobs[i].policies,
                            jobs[i].coherence);
            runner.countInstructions(out[i].result.totalInstructions);
            if (!opt.statsJson.empty()) {
                std::vector<const sim::StatSet *> sets;
                out[i].machine->collectStats(sets);
                for (const sim::StatSet *s : sets)
                    runner.accumulateStats(*s);
            }
        });
    }
    runner.run();
    if (opt.timing)
        printSweepStats(runner.lastStats());
    if (!opt.statsJson.empty()) {
        std::ofstream os(opt.statsJson);
        if (os) {
            sim::writeStatsJson(os, {&runner.aggregatedStats()});
            std::printf("[stats] saved %s\n", opt.statsJson.c_str());
        } else {
            std::fprintf(stderr, "[stats] cannot open %s\n",
                         opt.statsJson.c_str());
        }
    }
    return out;
}

std::vector<Recorded>
recordSuite(std::uint32_t cores,
            const std::vector<sim::RecorderConfig> &policies,
            const BenchOptions &opt)
{
    std::vector<RecordJob> jobs;
    for (const App &app : apps())
        jobs.push_back({app, cores, policies, opt.coherence});
    return recordAll(jobs, opt);
}

void
forEachParallel(std::size_t count, const BenchOptions &opt,
                const std::function<void(std::size_t)> &task)
{
    sim::SweepRunner runner(opt.jobs);
    for (std::size_t i = 0; i < count; ++i)
        runner.enqueue([&task, i] { task(i); });
    runner.run();
}

std::vector<rnr::CoreLog>
roundTripThroughDisk(const std::vector<rnr::CoreLog> &logs,
                     std::uint32_t jobs)
{
    static std::atomic<std::uint64_t> counter{0};
    const char *tmpdir = std::getenv("TMPDIR");
    const std::string path =
        std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") + "/rrbench_" +
        std::to_string(static_cast<unsigned long>(::getpid())) + "_" +
        std::to_string(counter.fetch_add(1)) + ".rrlog";

    rnr::RecordingMeta meta;
    meta.kernel = "bench-roundtrip";
    meta.cores = static_cast<std::uint32_t>(logs.size());
    for (const auto &log : logs)
        for (const auto &iv : log.intervals)
            if (!iv.predecessors.empty())
                meta.deps = true;

    {
        rnr::LogWriter writer(path, meta);
        for (sim::CoreId c = 0; c < logs.size(); ++c)
            for (const auto &iv : logs[c].intervals)
                writer.append(c, iv);
        rnr::RecordingSummary summary;
        summary.cores.resize(logs.size());
        for (std::size_t c = 0; c < logs.size(); ++c)
            summary.cores[c].intervals = logs[c].intervals.size();
        writer.finish(summary);
    }

    rnr::LogReader reader(path);
    std::vector<rnr::CoreLog> out = reader.readAllParallel(jobs);
    std::remove(path.c_str());
    return out;
}

void
printSweepStats(const sim::SweepStats &stats)
{
    std::printf("[sweep] %llu jobs on %u workers: %.2fs wall, "
                "%.1fM simulated instructions, %.2fM instr/s\n",
                static_cast<unsigned long long>(stats.jobsRun),
                stats.workers, stats.wallSeconds,
                static_cast<double>(stats.totalInstructions) / 1e6,
                stats.instructionsPerSecond() / 1e6);
}

double
bitsPerKinst(const Recorded &r, int policy)
{
    const rnr::LogStats stats = r.logStats(policy);
    return 1000.0 * static_cast<double>(stats.totalBits) /
           static_cast<double>(r.result.totalInstructions);
}

double
logRateMBps(const Recorded &r, int policy)
{
    const rnr::LogStats stats = r.logStats(policy);
    const double bits_per_cycle = static_cast<double>(stats.totalBits) /
                                  static_cast<double>(r.result.cycles);
    return bits_per_cycle * 2e9 / 8.0 / 1e6;
}

void
printTitle(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

void
printColumns(const std::vector<std::string> &cols)
{
    for (std::size_t i = 0; i < cols.size(); ++i)
        std::printf(i == 0 ? "%-12s" : "%12s", cols[i].c_str());
    std::printf("\n");
}

namespace
{
bool rowStart = true;
}

void
printCell(const std::string &text)
{
    std::printf(rowStart ? "%-12s" : "%12s", text.c_str());
    rowStart = false;
}

void
printCell(double value, int precision)
{
    std::printf("%12.*f", precision, value);
    rowStart = false;
}

void
endRow()
{
    std::printf("\n");
    rowStart = true;
}

} // namespace rrbench
