#include "bench/common.hh"

namespace rrbench
{

using namespace rr;

const std::vector<App> &
apps()
{
    static const std::vector<App> suite = {
        {"barnes", 8},   {"cholesky", 8}, {"fft", 8},
        {"fmm", 16},     {"lu", 24},       {"ocean", 2},
        {"radix", 16},   {"raytrace", 24}, {"water-nsq", 8},
        {"water-sp", 16},
    };
    return suite;
}

const char *
policyName(int idx)
{
    switch (idx) {
      case kBase4K: return "Base-4K";
      case kBaseInf: return "Base-INF";
      case kOpt4K: return "Opt-4K";
      case kOptInf: return "Opt-INF";
    }
    return "?";
}

std::vector<sim::RecorderConfig>
fourPolicies()
{
    std::vector<sim::RecorderConfig> p(kNumPolicies);
    p[kBase4K].mode = sim::RecorderMode::Base;
    p[kBase4K].maxIntervalInstructions = 4096;
    p[kBaseInf].mode = sim::RecorderMode::Base;
    p[kBaseInf].maxIntervalInstructions = 0;
    p[kOpt4K].mode = sim::RecorderMode::Opt;
    p[kOpt4K].maxIntervalInstructions = 4096;
    p[kOptInf].mode = sim::RecorderMode::Opt;
    p[kOptInf].maxIntervalInstructions = 0;
    return p;
}

std::uint64_t
Recorded::countedMem() const
{
    return hubCounter("counted_mem");
}

rnr::LogStats
Recorded::logStats(int policy) const
{
    rnr::LogStats stats;
    for (const auto &log : result.logs.at(policy))
        stats.accumulate(log);
    return stats;
}

std::uint64_t
Recorded::recorderCounter(int policy, const std::string &c) const
{
    std::uint64_t sum = 0;
    for (sim::CoreId core = 0; core < machine->config().numCores; ++core)
        sum += machine->hub(core).recorder(policy).stats().counterValue(c);
    return sum;
}

std::uint64_t
Recorded::hubCounter(const std::string &c) const
{
    std::uint64_t sum = 0;
    for (sim::CoreId core = 0; core < machine->config().numCores; ++core)
        sum += machine->hub(core).stats().counterValue(c);
    return sum;
}

Recorded
record(const App &app, std::uint32_t cores,
       std::vector<sim::RecorderConfig> policies)
{
    workloads::WorkloadParams wp;
    wp.numThreads = cores;
    wp.scale = app.scale;
    Recorded r;
    r.workload = workloads::buildKernel(app.name, wp);

    sim::MachineConfig cfg;
    cfg.numCores = cores;
    r.machine = std::make_unique<machine::Machine>(
        cfg, r.workload.program, policies);
    r.initial = r.machine->initialMemory();
    r.result = r.machine->run(5'000'000'000ULL);
    return r;
}

double
bitsPerKinst(const Recorded &r, int policy)
{
    const rnr::LogStats stats = r.logStats(policy);
    return 1000.0 * static_cast<double>(stats.totalBits) /
           static_cast<double>(r.result.totalInstructions);
}

double
logRateMBps(const Recorded &r, int policy)
{
    const rnr::LogStats stats = r.logStats(policy);
    const double bits_per_cycle = static_cast<double>(stats.totalBits) /
                                  static_cast<double>(r.result.cycles);
    return bits_per_cycle * 2e9 / 8.0 / 1e6;
}

void
printTitle(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

void
printColumns(const std::vector<std::string> &cols)
{
    for (std::size_t i = 0; i < cols.size(); ++i)
        std::printf(i == 0 ? "%-12s" : "%12s", cols[i].c_str());
    std::printf("\n");
}

namespace
{
bool rowStart = true;
}

void
printCell(const std::string &text)
{
    std::printf(rowStart ? "%-12s" : "%12s", text.c_str());
    rowStart = false;
}

void
printCell(double value, int precision)
{
    std::printf("%12.*f", precision, value);
    rowStart = false;
}

void
endRow()
{
    std::printf("\n");
    rowStart = true;
}

} // namespace rrbench
