/**
 * @file
 * Figure 9 reproduction: memory-access instructions the recorder logs
 * as reordered, as a fraction of all memory-access instructions, for
 * RelaxReplay_Base and RelaxReplay_Opt under 4K and INF maximum
 * interval sizes.
 * Paper reference: Base 1.7% (4K) / 0.17% (INF); Opt ~0.03% (both).
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace rrbench;
    const BenchOptions opt = parseBenchOptions(argc, argv);

    printTitle("Figure 9: reordered accesses (% of memory instructions, "
               "8 cores)");
    const std::vector<Recorded> suite = recordSuite(8, fourPolicies(), opt);
    printColumns({"app", "Base-4K", "Opt-4K", "Base-INF", "Opt-INF"});

    double sums[kNumPolicies] = {};
    for (std::size_t i = 0; i < apps().size(); ++i) {
        const App &app = apps()[i];
        const Recorded &r = suite[i];
        const double mem = static_cast<double>(r.countedMem());
        printCell(app.name);
        for (int p : {kBase4K, kOpt4K, kBaseInf, kOptInf}) {
            const double pct =
                100.0 * static_cast<double>(r.logStats(p).reordered()) /
                mem;
            sums[p] += pct;
            printCell(pct, 4);
        }
        endRow();
    }
    printCell("average");
    for (int p : {kBase4K, kOpt4K, kBaseInf, kOptInf})
        printCell(sums[p] / apps().size(), 4);
    endRow();
    std::printf("(paper averages: Base-4K 1.7, Opt-4K 0.03, Base-INF "
                "0.17, Opt-INF 0.03)\n");
    return 0;
}
