/**
 * @file
 * Table 1 reproduction: print the architectural parameters of the
 * simulated machine and account for the per-processor RelaxReplay
 * structure sizes the paper quotes (MRR module ~2.3KB for Base /
 * ~3.3KB for Opt, TRAQ 1.8KB / 2.5KB).
 */

#include <cstdio>

#include "bench/common.hh"
#include "rnr/log.hh"

int
main()
{
    using namespace rr;
    sim::MachineConfig cfg;
    sim::RecorderConfig rc;

    std::printf("Table 1: architectural parameters (defaults)\n");
    std::printf("--------------------------------------------\n");
    std::printf("Multicore            ring-based MESI snoopy, %u cores "
                "(4/8/16 supported)\n",
                cfg.numCores);
    std::printf("Core                 %u-way OoO @ 2GHz, %u-entry ROB, "
                "%u Ld/St units, %u-entry LSQ\n",
                cfg.core.issueWidth, cfg.core.robEntries,
                cfg.core.numLdStUnits, cfg.core.lsqEntries);
    std::printf("L1                   private %uKB, %u-way, %uB lines, "
                "%u MSHRs, %u-cycle hit\n",
                cfg.l1.sizeBytes / 1024, cfg.l1.associativity,
                sim::kLineBytes, cfg.l1.mshrEntries, cfg.l1.hitLatency);
    std::printf("L2                   shared %uKB per core, %u-way, "
                "%u-cycle avg round-trip\n",
                cfg.l2.sizeBytes / 1024, cfg.l2.associativity,
                cfg.uncore.l2Latency);
    std::printf("Ring                 %u-cycle hop delay\n",
                cfg.uncore.ringHopDelay);
    std::printf("Memory               %u-cycle round-trip from L2\n",
                cfg.uncore.memLatency);
    std::printf("Signatures           %u x %u-bit Bloom filters (H3)\n",
                rc.signatureBanks, rc.signatureBitsPerBank);
    std::printf("TRAQ                 %u entries\n", rc.traqEntries);
    std::printf("Snoop Table          %u arrays x %u entries x 16-bit\n",
                rc.snoopTableArrays, rc.snoopTableEntries);

    // Per-processor structure accounting (bits).
    const unsigned addr = 48, value = 64, pisn = 16, nmi = rc.nmiBits;
    const unsigned snoop_count = 32; // two 16-bit counters
    const unsigned base_entry = addr + value + pisn + nmi + 2; // +flags
    const unsigned opt_entry = base_entry + snoop_count;
    const unsigned sigs = 2 * rc.signatureBanks * rc.signatureBitsPerBank;
    const unsigned misc = 64 /*glob time*/ + 32 /*blk size*/ +
                          16 /*CISN*/ + 8 * 32 * 8 /*log buffer*/;
    const unsigned snoop_table =
        rc.snoopTableArrays * rc.snoopTableEntries * 16;

    const double base_traq_kb = rc.traqEntries * base_entry / 8.0 / 1024;
    const double opt_traq_kb = rc.traqEntries * opt_entry / 8.0 / 1024;
    const double base_mrr_kb = base_traq_kb + (sigs + misc) / 8.0 / 1024;
    const double opt_mrr_kb =
        opt_traq_kb + (sigs + misc + snoop_table) / 8.0 / 1024;

    std::printf("\nPer-processor structure sizes (this implementation)\n");
    std::printf("  TRAQ entry:  Base %u bits, Opt %u bits (%.1fB)\n",
                base_entry, opt_entry, opt_entry / 8.0);
    std::printf("  TRAQ total:  Base %.1fKB, Opt %.1fKB   "
                "(paper: 1.8KB / 2.5KB)\n",
                base_traq_kb, opt_traq_kb);
    std::printf("  MRR module:  Base %.1fKB, Opt %.1fKB   "
                "(paper: 2.3KB / 3.3KB)\n",
                base_mrr_kb, opt_mrr_kb);
    std::printf("  Snoop Table: %u bytes (paper: 256B)\n",
                snoop_table / 8);

    std::printf("\nLog entry formats (bits, incl. 3-bit type tag)\n");
    std::printf("  InorderBlock   %u\n",
                rr::rnr::LogEntry::inorderBlock(0).sizeBits());
    std::printf("  ReorderedLoad  %u\n",
                rr::rnr::LogEntry::reorderedLoad(0).sizeBits());
    std::printf("  ReorderedStore %u\n",
                rr::rnr::LogEntry::reorderedStore(0, 0, 1).sizeBits());
    std::printf("  IntervalFrame  %u\n",
                3 + rr::rnr::bits::kCisn + rr::rnr::bits::kTimestamp);
    return 0;
}
