/**
 * @file
 * google-benchmark microbenchmarks of the RelaxReplay components: the
 * per-event costs of the recorder datapath (signature insert/lookup,
 * Snoop Table, log packing, patching) and the end-to-end simulation /
 * replay throughput. These quantify the *simulator's* software costs;
 * the modeled hardware costs are the structure sizes of Table 1.
 */

#include <benchmark/benchmark.h>

#include "isa/assembler.hh"
#include "machine/machine.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"
#include "rnr/signature.hh"
#include "rnr/snoop_table.hh"
#include "sim/rng.hh"
#include "workloads/kernels.hh"

namespace
{

using namespace rr;

void
BM_SignatureInsert(benchmark::State &state)
{
    rnr::Signature sig(4, 256, 1);
    sim::Rng rng(1);
    for (auto _ : state) {
        sig.insert(rng.next() & ~31ULL);
        benchmark::DoNotOptimize(sig.population());
    }
}
BENCHMARK(BM_SignatureInsert);

void
BM_SignatureLookup(benchmark::State &state)
{
    rnr::Signature sig(4, 256, 1);
    sim::Rng rng(1);
    for (int i = 0; i < 32; ++i)
        sig.insert(rng.next() & ~31ULL);
    for (auto _ : state) {
        const bool hit = sig.mightContain(rng.next() & ~31ULL);
        benchmark::DoNotOptimize(hit);
    }
}
BENCHMARK(BM_SignatureLookup);

void
BM_SnoopTableBumpAndCheck(benchmark::State &state)
{
    rnr::SnoopTable table(64);
    sim::Rng rng(2);
    const auto counts = table.read(0x1000);
    for (auto _ : state) {
        table.bump(rng.next() & ~31ULL);
        const bool conflict = table.conflictSince(0x1000, counts);
        benchmark::DoNotOptimize(conflict);
    }
}
BENCHMARK(BM_SnoopTableBumpAndCheck);

rnr::CoreLog
syntheticLog(std::size_t intervals)
{
    sim::Rng rng(3);
    rnr::CoreLog log;
    for (std::size_t i = 0; i < intervals; ++i) {
        rnr::IntervalRecord iv;
        iv.entries.push_back(rnr::LogEntry::inorderBlock(rng.below(5000)));
        if (i > 0 && rng.chance(1, 4)) {
            iv.entries.push_back(rnr::LogEntry::reorderedStore(
                rng.next() & 0xffffffffffffULL, rng.next(), 1));
        }
        iv.entries.push_back(rnr::LogEntry::reorderedLoad(rng.next()));
        iv.cisn = i;
        iv.timestamp = i * 100;
        log.intervals.push_back(iv);
    }
    return log;
}

void
BM_LogPack(benchmark::State &state)
{
    const rnr::CoreLog log = syntheticLog(256);
    for (auto _ : state) {
        const auto packed = rnr::pack(log);
        benchmark::DoNotOptimize(packed.bitCount);
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_LogPack);

void
BM_LogUnpack(benchmark::State &state)
{
    const auto packed = rnr::pack(syntheticLog(256));
    for (auto _ : state) {
        const auto log = rnr::unpack(packed);
        benchmark::DoNotOptimize(log.intervals.size());
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_LogUnpack);

void
BM_LogPatch(benchmark::State &state)
{
    const rnr::CoreLog log = syntheticLog(256);
    for (auto _ : state) {
        const auto patched = rnr::patch(log);
        benchmark::DoNotOptimize(patched.intervals.size());
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_LogPatch);

void
BM_FunctionalInterpreter(benchmark::State &state)
{
    isa::Assembler a;
    a.li(3, 1000);
    a.li(4, 0x10000);
    a.label("loop");
    a.ld(5, 4, 0);
    a.addi(5, 5, 1);
    a.st(5, 4, 0);
    a.addi(3, 3, -1);
    a.bne(3, 0, "loop");
    a.halt();
    const isa::Program p = a.assemble();
    for (auto _ : state) {
        mem::BackingStore m;
        isa::ExecContext ctx;
        while (!ctx.halted)
            isa::step(p, ctx, m);
        benchmark::DoNotOptimize(ctx.instructions);
        state.SetItemsProcessed(state.items_processed() +
                                ctx.instructions);
    }
}
BENCHMARK(BM_FunctionalInterpreter);

void
BM_SimulatedMachineThroughput(benchmark::State &state)
{
    // Instructions simulated per second for a 4-core fft recording.
    workloads::WorkloadParams wp;
    wp.numThreads = 4;
    wp.scale = 1;
    const auto w = workloads::buildKernel("fft", wp);
    sim::MachineConfig cfg;
    cfg.numCores = 4;
    std::vector<sim::RecorderConfig> pol(1);
    pol[0].mode = sim::RecorderMode::Opt;
    for (auto _ : state) {
        machine::Machine m(cfg, w.program, pol);
        auto res = m.run();
        benchmark::DoNotOptimize(res.cycles);
        state.SetItemsProcessed(state.items_processed() +
                                res.totalInstructions);
    }
}
BENCHMARK(BM_SimulatedMachineThroughput)->Unit(benchmark::kMillisecond);

void
BM_ReplayThroughput(benchmark::State &state)
{
    workloads::WorkloadParams wp;
    wp.numThreads = 4;
    wp.scale = 1;
    const auto w = workloads::buildKernel("fft", wp);
    sim::MachineConfig cfg;
    cfg.numCores = 4;
    std::vector<sim::RecorderConfig> pol(1);
    pol[0].mode = sim::RecorderMode::Opt;
    machine::Machine m(cfg, w.program, pol);
    const mem::BackingStore initial = m.initialMemory();
    const auto rec = m.run();
    std::vector<rnr::CoreLog> patched;
    for (const auto &log : rec.logs[0])
        patched.push_back(rnr::patch(log));
    for (auto _ : state) {
        rnr::Replayer rep(w.program, patched, initial.clone());
        auto res = rep.run();
        benchmark::DoNotOptimize(res.instructions);
        state.SetItemsProcessed(state.items_processed() +
                                res.instructions);
    }
}
BENCHMARK(BM_ReplayThroughput)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
