/**
 * @file
 * google-benchmark microbenchmarks for the PR's two performance claims:
 *
 *   1. SweepRunner throughput scaling — the same batch of recordings at
 *      1/2/4/8 workers. On an N-core host the wall clock should drop
 *      close to min(N, jobs)x; on a single-core host the curves are
 *      flat (the pool adds only negligible overhead).
 *
 *   2. Signature hot-path — insert/mightContain under the access
 *      patterns the recorder actually generates. Real interval
 *      recording re-touches a small working set of lines, which is
 *      exactly what the direct-mapped line->H3-index cache exploits;
 *      the uniform-random variants measure the cache-miss (worst)
 *      case.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "machine/machine.hh"
#include "rnr/signature.hh"
#include "sim/flat_map.hh"
#include "sim/rng.hh"
#include "sim/sweep.hh"
#include "workloads/kernels.hh"

namespace
{

using namespace rr;

std::vector<sim::RecorderConfig>
optPolicy()
{
    std::vector<sim::RecorderConfig> p(1);
    p[0].mode = sim::RecorderMode::Opt;
    p[0].maxIntervalInstructions = 4096;
    return p;
}

std::uint64_t
recordJob(const std::string &kernel)
{
    workloads::WorkloadParams wp;
    wp.numThreads = 4;
    wp.scale = 1;
    const auto w = workloads::buildKernel(kernel, wp);
    sim::MachineConfig cfg;
    cfg.numCores = 4;
    machine::Machine m(cfg, w.program, optPolicy());
    return m.run().totalInstructions;
}

/**
 * An 8-job batch (4 kernels x 2 copies) through SweepRunner at the
 * worker count given by the benchmark argument. Reports simulated
 * instructions/second so runs at different worker counts are directly
 * comparable.
 */
void
BM_SweepRunnerScaling(benchmark::State &state)
{
    const std::uint32_t workers =
        static_cast<std::uint32_t>(state.range(0));
    const std::vector<std::string> kernels = {"fft", "radix", "lu",
                                             "ocean"};
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        sim::SweepRunner runner(workers);
        const auto counts = sim::sweepMap<std::uint64_t>(
            runner, kernels.size() * 2,
            [&](std::size_t i, std::uint64_t) {
                return recordJob(kernels[i % kernels.size()]);
            });
        for (std::uint64_t c : counts)
            instructions += c;
        benchmark::DoNotOptimize(counts.data());
    }
    state.counters["sim_instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepRunnerScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/** Hot working set: the recorder's common case (index cache hits). */
void
BM_SignatureInsertHotLines(benchmark::State &state)
{
    rnr::Signature sig(4, 256, 1);
    sim::Rng rng(1);
    std::vector<sim::Addr> lines;
    for (int i = 0; i < 48; ++i)
        lines.push_back((rng.next() & 0xffffff) * 32);
    std::size_t i = 0;
    for (auto _ : state) {
        sig.insert(lines[i]);
        if (++i == lines.size()) {
            i = 0;
            sig.clear(); // interval end; the index cache survives
        }
        benchmark::DoNotOptimize(sig.sizeBits());
    }
}
BENCHMARK(BM_SignatureInsertHotLines);

/** Uniform-random lines: every access misses the index cache. */
void
BM_SignatureInsertColdLines(benchmark::State &state)
{
    rnr::Signature sig(4, 256, 1);
    sim::Rng rng(1);
    int n = 0;
    for (auto _ : state) {
        sig.insert((rng.next() & 0xffffff) * 32);
        if (++n == 48) {
            n = 0;
            sig.clear();
        }
        benchmark::DoNotOptimize(sig.sizeBits());
    }
}
BENCHMARK(BM_SignatureInsertColdLines);

void
BM_SignatureLookupHotLines(benchmark::State &state)
{
    rnr::Signature sig(4, 256, 1);
    sim::Rng rng(3);
    std::vector<sim::Addr> lines;
    for (int i = 0; i < 48; ++i) {
        lines.push_back((rng.next() & 0xffffff) * 32);
        sig.insert(lines.back());
    }
    std::size_t i = 0;
    for (auto _ : state) {
        const bool hit = sig.mightContain(lines[i]);
        if (++i == lines.size())
            i = 0;
        benchmark::DoNotOptimize(hit);
    }
}
BENCHMARK(BM_SignatureLookupHotLines);

void
BM_SignatureLookupColdLines(benchmark::State &state)
{
    rnr::Signature sig(4, 256, 1);
    sim::Rng rng(3);
    for (int i = 0; i < 48; ++i)
        sig.insert((rng.next() & 0xffffff) * 32);
    for (auto _ : state) {
        const bool hit = sig.mightContain((rng.next() & 0xffffff) * 32);
        benchmark::DoNotOptimize(hit);
    }
}
BENCHMARK(BM_SignatureLookupColdLines);

int *
mapFind(std::unordered_map<std::uint64_t, int> &m, std::uint64_t k)
{
    auto it = m.find(k);
    return it == m.end() ? nullptr : &it->second;
}

int *
mapFind(sim::FlatMap<int> &m, std::uint64_t k)
{
    return m.find(k);
}

/**
 * The MSHR tracking pattern from mem::MemorySystem: a small population
 * of in-flight lines with insert-on-miss / find-per-access /
 * erase-on-fill churn. FlatMap is what the memory system uses now;
 * the std::unordered_map variant is the structure it replaced.
 */
template <typename Map>
void
mshrChurn(benchmark::State &state, Map &map)
{
    sim::Rng rng(11);
    std::vector<std::uint64_t> lines;
    for (int i = 0; i < 24; ++i)
        lines.push_back((rng.next() & 0xffff) * 32);
    std::size_t i = 0;
    for (auto _ : state) {
        const std::uint64_t line = lines[i];
        if (++i == lines.size())
            i = 0;
        auto *hit = mapFind(map, line);
        if (hit == nullptr)
            map[line] = 1;
        else if (++*hit == 4)
            map.erase(line);
        benchmark::DoNotOptimize(hit);
    }
}

void
BM_MshrMapStdUnordered(benchmark::State &state)
{
    std::unordered_map<std::uint64_t, int> map;
    mshrChurn(state, map);
}
BENCHMARK(BM_MshrMapStdUnordered);

void
BM_MshrMapFlat(benchmark::State &state)
{
    sim::FlatMap<int> map;
    mshrChurn(state, map);
}
BENCHMARK(BM_MshrMapFlat);

} // namespace

BENCHMARK_MAIN();
