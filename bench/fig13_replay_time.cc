/**
 * @file
 * Figure 13 reproduction: sequential replay time normalized to the
 * (parallel, 8-core) recording time, broken into User and OS cycles,
 * for Opt and Base logs under 4K and INF intervals.
 *
 * As in the paper, the replay control module is emulated: the exact
 * functional replayer processes the log while a calibrated cost model
 * (rnr::ReplayCostModel) charges native block execution to User cycles
 * and interval ordering / log decoding / reordered-instruction
 * emulation to OS cycles.
 *
 * Paper reference (avg): Opt 8.5x (4K) / 6.7x (INF); Base 26.2x (4K) /
 * 8.6x (INF); OS time one third to one sixth of replay time.
 */

#include "bench/common.hh"

#include <array>

#include "rnr/patcher.hh"
#include "rnr/replayer.hh"

namespace
{

rr::rnr::ReplayCost
replayCost(const rrbench::Recorded &r, int policy)
{
    std::vector<rr::rnr::CoreLog> patched;
    for (const auto &log : r.result.logs.at(policy))
        patched.push_back(rr::rnr::patch(log));
    // Replay what the persistent data path delivers, not the in-memory
    // recording: app x policy cells already fan out over the host
    // cores, so decode single-threaded inside each cell.
    patched = rrbench::roundTripThroughDisk(patched, 1);
    rr::rnr::Replayer rep(r.workload.program, std::move(patched),
                          r.initial.clone());
    return rep.run().cost;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rrbench;
    const BenchOptions opt = parseBenchOptions(argc, argv);

    printTitle("Figure 13: sequential replay time / parallel recording "
               "time (8 cores)");
    const std::vector<Recorded> suite = recordSuite(8, fourPolicies(), opt);

    // The replays are read-only over the recordings, so they fan out
    // over app x policy jobs just like the recordings did.
    std::vector<std::array<rr::rnr::ReplayCost, kNumPolicies>> costs(
        suite.size());
    forEachParallel(suite.size() * kNumPolicies, opt,
                    [&suite, &costs](std::size_t j) {
                        const std::size_t i = j / kNumPolicies;
                        const int p = static_cast<int>(j % kNumPolicies);
                        costs[i][p] = replayCost(suite[i], p);
                    });

    printColumns({"app", "Opt-4K", "(os%)", "Base-4K", "(os%)", "Opt-INF",
                  "(os%)", "Base-INF", "(os%)"});
    const int order[4] = {kOpt4K, kBase4K, kOptInf, kBaseInf};
    double sums[kNumPolicies] = {};
    double os_share[kNumPolicies] = {};
    for (std::size_t i = 0; i < apps().size(); ++i) {
        const App &app = apps()[i];
        const Recorded &r = suite[i];
        printCell(app.name);
        for (int p : order) {
            const rr::rnr::ReplayCost cost = costs[i][p];
            const double x = static_cast<double>(cost.total()) /
                             static_cast<double>(r.result.cycles);
            const double os = 100.0 * static_cast<double>(cost.osCycles) /
                              static_cast<double>(cost.total());
            sums[p] += x;
            os_share[p] += os;
            printCell(x, 1);
            printCell(os, 0);
        }
        endRow();
    }
    printCell("average");
    for (int p : order) {
        printCell(sums[p] / apps().size(), 1);
        printCell(os_share[p] / apps().size(), 0);
    }
    endRow();
    std::printf("(paper averages: Opt 8.5x/6.7x, Base 26.2x/8.6x for "
                "4K/INF; OS 1/6..1/3)\n");
    return 0;
}
