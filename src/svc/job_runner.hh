/**
 * @file
 * Job execution for the replay service: runs one record / replay /
 * verify / stats job described by a JobParams through the exact code
 * paths the one-shot CLI uses — recording via machine::Machine with an
 * optional streaming rnr::LogWriter, replay via mmap ingest
 * (rnr::LogReader, IngestMode::Auto), readAllParallel decode and the
 * rnr::ParallelReplayer engine — and packages the outcome as a JSON
 * result object. Determinism verification is identical to
 * `rrsim replay FILE`: memory fingerprint, total instructions, and
 * per-core load-value hashes / load counts / instruction counts are
 * checked against the recorded summary.
 *
 * Cancellation is cooperative: the runner polls a shared CancelToken
 * at replay load hooks (every few thousand loads), at recording
 * interval closes, and between stages; a fired token aborts the job
 * with JobCancelled. Results are therefore byte-stable: the same
 * params yield the same result JSON whether run here or in-process by
 * a test, which is what the soak test's byte-identity check relies
 * on.
 */

#ifndef RR_SVC_JOB_RUNNER_HH
#define RR_SVC_JOB_RUNNER_HH

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>

#include "svc/protocol.hh"

namespace rr::svc
{

/** Shared cancellation flag; set by the scheduler, polled by jobs. */
class CancelToken
{
  public:
    void cancel() { flag_.store(true, std::memory_order_relaxed); }
    bool cancelled() const
    {
        return flag_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> flag_{false};
};

/** Thrown by the runner when its token fires mid-job. */
struct JobCancelled : std::runtime_error
{
    JobCancelled() : std::runtime_error("job cancelled") {}
};

/** What a finished job reports. */
struct JobOutcome
{
    bool ok = false;
    /**
     * rrlog/rrsim exit-code class of the failure: 1 corrupt/mismatch,
     * 2 invalid request (e.g. unknown kernel), 3 OS-level I/O.
     * 0 when ok.
     */
    int errorClass = 0;
    std::string errorClassName() const
    {
        switch (errorClass) {
          case 0:
            return "NONE";
          case 2:
            return "INVALID";
          case 3:
            return "IO";
          default:
            return "MISMATCH";
        }
    }
    std::string message; ///< failure detail (empty when ok)
    /** Serialized JSON object describing the result (always set). */
    std::string resultJson = "{}";
};

/**
 * Run @p params to completion (or cancellation). Never throws except
 * JobCancelled — every other failure is folded into the outcome.
 */
JobOutcome runJob(const JobParams &params, const CancelToken &token);

} // namespace rr::svc

#endif // RR_SVC_JOB_RUNNER_HH
