#include "svc/protocol.hh"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace rr::svc
{

// --- Json value -------------------------------------------------------

const Json &
Json::get(const std::string &key) const
{
    static const Json null;
    if (kind_ != Kind::Object || !obj_)
        return null;
    auto it = obj_->find(key);
    return it == obj_->end() ? null : it->second;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char ch : s) {
        const unsigned char c = static_cast<unsigned char>(ch);
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(ch);
            }
        }
    }
    out.push_back('"');
    return out;
}

void
Json::dumpTo(std::string &out) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Int: {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(int_));
        out += buf;
        break;
      }
      case Kind::Double: {
        if (std::isfinite(double_)) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.17g", double_);
            out += buf;
        } else {
            out += "null"; // JSON has no Inf/NaN
        }
        break;
      }
      case Kind::String:
        out += jsonQuote(str_);
        break;
      case Kind::Array: {
        out.push_back('[');
        bool first = true;
        for (const Json &v : asArray()) {
            if (!first)
                out.push_back(',');
            first = false;
            v.dumpTo(out);
        }
        out.push_back(']');
        break;
      }
      case Kind::Object: {
        out.push_back('{');
        bool first = true;
        for (const auto &[k, v] : asObject()) {
            if (!first)
                out.push_back(',');
            first = false;
            out += jsonQuote(k);
            out.push_back(':');
            v.dumpTo(out);
        }
        out.push_back('}');
        break;
      }
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

// --- JSON parser ------------------------------------------------------

namespace
{

class Parser
{
  public:
    Parser(const std::string &text, std::size_t max_depth)
        : text_(text), maxDepth_(max_depth)
    {
    }

    std::optional<Json>
    parse(std::string &error)
    {
        std::optional<Json> v = value(0);
        if (!v) {
            error = error_;
            return std::nullopt;
        }
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing bytes after document");
            error = error_;
            return std::nullopt;
        }
        return v;
    }

  private:
    void
    fail(const std::string &what)
    {
        if (error_.empty())
            error_ = what + " at byte " + std::to_string(pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    std::optional<Json>
    value(std::size_t depth)
    {
        if (depth > maxDepth_) {
            fail("nesting depth limit exceeded");
            return std::nullopt;
        }
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return std::nullopt;
        }
        const char c = text_[pos_];
        if (c == '{')
            return object(depth);
        if (c == '[')
            return array(depth);
        if (c == '"') {
            std::optional<std::string> s = string();
            if (!s)
                return std::nullopt;
            return Json(std::move(*s));
        }
        if (c == 't') {
            if (literal("true"))
                return Json(true);
            fail("bad literal");
            return std::nullopt;
        }
        if (c == 'f') {
            if (literal("false"))
                return Json(false);
            fail("bad literal");
            return std::nullopt;
        }
        if (c == 'n') {
            if (literal("null"))
                return Json();
            fail("bad literal");
            return std::nullopt;
        }
        return number();
    }

    std::optional<Json>
    number()
    {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        bool any_digit = false;
        if (pos_ < text_.size() && text_[pos_] == '0') {
            // Strict JSON: the integer part is 0 or [1-9][0-9]* — a
            // leading zero is not a number prefix.
            ++pos_;
            any_digit = true;
            if (pos_ < text_.size() &&
                std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                fail("bad number (leading zero)");
                return std::nullopt;
            }
        } else {
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                any_digit = true;
            }
        }
        bool is_double = false;
        if (consume('.')) {
            is_double = true;
            bool frac = false;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                frac = true;
            }
            if (!frac) {
                fail("bad number");
                return std::nullopt;
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            is_double = true;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            bool exp = false;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                exp = true;
            }
            if (!exp) {
                fail("bad number");
                return std::nullopt;
            }
        }
        if (!any_digit) {
            fail("bad number");
            return std::nullopt;
        }
        const char *first = text_.data() + start;
        const char *last = text_.data() + pos_;
        if (!is_double) {
            std::int64_t iv = 0;
            const auto [p, ec] = std::from_chars(first, last, iv);
            if (ec == std::errc() && p == last)
                return Json(iv);
            // fall through: out of int64 range -> double
        }
        double dv = 0.0;
        const auto [p, ec] = std::from_chars(first, last, dv);
        if (ec != std::errc() || p != last) {
            fail("bad number");
            return std::nullopt;
        }
        return Json(dv);
    }

    /** Append @p cp as UTF-8. */
    static void
    appendUtf8(std::string &out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    std::optional<std::uint32_t>
    hex4()
    {
        if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
        }
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<std::uint32_t>(c - 'A' + 10);
            else {
                fail("bad \\u escape");
                return std::nullopt;
            }
        }
        return v;
    }

    std::optional<std::string>
    string()
    {
        if (!consume('"')) {
            fail("expected string");
            return std::nullopt;
        }
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
                return std::nullopt;
            }
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return out;
            }
            if (c < 0x20) {
                fail("raw control character in string");
                return std::nullopt;
            }
            if (c != '\\') {
                out.push_back(static_cast<char>(c));
                ++pos_;
                continue;
            }
            ++pos_; // backslash
            if (pos_ >= text_.size()) {
                fail("truncated escape");
                return std::nullopt;
            }
            const char e = text_[pos_++];
            switch (e) {
              case '"':
                out.push_back('"');
                break;
              case '\\':
                out.push_back('\\');
                break;
              case '/':
                out.push_back('/');
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'u': {
                std::optional<std::uint32_t> hi = hex4();
                if (!hi)
                    return std::nullopt;
                std::uint32_t cp = *hi;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: require a following \uDC00-DFFF.
                    if (!literal("\\u")) {
                        fail("lone high surrogate");
                        return std::nullopt;
                    }
                    std::optional<std::uint32_t> lo = hex4();
                    if (!lo)
                        return std::nullopt;
                    if (*lo < 0xDC00 || *lo > 0xDFFF) {
                        fail("bad low surrogate");
                        return std::nullopt;
                    }
                    cp = 0x10000 + ((cp - 0xD800) << 10) +
                         (*lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    fail("lone low surrogate");
                    return std::nullopt;
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail("bad escape");
                return std::nullopt;
            }
        }
    }

    std::optional<Json>
    array(std::size_t depth)
    {
        consume('[');
        JsonArray out;
        skipWs();
        if (consume(']'))
            return Json(std::move(out));
        for (;;) {
            std::optional<Json> v = value(depth + 1);
            if (!v)
                return std::nullopt;
            out.push_back(std::move(*v));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return Json(std::move(out));
            fail("expected ',' or ']'");
            return std::nullopt;
        }
    }

    std::optional<Json>
    object(std::size_t depth)
    {
        consume('{');
        JsonObject out;
        skipWs();
        if (consume('}'))
            return Json(std::move(out));
        for (;;) {
            skipWs();
            std::optional<std::string> key = string();
            if (!key)
                return std::nullopt;
            skipWs();
            if (!consume(':')) {
                fail("expected ':'");
                return std::nullopt;
            }
            std::optional<Json> v = value(depth + 1);
            if (!v)
                return std::nullopt;
            out[std::move(*key)] = std::move(*v);
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return Json(std::move(out));
            fail("expected ',' or '}'");
            return std::nullopt;
        }
    }

    const std::string &text_;
    const std::size_t maxDepth_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

std::optional<Json>
parseJson(const std::string &text, std::string &error,
          std::size_t max_depth)
{
    return Parser(text, max_depth).parse(error);
}

// --- Requests ---------------------------------------------------------

const char *
toString(ErrorCode code)
{
    switch (code) {
      case ErrorCode::BadRequest:
        return "BAD_REQUEST";
      case ErrorCode::QueueFull:
        return "QUEUE_FULL";
      case ErrorCode::QuotaExceeded:
        return "QUOTA_EXCEEDED";
      case ErrorCode::ShuttingDown:
        return "SHUTTING_DOWN";
      case ErrorCode::NotFound:
        return "NOT_FOUND";
      case ErrorCode::Internal:
        return "INTERNAL";
    }
    return "INTERNAL";
}

const char *
toString(JobKind kind)
{
    switch (kind) {
      case JobKind::Record:
        return "record";
      case JobKind::Replay:
        return "replay";
      case JobKind::Verify:
        return "verify";
      case JobKind::Stats:
        return "stats";
    }
    return "?";
}

namespace
{

/** A non-negative integer field; rejects negatives and non-numbers. */
bool
uintField(const Json &obj, const char *key, std::uint64_t &out,
          std::string &error)
{
    const Json &v = obj.get(key);
    if (v.isNull())
        return true;
    if (v.kind() != Json::Kind::Int || v.asInt() < 0) {
        error = std::string("field '") + key +
                "' must be a non-negative integer";
        return false;
    }
    out = static_cast<std::uint64_t>(v.asInt());
    return true;
}

bool
parseJobParams(const Json &o, JobKind kind, JobParams &p,
               std::string &error)
{
    p.kind = kind;
    p.kernel = o.get("kernel").asString();
    p.file = o.get("file").asString();
    p.outFile = o.get("out").asString();

    std::uint64_t cores = p.cores, jobs = p.jobs;
    if (!uintField(o, "cores", cores, error) ||
        !uintField(o, "scale", p.scale, error) ||
        !uintField(o, "interval", p.intervalCap, error) ||
        !uintField(o, "jobs", jobs, error))
        return false;
    // Range-check the full 64-bit values BEFORE narrowing: a value
    // like 2^32+1 must be rejected, not silently wrapped into range.
    if (cores == 0 || cores > 256) {
        error = "field 'cores' must be in [1,256]";
        return false;
    }
    if (jobs > 256) {
        error = "field 'jobs' must be in [0,256]";
        return false;
    }
    p.cores = static_cast<std::uint32_t>(cores);
    p.jobs = static_cast<std::uint32_t>(jobs);
    p.deps = o.get("deps").asBool(p.deps);
    p.allowPartial = o.get("allowPartial").asBool(false);

    const Json &mode = o.get("mode");
    if (!mode.isNull()) {
        if (mode.asString() == "base")
            p.mode = sim::RecorderMode::Base;
        else if (mode.asString() == "opt")
            p.mode = sim::RecorderMode::Opt;
        else {
            error = "field 'mode' must be \"base\" or \"opt\"";
            return false;
        }
    }
    const Json &coherence = o.get("coherence");
    if (!coherence.isNull()) {
        if (!sim::parseCoherenceKind(coherence.asString(),
                                     p.coherence)) {
            error = "field 'coherence' must be \"snoopy\" or "
                    "\"directory\"";
            return false;
        }
        p.coherenceSet = true;
    }
    const Json &ingest = o.get("ingest");
    if (!ingest.isNull()) {
        if (ingest.asString() == "auto")
            p.ingest = rnr::IngestMode::Auto;
        else if (ingest.asString() == "mmap")
            p.ingest = rnr::IngestMode::Mmap;
        else if (ingest.asString() == "stream")
            p.ingest = rnr::IngestMode::Streamed;
        else {
            error = "field 'ingest' must be auto|mmap|stream";
            return false;
        }
    }

    switch (kind) {
      case JobKind::Record:
        if (p.kernel.empty()) {
            error = "record needs a 'kernel'";
            return false;
        }
        break;
      case JobKind::Replay:
        if (p.file.empty() && p.kernel.empty()) {
            error = "replay needs a 'file' (or a 'kernel' to "
                    "record-then-replay in memory)";
            return false;
        }
        break;
      case JobKind::Verify:
      case JobKind::Stats:
        if (p.file.empty()) {
            error = std::string(toString(kind)) + " needs a 'file'";
            return false;
        }
        break;
    }
    return true;
}

} // namespace

std::optional<Request>
parseRequest(const std::string &line, std::string &error)
{
    std::optional<Json> doc = parseJson(line, error);
    if (!doc)
        return std::nullopt;
    if (!doc->isObject()) {
        error = "request must be a JSON object";
        return std::nullopt;
    }

    Request r;
    const Json &tenant = doc->get("tenant");
    if (!tenant.isNull()) {
        r.tenant = tenant.asString();
        if (r.tenant.empty() || r.tenant.size() > 64) {
            error = "field 'tenant' must be a 1..64-char string";
            return std::nullopt;
        }
    }
    std::uint64_t weight = 1;
    if (!uintField(*doc, "weight", weight, error))
        return std::nullopt;
    r.weight = std::min<std::uint64_t>(std::max<std::uint64_t>(weight, 1),
                                       100);
    r.tag = doc->get("tag").asString();
    if (r.tag.size() > 128) {
        error = "field 'tag' too long (max 128)";
        return std::nullopt;
    }
    const Json &timeout = doc->get("timeout");
    if (!timeout.isNull()) {
        r.timeoutSec = timeout.asDouble(-1.0);
        if (!(r.timeoutSec >= 0.0) || r.timeoutSec > 86400.0) {
            error = "field 'timeout' must be seconds in [0,86400]";
            return std::nullopt;
        }
    }

    const std::string op = doc->get("op").asString();
    if (op == "record" || op == "replay" || op == "verify" ||
        op == "stats") {
        r.op = Request::Op::Submit;
        const JobKind kind = op == "record"  ? JobKind::Record
                             : op == "replay" ? JobKind::Replay
                             : op == "verify" ? JobKind::Verify
                                              : JobKind::Stats;
        if (!parseJobParams(*doc, kind, r.params, error))
            return std::nullopt;
    } else if (op == "cancel") {
        r.op = Request::Op::Cancel;
        if (!uintField(*doc, "job", r.cancelJob, error))
            return std::nullopt;
        if (r.cancelJob == 0) {
            error = "cancel needs a 'job' id";
            return std::nullopt;
        }
    } else if (op == "status") {
        r.op = Request::Op::Status;
    } else if (op == "ping") {
        r.op = Request::Op::Ping;
    } else if (op == "shutdown") {
        r.op = Request::Op::Shutdown;
        r.drain = doc->get("drain").asBool(true);
    } else {
        error = op.empty()
                    ? "missing 'op'"
                    : "unknown op '" + op +
                          "' (record|replay|verify|stats|cancel|"
                          "status|ping|shutdown)";
        return std::nullopt;
    }
    return r;
}

// --- Events -----------------------------------------------------------

namespace
{

void
appendTag(std::string &out, const std::string &tag)
{
    if (!tag.empty()) {
        out += ",\"tag\":";
        out += jsonQuote(tag);
    }
}

} // namespace

std::string
eventAccepted(std::uint64_t job, const std::string &tag,
              std::uint64_t queue_depth)
{
    std::string out = "{\"event\":\"accepted\",\"job\":" +
                      std::to_string(job) +
                      ",\"queueDepth\":" + std::to_string(queue_depth);
    appendTag(out, tag);
    out += "}";
    return out;
}

std::string
eventRejected(ErrorCode code, const std::string &detail,
              const std::string &tag)
{
    std::string out = std::string("{\"event\":\"rejected\",\"error\":\"") +
                      toString(code) + "\"";
    if (!detail.empty()) {
        out += ",\"detail\":";
        out += jsonQuote(detail);
    }
    appendTag(out, tag);
    out += "}";
    return out;
}

std::string
eventRunning(std::uint64_t job, const std::string &tag)
{
    std::string out =
        "{\"event\":\"running\",\"job\":" + std::to_string(job);
    appendTag(out, tag);
    out += "}";
    return out;
}

std::string
eventProgress(std::uint64_t job, const std::string &tag,
              const std::string &stage)
{
    std::string out =
        "{\"event\":\"progress\",\"job\":" + std::to_string(job) +
        ",\"stage\":" + jsonQuote(stage);
    appendTag(out, tag);
    out += "}";
    return out;
}

std::string
eventCompleted(std::uint64_t job, const std::string &tag,
               const std::string &result, double wall_seconds)
{
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.6f", wall_seconds);
    std::string out =
        "{\"event\":\"completed\",\"job\":" + std::to_string(job) +
        ",\"wallSeconds\":" + wall +
        ",\"result\":" + (result.empty() ? "{}" : result);
    appendTag(out, tag);
    out += "}";
    return out;
}

std::string
eventFailed(std::uint64_t job, const std::string &tag,
            const std::string &error_class, const std::string &message)
{
    std::string out =
        "{\"event\":\"failed\",\"job\":" + std::to_string(job) +
        ",\"error\":" + jsonQuote(error_class) +
        ",\"message\":" + jsonQuote(message);
    appendTag(out, tag);
    out += "}";
    return out;
}

std::string
eventCancelled(std::uint64_t job, const std::string &tag,
               const std::string &reason)
{
    std::string out =
        "{\"event\":\"cancelled\",\"job\":" + std::to_string(job) +
        ",\"reason\":" + jsonQuote(reason);
    appendTag(out, tag);
    out += "}";
    return out;
}

std::string
eventPong()
{
    return "{\"event\":\"pong\"}";
}

std::string
eventStatus(const std::string &body)
{
    return "{\"event\":\"status\",\"server\":" +
           (body.empty() ? "{}" : body) + "}";
}

std::string
eventShutdown(bool draining)
{
    return std::string("{\"event\":\"shutdown\",\"draining\":") +
           (draining ? "true" : "false") + "}";
}

} // namespace rr::svc
