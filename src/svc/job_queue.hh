/**
 * @file
 * Bounded multi-tenant job queue with admission control — the
 * backpressure layer between the protocol front end and the scheduler.
 *
 * Invariants:
 *  - the queue holds job *descriptors* only (strings + scalars, no
 *    open files, no decoded logs), so thousands of queued jobs cost
 *    kilobytes, not gigabytes — logs are opened when a job dispatches;
 *  - admission is all-or-nothing and typed: a job the queue cannot
 *    take is rejected *now* with QUEUE_FULL (global capacity) or
 *    QUOTA_EXCEEDED (per-tenant cap), never buffered unboundedly;
 *  - dispatch order is FIFO within a tenant and smooth weighted
 *    round-robin across tenants (nginx's algorithm: each pick adds
 *    every waiting tenant's weight to its credit, the highest credit
 *    wins and pays the total weight back), so one tenant flooding the
 *    queue cannot starve the others.
 *
 * Thread-safe; admission (server thread) and pop (scheduler dispatch
 * thread) run concurrently.
 */

#ifndef RR_SVC_JOB_QUEUE_HH
#define RR_SVC_JOB_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "svc/protocol.hh"

namespace rr::svc
{

/** A queued job: descriptor only, plus routing/accounting metadata. */
struct JobDesc
{
    std::uint64_t id = 0;
    std::string tenant;
    std::string tag;      ///< client correlation tag (echoed on events)
    std::uint64_t conn = 0; ///< originating connection (event routing)
    JobParams params;
    double timeoutSec = 0.0; ///< 0 = scheduler default
    std::chrono::steady_clock::time_point enqueued{};
};

/** Outcome of JobQueue::admit(). */
struct AdmitResult
{
    bool admitted = false;
    ErrorCode error = ErrorCode::Internal; ///< valid when !admitted
    std::uint64_t jobId = 0;               ///< valid when admitted
    std::uint64_t depth = 0;               ///< queue depth after the call
};

class JobQueue
{
  public:
    struct Options
    {
        /** Global queued-job capacity (all tenants together). */
        std::uint64_t capacity = 1024;
        /** Per-tenant queued-job quota. */
        std::uint64_t tenantQuota = 256;
    };

    JobQueue();
    explicit JobQueue(Options opts);

    /**
     * Admit @p job (its id is assigned here) or reject it with a typed
     * error. @p weight updates the tenant's fair-share weight
     * (clamped upstream to [1,100]; last writer wins).
     */
    AdmitResult admit(JobDesc job, std::uint64_t weight = 1);

    /**
     * Pop the next job per the fairness policy. Blocks until a job is
     * available, @p deadline passes (returns nullopt), or close() is
     * called (returns nullopt immediately once empty... see close()).
     */
    std::optional<JobDesc>
    pop(std::chrono::steady_clock::time_point deadline);

    /** Non-blocking pop. */
    std::optional<JobDesc> tryPop();

    /**
     * Remove a queued job by id. @return its descriptor when it was
     * still queued (so the caller can emit a cancellation event).
     */
    std::optional<JobDesc> cancel(std::uint64_t job_id);

    /**
     * Remove every queued job of @p conn (connection went away);
     * returns the removed descriptors.
     */
    std::vector<JobDesc> cancelConnection(std::uint64_t conn);

    /** Drop everything queued; returns the descriptors. */
    std::vector<JobDesc> drainAll();

    /**
     * Refuse all further admissions (ShuttingDown) and wake blocked
     * pop() calls. Queued jobs remain poppable.
     */
    void close();
    bool closed() const;

    std::uint64_t depth() const;
    std::uint64_t tenantDepth(const std::string &tenant) const;

    /**
     * Number of tenants with queued work. A tenant's map entry is
     * erased as soon as its FIFO empties, so a long-lived daemon's
     * memory is bounded by queued jobs, not by the number of distinct
     * (client-chosen) tenant names ever seen.
     */
    std::size_t tenantCount() const;

    /** Lifetime counters: admitted / rejected_full / rejected_quota. */
    struct Counters
    {
        std::uint64_t admitted = 0;
        std::uint64_t rejectedFull = 0;
        std::uint64_t rejectedQuota = 0;
        std::uint64_t popped = 0;
        std::uint64_t cancelled = 0;
    };
    Counters counters() const;

  private:
    struct Tenant
    {
        std::uint64_t weight = 1;
        std::int64_t credit = 0; ///< smooth-WRR running credit
        std::deque<JobDesc> fifo;
    };

    /** Pick the next tenant per smooth WRR; caller holds mu_ and
     *  guarantees depth_ != 0. */
    JobDesc popLocked();

    const Options opts_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::map<std::string, Tenant> tenants_;
    std::uint64_t depth_ = 0;
    std::uint64_t nextId_ = 1;
    bool closed_ = false;
    Counters counters_;
};

} // namespace rr::svc

#endif // RR_SVC_JOB_QUEUE_HH
