#include "svc/client.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace rr::svc
{

Client::~Client()
{
    close();
}

Client::Client(Client &&other) noexcept
    : fd_(other.fd_), inbuf_(std::move(other.inbuf_))
{
    other.fd_ = -1;
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        inbuf_ = std::move(other.inbuf_);
        other.fd_ = -1;
    }
    return *this;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

std::optional<Client>
Client::connectUnix(const std::string &path, std::string &error)
{
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    if (path.size() >= sizeof(sun.sun_path)) {
        error = "socket path too long: " + path;
        return std::nullopt;
    }
    std::strncpy(sun.sun_path, path.c_str(),
                 sizeof(sun.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return std::nullopt;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&sun),
                  sizeof(sun)) != 0) {
        error = "connect " + path + ": " + std::strerror(errno);
        ::close(fd);
        return std::nullopt;
    }
    return Client(fd);
}

std::optional<Client>
Client::connectTcp(const std::string &host, int port,
                   std::string &error)
{
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) {
        error = "not an IPv4 address: " + host;
        return std::nullopt;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return std::nullopt;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&sin),
                  sizeof(sin)) != 0) {
        error = "connect " + host + ":" + std::to_string(port) + ": " +
                std::strerror(errno);
        ::close(fd);
        return std::nullopt;
    }
    return Client(fd);
}

bool
Client::sendLine(const std::string &line, std::string &error)
{
    std::string out = line;
    out += '\n';
    std::size_t off = 0;
    while (off < out.size()) {
        const ssize_t n =
            ::write(fd_, out.data() + off, out.size() - off);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        error = std::string("write: ") + std::strerror(errno);
        return false;
    }
    return true;
}

std::optional<std::string>
Client::readLine(std::string &error, double timeout_sec)
{
    error.clear();
    for (;;) {
        const std::size_t nl = inbuf_.find('\n');
        if (nl != std::string::npos) {
            std::string line = inbuf_.substr(0, nl);
            inbuf_.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return line;
        }
        if (fd_ < 0)
            return std::nullopt; // EOF already seen
        if (timeout_sec > 0.0) {
            pollfd pfd{fd_, POLLIN, 0};
            const int rc =
                ::poll(&pfd, 1,
                       static_cast<int>(timeout_sec * 1000.0));
            if (rc == 0)
                return std::nullopt; // timeout, error stays empty
            if (rc < 0) {
                if (errno == EINTR)
                    continue;
                error = std::string("poll: ") + std::strerror(errno);
                return std::nullopt;
            }
        }
        char buf[4096];
        const ssize_t n = ::read(fd_, buf, sizeof(buf));
        if (n > 0) {
            inbuf_.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            close();
            if (!inbuf_.empty()) { // final unterminated line
                std::string line;
                line.swap(inbuf_);
                return line;
            }
            return std::nullopt;
        }
        if (errno == EINTR)
            continue;
        error = std::string("read: ") + std::strerror(errno);
        return std::nullopt;
    }
}

bool
eventIsTerminal(const Json &event)
{
    const std::string &kind = event.get("event").asString();
    return kind == "completed" || kind == "failed" ||
           kind == "cancelled" || kind == "rejected";
}

std::uint64_t
eventJobId(const Json &event)
{
    return static_cast<std::uint64_t>(event.get("job").asInt(0));
}

std::optional<std::string>
Client::awaitTerminal(std::uint64_t job,
                      std::vector<std::string> &transcript,
                      std::string &error, double timeout_sec)
{
    for (;;) {
        std::optional<std::string> line = readLine(error, timeout_sec);
        if (!line)
            return std::nullopt;
        transcript.push_back(*line);
        std::string perr;
        std::optional<Json> ev = parseJson(*line, perr);
        if (!ev)
            continue; // not ours to judge; keep reading
        if (eventIsTerminal(*ev) &&
            (job == 0 || eventJobId(*ev) == job))
            return line;
    }
}

} // namespace rr::svc
