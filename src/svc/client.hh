/**
 * @file
 * Blocking NDJSON client for the replay service — the transport under
 * `rrsim submit` and the daemon tests. One instance = one connection;
 * sendLine()/readLine() speak the newline-delimited protocol of
 * src/svc/protocol.hh, and the higher-level helpers cover the common
 * request/response shapes (ping, submit-and-wait).
 */

#ifndef RR_SVC_CLIENT_HH
#define RR_SVC_CLIENT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "svc/protocol.hh"

namespace rr::svc
{

class Client
{
  public:
    Client() = default;
    ~Client();
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to a Unix-domain service socket. */
    static std::optional<Client>
    connectUnix(const std::string &path, std::string &error);

    /** Connect to a TCP service endpoint (host must be an IP). */
    static std::optional<Client>
    connectTcp(const std::string &host, int port, std::string &error);

    bool connected() const { return fd_ >= 0; }

    /** Send one request line (newline appended here). */
    bool sendLine(const std::string &line, std::string &error);

    /**
     * Read the next event line (without the newline). Blocks up to
     * @p timeout_sec (0 = forever). nullopt = timeout, EOF, or error
     * (@p error distinguishes: empty on timeout/EOF).
     */
    std::optional<std::string> readLine(std::string &error,
                                        double timeout_sec = 0.0);

    /**
     * Read events until one with "job" == @p job is terminal
     * (completed / failed / cancelled / rejected), collecting every
     * line seen into @p transcript. @return the terminal event line,
     * or nullopt on timeout/disconnect.
     */
    std::optional<std::string>
    awaitTerminal(std::uint64_t job,
                  std::vector<std::string> &transcript,
                  std::string &error, double timeout_sec = 0.0);

    void close();

  private:
    explicit Client(int fd) : fd_(fd) {}

    int fd_ = -1;
    std::string inbuf_;
};

/** Event-line classification helpers (shared by client & tests). */
bool eventIsTerminal(const Json &event);
std::uint64_t eventJobId(const Json &event);

} // namespace rr::svc

#endif // RR_SVC_CLIENT_HH
