#include "svc/job_queue.hh"

#include <vector>

namespace rr::svc
{

JobQueue::JobQueue() : JobQueue(Options()) {}

JobQueue::JobQueue(Options opts) : opts_(opts) {}

AdmitResult
JobQueue::admit(JobDesc job, std::uint64_t weight)
{
    AdmitResult res;
    {
        std::lock_guard lock(mu_);
        res.depth = depth_;
        if (closed_) {
            res.error = ErrorCode::ShuttingDown;
            return res;
        }
        if (depth_ >= opts_.capacity) {
            ++counters_.rejectedFull;
            res.error = ErrorCode::QueueFull;
            return res;
        }
        Tenant &t = tenants_[job.tenant];
        t.weight = weight;
        if (t.fifo.size() >= opts_.tenantQuota) {
            ++counters_.rejectedQuota;
            res.error = ErrorCode::QuotaExceeded;
            return res;
        }
        job.id = nextId_++;
        job.enqueued = std::chrono::steady_clock::now();
        res.admitted = true;
        res.jobId = job.id;
        t.fifo.push_back(std::move(job));
        ++depth_;
        ++counters_.admitted;
        res.depth = depth_;
    }
    cv_.notify_one();
    return res;
}

JobDesc
JobQueue::popLocked()
{
    // Smooth weighted round-robin over tenants with queued work.
    std::int64_t total = 0;
    Tenant *best = nullptr;
    for (auto &[name, t] : tenants_) {
        if (t.fifo.empty())
            continue;
        t.credit += static_cast<std::int64_t>(t.weight);
        total += static_cast<std::int64_t>(t.weight);
        if (!best || t.credit > best->credit)
            best = &t;
    }
    best->credit -= total;
    JobDesc job = std::move(best->fifo.front());
    best->fifo.pop_front();
    --depth_;
    ++counters_.popped;
    return job;
}

std::optional<JobDesc>
JobQueue::pop(std::chrono::steady_clock::time_point deadline)
{
    std::unique_lock lock(mu_);
    if (!cv_.wait_until(lock, deadline,
                        [this] { return depth_ != 0 || closed_; }))
        return std::nullopt;
    if (depth_ == 0)
        return std::nullopt; // closed and empty
    return popLocked();
}

std::optional<JobDesc>
JobQueue::tryPop()
{
    std::lock_guard lock(mu_);
    if (depth_ == 0)
        return std::nullopt;
    return popLocked();
}

std::optional<JobDesc>
JobQueue::cancel(std::uint64_t job_id)
{
    std::lock_guard lock(mu_);
    for (auto &[name, t] : tenants_) {
        for (auto it = t.fifo.begin(); it != t.fifo.end(); ++it) {
            if (it->id != job_id)
                continue;
            JobDesc job = std::move(*it);
            t.fifo.erase(it);
            --depth_;
            ++counters_.cancelled;
            return job;
        }
    }
    return std::nullopt;
}

std::vector<JobDesc>
JobQueue::cancelConnection(std::uint64_t conn)
{
    std::vector<JobDesc> out;
    std::lock_guard lock(mu_);
    for (auto &[name, t] : tenants_) {
        for (auto it = t.fifo.begin(); it != t.fifo.end();) {
            if (it->conn == conn) {
                out.push_back(std::move(*it));
                it = t.fifo.erase(it);
                --depth_;
                ++counters_.cancelled;
            } else {
                ++it;
            }
        }
    }
    return out;
}

std::vector<JobDesc>
JobQueue::drainAll()
{
    std::vector<JobDesc> out;
    std::lock_guard lock(mu_);
    for (auto &[name, t] : tenants_) {
        for (auto &job : t.fifo)
            out.push_back(std::move(job));
        t.fifo.clear();
    }
    counters_.cancelled += out.size();
    depth_ = 0;
    return out;
}

void
JobQueue::close()
{
    {
        std::lock_guard lock(mu_);
        closed_ = true;
    }
    cv_.notify_all();
}

bool
JobQueue::closed() const
{
    std::lock_guard lock(mu_);
    return closed_;
}

std::uint64_t
JobQueue::depth() const
{
    std::lock_guard lock(mu_);
    return depth_;
}

std::uint64_t
JobQueue::tenantDepth(const std::string &tenant) const
{
    std::lock_guard lock(mu_);
    auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.fifo.size();
}

JobQueue::Counters
JobQueue::counters() const
{
    std::lock_guard lock(mu_);
    return counters_;
}

} // namespace rr::svc
