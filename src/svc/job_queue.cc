#include "svc/job_queue.hh"

#include <iterator>
#include <vector>

namespace rr::svc
{

JobQueue::JobQueue() : JobQueue(Options()) {}

JobQueue::JobQueue(Options opts) : opts_(opts) {}

AdmitResult
JobQueue::admit(JobDesc job, std::uint64_t weight)
{
    AdmitResult res;
    {
        std::lock_guard lock(mu_);
        res.depth = depth_;
        if (closed_) {
            res.error = ErrorCode::ShuttingDown;
            return res;
        }
        if (depth_ >= opts_.capacity) {
            ++counters_.rejectedFull;
            res.error = ErrorCode::QueueFull;
            return res;
        }
        // Don't create a map entry until the job is actually taken —
        // tenant names are client-chosen, and entries for tenants
        // with no queued work must not accumulate.
        auto it = tenants_.find(job.tenant);
        const std::size_t tenant_depth =
            it == tenants_.end() ? 0 : it->second.fifo.size();
        if (tenant_depth >= opts_.tenantQuota) {
            ++counters_.rejectedQuota;
            res.error = ErrorCode::QuotaExceeded;
            return res;
        }
        Tenant &t =
            it == tenants_.end() ? tenants_[job.tenant] : it->second;
        t.weight = weight;
        job.id = nextId_++;
        job.enqueued = std::chrono::steady_clock::now();
        res.admitted = true;
        res.jobId = job.id;
        t.fifo.push_back(std::move(job));
        ++depth_;
        ++counters_.admitted;
        res.depth = depth_;
    }
    cv_.notify_one();
    return res;
}

JobDesc
JobQueue::popLocked()
{
    // Smooth weighted round-robin over tenants with queued work.
    std::int64_t total = 0;
    auto best = tenants_.end();
    for (auto it = tenants_.begin(); it != tenants_.end(); ++it) {
        Tenant &t = it->second;
        if (t.fifo.empty())
            continue;
        t.credit += static_cast<std::int64_t>(t.weight);
        total += static_cast<std::int64_t>(t.weight);
        if (best == tenants_.end() || t.credit > best->second.credit)
            best = it;
    }
    best->second.credit -= total;
    JobDesc job = std::move(best->second.fifo.front());
    best->second.fifo.pop_front();
    --depth_;
    ++counters_.popped;
    if (best->second.fifo.empty())
        tenants_.erase(best); // keep the map bounded by queued work
    return job;
}

std::optional<JobDesc>
JobQueue::pop(std::chrono::steady_clock::time_point deadline)
{
    std::unique_lock lock(mu_);
    if (!cv_.wait_until(lock, deadline,
                        [this] { return depth_ != 0 || closed_; }))
        return std::nullopt;
    if (depth_ == 0)
        return std::nullopt; // closed and empty
    return popLocked();
}

std::optional<JobDesc>
JobQueue::tryPop()
{
    std::lock_guard lock(mu_);
    if (depth_ == 0)
        return std::nullopt;
    return popLocked();
}

std::optional<JobDesc>
JobQueue::cancel(std::uint64_t job_id)
{
    std::lock_guard lock(mu_);
    for (auto tit = tenants_.begin(); tit != tenants_.end(); ++tit) {
        Tenant &t = tit->second;
        for (auto it = t.fifo.begin(); it != t.fifo.end(); ++it) {
            if (it->id != job_id)
                continue;
            JobDesc job = std::move(*it);
            t.fifo.erase(it);
            --depth_;
            ++counters_.cancelled;
            if (t.fifo.empty())
                tenants_.erase(tit);
            return job;
        }
    }
    return std::nullopt;
}

std::vector<JobDesc>
JobQueue::cancelConnection(std::uint64_t conn)
{
    std::vector<JobDesc> out;
    std::lock_guard lock(mu_);
    for (auto tit = tenants_.begin(); tit != tenants_.end();) {
        Tenant &t = tit->second;
        for (auto it = t.fifo.begin(); it != t.fifo.end();) {
            if (it->conn == conn) {
                out.push_back(std::move(*it));
                it = t.fifo.erase(it);
                --depth_;
                ++counters_.cancelled;
            } else {
                ++it;
            }
        }
        tit = t.fifo.empty() ? tenants_.erase(tit) : std::next(tit);
    }
    return out;
}

std::vector<JobDesc>
JobQueue::drainAll()
{
    std::vector<JobDesc> out;
    std::lock_guard lock(mu_);
    for (auto &[name, t] : tenants_)
        for (auto &job : t.fifo)
            out.push_back(std::move(job));
    tenants_.clear();
    counters_.cancelled += out.size();
    depth_ = 0;
    return out;
}

void
JobQueue::close()
{
    {
        std::lock_guard lock(mu_);
        closed_ = true;
    }
    cv_.notify_all();
}

bool
JobQueue::closed() const
{
    std::lock_guard lock(mu_);
    return closed_;
}

std::uint64_t
JobQueue::depth() const
{
    std::lock_guard lock(mu_);
    return depth_;
}

std::uint64_t
JobQueue::tenantDepth(const std::string &tenant) const
{
    std::lock_guard lock(mu_);
    auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.fifo.size();
}

std::size_t
JobQueue::tenantCount() const
{
    std::lock_guard lock(mu_);
    return tenants_.size();
}

JobQueue::Counters
JobQueue::counters() const
{
    std::lock_guard lock(mu_);
    return counters_;
}

} // namespace rr::svc
