/**
 * @file
 * Job scheduler of the replay service: pops admitted jobs off the
 * JobQueue per its fairness policy and executes them on a
 * sim::TaskPool in service mode (persistent executor threads).
 * Dispatch is gated on a free executor slot — at most `executors` jobs
 * are in flight, and everything else waits *in the JobQueue*, where
 * per-tenant quotas and weighted fairness apply, rather than draining
 * into the pool's unbounded FIFO the moment it is admitted.
 *
 * Lifecycle events (running / progress / completed / failed /
 * cancelled) are pushed through a caller-supplied emit callback, keyed
 * by the originating connection id — the server turns them into wire
 * lines; tests capture them directly.
 *
 * Cancellation is layered: a *queued* job is simply removed from the
 * queue (JobQueue::cancel); a *running* job's CancelToken is fired and
 * the job runner aborts cooperatively at its next poll point (replay
 * load hooks / interval-close sinks — see job_runner.hh). Per-job
 * timeouts reuse the same token, fired by the dispatch thread's
 * periodic deadline scan. stop(drain=true) finishes everything queued
 * (graceful SIGTERM); stop(drain=false) cancels queued jobs and fires
 * every running token (fast SIGINT abort).
 */

#ifndef RR_SVC_SCHEDULER_HH
#define RR_SVC_SCHEDULER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "sim/task_pool.hh"
#include "svc/job_queue.hh"
#include "svc/job_runner.hh"

namespace rr::svc
{

class Scheduler
{
  public:
    struct Options
    {
        /** Executor threads (concurrently running jobs). 0 = all
         *  hardware threads. */
        std::uint32_t executors = 2;
        /** Applied to jobs that did not set one; 0 = unlimited. */
        double defaultTimeoutSec = 0.0;
    };

    /**
     * Deliver @p event (a complete JSON object line, no newline) to
     * connection @p conn. Called from the dispatch thread and from
     * executor threads concurrently — must be thread-safe.
     */
    using EventFn =
        std::function<void(std::uint64_t conn, std::string event)>;

    Scheduler(JobQueue &queue, Options opts, EventFn emit);
    ~Scheduler();

    /** Spawn the dispatch thread and the executor pool. */
    void start();

    /**
     * Stop dispatching. @p drain: run everything still queued first;
     * otherwise queued jobs are cancelled (events emitted) and running
     * jobs' tokens fired. Joins everything; idempotent.
     */
    void stop(bool drain);

    /**
     * Cancel a job: queued -> removed + cancelled event; running ->
     * token fired (the runner emits the cancelled event when it
     * unwinds). @return false when the id is neither queued nor
     * running (already finished or never existed).
     */
    bool cancel(std::uint64_t job_id);

    /**
     * Non-blocking abort: close admissions, cancel everything queued
     * (cancelled events emitted now) and fire every running job's
     * token with @p reason. The running jobs unwind asynchronously;
     * stop() or snapshot() polling tells the caller when they have.
     */
    void cancelAll(const char *reason = "shutdown");

    /** Cancel every queued/running job owned by @p conn. */
    void cancelConnection(std::uint64_t conn);

    struct Snapshot
    {
        std::uint64_t running = 0;
        std::uint64_t completed = 0;
        std::uint64_t failed = 0;
        std::uint64_t cancelled = 0;
    };
    Snapshot snapshot() const;

    /** True once stop() has begun (admissions should be refused). */
    bool stopping() const;

  private:
    struct Running
    {
        JobDesc desc;
        std::shared_ptr<CancelToken> token;
        /** steady_clock deadline; time_point::max() = none. */
        std::chrono::steady_clock::time_point deadline;
        const char *cancelReason = "cancel";
    };

    void dispatchLoop();
    /** Runs on an executor thread. */
    void execute(std::uint64_t job_id);
    void fireExpiredLocked(std::chrono::steady_clock::time_point now);

    JobQueue &queue_;
    const Options opts_;
    const EventFn emit_;

    sim::TaskPool pool_;
    std::thread dispatcher_;
    bool started_ = false;

    mutable std::mutex mu_;
    /** Signalled when an executor slot frees up (a job finished). */
    std::condition_variable slotFree_;
    std::map<std::uint64_t, Running> running_;
    bool stopping_ = false;
    Snapshot done_; ///< running field unused; counters only
};

} // namespace rr::svc

#endif // RR_SVC_SCHEDULER_HH
