#include "svc/scheduler.hh"

#include <utility>

#include "svc/protocol.hh"

namespace rr::svc
{

using Clock = std::chrono::steady_clock;

Scheduler::Scheduler(JobQueue &queue, Options opts, EventFn emit)
    : queue_(queue), opts_(opts), emit_(std::move(emit)),
      pool_(opts.executors)
{
}

Scheduler::~Scheduler()
{
    if (started_)
        stop(false);
}

void
Scheduler::start()
{
    pool_.start();
    dispatcher_ = std::thread([this] { dispatchLoop(); });
    started_ = true;
}

void
Scheduler::cancelAll(const char *reason)
{
    queue_.close();
    for (JobDesc &d : queue_.drainAll()) {
        emit_(d.conn, eventCancelled(d.id, d.tag, reason));
        std::lock_guard lk(mu_);
        ++done_.cancelled;
    }
    std::lock_guard lk(mu_);
    for (auto &[id, run] : running_) {
        if (!run.token->cancelled()) {
            run.cancelReason = reason;
            run.token->cancel();
        }
    }
}

void
Scheduler::stop(bool drain)
{
    if (!drain)
        cancelAll("shutdown");
    {
        std::lock_guard lk(mu_);
        stopping_ = true;
    }
    queue_.close();
    if (dispatcher_.joinable())
        dispatcher_.join();
    if (pool_.serving())
        pool_.stop(true); // fired tokens make cancelled jobs exit fast
    started_ = false;
}

bool
Scheduler::cancel(std::uint64_t job_id)
{
    if (std::optional<JobDesc> d = queue_.cancel(job_id)) {
        emit_(d->conn, eventCancelled(d->id, d->tag, "cancel"));
        std::lock_guard lk(mu_);
        ++done_.cancelled;
        return true;
    }
    std::lock_guard lk(mu_);
    auto it = running_.find(job_id);
    if (it == running_.end())
        return false;
    it->second.cancelReason = "cancel";
    it->second.token->cancel();
    return true;
}

void
Scheduler::cancelConnection(std::uint64_t conn)
{
    for (JobDesc &d : queue_.cancelConnection(conn)) {
        emit_(d.conn, eventCancelled(d.id, d.tag, "disconnect"));
        std::lock_guard lk(mu_);
        ++done_.cancelled;
    }
    std::lock_guard lk(mu_);
    for (auto &[id, run] : running_) {
        if (run.desc.conn == conn && !run.token->cancelled()) {
            run.cancelReason = "disconnect";
            run.token->cancel();
        }
    }
}

Scheduler::Snapshot
Scheduler::snapshot() const
{
    std::lock_guard lk(mu_);
    Snapshot s = done_;
    s.running = running_.size();
    return s;
}

bool
Scheduler::stopping() const
{
    std::lock_guard lk(mu_);
    return stopping_;
}

void
Scheduler::fireExpiredLocked(Clock::time_point now)
{
    for (auto &[id, run] : running_) {
        if (run.deadline <= now && !run.token->cancelled()) {
            run.cancelReason = "timeout";
            run.token->cancel();
        }
    }
}

void
Scheduler::dispatchLoop()
{
    for (;;) {
        const Clock::time_point tick =
            Clock::now() + std::chrono::milliseconds(100);
        {
            // Gate on a free executor slot before popping, so the
            // backlog stays in the JobQueue — where quotas and
            // weighted fairness apply — instead of draining into the
            // pool's unbounded FIFO the moment it is admitted.
            std::unique_lock lk(mu_);
            slotFree_.wait_until(lk, tick, [this] {
                return running_.size() < pool_.workers();
            });
            fireExpiredLocked(Clock::now());
            if (running_.size() >= pool_.workers())
                continue; // keep the 100ms deadline-scan cadence
        }
        std::optional<JobDesc> job = queue_.pop(tick);
        {
            std::lock_guard lk(mu_);
            fireExpiredLocked(Clock::now());
        }
        if (job) {
            const std::uint64_t id = job->id;
            const std::uint64_t conn = job->conn;
            const std::string tag = job->tag;
            double timeout = job->timeoutSec > 0.0
                                 ? job->timeoutSec
                                 : opts_.defaultTimeoutSec;
            Running run;
            run.desc = std::move(*job);
            run.token = std::make_shared<CancelToken>();
            run.deadline =
                timeout > 0.0
                    ? Clock::now() +
                          std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(timeout))
                    : Clock::time_point::max();
            {
                std::lock_guard lk(mu_);
                running_.emplace(id, std::move(run));
            }
            emit_(conn, eventRunning(id, tag));
            pool_.submit([this, id] { execute(id); });
            continue;
        }
        bool stop_now;
        {
            std::lock_guard lk(mu_);
            stop_now = stopping_ && queue_.depth() == 0 &&
                       running_.empty();
        }
        if (stop_now)
            break;
        // A closed empty queue makes pop() return immediately; keep
        // the 100ms timeout-scan cadence instead of spinning while the
        // last running jobs finish.
        if (queue_.closed() && queue_.depth() == 0)
            std::this_thread::sleep_until(tick);
    }
}

void
Scheduler::execute(std::uint64_t job_id)
{
    JobDesc desc;
    std::shared_ptr<CancelToken> token;
    {
        std::lock_guard lk(mu_);
        auto it = running_.find(job_id);
        if (it == running_.end())
            return;
        desc = it->second.desc;
        token = it->second.token;
    }

    auto finish = [&](const std::string &event, int bucket) {
        {
            std::lock_guard lk(mu_);
            running_.erase(job_id);
            if (bucket == 0)
                ++done_.completed;
            else if (bucket == 1)
                ++done_.failed;
            else
                ++done_.cancelled;
        }
        slotFree_.notify_one();
        emit_(desc.conn, event);
    };
    auto reason = [&]() -> const char * {
        std::lock_guard lk(mu_);
        auto it = running_.find(job_id);
        return it == running_.end() ? "cancel"
                                    : it->second.cancelReason;
    };

    if (token->cancelled()) {
        finish(eventCancelled(job_id, desc.tag, reason()), 2);
        return;
    }
    emit_(desc.conn, eventProgress(job_id, desc.tag, "execute"));
    const Clock::time_point t0 = Clock::now();
    try {
        JobOutcome out = runJob(desc.params, *token);
        const double wall =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (out.ok)
            finish(eventCompleted(job_id, desc.tag, out.resultJson,
                                  wall),
                   0);
        else
            finish(eventFailed(job_id, desc.tag, out.errorClassName(),
                               out.message),
                   1);
    } catch (const JobCancelled &) {
        finish(eventCancelled(job_id, desc.tag, reason()), 2);
    } catch (const std::exception &e) {
        // TaskPool tasks must not throw; fold anything unexpected
        // into a failure event.
        finish(eventFailed(job_id, desc.tag, "INTERNAL", e.what()), 1);
    }
}

} // namespace rr::svc
