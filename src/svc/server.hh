/**
 * @file
 * The `rrsim serve` daemon: a poll()-driven single-threaded front end
 * over the JobQueue + Scheduler pair.
 *
 * Concurrency model: the poll thread owns every socket exclusively —
 * it accepts, reads, parses, admits, and is the only writer, so event
 * lines are never interleaved. Scheduler threads (dispatch +
 * executors) never touch a socket; they hand finished events to a
 * mailbox and wake the poll thread through a self-pipe. The same
 * self-pipe carries shutdown requests, which makes requestStop()
 * async-signal-safe (a single write()) — the SIGTERM/SIGINT handlers
 * in rrsim call it directly.
 *
 * Shutdown: a drain stop (SIGTERM, or `shutdown {"drain":true}`)
 * closes admissions, keeps streaming results until the queue and the
 * executors are empty, flushes every connection, then exits; an abort
 * stop (SIGINT, `"drain":false`) additionally cancels all queued jobs
 * and fires every running job's token first. Either way the listening
 * socket is unlinked on the way out.
 */

#ifndef RR_SVC_SERVER_HH
#define RR_SVC_SERVER_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "svc/job_queue.hh"
#include "svc/scheduler.hh"

namespace rr::svc
{

class Server
{
  public:
    struct Options
    {
        /** Unix-domain listening socket path (always on). */
        std::string socketPath;
        /** Extra TCP listener on 127.0.0.1:tcpPort; 0 = none. */
        int tcpPort = 0;
        JobQueue::Options queue;
        Scheduler::Options sched;
        /** A request line longer than this closes the connection. */
        std::uint64_t maxLineBytes = 1 << 20;
        /**
         * Per-connection pending-event cap: a client that stops
         * reading is disconnected once this much output is buffered
         * (its jobs keep running; further events are dropped).
         */
        std::uint64_t maxOutbufBytes = 8 << 20;
        /**
         * During shutdown, how long to keep flushing connections
         * after all jobs have finished before force-closing the
         * stragglers. Bounds drain against clients that stopped
         * reading.
         */
        std::uint64_t flushTimeoutMs = 5000;
    };

    explicit Server(Options opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, serve. Blocks until a shutdown request (wire or
     * requestStop()) has fully drained/aborted. Throws
     * std::runtime_error on socket setup failures.
     */
    void run();

    /**
     * Initiate shutdown from any thread or from a signal handler
     * (async-signal-safe: one write() on the self-pipe).
     */
    void requestStop(bool drain);

    /** The bound TCP port (valid after run() bound it; 0 otherwise). */
    int boundTcpPort() const { return boundTcpPort_; }

  private:
    struct Conn
    {
        int fd = -1;
        std::uint64_t id = 0;
        std::string inbuf;
        std::string outbuf;
        bool closing = false; ///< flush outbuf, then close
        bool eof = false;     ///< peer sent FIN; stop polling POLLIN
    };

    void setupListeners();
    void teardown();
    int acceptOn(int listen_fd);
    void handleReadable(Conn &conn);
    void handleLine(Conn &conn, const std::string &line);
    void flushWrites(Conn &conn);
    void deliver(std::uint64_t conn_id, const std::string &event);
    void drainMailbox();
    void beginShutdown(bool drain);
    std::string statusBody();

    const Options opts_;
    JobQueue queue_;
    Scheduler scheduler_;

    int unixFd_ = -1;
    int tcpFd_ = -1;
    int boundTcpPort_ = 0;
    int pipeRead_ = -1;
    int pipeWrite_ = -1;

    std::map<std::uint64_t, Conn> conns_; ///< poll thread only
    std::uint64_t nextConn_ = 1;

    std::mutex mailboxMu_;
    std::vector<std::pair<std::uint64_t, std::string>> mailbox_;

    bool draining_ = false;  ///< shutdown initiated
    bool drainMode_ = true;  ///< finish queued jobs?
    /** Set when shutdown is only waiting on unflushed connections;
     *  expiry force-closes them so drain cannot hang forever. */
    std::chrono::steady_clock::time_point flushDeadline_{};
};

} // namespace rr::svc

#endif // RR_SVC_SERVER_HH
