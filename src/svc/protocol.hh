/**
 * @file
 * Wire protocol of the replay service (`rrsim serve`): one JSON object
 * per newline-terminated line, in both directions. Clients send
 * requests; the server answers every request with at least one event
 * line and streams job lifecycle events (accepted -> running ->
 * progress* -> completed | failed) as they happen. The full grammar
 * lives in docs/SERVICE.md.
 *
 * The JSON support here is deliberately self-contained: a strict
 * recursive-descent parser over a small value model (null, bool,
 * int64/double, string, array, object) with depth and size limits,
 * hardened against arbitrary bytes (the protocol fuzz test feeds it
 * garbage) — the daemon must never crash on a malformed line.
 */

#ifndef RR_SVC_PROTOCOL_HH
#define RR_SVC_PROTOCOL_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rnr/logstore.hh"
#include "sim/config.hh"

namespace rr::svc
{

// --- JSON value model -------------------------------------------------

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,    ///< exactly representable signed 64-bit integer
        Double, ///< everything else numeric
        String,
        Array,
        Object,
    };

    Json() : kind_(Kind::Null) {}
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(std::int64_t v) : kind_(Kind::Int), int_(v) {}
    Json(std::uint64_t v)
        : kind_(Kind::Int), int_(static_cast<std::int64_t>(v))
    {
    }
    Json(double v) : kind_(Kind::Double), double_(v) {}
    Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Json(const char *s) : kind_(Kind::String), str_(s) {}
    Json(JsonArray a)
        : kind_(Kind::Array),
          arr_(std::make_shared<JsonArray>(std::move(a)))
    {
    }
    Json(JsonObject o)
        : kind_(Kind::Object),
          obj_(std::make_shared<JsonObject>(std::move(o)))
    {
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool(bool fallback = false) const
    {
        return kind_ == Kind::Bool ? bool_ : fallback;
    }
    std::int64_t asInt(std::int64_t fallback = 0) const
    {
        if (kind_ == Kind::Int)
            return int_;
        if (kind_ == Kind::Double)
            return static_cast<std::int64_t>(double_);
        return fallback;
    }
    double asDouble(double fallback = 0.0) const
    {
        if (kind_ == Kind::Double)
            return double_;
        if (kind_ == Kind::Int)
            return static_cast<double>(int_);
        return fallback;
    }
    const std::string &asString() const
    {
        static const std::string empty;
        return kind_ == Kind::String ? str_ : empty;
    }
    const JsonArray &asArray() const
    {
        static const JsonArray empty;
        return kind_ == Kind::Array && arr_ ? *arr_ : empty;
    }
    const JsonObject &asObject() const
    {
        static const JsonObject empty;
        return kind_ == Kind::Object && obj_ ? *obj_ : empty;
    }

    /** Object member lookup; Null for absent keys or non-objects. */
    const Json &get(const std::string &key) const;

    /** Serialize (compact, no trailing newline; keys in map order). */
    std::string dump() const;
    void dumpTo(std::string &out) const;

  private:
    Kind kind_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string str_;
    std::shared_ptr<JsonArray> arr_;
    std::shared_ptr<JsonObject> obj_;
};

/** Escape @p s into a double-quoted JSON string literal. */
std::string jsonQuote(const std::string &s);

/**
 * Parse one JSON document. Limits: @p max_depth nesting levels and
 * whatever text.size() the caller already capped (the server caps
 * request lines). Trailing non-whitespace bytes are an error.
 * @return the value, or std::nullopt with @p error set to a
 *         human-readable message including the byte offset.
 */
std::optional<Json> parseJson(const std::string &text,
                              std::string &error,
                              std::size_t max_depth = 32);

// --- Requests ---------------------------------------------------------

/** Typed admission / protocol failures, sent as `"error"` codes. */
enum class ErrorCode
{
    BadRequest,    ///< unparseable or semantically invalid line
    QueueFull,     ///< global queue capacity reached
    QuotaExceeded, ///< the tenant's queued-job quota is reached
    ShuttingDown,  ///< server is draining; no new jobs
    NotFound,      ///< cancel target unknown
    Internal,      ///< unexpected server-side failure
};
const char *toString(ErrorCode code);

enum class JobKind
{
    Record,
    Replay,
    Verify,
    Stats,
};
const char *toString(JobKind kind);

/** Parameters of one record/replay/verify/stats job. */
struct JobParams
{
    JobKind kind = JobKind::Record;
    // record (and kernel-based replay): the workload.
    std::string kernel;
    std::uint32_t cores = 8;
    std::uint64_t scale = 1;
    sim::RecorderMode mode = sim::RecorderMode::Opt;
    std::uint64_t intervalCap = 0; ///< 0 = INF
    bool deps = false;
    sim::CoherenceKind coherence = sim::CoherenceKind::Snoopy;
    /** True when the request named a coherence explicitly (replay:
     *  checked against the file's tag instead of silently ignored). */
    bool coherenceSet = false;
    std::string outFile; ///< record: stream to this .rrlog
    // replay/verify/stats: the input container.
    std::string file;
    std::uint32_t jobs = 1; ///< replay worker threads; 0 = all cores
    rnr::IngestMode ingest = rnr::IngestMode::Auto;
    bool allowPartial = false;
};

/** One decoded client request line. */
struct Request
{
    enum class Op
    {
        Submit,   ///< enqueue a job (params say which kind)
        Cancel,   ///< cancel a queued or running job by id
        Status,   ///< server/queue/scheduler snapshot
        Ping,     ///< liveness probe
        Shutdown, ///< stop the server (drain or abort)
    };

    Op op = Op::Ping;
    std::string tenant = "default";
    std::uint64_t weight = 1; ///< fair-share weight, clamped to [1,100]
    /** Client-chosen correlation tag, echoed on every event. */
    std::string tag;
    double timeoutSec = 0.0; ///< per-job timeout; 0 = server default
    JobParams params;        ///< op == Submit
    std::uint64_t cancelJob = 0;
    bool drain = true; ///< op == Shutdown: finish queued jobs first
};

/**
 * Decode one request line. On failure returns std::nullopt and fills
 * @p error with a BadRequest detail message.
 */
std::optional<Request> parseRequest(const std::string &line,
                                    std::string &error);

// --- Events -----------------------------------------------------------

/**
 * Builders for the server->client event lines. Every returned string
 * is a complete JSON object WITHOUT the trailing newline (the
 * connection layer appends it). `tag` is echoed verbatim when
 * non-empty.
 */
std::string eventAccepted(std::uint64_t job, const std::string &tag,
                          std::uint64_t queue_depth);
std::string eventRejected(ErrorCode code, const std::string &detail,
                          const std::string &tag);
std::string eventRunning(std::uint64_t job, const std::string &tag);
std::string eventProgress(std::uint64_t job, const std::string &tag,
                          const std::string &stage);
/** @param result A pre-serialized JSON object (the job's result). */
std::string eventCompleted(std::uint64_t job, const std::string &tag,
                           const std::string &result,
                           double wall_seconds);
std::string eventFailed(std::uint64_t job, const std::string &tag,
                        const std::string &error_class,
                        const std::string &message);
/** @param reason "cancel" | "timeout" | "shutdown" | "disconnect". */
std::string eventCancelled(std::uint64_t job, const std::string &tag,
                           const std::string &reason);
std::string eventPong();
/** @param body A pre-serialized JSON object (status payload). */
std::string eventStatus(const std::string &body);
std::string eventShutdown(bool draining);

} // namespace rr::svc

#endif // RR_SVC_PROTOCOL_HH
