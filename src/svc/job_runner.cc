#include "svc/job_runner.hh"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "machine/machine.hh"
#include "rnr/divergence.hh"
#include "rnr/logstore.hh"
#include "rnr/parallel_replayer.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"
#include "workloads/kernels.hh"

namespace rr::svc
{

namespace
{

std::string
hex64(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

void
checkCancelled(const CancelToken &token)
{
    if (token.cancelled())
        throw JobCancelled();
}

bool
knownKernel(const std::string &name)
{
    const auto &names = workloads::kernelNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

/** The .rrlog metadata for a record job (mirrors rrsim's metaFor). */
rnr::RecordingMeta
metaFor(const JobParams &p)
{
    const workloads::WorkloadParams wp;
    const sim::MachineConfig cfg;
    rnr::RecordingMeta meta;
    meta.kernel = p.kernel;
    meta.cores = p.cores;
    meta.scale = p.scale;
    meta.intensity = wp.intensity;
    meta.workloadSeed = wp.seed;
    meta.machineSeed = cfg.seed;
    meta.mode = p.mode;
    meta.intervalCap = p.intervalCap;
    meta.deps = p.deps;
    meta.coherence = p.coherence;
    return meta;
}

rnr::RecordingSummary
summaryOf(const machine::RecordingResult &rec)
{
    rnr::RecordingSummary s;
    s.totalInstructions = rec.totalInstructions;
    s.cycles = rec.cycles;
    s.memoryFingerprint = rec.memoryFingerprint;
    for (std::size_t c = 0; c < rec.cores.size(); ++c) {
        rnr::CoreReplaySummary core;
        core.intervals = rec.logs[0][c].intervals.size();
        core.retiredInstructions = rec.cores[c].retiredInstructions;
        core.retiredLoads = rec.cores[c].retiredLoads;
        core.loadValueHash = rec.cores[c].loadValueHash;
        s.cores.push_back(core);
    }
    return s;
}

struct RecordRun
{
    workloads::Workload workload;
    std::unique_ptr<machine::Machine> machine;
    mem::BackingStore initial;
    machine::RecordingResult rec;
};

/**
 * Record @p p's kernel, streaming into @p writer when set. The
 * interval sink doubles as the record-side cancellation poll: every
 * closed interval checks the token.
 */
RecordRun
recordKernel(const JobParams &p, const CancelToken &token,
             rnr::LogWriter *writer)
{
    workloads::WorkloadParams wp;
    wp.numThreads = p.cores;
    wp.scale = p.scale;
    RecordRun run;
    run.workload = workloads::buildKernel(p.kernel, wp);

    sim::MachineConfig cfg;
    cfg.numCores = p.cores;
    cfg.coherence = p.coherence;
    std::vector<sim::RecorderConfig> policies(1);
    policies[0].mode = p.mode;
    policies[0].maxIntervalInstructions = p.intervalCap;
    policies[0].recordDependencies = p.deps;

    run.machine = std::make_unique<machine::Machine>(
        cfg, run.workload.program, policies);
    run.machine->setIntervalSink(
        0,
        [writer, &token](sim::CoreId core,
                         const rnr::IntervalRecord &iv) {
            checkCancelled(token);
            if (writer)
                writer->append(core, iv);
        });
    run.initial = run.machine->initialMemory();
    run.rec = run.machine->run();
    checkCancelled(token);
    return run;
}

JobOutcome
runRecord(const JobParams &p, const CancelToken &token)
{
    JobOutcome out;
    std::unique_ptr<rnr::LogWriter> writer;
    if (!p.outFile.empty())
        writer =
            std::make_unique<rnr::LogWriter>(p.outFile, metaFor(p));
    RecordRun run = recordKernel(p, token, writer.get());
    if (writer)
        writer->finish(summaryOf(run.rec));

    rnr::LogStats stats;
    for (const auto &log : run.rec.logs[0])
        stats.accumulate(log);

    std::string &r = out.resultJson;
    r = "{\"kind\":\"record\",\"kernel\":" + jsonQuote(p.kernel) +
        ",\"cores\":" + std::to_string(p.cores) +
        ",\"scale\":" + std::to_string(p.scale) +
        ",\"instructions\":" + std::to_string(run.rec.totalInstructions) +
        ",\"cycles\":" + std::to_string(run.rec.cycles) +
        ",\"intervals\":" + std::to_string(stats.intervals) +
        ",\"logBits\":" + std::to_string(stats.totalBits) +
        ",\"memoryFingerprint\":\"" + hex64(run.rec.memoryFingerprint) +
        "\",\"coherence\":\"" + sim::toString(p.coherence) + "\"";
    if (writer)
        r += ",\"out\":" + jsonQuote(p.outFile) +
             ",\"bytesWritten\":" +
             std::to_string(writer->bytesWritten());
    r += "}";
    out.ok = true;
    return out;
}

/** Append the per-core replay verification block to @p r. */
void
appendCoreChecks(std::string &r, std::uint32_t cores,
                 const std::vector<std::uint64_t> &hashes,
                 const std::vector<std::uint64_t> &load_counts,
                 const rnr::ReplayResult &res)
{
    r += ",\"perCore\":[";
    for (std::uint32_t c = 0; c < cores; ++c) {
        if (c)
            r += ",";
        r += "{\"loadHash\":\"" + hex64(hashes[c]) +
             "\",\"loads\":" + std::to_string(load_counts[c]) +
             ",\"instructions\":" +
             std::to_string(res.contexts[c].instructions) + "}";
    }
    r += "]";
}

JobOutcome
runReplayFile(const JobParams &p, const CancelToken &token)
{
    JobOutcome out;
    rnr::LogReader reader(p.file, p.ingest);
    const rnr::RecordingMeta &meta = reader.meta();

    // The file's protocol tag decides the replay machine; an explicit
    // request for the other backend is a wrong-machine ask, refused.
    if (p.coherenceSet && p.coherence != meta.coherence) {
        out.errorClass = 1;
        out.message = p.file + " was recorded under " +
                      sim::toString(meta.coherence) +
                      " coherence; refusing to replay it on a " +
                      sim::toString(p.coherence) + " machine";
        out.resultJson =
            "{\"kind\":\"replay\",\"file\":" + jsonQuote(p.file) +
            ",\"determinism\":\"coherence-mismatch\"}";
        return out;
    }

    bool verify_full = true;
    rnr::RecordingSummary summary;
    std::vector<rnr::CoreLog> logs;
    if (p.allowPartial) {
        rnr::RecoveryResult rec = reader.recoverPrefix();
        const bool sound = rec.cleanEnd && rec.hasSummary &&
                           rec.issues.empty() && !reader.partial();
        logs = std::move(rec.logs);
        if (sound) {
            summary = rec.summary;
        } else {
            verify_full = false;
            rnr::consistentCut(logs, rec.coreTruncated);
        }
    } else {
        if (reader.partial()) {
            out.errorClass = 1;
            out.message = p.file +
                          " is flagged as a partial recording; replay "
                          "it with allowPartial";
            out.resultJson =
                "{\"kind\":\"replay\",\"file\":" + jsonQuote(p.file) +
                ",\"determinism\":\"partial-refused\"}";
            return out;
        }
        summary = reader.summary();
        logs = reader.readAllParallel(p.jobs);
    }
    checkCancelled(token);

    workloads::WorkloadParams wp;
    wp.numThreads = meta.cores;
    wp.scale = meta.scale;
    wp.intensity = meta.intensity;
    wp.seed = meta.workloadSeed;
    const auto w = workloads::buildKernel(meta.kernel, wp);

    sim::MachineConfig cfg;
    cfg.numCores = meta.cores;
    cfg.seed = meta.machineSeed;
    cfg.coherence = meta.coherence;
    std::vector<sim::RecorderConfig> policies(1);
    policies[0].mode = meta.mode;
    machine::Machine m(cfg, w.program, policies);

    std::vector<rnr::CoreLog> patched;
    for (auto &log : logs)
        patched.push_back(rnr::patch(log));

    std::vector<std::uint64_t> hashes(meta.cores, 0);
    std::vector<std::uint64_t> load_counts(meta.cores, 0);

    rnr::ReplayResult res;
    const bool engine = meta.deps;
    if (engine) {
        rnr::ParallelReplayOptions popts;
        popts.workers = p.jobs;
        popts.abortCheck = [&token] { return token.cancelled(); };
        rnr::ParallelReplayer rep(w.program, std::move(patched),
                                  m.initialMemory().clone(), popts);
        rep.setLoadHook([&](sim::CoreId c, std::uint64_t v) {
            hashes[c] = machine::mixLoadValue(hashes[c], v);
            ++load_counts[c];
        });
        res = rep.run();
    } else {
        rnr::Replayer rep(w.program, std::move(patched),
                          m.initialMemory().clone());
        // The sequential engine is single-threaded: the load hook may
        // poll the token and throw directly.
        std::uint64_t polls = 0;
        rep.setLoadHook([&](sim::CoreId c, std::uint64_t v) {
            hashes[c] = machine::mixLoadValue(hashes[c], v);
            ++load_counts[c];
            if ((++polls & 0xFFF) == 0)
                checkCancelled(token);
        });
        res = rep.run();
    }
    checkCancelled(token);

    std::string &r = out.resultJson;
    r = "{\"kind\":\"replay\",\"file\":" + jsonQuote(p.file) +
        ",\"kernel\":" + jsonQuote(meta.kernel) +
        ",\"cores\":" + std::to_string(meta.cores) +
        ",\"engine\":\"" + (engine ? "parallel" : "sequential") +
        "\",\"instructions\":" + std::to_string(res.instructions) +
        ",\"memoryFingerprint\":\"" + hex64(res.memory.fingerprint()) +
        "\"";

    if (!verify_full) {
        r += ",\"determinism\":\"partial-ok\"}";
        out.ok = true;
        return out;
    }

    bool ok = res.memory.fingerprint() == summary.memoryFingerprint &&
              res.instructions == summary.totalInstructions;
    for (sim::CoreId c = 0; c < meta.cores; ++c) {
        const auto &cs = summary.cores[c];
        if (hashes[c] != cs.loadValueHash ||
            load_counts[c] != cs.retiredLoads ||
            res.contexts[c].instructions != cs.retiredInstructions)
            ok = false;
    }
    appendCoreChecks(r, meta.cores, hashes, load_counts, res);
    r += ",\"determinism\":\"";
    r += ok ? "ok" : "mismatch";
    r += "\"}";
    out.ok = ok;
    if (!ok) {
        out.errorClass = 1;
        out.message = "replayed state does not match the recording";
    }
    return out;
}

/** Kernel-based replay: record in memory, replay, verify — the
 *  `rrsim replay <kernel>` shape. */
JobOutcome
runReplayKernel(const JobParams &p, const CancelToken &token)
{
    JobOutcome out;
    RecordRun run = recordKernel(p, token, nullptr);

    std::vector<rnr::CoreLog> patched;
    for (const auto &log : run.rec.logs[0])
        patched.push_back(rnr::patch(log));

    std::vector<std::uint64_t> hashes(p.cores, 0);
    std::vector<std::uint64_t> load_counts(p.cores, 0);
    std::uint64_t polls = 0;
    rnr::Replayer rep(run.workload.program, std::move(patched),
                      run.initial.clone());
    rep.setLoadHook([&](sim::CoreId c, std::uint64_t v) {
        hashes[c] = machine::mixLoadValue(hashes[c], v);
        ++load_counts[c];
        if ((++polls & 0xFFF) == 0)
            checkCancelled(token);
    });
    const rnr::ReplayResult res = rep.run();
    checkCancelled(token);

    bool ok = res.memory.fingerprint() == run.rec.memoryFingerprint &&
              res.instructions == run.rec.totalInstructions;
    for (sim::CoreId c = 0; c < p.cores && ok; ++c)
        ok = hashes[c] == run.rec.cores[c].loadValueHash;

    std::string &r = out.resultJson;
    r = "{\"kind\":\"replay\",\"kernel\":" + jsonQuote(p.kernel) +
        ",\"cores\":" + std::to_string(p.cores) +
        ",\"engine\":\"sequential\",\"instructions\":" +
        std::to_string(res.instructions) + ",\"memoryFingerprint\":\"" +
        hex64(res.memory.fingerprint()) + "\"";
    appendCoreChecks(r, p.cores, hashes, load_counts, res);
    r += ",\"determinism\":\"";
    r += ok ? "ok" : "mismatch";
    r += "\"}";
    out.ok = ok;
    if (!ok) {
        out.errorClass = 1;
        out.message = "replayed state does not match the recording";
    }
    return out;
}

JobOutcome
runVerify(const JobParams &p, const CancelToken &token)
{
    JobOutcome out;
    rnr::LogReader reader(p.file, p.ingest);
    checkCancelled(token);
    const std::vector<rnr::VerifyIssue> issues = reader.verify();
    checkCancelled(token);
    out.resultJson =
        "{\"kind\":\"verify\",\"file\":" + jsonQuote(p.file) +
        ",\"fingerprint\":\"" + hex64(reader.fingerprint()) +
        "\",\"issues\":" + std::to_string(issues.size()) + "}";
    if (issues.empty()) {
        out.ok = true;
    } else {
        out.errorClass = 1;
        out.message = issues.front().message + " (+" +
                      std::to_string(issues.size() - 1) + " more)";
    }
    return out;
}

JobOutcome
runStats(const JobParams &p, const CancelToken &token)
{
    JobOutcome out;
    rnr::LogReader reader(p.file, p.ingest);
    rnr::LogStats sum;
    std::uint64_t walked = 0;
    reader.walkIntervals([&](sim::CoreId,
                             const rnr::IntervalRecord &iv,
                             const rnr::LogReader::ChunkView &) {
        rnr::CoreLog one;
        one.intervals.push_back(iv);
        sum.accumulate(one);
        if ((++walked & 0x3FF) == 0 && token.cancelled())
            return false;
        return true;
    });
    checkCancelled(token);
    out.resultJson =
        "{\"kind\":\"stats\",\"file\":" + jsonQuote(p.file) +
        ",\"cores\":" + std::to_string(reader.coreCount()) +
        ",\"intervals\":" + std::to_string(sum.intervals) +
        ",\"inorderInstructions\":" +
        std::to_string(sum.inorderInstructions) +
        ",\"reordered\":" + std::to_string(sum.reordered()) +
        ",\"modelBits\":" + std::to_string(sum.totalBits) +
        ",\"diskBytes\":" + std::to_string(reader.fileBytes()) + "}";
    out.ok = true;
    return out;
}

} // namespace

JobOutcome
runJob(const JobParams &params, const CancelToken &token)
{
    try {
        checkCancelled(token);
        switch (params.kind) {
          case JobKind::Record:
            if (!knownKernel(params.kernel)) {
                JobOutcome out;
                out.errorClass = 2;
                out.message = "unknown kernel '" + params.kernel + "'";
                return out;
            }
            return runRecord(params, token);
          case JobKind::Replay:
            if (!params.file.empty())
                return runReplayFile(params, token);
            if (!knownKernel(params.kernel)) {
                JobOutcome out;
                out.errorClass = 2;
                out.message = "unknown kernel '" + params.kernel + "'";
                return out;
            }
            return runReplayKernel(params, token);
          case JobKind::Verify:
            return runVerify(params, token);
          case JobKind::Stats:
            return runStats(params, token);
        }
        JobOutcome out;
        out.errorClass = 2;
        out.message = "unhandled job kind";
        return out;
    } catch (const rnr::ReplayAborted &) {
        throw JobCancelled();
    } catch (const JobCancelled &) {
        throw;
    } catch (const rnr::ReplayDivergence &d) {
        JobOutcome out;
        out.errorClass = 1;
        out.message = "replay diverged at core " +
                      std::to_string(d.report().core) + ", interval " +
                      std::to_string(d.report().intervalIndex);
        return out;
    } catch (const rnr::LogStoreError &e) {
        JobOutcome out;
        out.errorClass = e.kind() == rnr::LogErrorKind::Io ? 3 : 1;
        out.message = e.what();
        return out;
    } catch (const std::exception &e) {
        JobOutcome out;
        out.errorClass = 1;
        out.message = e.what();
        return out;
    }
}

} // namespace rr::svc
