#include "svc/server.hh"

#include <cctype>
#include <cerrno>
#include <cstring>
#include <iterator>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "svc/protocol.hh"

namespace rr::svc
{

namespace
{

[[noreturn]] void
sysFail(const std::string &what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

Server::Server(Options opts)
    : opts_(std::move(opts)), queue_(opts_.queue),
      scheduler_(queue_, opts_.sched,
                 [this](std::uint64_t conn, std::string event) {
                     {
                         std::lock_guard lk(mailboxMu_);
                         mailbox_.emplace_back(conn,
                                               std::move(event));
                     }
                     const char b = 'e';
                     [[maybe_unused]] ssize_t n =
                         ::write(pipeWrite_, &b, 1);
                 })
{
    int fds[2];
    if (::pipe2(fds, O_CLOEXEC | O_NONBLOCK) != 0)
        sysFail("pipe2");
    pipeRead_ = fds[0];
    pipeWrite_ = fds[1];
}

Server::~Server()
{
    teardown();
    closeFd(pipeRead_);
    closeFd(pipeWrite_);
}

void
Server::requestStop(bool drain)
{
    // Async-signal-safe: one write() on the self-pipe.
    const char b = drain ? 'd' : 'a';
    [[maybe_unused]] ssize_t n = ::write(pipeWrite_, &b, 1);
}

void
Server::setupListeners()
{
    // Unix-domain listener.
    unixFd_ = ::socket(AF_UNIX,
                       SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (unixFd_ < 0)
        sysFail("socket(AF_UNIX)");
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    if (opts_.socketPath.size() >= sizeof(sun.sun_path))
        throw std::runtime_error("socket path too long: " +
                                 opts_.socketPath);
    std::strncpy(sun.sun_path, opts_.socketPath.c_str(),
                 sizeof(sun.sun_path) - 1);
    ::unlink(opts_.socketPath.c_str());
    if (::bind(unixFd_, reinterpret_cast<sockaddr *>(&sun),
               sizeof(sun)) != 0)
        sysFail("bind(" + opts_.socketPath + ")");
    if (::listen(unixFd_, 64) != 0)
        sysFail("listen(" + opts_.socketPath + ")");

    // Optional loopback TCP listener (port 0 = ask the kernel).
    if (opts_.tcpPort >= 0 && opts_.tcpPort != -1 &&
        opts_.tcpPort != 0) {
        tcpFd_ = ::socket(
            AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
        if (tcpFd_ < 0)
            sysFail("socket(AF_INET)");
        const int one = 1;
        ::setsockopt(tcpFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in sin{};
        sin.sin_family = AF_INET;
        sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        sin.sin_port =
            htons(static_cast<std::uint16_t>(opts_.tcpPort));
        if (::bind(tcpFd_, reinterpret_cast<sockaddr *>(&sin),
                   sizeof(sin)) != 0)
            sysFail("bind(127.0.0.1:" +
                    std::to_string(opts_.tcpPort) + ")");
        if (::listen(tcpFd_, 64) != 0)
            sysFail("listen(tcp)");
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(tcpFd_, reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0)
            boundTcpPort_ = ntohs(bound.sin_port);
    }
}

void
Server::teardown()
{
    for (auto &[id, conn] : conns_)
        closeFd(conn.fd);
    conns_.clear();
    closeFd(tcpFd_);
    if (unixFd_ >= 0) {
        closeFd(unixFd_);
        ::unlink(opts_.socketPath.c_str());
    }
}

int
Server::acceptOn(int listen_fd)
{
    return ::accept4(listen_fd, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
}

void
Server::deliver(std::uint64_t conn_id, const std::string &event)
{
    auto it = conns_.find(conn_id);
    // Events for a connection that went away are dropped: the jobs
    // themselves keep running (fire-and-forget submits are legal).
    if (it == conns_.end() || it->second.fd < 0)
        return;
    it->second.outbuf += event;
    it->second.outbuf += '\n';
    if (it->second.outbuf.size() > opts_.maxOutbufBytes) {
        // Peer stopped reading. Mirror the request-line cap: drop the
        // connection rather than buffer without bound — its jobs keep
        // running, further events are discarded.
        it->second.outbuf.clear();
        closeFd(it->second.fd);
    }
}

void
Server::drainMailbox()
{
    std::vector<std::pair<std::uint64_t, std::string>> batch;
    {
        std::lock_guard lk(mailboxMu_);
        batch.swap(mailbox_);
    }
    for (auto &[conn_id, event] : batch)
        deliver(conn_id, event);
}

std::string
Server::statusBody()
{
    const JobQueue::Counters q = queue_.counters();
    const Scheduler::Snapshot s = scheduler_.snapshot();
    std::string body = "{\"queue\":{\"depth\":" +
                       std::to_string(queue_.depth()) +
                       ",\"admitted\":" + std::to_string(q.admitted) +
                       ",\"rejectedFull\":" +
                       std::to_string(q.rejectedFull) +
                       ",\"rejectedQuota\":" +
                       std::to_string(q.rejectedQuota) + "}";
    body += ",\"scheduler\":{\"running\":" + std::to_string(s.running) +
            ",\"completed\":" + std::to_string(s.completed) +
            ",\"failed\":" + std::to_string(s.failed) +
            ",\"cancelled\":" + std::to_string(s.cancelled) + "}";
    body += ",\"draining\":";
    body += draining_ ? "true" : "false";
    body += "}";
    return body;
}

void
Server::beginShutdown(bool drain)
{
    if (draining_ && !drainMode_) {
        // Already aborting: a repeated abort request stops waiting on
        // connections that will not drain their output.
        if (!drain)
            for (auto &[id, conn] : conns_)
                closeFd(conn.fd);
        return;
    }
    draining_ = true;
    drainMode_ = drainMode_ && drain;
    // Fail further connects fast rather than queueing them in the
    // listen backlog.
    closeFd(tcpFd_);
    if (unixFd_ >= 0) {
        closeFd(unixFd_);
        ::unlink(opts_.socketPath.c_str());
    }
    if (drainMode_)
        queue_.close(); // running + queued jobs finish; no admissions
    else
        scheduler_.cancelAll("shutdown");
}

void
Server::handleLine(Conn &conn, const std::string &line)
{
    bool blank = true;
    for (char c : line)
        if (!std::isspace(static_cast<unsigned char>(c)))
            blank = false;
    if (blank)
        return;

    std::string error;
    std::optional<Request> req = parseRequest(line, error);
    if (!req) {
        deliver(conn.id,
                eventRejected(ErrorCode::BadRequest, error, ""));
        return;
    }

    switch (req->op) {
      case Request::Op::Submit: {
        if (draining_) {
            deliver(conn.id,
                    eventRejected(ErrorCode::ShuttingDown,
                                  "server is draining", req->tag));
            return;
        }
        JobDesc desc;
        desc.tenant = req->tenant;
        desc.tag = req->tag;
        desc.conn = conn.id;
        desc.params = req->params;
        desc.timeoutSec = req->timeoutSec;
        desc.enqueued = std::chrono::steady_clock::now();
        const AdmitResult res = queue_.admit(desc, req->weight);
        if (res.admitted) {
            deliver(conn.id,
                    eventAccepted(res.jobId, req->tag, res.depth));
        } else {
            std::string detail;
            if (res.error == ErrorCode::QueueFull)
                detail = "queue capacity " +
                         std::to_string(opts_.queue.capacity) +
                         " reached";
            else if (res.error == ErrorCode::QuotaExceeded)
                detail = "tenant '" + req->tenant + "' quota " +
                         std::to_string(opts_.queue.tenantQuota) +
                         " reached";
            else
                detail = "server is shutting down";
            deliver(conn.id,
                    eventRejected(res.error, detail, req->tag));
        }
        return;
      }
      case Request::Op::Cancel:
        if (scheduler_.cancel(req->cancelJob))
            deliver(conn.id, "{\"event\":\"cancel_ok\",\"job\":" +
                                 std::to_string(req->cancelJob) + "}");
        else
            deliver(conn.id,
                    eventRejected(ErrorCode::NotFound,
                                  "job " +
                                      std::to_string(req->cancelJob) +
                                      " is not queued or running",
                                  req->tag));
        return;
      case Request::Op::Status:
        deliver(conn.id, eventStatus(statusBody()));
        return;
      case Request::Op::Ping:
        deliver(conn.id, eventPong());
        return;
      case Request::Op::Shutdown:
        deliver(conn.id, eventShutdown(req->drain));
        beginShutdown(req->drain);
        return;
    }
}

void
Server::handleReadable(Conn &conn)
{
    char buf[4096];
    for (;;) {
        const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
        if (n > 0) {
            conn.inbuf.append(buf, static_cast<std::size_t>(n));
            if (conn.inbuf.size() > opts_.maxLineBytes &&
                conn.inbuf.find('\n') == std::string::npos) {
                deliver(conn.id, eventRejected(ErrorCode::BadRequest,
                                               "request line too long",
                                               ""));
                conn.closing = true;
                break;
            }
            continue;
        }
        if (n == 0) {
            // Peer sent FIN. Complete request lines already buffered
            // must still be parsed below — data and FIN often arrive
            // in the same poll wake, and submit-and-hangup is legal —
            // so fall through to the line loop before winding down.
            conn.eof = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        closeFd(conn.fd); // hard read error: state is unusable
        return;
    }

    std::size_t start = 0;
    for (;;) {
        const std::size_t nl = conn.inbuf.find('\n', start);
        if (nl == std::string::npos)
            break;
        std::string line = conn.inbuf.substr(start, nl - start);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        start = nl + 1;
        handleLine(conn, line);
        if (conn.fd < 0 || conn.closing)
            break;
    }
    if (start)
        conn.inbuf.erase(0, start);

    if (conn.eof && conn.fd >= 0) {
        // Flush what we owe a half-closed peer, then close; a fully
        // closed peer fails the first write (EPIPE) and closes there.
        conn.closing = true;
        if (conn.outbuf.empty())
            closeFd(conn.fd);
    }
}

void
Server::flushWrites(Conn &conn)
{
    while (!conn.outbuf.empty()) {
        // MSG_NOSIGNAL: a peer that closed mid-stream must yield
        // EPIPE here, not a process-killing SIGPIPE.
        const ssize_t n = ::send(conn.fd, conn.outbuf.data(),
                                 conn.outbuf.size(), MSG_NOSIGNAL);
        if (n > 0) {
            conn.outbuf.erase(0, static_cast<std::size_t>(n));
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        if (errno == EINTR)
            continue;
        closeFd(conn.fd); // broken pipe etc.
        return;
    }
    if (conn.closing)
        closeFd(conn.fd);
}

void
Server::run()
{
    setupListeners();
    scheduler_.start();

    std::vector<pollfd> pfds;
    std::vector<std::uint64_t> pfdConn; // conn id per pollfd (0: none)
    for (;;) {
        pfds.clear();
        pfdConn.clear();
        pfds.push_back({pipeRead_, POLLIN, 0});
        pfdConn.push_back(0);
        if (unixFd_ >= 0) {
            pfds.push_back({unixFd_, POLLIN, 0});
            pfdConn.push_back(0);
        }
        if (tcpFd_ >= 0) {
            pfds.push_back({tcpFd_, POLLIN, 0});
            pfdConn.push_back(0);
        }
        for (auto &[id, conn] : conns_) {
            // After EOF the fd stays readable forever; polling POLLIN
            // would busy-loop, so wait only for the output to drain.
            short ev = conn.eof ? 0 : POLLIN;
            if (!conn.outbuf.empty())
                ev |= POLLOUT;
            pfds.push_back({conn.fd, ev, 0});
            pfdConn.push_back(id);
        }

        const int timeout_ms = draining_ ? 50 : -1;
        const int rc = ::poll(pfds.data(),
                              static_cast<nfds_t>(pfds.size()),
                              timeout_ms);
        if (rc < 0 && errno != EINTR)
            sysFail("poll");

        // Self-pipe: wakeups ('e') and shutdown commands ('d'/'a').
        if (pfds[0].revents & POLLIN) {
            char cmd[64];
            ssize_t n;
            while ((n = ::read(pipeRead_, cmd, sizeof(cmd))) > 0)
                for (ssize_t i = 0; i < n; ++i)
                    if (cmd[i] == 'd' || cmd[i] == 'a')
                        beginShutdown(cmd[i] == 'd');
        }

        drainMailbox();

        for (std::size_t i = 1; i < pfds.size(); ++i) {
            if (!pfds[i].revents)
                continue;
            if (pfdConn[i] == 0) {
                int cfd;
                while ((cfd = acceptOn(pfds[i].fd)) >= 0) {
                    Conn conn;
                    conn.fd = cfd;
                    conn.id = nextConn_++;
                    conns_.emplace(conn.id, std::move(conn));
                }
                continue;
            }
            auto it = conns_.find(pfdConn[i]);
            if (it == conns_.end() || it->second.fd < 0)
                continue;
            if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR))
                handleReadable(it->second);
            if (it->second.fd >= 0 &&
                (pfds[i].revents & POLLOUT || !it->second.outbuf.empty()))
                flushWrites(it->second);
        }

        // Opportunistic flush of freshly queued events.
        for (auto &[id, conn] : conns_)
            if (conn.fd >= 0 && !conn.outbuf.empty())
                flushWrites(conn);
        for (auto it = conns_.begin(); it != conns_.end();)
            it = it->second.fd < 0 ? conns_.erase(it) : std::next(it);

        if (draining_) {
            const Scheduler::Snapshot snap = scheduler_.snapshot();
            bool mailbox_empty;
            {
                std::lock_guard lk(mailboxMu_);
                mailbox_empty = mailbox_.empty();
            }
            bool flushed = true;
            for (auto &[id, conn] : conns_)
                if (!conn.outbuf.empty())
                    flushed = false;
            if (queue_.depth() == 0 && snap.running == 0 &&
                mailbox_empty) {
                if (flushed)
                    break;
                // Only unread client sockets remain. Bound the flush
                // phase so a client that stopped reading cannot hang
                // shutdown forever.
                const auto now = std::chrono::steady_clock::now();
                if (flushDeadline_ ==
                    std::chrono::steady_clock::time_point{}) {
                    flushDeadline_ =
                        now + std::chrono::milliseconds(
                                  opts_.flushTimeoutMs);
                } else if (now >= flushDeadline_) {
                    for (auto &[id, conn] : conns_)
                        closeFd(conn.fd);
                    break;
                }
            } else {
                flushDeadline_ = {};
            }
        }
    }

    scheduler_.stop(drainMode_);
    drainMailbox(); // nothing should be left; don't lose it if so
    teardown();
}

} // namespace rr::svc
