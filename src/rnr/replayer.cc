#include "rnr/replayer.hh"

#include <algorithm>

#include "rnr/patcher.hh"
#include "sim/logging.hh"

namespace rr::rnr
{

namespace
{

/** MemoryIf wrapper that remembers the last value read (load hook). */
class TracingMemory : public isa::MemoryIf
{
  public:
    explicit TracingMemory(mem::BackingStore &mem) : mem_(mem) {}

    std::uint64_t
    read64(sim::Addr a) override
    {
        lastRead = mem_.read64(a);
        didRead = true;
        return lastRead;
    }

    void write64(sim::Addr a, std::uint64_t v) override
    {
        mem_.write64(a, v);
    }

    std::uint64_t lastRead = 0;
    bool didRead = false;

  private:
    mem::BackingStore &mem_;
};

} // namespace

Replayer::Replayer(isa::Program prog, std::vector<CoreLog> patched_logs,
                   mem::BackingStore initial_memory)
    : prog_(std::move(prog)), logs_(std::move(patched_logs)),
      memory_(std::move(initial_memory)), recentSteps_(logs_.size())
{
    for (const auto &log : logs_)
        RR_ASSERT(isPatched(log), "replayer requires a patched log");
}

void
Replayer::noteStep(const ReplayStep &step)
{
    auto &ring = recentSteps_[step.core];
    if (ring.size() >= kRingDepth)
        ring.pop_front();
    ring.push_back(step);
}

void
Replayer::diverge(sim::CoreId core, std::uint32_t interval_index,
                  std::uint32_t entry_index, std::uint64_t order_position,
                  std::uint64_t pc, const LogEntry &entry,
                  std::string expected, std::string actual)
{
    const IntervalRecord &iv = logs_[core].intervals[interval_index];
    DivergenceReport report;
    report.core = core;
    report.intervalIndex = interval_index;
    report.entryIndex = entry_index;
    report.pc = pc;
    report.entry = entry;
    report.expected = std::move(expected);
    report.actual = std::move(actual);
    report.timestamp = iv.timestamp;
    report.orderPosition = order_position;
    report.predecessors = iv.predecessors;
    // Rings are chronological per core; concatenate in core order.
    for (const auto &ring : recentSteps_)
        for (const ReplayStep &s : ring)
            report.recentSteps.push_back(s);
    throw ReplayDivergence(std::move(report));
}

ReplayResult
Replayer::run()
{
    // The recorded total order: intervals sorted by their (globally
    // unique) termination timestamps.
    std::vector<IntervalRef> refs;
    for (std::size_t c = 0; c < logs_.size(); ++c) {
        for (std::size_t i = 0; i < logs_[c].intervals.size(); ++i) {
            refs.push_back(IntervalRef{logs_[c].intervals[i].timestamp,
                                       static_cast<sim::CoreId>(c),
                                       static_cast<std::uint32_t>(i)});
        }
    }
    std::sort(refs.begin(), refs.end(),
              [](const IntervalRef &a, const IntervalRef &b) {
                  return a.timestamp < b.timestamp;
              });
    std::vector<OrderItem> order;
    order.reserve(refs.size());
    for (const IntervalRef &r : refs)
        order.push_back(OrderItem{r.core, r.index});
    return runInOrder(order);
}

ReplayResult
Replayer::runInOrder(const std::vector<OrderItem> &order)
{
    ReplayResult res;
    res.contexts.resize(logs_.size());
    for (std::size_t c = 0; c < logs_.size(); ++c) {
        auto &ctx = res.contexts[c];
        ctx.pc = prog_.entryFor(static_cast<std::uint32_t>(c));
        ctx.writeReg(isa::kRegThreadId, c);
        ctx.writeReg(isa::kRegNumThreads, logs_.size());
    }

    // Sanity: per-core interval order must be respected.
    std::vector<std::uint32_t> next(logs_.size(), 0);
    std::size_t total = 0;
    for (const OrderItem &it : order) {
        RR_ASSERT(it.core < logs_.size(), "order core out of range");
        RR_ASSERT(it.index == next[it.core],
                  "order violates core %u's interval sequence", it.core);
        ++next[it.core];
        ++total;
    }
    std::size_t expected = 0;
    for (const auto &log : logs_)
        expected += log.intervals.size();
    RR_ASSERT(total == expected, "order must cover every interval");

    std::uint64_t position = 0;
    for (const OrderItem &it : order) {
        replayInterval(it.core, it.index, position++, res);
        ++res.intervals;
        res.cost.osCycles += costModel_.perIntervalCost;
    }

    res.memory = std::move(memory_);
    return res;
}

namespace
{

/** Render the instruction at @p pc (or the halted state) for a report. */
std::string
describeProgramPoint(const isa::Program &prog, const isa::ExecContext &ctx)
{
    if (ctx.halted)
        return "core already halted";
    return sim::strfmt("pc %llu: %s",
                       static_cast<unsigned long long>(ctx.pc),
                       isa::disassemble(prog.at(ctx.pc)).c_str());
}

} // namespace

void
Replayer::replayInterval(sim::CoreId core, std::uint32_t interval_index,
                         std::uint64_t order_position, ReplayResult &res)
{
    const IntervalRecord &iv = logs_[core].intervals[interval_index];
    isa::ExecContext &ctx = res.contexts[core];
    TracingMemory tmem(memory_);

    for (std::uint32_t ei = 0; ei < iv.entries.size(); ++ei) {
        const LogEntry &e = iv.entries[ei];
        std::uint64_t step_value = e.loadValue;
        if (e.kind == EntryKind::InorderBlock)
            step_value = e.blockSize;
        else if (e.kind == EntryKind::ReorderedStore ||
                 e.kind == EntryKind::PatchedStore)
            step_value = e.storeValue;
        noteStep(ReplayStep{core, interval_index, ei, e.kind, ctx.pc,
                            step_value, e.addr});
        res.cost.osCycles += costModel_.perEntryCost;
        switch (e.kind) {
          case EntryKind::InorderBlock: {
            for (std::uint64_t n = 0; n < e.blockSize; ++n) {
                if (ctx.halted) {
                    diverge(core, interval_index, ei, order_position,
                            ctx.pc, e,
                            sim::strfmt("%llu more executable "
                                        "instructions (%llu of %llu "
                                        "replayed)",
                                        static_cast<unsigned long long>(
                                            e.blockSize - n),
                                        static_cast<unsigned long long>(n),
                                        static_cast<unsigned long long>(
                                            e.blockSize)),
                            "core already halted");
                }
                tmem.didRead = false;
                const isa::Instruction &inst =
                    isa::step(prog_, ctx, tmem);
                if (tmem.didRead && loadHook_ &&
                    (inst.isLoad() || inst.isAtomic()))
                    loadHook_(core, tmem.lastRead);
            }
            res.instructions += e.blockSize;
            res.cost.userCycles += static_cast<std::uint64_t>(
                static_cast<double>(e.blockSize) / costModel_.replayIpc);
            res.cost.osCycles += costModel_.interruptCost;
            break;
          }
          case EntryKind::ReorderedLoad: {
            if (ctx.halted || !prog_.at(ctx.pc).isLoad()) {
                diverge(core, interval_index, ei, order_position, ctx.pc,
                        e, "a load instruction",
                        describeProgramPoint(prog_, ctx));
            }
            const isa::Instruction &inst = prog_.at(ctx.pc);
            ctx.writeReg(inst.rd, e.loadValue);
            ++ctx.pc;
            ++ctx.instructions;
            ++res.instructions;
            if (loadHook_)
                loadHook_(core, e.loadValue);
            res.cost.osCycles += costModel_.perReorderedCost;
            break;
          }
          case EntryKind::DummyStore: {
            if (ctx.halted || !prog_.at(ctx.pc).isStore()) {
                diverge(core, interval_index, ei, order_position, ctx.pc,
                        e, "a store instruction",
                        describeProgramPoint(prog_, ctx));
            }
            ++ctx.pc;
            ++ctx.instructions;
            ++res.instructions;
            res.cost.osCycles += costModel_.perReorderedCost;
            break;
          }
          case EntryKind::DummyAtomic: {
            if (ctx.halted || !prog_.at(ctx.pc).isAtomic()) {
                diverge(core, interval_index, ei, order_position, ctx.pc,
                        e, "an atomic instruction",
                        describeProgramPoint(prog_, ctx));
            }
            const isa::Instruction &inst = prog_.at(ctx.pc);
            ctx.writeReg(inst.rd, e.loadValue);
            ++ctx.pc;
            ++ctx.instructions;
            ++res.instructions;
            if (loadHook_)
                loadHook_(core, e.loadValue);
            res.cost.osCycles += costModel_.perReorderedCost;
            break;
          }
          case EntryKind::PatchedStore:
            // The store instruction itself replays (as a dummy) in the
            // interval where it was counted; only its memory effect
            // belongs here, at the end of its perform interval.
            memory_.write64(e.addr, e.storeValue);
            res.cost.osCycles += costModel_.perReorderedCost;
            break;
          case EntryKind::ReorderedStore:
          case EntryKind::ReorderedAtomic:
            diverge(core, interval_index, ei, order_position, ctx.pc, e,
                    "a patched log (ReorderedStore/Atomic rewritten by "
                    "rnr::patch)",
                    "an unpatched recording-side entry");
        }
    }
}

} // namespace rr::rnr
