#include "rnr/replayer.hh"

#include <algorithm>
#include <chrono>

#include "rnr/interval_interpreter.hh"
#include "rnr/patcher.hh"
#include "sim/logging.hh"

namespace rr::rnr
{

Replayer::Replayer(isa::Program prog, std::vector<CoreLog> patched_logs,
                   mem::BackingStore initial_memory)
    : prog_(std::move(prog)), logs_(std::move(patched_logs)),
      memory_(std::move(initial_memory)), recentSteps_(logs_.size())
{
    for (const auto &log : logs_)
        RR_ASSERT(isPatched(log), "replayer requires a patched log");
}

ReplayResult
Replayer::run()
{
    // The recorded total order: intervals sorted by their (globally
    // unique) termination timestamps.
    std::vector<IntervalRef> refs;
    for (std::size_t c = 0; c < logs_.size(); ++c) {
        for (std::size_t i = 0; i < logs_[c].intervals.size(); ++i) {
            refs.push_back(IntervalRef{logs_[c].intervals[i].timestamp,
                                       static_cast<sim::CoreId>(c),
                                       static_cast<std::uint32_t>(i)});
        }
    }
    std::sort(refs.begin(), refs.end(),
              [](const IntervalRef &a, const IntervalRef &b) {
                  return a.timestamp < b.timestamp;
              });
    std::vector<OrderItem> order;
    order.reserve(refs.size());
    for (const IntervalRef &r : refs)
        order.push_back(OrderItem{r.core, r.index});
    return runInOrder(order);
}

ReplayResult
Replayer::runInOrder(const std::vector<OrderItem> &order)
{
    ReplayResult res;
    res.contexts.resize(logs_.size());
    for (std::size_t c = 0; c < logs_.size(); ++c) {
        auto &ctx = res.contexts[c];
        ctx.pc = prog_.entryFor(static_cast<std::uint32_t>(c));
        ctx.writeReg(isa::kRegThreadId, c);
        ctx.writeReg(isa::kRegNumThreads, logs_.size());
    }

    // Sanity: per-core interval order must be respected.
    std::vector<std::uint32_t> next(logs_.size(), 0);
    std::size_t total = 0;
    for (const OrderItem &it : order) {
        RR_ASSERT(it.core < logs_.size(), "order core out of range");
        RR_ASSERT(it.index == next[it.core],
                  "order violates core %u's interval sequence", it.core);
        ++next[it.core];
        ++total;
    }
    std::size_t expected = 0;
    for (const auto &log : logs_)
        expected += log.intervals.size();
    RR_ASSERT(total == expected, "order must cover every interval");

    const IntervalInterpreter interp(prog_, logs_, costModel_);
    IntervalInterpreter::Accum acc;
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t position = 0;
    try {
        for (const OrderItem &it : order) {
            interp.replayInterval(it.core, it.index, position++,
                                  res.contexts[it.core], memory_,
                                  loadHook_, recentSteps_[it.core], acc);
            ++res.intervals;
        }
    } catch (ReplayDivergence &d) {
        // Rings are chronological per core; concatenate in core order.
        auto &steps = d.mutableReport().recentSteps;
        for (const auto &ring : recentSteps_)
            for (const ReplayStep &s : ring)
                steps.push_back(s);
        throw;
    }
    const auto t1 = std::chrono::steady_clock::now();

    res.instructions = acc.instructions;
    res.cost = acc.cost;
    res.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    res.workers = 1;
    res.memory = std::move(memory_);
    return res;
}

} // namespace rr::rnr
