#include "rnr/replayer.hh"

#include <algorithm>

#include "rnr/patcher.hh"
#include "sim/logging.hh"

namespace rr::rnr
{

namespace
{

/** MemoryIf wrapper that remembers the last value read (load hook). */
class TracingMemory : public isa::MemoryIf
{
  public:
    explicit TracingMemory(mem::BackingStore &mem) : mem_(mem) {}

    std::uint64_t
    read64(sim::Addr a) override
    {
        lastRead = mem_.read64(a);
        didRead = true;
        return lastRead;
    }

    void write64(sim::Addr a, std::uint64_t v) override
    {
        mem_.write64(a, v);
    }

    std::uint64_t lastRead = 0;
    bool didRead = false;

  private:
    mem::BackingStore &mem_;
};

} // namespace

Replayer::Replayer(isa::Program prog, std::vector<CoreLog> patched_logs,
                   mem::BackingStore initial_memory)
    : prog_(std::move(prog)), logs_(std::move(patched_logs)),
      memory_(std::move(initial_memory))
{
    for (const auto &log : logs_)
        RR_ASSERT(isPatched(log), "replayer requires a patched log");
}

ReplayResult
Replayer::run()
{
    // The recorded total order: intervals sorted by their (globally
    // unique) termination timestamps.
    std::vector<IntervalRef> refs;
    for (std::size_t c = 0; c < logs_.size(); ++c) {
        for (std::size_t i = 0; i < logs_[c].intervals.size(); ++i) {
            refs.push_back(IntervalRef{logs_[c].intervals[i].timestamp,
                                       static_cast<sim::CoreId>(c),
                                       static_cast<std::uint32_t>(i)});
        }
    }
    std::sort(refs.begin(), refs.end(),
              [](const IntervalRef &a, const IntervalRef &b) {
                  return a.timestamp < b.timestamp;
              });
    std::vector<OrderItem> order;
    order.reserve(refs.size());
    for (const IntervalRef &r : refs)
        order.push_back(OrderItem{r.core, r.index});
    return runInOrder(order);
}

ReplayResult
Replayer::runInOrder(const std::vector<OrderItem> &order)
{
    ReplayResult res;
    res.contexts.resize(logs_.size());
    for (std::size_t c = 0; c < logs_.size(); ++c) {
        auto &ctx = res.contexts[c];
        ctx.pc = prog_.entryFor(static_cast<std::uint32_t>(c));
        ctx.writeReg(isa::kRegThreadId, c);
        ctx.writeReg(isa::kRegNumThreads, logs_.size());
    }

    // Sanity: per-core interval order must be respected.
    std::vector<std::uint32_t> next(logs_.size(), 0);
    std::size_t total = 0;
    for (const OrderItem &it : order) {
        RR_ASSERT(it.core < logs_.size(), "order core out of range");
        RR_ASSERT(it.index == next[it.core],
                  "order violates core %u's interval sequence", it.core);
        ++next[it.core];
        ++total;
    }
    std::size_t expected = 0;
    for (const auto &log : logs_)
        expected += log.intervals.size();
    RR_ASSERT(total == expected, "order must cover every interval");

    for (const OrderItem &it : order) {
        replayInterval(it.core, logs_[it.core].intervals[it.index], res);
        ++res.intervals;
        res.cost.osCycles += costModel_.perIntervalCost;
    }

    res.memory = std::move(memory_);
    return res;
}

void
Replayer::replayInterval(sim::CoreId core, const IntervalRecord &iv,
                         ReplayResult &res)
{
    isa::ExecContext &ctx = res.contexts[core];
    TracingMemory tmem(memory_);

    for (const LogEntry &e : iv.entries) {
        res.cost.osCycles += costModel_.perEntryCost;
        switch (e.kind) {
          case EntryKind::InorderBlock: {
            for (std::uint64_t n = 0; n < e.blockSize; ++n) {
                RR_ASSERT(!ctx.halted,
                          "InorderBlock continues past HALT");
                tmem.didRead = false;
                const isa::Instruction &inst =
                    isa::step(prog_, ctx, tmem);
                if (tmem.didRead && loadHook_ &&
                    (inst.isLoad() || inst.isAtomic()))
                    loadHook_(core, tmem.lastRead);
            }
            res.instructions += e.blockSize;
            res.cost.userCycles += static_cast<std::uint64_t>(
                static_cast<double>(e.blockSize) / costModel_.replayIpc);
            res.cost.osCycles += costModel_.interruptCost;
            break;
          }
          case EntryKind::ReorderedLoad: {
            const isa::Instruction &inst = prog_.at(ctx.pc);
            RR_ASSERT(inst.isLoad(),
                      "ReorderedLoad does not align with a load at pc "
                      "%llu",
                      static_cast<unsigned long long>(ctx.pc));
            ctx.writeReg(inst.rd, e.loadValue);
            ++ctx.pc;
            ++ctx.instructions;
            ++res.instructions;
            if (loadHook_)
                loadHook_(core, e.loadValue);
            res.cost.osCycles += costModel_.perReorderedCost;
            break;
          }
          case EntryKind::DummyStore: {
            const isa::Instruction &inst = prog_.at(ctx.pc);
            RR_ASSERT(inst.isStore(),
                      "DummyStore does not align with a store");
            ++ctx.pc;
            ++ctx.instructions;
            ++res.instructions;
            res.cost.osCycles += costModel_.perReorderedCost;
            break;
          }
          case EntryKind::DummyAtomic: {
            const isa::Instruction &inst = prog_.at(ctx.pc);
            RR_ASSERT(inst.isAtomic(),
                      "DummyAtomic does not align with an atomic");
            ctx.writeReg(inst.rd, e.loadValue);
            ++ctx.pc;
            ++ctx.instructions;
            ++res.instructions;
            if (loadHook_)
                loadHook_(core, e.loadValue);
            res.cost.osCycles += costModel_.perReorderedCost;
            break;
          }
          case EntryKind::PatchedStore:
            // The store instruction itself replays (as a dummy) in the
            // interval where it was counted; only its memory effect
            // belongs here, at the end of its perform interval.
            memory_.write64(e.addr, e.storeValue);
            res.cost.osCycles += costModel_.perReorderedCost;
            break;
          case EntryKind::ReorderedStore:
          case EntryKind::ReorderedAtomic:
            sim::panic("unpatched entry reached the replayer");
        }
    }
}

} // namespace rr::rnr
