#include "rnr/parallel_schedule.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rr::rnr
{

std::uint64_t
intervalReplayCost(const IntervalRecord &iv, const ReplayCostModel &m)
{
    std::uint64_t cost = m.perIntervalCost;
    for (const LogEntry &e : iv.entries) {
        cost += m.perEntryCost;
        switch (e.kind) {
          case EntryKind::InorderBlock:
            cost += static_cast<std::uint64_t>(
                        static_cast<double>(e.blockSize) / m.replayIpc) +
                    m.interruptCost;
            break;
          case EntryKind::ReorderedLoad:
          case EntryKind::ReorderedStore:
          case EntryKind::ReorderedAtomic:
          case EntryKind::PatchedStore:
          case EntryKind::DummyStore:
          case EntryKind::DummyAtomic:
            cost += m.perReorderedCost;
            break;
        }
    }
    return cost;
}

ParallelSchedule
buildParallelSchedule(const std::vector<CoreLog> &patched_logs,
                      const ReplayCostModel &model)
{
    ParallelSchedule sched;

    // Process intervals in recorded timestamp order: every dependency
    // edge points to an interval that closed earlier, so this is a
    // topological order in which starts/finishes can be computed in a
    // single pass.
    struct Ref
    {
        std::uint64_t timestamp;
        sim::CoreId core;
        std::uint32_t index;
    };
    std::vector<Ref> refs;
    for (std::size_t c = 0; c < patched_logs.size(); ++c) {
        for (std::size_t i = 0; i < patched_logs[c].intervals.size();
             ++i) {
            refs.push_back(Ref{patched_logs[c].intervals[i].timestamp,
                               static_cast<sim::CoreId>(c),
                               static_cast<std::uint32_t>(i)});
        }
    }
    std::sort(refs.begin(), refs.end(), [](const Ref &a, const Ref &b) {
        return a.timestamp < b.timestamp;
    });

    std::vector<std::vector<std::uint64_t>> finish(patched_logs.size());
    for (std::size_t c = 0; c < patched_logs.size(); ++c)
        finish[c].resize(patched_logs[c].intervals.size(), 0);

    for (const Ref &ref : refs) {
        const IntervalRecord &iv =
            patched_logs[ref.core].intervals[ref.index];
        ScheduledInterval node;
        node.core = ref.core;
        node.index = ref.index;
        node.cost = intervalReplayCost(iv, model);

        std::uint64_t start = 0;
        if (ref.index > 0)
            start = finish[ref.core][ref.index - 1];
        for (const IntervalDep &d : iv.predecessors) {
            RR_ASSERT(d.core < patched_logs.size() &&
                          d.isn < finish[d.core].size(),
                      "dependency edge escapes the logs");
            start = std::max(start, finish[d.core][d.isn]);
            ++sched.edges;
        }
        node.start = start;
        node.finish = start + node.cost;
        finish[ref.core][ref.index] = node.finish;

        sched.totalWork += node.cost;
        sched.makespan = std::max(sched.makespan, node.finish);
        sched.order.push_back(node);
    }

    std::stable_sort(sched.order.begin(), sched.order.end(),
                     [](const ScheduledInterval &a,
                        const ScheduledInterval &b) {
                         return a.start < b.start;
                     });
    return sched;
}

} // namespace rr::rnr
