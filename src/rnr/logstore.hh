/**
 * @file
 * Persistent log store: streaming writer and integrity-checking reader
 * for `.rrlog` files — the durable, versioned container that lets a
 * recording outlive its process ("record once, replay/analyze many
 * times"). See format.hh for the wire layout and docs/LOG_FORMAT.md
 * for the specification.
 *
 * The LogWriter is *streaming*: the recorder hands it each interval as
 * the interval closes (Machine::setIntervalSink), and the writer flushes
 * a core's pending chunk to disk whenever it reaches ~64 KiB — memory
 * stays bounded and there is no end-of-run serialization spike. The
 * LogReader validates every CRC as it walks the file, reconstructs
 * CoreLogs (or iterates intervals lazily), and reports corruption or
 * truncation as a LogStoreError naming the file offset and chunk,
 * never by crashing or silently replaying garbage.
 */

#ifndef RR_RNR_LOGSTORE_HH
#define RR_RNR_LOGSTORE_HH

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <ostream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "rnr/format.hh"
#include "rnr/log.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace rr::rnr
{

/**
 * Classification of a LogStoreError; tools map it to distinct exit
 * codes so scripts can branch on "the file is corrupt" vs "the
 * operating system failed us" (rrlog: 1 vs 3).
 */
enum class LogErrorKind
{
    Format, ///< structural/integrity/compatibility failure in the file
    Io,     ///< OS-level I/O failure; osError() carries the errno
    Crash,  ///< injected crash-at-byte fault tore the file mid-write
};

/**
 * Any structural, integrity or compatibility failure while reading or
 * writing a .rrlog file. The what() string already includes the file
 * offset, chunk id and errno text when they are known.
 */
class LogStoreError : public std::runtime_error
{
  public:
    /**
     * @param chunk_seq -1 when the failure is not tied to a chunk.
     * @param os_error errno of the failing call; 0 when none.
     */
    LogStoreError(const std::string &message, std::uint64_t file_offset,
                  std::int64_t chunk_seq = -1,
                  LogErrorKind kind = LogErrorKind::Format,
                  int os_error = 0);

    std::uint64_t fileOffset() const { return fileOffset_; }
    std::int64_t chunkSeq() const { return chunkSeq_; }
    LogErrorKind kind() const { return kind_; }
    /** errno context of an Io failure (0 when not OS-level). */
    int osError() const { return osError_; }

  private:
    std::uint64_t fileOffset_;
    std::int64_t chunkSeq_;
    LogErrorKind kind_;
    int osError_;
};

/**
 * Recording parameters persisted in the Meta chunk: everything needed
 * to rebuild the workload and machine deterministically for replay,
 * and the source of the header's configuration fingerprint.
 */
struct RecordingMeta
{
    std::string kernel;
    std::uint32_t cores = 0;
    std::uint64_t scale = 1;
    std::uint64_t intensity = 16;
    std::uint64_t workloadSeed = 12345;
    std::uint64_t machineSeed = 1;
    sim::RecorderMode mode = sim::RecorderMode::Opt;
    std::uint64_t intervalCap = 0; ///< 0 = INF
    bool deps = false;
    /**
     * Coherence backend the recording machine was built with. Replay
     * rebuilds the same machine from it; it participates in the
     * fingerprint, so a reader asked to replay a directory-tagged log
     * on a snoopy machine (or vice versa) refuses cleanly.
     */
    sim::CoherenceKind coherence = sim::CoherenceKind::Snoopy;

    /**
     * 64-bit FNV-1a hash over every field above (plus the format
     * version). Stored in the file header; a reader recomputes it from
     * the decoded Meta chunk and refuses the file on mismatch, and
     * replay tooling uses it to refuse logs from a different machine
     * configuration.
     */
    std::uint64_t fingerprint() const;

    bool operator==(const RecordingMeta &) const = default;
};

/** Per-core replay-verification targets (Summary chunk). */
struct CoreReplaySummary
{
    std::uint64_t intervals = 0;
    std::uint64_t retiredInstructions = 0;
    std::uint64_t retiredLoads = 0;
    /** machine::mixLoadValue chain over retired load/atomic values. */
    std::uint64_t loadValueHash = 0;

    bool operator==(const CoreReplaySummary &) const = default;
};

/** Whole-recording verification targets (Summary chunk). */
struct RecordingSummary
{
    std::uint64_t totalInstructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t memoryFingerprint = 0;
    std::vector<CoreReplaySummary> cores;

    bool operator==(const RecordingSummary &) const = default;
};

/** Tunables of a LogWriter (defaults match the PR-3 behaviour). */
struct WriterOptions
{
    /** A core's pending chunk is flushed once its payload reaches this. */
    std::size_t chunkTargetBytes = fmt::kChunkTargetBytes;
    /** Initial header flags (fmt::kFlagPartial for `rrlog repair`). */
    std::uint16_t headerFlags = 0;
    /** Write/sync attempts before a transient I/O failure is fatal. */
    std::uint32_t maxIoAttempts = 5;
    /** First retry backoff in microseconds; doubles per attempt. */
    std::uint32_t retryBackoffUs = 50;
    /**
     * Stop writing interval data once the file would exceed this many
     * bytes (0 = unlimited). The trip flushes every pending chunk once
     * (a bounded overshoot that keeps the on-disk set a cross-core
     * consistent close-order prefix), then further intervals are
     * *dropped* (counted in `intervals_dropped_budget`), the file is
     * flagged partial, and finish() still lands a Summary + End — a
     * bounded, replayable prefix instead of an unbounded file or an
     * abort. An installed FaultInjector plan's `budget=` clause
     * tightens this further.
     */
    std::uint64_t budgetBytes = 0;
};

/**
 * Streaming .rrlog writer. Construction writes the file header and the
 * Meta chunk; append() buffers one interval into the producing core's
 * pending chunk and flushes it once it reaches chunkTargetBytes;
 * finish() flushes every pending chunk, then writes the Summary and End
 * chunks. A file without an End chunk is detected as truncated by the
 * reader, so finish() must be called for a valid file.
 *
 * Crash consistency (path mode): the writer writes to `path + ".tmp"`
 * and atomically renames onto the final path only after finish() has
 * fsync'd everything, so a crash mid-recording can never leave a
 * half-written file under the final name — at worst a torn `.tmp` that
 * `rrlog repair` can salvage a prefix from. Transient write/sync
 * failures (real or injected by sim::FaultInjector) are retried with
 * exponential backoff up to maxIoAttempts; persistent ones surface as
 * LogStoreError with kind Io and the errno attached.
 *
 * I/O counters (bytes/chunks/flushes/intervals/retries/padding bits)
 * are kept in a StatSet for the `--stats-json` export path.
 */
class LogWriter
{
  public:
    /**
     * Write into a caller-owned stream (e.g. a bench's ostringstream).
     * Stream mode has no retry/rename/fault machinery — it is the
     * simple in-memory path for tests and benches.
     */
    LogWriter(std::ostream &out, const RecordingMeta &meta,
              const WriterOptions &opts = {});

    /** Open and own @p path; throws LogStoreError when unwritable. */
    LogWriter(const std::string &path, const RecordingMeta &meta,
              const WriterOptions &opts = {});

    ~LogWriter();

    /** Append one closed interval of @p core (streaming hot path). */
    void append(sim::CoreId core, const IntervalRecord &interval);

    /** Flush pending chunks and write the Summary and End chunks. */
    void finish(const RecordingSummary &summary);

    /**
     * Finish a deliberately incomplete file (`rrlog repair`): flush
     * pending chunks, optionally write a Summary (e.g. one salvaged
     * from the torn original), write the End chunk and set the partial
     * header flag. The result is structurally valid and replayable
     * with `--allow-partial`.
     */
    void finishPartial(const RecordingSummary *summary = nullptr);

    /** Mark the file partial (set fmt::kFlagPartial at finish time). */
    void markPartial() { headerFlags_ |= fmt::kFlagPartial; }

    bool finished() const { return finished_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }
    std::uint64_t intervalsWritten() const { return intervalsWritten_; }
    std::uint16_t headerFlags() const { return headerFlags_; }
    /** The path the data is at *right now* (.tmp until finished). */
    const std::string &currentPath() const
    {
        return finished_ || path_.empty() ? path_ : tmpPath_;
    }

    sim::StatSet &stats() { return stats_; }
    const sim::StatSet &stats() const { return stats_; }

  private:
    /** Pending (unflushed) chunk of one core. */
    struct CoreStream
    {
        BitWriter bits;
        std::uint64_t intervals = 0;
        /** Delta-codec state; reset at each chunk boundary. */
        bool first = true;
        sim::Isn prevCisn = 0;
        std::uint64_t prevTimestamp = 0;
    };

    void writeFileHeader();
    void writeMetaChunk();
    void encodeInterval(CoreStream &cs, const IntervalRecord &iv);
    void flushCore(sim::CoreId core);
    void writeChunk(fmt::ChunkType type, std::uint32_t core,
                    const std::vector<std::uint8_t> &payload,
                    std::uint64_t payload_bits);

    /**
     * The single raw output path: writes @p n bytes with injected-fault
     * consultation, partial-write resumption and bounded
     * retry-with-backoff (path mode). Throws LogStoreError (kind Io
     * with errno, or Crash) when the write cannot complete.
     */
    void writeRaw(const void *data, std::size_t n);

    /** fflush + fsync with the same retry/injection policy. */
    void syncFile(const char *what);

    /** Re-write the 24-byte header in place (late flag changes). */
    void rewriteHeader();

    /** Flush pending data, write optional summary, End, finalize. */
    void finishCommon(const RecordingSummary *summary);

    /** Close and atomically rename tmp -> final (path mode). */
    void finalizeFile();

    std::ostream *stream_ = nullptr; ///< stream mode; null in path mode
    std::FILE *file_ = nullptr;      ///< path mode; null in stream mode
    std::string path_;    ///< final path; empty for stream mode
    std::string tmpPath_; ///< path_ + ".tmp" staging file (path mode)
    RecordingMeta meta_;
    WriterOptions opts_;
    std::uint16_t headerFlags_ = 0;
    std::vector<CoreStream> streams_;
    std::uint64_t nextChunkSeq_ = 0;
    std::uint64_t bytesWritten_ = 0;
    std::uint64_t intervalsWritten_ = 0;
    bool finished_ = false;
    bool dead_ = false;           ///< an injected crash tore the file
    bool budgetExceeded_ = false; ///< dropping intervals (see budget)
    sim::StatSet stats_;
};

/** Everything `rrlog info` reports about a file. */
struct LogFileInfo
{
    std::uint16_t version = 0;
    std::uint16_t flags = 0;      ///< header flags (fmt::kFlagPartial…)
    std::uint64_t fingerprint = 0;
    std::uint32_t coreCount = 0;
    RecordingMeta meta;
    bool hasSummary = false;
    RecordingSummary summary;
    std::uint64_t fileBytes = 0;
    std::uint64_t chunks = 0;     ///< all chunks, meta/summary/end included
    std::uint64_t dataChunks = 0;
    std::uint64_t intervals = 0;  ///< intervals across all data chunks
    std::uint64_t payloadBits = 0; ///< data-chunk payload bits
    bool cleanEnd = false;        ///< End chunk present
};

/** One problem found by LogReader::verify(). */
struct VerifyIssue
{
    std::uint64_t fileOffset = 0;
    std::int64_t chunkSeq = -1;
    std::string message;
};

/**
 * What LogReader::recoverPrefix() salvaged from a (possibly torn)
 * file. Per-core chunk-prefix semantics: a core's intervals are taken
 * from its data chunks in order up to — but not including — the first
 * chunk that is corrupt, truncated or lost to a framing break, so
 * every salvaged interval is known-good and every core's salvage is a
 * prefix of its recorded stream. A file written by finish() salvages
 * completely (cleanEnd, hasSummary, no issues).
 */
struct RecoveryResult
{
    std::vector<CoreLog> logs; ///< salvaged per-core interval prefixes
    std::uint64_t salvagedIntervals = 0;
    std::uint64_t salvagedChunks = 0; ///< data chunks decoded
    std::uint64_t droppedChunks = 0;  ///< data chunks lost/discarded
    std::uint64_t usableBytes = 0;    ///< file prefix covered by salvage
    bool cleanEnd = false;            ///< End marker reached
    bool hasSummary = false;
    RecordingSummary summary;
    /**
     * Per core: whether the salvage may be missing recorded intervals
     * of that core — it lost a chunk, or the walk never reached the End
     * marker (the torn tail could have held anyone's chunks). Only
     * truncated cores constrain consistentCut(); a file that salvages
     * cleanly has no truncated cores and loses nothing to the cut.
     */
    std::vector<bool> coreTruncated;
    /** Why salvage stopped / what was skipped (empty = file sound). */
    std::vector<VerifyIssue> issues;
};

/**
 * Trim salvaged per-core logs to a *consistent cut*: keep only
 * intervals whose timestamp is <= the smallest last-interval timestamp
 * across the *truncated* cores (see RecoveryResult::coreTruncated; an
 * empty @p truncated conservatively treats every core as truncated).
 * Interval timestamps are the global replay total order and increase
 * monotonically per core, so the kept set is exactly the set of
 * intervals the original execution had closed by that point — a prefix
 * that replays without depending on any lost interval. A truncated
 * core with nothing salvaged forces an empty cut (nothing is known to
 * be safe to replay against it); a complete core never constrains the
 * cut, which makes the operation idempotent across repair/replay.
 *
 * @return the cut timestamp actually applied (0 when everything was
 *         trimmed; the last timestamp present when nothing was).
 */
std::uint64_t consistentCut(std::vector<CoreLog> &logs,
                            const std::vector<bool> &truncated = {});

/**
 * How a LogReader gets bytes off the disk.
 *
 * Mmap is the zero-copy fast path: the file is mapped read-only with
 * sequential readahead hints, chunk payloads are handed to the decoder
 * as `std::span` views straight into the page cache, and nothing is
 * copied until intervals materialize. Streamed is the portable
 * fallback (ifstream + owned payload buffers) and the only mode that
 * bounds peak RSS below the file size. Auto tries mmap and silently
 * falls back to streaming when the mapping fails (exotic filesystems,
 * 32-bit address pressure). Both modes produce bit-identical results
 * and byte-identical error messages — the corruption-matrix tests run
 * against both.
 */
enum class IngestMode
{
    Auto,
    Streamed,
    Mmap,
};

/**
 * Integrity-checking .rrlog reader. The constructor validates the file
 * header and the Meta chunk (magic, version, header CRC, fingerprint)
 * and throws LogStoreError on any mismatch; the walking entry points
 * below validate each chunk's framing and payload CRC as they go.
 */
class LogReader
{
  public:
    explicit LogReader(const std::string &path,
                       IngestMode mode = IngestMode::Auto);
    ~LogReader();

    /** The mapping (mmap mode) is single-owner; readers don't copy. */
    LogReader(const LogReader &) = delete;
    LogReader &operator=(const LogReader &) = delete;

    const std::string &path() const { return path_; }
    /** The ingest mode actually in effect (Auto never survives
     *  construction: it resolves to Mmap or Streamed). */
    IngestMode ingestMode() const { return mode_; }
    std::uint64_t fileBytes() const { return fileBytes_; }
    std::uint16_t version() const { return version_; }
    std::uint16_t flags() const { return flags_; }
    /** Whether the file is flagged as a deliberate partial recording. */
    bool partial() const { return (flags_ & fmt::kFlagPartial) != 0; }
    /** Whether the header tags a directory-coherence recording. */
    bool directory() const { return (flags_ & fmt::kFlagDirectory) != 0; }
    std::uint64_t fingerprint() const { return fingerprint_; }
    std::uint32_t coreCount() const { return coreCount_; }
    const RecordingMeta &meta() const { return meta_; }

    /**
     * Walk every chunk once, collecting file-level facts (including the
     * Summary when present). Throws on the first integrity failure.
     */
    LogFileInfo info();

    /** Where an interval handed out by walkIntervals() came from. */
    struct ChunkView
    {
        std::uint64_t seq = 0;
        std::uint64_t offset = 0;      ///< file offset of the header
        std::uint64_t payloadBits = 0; ///< the whole chunk's payload
    };

    /**
     * Decode intervals in file order, one chunk at a time (peak memory
     * is one chunk, not the file), invoking @p fn with the producing
     * core, the reconstructed interval (cycle is not persisted and
     * reads back 0) and the source chunk. @p fn returning false stops
     * the walk immediately — no further chunk is read or validated —
     * and walkIntervals returns false; walking to the End marker
     * (which is then required, as is the absence of trailing bytes)
     * returns true. Throws LogStoreError on corruption.
     */
    bool walkIntervals(
        const std::function<bool(sim::CoreId, const IntervalRecord &,
                                 const ChunkView &)> &fn);

    /**
     * Decode every interval in file order, invoking @p fn with the
     * producing core, the reconstructed interval (cycle is not
     * persisted and reads back 0), the chunk it came from and that
     * chunk's file offset. Throws LogStoreError on corruption.
     */
    void forEachInterval(
        const std::function<void(sim::CoreId, const IntervalRecord &,
                                 std::uint64_t chunk_seq,
                                 std::uint64_t chunk_offset)> &fn);

    /** Reconstruct all per-core logs; requires a clean End chunk. */
    std::vector<CoreLog> readAll();

    /**
     * readAll(), but with chunk payloads CRC-checked and decoded
     * concurrently on up to @p workers sim::TaskPool threads (0 = all
     * host cores) — sound because the delta codec resets at every
     * chunk boundary, so chunks decode independently. A single
     * sequential pass validates the framing (headers, sequence
     * continuity, End marker) and decodes the Summary; the bulky
     * per-chunk varint work fans out behind it, staging intervals
     * through per-worker bump arenas. The result — including which
     * LogStoreError is thrown for a damaged file — is identical to
     * readAll(): when several chunks are bad, the error of the
     * earliest file offset wins, exactly as a sequential walk would
     * have reported it.
     */
    std::vector<CoreLog> readAllParallel(std::uint32_t workers = 0);

    /**
     * The recording summary; throws LogStoreError when the file has
     * none (truncated before finish()).
     */
    RecordingSummary summary();

    /**
     * Full structural walk that *collects* problems instead of throwing:
     * every CRC failure, framing error, truncation, decode error and
     * summary/data inconsistency found, each naming its file offset and
     * chunk. An empty result means the file is sound. Payloads of
     * chunks whose framing header is intact but whose payload CRC fails
     * are skipped, so one corrupt chunk does not mask later ones.
     * Files flagged partial are exempt from the "has a summary" and
     * "summary interval counts match the data" requirements.
     */
    std::vector<VerifyIssue> verify();

    /**
     * Salvage the longest valid per-core chunk prefix from a torn or
     * damaged file (see RecoveryResult). Never throws on damage past
     * the meta chunk — damage bounds the salvage and is reported in
     * RecoveryResult::issues instead. `rrlog repair` writes the result
     * back out as a partial-flagged file; `rrsim replay
     * --allow-partial` replays it directly after a consistentCut().
     */
    RecoveryResult recoverPrefix();

  private:
    struct Chunk
    {
        fmt::ChunkHeader header;
        std::uint64_t offset = 0; ///< file offset of the chunk header
        /** Payload view: into the mapping (mmap mode, zero-copy) or
         *  into `owned` (streamed mode). Valid while the reader and
         *  this Chunk live; moving the Chunk keeps it valid. */
        std::span<const std::uint8_t> payload;
        std::vector<std::uint8_t> owned;
    };

    /** Map the file or open the stream, per the requested mode. */
    void setupIngest(IngestMode mode);
    /** Read @p n raw bytes at @p offset (header parsing). */
    void readBytesAt(std::uint64_t offset, std::uint8_t *dest,
                     std::size_t n);

    /**
     * Read the chunk at @p offset. @p verify_payload_crc false lets
     * verify() keep walking past a corrupt payload.
     * @return false at a clean end-of-file boundary.
     */
    bool readChunkAt(std::uint64_t offset, Chunk &out,
                     bool verify_payload_crc = true);

    void decodeDataChunk(
        const Chunk &chunk,
        const std::function<bool(sim::CoreId, const IntervalRecord &)>
            &fn);

    std::string path_;
    std::ifstream in_;       ///< streamed mode only
    int fd_ = -1;            ///< mmap mode only
    const std::uint8_t *map_ = nullptr;
    std::size_t mapBytes_ = 0;
    IngestMode mode_ = IngestMode::Streamed;
    std::uint64_t fileBytes_ = 0;
    std::uint16_t version_ = 0;
    std::uint16_t flags_ = 0;
    std::uint64_t fingerprint_ = 0;
    std::uint32_t coreCount_ = 0;
    RecordingMeta meta_;
    std::uint64_t firstDataOffset_ = 0;
    bool haveSummary_ = false;
    RecordingSummary summary_;
};

} // namespace rr::rnr

#endif // RR_RNR_LOGSTORE_HH
