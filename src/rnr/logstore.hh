/**
 * @file
 * Persistent log store: streaming writer and integrity-checking reader
 * for `.rrlog` files — the durable, versioned container that lets a
 * recording outlive its process ("record once, replay/analyze many
 * times"). See format.hh for the wire layout and docs/LOG_FORMAT.md
 * for the specification.
 *
 * The LogWriter is *streaming*: the recorder hands it each interval as
 * the interval closes (Machine::setIntervalSink), and the writer flushes
 * a core's pending chunk to disk whenever it reaches ~64 KiB — memory
 * stays bounded and there is no end-of-run serialization spike. The
 * LogReader validates every CRC as it walks the file, reconstructs
 * CoreLogs (or iterates intervals lazily), and reports corruption or
 * truncation as a LogStoreError naming the file offset and chunk,
 * never by crashing or silently replaying garbage.
 */

#ifndef RR_RNR_LOGSTORE_HH
#define RR_RNR_LOGSTORE_HH

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "rnr/format.hh"
#include "rnr/log.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace rr::rnr
{

/**
 * Any structural, integrity or compatibility failure while reading or
 * writing a .rrlog file. The what() string already includes the file
 * offset and chunk id when they are known.
 */
class LogStoreError : public std::runtime_error
{
  public:
    /** @param chunk_seq -1 when the failure is not tied to a chunk. */
    LogStoreError(const std::string &message, std::uint64_t file_offset,
                  std::int64_t chunk_seq = -1);

    std::uint64_t fileOffset() const { return fileOffset_; }
    std::int64_t chunkSeq() const { return chunkSeq_; }

  private:
    std::uint64_t fileOffset_;
    std::int64_t chunkSeq_;
};

/**
 * Recording parameters persisted in the Meta chunk: everything needed
 * to rebuild the workload and machine deterministically for replay,
 * and the source of the header's configuration fingerprint.
 */
struct RecordingMeta
{
    std::string kernel;
    std::uint32_t cores = 0;
    std::uint64_t scale = 1;
    std::uint64_t intensity = 16;
    std::uint64_t workloadSeed = 12345;
    std::uint64_t machineSeed = 1;
    sim::RecorderMode mode = sim::RecorderMode::Opt;
    std::uint64_t intervalCap = 0; ///< 0 = INF
    bool deps = false;

    /**
     * 64-bit FNV-1a hash over every field above (plus the format
     * version). Stored in the file header; a reader recomputes it from
     * the decoded Meta chunk and refuses the file on mismatch, and
     * replay tooling uses it to refuse logs from a different machine
     * configuration.
     */
    std::uint64_t fingerprint() const;

    bool operator==(const RecordingMeta &) const = default;
};

/** Per-core replay-verification targets (Summary chunk). */
struct CoreReplaySummary
{
    std::uint64_t intervals = 0;
    std::uint64_t retiredInstructions = 0;
    std::uint64_t retiredLoads = 0;
    /** machine::mixLoadValue chain over retired load/atomic values. */
    std::uint64_t loadValueHash = 0;

    bool operator==(const CoreReplaySummary &) const = default;
};

/** Whole-recording verification targets (Summary chunk). */
struct RecordingSummary
{
    std::uint64_t totalInstructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t memoryFingerprint = 0;
    std::vector<CoreReplaySummary> cores;

    bool operator==(const RecordingSummary &) const = default;
};

/**
 * Streaming .rrlog writer. Construction writes the file header and the
 * Meta chunk; append() buffers one interval into the producing core's
 * pending chunk and flushes it once it reaches fmt::kChunkTargetBytes;
 * finish() flushes every pending chunk, then writes the Summary and End
 * chunks. A file without an End chunk is detected as truncated by the
 * reader, so finish() must be called for a valid file.
 *
 * I/O counters (bytes/chunks/flushes/intervals/padding bits) are kept
 * in a StatSet for the `--stats-json` export path.
 */
class LogWriter
{
  public:
    /** Write into a caller-owned stream (e.g. a bench's ostringstream). */
    LogWriter(std::ostream &out, const RecordingMeta &meta);

    /** Open and own @p path; throws LogStoreError when unwritable. */
    LogWriter(const std::string &path, const RecordingMeta &meta);

    ~LogWriter();

    /** Append one closed interval of @p core (streaming hot path). */
    void append(sim::CoreId core, const IntervalRecord &interval);

    /** Flush pending chunks and write the Summary and End chunks. */
    void finish(const RecordingSummary &summary);

    bool finished() const { return finished_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }
    std::uint64_t intervalsWritten() const { return intervalsWritten_; }

    sim::StatSet &stats() { return stats_; }
    const sim::StatSet &stats() const { return stats_; }

  private:
    /** Pending (unflushed) chunk of one core. */
    struct CoreStream
    {
        BitWriter bits;
        std::uint64_t intervals = 0;
        /** Delta-codec state; reset at each chunk boundary. */
        bool first = true;
        sim::Isn prevCisn = 0;
        std::uint64_t prevTimestamp = 0;
    };

    void writeFileHeader();
    void writeMetaChunk();
    void encodeInterval(CoreStream &cs, const IntervalRecord &iv);
    void flushCore(sim::CoreId core);
    void writeChunk(fmt::ChunkType type, std::uint32_t core,
                    const std::vector<std::uint8_t> &payload,
                    std::uint64_t payload_bits);

    std::unique_ptr<std::ofstream> owned_;
    std::ostream &out_;
    std::string path_; ///< for error messages; empty for stream mode
    RecordingMeta meta_;
    std::vector<CoreStream> streams_;
    std::uint64_t nextChunkSeq_ = 0;
    std::uint64_t bytesWritten_ = 0;
    std::uint64_t intervalsWritten_ = 0;
    bool finished_ = false;
    sim::StatSet stats_;
};

/** Everything `rrlog info` reports about a file. */
struct LogFileInfo
{
    std::uint16_t version = 0;
    std::uint64_t fingerprint = 0;
    std::uint32_t coreCount = 0;
    RecordingMeta meta;
    bool hasSummary = false;
    RecordingSummary summary;
    std::uint64_t fileBytes = 0;
    std::uint64_t chunks = 0;     ///< all chunks, meta/summary/end included
    std::uint64_t dataChunks = 0;
    std::uint64_t intervals = 0;  ///< intervals across all data chunks
    std::uint64_t payloadBits = 0; ///< data-chunk payload bits
    bool cleanEnd = false;        ///< End chunk present
};

/** One problem found by LogReader::verify(). */
struct VerifyIssue
{
    std::uint64_t fileOffset = 0;
    std::int64_t chunkSeq = -1;
    std::string message;
};

/**
 * Integrity-checking .rrlog reader. The constructor validates the file
 * header and the Meta chunk (magic, version, header CRC, fingerprint)
 * and throws LogStoreError on any mismatch; the walking entry points
 * below validate each chunk's framing and payload CRC as they go.
 */
class LogReader
{
  public:
    explicit LogReader(const std::string &path);

    const std::string &path() const { return path_; }
    std::uint16_t version() const { return version_; }
    std::uint64_t fingerprint() const { return fingerprint_; }
    std::uint32_t coreCount() const { return coreCount_; }
    const RecordingMeta &meta() const { return meta_; }

    /**
     * Walk every chunk once, collecting file-level facts (including the
     * Summary when present). Throws on the first integrity failure.
     */
    LogFileInfo info();

    /**
     * Decode every interval in file order, invoking @p fn with the
     * producing core, the reconstructed interval (cycle is not
     * persisted and reads back 0), the chunk it came from and that
     * chunk's file offset. Throws LogStoreError on corruption.
     */
    void forEachInterval(
        const std::function<void(sim::CoreId, const IntervalRecord &,
                                 std::uint64_t chunk_seq,
                                 std::uint64_t chunk_offset)> &fn);

    /** Reconstruct all per-core logs; requires a clean End chunk. */
    std::vector<CoreLog> readAll();

    /**
     * The recording summary; throws LogStoreError when the file has
     * none (truncated before finish()).
     */
    RecordingSummary summary();

    /**
     * Full structural walk that *collects* problems instead of throwing:
     * every CRC failure, framing error, truncation, decode error and
     * summary/data inconsistency found, each naming its file offset and
     * chunk. An empty result means the file is sound. Payloads of
     * chunks whose framing header is intact but whose payload CRC fails
     * are skipped, so one corrupt chunk does not mask later ones.
     */
    std::vector<VerifyIssue> verify();

  private:
    struct Chunk
    {
        fmt::ChunkHeader header;
        std::uint64_t offset = 0; ///< file offset of the chunk header
        std::vector<std::uint8_t> payload;
    };

    /**
     * Read the chunk at @p offset. @p verify_payload_crc false lets
     * verify() keep walking past a corrupt payload.
     * @return false at a clean end-of-file boundary.
     */
    bool readChunkAt(std::uint64_t offset, Chunk &out,
                     bool verify_payload_crc = true);

    void decodeDataChunk(const Chunk &chunk,
                         const std::function<void(sim::CoreId,
                                                  const IntervalRecord &)>
                             &fn);

    std::string path_;
    std::ifstream in_;
    std::uint64_t fileBytes_ = 0;
    std::uint16_t version_ = 0;
    std::uint64_t fingerprint_ = 0;
    std::uint32_t coreCount_ = 0;
    RecordingMeta meta_;
    std::uint64_t firstDataOffset_ = 0;
    bool haveSummary_ = false;
    RecordingSummary summary_;
};

} // namespace rr::rnr

#endif // RR_RNR_LOGSTORE_HH
