#include "rnr/patcher.hh"

#include "sim/logging.hh"

namespace rr::rnr
{

bool
isPatched(const CoreLog &log)
{
    for (const auto &iv : log.intervals) {
        for (const auto &e : iv.entries) {
            if (e.kind == EntryKind::ReorderedStore ||
                e.kind == EntryKind::ReorderedAtomic)
                return false;
        }
    }
    return true;
}

CoreLog
patch(const CoreLog &recorded)
{
    CoreLog out = recorded;
    for (std::size_t i = 0; i < out.intervals.size(); ++i) {
        for (auto &e : out.intervals[i].entries) {
            if (e.kind == EntryKind::ReorderedStore) {
                RR_ASSERT(e.offset > 0 && e.offset <= i,
                          "store offset %u escapes the log at interval "
                          "%zu",
                          e.offset, i);
                out.intervals[i - e.offset].entries.push_back(
                    LogEntry::patchedStore(e.addr, e.storeValue));
                e = LogEntry::dummyStore();
            } else if (e.kind == EntryKind::ReorderedAtomic) {
                RR_ASSERT(e.offset > 0 && e.offset <= i,
                          "atomic offset %u escapes the log at interval "
                          "%zu",
                          e.offset, i);
                out.intervals[i - e.offset].entries.push_back(
                    LogEntry::patchedStore(e.addr, e.storeValue));
                e = LogEntry::dummyAtomic(e.loadValue);
            }
        }
    }
    return out;
}

} // namespace rr::rnr
