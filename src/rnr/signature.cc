#include "rnr/signature.hh"

#include <bit>

#include "sim/logging.hh"

namespace rr::rnr
{

namespace
{

bool
isPow2(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Signature::Signature(std::uint32_t banks, std::uint32_t bits_per_bank,
                     std::uint64_t seed)
    : banks_(banks), bitsPerBank_(bits_per_bank)
{
    RR_ASSERT(banks_ > 0 && isPow2(bitsPerBank_),
              "signature geometry must be pow2");
    indexBits_ = static_cast<std::uint32_t>(
        std::countr_zero(bitsPerBank_));
    sim::Rng rng(seed ^ 0x5167a5167a51ULL);
    h3Rows_.resize(static_cast<std::size_t>(banks_) * indexBits_);
    for (auto &row : h3Rows_)
        row = rng.next();
    bits_.assign(static_cast<std::size_t>(banks_) * bitsPerBank_ / 64, 0);
    cacheTags_.assign(kIndexCacheSlots, kNoCachedLine);
    cacheIdx_.assign(static_cast<std::size_t>(kIndexCacheSlots) * banks_, 0);
}

std::uint32_t
Signature::bankIndex(std::uint32_t bank, sim::Addr line) const
{
    // H3: each output bit is the parity of (address AND row-mask).
    const std::uint64_t key = line / sim::kLineBytes;
    std::uint32_t idx = 0;
    const std::uint64_t *rows =
        &h3Rows_[static_cast<std::size_t>(bank) * indexBits_];
    for (std::uint32_t b = 0; b < indexBits_; ++b)
        idx |= static_cast<std::uint32_t>(std::popcount(key & rows[b]) & 1)
               << b;
    return idx;
}

const std::uint32_t *
Signature::cachedIndexes(sim::Addr line) const
{
    const std::uint64_t key = line / sim::kLineBytes;
    const std::uint32_t slot =
        static_cast<std::uint32_t>(key) & (kIndexCacheSlots - 1);
    std::uint32_t *idx = &cacheIdx_[static_cast<std::size_t>(slot) * banks_];
    if (cacheTags_[slot] != key) {
        for (std::uint32_t bank = 0; bank < banks_; ++bank)
            idx[bank] = bankIndex(bank, line);
        cacheTags_[slot] = key;
    }
    return idx;
}

void
Signature::insert(sim::Addr line_addr)
{
    const std::uint32_t *idx = cachedIndexes(line_addr);
    for (std::uint32_t bank = 0; bank < banks_; ++bank) {
        const std::size_t bit =
            static_cast<std::size_t>(bank) * bitsPerBank_ + idx[bank];
        const std::uint64_t mask = 1ULL << (bit % 64);
        if (!(bits_[bit / 64] & mask)) {
            bits_[bit / 64] |= mask;
            ++population_;
        }
    }
}

bool
Signature::mightContain(sim::Addr line_addr) const
{
    if (population_ == 0)
        return false;
    const std::uint64_t key = line_addr / sim::kLineBytes;
    const std::uint32_t slot =
        static_cast<std::uint32_t>(key) & (kIndexCacheSlots - 1);
    std::uint32_t *idx = &cacheIdx_[static_cast<std::size_t>(slot) * banks_];
    if (cacheTags_[slot] == key) {
        for (std::uint32_t bank = 0; bank < banks_; ++bank) {
            const std::size_t bit =
                static_cast<std::size_t>(bank) * bitsPerBank_ + idx[bank];
            if (!(bits_[bit / 64] & (1ULL << (bit % 64))))
                return false;
        }
        return true;
    }
    // Cache miss: compute bank indexes lazily so a clear bit in an
    // early bank short-circuits the remaining H3 hashes. An early exit
    // leaves the slot's index array partially overwritten, so the tag
    // must be dropped; it is (re)published only when all banks were
    // computed.
    for (std::uint32_t bank = 0; bank < banks_; ++bank) {
        idx[bank] = bankIndex(bank, line_addr);
        const std::size_t bit =
            static_cast<std::size_t>(bank) * bitsPerBank_ + idx[bank];
        if (!(bits_[bit / 64] & (1ULL << (bit % 64)))) {
            cacheTags_[slot] = kNoCachedLine;
            return false;
        }
    }
    cacheTags_[slot] = key;
    return true;
}

void
Signature::clear()
{
    if (population_ == 0)
        return;
    std::fill(bits_.begin(), bits_.end(), 0);
    population_ = 0;
}

std::uint32_t
Signature::sizeBits() const
{
    return banks_ * bitsPerBank_;
}

} // namespace rr::rnr
