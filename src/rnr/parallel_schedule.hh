/**
 * @file
 * Parallel replay scheduling over dependency-recorded logs (Section
 * 3.6: pairing RelaxReplay with an interval ordering that admits
 * parallel replay, as Cyrus and Karma do for chunks).
 *
 * With recordDependencies enabled, every interval carries explicit
 * predecessor edges; together with each core's implicit program order
 * they form a DAG. Replaying intervals in *any* topological order of
 * that DAG reproduces the recorded execution (verified by the
 * integration tests), so the cores of the replay machine can work on
 * independent intervals concurrently.
 *
 * buildParallelSchedule() computes, with the ReplayCostModel:
 *  - a list-schedule in which every core replays its own intervals in
 *    order, starting each as soon as its cross-core predecessors
 *    finish (the parallel replay the paper alludes to);
 *  - the resulting makespan, the total (sequential) work, and the
 *    available speedup.
 */

#ifndef RR_RNR_PARALLEL_SCHEDULE_HH
#define RR_RNR_PARALLEL_SCHEDULE_HH

#include <cstdint>
#include <vector>

#include "rnr/log.hh"
#include "rnr/replay_cost.hh"
#include "sim/types.hh"

namespace rr::rnr
{

/** One interval instance in a schedule. */
struct ScheduledInterval
{
    sim::CoreId core;
    std::uint32_t index;
    std::uint64_t cost = 0;   ///< replay cycles (user + os)
    std::uint64_t start = 0;  ///< earliest start respecting the DAG
    std::uint64_t finish = 0; ///< start + cost
};

struct ParallelSchedule
{
    /** Topological execution order (sorted by start time). */
    std::vector<ScheduledInterval> order;
    /** Parallel replay cycles (cores replay concurrently). */
    std::uint64_t makespan = 0;
    /** Sequential replay cycles (sum of all interval costs). */
    std::uint64_t totalWork = 0;
    /** Total recorded dependency edges. */
    std::uint64_t edges = 0;

    double
    speedup() const
    {
        return makespan ? static_cast<double>(totalWork) /
                              static_cast<double>(makespan)
                        : 1.0;
    }
};

/**
 * Build the parallel schedule for a set of patched, dependency-
 * recorded core logs. Logs without recorded dependencies are legal
 * (the schedule then only honors per-core order, which is NOT
 * sufficient for correct replay — use it only for upper-bound
 * analysis).
 */
ParallelSchedule
buildParallelSchedule(const std::vector<CoreLog> &patched_logs,
                      const ReplayCostModel &model = {});

/** Replay cycles of one interval under the cost model. */
std::uint64_t intervalReplayCost(const IntervalRecord &iv,
                                 const ReplayCostModel &model);

} // namespace rr::rnr

#endif // RR_RNR_PARALLEL_SCHEDULE_HH
