/**
 * @file
 * The log "patching" step (paper Section 3.3.2): every ReorderedStore
 * (and ReorderedAtomic) entry is moved from the interval where the store
 * was counted to the end of the interval where it performed — `offset`
 * intervals earlier — as a PatchedStore; a Dummy entry remains at the
 * counting site so the replayer skips the store instruction there. The
 * paper allows this as an off-line pass or on-the-fly during log
 * reading; we implement it as an off-line pass over the structured log.
 */

#ifndef RR_RNR_PATCHER_HH
#define RR_RNR_PATCHER_HH

#include "rnr/log.hh"

namespace rr::rnr
{

/** True if @p log contains no entries that still need patching. */
bool isPatched(const CoreLog &log);

/** Produce the replay-ready form of a recorded core log. */
CoreLog patch(const CoreLog &recorded);

} // namespace rr::rnr

#endif // RR_RNR_PATCHER_HH
