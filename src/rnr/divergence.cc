#include "rnr/divergence.hh"

#include <sstream>

#include "sim/logging.hh"

namespace rr::rnr
{

std::string
DivergenceReport::format() const
{
    std::ostringstream os;
    os << "replay divergence at core " << core << ", interval "
       << intervalIndex << " (timestamp " << timestamp
       << ", replay position " << orderPosition << "), entry "
       << entryIndex << ", pc " << pc << "\n";
    os << "  log entry: " << toString(entry.kind);
    switch (entry.kind) {
      case EntryKind::InorderBlock:
        os << " block=" << entry.blockSize;
        break;
      case EntryKind::ReorderedLoad:
      case EntryKind::DummyAtomic:
        os << " value=" << entry.loadValue;
        break;
      case EntryKind::ReorderedStore:
      case EntryKind::PatchedStore:
        os << sim::strfmt(" addr=0x%llx value=%llu",
                          static_cast<unsigned long long>(entry.addr),
                          static_cast<unsigned long long>(
                              entry.storeValue));
        break;
      case EntryKind::ReorderedAtomic:
        os << sim::strfmt(" addr=0x%llx old=%llu new=%llu",
                          static_cast<unsigned long long>(entry.addr),
                          static_cast<unsigned long long>(entry.loadValue),
                          static_cast<unsigned long long>(
                              entry.storeValue));
        break;
      default:
        break;
    }
    os << "\n  expected: " << expected << "\n  actual:   " << actual
       << "\n";
    if (!predecessors.empty()) {
        os << "  interval ordering: after";
        for (const IntervalDep &d : predecessors)
            os << " core" << d.core << "#" << d.isn;
        os << "\n";
    }
    if (!recentSteps.empty()) {
        os << "  last replay steps (oldest first):\n";
        for (const ReplayStep &s : recentSteps) {
            os << sim::strfmt("    core %u iv %u entry %u %-15s pc=%llu "
                              "value=%llu addr=0x%llx\n",
                              s.core, s.interval, s.entry,
                              toString(s.kind),
                              static_cast<unsigned long long>(s.pc),
                              static_cast<unsigned long long>(s.value),
                              static_cast<unsigned long long>(s.addr));
        }
    }
    return os.str();
}

ReplayDivergence::ReplayDivergence(DivergenceReport report)
    : std::runtime_error(report.format()), report_(std::move(report))
{
}

} // namespace rr::rnr
