#include "rnr/logstore.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "sim/arena.hh"
#include "sim/faultinject.hh"
#include "sim/jobs.hh"
#include "sim/logging.hh"
#include "sim/task_pool.hh"
#include "sim/trace.hh"

namespace rr::rnr
{

namespace
{

using fmt::ChunkType;

std::string
formatError(const std::string &message, std::uint64_t offset,
            std::int64_t chunk_seq, int os_error)
{
    char loc[96];
    if (chunk_seq >= 0)
        std::snprintf(loc, sizeof loc,
                      " (file offset %" PRIu64 ", chunk %" PRId64 ")",
                      offset, chunk_seq);
    else
        std::snprintf(loc, sizeof loc, " (file offset %" PRIu64 ")",
                      offset);
    std::string text = message;
    if (os_error != 0)
        text += std::string(": ") + std::strerror(os_error);
    return text + loc;
}

/** Instant "fault"-category trace event for a log-store I/O incident. */
void
traceIo(const char *name, std::uint64_t file_offset)
{
    if (sim::TraceSink::enabled())
        sim::TraceSink::get()->instant(sim::TraceSink::kRecordPid, 0,
                                       "fault", name, file_offset,
                                       {{"offset", file_offset}});
}

/** FNV-1a 64-bit. */
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t
fnv1a(std::uint64_t hash, const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= p[i];
        hash *= kFnvPrime;
    }
    return hash;
}

std::uint64_t
fnv1aU64(std::uint64_t hash, std::uint64_t v)
{
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return fnv1a(hash, b, sizeof b);
}

/**
 * Bounds-checked bitstream cursor over one chunk payload: every decode
 * failure becomes a LogStoreError naming the chunk, never an assertion
 * or an out-of-range read.
 */
class Cursor
{
  public:
    Cursor(const std::uint8_t *bytes, std::uint64_t bits,
           std::uint64_t chunk_offset, std::int64_t chunk_seq)
        : reader_(bytes, bits), bits_(bits), chunkOffset_(chunk_offset),
          chunkSeq_(chunk_seq)
    {
    }

    Cursor(std::span<const std::uint8_t> bytes, std::uint64_t bits,
           std::uint64_t chunk_offset, std::int64_t chunk_seq)
        : Cursor(bytes.data(), bits, chunk_offset, chunk_seq)
    {
    }

    /** Bits left in the payload; bounds untrusted element counts. */
    std::uint64_t
    remainingBits() const
    {
        return bits_ - reader_.position();
    }

    std::uint64_t
    read(std::uint32_t width)
    {
        if (reader_.position() + width > bits_)
            fail("payload ends mid-field");
        return reader_.read(width);
    }

    std::uint64_t
    varint()
    {
        std::uint64_t v = 0;
        for (std::uint32_t g = 0; g < fmt::kMaxVarintGroups; ++g) {
            const std::uint64_t group = read(8);
            v |= (group & 0x7f) << (7 * g);
            if (!(group & 0x80))
                return v;
        }
        fail("varint longer than 10 groups");
    }

    bool atEnd() const { return reader_.position() >= bits_; }
    std::uint64_t position() const { return reader_.position(); }

    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw LogStoreError(
            "corrupt chunk payload: " + what + " at payload bit " +
                std::to_string(reader_.position()),
            chunkOffset_, chunkSeq_);
    }

  private:
    BitReader reader_;
    std::uint64_t bits_;
    std::uint64_t chunkOffset_;
    std::int64_t chunkSeq_;
};

void
encodeMeta(BitWriter &w, const RecordingMeta &meta)
{
    fmt::writeVarint(w, meta.kernel.size());
    for (char c : meta.kernel)
        w.write(static_cast<std::uint8_t>(c), 8);
    fmt::writeVarint(w, meta.cores);
    fmt::writeVarint(w, meta.scale);
    fmt::writeVarint(w, meta.intensity);
    fmt::writeVarint(w, meta.workloadSeed);
    fmt::writeVarint(w, meta.machineSeed);
    fmt::writeVarint(w, meta.mode == sim::RecorderMode::Opt ? 1 : 0);
    fmt::writeVarint(w, meta.intervalCap);
    fmt::writeVarint(w, meta.deps ? 1 : 0);
    // Trailing, only-when-set field: snoopy recordings stay bit- and
    // fingerprint-identical to pre-directory files.
    if (meta.coherence == sim::CoherenceKind::Directory)
        fmt::writeVarint(w, 1);
}

RecordingMeta
decodeMeta(Cursor &c)
{
    RecordingMeta meta;
    const std::uint64_t name_len = c.varint();
    if (name_len > 4096)
        c.fail("unreasonable kernel-name length");
    meta.kernel.reserve(name_len);
    for (std::uint64_t i = 0; i < name_len; ++i)
        meta.kernel.push_back(static_cast<char>(c.read(8)));
    meta.cores = static_cast<std::uint32_t>(c.varint());
    meta.scale = c.varint();
    meta.intensity = c.varint();
    meta.workloadSeed = c.varint();
    meta.machineSeed = c.varint();
    meta.mode = c.varint() ? sim::RecorderMode::Opt
                           : sim::RecorderMode::Base;
    meta.intervalCap = c.varint();
    meta.deps = c.varint() != 0;
    meta.coherence = !c.atEnd() && c.varint()
                         ? sim::CoherenceKind::Directory
                         : sim::CoherenceKind::Snoopy;
    return meta;
}

void
encodeSummary(BitWriter &w, const RecordingSummary &s)
{
    fmt::writeVarint(w, s.totalInstructions);
    fmt::writeVarint(w, s.cycles);
    fmt::writeVarint(w, s.memoryFingerprint);
    fmt::writeVarint(w, s.cores.size());
    for (const auto &core : s.cores) {
        fmt::writeVarint(w, core.intervals);
        fmt::writeVarint(w, core.retiredInstructions);
        fmt::writeVarint(w, core.retiredLoads);
        fmt::writeVarint(w, core.loadValueHash);
    }
}

RecordingSummary
decodeSummary(Cursor &c)
{
    RecordingSummary s;
    s.totalInstructions = c.varint();
    s.cycles = c.varint();
    s.memoryFingerprint = c.varint();
    const std::uint64_t n = c.varint();
    if (n > 1u << 20)
        c.fail("unreasonable summary core count");
    for (std::uint64_t i = 0; i < n; ++i) {
        CoreReplaySummary core;
        core.intervals = c.varint();
        core.retiredInstructions = c.varint();
        core.retiredLoads = c.varint();
        core.loadValueHash = c.varint();
        s.cores.push_back(core);
    }
    return s;
}

/** Decode one entry's tag and fields (shared by every decode path, so
 *  the sequential and parallel readers fail byte-identically). */
void
decodeEntry(Cursor &c, LogEntry &entry)
{
    const std::uint64_t tag = c.read(bits::kTypeTag);
    if (tag > static_cast<std::uint64_t>(EntryKind::DummyAtomic))
        c.fail("invalid entry tag " + std::to_string(tag));
    entry.kind = static_cast<EntryKind>(tag);
    switch (entry.kind) {
      case EntryKind::InorderBlock:
        entry.blockSize = c.varint();
        break;
      case EntryKind::ReorderedLoad:
        entry.loadValue = c.varint();
        break;
      case EntryKind::ReorderedStore:
        entry.addr = c.varint();
        entry.storeValue = c.varint();
        entry.offset = static_cast<std::uint32_t>(c.varint());
        break;
      case EntryKind::ReorderedAtomic:
        entry.addr = c.varint();
        entry.loadValue = c.varint();
        entry.storeValue = c.varint();
        entry.offset = static_cast<std::uint32_t>(c.varint());
        break;
      case EntryKind::PatchedStore:
        entry.addr = c.varint();
        entry.storeValue = c.varint();
        break;
      case EntryKind::DummyStore:
        break;
      case EntryKind::DummyAtomic:
        entry.loadValue = c.varint();
        break;
    }
}

/** An untrusted element count must be satisfiable by the bits left in
 *  the chunk, or reserve()/allocArray() on it is a memory bomb. */
std::uint64_t
checkedCount(Cursor &c, std::uint32_t min_bits_each, const char *what)
{
    const std::uint64_t count = c.varint();
    if (count > c.remainingBits() / min_bits_each)
        c.fail(std::string("unreasonable ") + what + " count " +
               std::to_string(count));
    return count;
}

/** Every entry carries at least its 3-bit tag. */
constexpr std::uint32_t kMinEntryBits = bits::kTypeTag;
/** A dependency edge is two varints: >= 16 bits. */
constexpr std::uint32_t kMinDepBits = 16;
/** An empty interval is 4 one-group varints: >= 32 bits. */
constexpr std::uint32_t kMinIntervalBits = 32;

/** Decode the cisn/timestamp frame (absolute for the first interval
 *  of a chunk, zigzag deltas after). */
void
decodeFrame(Cursor &c, bool first_in_chunk, sim::Isn &prev_cisn,
            std::uint64_t &prev_ts, IntervalRecord &iv)
{
    if (first_in_chunk) {
        iv.cisn = c.varint();
        iv.timestamp = c.varint();
    } else {
        iv.cisn = static_cast<sim::Isn>(
            static_cast<std::int64_t>(prev_cisn) +
            fmt::unzigzag(c.varint()));
        iv.timestamp = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(prev_ts) +
            fmt::unzigzag(c.varint()));
    }
    prev_cisn = iv.cisn;
    prev_ts = iv.timestamp;
}

/** Decode one interval (the inverse of LogWriter::encodeInterval). */
IntervalRecord
decodeInterval(Cursor &c, bool first_in_chunk, sim::Isn &prev_cisn,
               std::uint64_t &prev_ts)
{
    IntervalRecord iv;
    const std::uint64_t entry_count =
        checkedCount(c, kMinEntryBits, "entry");
    iv.entries.reserve(entry_count);
    for (std::uint64_t e = 0; e < entry_count; ++e) {
        LogEntry entry;
        decodeEntry(c, entry);
        iv.entries.push_back(entry);
    }
    decodeFrame(c, first_in_chunk, prev_cisn, prev_ts, iv);
    const std::uint64_t dep_count = checkedCount(c, kMinDepBits, "dependency");
    if (dep_count > 1u << 20)
        c.fail("unreasonable dependency count");
    iv.predecessors.reserve(dep_count);
    for (std::uint64_t d = 0; d < dep_count; ++d) {
        IntervalDep dep;
        dep.core = static_cast<sim::CoreId>(c.varint());
        dep.isn = c.varint();
        iv.predecessors.push_back(dep);
    }
    return iv;
}

/**
 * Arena-staged variant for the parallel decoder: entries and edges are
 * decoded into bump-allocated scratch arrays (LogEntry and IntervalDep
 * are trivially copyable PODs), then bulk-assigned into the interval's
 * vectors — one exact-size allocation per field, no growth reallocs,
 * no per-object heap traffic during the decode itself. Field order,
 * caps and failure text are shared with decodeInterval(), so the two
 * paths are bit- and error-identical by construction.
 */
void
decodeIntervalArena(Cursor &c, bool first_in_chunk, sim::Isn &prev_cisn,
                    std::uint64_t &prev_ts, sim::Arena &arena,
                    IntervalRecord &iv)
{
    const std::uint64_t entry_count =
        checkedCount(c, kMinEntryBits, "entry");
    LogEntry *entries = arena.allocArray<LogEntry>(entry_count);
    for (std::uint64_t e = 0; e < entry_count; ++e) {
        entries[e] = LogEntry{};
        decodeEntry(c, entries[e]);
    }
    decodeFrame(c, first_in_chunk, prev_cisn, prev_ts, iv);
    const std::uint64_t dep_count = checkedCount(c, kMinDepBits, "dependency");
    if (dep_count > 1u << 20)
        c.fail("unreasonable dependency count");
    IntervalDep *deps = arena.allocArray<IntervalDep>(dep_count);
    for (std::uint64_t d = 0; d < dep_count; ++d) {
        deps[d].core = static_cast<sim::CoreId>(c.varint());
        deps[d].isn = c.varint();
    }
    if (entry_count != 0)
        iv.entries.assign(entries, entries + entry_count);
    if (dep_count != 0)
        iv.predecessors.assign(deps, deps + dep_count);
}

} // namespace

LogStoreError::LogStoreError(const std::string &message,
                             std::uint64_t file_offset,
                             std::int64_t chunk_seq, LogErrorKind kind,
                             int os_error)
    : std::runtime_error(
          formatError(message, file_offset, chunk_seq, os_error)),
      fileOffset_(file_offset), chunkSeq_(chunk_seq), kind_(kind),
      osError_(os_error)
{
}

std::uint64_t
RecordingMeta::fingerprint() const
{
    std::uint64_t h = kFnvOffset;
    h = fnv1aU64(h, fmt::kFormatVersion);
    h = fnv1a(h, kernel.data(), kernel.size());
    h = fnv1aU64(h, cores);
    h = fnv1aU64(h, scale);
    h = fnv1aU64(h, intensity);
    h = fnv1aU64(h, workloadSeed);
    h = fnv1aU64(h, machineSeed);
    h = fnv1aU64(h, mode == sim::RecorderMode::Opt ? 1 : 0);
    h = fnv1aU64(h, intervalCap);
    h = fnv1aU64(h, deps ? 1 : 0);
    // Chained only when set, so snoopy fingerprints match pre-directory
    // files; a directory-tagged log can never pass for a snoopy one.
    if (coherence == sim::CoherenceKind::Directory)
        h = fnv1aU64(h, 2);
    return h;
}

// --- LogWriter ---

namespace
{

/** Serialize the 24-byte file header. */
std::vector<std::uint8_t>
headerBytes(const RecordingMeta &meta, std::uint16_t flags)
{
    std::vector<std::uint8_t> h;
    h.reserve(fmt::kFileHeaderBytes);
    for (char c : fmt::kMagic)
        h.push_back(static_cast<std::uint8_t>(c));
    fmt::putU16(h, fmt::kFormatVersion);
    fmt::putU16(h, flags);
    fmt::putU64(h, meta.fingerprint());
    fmt::putU32(h, meta.cores);
    fmt::putU32(h, fmt::crc32(h.data(), h.size()));
    return h;
}

/**
 * Fold an installed fault plan's log budget into the options and
 * mirror the meta's coherence tag into the header flags.
 */
WriterOptions
effectiveOptions(WriterOptions opts, const RecordingMeta &meta)
{
    if (meta.coherence == sim::CoherenceKind::Directory)
        opts.headerFlags |= fmt::kFlagDirectory;
    if (sim::FaultInjector::enabled()) {
        const auto budget =
            sim::FaultInjector::get()->plan().logBudgetBytes;
        if (budget != 0 &&
            (opts.budgetBytes == 0 || budget < opts.budgetBytes))
            opts.budgetBytes = budget;
    }
    return opts;
}

} // namespace

LogWriter::LogWriter(std::ostream &out, const RecordingMeta &meta,
                     const WriterOptions &opts)
    : stream_(&out), meta_(meta), opts_(effectiveOptions(opts, meta)),
      headerFlags_(opts_.headerFlags), streams_(meta.cores),
      stats_("logstore")
{
    writeFileHeader();
    writeMetaChunk();
}

LogWriter::LogWriter(const std::string &path, const RecordingMeta &meta,
                     const WriterOptions &opts)
    : path_(path), tmpPath_(path + ".tmp"), meta_(meta),
      opts_(effectiveOptions(opts, meta)), headerFlags_(opts_.headerFlags),
      streams_(meta.cores), stats_("logstore")
{
    file_ = std::fopen(tmpPath_.c_str(), "wb");
    if (!file_)
        throw LogStoreError("cannot open " + tmpPath_ + " for writing",
                            0, -1, LogErrorKind::Io, errno);
    writeFileHeader();
    writeMetaChunk();
}

LogWriter::~LogWriter()
{
    // An unfinished path-mode writer leaves its .tmp staging file on
    // disk: that is the crash picture `rrlog repair` salvages from.
    // Only finish()/finishPartial() rename onto the final path.
    if (file_)
        std::fclose(file_);
}

void
LogWriter::writeRaw(const void *data, std::size_t n)
{
    if (dead_)
        throw LogStoreError("log file already torn by an injected crash",
                            bytesWritten_, -1, LogErrorKind::Crash);
    const auto *p = static_cast<const std::uint8_t *>(data);
    if (stream_) {
        // Stream mode: the simple in-memory path, no fault machinery.
        stream_->write(reinterpret_cast<const char *>(p),
                       static_cast<std::streamsize>(n));
        if (!*stream_)
            throw LogStoreError("write failed", bytesWritten_, -1,
                                LogErrorKind::Io, errno);
        bytesWritten_ += n;
        return;
    }
    std::size_t done = 0;
    std::uint32_t attempts = 0;
    std::uint32_t backoff_us = opts_.retryBackoffUs;
    while (done < n) {
        std::size_t want = n - done;
        int err = 0;
        bool crash = false;
        if (sim::FaultInjector::enabled()) {
            const auto outcome =
                sim::FaultInjector::get()->onWrite(bytesWritten_, want);
            using Kind = sim::FaultInjector::IoOutcome::Kind;
            switch (outcome.kind) {
              case Kind::None:
                break;
              case Kind::ShortWrite:
                want = outcome.maxBytes;
                stats_.counter("io_short_writes")++;
                traceIo("io-short-write", bytesWritten_);
                break;
              case Kind::Error:
                err = outcome.err;
                break;
              case Kind::Crash:
                crash = true;
                want = outcome.maxBytes;
                break;
            }
        }
        std::size_t wrote = 0;
        if (err == 0 && want != 0) {
            wrote = std::fwrite(p + done, 1, want, file_);
            if (wrote < want)
                err = errno != 0 ? errno : EIO;
        }
        done += wrote;
        bytesWritten_ += wrote;
        if (crash) {
            // Simulated power-cut: whatever fwrite committed may reach
            // the disk, nothing else ever will. The file object stays
            // open (the destructor keeps the torn .tmp) but every
            // further write on this writer is refused.
            dead_ = true;
            std::fflush(file_);
            stats_.counter("injected_crashes")++;
            traceIo("io-crash", bytesWritten_);
            throw LogStoreError(
                "injected crash tore the log after " +
                    std::to_string(bytesWritten_) +
                    " bytes; torn file left at " + tmpPath_,
                bytesWritten_, -1, LogErrorKind::Crash);
        }
        if (err != 0) {
            stats_.counter("io_retries")++;
            traceIo("io-retry", bytesWritten_);
            if (++attempts >= opts_.maxIoAttempts)
                throw LogStoreError("write failed on " + tmpPath_ +
                                        " after " +
                                        std::to_string(attempts) +
                                        " attempts",
                                    bytesWritten_, -1, LogErrorKind::Io,
                                    err);
            std::clearerr(file_);
            std::this_thread::sleep_for(
                std::chrono::microseconds(backoff_us));
            backoff_us *= 2;
        }
        // An injected short write commits a prefix without error; the
        // loop simply resumes at the first unwritten byte.
    }
}

void
LogWriter::syncFile(const char *what)
{
    if (stream_) {
        stream_->flush();
        if (!*stream_)
            throw LogStoreError(std::string(what) + ": flush failed",
                                bytesWritten_, -1, LogErrorKind::Io,
                                errno);
        return;
    }
    std::uint32_t attempts = 0;
    std::uint32_t backoff_us = opts_.retryBackoffUs;
    for (;;) {
        int err = 0;
        if (sim::FaultInjector::enabled())
            err = sim::FaultInjector::get()->onSync();
        if (err == 0) {
            if (std::fflush(file_) != 0)
                err = errno != 0 ? errno : EIO;
            else if (fsync(fileno(file_)) != 0)
                err = errno != 0 ? errno : EIO;
        }
        if (err == 0)
            return;
        stats_.counter("sync_retries")++;
        traceIo("sync-retry", bytesWritten_);
        if (++attempts >= opts_.maxIoAttempts)
            throw LogStoreError(std::string(what) + " failed on " +
                                    tmpPath_ + " after " +
                                    std::to_string(attempts) +
                                    " attempts",
                                bytesWritten_, -1, LogErrorKind::Io,
                                err);
        std::clearerr(file_);
        std::this_thread::sleep_for(
            std::chrono::microseconds(backoff_us));
        backoff_us *= 2;
    }
}

void
LogWriter::writeFileHeader()
{
    const auto h = headerBytes(meta_, headerFlags_);
    writeRaw(h.data(), h.size());
}

void
LogWriter::rewriteHeader()
{
    const auto h = headerBytes(meta_, headerFlags_);
    if (stream_) {
        stream_->flush();
        stream_->seekp(0);
        if (!*stream_) {
            // Non-seekable sink (e.g. a pipe): the body is still
            // complete, only the partial flag is lost.
            stream_->clear();
            sim::warn("log stream is not seekable; "
                      "partial flag not recorded in the header");
            return;
        }
        stream_->write(reinterpret_cast<const char *>(h.data()),
                       static_cast<std::streamsize>(h.size()));
        stream_->seekp(0, std::ios::end);
        return;
    }
    if (std::fflush(file_) != 0 ||
        std::fseek(file_, 0, SEEK_SET) != 0)
        throw LogStoreError("cannot seek to rewrite the header on " +
                                tmpPath_,
                            0, -1, LogErrorKind::Io, errno);
    if (std::fwrite(h.data(), 1, h.size(), file_) != h.size())
        throw LogStoreError("header rewrite failed on " + tmpPath_, 0,
                            -1, LogErrorKind::Io, errno);
    if (std::fseek(file_, 0, SEEK_END) != 0)
        throw LogStoreError("cannot seek back after header rewrite on " +
                                tmpPath_,
                            0, -1, LogErrorKind::Io, errno);
}

void
LogWriter::writeMetaChunk()
{
    BitWriter w;
    encodeMeta(w, meta_);
    writeChunk(ChunkType::Meta, 0, w.bytes(), w.bitCount());
}

void
LogWriter::writeChunk(ChunkType type, std::uint32_t core,
                      const std::vector<std::uint8_t> &payload,
                      std::uint64_t payload_bits)
{
    fmt::ChunkHeader h;
    h.type = type;
    h.core = core;
    h.seq = nextChunkSeq_++;
    h.payloadBits = payload_bits;
    h.payloadCrc = fmt::crc32(payload.data(), payload.size());
    const auto encoded = h.encode();
    writeRaw(encoded.data(), encoded.size());
    writeRaw(payload.data(), payload.size());
    stats_.counter("chunks_written")++;
    stats_.counter("bytes_written") += encoded.size() + payload.size();
    // Bits lost to byte-aligning the payload: recoverable by a
    // bit-contiguous (compressed) framing, hence "compression-eligible".
    stats_.counter("padding_bits") += payload.size() * 8 - payload_bits;
    stats_.counter("payload_bits") += payload_bits;
}

void
LogWriter::encodeInterval(CoreStream &cs, const IntervalRecord &iv)
{
    BitWriter &w = cs.bits;
    fmt::writeVarint(w, iv.entries.size());
    for (const auto &e : iv.entries) {
        w.write(static_cast<std::uint64_t>(e.kind), bits::kTypeTag);
        switch (e.kind) {
          case EntryKind::InorderBlock:
            fmt::writeVarint(w, e.blockSize);
            break;
          case EntryKind::ReorderedLoad:
            fmt::writeVarint(w, e.loadValue);
            break;
          case EntryKind::ReorderedStore:
            fmt::writeVarint(w, e.addr);
            fmt::writeVarint(w, e.storeValue);
            fmt::writeVarint(w, e.offset);
            break;
          case EntryKind::ReorderedAtomic:
            fmt::writeVarint(w, e.addr);
            fmt::writeVarint(w, e.loadValue);
            fmt::writeVarint(w, e.storeValue);
            fmt::writeVarint(w, e.offset);
            break;
          case EntryKind::PatchedStore:
            fmt::writeVarint(w, e.addr);
            fmt::writeVarint(w, e.storeValue);
            break;
          case EntryKind::DummyStore:
            break;
          case EntryKind::DummyAtomic:
            fmt::writeVarint(w, e.loadValue);
            break;
        }
    }
    if (cs.first) {
        fmt::writeVarint(w, iv.cisn);
        fmt::writeVarint(w, iv.timestamp);
        cs.first = false;
    } else {
        fmt::writeVarint(
            w, fmt::zigzag(static_cast<std::int64_t>(iv.cisn) -
                           static_cast<std::int64_t>(cs.prevCisn)));
        fmt::writeVarint(
            w, fmt::zigzag(static_cast<std::int64_t>(iv.timestamp) -
                           static_cast<std::int64_t>(cs.prevTimestamp)));
    }
    cs.prevCisn = iv.cisn;
    cs.prevTimestamp = iv.timestamp;
    fmt::writeVarint(w, iv.predecessors.size());
    for (const auto &d : iv.predecessors) {
        fmt::writeVarint(w, d.core);
        fmt::writeVarint(w, d.isn);
    }
}

void
LogWriter::append(sim::CoreId core, const IntervalRecord &interval)
{
    RR_ASSERT(!finished_, "append after finish");
    RR_ASSERT(core < streams_.size(), "core %u out of range", core);
    if (budgetExceeded_) {
        stats_.counter("intervals_dropped_budget")++;
        return;
    }
    CoreStream &cs = streams_[core];
    encodeInterval(cs, interval);
    ++cs.intervals;
    ++intervalsWritten_;
    stats_.counter("intervals_written")++;
    if (opts_.budgetBytes != 0) {
        // Projected final size if we stopped now: what is on disk, every
        // pending chunk with its framing, and Summary + End headroom.
        std::uint64_t projected =
            bytesWritten_ + 2 * fmt::kChunkHeaderBytes + 256;
        for (const auto &s : streams_)
            if (s.intervals != 0)
                projected +=
                    fmt::kChunkHeaderBytes + s.bits.bytes().size();
        if (projected > opts_.budgetBytes) {
            // Over budget: land every pending chunk once and drop all
            // further intervals. Flushing rather than discarding keeps
            // the on-disk set exactly "every interval closed so far" —
            // a cross-core-consistent close-order prefix that replays
            // without a consistent-cut trim — at the cost of a bounded
            // overshoot (the pending chunks the projection counted).
            for (sim::CoreId c = 0; c < streams_.size(); ++c)
                flushCore(c);
            budgetExceeded_ = true;
            markPartial();
            stats_.counter("budget_exceeded")++;
            traceIo("log-budget-exceeded", bytesWritten_);
            if (sim::FaultInjector::enabled())
                sim::FaultInjector::get()->noteDegradation(
                    "log_budget_exceeded");
            sim::warn("log budget of %llu bytes reached at %llu bytes "
                      "written: dropping further intervals, file will "
                      "be flagged partial",
                      static_cast<unsigned long long>(opts_.budgetBytes),
                      static_cast<unsigned long long>(bytesWritten_));
            return;
        }
    }
    if (cs.bits.bytes().size() >= opts_.chunkTargetBytes)
        flushCore(core);
}

void
LogWriter::flushCore(sim::CoreId core)
{
    CoreStream &cs = streams_[core];
    if (cs.intervals == 0)
        return;
    // Data payload: varint interval count, then the intervals.
    BitWriter framed;
    fmt::writeVarint(framed, cs.intervals);
    const auto &body = cs.bits.bytes();
    // Splice the already-encoded interval stream after the count. The
    // count is byte-aligned (whole varint groups), so this is a byte
    // append plus a final bit-count fixup.
    std::vector<std::uint8_t> payload = framed.bytes();
    payload.insert(payload.end(), body.begin(), body.end());
    const std::uint64_t payload_bits =
        framed.bitCount() + cs.bits.bitCount();
    // The interval stream's own padding (none: varints and the 3-bit
    // tags pack back to back, so bitCount is exact).
    writeChunk(ChunkType::Data, core, payload, payload_bits);
    stats_.counter("flushes")++;
    cs = CoreStream{};
}

void
LogWriter::finish(const RecordingSummary &summary)
{
    finishCommon(&summary);
}

void
LogWriter::finishPartial(const RecordingSummary *summary)
{
    markPartial();
    finishCommon(summary);
}

void
LogWriter::finishCommon(const RecordingSummary *summary)
{
    RR_ASSERT(!finished_, "finish twice");
    for (sim::CoreId c = 0; c < streams_.size(); ++c)
        flushCore(c);
    if (summary) {
        BitWriter w;
        encodeSummary(w, *summary);
        writeChunk(ChunkType::Summary, 0, w.bytes(), w.bitCount());
    }
    writeChunk(ChunkType::End, 0, {}, 0);
    // The flags written at construction came from opts_.headerFlags; a
    // later markPartial() (budget, finishPartial) means the on-disk
    // header is stale and must be patched before the file is sealed.
    if (headerFlags_ != opts_.headerFlags)
        rewriteHeader();
    syncFile("finish flush");
    finalizeFile();
    finished_ = true;
}

void
LogWriter::finalizeFile()
{
    if (!file_)
        return;
    // Close, then atomically rename the fsync'd staging file onto the
    // final path: a reader can never observe a half-written file under
    // the final name, no matter when the process dies.
    std::FILE *f = file_;
    file_ = nullptr;
    if (std::fclose(f) != 0)
        throw LogStoreError("fclose failed on " + tmpPath_,
                            bytesWritten_, -1, LogErrorKind::Io, errno);
    if (std::rename(tmpPath_.c_str(), path_.c_str()) != 0)
        throw LogStoreError("cannot rename " + tmpPath_ + " to " + path_,
                            bytesWritten_, -1, LogErrorKind::Io, errno);
}

// --- LogReader ---

void
LogReader::setupIngest(IngestMode mode)
{
    if (mode != IngestMode::Streamed) {
        const int fd = ::open(path_.c_str(), O_RDONLY);
        if (fd < 0) {
            if (mode == IngestMode::Mmap)
                throw LogStoreError("cannot open " + path_ +
                                        " for reading",
                                    0, -1, LogErrorKind::Io, errno);
            // Auto: fall through to the streamed open below, which
            // reports the error with its own (identical) message.
        } else {
            struct stat st = {};
            if (::fstat(fd, &st) == 0 && st.st_size > 0) {
                void *m = ::mmap(nullptr,
                                 static_cast<std::size_t>(st.st_size),
                                 PROT_READ, MAP_PRIVATE, fd, 0);
                if (m != MAP_FAILED) {
                    map_ = static_cast<const std::uint8_t *>(m);
                    mapBytes_ = static_cast<std::size_t>(st.st_size);
                    fd_ = fd;
                    fileBytes_ = mapBytes_;
                    mode_ = IngestMode::Mmap;
                    // Readahead hints: chunk walks are sequential, and
                    // replay wants the whole file resident anyway.
                    (void)::posix_madvise(
                        m, mapBytes_, POSIX_MADV_SEQUENTIAL);
                    (void)::posix_madvise(
                        m, mapBytes_, POSIX_MADV_WILLNEED);
                    return;
                }
            }
            ::close(fd);
            if (mode == IngestMode::Mmap)
                throw LogStoreError("cannot mmap " + path_, 0, -1,
                                    LogErrorKind::Io,
                                    errno != 0 ? errno : EINVAL);
            // Auto: unmappable (empty file, odd filesystem) — stream.
        }
    }
    in_.open(path_, std::ios::binary);
    if (!in_)
        throw LogStoreError("cannot open " + path_ + " for reading", 0,
                            -1, LogErrorKind::Io, errno);
    in_.seekg(0, std::ios::end);
    fileBytes_ = static_cast<std::uint64_t>(in_.tellg());
    in_.seekg(0);
    mode_ = IngestMode::Streamed;
}

LogReader::~LogReader()
{
    if (map_)
        ::munmap(const_cast<std::uint8_t *>(map_), mapBytes_);
    if (fd_ >= 0)
        ::close(fd_);
}

void
LogReader::readBytesAt(std::uint64_t offset, std::uint8_t *dest,
                       std::size_t n)
{
    if (map_) {
        std::memcpy(dest, map_ + offset, n);
        return;
    }
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(offset));
    in_.read(reinterpret_cast<char *>(dest),
             static_cast<std::streamsize>(n));
    if (!in_)
        throw LogStoreError("read failed", offset, -1, LogErrorKind::Io,
                            errno);
}

LogReader::LogReader(const std::string &path, IngestMode mode)
    : path_(path)
{
    setupIngest(mode);

    std::uint8_t h[fmt::kFileHeaderBytes];
    if (fileBytes_ < fmt::kFileHeaderBytes)
        throw LogStoreError("file shorter than the 24-byte header", 0);
    readBytesAt(0, h, sizeof h);
    if (std::memcmp(h, fmt::kMagic.data(), 4) != 0)
        throw LogStoreError("bad magic: not an .rrlog file", 0);
    if (fmt::crc32(h, fmt::kFileHeaderBytes - 4) !=
        fmt::getU32(h + fmt::kFileHeaderBytes - 4))
        throw LogStoreError("file header CRC mismatch", 0);
    version_ = fmt::getU16(h + 4);
    flags_ = fmt::getU16(h + fmt::kFlagsOffset);
    if (version_ > fmt::kFormatVersion)
        throw LogStoreError(
            "format version " + std::to_string(version_) +
                " is newer than this reader (supports up to " +
                std::to_string(fmt::kFormatVersion) + ")",
            4);
    fingerprint_ = fmt::getU64(h + 8);
    coreCount_ = fmt::getU32(h + 16);

    Chunk meta_chunk;
    if (!readChunkAt(fmt::kFileHeaderBytes, meta_chunk))
        throw LogStoreError("file ends before the meta chunk",
                            fmt::kFileHeaderBytes);
    if (meta_chunk.header.type != ChunkType::Meta)
        throw LogStoreError("first chunk is not the meta chunk",
                            meta_chunk.offset, 0);
    Cursor c(meta_chunk.payload, meta_chunk.header.payloadBits,
             meta_chunk.offset, 0);
    meta_ = decodeMeta(c);
    const bool meta_dir = meta_.coherence == sim::CoherenceKind::Directory;
    if (meta_dir != ((flags_ & fmt::kFlagDirectory) != 0))
        throw LogStoreError(
            std::string("coherence tag mismatch: header flags say ") +
                (flags_ & fmt::kFlagDirectory ? "directory" : "snoopy") +
                ", meta chunk says " + sim::toString(meta_.coherence),
            meta_chunk.offset, 0);
    if (meta_.fingerprint() != fingerprint_)
        throw LogStoreError(
            "configuration fingerprint mismatch: header says " +
                std::to_string(fingerprint_) + ", meta chunk hashes to " +
                std::to_string(meta_.fingerprint()),
            meta_chunk.offset, 0);
    if (meta_.cores != coreCount_)
        throw LogStoreError("header core count disagrees with meta chunk",
                            meta_chunk.offset, 0);
    firstDataOffset_ = meta_chunk.offset + fmt::kChunkHeaderBytes +
                       meta_chunk.header.payloadBytes();
}

bool
LogReader::readChunkAt(std::uint64_t offset, Chunk &out,
                       bool verify_payload_crc)
{
    if (offset == fileBytes_)
        return false; // clean boundary; caller checks for End chunk
    if (offset + fmt::kChunkHeaderBytes > fileBytes_)
        throw LogStoreError("truncated chunk header", offset);
    const std::uint8_t *hp;
    std::uint8_t h[fmt::kChunkHeaderBytes];
    if (map_) {
        hp = map_ + offset; // header validated in place, no copy
    } else {
        in_.clear();
        in_.seekg(static_cast<std::streamoff>(offset));
        in_.read(reinterpret_cast<char *>(h), sizeof h);
        if (!in_)
            throw LogStoreError("read failed on chunk header", offset,
                                -1, LogErrorKind::Io, errno);
        hp = h;
    }
    if (!fmt::ChunkHeader::decode(hp, out.header))
        throw LogStoreError("chunk header CRC mismatch "
                            "(corrupt or misaligned framing)",
                            offset);
    out.offset = offset;
    const std::uint64_t payload_bytes = out.header.payloadBytes();
    if (offset + fmt::kChunkHeaderBytes + payload_bytes > fileBytes_)
        throw LogStoreError(
            "truncated chunk: header promises " +
                std::to_string(payload_bytes) +
                " payload bytes but the file ends first",
            offset, static_cast<std::int64_t>(out.header.seq));
    if (map_) {
        // Zero-copy: the payload view points straight into the page
        // cache; the CRC pass below is the only full touch.
        out.owned.clear();
        out.payload = std::span<const std::uint8_t>(
            map_ + offset + fmt::kChunkHeaderBytes, payload_bytes);
    } else {
        out.owned.resize(payload_bytes);
        in_.read(reinterpret_cast<char *>(out.owned.data()),
                 static_cast<std::streamsize>(payload_bytes));
        if (!in_)
            throw LogStoreError(
                "read failed on chunk payload", offset,
                static_cast<std::int64_t>(out.header.seq),
                LogErrorKind::Io, errno);
        out.payload = out.owned;
    }
    if (verify_payload_crc &&
        fmt::crc32(out.payload.data(), out.payload.size()) !=
            out.header.payloadCrc)
        throw LogStoreError("chunk payload CRC mismatch", offset,
                            static_cast<std::int64_t>(out.header.seq));
    return true;
}

void
LogReader::decodeDataChunk(
    const Chunk &chunk,
    const std::function<bool(sim::CoreId, const IntervalRecord &)> &fn)
{
    const auto seq = static_cast<std::int64_t>(chunk.header.seq);
    if (chunk.header.core >= coreCount_)
        throw LogStoreError("data chunk names core " +
                                std::to_string(chunk.header.core) +
                                " but the file has " +
                                std::to_string(coreCount_) + " cores",
                            chunk.offset, seq);
    Cursor c(chunk.payload, chunk.header.payloadBits, chunk.offset, seq);
    const std::uint64_t count =
        checkedCount(c, kMinIntervalBits, "interval");
    sim::Isn prev_cisn = 0;
    std::uint64_t prev_ts = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const IntervalRecord iv =
            decodeInterval(c, i == 0, prev_cisn, prev_ts);
        if (!fn(chunk.header.core, iv))
            return; // early stop: skip the trailing-bits check too
    }
    if (!c.atEnd())
        c.fail("trailing bits after the last interval");
}

bool
LogReader::walkIntervals(
    const std::function<bool(sim::CoreId, const IntervalRecord &,
                             const ChunkView &)> &fn)
{
    std::uint64_t offset = firstDataOffset_;
    std::uint64_t expected_seq = 1; // the meta chunk was seq 0
    bool clean_end = false;
    bool stopped = false;
    Chunk chunk;
    while (readChunkAt(offset, chunk)) {
        if (chunk.header.seq != expected_seq)
            throw LogStoreError(
                "chunk sequence break: expected " +
                    std::to_string(expected_seq) + ", found " +
                    std::to_string(chunk.header.seq),
                chunk.offset,
                static_cast<std::int64_t>(chunk.header.seq));
        ++expected_seq;
        switch (chunk.header.type) {
          case ChunkType::Data: {
            const ChunkView view{chunk.header.seq, chunk.offset,
                                 chunk.header.payloadBits};
            decodeDataChunk(chunk, [&](sim::CoreId core,
                                       const IntervalRecord &iv) {
                stopped = !fn(core, iv, view);
                return !stopped;
            });
            break;
          }
          case ChunkType::Summary: {
            Cursor c(chunk.payload, chunk.header.payloadBits,
                     chunk.offset,
                     static_cast<std::int64_t>(chunk.header.seq));
            summary_ = decodeSummary(c);
            haveSummary_ = true;
            break;
          }
          case ChunkType::End:
            clean_end = true;
            break;
          case ChunkType::Meta:
            throw LogStoreError("duplicate meta chunk", chunk.offset,
                                static_cast<std::int64_t>(
                                    chunk.header.seq));
        }
        if (stopped)
            return false; // caller bailed; nothing further is read
        offset =
            chunk.offset + fmt::kChunkHeaderBytes +
            chunk.header.payloadBytes();
        if (clean_end)
            break;
    }
    if (!clean_end)
        throw LogStoreError(
            "no end-of-log marker: the recording was truncated "
            "(LogWriter::finish never ran or the file was cut short)",
            offset);
    if (offset != fileBytes_)
        throw LogStoreError("trailing bytes after the end-of-log marker",
                            offset);
    return true;
}

void
LogReader::forEachInterval(
    const std::function<void(sim::CoreId, const IntervalRecord &,
                             std::uint64_t, std::uint64_t)> &fn)
{
    walkIntervals([&](sim::CoreId core, const IntervalRecord &iv,
                      const ChunkView &view) {
        fn(core, iv, view.seq, view.offset);
        return true;
    });
}

std::vector<CoreLog>
LogReader::readAll()
{
    std::vector<CoreLog> logs(coreCount_);
    forEachInterval([&](sim::CoreId core, const IntervalRecord &iv,
                        std::uint64_t, std::uint64_t) {
        logs[core].intervals.push_back(iv);
    });
    return logs;
}

std::vector<CoreLog>
LogReader::readAllParallel(std::uint32_t workers)
{
    // ---- Pass 1 (sequential): framing. Hop chunk headers, verify
    // sequence continuity, decode the (small) Summary, find the End
    // marker. Data-chunk payload CRCs and varint decode — the actual
    // byte-crunching — are deferred to the parallel pass. Any framing
    // error is *captured*, not thrown: a data chunk earlier in the
    // file may fail in pass 2, and the earliest file offset must win
    // so a damaged file reports exactly what readAll() would.
    std::vector<Chunk> chunks;
    std::unique_ptr<LogStoreError> scan_error;
    auto capture = [&](const LogStoreError &e) {
        scan_error = std::make_unique<LogStoreError>(e);
    };
    std::uint64_t offset = firstDataOffset_;
    std::uint64_t expected_seq = 1;
    bool clean_end = false;
    try {
        Chunk chunk;
        for (;;) {
            if (!readChunkAt(offset, chunk,
                             /*verify_payload_crc=*/false))
                break;
            if (chunk.header.seq != expected_seq)
                throw LogStoreError(
                    "chunk sequence break: expected " +
                        std::to_string(expected_seq) + ", found " +
                        std::to_string(chunk.header.seq),
                    chunk.offset,
                    static_cast<std::int64_t>(chunk.header.seq));
            ++expected_seq;
            offset = chunk.offset + fmt::kChunkHeaderBytes +
                     chunk.header.payloadBytes();
            switch (chunk.header.type) {
              case ChunkType::Data:
                chunks.push_back(std::move(chunk));
                if (!chunks.back().owned.empty())
                    chunks.back().payload = chunks.back().owned;
                chunk = Chunk{};
                break;
              case ChunkType::Summary: {
                if (fmt::crc32(chunk.payload.data(),
                               chunk.payload.size()) !=
                    chunk.header.payloadCrc)
                    throw LogStoreError(
                        "chunk payload CRC mismatch", chunk.offset,
                        static_cast<std::int64_t>(chunk.header.seq));
                Cursor c(chunk.payload, chunk.header.payloadBits,
                         chunk.offset,
                         static_cast<std::int64_t>(chunk.header.seq));
                summary_ = decodeSummary(c);
                haveSummary_ = true;
                break;
              }
              case ChunkType::End:
                if (fmt::crc32(chunk.payload.data(),
                               chunk.payload.size()) !=
                    chunk.header.payloadCrc)
                    throw LogStoreError(
                        "chunk payload CRC mismatch", chunk.offset,
                        static_cast<std::int64_t>(chunk.header.seq));
                clean_end = true;
                break;
              case ChunkType::Meta:
                throw LogStoreError(
                    "duplicate meta chunk", chunk.offset,
                    static_cast<std::int64_t>(chunk.header.seq));
            }
            if (clean_end)
                break;
        }
        if (!scan_error) {
            if (!clean_end)
                throw LogStoreError(
                    "no end-of-log marker: the recording was truncated "
                    "(LogWriter::finish never ran or the file was cut "
                    "short)",
                    offset);
            if (offset != fileBytes_)
                throw LogStoreError(
                    "trailing bytes after the end-of-log marker",
                    offset);
        }
    } catch (const LogStoreError &e) {
        capture(e);
    }

    // ---- Pass 2 (parallel): per-chunk CRC + varint decode. Chunks
    // are independent (the delta codec resets per chunk), so each
    // task stages its own interval vector; per-worker arenas absorb
    // the entry/dependency scratch. Affinity hint = producing core,
    // which keeps a core's chunk stream on one worker and its arena
    // warm.
    struct ArenaPool
    {
        std::mutex mu;
        std::vector<std::unique_ptr<sim::Arena>> free;

        std::unique_ptr<sim::Arena>
        acquire()
        {
            std::lock_guard lock(mu);
            if (free.empty())
                return std::make_unique<sim::Arena>();
            auto a = std::move(free.back());
            free.pop_back();
            return a;
        }
        void
        release(std::unique_ptr<sim::Arena> a)
        {
            std::lock_guard lock(mu);
            free.push_back(std::move(a));
        }
    } arenas;

    std::vector<std::vector<IntervalRecord>> staged(chunks.size());
    std::vector<std::exception_ptr> errors(chunks.size());
    auto decode_one = [&](std::size_t i) {
        const Chunk &ch = chunks[i];
        try {
            if (fmt::crc32(ch.payload.data(), ch.payload.size()) !=
                ch.header.payloadCrc)
                throw LogStoreError(
                    "chunk payload CRC mismatch", ch.offset,
                    static_cast<std::int64_t>(ch.header.seq));
            auto arena = arenas.acquire();
            arena->reset();
            const auto seq = static_cast<std::int64_t>(ch.header.seq);
            if (ch.header.core >= coreCount_)
                throw LogStoreError(
                    "data chunk names core " +
                        std::to_string(ch.header.core) +
                        " but the file has " +
                        std::to_string(coreCount_) + " cores",
                    ch.offset, seq);
            Cursor c(ch.payload, ch.header.payloadBits, ch.offset, seq);
            const std::uint64_t count =
                checkedCount(c, kMinIntervalBits, "interval");
            staged[i].resize(count);
            sim::Isn prev_cisn = 0;
            std::uint64_t prev_ts = 0;
            for (std::uint64_t k = 0; k < count; ++k)
                decodeIntervalArena(c, k == 0, prev_cisn, prev_ts,
                                    *arena, staged[i][k]);
            if (!c.atEnd())
                c.fail("trailing bits after the last interval");
            arenas.release(std::move(arena));
        } catch (...) {
            errors[i] = std::current_exception();
        }
    };

    const std::uint32_t want = sim::resolveJobs(workers);
    if (want <= 1 || chunks.size() <= 1) {
        for (std::size_t i = 0; i < chunks.size(); ++i)
            decode_one(i);
    } else {
        sim::TaskPool pool(static_cast<std::uint32_t>(
            std::min<std::size_t>(want, chunks.size())));
        for (std::size_t i = 0; i < chunks.size(); ++i)
            pool.submit([&decode_one, i] { decode_one(i); },
                        chunks[i].header.core);
        pool.drain();
    }

    // ---- Error selection: chunks are collected in ascending file
    // offset and the scan error (if any) sits past every collected
    // chunk, so the first task error in index order — else the scan
    // error — is exactly the first error a sequential walk hits.
    for (std::size_t i = 0; i < chunks.size(); ++i)
        if (errors[i])
            std::rethrow_exception(errors[i]);
    if (scan_error)
        throw *scan_error;

    // ---- Stitch: file order per core == interval order (the writer
    // flushes each core's chunks in close order).
    std::vector<CoreLog> logs(coreCount_);
    std::vector<std::size_t> totals(coreCount_, 0);
    for (std::size_t i = 0; i < chunks.size(); ++i)
        totals[chunks[i].header.core] += staged[i].size();
    for (std::uint32_t c = 0; c < coreCount_; ++c)
        logs[c].intervals.reserve(totals[c]);
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        auto &dst = logs[chunks[i].header.core].intervals;
        dst.insert(dst.end(),
                   std::make_move_iterator(staged[i].begin()),
                   std::make_move_iterator(staged[i].end()));
    }
    return logs;
}

LogFileInfo
LogReader::info()
{
    LogFileInfo info;
    info.version = version_;
    info.fingerprint = fingerprint_;
    info.coreCount = coreCount_;
    info.meta = meta_;
    info.fileBytes = fileBytes_;
    info.chunks = 1; // the meta chunk
    std::uint64_t offset = firstDataOffset_;
    Chunk chunk;
    while (readChunkAt(offset, chunk)) {
        ++info.chunks;
        switch (chunk.header.type) {
          case ChunkType::Data:
            ++info.dataChunks;
            info.payloadBits += chunk.header.payloadBits;
            decodeDataChunk(chunk, [&](sim::CoreId,
                                       const IntervalRecord &) {
                ++info.intervals;
                return true;
            });
            break;
          case ChunkType::Summary: {
            Cursor c(chunk.payload, chunk.header.payloadBits,
                     chunk.offset,
                     static_cast<std::int64_t>(chunk.header.seq));
            summary_ = decodeSummary(c);
            haveSummary_ = true;
            break;
          }
          case ChunkType::End:
            info.cleanEnd = true;
            break;
          case ChunkType::Meta:
            throw LogStoreError("duplicate meta chunk", chunk.offset,
                                static_cast<std::int64_t>(
                                    chunk.header.seq));
        }
        offset = chunk.offset + fmt::kChunkHeaderBytes +
                 chunk.header.payloadBytes();
        if (info.cleanEnd)
            break;
    }
    info.hasSummary = haveSummary_;
    if (haveSummary_)
        info.summary = summary_;
    return info;
}

RecordingSummary
LogReader::summary()
{
    if (!haveSummary_) {
        forEachInterval([](sim::CoreId, const IntervalRecord &,
                           std::uint64_t, std::uint64_t) {});
    }
    if (!haveSummary_)
        throw LogStoreError("file has no summary chunk "
                            "(recording was never finished)",
                            fileBytes_);
    return summary_;
}

std::vector<VerifyIssue>
LogReader::verify()
{
    std::vector<VerifyIssue> issues;
    auto note = [&](std::uint64_t offset, std::int64_t seq,
                    std::string message) {
        issues.push_back({offset, seq, std::move(message)});
    };

    std::vector<std::uint64_t> intervals_per_core(coreCount_, 0);
    bool clean_end = false;
    bool have_summary = false;
    RecordingSummary summary;
    std::uint64_t offset = firstDataOffset_;
    std::uint64_t expected_seq = 1;

    while (true) {
        Chunk chunk;
        try {
            if (!readChunkAt(offset, chunk, /*verify_payload_crc=*/false))
                break;
        } catch (const LogStoreError &e) {
            // Framing is unrecoverable: without a trusted header we
            // cannot find the next chunk boundary.
            note(e.fileOffset(), e.chunkSeq(), e.what());
            return issues;
        }
        const auto seq = static_cast<std::int64_t>(chunk.header.seq);
        if (chunk.header.seq != expected_seq)
            note(chunk.offset, seq,
                 "chunk sequence break: expected " +
                     std::to_string(expected_seq) + ", found " +
                     std::to_string(chunk.header.seq));
        expected_seq = chunk.header.seq + 1;

        const bool payload_ok =
            fmt::crc32(chunk.payload.data(), chunk.payload.size()) ==
            chunk.header.payloadCrc;
        if (!payload_ok)
            note(chunk.offset, seq, "chunk payload CRC mismatch");

        if (payload_ok) {
            try {
                switch (chunk.header.type) {
                  case ChunkType::Data:
                    decodeDataChunk(
                        chunk, [&](sim::CoreId core,
                                   const IntervalRecord &) {
                            ++intervals_per_core[core];
                            return true;
                        });
                    break;
                  case ChunkType::Summary: {
                    Cursor c(chunk.payload, chunk.header.payloadBits,
                             chunk.offset, seq);
                    summary = decodeSummary(c);
                    have_summary = true;
                    break;
                  }
                  case ChunkType::End:
                    clean_end = true;
                    break;
                  case ChunkType::Meta:
                    note(chunk.offset, seq, "duplicate meta chunk");
                    break;
                }
            } catch (const LogStoreError &e) {
                note(e.fileOffset(), e.chunkSeq(), e.what());
            }
        }
        offset = chunk.offset + fmt::kChunkHeaderBytes +
                 chunk.header.payloadBytes();
        if (clean_end)
            break;
    }

    if (!clean_end)
        note(offset, -1,
             "no end-of-log marker: the recording was truncated");
    else if (offset != fileBytes_)
        note(offset, -1, "trailing bytes after the end-of-log marker");
    if (!have_summary && !partial())
        note(offset, -1, "file has no summary chunk");
    if (have_summary) {
        if (summary.cores.size() != coreCount_)
            note(offset, -1, "summary core count disagrees with header");
        // A partial file's Summary describes the full recording, so its
        // interval counts legitimately exceed the data chunks'.
        for (std::size_t c = 0;
             !partial() && c < summary.cores.size() && c < coreCount_;
             ++c) {
            if (summary.cores[c].intervals != intervals_per_core[c])
                note(offset, -1,
                     "core " + std::to_string(c) + ": summary promises " +
                         std::to_string(summary.cores[c].intervals) +
                         " intervals, data chunks hold " +
                         std::to_string(intervals_per_core[c]));
        }
    }
    return issues;
}

RecoveryResult
LogReader::recoverPrefix()
{
    RecoveryResult rec;
    rec.logs.resize(coreCount_);
    auto note = [&](std::uint64_t offset, std::int64_t seq,
                    std::string message) {
        rec.issues.push_back({offset, seq, std::move(message)});
    };

    // Once a core loses a chunk (bad payload, decode error), all of its
    // later chunks are discarded too: keeping them would leave a hole in
    // the core's interval stream, and a salvage must be a prefix.
    std::vector<bool> core_live(coreCount_, true);
    std::uint64_t offset = firstDataOffset_;
    rec.usableBytes = firstDataOffset_;

    while (!rec.cleanEnd) {
        Chunk chunk;
        try {
            if (!readChunkAt(offset, chunk,
                             /*verify_payload_crc=*/false))
                break;
        } catch (const LogStoreError &e) {
            // Broken framing: without a trusted chunk header there is
            // no next boundary, so the salvage stops here. Typical torn
            // tail of a crashed writer.
            note(e.fileOffset(), e.chunkSeq(),
                 std::string("salvage stopped: ") + e.what());
            break;
        }
        const auto seq = static_cast<std::int64_t>(chunk.header.seq);
        const bool payload_ok =
            fmt::crc32(chunk.payload.data(), chunk.payload.size()) ==
            chunk.header.payloadCrc;
        switch (chunk.header.type) {
          case ChunkType::Data: {
            const std::uint32_t core = chunk.header.core;
            if (core >= coreCount_) {
                ++rec.droppedChunks;
                note(chunk.offset, seq,
                     "data chunk names core " + std::to_string(core) +
                         " but the file has " +
                         std::to_string(coreCount_) + " cores");
                break;
            }
            if (!core_live[core]) {
                ++rec.droppedChunks;
                break;
            }
            if (!payload_ok) {
                core_live[core] = false;
                ++rec.droppedChunks;
                note(chunk.offset, seq,
                     "core " + std::to_string(core) +
                         ": payload CRC mismatch; dropping this and "
                         "all later chunks of the core");
                break;
            }
            // Decode into a staging vector and commit all-or-nothing:
            // a chunk that fails mid-decode contributes no intervals.
            std::vector<IntervalRecord> staged;
            try {
                decodeDataChunk(chunk,
                                [&](sim::CoreId, const IntervalRecord &iv) {
                                    staged.push_back(iv);
                                    return true;
                                });
            } catch (const LogStoreError &e) {
                core_live[core] = false;
                ++rec.droppedChunks;
                note(e.fileOffset(), e.chunkSeq(),
                     std::string("core ") + std::to_string(core) +
                         ": " + e.what() +
                         "; dropping this and all later chunks of "
                         "the core");
                break;
            }
            auto &intervals = rec.logs[core].intervals;
            intervals.insert(intervals.end(),
                             std::make_move_iterator(staged.begin()),
                             std::make_move_iterator(staged.end()));
            rec.salvagedIntervals += staged.size();
            ++rec.salvagedChunks;
            break;
          }
          case ChunkType::Summary:
            if (!payload_ok) {
                note(chunk.offset, seq,
                     "summary chunk payload CRC mismatch; ignored");
                break;
            }
            try {
                Cursor c(chunk.payload, chunk.header.payloadBits,
                         chunk.offset, seq);
                rec.summary = decodeSummary(c);
                rec.hasSummary = true;
            } catch (const LogStoreError &e) {
                note(e.fileOffset(), e.chunkSeq(),
                     std::string("summary chunk undecodable: ") +
                         e.what());
            }
            break;
          case ChunkType::End:
            rec.cleanEnd = true;
            break;
          case ChunkType::Meta:
            note(chunk.offset, seq, "duplicate meta chunk; ignored");
            break;
        }
        offset = chunk.offset + fmt::kChunkHeaderBytes +
                 chunk.header.payloadBytes();
        rec.usableBytes = offset;
    }
    rec.coreTruncated.resize(coreCount_);
    for (std::uint32_t c = 0; c < coreCount_; ++c)
        rec.coreTruncated[c] = !rec.cleanEnd || !core_live[c];
    return rec;
}

std::uint64_t
consistentCut(std::vector<CoreLog> &logs,
              const std::vector<bool> &truncated)
{
    // No truncation info = assume the worst about every core.
    auto is_truncated = [&](std::size_t c) {
        return truncated.empty() || (c < truncated.size() && truncated[c]);
    };
    bool constrained = false;
    std::uint64_t cut = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t c = 0; c < logs.size(); ++c) {
        if (!is_truncated(c))
            continue;
        constrained = true;
        if (logs[c].intervals.empty()) {
            // A truncated core with nothing salvaged: no interval of
            // any other core is known to be safe to replay against it.
            cut = 0;
            break;
        }
        cut = std::min(cut, logs[c].intervals.back().timestamp);
    }
    if (!constrained) {
        // Every core's stream is complete: the logs already form a
        // consistent set; report the last timestamp for information.
        std::uint64_t last = 0;
        for (const auto &log : logs)
            if (!log.intervals.empty())
                last = std::max(last, log.intervals.back().timestamp);
        return last;
    }
    if (cut == std::numeric_limits<std::uint64_t>::max())
        cut = 0;
    for (auto &log : logs) {
        auto &iv = log.intervals;
        while (!iv.empty() && iv.back().timestamp > cut)
            iv.pop_back();
    }
    return cut;
}

} // namespace rr::rnr
