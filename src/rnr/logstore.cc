#include "rnr/logstore.hh"

#include <cinttypes>
#include <cstdio>

namespace rr::rnr
{

namespace
{

using fmt::ChunkType;

std::string
formatError(const std::string &message, std::uint64_t offset,
            std::int64_t chunk_seq)
{
    char loc[96];
    if (chunk_seq >= 0)
        std::snprintf(loc, sizeof loc,
                      " (file offset %" PRIu64 ", chunk %" PRId64 ")",
                      offset, chunk_seq);
    else
        std::snprintf(loc, sizeof loc, " (file offset %" PRIu64 ")",
                      offset);
    return message + loc;
}

/** FNV-1a 64-bit. */
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t
fnv1a(std::uint64_t hash, const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= p[i];
        hash *= kFnvPrime;
    }
    return hash;
}

std::uint64_t
fnv1aU64(std::uint64_t hash, std::uint64_t v)
{
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return fnv1a(hash, b, sizeof b);
}

/**
 * Bounds-checked bitstream cursor over one chunk payload: every decode
 * failure becomes a LogStoreError naming the chunk, never an assertion
 * or an out-of-range read.
 */
class Cursor
{
  public:
    Cursor(const std::vector<std::uint8_t> &bytes, std::uint64_t bits,
           std::uint64_t chunk_offset, std::int64_t chunk_seq)
        : reader_(bytes, bits), bits_(bits), chunkOffset_(chunk_offset),
          chunkSeq_(chunk_seq)
    {
    }

    std::uint64_t
    read(std::uint32_t width)
    {
        if (reader_.position() + width > bits_)
            fail("payload ends mid-field");
        return reader_.read(width);
    }

    std::uint64_t
    varint()
    {
        std::uint64_t v = 0;
        for (std::uint32_t g = 0; g < fmt::kMaxVarintGroups; ++g) {
            const std::uint64_t group = read(8);
            v |= (group & 0x7f) << (7 * g);
            if (!(group & 0x80))
                return v;
        }
        fail("varint longer than 10 groups");
    }

    bool atEnd() const { return reader_.position() >= bits_; }
    std::uint64_t position() const { return reader_.position(); }

    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw LogStoreError(
            "corrupt chunk payload: " + what + " at payload bit " +
                std::to_string(reader_.position()),
            chunkOffset_, chunkSeq_);
    }

  private:
    BitReader reader_;
    std::uint64_t bits_;
    std::uint64_t chunkOffset_;
    std::int64_t chunkSeq_;
};

void
encodeMeta(BitWriter &w, const RecordingMeta &meta)
{
    fmt::writeVarint(w, meta.kernel.size());
    for (char c : meta.kernel)
        w.write(static_cast<std::uint8_t>(c), 8);
    fmt::writeVarint(w, meta.cores);
    fmt::writeVarint(w, meta.scale);
    fmt::writeVarint(w, meta.intensity);
    fmt::writeVarint(w, meta.workloadSeed);
    fmt::writeVarint(w, meta.machineSeed);
    fmt::writeVarint(w, meta.mode == sim::RecorderMode::Opt ? 1 : 0);
    fmt::writeVarint(w, meta.intervalCap);
    fmt::writeVarint(w, meta.deps ? 1 : 0);
}

RecordingMeta
decodeMeta(Cursor &c)
{
    RecordingMeta meta;
    const std::uint64_t name_len = c.varint();
    if (name_len > 4096)
        c.fail("unreasonable kernel-name length");
    meta.kernel.reserve(name_len);
    for (std::uint64_t i = 0; i < name_len; ++i)
        meta.kernel.push_back(static_cast<char>(c.read(8)));
    meta.cores = static_cast<std::uint32_t>(c.varint());
    meta.scale = c.varint();
    meta.intensity = c.varint();
    meta.workloadSeed = c.varint();
    meta.machineSeed = c.varint();
    meta.mode = c.varint() ? sim::RecorderMode::Opt
                           : sim::RecorderMode::Base;
    meta.intervalCap = c.varint();
    meta.deps = c.varint() != 0;
    return meta;
}

void
encodeSummary(BitWriter &w, const RecordingSummary &s)
{
    fmt::writeVarint(w, s.totalInstructions);
    fmt::writeVarint(w, s.cycles);
    fmt::writeVarint(w, s.memoryFingerprint);
    fmt::writeVarint(w, s.cores.size());
    for (const auto &core : s.cores) {
        fmt::writeVarint(w, core.intervals);
        fmt::writeVarint(w, core.retiredInstructions);
        fmt::writeVarint(w, core.retiredLoads);
        fmt::writeVarint(w, core.loadValueHash);
    }
}

RecordingSummary
decodeSummary(Cursor &c)
{
    RecordingSummary s;
    s.totalInstructions = c.varint();
    s.cycles = c.varint();
    s.memoryFingerprint = c.varint();
    const std::uint64_t n = c.varint();
    if (n > 1u << 20)
        c.fail("unreasonable summary core count");
    for (std::uint64_t i = 0; i < n; ++i) {
        CoreReplaySummary core;
        core.intervals = c.varint();
        core.retiredInstructions = c.varint();
        core.retiredLoads = c.varint();
        core.loadValueHash = c.varint();
        s.cores.push_back(core);
    }
    return s;
}

/** Decode one interval (the inverse of LogWriter::encodeInterval). */
IntervalRecord
decodeInterval(Cursor &c, bool first_in_chunk, sim::Isn &prev_cisn,
               std::uint64_t &prev_ts)
{
    IntervalRecord iv;
    const std::uint64_t entry_count = c.varint();
    for (std::uint64_t e = 0; e < entry_count; ++e) {
        LogEntry entry;
        const std::uint64_t tag = c.read(bits::kTypeTag);
        if (tag > static_cast<std::uint64_t>(EntryKind::DummyAtomic))
            c.fail("invalid entry tag " + std::to_string(tag));
        entry.kind = static_cast<EntryKind>(tag);
        switch (entry.kind) {
          case EntryKind::InorderBlock:
            entry.blockSize = c.varint();
            break;
          case EntryKind::ReorderedLoad:
            entry.loadValue = c.varint();
            break;
          case EntryKind::ReorderedStore:
            entry.addr = c.varint();
            entry.storeValue = c.varint();
            entry.offset = static_cast<std::uint32_t>(c.varint());
            break;
          case EntryKind::ReorderedAtomic:
            entry.addr = c.varint();
            entry.loadValue = c.varint();
            entry.storeValue = c.varint();
            entry.offset = static_cast<std::uint32_t>(c.varint());
            break;
          case EntryKind::PatchedStore:
            entry.addr = c.varint();
            entry.storeValue = c.varint();
            break;
          case EntryKind::DummyStore:
            break;
          case EntryKind::DummyAtomic:
            entry.loadValue = c.varint();
            break;
        }
        iv.entries.push_back(entry);
    }
    if (first_in_chunk) {
        iv.cisn = c.varint();
        iv.timestamp = c.varint();
    } else {
        iv.cisn = static_cast<sim::Isn>(
            static_cast<std::int64_t>(prev_cisn) +
            fmt::unzigzag(c.varint()));
        iv.timestamp = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(prev_ts) +
            fmt::unzigzag(c.varint()));
    }
    prev_cisn = iv.cisn;
    prev_ts = iv.timestamp;
    const std::uint64_t dep_count = c.varint();
    if (dep_count > 1u << 20)
        c.fail("unreasonable dependency count");
    for (std::uint64_t d = 0; d < dep_count; ++d) {
        IntervalDep dep;
        dep.core = static_cast<sim::CoreId>(c.varint());
        dep.isn = c.varint();
        iv.predecessors.push_back(dep);
    }
    return iv;
}

} // namespace

LogStoreError::LogStoreError(const std::string &message,
                             std::uint64_t file_offset,
                             std::int64_t chunk_seq)
    : std::runtime_error(formatError(message, file_offset, chunk_seq)),
      fileOffset_(file_offset), chunkSeq_(chunk_seq)
{
}

std::uint64_t
RecordingMeta::fingerprint() const
{
    std::uint64_t h = kFnvOffset;
    h = fnv1aU64(h, fmt::kFormatVersion);
    h = fnv1a(h, kernel.data(), kernel.size());
    h = fnv1aU64(h, cores);
    h = fnv1aU64(h, scale);
    h = fnv1aU64(h, intensity);
    h = fnv1aU64(h, workloadSeed);
    h = fnv1aU64(h, machineSeed);
    h = fnv1aU64(h, mode == sim::RecorderMode::Opt ? 1 : 0);
    h = fnv1aU64(h, intervalCap);
    h = fnv1aU64(h, deps ? 1 : 0);
    return h;
}

// --- LogWriter ---

LogWriter::LogWriter(std::ostream &out, const RecordingMeta &meta)
    : out_(out), meta_(meta), streams_(meta.cores), stats_("logstore")
{
    writeFileHeader();
    writeMetaChunk();
}

LogWriter::LogWriter(const std::string &path, const RecordingMeta &meta)
    : owned_(std::make_unique<std::ofstream>(
          path, std::ios::binary | std::ios::trunc)),
      out_(*owned_), path_(path), meta_(meta), streams_(meta.cores),
      stats_("logstore")
{
    if (!*owned_)
        throw LogStoreError("cannot open " + path + " for writing", 0);
    writeFileHeader();
    writeMetaChunk();
}

LogWriter::~LogWriter() = default;

void
LogWriter::writeFileHeader()
{
    std::vector<std::uint8_t> h;
    h.reserve(fmt::kFileHeaderBytes);
    for (char c : fmt::kMagic)
        h.push_back(static_cast<std::uint8_t>(c));
    fmt::putU16(h, fmt::kFormatVersion);
    fmt::putU16(h, 0); // flags, reserved
    fmt::putU64(h, meta_.fingerprint());
    fmt::putU32(h, meta_.cores);
    fmt::putU32(h, fmt::crc32(h.data(), h.size()));
    out_.write(reinterpret_cast<const char *>(h.data()),
               static_cast<std::streamsize>(h.size()));
    bytesWritten_ += h.size();
}

void
LogWriter::writeMetaChunk()
{
    BitWriter w;
    encodeMeta(w, meta_);
    writeChunk(ChunkType::Meta, 0, w.bytes(), w.bitCount());
}

void
LogWriter::writeChunk(ChunkType type, std::uint32_t core,
                      const std::vector<std::uint8_t> &payload,
                      std::uint64_t payload_bits)
{
    fmt::ChunkHeader h;
    h.type = type;
    h.core = core;
    h.seq = nextChunkSeq_++;
    h.payloadBits = payload_bits;
    h.payloadCrc = fmt::crc32(payload.data(), payload.size());
    const auto encoded = h.encode();
    out_.write(reinterpret_cast<const char *>(encoded.data()),
               static_cast<std::streamsize>(encoded.size()));
    out_.write(reinterpret_cast<const char *>(payload.data()),
               static_cast<std::streamsize>(payload.size()));
    if (!out_)
        throw LogStoreError("write failed" +
                                (path_.empty() ? "" : " on " + path_),
                            bytesWritten_, static_cast<std::int64_t>(h.seq));
    bytesWritten_ += encoded.size() + payload.size();
    stats_.counter("chunks_written")++;
    stats_.counter("bytes_written") += encoded.size() + payload.size();
    // Bits lost to byte-aligning the payload: recoverable by a
    // bit-contiguous (compressed) framing, hence "compression-eligible".
    stats_.counter("padding_bits") += payload.size() * 8 - payload_bits;
    stats_.counter("payload_bits") += payload_bits;
}

void
LogWriter::encodeInterval(CoreStream &cs, const IntervalRecord &iv)
{
    BitWriter &w = cs.bits;
    fmt::writeVarint(w, iv.entries.size());
    for (const auto &e : iv.entries) {
        w.write(static_cast<std::uint64_t>(e.kind), bits::kTypeTag);
        switch (e.kind) {
          case EntryKind::InorderBlock:
            fmt::writeVarint(w, e.blockSize);
            break;
          case EntryKind::ReorderedLoad:
            fmt::writeVarint(w, e.loadValue);
            break;
          case EntryKind::ReorderedStore:
            fmt::writeVarint(w, e.addr);
            fmt::writeVarint(w, e.storeValue);
            fmt::writeVarint(w, e.offset);
            break;
          case EntryKind::ReorderedAtomic:
            fmt::writeVarint(w, e.addr);
            fmt::writeVarint(w, e.loadValue);
            fmt::writeVarint(w, e.storeValue);
            fmt::writeVarint(w, e.offset);
            break;
          case EntryKind::PatchedStore:
            fmt::writeVarint(w, e.addr);
            fmt::writeVarint(w, e.storeValue);
            break;
          case EntryKind::DummyStore:
            break;
          case EntryKind::DummyAtomic:
            fmt::writeVarint(w, e.loadValue);
            break;
        }
    }
    if (cs.first) {
        fmt::writeVarint(w, iv.cisn);
        fmt::writeVarint(w, iv.timestamp);
        cs.first = false;
    } else {
        fmt::writeVarint(
            w, fmt::zigzag(static_cast<std::int64_t>(iv.cisn) -
                           static_cast<std::int64_t>(cs.prevCisn)));
        fmt::writeVarint(
            w, fmt::zigzag(static_cast<std::int64_t>(iv.timestamp) -
                           static_cast<std::int64_t>(cs.prevTimestamp)));
    }
    cs.prevCisn = iv.cisn;
    cs.prevTimestamp = iv.timestamp;
    fmt::writeVarint(w, iv.predecessors.size());
    for (const auto &d : iv.predecessors) {
        fmt::writeVarint(w, d.core);
        fmt::writeVarint(w, d.isn);
    }
}

void
LogWriter::append(sim::CoreId core, const IntervalRecord &interval)
{
    RR_ASSERT(!finished_, "append after finish");
    RR_ASSERT(core < streams_.size(), "core %u out of range", core);
    CoreStream &cs = streams_[core];
    encodeInterval(cs, interval);
    ++cs.intervals;
    ++intervalsWritten_;
    stats_.counter("intervals_written")++;
    if (cs.bits.bytes().size() >= fmt::kChunkTargetBytes)
        flushCore(core);
}

void
LogWriter::flushCore(sim::CoreId core)
{
    CoreStream &cs = streams_[core];
    if (cs.intervals == 0)
        return;
    // Data payload: varint interval count, then the intervals.
    BitWriter framed;
    fmt::writeVarint(framed, cs.intervals);
    const auto &body = cs.bits.bytes();
    // Splice the already-encoded interval stream after the count. The
    // count is byte-aligned (whole varint groups), so this is a byte
    // append plus a final bit-count fixup.
    std::vector<std::uint8_t> payload = framed.bytes();
    payload.insert(payload.end(), body.begin(), body.end());
    const std::uint64_t payload_bits =
        framed.bitCount() + cs.bits.bitCount();
    // The interval stream's own padding (none: varints and the 3-bit
    // tags pack back to back, so bitCount is exact).
    writeChunk(ChunkType::Data, core, payload, payload_bits);
    stats_.counter("flushes")++;
    cs = CoreStream{};
}

void
LogWriter::finish(const RecordingSummary &summary)
{
    RR_ASSERT(!finished_, "finish twice");
    for (sim::CoreId c = 0; c < streams_.size(); ++c)
        flushCore(c);
    BitWriter w;
    encodeSummary(w, summary);
    writeChunk(ChunkType::Summary, 0, w.bytes(), w.bitCount());
    writeChunk(ChunkType::End, 0, {}, 0);
    out_.flush();
    if (!out_)
        throw LogStoreError("flush failed" +
                                (path_.empty() ? "" : " on " + path_),
                            bytesWritten_);
    finished_ = true;
}

// --- LogReader ---

LogReader::LogReader(const std::string &path)
    : path_(path), in_(path, std::ios::binary)
{
    if (!in_)
        throw LogStoreError("cannot open " + path + " for reading", 0);
    in_.seekg(0, std::ios::end);
    fileBytes_ = static_cast<std::uint64_t>(in_.tellg());
    in_.seekg(0);

    std::uint8_t h[fmt::kFileHeaderBytes];
    if (fileBytes_ < fmt::kFileHeaderBytes)
        throw LogStoreError("file shorter than the 24-byte header", 0);
    in_.read(reinterpret_cast<char *>(h), sizeof h);
    if (std::memcmp(h, fmt::kMagic.data(), 4) != 0)
        throw LogStoreError("bad magic: not an .rrlog file", 0);
    if (fmt::crc32(h, fmt::kFileHeaderBytes - 4) !=
        fmt::getU32(h + fmt::kFileHeaderBytes - 4))
        throw LogStoreError("file header CRC mismatch", 0);
    version_ = fmt::getU16(h + 4);
    if (version_ > fmt::kFormatVersion)
        throw LogStoreError(
            "format version " + std::to_string(version_) +
                " is newer than this reader (supports up to " +
                std::to_string(fmt::kFormatVersion) + ")",
            4);
    fingerprint_ = fmt::getU64(h + 8);
    coreCount_ = fmt::getU32(h + 16);

    Chunk meta_chunk;
    if (!readChunkAt(fmt::kFileHeaderBytes, meta_chunk))
        throw LogStoreError("file ends before the meta chunk",
                            fmt::kFileHeaderBytes);
    if (meta_chunk.header.type != ChunkType::Meta)
        throw LogStoreError("first chunk is not the meta chunk",
                            meta_chunk.offset, 0);
    Cursor c(meta_chunk.payload, meta_chunk.header.payloadBits,
             meta_chunk.offset, 0);
    meta_ = decodeMeta(c);
    if (meta_.fingerprint() != fingerprint_)
        throw LogStoreError(
            "configuration fingerprint mismatch: header says " +
                std::to_string(fingerprint_) + ", meta chunk hashes to " +
                std::to_string(meta_.fingerprint()),
            meta_chunk.offset, 0);
    if (meta_.cores != coreCount_)
        throw LogStoreError("header core count disagrees with meta chunk",
                            meta_chunk.offset, 0);
    firstDataOffset_ = meta_chunk.offset + fmt::kChunkHeaderBytes +
                       meta_chunk.header.payloadBytes();
}

bool
LogReader::readChunkAt(std::uint64_t offset, Chunk &out,
                       bool verify_payload_crc)
{
    if (offset == fileBytes_)
        return false; // clean boundary; caller checks for End chunk
    if (offset + fmt::kChunkHeaderBytes > fileBytes_)
        throw LogStoreError("truncated chunk header", offset);
    std::uint8_t h[fmt::kChunkHeaderBytes];
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(offset));
    in_.read(reinterpret_cast<char *>(h), sizeof h);
    if (!in_)
        throw LogStoreError("read failed on chunk header", offset);
    if (!fmt::ChunkHeader::decode(h, out.header))
        throw LogStoreError("chunk header CRC mismatch "
                            "(corrupt or misaligned framing)",
                            offset);
    out.offset = offset;
    const std::uint64_t payload_bytes = out.header.payloadBytes();
    if (offset + fmt::kChunkHeaderBytes + payload_bytes > fileBytes_)
        throw LogStoreError(
            "truncated chunk: header promises " +
                std::to_string(payload_bytes) +
                " payload bytes but the file ends first",
            offset, static_cast<std::int64_t>(out.header.seq));
    out.payload.resize(payload_bytes);
    in_.read(reinterpret_cast<char *>(out.payload.data()),
             static_cast<std::streamsize>(payload_bytes));
    if (!in_)
        throw LogStoreError("read failed on chunk payload", offset,
                            static_cast<std::int64_t>(out.header.seq));
    if (verify_payload_crc &&
        fmt::crc32(out.payload.data(), out.payload.size()) !=
            out.header.payloadCrc)
        throw LogStoreError("chunk payload CRC mismatch", offset,
                            static_cast<std::int64_t>(out.header.seq));
    return true;
}

void
LogReader::decodeDataChunk(
    const Chunk &chunk,
    const std::function<void(sim::CoreId, const IntervalRecord &)> &fn)
{
    const auto seq = static_cast<std::int64_t>(chunk.header.seq);
    if (chunk.header.core >= coreCount_)
        throw LogStoreError("data chunk names core " +
                                std::to_string(chunk.header.core) +
                                " but the file has " +
                                std::to_string(coreCount_) + " cores",
                            chunk.offset, seq);
    Cursor c(chunk.payload, chunk.header.payloadBits, chunk.offset, seq);
    const std::uint64_t count = c.varint();
    sim::Isn prev_cisn = 0;
    std::uint64_t prev_ts = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const IntervalRecord iv =
            decodeInterval(c, i == 0, prev_cisn, prev_ts);
        fn(chunk.header.core, iv);
    }
    if (!c.atEnd())
        c.fail("trailing bits after the last interval");
}

void
LogReader::forEachInterval(
    const std::function<void(sim::CoreId, const IntervalRecord &,
                             std::uint64_t, std::uint64_t)> &fn)
{
    std::uint64_t offset = firstDataOffset_;
    std::uint64_t expected_seq = 1; // the meta chunk was seq 0
    bool clean_end = false;
    Chunk chunk;
    while (readChunkAt(offset, chunk)) {
        if (chunk.header.seq != expected_seq)
            throw LogStoreError(
                "chunk sequence break: expected " +
                    std::to_string(expected_seq) + ", found " +
                    std::to_string(chunk.header.seq),
                chunk.offset,
                static_cast<std::int64_t>(chunk.header.seq));
        ++expected_seq;
        switch (chunk.header.type) {
          case ChunkType::Data:
            decodeDataChunk(chunk, [&](sim::CoreId core,
                                       const IntervalRecord &iv) {
                fn(core, iv, chunk.header.seq, chunk.offset);
            });
            break;
          case ChunkType::Summary: {
            Cursor c(chunk.payload, chunk.header.payloadBits,
                     chunk.offset,
                     static_cast<std::int64_t>(chunk.header.seq));
            summary_ = decodeSummary(c);
            haveSummary_ = true;
            break;
          }
          case ChunkType::End:
            clean_end = true;
            break;
          case ChunkType::Meta:
            throw LogStoreError("duplicate meta chunk", chunk.offset,
                                static_cast<std::int64_t>(
                                    chunk.header.seq));
        }
        offset =
            chunk.offset + fmt::kChunkHeaderBytes +
            chunk.header.payloadBytes();
        if (clean_end)
            break;
    }
    if (!clean_end)
        throw LogStoreError(
            "no end-of-log marker: the recording was truncated "
            "(LogWriter::finish never ran or the file was cut short)",
            offset);
    if (offset != fileBytes_)
        throw LogStoreError("trailing bytes after the end-of-log marker",
                            offset);
}

std::vector<CoreLog>
LogReader::readAll()
{
    std::vector<CoreLog> logs(coreCount_);
    forEachInterval([&](sim::CoreId core, const IntervalRecord &iv,
                        std::uint64_t, std::uint64_t) {
        logs[core].intervals.push_back(iv);
    });
    return logs;
}

LogFileInfo
LogReader::info()
{
    LogFileInfo info;
    info.version = version_;
    info.fingerprint = fingerprint_;
    info.coreCount = coreCount_;
    info.meta = meta_;
    info.fileBytes = fileBytes_;
    info.chunks = 1; // the meta chunk
    std::uint64_t offset = firstDataOffset_;
    Chunk chunk;
    while (readChunkAt(offset, chunk)) {
        ++info.chunks;
        switch (chunk.header.type) {
          case ChunkType::Data:
            ++info.dataChunks;
            info.payloadBits += chunk.header.payloadBits;
            decodeDataChunk(chunk, [&](sim::CoreId,
                                       const IntervalRecord &) {
                ++info.intervals;
            });
            break;
          case ChunkType::Summary: {
            Cursor c(chunk.payload, chunk.header.payloadBits,
                     chunk.offset,
                     static_cast<std::int64_t>(chunk.header.seq));
            summary_ = decodeSummary(c);
            haveSummary_ = true;
            break;
          }
          case ChunkType::End:
            info.cleanEnd = true;
            break;
          case ChunkType::Meta:
            throw LogStoreError("duplicate meta chunk", chunk.offset,
                                static_cast<std::int64_t>(
                                    chunk.header.seq));
        }
        offset = chunk.offset + fmt::kChunkHeaderBytes +
                 chunk.header.payloadBytes();
        if (info.cleanEnd)
            break;
    }
    info.hasSummary = haveSummary_;
    if (haveSummary_)
        info.summary = summary_;
    return info;
}

RecordingSummary
LogReader::summary()
{
    if (!haveSummary_) {
        forEachInterval([](sim::CoreId, const IntervalRecord &,
                           std::uint64_t, std::uint64_t) {});
    }
    if (!haveSummary_)
        throw LogStoreError("file has no summary chunk "
                            "(recording was never finished)",
                            fileBytes_);
    return summary_;
}

std::vector<VerifyIssue>
LogReader::verify()
{
    std::vector<VerifyIssue> issues;
    auto note = [&](std::uint64_t offset, std::int64_t seq,
                    std::string message) {
        issues.push_back({offset, seq, std::move(message)});
    };

    std::vector<std::uint64_t> intervals_per_core(coreCount_, 0);
    bool clean_end = false;
    bool have_summary = false;
    RecordingSummary summary;
    std::uint64_t offset = firstDataOffset_;
    std::uint64_t expected_seq = 1;

    while (true) {
        Chunk chunk;
        try {
            if (!readChunkAt(offset, chunk, /*verify_payload_crc=*/false))
                break;
        } catch (const LogStoreError &e) {
            // Framing is unrecoverable: without a trusted header we
            // cannot find the next chunk boundary.
            note(e.fileOffset(), e.chunkSeq(), e.what());
            return issues;
        }
        const auto seq = static_cast<std::int64_t>(chunk.header.seq);
        if (chunk.header.seq != expected_seq)
            note(chunk.offset, seq,
                 "chunk sequence break: expected " +
                     std::to_string(expected_seq) + ", found " +
                     std::to_string(chunk.header.seq));
        expected_seq = chunk.header.seq + 1;

        const bool payload_ok =
            fmt::crc32(chunk.payload.data(), chunk.payload.size()) ==
            chunk.header.payloadCrc;
        if (!payload_ok)
            note(chunk.offset, seq, "chunk payload CRC mismatch");

        if (payload_ok) {
            try {
                switch (chunk.header.type) {
                  case ChunkType::Data:
                    decodeDataChunk(
                        chunk, [&](sim::CoreId core,
                                   const IntervalRecord &) {
                            ++intervals_per_core[core];
                        });
                    break;
                  case ChunkType::Summary: {
                    Cursor c(chunk.payload, chunk.header.payloadBits,
                             chunk.offset, seq);
                    summary = decodeSummary(c);
                    have_summary = true;
                    break;
                  }
                  case ChunkType::End:
                    clean_end = true;
                    break;
                  case ChunkType::Meta:
                    note(chunk.offset, seq, "duplicate meta chunk");
                    break;
                }
            } catch (const LogStoreError &e) {
                note(e.fileOffset(), e.chunkSeq(), e.what());
            }
        }
        offset = chunk.offset + fmt::kChunkHeaderBytes +
                 chunk.header.payloadBytes();
        if (clean_end)
            break;
    }

    if (!clean_end)
        note(offset, -1,
             "no end-of-log marker: the recording was truncated");
    else if (offset != fileBytes_)
        note(offset, -1, "trailing bytes after the end-of-log marker");
    if (!have_summary)
        note(offset, -1, "file has no summary chunk");
    if (have_summary) {
        if (summary.cores.size() != coreCount_)
            note(offset, -1, "summary core count disagrees with header");
        for (std::size_t c = 0;
             c < summary.cores.size() && c < coreCount_; ++c) {
            if (summary.cores[c].intervals != intervals_per_core[c])
                note(offset, -1,
                     "core " + std::to_string(c) + ": summary promises " +
                         std::to_string(summary.cores[c].intervals) +
                         " intervals, data chunks hold " +
                         std::to_string(intervals_per_core[c]));
        }
    }
    return issues;
}

} // namespace rr::rnr
