/**
 * @file
 * Address signatures for interval conflict detection: banked Bloom
 * filters with H3 hash functions (paper Table 1: each signature is
 * 4 x 256-bit Bloom filters with H3 hashing). A signature answers
 * "might this interval have touched this line?" with no false
 * negatives; false positives only cause extra interval terminations,
 * never incorrect replay.
 */

#ifndef RR_RNR_SIGNATURE_HH
#define RR_RNR_SIGNATURE_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace rr::rnr
{

class Signature
{
  public:
    /**
     * @param banks Number of Bloom banks (one hash function each).
     * @param bits_per_bank Bank width in bits (power of two).
     * @param seed Seed for the H3 matrices; recorders on different
     *        cores may share a seed (the hardware would be identical).
     */
    Signature(std::uint32_t banks, std::uint32_t bits_per_bank,
              std::uint64_t seed);

    /** Insert a line address. */
    void insert(sim::Addr line_addr);

    /** May return true for addresses never inserted (aliasing). */
    bool mightContain(sim::Addr line_addr) const;

    /** Empty the signature (interval termination). */
    void clear();

    bool empty() const { return population_ == 0; }

    /** Number of set bits (diagnostics / density stats). */
    std::uint32_t population() const { return population_; }

    std::uint32_t sizeBits() const;

  private:
    std::uint32_t bankIndex(std::uint32_t bank, sim::Addr line) const;

    /**
     * All banks' H3 indexes for @p line, served from the line->index
     * cache. The cached values depend only on the (fixed) H3 matrices,
     * never on the filter contents, so clear() need not invalidate —
     * membership is always re-read from bits_.
     */
    const std::uint32_t *cachedIndexes(sim::Addr line) const;

    /** Direct-mapped line->index cache geometry (power of two). */
    static constexpr std::uint32_t kIndexCacheSlots = 64;
    static constexpr std::uint64_t kNoCachedLine = ~0ULL;

    std::uint32_t banks_;
    std::uint32_t bitsPerBank_;
    std::uint32_t indexBits_;
    /** H3: one random 64-bit row mask per output bit per bank. */
    std::vector<std::uint64_t> h3Rows_;
    std::vector<std::uint64_t> bits_; ///< banks_ * bitsPerBank_ / 64 words
    std::uint32_t population_ = 0;

    /**
     * The per-access record path hashes the same handful of hot lines
     * over and over (every insert and every snoop lookup runs the H3
     * popcount loop banks x indexBits times); a tiny direct-mapped
     * cache of recently hashed lines removes almost all of that work.
     * mutable: the cache is pure memoization, updated from const
     * lookups.
     */
    mutable std::vector<std::uint64_t> cacheTags_;
    mutable std::vector<std::uint32_t> cacheIdx_;
};

} // namespace rr::rnr

#endif // RR_RNR_SIGNATURE_HH
