/**
 * @file
 * Address signatures for interval conflict detection: banked Bloom
 * filters with H3 hash functions (paper Table 1: each signature is
 * 4 x 256-bit Bloom filters with H3 hashing). A signature answers
 * "might this interval have touched this line?" with no false
 * negatives; false positives only cause extra interval terminations,
 * never incorrect replay.
 */

#ifndef RR_RNR_SIGNATURE_HH
#define RR_RNR_SIGNATURE_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace rr::rnr
{

class Signature
{
  public:
    /**
     * @param banks Number of Bloom banks (one hash function each).
     * @param bits_per_bank Bank width in bits (power of two).
     * @param seed Seed for the H3 matrices; recorders on different
     *        cores may share a seed (the hardware would be identical).
     */
    Signature(std::uint32_t banks, std::uint32_t bits_per_bank,
              std::uint64_t seed);

    /** Insert a line address. */
    void insert(sim::Addr line_addr);

    /** May return true for addresses never inserted (aliasing). */
    bool mightContain(sim::Addr line_addr) const;

    /** Empty the signature (interval termination). */
    void clear();

    bool empty() const { return population_ == 0; }

    /** Number of set bits (diagnostics / density stats). */
    std::uint32_t population() const { return population_; }

    std::uint32_t sizeBits() const;

  private:
    std::uint32_t bankIndex(std::uint32_t bank, sim::Addr line) const;

    std::uint32_t banks_;
    std::uint32_t bitsPerBank_;
    std::uint32_t indexBits_;
    /** H3: one random 64-bit row mask per output bit per bank. */
    std::vector<std::uint64_t> h3Rows_;
    std::vector<std::uint64_t> bits_; ///< banks_ * bitsPerBank_ / 64 words
    std::uint32_t population_ = 0;
};

} // namespace rr::rnr

#endif // RR_RNR_SIGNATURE_HH
