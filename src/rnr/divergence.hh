/**
 * @file
 * Replay-divergence diagnostics. When the replayer finds that a log
 * entry does not line up with the program (a corrupted or mismatched
 * log, or a replayer bug), it no longer dies on a bare assertion:
 * it throws a ReplayDivergence carrying a DivergenceReport that names
 * the core, interval and access, shows expected-vs-actual, includes the
 * interval's ordering context, and dumps the last few replay steps of
 * every core from a ring buffer — turning "replay failed" into a
 * debuggable artifact.
 */

#ifndef RR_RNR_DIVERGENCE_HH
#define RR_RNR_DIVERGENCE_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "rnr/log.hh"
#include "sim/types.hh"

namespace rr::rnr
{

/** One recent replay step kept in the per-core diagnostic ring buffer. */
struct ReplayStep
{
    sim::CoreId core = 0;
    std::uint32_t interval = 0; ///< index into the core's log
    std::uint32_t entry = 0;    ///< entry index within that interval
    EntryKind kind = EntryKind::InorderBlock;
    std::uint64_t pc = 0; ///< pc when the entry started replaying
    /** Injected / stored value, or block size for InorderBlock. */
    std::uint64_t value = 0;
    sim::Addr addr = 0;
};

/** Everything known about a replay mismatch at the point of failure. */
struct DivergenceReport
{
    sim::CoreId core = 0;
    std::uint32_t intervalIndex = 0; ///< index into the core's log
    std::uint32_t entryIndex = 0;    ///< offending entry in that interval
    std::uint64_t pc = 0;            ///< pc at the failed step
    /** The offending log entry (value/address/offset context). */
    LogEntry entry;
    /** What the log demanded at this point. */
    std::string expected;
    /** What the program / replay context actually provided. */
    std::string actual;

    // Interval-ordering context.
    std::uint64_t timestamp = 0;     ///< the interval's global timestamp
    std::uint64_t orderPosition = 0; ///< intervals replayed before this one
    std::vector<IntervalDep> predecessors;

    /** Last replay steps of every core, oldest first. */
    std::vector<ReplayStep> recentSteps;

    /** Multi-line human-readable rendering. */
    std::string format() const;
};

/** Thrown by the replayer instead of asserting on a log mismatch. */
class ReplayDivergence : public std::runtime_error
{
  public:
    explicit ReplayDivergence(DivergenceReport report);

    const DivergenceReport &report() const { return report_; }
    /** Engines fill recentSteps from their rings before re-throwing. */
    DivergenceReport &mutableReport() { return report_; }

  private:
    DivergenceReport report_;
};

} // namespace rr::rnr

#endif // RR_RNR_DIVERGENCE_HH
