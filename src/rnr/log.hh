/**
 * @file
 * The RelaxReplay log: structured representation, packed bit sizes
 * (paper Figure 6c), serialization, and summary statistics.
 *
 * A per-core log is a sequence of interval records, each a list of
 * entries closed by an IntervalFrame carrying the interval's CISN and
 * its global ordering timestamp (QuickRec-style total order).
 *
 * Entry kinds:
 *  - InorderBlock      — recording + replay: N consecutive instructions
 *                        to execute natively.
 *  - ReorderedLoad     — recording + replay: next instruction is a load;
 *                        inject the recorded value.
 *  - ReorderedStore    — recording only: next instruction is a store
 *                        that performed `offset` intervals earlier; the
 *                        patching pass rewrites it.
 *  - ReorderedAtomic   — recording only (extension: the paper does not
 *                        treat RMW instructions): fused load+store.
 *  - PatchedStore      — replay only: apply value to address, no
 *                        instruction consumed (end of perform interval).
 *  - DummyStore        — replay only: skip one store instruction.
 *  - DummyAtomic       — replay only: next instruction is an atomic;
 *                        inject the recorded old value, skip the
 *                        memory update (already applied by PatchedStore).
 */

#ifndef RR_RNR_LOG_HH
#define RR_RNR_LOG_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace rr::rnr
{

enum class EntryKind : std::uint8_t
{
    InorderBlock = 0,
    ReorderedLoad = 1,
    ReorderedStore = 2,
    ReorderedAtomic = 3,
    PatchedStore = 4,
    DummyStore = 5,
    DummyAtomic = 6,
};

const char *toString(EntryKind k);

/** Packed field widths, in bits (Figure 6c; type tag is 3 bits). */
namespace bits
{
inline constexpr std::uint32_t kTypeTag = 3;
inline constexpr std::uint32_t kBlockSize = 32;
inline constexpr std::uint32_t kValue = 64;
inline constexpr std::uint32_t kAddress = 48;
inline constexpr std::uint32_t kOffset = 16;
inline constexpr std::uint32_t kCisn = 16;
inline constexpr std::uint32_t kTimestamp = 64;
/** Dependency-mode frame extension fields. */
inline constexpr std::uint32_t kDepCount = 8;
inline constexpr std::uint32_t kDepCore = 8;
inline constexpr std::uint32_t kDepIsn = 32;
} // namespace bits

struct LogEntry
{
    EntryKind kind = EntryKind::InorderBlock;
    /** InorderBlock: instruction count. */
    std::uint64_t blockSize = 0;
    /** Word address (ReorderedStore/Atomic, PatchedStore). */
    sim::Addr addr = 0;
    /** Loaded value (ReorderedLoad/Atomic, DummyAtomic). */
    std::uint64_t loadValue = 0;
    /** Stored value (ReorderedStore/Atomic, PatchedStore). */
    std::uint64_t storeValue = 0;
    /** CISN(count) - PISN(perform): how many intervals ago it performed. */
    std::uint32_t offset = 0;

    /** Packed size of this entry in the serialized log. */
    std::uint32_t sizeBits() const;

    static LogEntry
    inorderBlock(std::uint64_t n)
    {
        LogEntry e;
        e.kind = EntryKind::InorderBlock;
        e.blockSize = n;
        return e;
    }

    static LogEntry
    reorderedLoad(std::uint64_t value)
    {
        LogEntry e;
        e.kind = EntryKind::ReorderedLoad;
        e.loadValue = value;
        return e;
    }

    static LogEntry
    reorderedStore(sim::Addr addr, std::uint64_t value,
                   std::uint32_t offset)
    {
        LogEntry e;
        e.kind = EntryKind::ReorderedStore;
        e.addr = addr;
        e.storeValue = value;
        e.offset = offset;
        return e;
    }

    static LogEntry
    reorderedAtomic(sim::Addr addr, std::uint64_t load_value,
                    std::uint64_t store_value, std::uint32_t offset)
    {
        LogEntry e;
        e.kind = EntryKind::ReorderedAtomic;
        e.addr = addr;
        e.loadValue = load_value;
        e.storeValue = store_value;
        e.offset = offset;
        return e;
    }

    static LogEntry
    patchedStore(sim::Addr addr, std::uint64_t value)
    {
        LogEntry e;
        e.kind = EntryKind::PatchedStore;
        e.addr = addr;
        e.storeValue = value;
        return e;
    }

    static LogEntry
    dummyStore()
    {
        LogEntry e;
        e.kind = EntryKind::DummyStore;
        return e;
    }

    static LogEntry
    dummyAtomic(std::uint64_t load_value)
    {
        LogEntry e;
        e.kind = EntryKind::DummyAtomic;
        e.loadValue = load_value;
        return e;
    }

    bool operator==(const LogEntry &) const = default;
};

/** An inter-interval ordering edge: this interval's predecessor. */
struct IntervalDep
{
    sim::CoreId core = 0;
    sim::Isn isn = 0;

    bool operator==(const IntervalDep &) const = default;
};

/** One interval's record: entries plus the closing IntervalFrame. */
struct IntervalRecord
{
    std::vector<LogEntry> entries;
    /** Full-width CISN (the packed form keeps the low 16 bits). */
    sim::Isn cisn = 0;
    /** Global ordering timestamp (unique serialization stamp). */
    std::uint64_t timestamp = 0;
    /** Cycle of termination (reporting only; not serialized). */
    sim::Cycle cycle = 0;
    /**
     * Explicit predecessors (only with recordDependencies): intervals
     * of other cores that must replay before this one. Same-core
     * program order is implicit.
     */
    std::vector<IntervalDep> predecessors;

    std::uint64_t sizeBits() const;

    bool operator==(const IntervalRecord &) const = default;
};

/** The log of one core for one recorded execution. */
struct CoreLog
{
    std::vector<IntervalRecord> intervals;

    std::uint64_t sizeBits() const;
};

/** Aggregate counts for the figures. */
struct LogStats
{
    std::uint64_t intervals = 0;
    std::uint64_t inorderBlocks = 0;
    std::uint64_t inorderInstructions = 0; ///< sum of block sizes
    std::uint64_t reorderedLoads = 0;
    std::uint64_t reorderedStores = 0;
    std::uint64_t reorderedAtomics = 0;
    std::uint64_t totalBits = 0;

    std::uint64_t
    reordered() const
    {
        return reorderedLoads + reorderedStores + reorderedAtomics;
    }

    /** Total instructions the log replays. */
    std::uint64_t
    instructions() const
    {
        return inorderInstructions + reordered();
    }

    void accumulate(const CoreLog &log);
    LogStats &operator+=(const LogStats &o);
};

/** Serialized (bit-packed) form. */
struct PackedLog
{
    std::vector<std::uint8_t> bytes;
    std::uint64_t bitCount = 0;
};

PackedLog pack(const CoreLog &log);
CoreLog unpack(const PackedLog &packed);

} // namespace rr::rnr

#endif // RR_RNR_LOG_HH
