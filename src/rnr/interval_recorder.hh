/**
 * @file
 * One interval-recording policy instance: the per-processor MRR state of
 * paper Figure 6a minus the TRAQ (which is shared across policies by the
 * MrrHub so that one execution can be recorded under several
 * configurations simultaneously — "record once, log many").
 *
 * Owns: read/write signatures, CISN, current InorderBlock size, Snoop
 * Table (RelaxReplay_Opt), and the growing CoreLog. Interval ordering
 * follows the QuickRec approach the paper evaluates: a global timestamp
 * (serialization stamp) taken at interval termination provides the total
 * order enforced at replay.
 */

#ifndef RR_RNR_INTERVAL_RECORDER_HH
#define RR_RNR_INTERVAL_RECORDER_HH

#include <cstdint>
#include <functional>

#include "mem/coherence.hh"
#include "rnr/log.hh"
#include "rnr/signature.hh"
#include "rnr/snoop_table.hh"
#include "sim/config.hh"
#include "sim/faultinject.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace rr::rnr
{

class IntervalRecorder
{
  public:
    /** Per-policy TRAQ-entry state captured at an access's perform. */
    struct PerformState
    {
        sim::Isn pisn = 0;
        SnoopTable::Counts counts; ///< Snoop Count field (Opt only)
    };

    /** Why an interval was closed (trace + stats reporting). */
    enum class Termination
    {
        Conflict,
        MaxSize,
        Finish,
        Injected, ///< fault injection forced the termination
    };

    IntervalRecorder(sim::CoreId core, const sim::RecorderConfig &cfg,
                     mem::StampClock &clock, std::string name);

    /**
     * A coherence transaction was observed (snoopy: all of them).
     * @return true iff it conflicted with the current interval's
     *         signatures (and thus terminated the interval).
     */
    bool onSnoop(const mem::SnoopEvent &ev);

    /**
     * Record that this core's *current* interval must replay after
     * interval @p src_isn of core @p src_core (dependency-recording
     * mode; no-op otherwise). Called by the hub when another core
     * responds to / conflicts with this core's transaction.
     */
    void notePredecessor(sim::CoreId src_core, sim::Isn src_isn);

    /** Latest closed interval index, or false via @p valid if none. */
    sim::Isn
    lastClosedIsn(bool &valid) const
    {
        valid = cisn_ > 0;
        return cisn_ > 0 ? cisn_ - 1 : 0;
    }

    /**
     * A dirty line was evicted without future snoop visibility; only
     * acted upon when directoryEvictionBump is configured (Section 4.3).
     */
    void onDirtyEviction(sim::Addr line_addr);

    /**
     * An access reached its serialization point: insert its line in the
     * signatures and snapshot PISN + Snoop Table counters.
     */
    PerformState notePerform(mem::AccessKind kind, sim::Addr word_addr);

    /** Count a group of non-memory instructions (in program order). */
    void countNmi(std::uint32_t n, sim::Cycle now);

    /**
     * Count a memory-access instruction (in program order).
     *
     * @p local_write_pending: a *younger* write to the same line has
     * already performed (it is still in the TRAQ behind this access).
     * The Snoop Table only observes remote transactions, so it cannot
     * order same-core same-line accesses: if this access moved across
     * an interval boundary and were logged in-order while the younger
     * write logs as reordered (its perform interval), replay would run
     * the write first — inverting same-address program order. When the
     * flag is set and the perform moved across intervals, the access
     * is conservatively logged as reordered (value/position from the
     * log), which is always safe.
     */
    void countMem(mem::AccessKind kind, sim::Addr word_addr,
                  std::uint64_t load_value, std::uint64_t store_value,
                  std::uint32_t nmi_before, const PerformState &ps,
                  sim::Cycle now, bool local_write_pending = false);

    /** Close the final interval at program end. */
    void finish(sim::Cycle now);

    /**
     * Observe every interval as it closes (before the next one opens).
     * The streaming log store (rnr::LogWriter) hooks in here so a
     * recording flows to disk with bounded memory instead of being
     * serialized in one end-of-run pass. The interval stays in the
     * in-memory CoreLog regardless.
     */
    void
    setIntervalSink(std::function<void(const IntervalRecord &)> sink)
    {
        sink_ = std::move(sink);
    }

    const CoreLog &log() const { return log_; }
    CoreLog takeLog() { return std::move(log_); }
    const sim::RecorderConfig &config() const { return cfg_; }
    sim::Isn cisn() const { return cisn_; }
    sim::StatSet &stats() { return stats_; }

    /**
     * The mode the recorder is currently logging under. Starts at
     * cfg.mode; degrades Opt→Base for the rest of the run when the
     * Snoop Table saturates (graceful degradation: Base needs no
     * counters, so a correct — if larger — log keeps flowing).
     */
    sim::RecorderMode effectiveMode() const { return mode_; }

  private:
    void insertSignature(mem::AccessKind kind, sim::Addr line);
    bool conflicts(sim::Addr line, bool is_write) const;
    void flushBlock();
    void terminate(Termination why, sim::Cycle now);

    /** Fall back to Base logging once the Snoop Table saturates. */
    void maybeDowngrade(sim::Cycle now);

    /** Line key as the (possibly fault-aliased) signatures see it. */
    sim::Addr
    faultLine(sim::Addr line) const
    {
        return faults_ ? faults_->aliasLine(line) : line;
    }

    const sim::CoreId core_;
    const sim::RecorderConfig cfg_;
    mem::StampClock &clock_;
    sim::FaultInjector *faults_ = nullptr; ///< null when not installed
    sim::RecorderMode mode_;               ///< effective logging mode

    Signature readSig_;
    Signature writeSig_;
    SnoopTable snoopTable_;

    sim::Isn cisn_ = 0;
    std::uint64_t blockSize_ = 0;        ///< Current InorderBlock Size
    std::uint64_t intervalInstructions_ = 0;
    sim::Cycle intervalStartCycle_ = 0;  ///< For interval trace events
    IntervalRecord current_;
    CoreLog log_;
    std::function<void(const IntervalRecord &)> sink_;
    bool finished_ = false;

    sim::StatSet stats_;
};

} // namespace rr::rnr

#endif // RR_RNR_INTERVAL_RECORDER_HH
