/**
 * @file
 * Multi-threaded replay of dependency-recorded RelaxReplay logs
 * (paper Section 3.6).
 *
 * The sequential Replayer enforces the recorded *total* order of
 * intervals; with dependency recording enabled the logs also carry the
 * *partial* order (cross-core predecessor edges plus implicit per-core
 * program order), and replaying in any topological order of that DAG
 * reproduces the execution. The ParallelReplayer exploits exactly
 * that: every interval becomes a task gated on its DAG predecessors by
 * an atomic in-degree counter, a sim::TaskPool executes ready tasks on
 * a worker pool, and each task replays its interval against a private
 * write set layered over a sharded memory image
 * (mem::ShardedStore) that is committed when the interval completes —
 * the software analogue of the per-core replay the paper sketches.
 *
 * Determinism: the DAG orders every pair of intervals that touch the
 * same data (tested end-to-end against sequential replay for every
 * kernel and a fuzz of random topological orders), per-core state
 * (ExecContext, divergence ring, load-hook calls) is serialized by the
 * implicit program-order chain, and write sets commit before successor
 * in-degrees are released (acquire/release), so the final memory,
 * contexts, load-value hashes and modelled cost are bit-identical to
 * the sequential replayer at any worker count — the ctest gate
 * `test_parallel_replayer.cc` enforces this.
 */

#ifndef RR_RNR_PARALLEL_REPLAYER_HH
#define RR_RNR_PARALLEL_REPLAYER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <vector>

#include "isa/program.hh"
#include "mem/backing_store.hh"
#include "rnr/divergence.hh"
#include "rnr/log.hh"
#include "rnr/replayer.hh"
#include "sim/types.hh"

namespace rr::rnr
{

/**
 * Thrown by ParallelReplayer::run() when ParallelReplayOptions::
 * abortCheck fired: the replay was cancelled, not wrong.
 */
struct ReplayAborted : std::runtime_error
{
    ReplayAborted() : std::runtime_error("parallel replay aborted") {}
};

struct ParallelReplayOptions
{
    /** Worker threads; 0 = all hardware threads. */
    std::uint32_t workers = 0;
    /** Cost model for the (scheduling-independent) timing estimate. */
    ReplayCostModel costModel{};
    /** Lock shards of the shared memory image. */
    std::uint32_t shards = 64;
    /**
     * Cooperative abort: polled once per interval by every worker.
     * When it returns true the engine cancels all pending work,
     * lets in-flight intervals finish, and run() throws ReplayAborted.
     * Used by the replay service for job cancellation and timeouts;
     * replay state is abandoned, so partial progress is not visible.
     */
    std::function<bool()> abortCheck;
    /**
     * Aggregate the write sets of same-core interval chains and commit
     * them to the sharded image in one batched call per chain segment.
     * An interval only *must* publish before releasing a successor on
     * another core (the DAG edge is what a cross-core reader holds), so
     * intervals whose successors are all same-core keep their writes in
     * the core's private write set — the next interval of the chain
     * reads through it — and the eventual commit applies final values
     * once, skipping the per-interval shard traffic. Bit-identical
     * final memory either way; see docs/REPLAY.md ("Replay data path").
     */
    bool batchCommits = true;
};

class ParallelReplayer
{
  public:
    /**
     * @param prog The recorded program.
     * @param patched_logs One patched CoreLog per core (see
     *        patcher.hh), recorded with dependencies
     *        (RecorderConfig::recordDependencies) — without them the
     *        DAG degenerates to per-core chains and replay is unsound.
     * @param initial_memory The memory image recording started from.
     */
    ParallelReplayer(isa::Program prog,
                     std::vector<CoreLog> patched_logs,
                     mem::BackingStore initial_memory,
                     ParallelReplayOptions opts = {});

    /**
     * Observe every replayed load/atomic value. The hook is called
     * from worker threads concurrently, but calls for any one core are
     * serialized in that core's program order (the per-core DAG
     * chain) — per-core accumulation like the load-value hash chain
     * needs no locking.
     */
    void
    setLoadHook(std::function<void(sim::CoreId, std::uint64_t)> hook)
    {
        loadHook_ = std::move(hook);
    }

    /**
     * Replay the whole DAG. Returns the same result as
     * Replayer::run() — identical memory/contexts/cost/instructions —
     * plus measured wallSeconds/workers and per-worker utilization in
     * engineStats. Throws ReplayDivergence like the sequential engine
     * (the earliest-timestamp divergence when several workers hit one
     * before the pool quiesces). Single use: one run() per instance.
     */
    ReplayResult run();

  private:
    /** Owned copies: callers may pass temporaries. */
    const isa::Program prog_;
    std::vector<CoreLog> logs_;
    mem::BackingStore initialMemory_;
    ParallelReplayOptions opts_;
    std::function<void(sim::CoreId, std::uint64_t)> loadHook_;
    bool ran_ = false;
};

} // namespace rr::rnr

#endif // RR_RNR_PARALLEL_REPLAYER_HH
