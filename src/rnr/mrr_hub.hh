/**
 * @file
 * The per-core Memory Race Recorder hub. Owns the TRAQ (Tracking Queue,
 * paper Figure 3/6) and drives one or more IntervalRecorder policy
 * instances from the same execution — recording hardware for
 * RelaxReplay_Base and RelaxReplay_Opt differs only in counting-time
 * logic, so a single TRAQ can feed several configurations at once
 * ("record once, log many"; each policy keeps its own PISN/Snoop Count
 * fields in the shared entries).
 *
 * Event flow:
 *  - core signals (CoreListener): dispatch inserts entries, retirement
 *    advances the watermark, squashes flush the TRAQ tail, HALT closes
 *    the final interval once the write buffer drains;
 *  - memory-system signals (MemoryObserver): perform events fill in
 *    values and per-policy state; snoop events feed signatures and
 *    Snoop Tables.
 *
 * An entry is counted (removed from the TRAQ head, program order) when
 * it is both performed and retired — the paper's post-completion
 * in-order counting step.
 */

#ifndef RR_RNR_MRR_HUB_HH
#define RR_RNR_MRR_HUB_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cpu/core_listener.hh"
#include "mem/coherence.hh"
#include "rnr/interval_recorder.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace rr::rnr
{

class MrrHub : public cpu::CoreListener, public mem::MemoryObserver
{
  public:
    /**
     * @param policies One RecorderConfig per simultaneous recording;
     *        traqEntries of the first policy sizes the shared TRAQ.
     */
    MrrHub(sim::CoreId core, const std::vector<sim::RecorderConfig> &policies,
           mem::StampClock &clock);

    std::size_t numPolicies() const { return recorders_.size(); }
    IntervalRecorder &recorder(std::size_t i) { return *recorders_.at(i); }

    /**
     * Wire the hubs of all cores together so that dependency-recording
     * policies can send ordering edges to requesters (the hardware
     * piggybacks these on coherence responses). @p peers is indexed by
     * core id and must outlive this hub.
     */
    void setPeers(const std::vector<MrrHub *> &peers) { peers_ = peers; }

    // --- cpu::CoreListener ---
    void onDispatchMem(sim::SeqNum seq, const isa::Instruction &inst,
                       std::uint32_t nmi_before) override;
    void onDispatchNmiGroup(sim::SeqNum last_seq,
                            std::uint32_t count) override;
    void onForwardedLoadPerform(sim::SeqNum seq, sim::Addr word_addr,
                                std::uint64_t value, std::uint64_t stamp,
                                sim::Cycle cycle) override;
    void onRetire(const cpu::RetireInfo &info) override;
    void onSquash(sim::SeqNum youngest_surviving) override;
    void onHalted(sim::Cycle now, std::uint32_t residual_nmi) override;
    bool canDispatchMem() const override;

    // --- mem::MemoryObserver ---
    void onPerform(const mem::PerformEvent &ev) override;
    void onSnoop(sim::CoreId observer, const mem::SnoopEvent &ev) override;
    void onDirtyEviction(sim::CoreId core, sim::Addr line_addr,
                         std::uint64_t stamp) override;

    /** Sample TRAQ occupancy (Figure 12); call once per cycle. */
    void sampleOccupancy();

    std::size_t occupancy() const { return traq_.size(); }
    const sim::Histogram &occupancyHistogram() const { return histogram_; }
    sim::StatSet &stats() { return stats_; }

  private:
    enum class Kind : std::uint8_t
    {
        Load,
        Store,
        Atomic,
        NmiGroup,
    };

    struct TraqEntry
    {
        sim::SeqNum seq;
        Kind kind;
        std::uint32_t nmi; ///< NMI field (mem) or group size (NmiGroup)
        sim::Addr word = 0;
        std::uint64_t loadValue = 0;
        std::uint64_t storeValue = 0;
        bool performed = false;
        bool retired = false;
        bool oooAtPerform = false;
        std::vector<IntervalRecorder::PerformState> ps;
    };

    TraqEntry *findBySeq(sim::SeqNum seq);
    void recordPerform(TraqEntry &e, mem::AccessKind kind, sim::Addr word,
                       std::uint64_t load_value, std::uint64_t store_value,
                       sim::Cycle cycle);
    void drainCountable(sim::Cycle now);
    static mem::AccessKind accessKindOf(const TraqEntry &e);

    const sim::CoreId core_;
    mem::StampClock &clock_;
    std::vector<std::unique_ptr<IntervalRecorder>> recorders_;
    std::vector<MrrHub *> peers_;
    std::size_t traqCapacity_;

    std::deque<TraqEntry> traq_;
    /** Exclusive retirement watermark: seqs < retiredUpTo_ retired. */
    sim::SeqNum retiredUpTo_ = 0;
    bool haltPending_ = false;
    std::uint32_t residualNmi_ = 0;
    sim::Cycle haltCycle_ = 0;
    bool finished_ = false;

    sim::StatSet stats_;
    /** Registered in stats_ ("traq_occupancy"); exported with them. */
    sim::Histogram &histogram_;
};

} // namespace rr::rnr

#endif // RR_RNR_MRR_HUB_HH
