/**
 * @file
 * The RelaxReplay_Opt Snoop Table (paper Section 4.2 / Figure 8): two
 * arrays of 16-bit counters indexed by different hashes of the line
 * address. Every observed coherence transaction bumps one counter per
 * array; a memory access snapshots its two counters at perform and
 * re-reads them at counting. If *both* changed, some transaction that
 * may conflict with the access was observed in between and the access
 * is declared reordered; if at most one changed, the change was due to
 * aliasing and the access's perform event can be moved to its counting
 * point. Counters wrap; the 16-bit width makes a same-value wrap
 * between perform and counting implausible (the paper's argument).
 */

#ifndef RR_RNR_SNOOP_TABLE_HH
#define RR_RNR_SNOOP_TABLE_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace rr::rnr
{

class SnoopTable
{
  public:
    /** Snapshot of one line's counters (the TRAQ Snoop Count field). */
    struct Counts
    {
        std::uint16_t c0 = 0;
        std::uint16_t c1 = 0;

        bool operator==(const Counts &) const = default;
    };

    SnoopTable(std::uint32_t entries_per_array)
        : mask_(entries_per_array - 1), array0_(entries_per_array, 0),
          array1_(entries_per_array, 0)
    {
        RR_ASSERT((entries_per_array & mask_) == 0,
                  "snoop table size must be a power of two");
    }

    /**
     * Stress/fault-injection hook: counters stop incrementing once they
     * reach @p cap (0 disables). A real Snoop Table's counters wrap; a
     * saturating one loses the "did it move?" signal, which is the
     * hardware-degradation scenario the recorder must survive by
     * falling back from Opt to Base logging (see saturated()).
     */
    void setSaturationCap(std::uint16_t cap) { cap_ = cap; }

    /** Sticky: any counter ever hit the saturation cap. */
    bool saturated() const { return saturated_; }

    /** Record an observed coherence transaction (or dirty eviction). */
    void
    bump(sim::Addr line_addr)
    {
        bumpCounter(array0_[index0(line_addr)]);
        bumpCounter(array1_[index1(line_addr)]);
    }

    /** Read the two counters for a line (at perform and at counting). */
    Counts
    read(sim::Addr line_addr) const
    {
        return {array0_[index0(line_addr)], array1_[index1(line_addr)]};
    }

    /**
     * Counting-time decision: reordered iff both counters moved since
     * the perform-time snapshot (a single change is attributed to
     * aliasing, Section 4.2).
     */
    bool
    conflictSince(sim::Addr line_addr, const Counts &at_perform) const
    {
        const Counts now = read(line_addr);
        return now.c0 != at_perform.c0 && now.c1 != at_perform.c1;
    }

    std::uint32_t sizeBytes() const
    {
        return static_cast<std::uint32_t>(
            (array0_.size() + array1_.size()) * sizeof(std::uint16_t));
    }

  private:
    void
    bumpCounter(std::uint16_t &c)
    {
        if (cap_ != 0 && c >= cap_) {
            saturated_ = true;
            return;
        }
        ++c;
    }

    std::size_t
    index0(sim::Addr line) const
    {
        const std::uint64_t key = line / sim::kLineBytes;
        return (key * 0x9e3779b97f4a7c15ULL >> 32) & mask_;
    }

    std::size_t
    index1(sim::Addr line) const
    {
        const std::uint64_t key = line / sim::kLineBytes;
        return (key * 0xc2b2ae3d27d4eb4fULL >> 32) & mask_;
    }

    std::uint64_t mask_;
    std::uint16_t cap_ = 0;
    bool saturated_ = false;
    std::vector<std::uint16_t> array0_;
    std::vector<std::uint16_t> array1_;
};

} // namespace rr::rnr

#endif // RR_RNR_SNOOP_TABLE_HH
