#include "rnr/interval_recorder.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace rr::rnr
{

namespace
{

const char *
toString(IntervalRecorder::Termination why)
{
    switch (why) {
      case IntervalRecorder::Termination::Conflict:
        return "snoop-conflict";
      case IntervalRecorder::Termination::MaxSize:
        return "size-cap";
      case IntervalRecorder::Termination::Finish:
        return "finish";
      case IntervalRecorder::Termination::Injected:
        return "fault-injected";
    }
    return "?";
}

} // namespace

IntervalRecorder::IntervalRecorder(sim::CoreId core,
                                   const sim::RecorderConfig &cfg,
                                   mem::StampClock &clock,
                                   std::string name)
    : core_(core), cfg_(cfg), clock_(clock), mode_(cfg.mode),
      readSig_(cfg.signatureBanks, cfg.signatureBitsPerBank,
               0x5ead51f0beefULL),
      writeSig_(cfg.signatureBanks, cfg.signatureBitsPerBank,
                0x3517e51f0aceULL),
      snoopTable_(cfg.snoopTableEntries), stats_(std::move(name))
{
    // Bind the injector at construction: an injector installed mid-run
    // is deliberately ignored so a run's fault plan is fixed up front.
    if (sim::FaultInjector::enabled()) {
        faults_ = sim::FaultInjector::get();
        if (faults_->plan().stSaturateAt)
            snoopTable_.setSaturationCap(faults_->plan().stSaturateAt);
    }
}

void
IntervalRecorder::insertSignature(mem::AccessKind kind, sim::Addr line)
{
    if (kind == mem::AccessKind::Load) {
        readSig_.insert(line);
    } else if (kind == mem::AccessKind::Store) {
        writeSig_.insert(line);
    } else {
        readSig_.insert(line);
        writeSig_.insert(line);
    }
}

bool
IntervalRecorder::conflicts(sim::Addr line, bool is_write) const
{
    if (is_write) {
        return readSig_.mightContain(line) ||
               writeSig_.mightContain(line);
    }
    return writeSig_.mightContain(line);
}

bool
IntervalRecorder::onSnoop(const mem::SnoopEvent &ev)
{
    if (finished_)
        return false;
    // Signature inserts and queries use the same (possibly aliased)
    // line key, so injected aliasing stays conservative: extra
    // conflicts, never missed ones.
    const sim::Addr line = faultLine(ev.lineAddr);
    bool conflicted = false;
    if (conflicts(line, ev.isWrite)) {
        stats_.counter("terminations_conflict")++;
        terminate(Termination::Conflict, ev.cycle);
        conflicted = true;
    }
    if (sim::TraceSink::enabled()) {
        sim::TraceSink::get()->instant(
            sim::TraceSink::kRecordPid, core_, "snoop",
            conflicted ? "snoop-conflict" : "snoop", ev.cycle,
            {{"line", ev.lineAddr},
             {"requester", ev.requester},
             {"write", ev.isWrite},
             {"policy", stats_.name().c_str()}});
    }
    if (mode_ == sim::RecorderMode::Opt) {
        snoopTable_.bump(line);
        maybeDowngrade(ev.cycle);
    }
    return conflicted;
}

void
IntervalRecorder::notePredecessor(sim::CoreId src_core, sim::Isn src_isn)
{
    if (!cfg_.recordDependencies || finished_)
        return;
    // One edge per source core suffices: the source's intervals are
    // chain-ordered, so the newest edge subsumes older ones.
    for (IntervalDep &d : current_.predecessors) {
        if (d.core != src_core)
            continue;
        if (src_isn > d.isn)
            d.isn = src_isn;
        return;
    }
    current_.predecessors.push_back(IntervalDep{src_core, src_isn});
    stats_.counter("dependency_edges")++;
}

void
IntervalRecorder::onDirtyEviction(sim::Addr line_addr)
{
    if (finished_ || !cfg_.directoryEvictionBump)
        return;
    if (mode_ == sim::RecorderMode::Opt) {
        snoopTable_.bump(faultLine(line_addr));
        stats_.counter("dirty_eviction_bumps")++;
        maybeDowngrade(0);
    }
}

IntervalRecorder::PerformState
IntervalRecorder::notePerform(mem::AccessKind kind, sim::Addr word_addr)
{
    const sim::Addr line = faultLine(sim::lineAddr(word_addr));
    insertSignature(kind, line);
    PerformState ps;
    ps.pisn = cisn_;
    if (mode_ == sim::RecorderMode::Opt)
        ps.counts = snoopTable_.read(line);
    return ps;
}

void
IntervalRecorder::countNmi(std::uint32_t n, sim::Cycle now)
{
    RR_ASSERT(!finished_, "counting after finish");
    if (n == 0)
        return;
    blockSize_ += n;
    intervalInstructions_ += n;
    if (cfg_.maxIntervalInstructions != 0 &&
        intervalInstructions_ >= cfg_.maxIntervalInstructions) {
        stats_.counter("terminations_maxsize")++;
        terminate(Termination::MaxSize, now);
    } else if (faults_ && faults_->forceTerminate(core_)) {
        stats_.counter("terminations_injected")++;
        terminate(Termination::Injected, now);
    }
}

void
IntervalRecorder::countMem(mem::AccessKind kind, sim::Addr word_addr,
                           std::uint64_t load_value,
                           std::uint64_t store_value,
                           std::uint32_t nmi_before,
                           const PerformState &ps, sim::Cycle now,
                           bool local_write_pending)
{
    RR_ASSERT(!finished_, "counting after finish");
    const sim::Addr line = faultLine(sim::lineAddr(word_addr));

    bool reordered;
    if (ps.pisn == cisn_) {
        // Perform and counting fall in the same interval: the perform
        // event trivially moves to the counting point (Observation 2).
        reordered = false;
    } else if (mode_ == sim::RecorderMode::Base) {
        reordered = true;
    } else {
        // The Snoop Table's hit/miss decision: a "hit" (both counters
        // moved) means a conflicting transaction may have been observed
        // between perform and counting, so the access logs as reordered.
        // A younger performed same-line write forces the same answer:
        // it may itself log as reordered into this access's perform
        // interval, and moving this access to the counting point would
        // then replay it after that younger write (the Snoop Table is
        // blind to local writes, so only the TRAQ can see this).
        reordered = local_write_pending ||
                    snoopTable_.conflictSince(line, ps.counts);
        if (local_write_pending)
            stats_.counter("local_order_forced_reorders")++;
        if (!reordered) {
            // Moving the perform event across intervals: the access now
            // belongs to the current interval, so its address must enter
            // the current signatures for correct interval ordering
            // (Section 4.2).
            insertSignature(kind, line);
            stats_.counter("moved_across_intervals")++;
        }
        if (sim::TraceSink::enabled()) {
            sim::TraceSink::get()->instant(
                sim::TraceSink::kRecordPid, core_, "traq",
                reordered ? "snoop-table-hit" : "snoop-table-miss", now,
                {{"addr", word_addr},
                 {"pisn", static_cast<std::uint64_t>(ps.pisn)},
                 {"cisn", static_cast<std::uint64_t>(cisn_)},
                 {"policy", stats_.name().c_str()}});
        }
    }

    blockSize_ += nmi_before;
    intervalInstructions_ += nmi_before + 1;
    stats_.counter("counted_mem")++;

    if (!reordered) {
        ++blockSize_;
    } else {
        flushBlock();
        const sim::Isn delta = cisn_ - ps.pisn;
        RR_ASSERT(delta > 0 && delta < (1ULL << bits::kOffset),
                  "interval offset out of range");
        const auto offset = static_cast<std::uint32_t>(delta);
        if (sim::TraceSink::enabled()) {
            sim::TraceSink::get()->instant(
                sim::TraceSink::kRecordPid, core_, "traq", "reordered",
                now,
                {{"addr", word_addr},
                 {"offset", offset},
                 {"policy", stats_.name().c_str()}});
        }
        switch (kind) {
          case mem::AccessKind::Load:
            current_.entries.push_back(LogEntry::reorderedLoad(load_value));
            stats_.counter("reordered_loads")++;
            break;
          case mem::AccessKind::Store:
            current_.entries.push_back(
                LogEntry::reorderedStore(word_addr, store_value, offset));
            stats_.counter("reordered_stores")++;
            break;
          default:
            current_.entries.push_back(LogEntry::reorderedAtomic(
                word_addr, load_value, store_value, offset));
            stats_.counter("reordered_atomics")++;
            break;
        }
    }

    if (cfg_.maxIntervalInstructions != 0 &&
        intervalInstructions_ >= cfg_.maxIntervalInstructions) {
        stats_.counter("terminations_maxsize")++;
        terminate(Termination::MaxSize, now);
    } else if (faults_ && faults_->forceTerminate(core_)) {
        stats_.counter("terminations_injected")++;
        terminate(Termination::Injected, now);
    }
}

void
IntervalRecorder::flushBlock()
{
    if (blockSize_ == 0)
        return;
    current_.entries.push_back(LogEntry::inorderBlock(blockSize_));
    blockSize_ = 0;
}

void
IntervalRecorder::terminate(Termination why, sim::Cycle now)
{
    flushBlock();
    current_.cisn = cisn_;
    current_.timestamp = clock_.next();
    current_.cycle = now;
    if (sim::TraceSink::enabled()) {
        sim::TraceSink::get()->complete(
            sim::TraceSink::kRecordPid, core_, "interval", stats_.name(),
            intervalStartCycle_, now - intervalStartCycle_,
            {{"cisn", static_cast<std::uint64_t>(cisn_)},
             {"reason", toString(why)},
             {"entries", static_cast<std::uint64_t>(
                             current_.entries.size())},
             {"instructions", intervalInstructions_},
             {"timestamp", current_.timestamp}});
    }
    log_.intervals.push_back(std::move(current_));
    if (sink_)
        sink_(log_.intervals.back());
    current_ = IntervalRecord{};
    ++cisn_;
    intervalInstructions_ = 0;
    intervalStartCycle_ = now;
    readSig_.clear();
    writeSig_.clear();
    stats_.counter("intervals")++;
}

void
IntervalRecorder::maybeDowngrade(sim::Cycle now)
{
    if (mode_ != sim::RecorderMode::Opt || !snoopTable_.saturated())
        return;
    // The Snoop Table can no longer tell "counter moved" from "counter
    // stuck at the cap", so its hit/miss answer is untrustworthy. Base
    // logging needs no counters: fall back for the rest of the run and
    // keep producing a correct (if larger) log instead of aborting.
    mode_ = sim::RecorderMode::Base;
    stats_.counter("opt_base_downgrades")++;
    if (faults_)
        faults_->noteDegradation("opt_base_downgrades");
    sim::warn("core %u (%s): snoop table saturated, downgrading "
              "Opt -> Base logging",
              core_, stats_.name().c_str());
    if (sim::TraceSink::enabled()) {
        sim::TraceSink::get()->instant(
            sim::TraceSink::kRecordPid, core_, "fault", "opt-downgrade",
            now, {{"policy", stats_.name().c_str()}});
    }
}

void
IntervalRecorder::finish(sim::Cycle now)
{
    RR_ASSERT(!finished_, "finish twice");
    if (intervalInstructions_ > 0 || blockSize_ > 0 ||
        !current_.entries.empty()) {
        stats_.counter("terminations_finish")++;
        terminate(Termination::Finish, now);
    }
    finished_ = true;
}

} // namespace rr::rnr
