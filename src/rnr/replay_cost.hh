/**
 * @file
 * Cost model for the replay timing estimate (Figure 13), shared by the
 * replay engines and the parallel-schedule analysis. Split out of
 * replayer.hh so the interval interpreter and the DAG scheduler can use
 * it without pulling in a whole engine.
 */

#ifndef RR_RNR_REPLAY_COST_HH
#define RR_RNR_REPLAY_COST_HH

#include <cstdint>

namespace rr::rnr
{

/**
 * Cost constants for the replay timing estimate. The paper's control
 * module is linked into the application (Section 5.1), so "OS" costs
 * are user-level: an end-of-block interrupt is a pipeline flush plus a
 * handler entry/exit, interval ordering uses emulated condition
 * variables, and reordered accesses are emulated in software. Defaults
 * are calibrated to those magnitudes.
 */
struct ReplayCostModel
{
    /**
     * Native IPC of uncontended in-order block replay. Replay runs the
     * same code without coherence contention; its IPC approaches the
     * recorded per-core IPC.
     */
    double replayIpc = 2.5;
    /** End-of-InorderBlock interrupt: flush + handler entry/exit. */
    std::uint64_t interruptCost = 150;
    /** Log decode cost per entry, cycles. */
    std::uint64_t perEntryCost = 20;
    /** Software emulation of one reordered/dummy/patched access. */
    std::uint64_t perReorderedCost = 150;
    /** Interval ordering hand-off (emulated condition variable). */
    std::uint64_t perIntervalCost = 400;
};

/** Replay cycle estimate, split as in Figure 13. */
struct ReplayCost
{
    std::uint64_t userCycles = 0;
    std::uint64_t osCycles = 0;

    std::uint64_t total() const { return userCycles + osCycles; }
};

} // namespace rr::rnr

#endif // RR_RNR_REPLAY_COST_HH
