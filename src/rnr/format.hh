/**
 * @file
 * The `.rrlog` wire format: the on-disk container for RelaxReplay
 * recordings (see docs/LOG_FORMAT.md for the full specification).
 *
 * Layout (all integers little-endian):
 *
 *   FileHeader      24 bytes: magic "RRLG", format version, machine
 *                   configuration fingerprint, core count, header CRC.
 *   Chunk*          a sequence of self-framing chunks, each a 32-byte
 *                   CRC-protected header followed by a payload whose
 *                   CRC32 the header carries:
 *                     Meta     recording parameters (one, first)
 *                     Data     bit-packed intervals of one core
 *                     Summary  replay-verification targets (one)
 *                     End      clean-termination marker (one, last)
 *
 * Data payloads use the existing rnr::BitWriter bit packer plus the
 * varint / zigzag-delta codecs defined here: entry fields, interval
 * sequence numbers (delta per chunk) and timestamps (zigzag delta per
 * chunk) shrink to their information content instead of the fixed
 * Figure-6c field widths the in-memory size model reports.
 */

#ifndef RR_RNR_FORMAT_HH
#define RR_RNR_FORMAT_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "rnr/bitstream.hh"

namespace rr::rnr::fmt
{

/** First bytes of every .rrlog file. */
inline constexpr std::array<char, 4> kMagic = {'R', 'R', 'L', 'G'};

/** Current container format version; readers refuse newer files. */
inline constexpr std::uint16_t kFormatVersion = 1;

/**
 * File-header flags (the 16-bit field at byte offset 6, reserved-zero
 * before flags existed — old readers that ignore it stay compatible).
 */
///@{
/**
 * The file deliberately holds only a prefix of the recording: the
 * writer hit its log-size budget, or `rrlog repair` salvaged a torn
 * file. Data chunks and End marker are intact; a Summary chunk, when
 * present, describes the *full* recording (for reference), so interval
 * counts need not match the data chunks. Replay requires an explicit
 * `--allow-partial` opt-in.
 */
inline constexpr std::uint16_t kFlagPartial = 1;
/**
 * The recording was made on a machine with directory (home-directory
 * MESI) coherence; replay must rebuild the same backend. Mirrors
 * RecordingMeta::coherence so tools can classify a file from the
 * 24-byte header alone, before decoding the Meta chunk.
 */
inline constexpr std::uint16_t kFlagDirectory = 2;
///@}

inline constexpr std::size_t kFileHeaderBytes = 24;
inline constexpr std::size_t kChunkHeaderBytes = 32;
/** Byte offset of the 16-bit flags field within the file header. */
inline constexpr std::size_t kFlagsOffset = 6;

/** A core's pending chunk is flushed once its payload reaches this. */
inline constexpr std::size_t kChunkTargetBytes = 64 * 1024;

enum class ChunkType : std::uint8_t
{
    Meta = 1,
    Data = 2,
    Summary = 3,
    End = 4,
};

inline const char *
toString(ChunkType t)
{
    switch (t) {
      case ChunkType::Meta: return "meta";
      case ChunkType::Data: return "data";
      case ChunkType::Summary: return "summary";
      case ChunkType::End: return "end";
    }
    return "?";
}

/** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). */
inline std::uint32_t
crc32(const std::uint8_t *data, std::size_t len)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

/** @name Little-endian byte append/extract helpers */
///@{
inline void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/** Callers bounds-check; these just assemble little-endian fields. */
inline std::uint16_t
getU16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

inline std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

inline std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}
///@}

/**
 * Append a LEB128-style varint to a bitstream: 8-bit groups of one
 * continuation bit (0x80) plus 7 value bits, least-significant first.
 * A 64-bit value needs at most kMaxVarintGroups groups.
 */
inline constexpr std::uint32_t kMaxVarintGroups = 10;

inline void
writeVarint(BitWriter &w, std::uint64_t v)
{
    do {
        std::uint64_t group = v & 0x7f;
        v >>= 7;
        if (v != 0)
            group |= 0x80;
        w.write(group, 8);
    } while (v != 0);
}

/**
 * Bounded varint decode for untrusted bitstreams: reads groups from
 * @p r but never past @p bit_limit, and rejects encodings longer than
 * kMaxVarintGroups. @return false (leaving @p out unspecified) on
 * truncation or overlong input instead of reading out of bounds.
 */
inline bool
tryReadVarint(BitReader &r, std::uint64_t bit_limit, std::uint64_t &out)
{
    out = 0;
    for (std::uint32_t g = 0; g < kMaxVarintGroups; ++g) {
        if (r.position() + 8 > bit_limit)
            return false;
        const std::uint64_t group = r.read(8);
        out |= (group & 0x7f) << (7 * g);
        if (!(group & 0x80))
            return true;
    }
    return false;
}

/** Zigzag-fold a signed delta so small magnitudes stay small. */
inline std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/** Bits writeVarint() will emit for @p v (stats/size accounting). */
inline std::uint32_t
varintBits(std::uint64_t v)
{
    std::uint32_t groups = 1;
    while ((v >>= 7) != 0)
        ++groups;
    return groups * 8;
}

/**
 * One chunk's 32-byte framing header. Both the payload and the header
 * itself are CRC-protected so corruption is reported with the offending
 * file offset instead of being decoded into garbage.
 */
struct ChunkHeader
{
    ChunkType type = ChunkType::Data;
    std::uint32_t core = 0;    ///< producing core (Data chunks)
    std::uint64_t seq = 0;     ///< chunk index within the file, from 0
    std::uint64_t payloadBits = 0; ///< valid payload bits; bytes round up
    std::uint32_t payloadCrc = 0;  ///< CRC-32 of the payload bytes

    std::uint64_t
    payloadBytes() const
    {
        return (payloadBits + 7) / 8;
    }

    /** Serialize, computing the trailing header CRC. */
    std::array<std::uint8_t, kChunkHeaderBytes>
    encode() const
    {
        std::vector<std::uint8_t> b;
        b.reserve(kChunkHeaderBytes);
        b.push_back(static_cast<std::uint8_t>(type));
        b.push_back(0);
        b.push_back(0);
        b.push_back(0);
        putU32(b, core);
        putU64(b, seq);
        putU64(b, payloadBits);
        putU32(b, payloadCrc);
        putU32(b, crc32(b.data(), b.size()));
        std::array<std::uint8_t, kChunkHeaderBytes> out{};
        std::memcpy(out.data(), b.data(), kChunkHeaderBytes);
        return out;
    }

    /**
     * @return false when the trailing header CRC does not match or the
     *         chunk type is not one of the defined values.
     */
    static bool
    decode(const std::uint8_t *p, ChunkHeader &out)
    {
        if (crc32(p, kChunkHeaderBytes - 4) !=
            getU32(p + kChunkHeaderBytes - 4))
            return false;
        if (p[0] < static_cast<std::uint8_t>(ChunkType::Meta) ||
            p[0] > static_cast<std::uint8_t>(ChunkType::End))
            return false;
        out.type = static_cast<ChunkType>(p[0]);
        out.core = getU32(p + 4);
        out.seq = getU64(p + 8);
        out.payloadBits = getU64(p + 16);
        out.payloadCrc = getU32(p + 24);
        return true;
    }
};

} // namespace rr::rnr::fmt

#endif // RR_RNR_FORMAT_HH
