/**
 * @file
 * Deterministic replay of RelaxReplay logs (paper Section 3.5).
 *
 * The replayer plays the role of the OS module plus the minimal hardware
 * support (an instruction counter with a synchronous interrupt): it
 * enforces the recorded total order of intervals and, per interval,
 * executes InorderBlocks natively (here: through the functional
 * interpreter), injects values for ReorderedLoads, applies PatchedStores
 * at perform-interval ends and skips Dummy entries.
 *
 * Replay is *exact*: the determinism tests require every replayed load
 * value and the final memory/register state to match the recorded
 * execution. A ReplayCostModel estimates User/OS cycles for Figure 13,
 * mirroring how the paper links its control module with the application
 * to measure replay overhead.
 */

#ifndef RR_RNR_REPLAYER_HH
#define RR_RNR_REPLAYER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "isa/program.hh"
#include "mem/backing_store.hh"
#include "rnr/divergence.hh"
#include "rnr/log.hh"
#include "sim/types.hh"

namespace rr::rnr
{

/**
 * Cost constants for the replay timing estimate. The paper's control
 * module is linked into the application (Section 5.1), so "OS" costs
 * are user-level: an end-of-block interrupt is a pipeline flush plus a
 * handler entry/exit, interval ordering uses emulated condition
 * variables, and reordered accesses are emulated in software. Defaults
 * are calibrated to those magnitudes.
 */
struct ReplayCostModel
{
    /**
     * Native IPC of uncontended in-order block replay. Replay runs the
     * same code without coherence contention; its IPC approaches the
     * recorded per-core IPC.
     */
    double replayIpc = 2.5;
    /** End-of-InorderBlock interrupt: flush + handler entry/exit. */
    std::uint64_t interruptCost = 150;
    /** Log decode cost per entry, cycles. */
    std::uint64_t perEntryCost = 20;
    /** Software emulation of one reordered/dummy/patched access. */
    std::uint64_t perReorderedCost = 150;
    /** Interval ordering hand-off (emulated condition variable). */
    std::uint64_t perIntervalCost = 400;
};

/** Replay cycle estimate, split as in Figure 13. */
struct ReplayCost
{
    std::uint64_t userCycles = 0;
    std::uint64_t osCycles = 0;

    std::uint64_t total() const { return userCycles + osCycles; }
};

struct ReplayResult
{
    /** Instructions architecturally replayed, across all cores. */
    std::uint64_t instructions = 0;
    /** Memory image after replay. */
    mem::BackingStore memory;
    /** Final architectural context per core. */
    std::vector<isa::ExecContext> contexts;
    /** Timing estimate. */
    ReplayCost cost;
    /** Intervals processed. */
    std::uint64_t intervals = 0;
};

class Replayer
{
  public:
    /**
     * @param prog The recorded program.
     * @param patched_logs One patched CoreLog per core (see patcher.hh).
     * @param initial_memory The memory image recording started from.
     */
    Replayer(isa::Program prog, std::vector<CoreLog> patched_logs,
             mem::BackingStore initial_memory);

    /** Observe every replayed load/atomic value (determinism checks). */
    void
    setLoadHook(std::function<void(sim::CoreId, std::uint64_t)> hook)
    {
        loadHook_ = std::move(hook);
    }

    void setCostModel(const ReplayCostModel &m) { costModel_ = m; }

    /** One step of an explicit replay order. */
    struct OrderItem
    {
        sim::CoreId core;
        std::uint32_t index;
    };

    /** Run the whole replay sequentially, in recorded timestamp order. */
    ReplayResult run();

    /**
     * Replay in an explicit interval order (e.g. a topological order of
     * the dependency DAG from parallel_schedule.hh). The order must
     * contain every interval of every core exactly once and must
     * respect per-core interval order; correctness additionally
     * requires it to respect the recorded dependencies.
     *
     * Both run() and runInOrder() throw ReplayDivergence (see
     * divergence.hh) when a log entry does not line up with the
     * program — e.g. a corrupted log.
     */
    ReplayResult runInOrder(const std::vector<OrderItem> &order);

    /** Replay steps kept per core for divergence reports. */
    static constexpr std::size_t kRingDepth = 8;

  private:
    struct IntervalRef
    {
        std::uint64_t timestamp;
        sim::CoreId core;
        std::uint32_t index;
    };

    void replayInterval(sim::CoreId core, std::uint32_t interval_index,
                        std::uint64_t order_position, ReplayResult &res);

    /** Remember one replay step in core @p core 's ring buffer. */
    void noteStep(const ReplayStep &step);

    /** Throw a ReplayDivergence describing the current failure. */
    [[noreturn]] void diverge(sim::CoreId core,
                              std::uint32_t interval_index,
                              std::uint32_t entry_index,
                              std::uint64_t order_position,
                              std::uint64_t pc, const LogEntry &entry,
                              std::string expected, std::string actual);

    /** Owned copy: callers may pass temporaries. */
    const isa::Program prog_;
    std::vector<CoreLog> logs_;
    mem::BackingStore memory_;
    ReplayCostModel costModel_;
    std::function<void(sim::CoreId, std::uint64_t)> loadHook_;
    /** Per-core ring of the last kRingDepth replay steps. */
    std::vector<std::deque<ReplayStep>> recentSteps_;
};

} // namespace rr::rnr

#endif // RR_RNR_REPLAYER_HH
