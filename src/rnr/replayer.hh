/**
 * @file
 * Deterministic replay of RelaxReplay logs (paper Section 3.5).
 *
 * The replayer plays the role of the OS module plus the minimal hardware
 * support (an instruction counter with a synchronous interrupt): it
 * enforces the recorded total order of intervals and, per interval,
 * executes InorderBlocks natively (here: through the functional
 * interpreter), injects values for ReorderedLoads, applies PatchedStores
 * at perform-interval ends and skips Dummy entries.
 *
 * Replay is *exact*: the determinism tests require every replayed load
 * value and the final memory/register state to match the recorded
 * execution. A ReplayCostModel estimates User/OS cycles for Figure 13,
 * mirroring how the paper links its control module with the application
 * to measure replay overhead.
 */

#ifndef RR_RNR_REPLAYER_HH
#define RR_RNR_REPLAYER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "isa/program.hh"
#include "mem/backing_store.hh"
#include "rnr/divergence.hh"
#include "rnr/log.hh"
#include "rnr/replay_cost.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace rr::rnr
{

struct ReplayResult
{
    /** Instructions architecturally replayed, across all cores. */
    std::uint64_t instructions = 0;
    /** Memory image after replay. */
    mem::BackingStore memory;
    /** Final architectural context per core. */
    std::vector<isa::ExecContext> contexts;
    /** Timing estimate (modelled cycles, not wall-clock). */
    ReplayCost cost;
    /** Intervals processed. */
    std::uint64_t intervals = 0;

    // Engine execution measurements (host wall-clock, not modelled).
    /** Measured wall-clock seconds spent replaying. */
    double wallSeconds = 0.0;
    /** Worker threads the engine used (1 for sequential replay). */
    std::uint32_t workers = 1;
    /**
     * Sum of measured per-interval replay durations (the serial
     * execution time the DAG schedule is compared against). Parallel
     * engine only; 0 for sequential replay.
     */
    double measuredSerialSeconds = 0.0;
    /**
     * Makespan of the measured-duration list schedule on `workers`
     * lanes: the wall-clock this run's DAG supports given that many
     * hardware threads. measuredSerialSeconds / measuredSpanSeconds
     * is the measured speedup (host-CPU-count independent).
     */
    double measuredSpanSeconds = 0.0;
    /**
     * Engine counters: per-worker busy seconds/tasks and aggregate
     * utilization (parallel engine), empty for sequential replay.
     */
    sim::StatSet engineStats{"replay_engine"};
};

class Replayer
{
  public:
    /**
     * @param prog The recorded program.
     * @param patched_logs One patched CoreLog per core (see patcher.hh).
     * @param initial_memory The memory image recording started from.
     */
    Replayer(isa::Program prog, std::vector<CoreLog> patched_logs,
             mem::BackingStore initial_memory);

    /** Observe every replayed load/atomic value (determinism checks). */
    void
    setLoadHook(std::function<void(sim::CoreId, std::uint64_t)> hook)
    {
        loadHook_ = std::move(hook);
    }

    void setCostModel(const ReplayCostModel &m) { costModel_ = m; }

    /** One step of an explicit replay order. */
    struct OrderItem
    {
        sim::CoreId core;
        std::uint32_t index;
    };

    /** Run the whole replay sequentially, in recorded timestamp order. */
    ReplayResult run();

    /**
     * Replay in an explicit interval order (e.g. a topological order of
     * the dependency DAG from parallel_schedule.hh). The order must
     * contain every interval of every core exactly once and must
     * respect per-core interval order; correctness additionally
     * requires it to respect the recorded dependencies.
     *
     * Both run() and runInOrder() throw ReplayDivergence (see
     * divergence.hh) when a log entry does not line up with the
     * program — e.g. a corrupted log.
     */
    ReplayResult runInOrder(const std::vector<OrderItem> &order);

    /** Replay steps kept per core for divergence reports. */
    static constexpr std::size_t kRingDepth = 8;

  private:
    struct IntervalRef
    {
        std::uint64_t timestamp;
        sim::CoreId core;
        std::uint32_t index;
    };

    /** Owned copy: callers may pass temporaries. */
    const isa::Program prog_;
    std::vector<CoreLog> logs_;
    mem::BackingStore memory_;
    ReplayCostModel costModel_;
    std::function<void(sim::CoreId, std::uint64_t)> loadHook_;
    /** Per-core ring of the last kRingDepth replay steps. */
    std::vector<std::deque<ReplayStep>> recentSteps_;
};

} // namespace rr::rnr

#endif // RR_RNR_REPLAYER_HH
