#include "rnr/interval_interpreter.hh"

#include "sim/logging.hh"

namespace rr::rnr
{

namespace
{

/** MemoryIf wrapper that remembers the last value read (load hook). */
class TracingMemory : public isa::MemoryIf
{
  public:
    explicit TracingMemory(isa::MemoryIf &mem) : mem_(mem) {}

    std::uint64_t
    read64(sim::Addr a) override
    {
        lastRead = mem_.read64(a);
        didRead = true;
        return lastRead;
    }

    void write64(sim::Addr a, std::uint64_t v) override
    {
        mem_.write64(a, v);
    }

    std::uint64_t lastRead = 0;
    bool didRead = false;

  private:
    isa::MemoryIf &mem_;
};

/** Render the instruction at @p pc (or the halted state) for a report. */
std::string
describeProgramPoint(const isa::Program &prog, const isa::ExecContext &ctx)
{
    if (ctx.halted)
        return "core already halted";
    return sim::strfmt("pc %llu: %s",
                       static_cast<unsigned long long>(ctx.pc),
                       isa::disassemble(prog.at(ctx.pc)).c_str());
}

/** Remember one replay step in a core's ring buffer. */
void
noteStep(std::deque<ReplayStep> &ring, const ReplayStep &step)
{
    if (ring.size() >= IntervalInterpreter::kRingDepth)
        ring.pop_front();
    ring.push_back(step);
}

} // namespace

void
IntervalInterpreter::diverge(sim::CoreId core, std::uint32_t interval_index,
                             std::uint32_t entry_index,
                             std::uint64_t order_position, std::uint64_t pc,
                             const LogEntry &entry, std::string expected,
                             std::string actual) const
{
    const IntervalRecord &iv = logs_[core].intervals[interval_index];
    DivergenceReport report;
    report.core = core;
    report.intervalIndex = interval_index;
    report.entryIndex = entry_index;
    report.pc = pc;
    report.entry = entry;
    report.expected = std::move(expected);
    report.actual = std::move(actual);
    report.timestamp = iv.timestamp;
    report.orderPosition = order_position;
    report.predecessors = iv.predecessors;
    // recentSteps stays empty here: the engine owns the rings and fills
    // them in before re-throwing (see Replayer / ParallelReplayer).
    throw ReplayDivergence(std::move(report));
}

void
IntervalInterpreter::replayInterval(sim::CoreId core,
                                    std::uint32_t interval_index,
                                    std::uint64_t order_position,
                                    isa::ExecContext &ctx,
                                    isa::MemoryIf &mem,
                                    const LoadHook &hook,
                                    std::deque<ReplayStep> &ring,
                                    Accum &acc) const
{
    const IntervalRecord &iv = logs_[core].intervals[interval_index];
    TracingMemory tmem(mem);

    for (std::uint32_t ei = 0; ei < iv.entries.size(); ++ei) {
        const LogEntry &e = iv.entries[ei];
        std::uint64_t step_value = e.loadValue;
        if (e.kind == EntryKind::InorderBlock)
            step_value = e.blockSize;
        else if (e.kind == EntryKind::ReorderedStore ||
                 e.kind == EntryKind::PatchedStore)
            step_value = e.storeValue;
        noteStep(ring, ReplayStep{core, interval_index, ei, e.kind,
                                  ctx.pc, step_value, e.addr});
        acc.cost.osCycles += model_.perEntryCost;
        switch (e.kind) {
          case EntryKind::InorderBlock: {
            for (std::uint64_t n = 0; n < e.blockSize; ++n) {
                if (ctx.halted) {
                    diverge(core, interval_index, ei, order_position,
                            ctx.pc, e,
                            sim::strfmt("%llu more executable "
                                        "instructions (%llu of %llu "
                                        "replayed)",
                                        static_cast<unsigned long long>(
                                            e.blockSize - n),
                                        static_cast<unsigned long long>(n),
                                        static_cast<unsigned long long>(
                                            e.blockSize)),
                            "core already halted");
                }
                tmem.didRead = false;
                const isa::Instruction &inst =
                    isa::step(prog_, ctx, tmem);
                if (tmem.didRead && hook &&
                    (inst.isLoad() || inst.isAtomic()))
                    hook(core, tmem.lastRead);
            }
            acc.instructions += e.blockSize;
            acc.cost.userCycles += static_cast<std::uint64_t>(
                static_cast<double>(e.blockSize) / model_.replayIpc);
            acc.cost.osCycles += model_.interruptCost;
            break;
          }
          case EntryKind::ReorderedLoad: {
            if (ctx.halted || !prog_.at(ctx.pc).isLoad()) {
                diverge(core, interval_index, ei, order_position, ctx.pc,
                        e, "a load instruction",
                        describeProgramPoint(prog_, ctx));
            }
            const isa::Instruction &inst = prog_.at(ctx.pc);
            ctx.writeReg(inst.rd, e.loadValue);
            ++ctx.pc;
            ++ctx.instructions;
            ++acc.instructions;
            if (hook)
                hook(core, e.loadValue);
            acc.cost.osCycles += model_.perReorderedCost;
            break;
          }
          case EntryKind::DummyStore: {
            if (ctx.halted || !prog_.at(ctx.pc).isStore()) {
                diverge(core, interval_index, ei, order_position, ctx.pc,
                        e, "a store instruction",
                        describeProgramPoint(prog_, ctx));
            }
            ++ctx.pc;
            ++ctx.instructions;
            ++acc.instructions;
            acc.cost.osCycles += model_.perReorderedCost;
            break;
          }
          case EntryKind::DummyAtomic: {
            if (ctx.halted || !prog_.at(ctx.pc).isAtomic()) {
                diverge(core, interval_index, ei, order_position, ctx.pc,
                        e, "an atomic instruction",
                        describeProgramPoint(prog_, ctx));
            }
            const isa::Instruction &inst = prog_.at(ctx.pc);
            ctx.writeReg(inst.rd, e.loadValue);
            ++ctx.pc;
            ++ctx.instructions;
            ++acc.instructions;
            if (hook)
                hook(core, e.loadValue);
            acc.cost.osCycles += model_.perReorderedCost;
            break;
          }
          case EntryKind::PatchedStore:
            // The store instruction itself replays (as a dummy) in the
            // interval where it was counted; only its memory effect
            // belongs here, at the end of its perform interval.
            mem.write64(e.addr, e.storeValue);
            acc.cost.osCycles += model_.perReorderedCost;
            break;
          case EntryKind::ReorderedStore:
          case EntryKind::ReorderedAtomic:
            diverge(core, interval_index, ei, order_position, ctx.pc, e,
                    "a patched log (ReorderedStore/Atomic rewritten by "
                    "rnr::patch)",
                    "an unpatched recording-side entry");
        }
    }
    // Interval ordering hand-off (emulated condition variable).
    acc.cost.osCycles += model_.perIntervalCost;
}

} // namespace rr::rnr
