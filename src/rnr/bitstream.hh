/**
 * @file
 * Bit-granular writer/reader used to serialize RelaxReplay logs in the
 * uncompressed packed format whose size Figure 11 reports.
 */

#ifndef RR_RNR_BITSTREAM_HH
#define RR_RNR_BITSTREAM_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace rr::rnr
{

class BitWriter
{
  public:
    /** Append the low @p width bits of @p value. */
    void
    write(std::uint64_t value, std::uint32_t width)
    {
        RR_ASSERT(width >= 1 && width <= 64, "bad field width %u", width);
        RR_ASSERT(width == 64 || value < (1ULL << width),
                  "value does not fit in %u bits", width);
        for (std::uint32_t i = 0; i < width; ++i) {
            const std::size_t byte = bitCount_ / 8;
            if (byte >= bytes_.size())
                bytes_.push_back(0);
            if ((value >> i) & 1)
                bytes_[byte] |= static_cast<std::uint8_t>(
                    1u << (bitCount_ % 8));
            ++bitCount_;
        }
    }

    std::uint64_t bitCount() const { return bitCount_; }
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
    std::uint64_t bitCount_ = 0;
};

class BitReader
{
  public:
    explicit BitReader(const std::vector<std::uint8_t> &bytes,
                       std::uint64_t bit_count)
        : bytes_(bytes), bitCount_(bit_count)
    {
    }

    std::uint64_t
    read(std::uint32_t width)
    {
        RR_ASSERT(width >= 1 && width <= 64, "bad field width %u", width);
        RR_ASSERT(pos_ + width <= bitCount_, "bitstream underrun");
        std::uint64_t v = 0;
        for (std::uint32_t i = 0; i < width; ++i) {
            const std::size_t byte = pos_ / 8;
            if ((bytes_[byte] >> (pos_ % 8)) & 1)
                v |= 1ULL << i;
            ++pos_;
        }
        return v;
    }

    bool atEnd() const { return pos_ >= bitCount_; }
    std::uint64_t position() const { return pos_; }

  private:
    const std::vector<std::uint8_t> &bytes_;
    std::uint64_t bitCount_;
    std::uint64_t pos_ = 0;
};

} // namespace rr::rnr

#endif // RR_RNR_BITSTREAM_HH
