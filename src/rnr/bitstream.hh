/**
 * @file
 * Bit-granular writer/reader used to serialize RelaxReplay logs in the
 * uncompressed packed format whose size Figure 11 reports.
 */

#ifndef RR_RNR_BITSTREAM_HH
#define RR_RNR_BITSTREAM_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/logging.hh"

namespace rr::rnr
{

class BitWriter
{
  public:
    /** Append the low @p width bits of @p value. */
    void
    write(std::uint64_t value, std::uint32_t width)
    {
        RR_ASSERT(width >= 1 && width <= 64, "bad field width %u", width);
        RR_ASSERT(width == 64 || value < (1ULL << width),
                  "value does not fit in %u bits", width);
        for (std::uint32_t i = 0; i < width; ++i) {
            const std::size_t byte = bitCount_ / 8;
            if (byte >= bytes_.size())
                bytes_.push_back(0);
            if ((value >> i) & 1)
                bytes_[byte] |= static_cast<std::uint8_t>(
                    1u << (bitCount_ % 8));
            ++bitCount_;
        }
    }

    std::uint64_t bitCount() const { return bitCount_; }
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
    std::uint64_t bitCount_ = 0;
};

/**
 * LSB-first bit reader over a borrowed byte range. The range may live
 * in a vector or an mmap'd file — the reader never copies or owns it.
 * On little-endian hosts a field is extracted with one unaligned
 * 8-byte load (the LSB-first stream *is* the little-endian integer
 * representation), which is what makes chunk decode memory-bound
 * instead of shift-bound.
 */
class BitReader
{
  public:
    BitReader(const std::uint8_t *data, std::uint64_t bit_count)
        : data_(data), bitCount_(bit_count),
          byteCount_((bit_count + 7) / 8)
    {
    }

    explicit BitReader(const std::vector<std::uint8_t> &bytes,
                       std::uint64_t bit_count)
        : BitReader(bytes.data(), bit_count)
    {
        RR_ASSERT((bit_count + 7) / 8 <= bytes.size(),
                  "bit count overruns the byte buffer");
    }

    std::uint64_t
    read(std::uint32_t width)
    {
        RR_ASSERT(width >= 1 && width <= 64, "bad field width %u", width);
        RR_ASSERT(pos_ + width <= bitCount_, "bitstream underrun");
        const std::uint64_t byte = pos_ / 8;
        const std::uint32_t shift = pos_ % 8;
        std::uint64_t v;
        if constexpr (std::endian::native == std::endian::little) {
            if (byte + 8 <= byteCount_) {
                std::memcpy(&v, data_ + byte, 8);
                v >>= shift;
                // A field starting mid-byte can spill into a 9th byte;
                // pos_ + width <= bitCount_ proves it is in bounds.
                if (shift != 0 && shift + width > 64)
                    v |= static_cast<std::uint64_t>(data_[byte + 8])
                         << (64 - shift);
            } else {
                v = 0;
                for (std::uint64_t b = byte; b < byteCount_; ++b)
                    v |= static_cast<std::uint64_t>(data_[b])
                         << (8 * (b - byte));
                v >>= shift;
            }
            if (width < 64)
                v &= (1ULL << width) - 1;
        } else {
            v = 0;
            for (std::uint32_t i = 0; i < width; ++i) {
                const std::uint64_t p = pos_ + i;
                if ((data_[p / 8] >> (p % 8)) & 1)
                    v |= 1ULL << i;
            }
        }
        pos_ += width;
        return v;
    }

    bool atEnd() const { return pos_ >= bitCount_; }
    std::uint64_t position() const { return pos_; }

  private:
    const std::uint8_t *data_;
    std::uint64_t bitCount_;
    std::uint64_t byteCount_;
    std::uint64_t pos_ = 0;
};

} // namespace rr::rnr

#endif // RR_RNR_BITSTREAM_HH
