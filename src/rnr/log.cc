#include "rnr/log.hh"

#include "rnr/bitstream.hh"
#include "sim/logging.hh"

namespace rr::rnr
{

namespace
{
/** Packed-stream tag closing an interval (not an in-memory EntryKind). */
constexpr std::uint64_t kFrameTag = 7;

bool
hasDependencies(const CoreLog &log)
{
    for (const auto &iv : log.intervals) {
        if (!iv.predecessors.empty())
            return true;
    }
    return false;
}
} // namespace

const char *
toString(EntryKind k)
{
    switch (k) {
      case EntryKind::InorderBlock: return "InorderBlock";
      case EntryKind::ReorderedLoad: return "ReorderedLoad";
      case EntryKind::ReorderedStore: return "ReorderedStore";
      case EntryKind::ReorderedAtomic: return "ReorderedAtomic";
      case EntryKind::PatchedStore: return "PatchedStore";
      case EntryKind::DummyStore: return "DummyStore";
      case EntryKind::DummyAtomic: return "DummyAtomic";
    }
    return "?";
}

std::uint32_t
LogEntry::sizeBits() const
{
    switch (kind) {
      case EntryKind::InorderBlock:
        return bits::kTypeTag + bits::kBlockSize;
      case EntryKind::ReorderedLoad:
        return bits::kTypeTag + bits::kValue;
      case EntryKind::ReorderedStore:
        return bits::kTypeTag + bits::kAddress + bits::kValue +
               bits::kOffset;
      case EntryKind::ReorderedAtomic:
        return bits::kTypeTag + bits::kAddress + 2 * bits::kValue +
               bits::kOffset;
      case EntryKind::PatchedStore:
        return bits::kTypeTag + bits::kAddress + bits::kValue;
      case EntryKind::DummyStore:
        return bits::kTypeTag;
      case EntryKind::DummyAtomic:
        return bits::kTypeTag + bits::kValue;
    }
    return 0;
}

std::uint64_t
IntervalRecord::sizeBits() const
{
    std::uint64_t n =
        bits::kTypeTag + bits::kCisn + bits::kTimestamp; // the frame
    if (!predecessors.empty()) {
        n += bits::kDepCount +
             predecessors.size() * (bits::kDepCore + bits::kDepIsn);
    }
    for (const auto &e : entries)
        n += e.sizeBits();
    return n;
}

std::uint64_t
CoreLog::sizeBits() const
{
    std::uint64_t n = 0;
    for (const auto &iv : intervals)
        n += iv.sizeBits();
    return n;
}

void
LogStats::accumulate(const CoreLog &log)
{
    for (const auto &iv : log.intervals) {
        ++intervals;
        for (const auto &e : iv.entries) {
            switch (e.kind) {
              case EntryKind::InorderBlock:
                ++inorderBlocks;
                inorderInstructions += e.blockSize;
                break;
              case EntryKind::ReorderedLoad:
                ++reorderedLoads;
                break;
              case EntryKind::ReorderedStore:
                ++reorderedStores;
                break;
              case EntryKind::ReorderedAtomic:
                ++reorderedAtomics;
                break;
              default:
                break;
            }
        }
    }
    totalBits += log.sizeBits();
}

LogStats &
LogStats::operator+=(const LogStats &o)
{
    intervals += o.intervals;
    inorderBlocks += o.inorderBlocks;
    inorderInstructions += o.inorderInstructions;
    reorderedLoads += o.reorderedLoads;
    reorderedStores += o.reorderedStores;
    reorderedAtomics += o.reorderedAtomics;
    totalBits += o.totalBits;
    return *this;
}

PackedLog
pack(const CoreLog &log)
{
    BitWriter w;
    // Stream header: one bit selecting the frame layout (plain
    // QuickRec-style frames, or frames carrying explicit dependency
    // edges for parallel replay).
    const bool with_deps = hasDependencies(log);
    w.write(with_deps ? 1 : 0, 1);
    for (const auto &iv : log.intervals) {
        for (const auto &e : iv.entries) {
            w.write(static_cast<std::uint64_t>(e.kind), bits::kTypeTag);
            switch (e.kind) {
              case EntryKind::InorderBlock:
                w.write(e.blockSize, bits::kBlockSize);
                break;
              case EntryKind::ReorderedLoad:
                w.write(e.loadValue, bits::kValue);
                break;
              case EntryKind::ReorderedStore:
                w.write(e.addr, bits::kAddress);
                w.write(e.storeValue, bits::kValue);
                w.write(e.offset, bits::kOffset);
                break;
              case EntryKind::ReorderedAtomic:
                w.write(e.addr, bits::kAddress);
                w.write(e.loadValue, bits::kValue);
                w.write(e.storeValue, bits::kValue);
                w.write(e.offset, bits::kOffset);
                break;
              case EntryKind::PatchedStore:
                w.write(e.addr, bits::kAddress);
                w.write(e.storeValue, bits::kValue);
                break;
              case EntryKind::DummyStore:
                break;
              case EntryKind::DummyAtomic:
                w.write(e.loadValue, bits::kValue);
                break;
            }
        }
        w.write(kFrameTag, bits::kTypeTag);
        w.write(iv.cisn & 0xffff, bits::kCisn);
        w.write(iv.timestamp, bits::kTimestamp);
        if (with_deps) {
            RR_ASSERT(iv.predecessors.size() <
                          (1ULL << bits::kDepCount),
                      "too many interval predecessors to pack");
            w.write(iv.predecessors.size(), bits::kDepCount);
            for (const auto &d : iv.predecessors) {
                w.write(d.core, bits::kDepCore);
                w.write(d.isn & 0xffffffffULL, bits::kDepIsn);
            }
        }
    }
    return PackedLog{w.bytes(), w.bitCount()};
}

CoreLog
unpack(const PackedLog &packed)
{
    CoreLog log;
    BitReader r(packed.bytes, packed.bitCount);
    if (r.atEnd())
        return log;
    const bool with_deps = r.read(1) != 0;
    IntervalRecord current;
    while (!r.atEnd()) {
        const std::uint64_t tag = r.read(bits::kTypeTag);
        if (tag == kFrameTag) {
            const std::uint64_t cisn16 = r.read(bits::kCisn);
            current.timestamp = r.read(bits::kTimestamp);
            if (with_deps) {
                const std::uint64_t n = r.read(bits::kDepCount);
                for (std::uint64_t i = 0; i < n; ++i) {
                    IntervalDep d;
                    d.core = static_cast<sim::CoreId>(
                        r.read(bits::kDepCore));
                    d.isn = r.read(bits::kDepIsn);
                    current.predecessors.push_back(d);
                }
            }
            // CISNs are consecutive from zero; reconstruct full width.
            current.cisn = log.intervals.size();
            RR_ASSERT((current.cisn & 0xffff) == cisn16,
                      "CISN sequence mismatch in packed log");
            log.intervals.push_back(std::move(current));
            current = IntervalRecord{};
            continue;
        }
        LogEntry e;
        e.kind = static_cast<EntryKind>(tag);
        switch (e.kind) {
          case EntryKind::InorderBlock:
            e.blockSize = r.read(bits::kBlockSize);
            break;
          case EntryKind::ReorderedLoad:
            e.loadValue = r.read(bits::kValue);
            break;
          case EntryKind::ReorderedStore:
            e.addr = r.read(bits::kAddress);
            e.storeValue = r.read(bits::kValue);
            e.offset = static_cast<std::uint32_t>(r.read(bits::kOffset));
            break;
          case EntryKind::ReorderedAtomic:
            e.addr = r.read(bits::kAddress);
            e.loadValue = r.read(bits::kValue);
            e.storeValue = r.read(bits::kValue);
            e.offset = static_cast<std::uint32_t>(r.read(bits::kOffset));
            break;
          case EntryKind::PatchedStore:
            e.addr = r.read(bits::kAddress);
            e.storeValue = r.read(bits::kValue);
            break;
          case EntryKind::DummyStore:
            break;
          case EntryKind::DummyAtomic:
            e.loadValue = r.read(bits::kValue);
            break;
        }
        current.entries.push_back(e);
    }
    RR_ASSERT(current.entries.empty(),
              "packed log ends mid-interval (missing frame)");
    return log;
}

} // namespace rr::rnr
