#include "rnr/mrr_hub.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace rr::rnr
{

MrrHub::MrrHub(sim::CoreId core,
               const std::vector<sim::RecorderConfig> &policies,
               mem::StampClock &clock)
    : core_(core), clock_(clock),
      traqCapacity_(policies.empty() ? 176 : policies.front().traqEntries),
      stats_(sim::strfmt("mrr%u", core)),
      histogram_(stats_.histogram("traq_occupancy", 10, 20))
{
    RR_ASSERT(!policies.empty(), "MrrHub needs at least one policy");
    for (std::size_t i = 0; i < policies.size(); ++i) {
        recorders_.push_back(std::make_unique<IntervalRecorder>(
            core, policies[i], clock,
            sim::strfmt("mrr%u.%s%llu", core,
                        sim::toString(policies[i].mode),
                        static_cast<unsigned long long>(
                            policies[i].maxIntervalInstructions))));
    }
}

mem::AccessKind
MrrHub::accessKindOf(const TraqEntry &e)
{
    switch (e.kind) {
      case Kind::Load:
        return mem::AccessKind::Load;
      case Kind::Store:
        return mem::AccessKind::Store;
      default:
        return mem::AccessKind::Xchg; // RMW; exact flavor is irrelevant
    }
}

MrrHub::TraqEntry *
MrrHub::findBySeq(sim::SeqNum seq)
{
    // Perform events target recently dispatched entries; search from the
    // tail. The TRAQ is small (~176), so linear search is fine.
    for (auto it = traq_.rbegin(); it != traq_.rend(); ++it) {
        if (it->seq == seq)
            return &*it;
        if (it->seq < seq)
            return nullptr;
    }
    return nullptr;
}

bool
MrrHub::canDispatchMem() const
{
    return traq_.size() < traqCapacity_;
}

void
MrrHub::onDispatchMem(sim::SeqNum seq, const isa::Instruction &inst,
                      std::uint32_t nmi_before)
{
    RR_ASSERT(!finished_, "dispatch after finish");
    TraqEntry e;
    e.seq = seq;
    e.kind = inst.isLoad() ? Kind::Load
                           : (inst.isStore() ? Kind::Store : Kind::Atomic);
    e.nmi = nmi_before;
    e.ps.resize(recorders_.size());
    traq_.push_back(std::move(e));
    if (traq_.size() > traqCapacity_)
        stats_.counter("traq_overflow_groups")++;
}

void
MrrHub::onDispatchNmiGroup(sim::SeqNum last_seq, std::uint32_t count)
{
    RR_ASSERT(!finished_, "dispatch after finish");
    TraqEntry e;
    e.seq = last_seq;
    e.kind = Kind::NmiGroup;
    e.nmi = count;
    traq_.push_back(std::move(e));
}

void
MrrHub::recordPerform(TraqEntry &e, mem::AccessKind kind, sim::Addr word,
                      std::uint64_t load_value, std::uint64_t store_value,
                      sim::Cycle cycle)
{
    RR_ASSERT(!e.performed, "double perform for seq %llu",
              static_cast<unsigned long long>(e.seq));
    e.performed = true;
    e.word = word;
    e.loadValue = load_value;
    e.storeValue = store_value;

    // Figure 1 metric: performed while an older access is still pending.
    for (const auto &older : traq_) {
        if (older.seq >= e.seq)
            break;
        if (older.kind != Kind::NmiGroup && !older.performed) {
            e.oooAtPerform = true;
            break;
        }
    }

    if (sim::TraceSink::enabled()) {
        sim::TraceSink::get()->instant(
            sim::TraceSink::kRecordPid, core_, "traq", "perform", cycle,
            {{"seq", e.seq},
             {"addr", word},
             {"ooo", e.oooAtPerform}});
    }

    for (std::size_t i = 0; i < recorders_.size(); ++i)
        e.ps[i] = recorders_[i]->notePerform(kind, word);
}

void
MrrHub::onPerform(const mem::PerformEvent &ev)
{
    if (ev.core != core_)
        return;
    TraqEntry *e = findBySeq(ev.tag);
    if (!e) {
        // Squashed wrong-path access whose request was already in
        // flight; nothing to record.
        stats_.counter("squashed_performs")++;
        return;
    }
    recordPerform(*e, ev.kind, ev.addr, ev.loadValue, ev.storeValue,
                  ev.cycle);
    drainCountable(ev.cycle);
}

void
MrrHub::onForwardedLoadPerform(sim::SeqNum seq, sim::Addr word_addr,
                               std::uint64_t value, std::uint64_t stamp,
                               sim::Cycle cycle)
{
    (void)stamp;
    TraqEntry *e = findBySeq(seq);
    RR_ASSERT(e, "forwarded perform for unknown seq");
    stats_.counter("forwarded_performs")++;
    recordPerform(*e, mem::AccessKind::Load, word_addr, value, 0, cycle);
    drainCountable(cycle);
}

void
MrrHub::onRetire(const cpu::RetireInfo &info)
{
    retiredUpTo_ = info.seq + 1;
    if (info.isMem) {
        TraqEntry *e = findBySeq(info.seq);
        RR_ASSERT(e, "retire for unknown TRAQ entry");
        e->retired = true;
        stats_.counter("retired_mem")++;
    }
    drainCountable(info.cycle);
}

void
MrrHub::onSquash(sim::SeqNum youngest_surviving)
{
    while (!traq_.empty() && traq_.back().seq > youngest_surviving) {
        traq_.pop_back();
        stats_.counter("squashed_entries")++;
    }
}

void
MrrHub::onHalted(sim::Cycle now, std::uint32_t residual_nmi)
{
    haltPending_ = true;
    residualNmi_ = residual_nmi;
    haltCycle_ = now;
    drainCountable(now);
}

void
MrrHub::onSnoop(sim::CoreId observer, const mem::SnoopEvent &ev)
{
    if (observer != core_)
        return;
    stats_.counter("snoops_observed")++;
    for (std::size_t i = 0; i < recorders_.size(); ++i) {
        IntervalRecorder &rec = *recorders_[i];
        const bool conflicted = rec.onSnoop(ev);
        // Dependency recording (Section 3.6 / Cyrus-style ordering):
        // when this core either conflicted with or simply held the
        // requested line, the requester's current interval must be
        // ordered after this core's latest closed interval. (If this
        // core never closed an interval, its only touches of the line
        // were wrong-path fills, which carry no dependence.)
        if (rec.config().recordDependencies &&
            (conflicted || ev.observerHadLine) && !peers_.empty()) {
            bool valid = false;
            const sim::Isn src = rec.lastClosedIsn(valid);
            if (valid) {
                peers_.at(ev.requester)
                    ->recorder(i)
                    .notePredecessor(core_, src);
            }
        }
    }
}

void
MrrHub::onDirtyEviction(sim::CoreId core, sim::Addr line_addr,
                        std::uint64_t stamp)
{
    (void)stamp;
    if (core != core_)
        return;
    for (auto &r : recorders_)
        r->onDirtyEviction(line_addr);
}

void
MrrHub::drainCountable(sim::Cycle now)
{
    if (finished_)
        return;
    while (!traq_.empty()) {
        TraqEntry &e = traq_.front();
        if (e.kind == Kind::NmiGroup) {
            if (retiredUpTo_ <= e.seq)
                break;
            for (auto &r : recorders_)
                r->countNmi(e.nmi, now);
            stats_.counter("counted_nmi_groups")++;
        } else {
            if (!e.performed || !e.retired)
                break;
            if (e.oooAtPerform) {
                stats_.counter(e.kind == Kind::Store ? "ooo_stores"
                                                     : "ooo_loads")++;
            }
            stats_.counter("counted_mem")++;
            if (sim::TraceSink::enabled()) {
                sim::TraceSink::get()->instant(
                    sim::TraceSink::kRecordPid, core_, "traq", "count",
                    now,
                    {{"seq", e.seq},
                     {"addr", e.word},
                     {"ooo", e.oooAtPerform}});
            }
            const mem::AccessKind kind = accessKindOf(e);
            // Same-core same-line ordering guard: a younger write that
            // has already performed (still queued behind this entry)
            // may log as reordered into this access's perform interval;
            // the recorder must then not move this access forward to
            // its counting point. The TRAQ is the only structure that
            // can see this — the Snoop Table ignores local traffic.
            const sim::Addr line = sim::lineAddr(e.word);
            bool local_write_pending = false;
            for (const TraqEntry &y : traq_) {
                if (y.seq <= e.seq || !y.performed ||
                    y.kind == Kind::NmiGroup || y.kind == Kind::Load)
                    continue;
                if (sim::lineAddr(y.word) == line) {
                    local_write_pending = true;
                    break;
                }
            }
            for (std::size_t i = 0; i < recorders_.size(); ++i) {
                recorders_[i]->countMem(kind, e.word, e.loadValue,
                                        e.storeValue, e.nmi, e.ps[i], now,
                                        local_write_pending);
            }
        }
        traq_.pop_front();
    }

    if (haltPending_ && traq_.empty()) {
        for (auto &r : recorders_) {
            r->countNmi(residualNmi_, haltCycle_);
            r->finish(haltCycle_);
        }
        haltPending_ = false;
        finished_ = true;
    }
}

void
MrrHub::sampleOccupancy()
{
    stats_.scalar("traq_occupancy").sample(
        static_cast<double>(traq_.size()));
    histogram_.sample(traq_.size());
}

} // namespace rr::rnr
