#include "rnr/parallel_replayer.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <utility>

#include "mem/sharded_store.hh"
#include "rnr/interval_interpreter.hh"
#include "rnr/patcher.hh"
#include "sim/flat_map.hh"
#include "sim/logging.hh"
#include "sim/task_pool.hh"

namespace rr::rnr
{

namespace
{

/**
 * The memory view one core replays through: reads hit the core's
 * current (uncommitted) write set first, then fall through — via a
 * persistent page-pointer cache — to the committed sharded image;
 * writes stay private until the engine commits them when the interval
 * completes. Addresses are unique in the write set (later writes
 * overwrite in place), so commit applies final values only — sound
 * because the dependency DAG orders any two intervals that touch the
 * same word, making intermediate values invisible to other intervals
 * by construction.
 *
 * The page cache is what keeps the fall-through path off the shard
 * locks: ShardedStore page pointers are stable forever, and word reads
 * through them are synchronized by the DAG itself (see
 * sharded_store.hh), so only a cache-miss page *lookup* ever takes a
 * lock. Absent pages are deliberately not cached — a later interval of
 * this core may depend on an interval that materializes the page. One
 * CoreMemory exists per core; the per-core DAG chain serializes its
 * use.
 */
class CoreMemory : public isa::MemoryIf
{
  public:
    explicit CoreMemory(mem::ShardedStore &shards) : shards_(shards) {}

    std::uint64_t
    read64(sim::Addr a) override
    {
        a = sim::wordAddr(a);
        if (const std::uint32_t *slot = index_.find(a))
            return writes_[*slot].second;
        const std::uint64_t *page =
            cachedPage(a / mem::BackingStore::kPageBytes);
        if (!page)
            return 0;
        return page[(a % mem::BackingStore::kPageBytes) /
                    sim::kWordBytes];
    }

    void
    write64(sim::Addr a, std::uint64_t v) override
    {
        a = sim::wordAddr(a);
        if (std::uint32_t *slot = index_.find(a)) {
            writes_[*slot].second = v;
            return;
        }
        index_[a] = static_cast<std::uint32_t>(writes_.size());
        writes_.push_back({a, v});
    }

    /** Publish the current interval's writes and reset for the next. */
    void
    commit()
    {
        wordsWritten_ += writes_.size();
        shards_.commit(writes_);
        writes_.clear();
        index_.clear();
    }

    std::uint64_t wordsWritten() const { return wordsWritten_; }

  private:
    std::uint64_t *
    cachedPage(std::uint64_t page_index)
    {
        if (const std::uint64_t *slot = cache_.find(page_index))
            return reinterpret_cast<std::uint64_t *>(
                static_cast<std::uintptr_t>(*slot));
        std::uint64_t *page = shards_.findPage(page_index);
        if (page)
            cache_[page_index] = static_cast<std::uint64_t>(
                reinterpret_cast<std::uintptr_t>(page));
        return page;
    }

    mem::ShardedStore &shards_;
    sim::FlatMap<std::uint32_t> index_;
    std::vector<std::pair<sim::Addr, std::uint64_t>> writes_;
    sim::FlatMap<std::uint64_t> cache_; ///< page index → words pointer
    std::uint64_t wordsWritten_ = 0;
};

} // namespace

ParallelReplayer::ParallelReplayer(isa::Program prog,
                                   std::vector<CoreLog> patched_logs,
                                   mem::BackingStore initial_memory,
                                   ParallelReplayOptions opts)
    : prog_(std::move(prog)), logs_(std::move(patched_logs)),
      initialMemory_(std::move(initial_memory)), opts_(opts)
{
    for (const auto &log : logs_)
        RR_ASSERT(isPatched(log),
                  "parallel replayer requires a patched log");
}

ReplayResult
ParallelReplayer::run()
{
    RR_ASSERT(!ran_, "ParallelReplayer::run() is single-use");
    ran_ = true;

    // ---- Flatten the DAG: one node per interval. --------------------
    const std::size_t cores = logs_.size();
    std::vector<std::uint32_t> offset(cores, 0);
    std::uint32_t total = 0;
    for (std::size_t c = 0; c < cores; ++c) {
        offset[c] = total;
        total += static_cast<std::uint32_t>(logs_[c].intervals.size());
    }

    struct Node
    {
        sim::CoreId core;
        std::uint32_t index;
        std::uint64_t timestamp;
        std::uint64_t orderPosition = 0; ///< rank in timestamp order
        std::vector<std::uint32_t> successors;
        std::uint32_t indegree = 0;
        /** Some successor lives on another core: a batched-commit run
         *  must publish this interval's writes before releasing it. */
        bool hasCrossSucc = false;
    };
    std::vector<Node> nodes(total);
    for (std::size_t c = 0; c < cores; ++c) {
        for (std::size_t i = 0; i < logs_[c].intervals.size(); ++i) {
            Node &n = nodes[offset[c] + i];
            n.core = static_cast<sim::CoreId>(c);
            n.index = static_cast<std::uint32_t>(i);
            n.timestamp = logs_[c].intervals[i].timestamp;
        }
    }

    // orderPosition mirrors the sequential engine's replay positions
    // (rank in the recorded timestamp total order) so divergence
    // reports name the same position either way.
    {
        std::vector<std::uint32_t> by_time(total);
        for (std::uint32_t n = 0; n < total; ++n)
            by_time[n] = n;
        std::sort(by_time.begin(), by_time.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                      return nodes[a].timestamp < nodes[b].timestamp;
                  });
        for (std::uint32_t rank = 0; rank < total; ++rank)
            nodes[by_time[rank]].orderPosition = rank;
    }

    // Edges: implicit per-core program order plus the recorded
    // cross-core predecessors. Same-core recorded edges are subsumed
    // by the chain; the recorder dedups predecessors to one per source
    // core, so no edge is inserted twice (which would corrupt the
    // in-degree release counting).
    for (std::size_t c = 0; c < cores; ++c) {
        for (std::size_t i = 0; i < logs_[c].intervals.size(); ++i) {
            const std::uint32_t me =
                offset[c] + static_cast<std::uint32_t>(i);
            if (i > 0) {
                nodes[me - 1].successors.push_back(me);
                ++nodes[me].indegree;
            }
            for (const IntervalDep &d :
                 logs_[c].intervals[i].predecessors) {
                if (d.core == c)
                    continue;
                RR_ASSERT(d.core < cores &&
                              d.isn < logs_[d.core].intervals.size(),
                          "dependency edge escapes the logs");
                Node &pred = nodes[offset[d.core] + d.isn];
                pred.successors.push_back(me);
                pred.hasCrossSucc = true;
                ++nodes[me].indegree;
            }
        }
    }

    const auto indegree =
        std::make_unique<std::atomic<std::uint32_t>[]>(total);
    for (std::uint32_t n = 0; n < total; ++n)
        indegree[n].store(nodes[n].indegree,
                          std::memory_order_relaxed);

    // ---- Per-core replay state (serialized by the core chain). ------
    std::vector<isa::ExecContext> contexts(cores);
    for (std::size_t c = 0; c < cores; ++c) {
        auto &ctx = contexts[c];
        ctx.pc = prog_.entryFor(static_cast<std::uint32_t>(c));
        ctx.writeReg(isa::kRegThreadId, c);
        ctx.writeReg(isa::kRegNumThreads, cores);
    }
    std::vector<std::deque<ReplayStep>> rings(cores);

    mem::ShardedStore shards(initialMemory_, opts_.shards);
    std::vector<CoreMemory> core_mems;
    core_mems.reserve(cores);
    for (std::size_t c = 0; c < cores; ++c)
        core_mems.emplace_back(shards);
    const IntervalInterpreter interp(prog_, logs_, opts_.costModel);
    sim::TaskPool pool(opts_.workers);

    // Scheduling-independent accumulators (sums commute).
    std::atomic<std::uint64_t> instructions{0}, user_cycles{0},
        os_cycles{0}, intervals_done{0};

    // First divergence by interval timestamp (the recorded total
    // order), so concurrent failures report deterministically.
    std::mutex divergence_mu;
    std::optional<DivergenceReport> divergence;

    // Cooperative cancellation (opts_.abortCheck): any worker that
    // observes the abort stops the world exactly like a divergence
    // does — cancel pending tasks, let in-flight intervals finish.
    std::atomic<bool> aborted{false};

    // Wall-clock duration of each interval's replay, written once by
    // whichever worker ran it (the drain barrier publishes them).
    // Feeds the measured schedule below.
    std::vector<double> durations(total, 0.0);

    // Each task replays a *chain* of intervals: after an interval
    // completes, the same core's next interval — whose ExecContext,
    // write set, and page cache are hot in this worker's cache —
    // continues inline when it became ready, and all other (cross-
    // core) fan-out goes through the queue for idle workers to pick
    // up. Without the inline hop, every interval pays a queue
    // round-trip (futex wake + per-core state migrating between
    // workers), which costs more than replaying a typical interval
    // does; chaining *across* cores instead would let one worker
    // wander through the whole DAG serially while the rest idle.
    constexpr std::uint32_t kNone = ~0U;
    std::function<void(std::uint32_t)> run_node =
        [&](std::uint32_t id) {
            while (id != kNone) {
                if (opts_.abortCheck &&
                    (aborted.load(std::memory_order_relaxed) ||
                     opts_.abortCheck())) {
                    aborted.store(true, std::memory_order_relaxed);
                    pool.cancelPending();
                    return;
                }
                Node &node = nodes[id];
                CoreMemory &cmem = core_mems[node.core];
                IntervalInterpreter::Accum acc;
                const auto t0 = std::chrono::steady_clock::now();
                try {
                    interp.replayInterval(node.core, node.index,
                                          node.orderPosition,
                                          contexts[node.core], cmem,
                                          loadHook_, rings[node.core],
                                          acc);
                } catch (ReplayDivergence &d) {
                    std::lock_guard lock(divergence_mu);
                    const DivergenceReport &r = d.report();
                    if (!divergence ||
                        r.timestamp < divergence->timestamp)
                        divergence = r;
                    pool.cancelPending();
                    return;
                }
                // Publish this interval's writes *before* releasing
                // any successor on another core: the word stores are
                // sequenced before the acq_rel in-degree release below,
                // so a dependent interval always observes the committed
                // values. When every successor is same-core (and
                // batching is on), the writes stay in the core's
                // private write set instead — the chain's next interval
                // reads through it, on this worker or (when the chain
                // resumes elsewhere) under the happens-before the
                // in-degree release sequence provides — and the next
                // forced commit lands the accumulated set in one
                // batched ShardedStore call.
                if (!opts_.batchCommits || node.hasCrossSucc ||
                    node.successors.empty())
                    cmem.commit();
                durations[id] = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    t0)
                                    .count();
                instructions.fetch_add(acc.instructions,
                                       std::memory_order_relaxed);
                user_cycles.fetch_add(acc.cost.userCycles,
                                      std::memory_order_relaxed);
                os_cycles.fetch_add(acc.cost.osCycles,
                                    std::memory_order_relaxed);
                intervals_done.fetch_add(1, std::memory_order_relaxed);

                std::uint32_t next = kNone;
                for (const std::uint32_t succ : node.successors) {
                    if (indegree[succ].fetch_sub(
                            1, std::memory_order_acq_rel) != 1)
                        continue;
                    if (next == kNone &&
                        nodes[succ].core == node.core)
                        next = succ;
                    else
                        // Affinity hint: keep a core's chain on a
                        // stable worker so its ExecContext, write set
                        // and page cache stay warm.
                        pool.submit(
                            [&run_node, succ] { run_node(succ); },
                            nodes[succ].core);
                }
                id = next;
            }
        };

    for (std::uint32_t n = 0; n < total; ++n) {
        if (nodes[n].indegree == 0)
            pool.submit([&run_node, n] { run_node(n); },
                        nodes[n].core);
    }
    const sim::TaskPool::DrainStats drained = pool.drain();

    if (divergence) {
        // Rings are chronological per core; concatenate in core order.
        // Non-failing cores may have replayed past the divergence
        // point before the pool quiesced — their rings show where they
        // stopped, which is the useful context for debugging anyway.
        for (const auto &ring : rings)
            for (const ReplayStep &s : ring)
                divergence->recentSteps.push_back(s);
        throw ReplayDivergence(std::move(*divergence));
    }
    if (aborted.load())
        throw ReplayAborted();
    RR_ASSERT(intervals_done.load() == total,
              "parallel replay stalled: %llu of %u intervals ran "
              "(dependency cycle?)",
              static_cast<unsigned long long>(intervals_done.load()),
              total);

    // ---- Measured schedule. -----------------------------------------
    // Replay each node's *measured* duration through a greedy list
    // schedule on the same DAG with this run's worker count: ready
    // nodes (all predecessors finished) go to the earliest-free
    // worker, earliest-ready first. The resulting span is the
    // wall-clock the DAG supports on N hardware threads, independent
    // of how many this host actually has — the honest "measured
    // speedup" companion to the cost-model bound from
    // buildParallelSchedule().
    double measured_serial = 0.0, measured_span = 0.0;
    {
        for (std::uint32_t n = 0; n < total; ++n)
            measured_serial += durations[n];
        std::vector<std::uint32_t> preds_left(total);
        std::vector<double> ready_at(total, 0.0);
        using Ready = std::pair<double, std::uint32_t>;
        std::priority_queue<Ready, std::vector<Ready>,
                            std::greater<>>
            ready;
        for (std::uint32_t n = 0; n < total; ++n) {
            preds_left[n] = nodes[n].indegree;
            if (preds_left[n] == 0)
                ready.push({0.0, n});
        }
        std::priority_queue<double, std::vector<double>,
                            std::greater<>>
            worker_free;
        for (std::uint32_t w = 0; w < pool.workers(); ++w)
            worker_free.push(0.0);
        while (!ready.empty()) {
            const auto [at, id] = ready.top();
            ready.pop();
            const double free = worker_free.top();
            worker_free.pop();
            const double finish = std::max(at, free) + durations[id];
            worker_free.push(finish);
            measured_span = std::max(measured_span, finish);
            for (const std::uint32_t succ : nodes[id].successors) {
                ready_at[succ] = std::max(ready_at[succ], finish);
                if (--preds_left[succ] == 0)
                    ready.push({ready_at[succ], succ});
            }
        }
    }

    // ---- Assemble the result. ---------------------------------------
    ReplayResult res;
    res.instructions = instructions.load();
    res.cost.userCycles = user_cycles.load();
    res.cost.osCycles = os_cycles.load();
    res.intervals = intervals_done.load();
    res.contexts = std::move(contexts);
    res.memory = shards.collapse();
    res.wallSeconds = drained.wallSeconds;
    res.workers = pool.workers();
    res.measuredSerialSeconds = measured_serial;
    res.measuredSpanSeconds = measured_span;

    std::uint64_t words_committed = 0;
    for (const CoreMemory &cmem : core_mems)
        words_committed += cmem.wordsWritten();
    auto &stats = res.engineStats;
    stats.counter("intervals_replayed") += res.intervals;
    stats.counter("words_committed") += words_committed;
    stats.counter("tasks_run") += drained.tasksRun;
    double busy_total = 0.0;
    for (std::uint32_t w = 0; w < pool.workers(); ++w) {
        stats.scalar("worker_busy_seconds")
            .sample(drained.workerBusySeconds[w]);
        stats.scalar("worker_tasks").sample(
            static_cast<double>(drained.workerTasks[w]));
        busy_total += drained.workerBusySeconds[w];
    }
    if (drained.wallSeconds > 0.0)
        stats.scalar("utilization")
            .sample(busy_total /
                    (drained.wallSeconds * pool.workers()));
    stats.scalar("measured_serial_seconds").sample(measured_serial);
    stats.scalar("measured_span_seconds").sample(measured_span);
    if (measured_span > 0.0)
        stats.scalar("measured_speedup")
            .sample(measured_serial / measured_span);
    return res;
}

} // namespace rr::rnr
