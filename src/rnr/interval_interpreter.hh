/**
 * @file
 * The single-interval replay engine shared by the sequential Replayer
 * and the multi-threaded ParallelReplayer.
 *
 * An interval replays the same way regardless of the engine driving it:
 * execute InorderBlocks natively through the functional interpreter,
 * inject values for ReorderedLoads/DummyAtomics, skip Dummy entries,
 * and apply PatchedStores through the memory interface at their
 * position in the entry stream. What differs between engines is only
 * *which* memory view the interval executes against (the global
 * BackingStore sequentially; a per-interval write-set view backed by a
 * sharded store in parallel) and how results are accumulated — so both
 * concerns stay with the caller.
 */

#ifndef RR_RNR_INTERVAL_INTERPRETER_HH
#define RR_RNR_INTERVAL_INTERPRETER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "isa/program.hh"
#include "rnr/divergence.hh"
#include "rnr/log.hh"
#include "rnr/replay_cost.hh"
#include "sim/types.hh"

namespace rr::rnr
{

class IntervalInterpreter
{
  public:
    /** Replay steps kept per core for divergence reports. */
    static constexpr std::size_t kRingDepth = 8;

    using LoadHook = std::function<void(sim::CoreId, std::uint64_t)>;

    /**
     * Both references must outlive the interpreter; @p logs must be
     * patched (see patcher.hh) — engines assert this on construction.
     */
    IntervalInterpreter(const isa::Program &prog,
                        const std::vector<CoreLog> &logs,
                        const ReplayCostModel &model)
        : prog_(prog), logs_(logs), model_(model)
    {
    }

    /** Cycles and instructions accrued by replayInterval() calls. */
    struct Accum
    {
        ReplayCost cost;
        std::uint64_t instructions = 0;
    };

    /**
     * Replay one interval of @p core against @p ctx and @p mem. All
     * value state flows through @p mem: in-order execution reads and
     * writes it, and PatchedStore entries write through it too (the
     * parallel engine redirects those writes into its per-interval
     * write set the same way it redirects in-order stores). Every
     * replayed load/atomic value is reported to @p hook (when set),
     * each step is appended to @p ring (bounded to kRingDepth), and
     * cycle/instruction costs accumulate into @p acc, including the
     * per-interval ordering hand-off cost.
     *
     * Throws ReplayDivergence when an entry does not line up with the
     * program. The report carries everything except recentSteps, which
     * the engine fills from its rings (the sequential and parallel
     * engines own different ring lifetimes).
     */
    void replayInterval(sim::CoreId core, std::uint32_t interval_index,
                        std::uint64_t order_position,
                        isa::ExecContext &ctx, isa::MemoryIf &mem,
                        const LoadHook &hook,
                        std::deque<ReplayStep> &ring, Accum &acc) const;

    const ReplayCostModel &costModel() const { return model_; }

  private:
    [[noreturn]] void diverge(sim::CoreId core,
                              std::uint32_t interval_index,
                              std::uint32_t entry_index,
                              std::uint64_t order_position,
                              std::uint64_t pc, const LogEntry &entry,
                              std::string expected,
                              std::string actual) const;

    const isa::Program &prog_;
    const std::vector<CoreLog> &logs_;
    const ReplayCostModel model_;
};

} // namespace rr::rnr

#endif // RR_RNR_INTERVAL_INTERPRETER_HH
