/**
 * @file
 * Bimodal branch direction predictor: a table of 2-bit saturating
 * counters indexed by PC. Targets are static in the micro-ISA, so no
 * BTB is needed; indirect jumps (Jr) stall fetch instead.
 */

#ifndef RR_CPU_BRANCH_PREDICTOR_HH
#define RR_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

namespace rr::cpu
{

class BranchPredictor
{
  public:
    explicit BranchPredictor(std::uint32_t entries)
        : mask_(entries - 1), table_(entries, kWeakNotTaken)
    {
    }

    bool
    predict(std::uint64_t pc) const
    {
        return table_[pc & mask_] >= kWeakTaken;
    }

    void
    update(std::uint64_t pc, bool taken)
    {
        std::uint8_t &ctr = table_[pc & mask_];
        if (taken) {
            if (ctr < kStrongTaken)
                ++ctr;
        } else {
            if (ctr > kStrongNotTaken)
                --ctr;
        }
    }

  private:
    static constexpr std::uint8_t kStrongNotTaken = 0;
    static constexpr std::uint8_t kWeakNotTaken = 1;
    static constexpr std::uint8_t kWeakTaken = 2;
    static constexpr std::uint8_t kStrongTaken = 3;

    std::uint64_t mask_;
    std::vector<std::uint8_t> table_;
};

} // namespace rr::cpu

#endif // RR_CPU_BRANCH_PREDICTOR_HH
