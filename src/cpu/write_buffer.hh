/**
 * @file
 * The post-retirement store (write) buffer. Stores enter at retirement
 * and drain to the memory system in FIFO issue order with out-of-order
 * completion, which is what makes store performs visibly out of program
 * order under the RC model. Same-word ordering is preserved because the
 * memory system serializes same-line accesses of one core in issue
 * order (hit order / MSHR waiting-list order).
 */

#ifndef RR_CPU_WRITE_BUFFER_HH
#define RR_CPU_WRITE_BUFFER_HH

#include <cstdint>
#include <deque>

#include "sim/types.hh"

namespace rr::cpu
{

class WriteBuffer
{
  public:
    struct Entry
    {
        sim::Addr word;
        std::uint64_t value;
        sim::SeqNum seq;
        bool issued = false;
        bool done = false;
    };

    explicit WriteBuffer(std::size_t capacity) : capacity_(capacity) {}

    bool full() const { return entries_.size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

    void
    push(sim::Addr word, std::uint64_t value, sim::SeqNum seq)
    {
        entries_.push_back(Entry{word, value, seq, false, false});
    }

    /** Oldest entry not yet issued to the memory system, if any. */
    Entry *
    nextToIssue()
    {
        for (auto &e : entries_) {
            if (!e.issued)
                return &e;
        }
        return nullptr;
    }

    /** Mark the entry for @p seq complete and pop the finished prefix. */
    void
    complete(sim::SeqNum seq)
    {
        for (auto &e : entries_) {
            if (e.seq == seq) {
                e.done = true;
                break;
            }
        }
        while (!entries_.empty() && entries_.front().done)
            entries_.pop_front();
    }

    /**
     * Youngest entry writing @p word (store-to-load forwarding source);
     * nullptr when no entry matches.
     */
    const Entry *
    youngestFor(sim::Addr word) const
    {
        for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
            if (it->word == word)
                return &*it;
        }
        return nullptr;
    }

  private:
    std::size_t capacity_;
    std::deque<Entry> entries_;
};

} // namespace rr::cpu

#endif // RR_CPU_WRITE_BUFFER_HH
