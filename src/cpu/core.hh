/**
 * @file
 * A 4-issue out-of-order superscalar core executing the micro-ISA under
 * a Release-Consistency memory model (paper Table 1):
 *
 *  - fetch follows a bimodal predictor, so real wrong-path instructions
 *    enter the ROB and are squashed on branch resolution;
 *  - loads issue to memory (or forward from older stores) as soon as
 *    their address is known and no older store address is unresolved,
 *    freely bypassing pending stores — this produces the ~60% of
 *    accesses that perform out of program order (paper Figure 1);
 *  - stores retire into a write buffer and drain with multiple
 *    outstanding misses, completing out of order;
 *  - FENCE blocks younger loads and retires only once the write buffer
 *    has drained; atomics (XCHG/FADD) issue at the ROB head with an
 *    empty write buffer and act as full fences.
 *
 * The core publishes dispatch/retire/squash/forward events to
 * CoreListener instances (the MRR hub) and receives perform/completion
 * events from the MemorySystem.
 */

#ifndef RR_CPU_CORE_HH
#define RR_CPU_CORE_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "cpu/branch_predictor.hh"
#include "cpu/core_listener.hh"
#include "cpu/write_buffer.hh"
#include "isa/program.hh"
#include "mem/coherence.hh"
#include "mem/memory_system.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace rr::cpu
{

class Core : public mem::MemClient
{
  public:
    Core(sim::CoreId id, const sim::MachineConfig &cfg,
         const isa::Program &prog, mem::MemorySystem &mem,
         mem::StampClock &clock);

    /** Initialize thread state; must be called before the first tick. */
    void start(std::uint32_t tid, std::uint32_t num_threads);

    void addListener(CoreListener *l) { listeners_.push_back(l); }

    /** Advance one cycle. The memory system must have ticked already. */
    void tick(sim::Cycle now);

    /** Architecturally halted (HALT retired). */
    bool halted() const { return halted_; }

    /** Halted and the write buffer fully drained. */
    bool quiescent() const { return halted_ && wb_.empty(); }

    // MemClient
    void memCompleted(std::uint64_t tag, mem::AccessKind kind,
                      std::uint64_t load_value, sim::Cycle when) override;

    sim::CoreId id() const { return id_; }
    std::uint64_t retired() const { return retiredCount_; }
    std::uint64_t archReg(isa::Reg r) const { return archRegs_[r]; }
    std::uint32_t robOccupancy() const { return count_; }
    sim::StatSet &stats() { return stats_; }

  private:
    struct RobEntry
    {
        sim::SeqNum seq = sim::kNoSeqNum;
        std::uint64_t pc = 0;
        isa::Instruction inst;
        // Operand sourcing: kNoSeqNum producer means the value is final.
        sim::SeqNum src1Prod = sim::kNoSeqNum;
        sim::SeqNum src2Prod = sim::kNoSeqNum;
        std::uint64_t src1Val = 0;
        std::uint64_t src2Val = 0;
        // Execution status.
        bool executed = false;
        sim::Cycle resultReady = sim::kNoCycle;
        std::uint64_t result = 0;
        // Control flow.
        std::uint64_t predictedNext = 0;
        std::uint64_t actualNext = 0;
        bool predictedTaken = false;
        // Memory status.
        sim::Addr addr = 0;
        bool addrValid = false;
        bool memIssued = false;
        bool completed = false;
        bool forwarded = false;
        // Snapshot of the non-memory-instruction counter after this
        // instruction dispatched; restored on squash at this entry.
        std::uint32_t nmiAfter = 0;
    };

    // --- pipeline phases, called in order from tick() ---
    void retirePhase(sim::Cycle now);
    void executePhase(sim::Cycle now);
    void drainWriteBuffer(sim::Cycle now, std::uint32_t &mem_ports);
    void dispatchPhase(sim::Cycle now);

    /** Try to resolve both operands of @p e; true when ready. */
    bool resolveOperands(RobEntry &e, sim::Cycle now);
    bool resolveOne(sim::SeqNum &prod, std::uint64_t &val, sim::Cycle now);

    /**
     * Try to satisfy a load from an older in-flight store (ROB slice
     * older than @p slot, then the write buffer).
     * @return 0 no match (go to memory), 1 forwarded, 2 must wait.
     */
    int tryForward(RobEntry &e, std::uint32_t slot, sim::Cycle now);

    /** Squash every instruction younger than @p survivor_seq. */
    void squashAfter(sim::SeqNum survivor_seq, std::uint32_t nmi_restore);

    void rebuildProducers();

    // ROB circular-buffer helpers.
    std::uint32_t slotAt(std::uint32_t offset_from_head) const
    {
        return (head_ + offset_from_head) % robSize_;
    }
    RobEntry &entryAt(std::uint32_t offset) { return rob_[slotAt(offset)]; }

    bool allowMemDispatch() const;

    const sim::CoreId id_;
    const sim::MachineConfig &cfg_;
    const isa::Program &prog_;
    mem::MemorySystem &mem_;
    mem::StampClock &clock_;

    // ROB storage.
    const std::uint32_t robSize_;
    std::vector<RobEntry> rob_;
    std::uint32_t head_ = 0; ///< index of oldest entry
    std::uint32_t count_ = 0;
    std::unordered_map<sim::SeqNum, std::uint32_t> slotOfSeq_;

    // Retired-but-still-referenced results (producers that left the ROB
    // before their consumers issued).
    std::unordered_map<sim::SeqNum, std::uint64_t> retiredResults_;
    /** (producer seq, nextSeq_ at its retirement) for garbage collection. */
    std::deque<std::pair<sim::SeqNum, sim::SeqNum>> retiredResultFifo_;

    // Register state.
    std::uint64_t archRegs_[isa::kNumRegs] = {};
    sim::SeqNum regProducer_[isa::kNumRegs];

    // Fetch state.
    std::uint64_t fetchPc_ = 0;
    sim::SeqNum nextSeq_ = 0;
    sim::Cycle redirectAt_ = 0; ///< fetch resumes at this cycle
    sim::SeqNum jrStallSeq_ = sim::kNoSeqNum;
    sim::SeqNum haltSeq_ = sim::kNoSeqNum;
    std::uint32_t nmiCounter_ = 0;
    std::uint32_t lsqCount_ = 0;

    BranchPredictor predictor_;
    WriteBuffer wb_;

    bool started_ = false;
    bool halted_ = false;
    std::uint64_t retiredCount_ = 0;

    std::vector<CoreListener *> listeners_;
    sim::StatSet stats_;
};

} // namespace rr::cpu

#endif // RR_CPU_CORE_HH
