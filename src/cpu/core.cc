#include "cpu/core.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace rr::cpu
{

using isa::Instruction;
using isa::Opcode;

Core::Core(sim::CoreId id, const sim::MachineConfig &cfg,
           const isa::Program &prog, mem::MemorySystem &mem,
           mem::StampClock &clock)
    : id_(id), cfg_(cfg), prog_(prog), mem_(mem), clock_(clock),
      robSize_(cfg.core.robEntries), rob_(robSize_),
      predictor_(cfg.core.predictorEntries),
      wb_(cfg.core.writeBufferEntries),
      stats_(sim::strfmt("core%u", id))
{
    for (auto &p : regProducer_)
        p = sim::kNoSeqNum;
    mem_.setClient(id_, this);
}

void
Core::start(std::uint32_t tid, std::uint32_t num_threads)
{
    RR_ASSERT(!started_, "core started twice");
    archRegs_[isa::kRegThreadId] = tid;
    archRegs_[isa::kRegNumThreads] = num_threads;
    fetchPc_ = prog_.entryFor(tid);
    started_ = true;
}

bool
Core::allowMemDispatch() const
{
    for (const auto *l : listeners_) {
        if (!l->canDispatchMem())
            return false;
    }
    return true;
}

void
Core::tick(sim::Cycle now)
{
    RR_ASSERT(started_, "tick before start");
    if (halted_) {
        std::uint32_t ports = cfg_.core.numLdStUnits;
        drainWriteBuffer(now, ports);
        return;
    }

    retirePhase(now);
    if (halted_) {
        std::uint32_t ports = cfg_.core.numLdStUnits;
        drainWriteBuffer(now, ports);
        return;
    }
    executePhase(now);
    dispatchPhase(now);

    stats_.scalar("rob_occupancy").sample(count_);
    stats_.scalar("wb_occupancy").sample(static_cast<double>(wb_.size()));
}

// ---------------------------------------------------------------------
// Operand resolution
// ---------------------------------------------------------------------

bool
Core::resolveOne(sim::SeqNum &prod, std::uint64_t &val, sim::Cycle now)
{
    if (prod == sim::kNoSeqNum)
        return true;
    auto it = slotOfSeq_.find(prod);
    if (it != slotOfSeq_.end()) {
        const RobEntry &p = rob_[it->second];
        RR_ASSERT(p.seq == prod, "slot map out of sync");
        if (p.executed && p.resultReady <= now) {
            val = p.result;
            prod = sim::kNoSeqNum;
            return true;
        }
        return false;
    }
    // Producer retired before this consumer issued.
    auto rit = retiredResults_.find(prod);
    RR_ASSERT(rit != retiredResults_.end(),
              "lost producer value for seq %llu",
              static_cast<unsigned long long>(prod));
    val = rit->second;
    prod = sim::kNoSeqNum;
    return true;
}

bool
Core::resolveOperands(RobEntry &e, sim::Cycle now)
{
    const bool a = resolveOne(e.src1Prod, e.src1Val, now);
    const bool b = resolveOne(e.src2Prod, e.src2Val, now);
    return a && b;
}

// ---------------------------------------------------------------------
// Retirement
// ---------------------------------------------------------------------

void
Core::retirePhase(sim::Cycle now)
{
    std::uint32_t retired = 0;
    while (retired < cfg_.core.retireWidth && count_ > 0) {
        RobEntry &e = rob_[head_];
        const Instruction &inst = e.inst;

        if (inst.isLoad() || inst.isAtomic()) {
            if (!e.completed)
                break;
        } else if (inst.isStore()) {
            if (!e.executed)
                break;
            if (wb_.full()) {
                stats_.counter("wb_full_stalls")++;
                break;
            }
        } else if (inst.isFence()) {
            if (!e.executed || !wb_.empty())
                break;
        } else {
            if (!e.executed || e.resultReady > now)
                break;
        }

        // Commit.
        if (inst.isStore())
            wb_.push(e.addr, e.src2Val, e.seq);
        if (inst.writesRd()) {
            archRegs_[inst.rd] = e.result;
            retiredResults_[e.seq] = e.result;
            retiredResultFifo_.emplace_back(e.seq, nextSeq_);
            if (regProducer_[inst.rd] == e.seq)
                regProducer_[inst.rd] = sim::kNoSeqNum;
        }
        ++retiredCount_;
        ++retired;
        if (inst.isMem())
            --lsqCount_;

        const RetireInfo info{e.seq,
                              e.pc,
                              inst.op,
                              inst.isMem(),
                              (inst.isLoad() || inst.isAtomic()) ? e.result
                                                                 : 0,
                              now};
        for (auto *l : listeners_)
            l->onRetire(info);

        const sim::SeqNum seq = e.seq;
        const bool is_halt = inst.isHalt();
        const std::uint32_t halt_nmi = e.nmiAfter;
        slotOfSeq_.erase(seq);
        head_ = (head_ + 1) % robSize_;
        --count_;

        if (is_halt) {
            halted_ = true;
            if (sim::TraceSink::enabled()) {
                sim::TraceSink::get()->instant(
                    sim::TraceSink::kRecordPid, id_, "core", "halt", now,
                    {{"retired", retiredCount_}});
            }
            squashAfter(seq, 0);
            for (auto *l : listeners_)
                l->onHalted(now, halt_nmi);
            break;
        }
    }

    // GC producer values nobody can reference anymore: all consumers
    // dispatched before the producer retired (seq < barrier) have left
    // the ROB.
    const sim::SeqNum oldest = count_ > 0 ? rob_[head_].seq : nextSeq_;
    while (!retiredResultFifo_.empty() &&
           retiredResultFifo_.front().second <= oldest) {
        retiredResults_.erase(retiredResultFifo_.front().first);
        retiredResultFifo_.pop_front();
    }
}

// ---------------------------------------------------------------------
// Execute / issue
// ---------------------------------------------------------------------

int
Core::tryForward(RobEntry &e, std::uint32_t slot, sim::Cycle now)
{
    // Older ROB stores, youngest first. All older store addresses are
    // known here (unknown ones set blockLoads upstream).
    for (std::uint32_t off = slot; off-- > 0;) {
        RobEntry &s = entryAt(off);
        const Instruction &si = s.inst;
        if (!si.isStore() && !si.isAtomic())
            continue;
        if (!s.addrValid)
            return 2;
        if (s.addr != e.addr)
            continue;
        std::uint64_t value;
        if (si.isStore()) {
            if (!s.executed)
                return 2; // data not ready yet
            value = s.src2Val;
        } else if (s.completed) {
            // Atomic new value: XCHG writes rs2, FADD writes old+rs2.
            value = si.op == Opcode::Xchg ? s.src2Val
                                          : s.result + s.src2Val;
        } else {
            return 2;
        }
        e.result = value;
        e.forwarded = e.completed = e.executed = true;
        e.resultReady = now + 1;
        stats_.counter("forwarded_loads")++;
        const std::uint64_t stamp = clock_.next();
        for (auto *l : listeners_)
            l->onForwardedLoadPerform(e.seq, e.addr, value, stamp, now);
        return 1;
    }

    if (const WriteBuffer::Entry *w = wb_.youngestFor(e.addr)) {
        e.result = w->value;
        e.forwarded = e.completed = e.executed = true;
        e.resultReady = now + 1;
        stats_.counter("forwarded_loads")++;
        const std::uint64_t stamp = clock_.next();
        for (auto *l : listeners_)
            l->onForwardedLoadPerform(e.seq, e.addr, w->value, stamp, now);
        return 1;
    }
    return 0;
}

void
Core::executePhase(sim::Cycle now)
{
    std::uint32_t issued = 0;
    std::uint32_t mem_ports = cfg_.core.numLdStUnits;
    bool block_loads = false;

    for (std::uint32_t i = 0; i < count_ && issued < cfg_.core.issueWidth;
         ++i) {
        RobEntry &e = entryAt(i);
        const Instruction &inst = e.inst;

        if (inst.isStore()) {
            if (!e.addrValid &&
                resolveOne(e.src1Prod, e.src1Val, now)) {
                e.addr = sim::wordAddr(e.src1Val + inst.imm);
                e.addrValid = true;
            }
            if (e.addrValid && !e.executed &&
                resolveOne(e.src2Prod, e.src2Val, now)) {
                e.executed = true;
                e.resultReady = now + 1;
            }
            if (!e.addrValid)
                block_loads = true;
            continue;
        }

        if (inst.isLoad()) {
            if (e.completed)
                continue;
            if (!e.addrValid) {
                if (!resolveOne(e.src1Prod, e.src1Val, now))
                    continue;
                e.addr = sim::wordAddr(e.src1Val + inst.imm);
                e.addrValid = true;
            }
            if (block_loads || e.memIssued || mem_ports == 0)
                continue;
            const int fwd = tryForward(e, i, now);
            if (fwd == 1) {
                --mem_ports;
                ++issued;
            } else if (fwd == 0 && mem_.canAccept(id_, e.addr)) {
                mem_.access(id_, mem::AccessKind::Load, e.addr, 0, e.seq);
                e.memIssued = true;
                --mem_ports;
                ++issued;
                stats_.counter("loads_to_memory")++;
            }
            continue;
        }

        if (inst.isAtomic()) {
            if (!e.addrValid &&
                resolveOne(e.src1Prod, e.src1Val, now)) {
                e.addr = sim::wordAddr(e.src1Val + inst.imm);
                e.addrValid = true;
            }
            const bool data_ready = resolveOne(e.src2Prod, e.src2Val, now);
            if (!e.completed)
                block_loads = true; // atomics act as fences
            if (i == 0 && e.addrValid && data_ready && !e.memIssued &&
                wb_.empty() && mem_ports > 0 &&
                mem_.canAccept(id_, e.addr)) {
                const auto kind = inst.op == Opcode::Xchg
                                      ? mem::AccessKind::Xchg
                                      : mem::AccessKind::Fadd;
                mem_.access(id_, kind, e.addr, e.src2Val, e.seq);
                e.memIssued = true;
                --mem_ports;
                ++issued;
            }
            continue;
        }

        if (inst.isFence()) {
            if (!e.executed) {
                e.executed = true;
                e.resultReady = now;
            }
            block_loads = true; // fences order younger loads
            continue;
        }

        if (e.executed)
            continue;
        if (!resolveOperands(e, now))
            continue;

        ++issued;
        e.executed = true;
        switch (inst.op) {
          case Opcode::Nop:
          case Opcode::Halt:
            e.resultReady = now;
            break;
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge: {
            const bool taken =
                isa::evalBranch(inst, e.src1Val, e.src2Val);
            e.actualNext = taken ? static_cast<std::uint64_t>(inst.imm)
                                 : e.pc + 1;
            e.resultReady = now + 1;
            predictor_.update(e.pc, taken);
            stats_.counter("branches")++;
            if (e.actualNext != e.predictedNext) {
                stats_.counter("mispredicts")++;
                squashAfter(e.seq, e.nmiAfter);
                fetchPc_ = e.actualNext;
                redirectAt_ = now + cfg_.core.branchRedirectPenalty;
                drainWriteBuffer(now, mem_ports);
                return; // younger entries are gone
            }
            break;
          }
          case Opcode::Jmp:
            e.actualNext = static_cast<std::uint64_t>(inst.imm);
            e.resultReady = now;
            break;
          case Opcode::Jal:
            e.result = e.pc + 1;
            e.actualNext = static_cast<std::uint64_t>(inst.imm);
            e.resultReady = now + 1;
            break;
          case Opcode::Jr:
            e.actualNext = e.src1Val;
            e.resultReady = now + 1;
            RR_ASSERT(jrStallSeq_ == e.seq, "unexpected Jr stall state");
            jrStallSeq_ = sim::kNoSeqNum;
            fetchPc_ = e.actualNext;
            redirectAt_ = now + 1;
            break;
          default:
            e.result = isa::evalAlu(inst, e.src1Val, e.src2Val);
            e.resultReady =
                now + (inst.op == Opcode::Mul ? cfg_.core.mulLatency : 1);
            break;
        }
    }

    drainWriteBuffer(now, mem_ports);
}

void
Core::drainWriteBuffer(sim::Cycle now, std::uint32_t &mem_ports)
{
    (void)now;
    while (mem_ports > 0) {
        WriteBuffer::Entry *e = wb_.nextToIssue();
        if (!e)
            return;
        if (!mem_.canAccept(id_, e->word)) {
            stats_.counter("wb_drain_blocked")++;
            return;
        }
        mem_.access(id_, mem::AccessKind::Store, e->word, e->value,
                    e->seq);
        e->issued = true;
        --mem_ports;
        stats_.counter("stores_to_memory")++;
    }
}

// ---------------------------------------------------------------------
// Dispatch / fetch
// ---------------------------------------------------------------------

void
Core::dispatchPhase(sim::Cycle now)
{
    for (std::uint32_t d = 0; d < cfg_.core.dispatchWidth; ++d) {
        if (jrStallSeq_ != sim::kNoSeqNum || haltSeq_ != sim::kNoSeqNum)
            break;
        if (now < redirectAt_)
            break;
        if (fetchPc_ >= prog_.size()) {
            // Wrong-path fetch ran off the program; wait for the squash.
            stats_.counter("fetch_out_of_range")++;
            break;
        }
        if (count_ >= robSize_) {
            stats_.counter("rob_full_stalls")++;
            break;
        }
        const Instruction &inst = prog_.code[fetchPc_];
        if (inst.isMem()) {
            if (lsqCount_ >= cfg_.core.lsqEntries) {
                stats_.counter("lsq_full_stalls")++;
                break;
            }
            if (!allowMemDispatch()) {
                stats_.counter("traq_full_stalls")++;
                break;
            }
        }

        const sim::SeqNum seq = nextSeq_++;
        const std::uint32_t tail = slotAt(count_);
        RobEntry &e = rob_[tail];
        e = RobEntry{};
        e.seq = seq;
        e.pc = fetchPc_;
        e.inst = inst;

        if (inst.readsRs1() && inst.rs1 != 0 &&
            regProducer_[inst.rs1] != sim::kNoSeqNum) {
            e.src1Prod = regProducer_[inst.rs1];
        } else {
            e.src1Val = inst.readsRs1() ? archRegs_[inst.rs1] : 0;
            if (inst.rs1 == 0)
                e.src1Val = 0;
        }
        if (inst.readsRs2() && inst.rs2 != 0 &&
            regProducer_[inst.rs2] != sim::kNoSeqNum) {
            e.src2Prod = regProducer_[inst.rs2];
        } else {
            e.src2Val = inst.readsRs2() ? archRegs_[inst.rs2] : 0;
            if (inst.rs2 == 0)
                e.src2Val = 0;
        }

        std::uint64_t next = fetchPc_ + 1;
        if (inst.isCondBranch()) {
            e.predictedTaken = predictor_.predict(e.pc);
            next = e.predictedTaken ? static_cast<std::uint64_t>(inst.imm)
                                    : e.pc + 1;
        } else if (inst.op == Opcode::Jmp || inst.op == Opcode::Jal) {
            next = static_cast<std::uint64_t>(inst.imm);
        } else if (inst.op == Opcode::Jr) {
            jrStallSeq_ = seq;
            next = e.pc; // placeholder; fetch stalls until resolve
        } else if (inst.isHalt()) {
            haltSeq_ = seq;
            next = e.pc;
        }
        e.predictedNext = next;
        e.actualNext = next;

        if (inst.writesRd())
            regProducer_[inst.rd] = seq;

        if (inst.isMem()) {
            for (auto *l : listeners_)
                l->onDispatchMem(seq, inst, nmiCounter_);
            nmiCounter_ = 0;
            ++lsqCount_;
        } else {
            ++nmiCounter_;
            if (nmiCounter_ >= cfg_.core.nmiGroupLimit) {
                for (auto *l : listeners_)
                    l->onDispatchNmiGroup(seq, nmiCounter_);
                nmiCounter_ = 0;
            }
        }
        e.nmiAfter = nmiCounter_;

        slotOfSeq_[seq] = tail;
        ++count_;
        stats_.counter("dispatched")++;

        if (inst.op == Opcode::Jr || inst.isHalt())
            break;
        fetchPc_ = next;
    }
}

// ---------------------------------------------------------------------
// Squash
// ---------------------------------------------------------------------

void
Core::squashAfter(sim::SeqNum survivor_seq, std::uint32_t nmi_restore)
{
    while (count_ > 0) {
        RobEntry &e = entryAt(count_ - 1);
        if (e.seq <= survivor_seq)
            break;
        if (e.inst.isMem())
            --lsqCount_;
        slotOfSeq_.erase(e.seq);
        --count_;
        stats_.counter("squashed_instructions")++;
    }
    nmiCounter_ = nmi_restore;
    if (jrStallSeq_ != sim::kNoSeqNum && jrStallSeq_ > survivor_seq)
        jrStallSeq_ = sim::kNoSeqNum;
    if (haltSeq_ != sim::kNoSeqNum && haltSeq_ > survivor_seq)
        haltSeq_ = sim::kNoSeqNum;
    rebuildProducers();
    for (auto *l : listeners_)
        l->onSquash(survivor_seq);
}

void
Core::rebuildProducers()
{
    for (auto &p : regProducer_)
        p = sim::kNoSeqNum;
    for (std::uint32_t i = 0; i < count_; ++i) {
        RobEntry &e = entryAt(i);
        if (e.inst.writesRd())
            regProducer_[e.inst.rd] = e.seq;
    }
}

// ---------------------------------------------------------------------
// Memory completions
// ---------------------------------------------------------------------

void
Core::memCompleted(std::uint64_t tag, mem::AccessKind kind,
                   std::uint64_t load_value, sim::Cycle when)
{
    if (kind == mem::AccessKind::Store) {
        wb_.complete(tag);
        return;
    }
    auto it = slotOfSeq_.find(tag);
    if (it == slotOfSeq_.end()) {
        stats_.counter("squashed_completions")++;
        return;
    }
    RobEntry &e = rob_[it->second];
    RR_ASSERT(e.seq == tag, "completion slot mismatch");
    RR_ASSERT(e.memIssued && !e.completed, "unexpected completion");
    e.completed = true;
    e.executed = true;
    e.result = load_value;
    e.resultReady = when;
}

} // namespace rr::cpu
