/**
 * @file
 * The signal interface between the OoO core and the per-core Memory Race
 * Recorder (paper Figure 6a: "processor signals"). The core publishes
 * dispatch, retirement, squash and store-to-load-forwarding events; the
 * recorder publishes back-pressure through canDispatchMem() (TRAQ-full
 * stalls instruction dispatch). Perform events travel separately, from
 * the memory system's observer interface, so that they arrive in global
 * serialization order.
 */

#ifndef RR_CPU_CORE_LISTENER_HH
#define RR_CPU_CORE_LISTENER_HH

#include <cstdint>

#include "isa/instruction.hh"
#include "sim/types.hh"

namespace rr::cpu
{

/** Architectural facts about one retiring instruction. */
struct RetireInfo
{
    sim::SeqNum seq;
    std::uint64_t pc;
    isa::Opcode op;
    bool isMem;
    /** For loads and atomics: the value deposited into rd. */
    std::uint64_t loadValue;
    sim::Cycle cycle;
};

class CoreListener
{
  public:
    virtual ~CoreListener() = default;

    /**
     * A memory-access instruction entered the ROB. @p nmi_before is the
     * number of non-memory instructions dispatched since the previous
     * memory-access instruction (already folded into NMI-group pseudo
     * entries when it exceeded the NMI field width).
     */
    virtual void
    onDispatchMem(sim::SeqNum seq, const isa::Instruction &inst,
                  std::uint32_t nmi_before)
    {
        (void)seq;
        (void)inst;
        (void)nmi_before;
    }

    /**
     * A full group of non-memory instructions was dispatched with no
     * intervening memory access (TRAQ pseudo entry, Section 4.1).
     * @p last_seq is the sequence number of the group's last instruction.
     */
    virtual void
    onDispatchNmiGroup(sim::SeqNum last_seq, std::uint32_t count)
    {
        (void)last_seq;
        (void)count;
    }

    /**
     * A load obtained its value by store-to-load forwarding and thus
     * performs without a memory-system event (Section 3.4).
     */
    virtual void
    onForwardedLoadPerform(sim::SeqNum seq, sim::Addr word_addr,
                           std::uint64_t value, std::uint64_t stamp,
                           sim::Cycle cycle)
    {
        (void)seq;
        (void)word_addr;
        (void)value;
        (void)stamp;
        (void)cycle;
    }

    /** An instruction retired (in program order). */
    virtual void onRetire(const RetireInfo &) {}

    /**
     * Branch misprediction: every instruction with seq > @p
     * youngest_surviving is squashed (ROB and TRAQ flush).
     */
    virtual void onSquash(sim::SeqNum youngest_surviving)
    {
        (void)youngest_surviving;
    }

    /**
     * The core's thread retired HALT. @p residual_nmi is the number of
     * trailing non-memory instructions (HALT included) retired since
     * the last TRAQ entry; the recorder folds them into its final
     * interval.
     */
    virtual void onHalted(sim::Cycle, std::uint32_t residual_nmi)
    {
        (void)residual_nmi;
    }

    /** Back-pressure: false stalls dispatch of memory instructions. */
    virtual bool canDispatchMem() const { return true; }
};

} // namespace rr::cpu

#endif // RR_CPU_CORE_LISTENER_HH
