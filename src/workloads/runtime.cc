#include "workloads/runtime.hh"

#include "sim/logging.hh"

namespace rr::workloads
{

namespace
{
/** Workload data lives above the (unused) low addresses. */
constexpr sim::Addr kHeapBase = 0x10000;
} // namespace

KernelBuilder::KernelBuilder(std::string name, const WorkloadParams &params)
    : name_(std::move(name)), params_(params), cursor_(kHeapBase)
{
    RR_ASSERT(params_.numThreads >= 1, "workload needs threads");
    // Barrier state: arrival count at +0, global sense on its own line
    // at +32 (sharing a line would make every arrival's fetch-add
    // invalidate all spinners).
    barrierBase_ = alloc("__barrier", 8);
    // One private line (sense word) per thread.
    senseBase_ = alloc("__sense", 4ULL * params_.numThreads);
}

std::string
KernelBuilder::uniq(const std::string &base)
{
    return name_ + "." + base + "." + std::to_string(labelCounter_++);
}

sim::Addr
KernelBuilder::alloc(const std::string &region, std::uint64_t words)
{
    RR_ASSERT(!regions_.count(region), "region '%s' allocated twice",
              region.c_str());
    // Line-align every region and keep one guard line between regions so
    // unrelated regions never share a cache line (false sharing is then
    // an explicit workload choice, not a layout accident).
    const sim::Addr base = cursor_;
    regions_[region] = base;
    const std::uint64_t bytes = (words + 4) * sim::kWordBytes;
    cursor_ += (bytes + sim::kLineBytes - 1) &
               ~static_cast<sim::Addr>(sim::kLineBytes - 1);
    return base;
}

sim::Addr
KernelBuilder::region(const std::string &region) const
{
    auto it = regions_.find(region);
    RR_ASSERT(it != regions_.end(), "unknown region '%s'",
              region.c_str());
    return it->second;
}

void
KernelBuilder::initWord(sim::Addr addr, std::uint64_t value)
{
    a_.data(addr, value);
}

void
KernelBuilder::emitPreamble()
{
    a_.li(rOne, 1);
}

void
KernelBuilder::loadImm(isa::Reg rd, std::uint64_t value)
{
    a_.li(rd, static_cast<std::int64_t>(value));
}

void
KernelBuilder::emitBackoff(isa::Reg counter)
{
    // A short register-only delay between probes of a contended line.
    // Without it, a spinning thread fills the ROB with loads of the
    // flag line, and every one of them that straddles the releasing
    // store is (correctly) logged as reordered — real spin-wait
    // implementations back off for exactly this class of reason.
    const std::string loop = uniq("backoff");
    a_.li(counter, static_cast<std::int64_t>(kBackoffIterations));
    a_.label(loop);
    a_.addi(counter, counter, -1);
    a_.bne(counter, 0, loop);
}

void
KernelBuilder::lockAcquire(isa::Reg base_reg, std::int64_t off)
{
    const std::string retry = uniq("lock_retry");
    const std::string spin = uniq("lock_spin");
    const std::string got = uniq("lock_got");
    a_.label(retry);
    a_.xchg(rScratch4, rOne, base_reg, off);
    a_.beq(rScratch4, 0, got);
    a_.label(spin);
    emitBackoff(rScratch3);
    a_.ld(rScratch4, base_reg, off);
    a_.bne(rScratch4, 0, spin);
    a_.jmp(retry);
    a_.label(got);
    a_.fence(); // acquire
}

void
KernelBuilder::lockRelease(isa::Reg base_reg, std::int64_t off)
{
    a_.fence(); // release
    a_.st(0, base_reg, off);
}

void
KernelBuilder::pause()
{
    emitBackoff(rScratch0);
}

sim::Addr
KernelBuilder::allocTicketLock(const std::string &region)
{
    // Word 0: next ticket; word at +32: now-serving (separate lines so
    // ticket fetch-adds do not invalidate the spinners).
    return alloc(region, 8);
}

void
KernelBuilder::ticketAcquire(isa::Reg base_reg)
{
    const std::string spin = uniq("ticket_spin");
    const std::string got = uniq("ticket_got");
    a_.fadd(rScratch2, rOne, base_reg, 0); // my ticket
    a_.label(spin);
    a_.ld(rScratch4, base_reg, 32); // now serving
    a_.beq(rScratch4, rScratch2, got);
    emitBackoff(rScratch3);
    a_.jmp(spin);
    a_.label(got);
    a_.fence(); // acquire
}

void
KernelBuilder::ticketRelease(isa::Reg base_reg)
{
    a_.fence(); // release
    // Only the holder writes `serving`: a plain increment suffices.
    a_.ld(rScratch4, base_reg, 32);
    a_.addi(rScratch4, rScratch4, 1);
    a_.st(rScratch4, base_reg, 32);
}

void
KernelBuilder::barrier()
{
    const std::string spin = uniq("bar_spin");
    const std::string last = uniq("bar_last");
    const std::string done = uniq("bar_done");

    // My private sense slot: senseBase_ + tid * lineBytes.
    a_.fence();
    a_.slli(rScratch2, isa::kRegThreadId, 5); // tid * 32
    a_.li(rScratch3, static_cast<std::int64_t>(senseBase_));
    a_.add(rScratch2, rScratch2, rScratch3);
    a_.ld(rScratch3, rScratch2, 0);
    a_.xori(rScratch3, rScratch3, 1); // flipped local sense
    a_.st(rScratch3, rScratch2, 0);

    a_.li(rScratch2, static_cast<std::int64_t>(barrierBase_));
    a_.fadd(rScratch4, rOne, rScratch2, 0); // old arrival count
    a_.addi(rScratch4, rScratch4, 1);
    a_.beq(rScratch4, isa::kRegNumThreads, last);

    a_.label(spin);
    emitBackoff(rScratch1);
    a_.ld(rScratch4, rScratch2, 32); // global sense
    a_.bne(rScratch4, rScratch3, spin);
    a_.jmp(done);

    a_.label(last);
    a_.st(0, rScratch2, 0); // reset count for reuse
    a_.fence();             // count reset visible before the release
    a_.st(rScratch3, rScratch2, 32);

    a_.label(done);
    a_.fence(); // acquire side
}

Workload
KernelBuilder::finish()
{
    Workload w;
    w.name = name_;
    w.numThreads = params_.numThreads;
    w.program = a_.assemble();
    w.regions = regions_;
    return w;
}

} // namespace rr::workloads
