/**
 * @file
 * raytrace kernel: a fetch-add tile work queue over a read-mostly scene.
 * Each tile chases pointers through the shared scene array (indices
 * stored in the data, like BSP-tree walks in SPLASH-2 RAYTRACE), writes
 * its pixel results to the shared framebuffer, and occasionally takes a
 * global statistics lock.
 */

#include "workloads/kernels.hh"

#include "sim/rng.hh"

namespace rr::workloads
{

Workload
buildRaytrace(const WorkloadParams &p)
{
    KernelBuilder k("raytrace", p);
    isa::Assembler &a = k.a();

    const std::uint64_t T = p.numThreads;
    const std::uint64_t scene_words = 256;
    const std::uint64_t tiles = T * 8 * p.scale;
    const std::uint64_t rays_per_tile = 20;
    const std::uint64_t chase_len = 8;

    const sim::Addr ticket = k.alloc("ticket", 1);
    const sim::Addr scene = k.alloc("scene", scene_words);
    const sim::Addr fb = k.alloc("fb", tiles);
    const sim::Addr statlock = k.alloc("statlock", 4);
    const sim::Addr stat = k.alloc("stat", 1);

    // Scene entries embed the next index in their low bits.
    sim::Rng rng(p.seed ^ 0x70);
    for (std::uint64_t i = 0; i < scene_words; ++i)
        k.initWord(scene + i * 8, rng.next());

    const isa::Reg rTile = 3, rRay = 4, rIdx = 5, rVal = 6, rAcc = 7,
                   rTmp = 8, rTicket = 9, rScene = 10, rFb = 11,
                   rLock = 12, rChase = 13;

    k.emitPreamble();
    k.loadImm(rTicket, ticket);
    k.loadImm(rScene, scene);
    k.loadImm(rFb, fb);
    k.loadImm(rLock, statlock);

    a.label("grab");
    a.fadd(rTile, rOne, rTicket, 0);
    k.loadImm(rTmp, tiles);
    a.bge(rTile, rTmp, "done");

    a.li(rAcc, 0);
    a.li(rRay, 0);
    a.label("ray");
    // Start index depends on tile and ray.
    a.slli(rIdx, rTile, 3);
    a.add(rIdx, rIdx, rRay);
    a.andi(rIdx, rIdx, static_cast<std::int64_t>(scene_words - 1));
    a.li(rChase, 0);
    a.label("chase");
    a.slli(rTmp, rIdx, 3);
    a.add(rTmp, rTmp, rScene);
    a.ld(rVal, rTmp, 0);
    a.add(rAcc, rAcc, rVal);
    a.andi(rIdx, rVal, static_cast<std::int64_t>(scene_words - 1));
    a.addi(rChase, rChase, 1);
    k.loadImm(rTmp, chase_len);
    a.blt(rChase, rTmp, "chase");
    a.addi(rRay, rRay, 1);
    k.loadImm(rTmp, rays_per_tile);
    a.blt(rRay, rTmp, "ray");

    // Write this tile's pixel.
    a.slli(rTmp, rTile, 3);
    a.add(rTmp, rTmp, rFb);
    a.st(rAcc, rTmp, 0);

    // Every 8th tile updates the global ray counter under a lock.
    a.andi(rTmp, rTile, 7);
    a.bne(rTmp, 0, "no_stat");
    k.lockAcquire(rLock);
    k.loadImm(rTmp, stat);
    a.ld(rVal, rTmp, 0);
    a.addi(rVal, rVal, static_cast<std::int64_t>(rays_per_tile));
    a.st(rVal, rTmp, 0);
    k.lockRelease(rLock);
    a.label("no_stat");

    a.jmp("grab");

    a.label("done");
    k.barrier();
    a.halt();
    return k.finish();
}

} // namespace rr::workloads
