/**
 * @file
 * fmm kernel: tree upward/downward passes. Threads own leaf ranges of a
 * binary tree stored as a flat array; the upward pass accumulates child
 * values into parents under per-node locks (interior nodes near the root
 * are shared by many threads), the downward pass propagates parent
 * values back to the leaves — the multipole passes of SPLASH-2 FMM —
 * with a barrier per level.
 */

#include "workloads/kernels.hh"

#include "sim/rng.hh"

namespace rr::workloads
{

Workload
buildFmm(const WorkloadParams &p)
{
    KernelBuilder k("fmm", p);
    isa::Assembler &a = k.a();

    const std::uint64_t T = p.numThreads;
    const std::uint64_t leaves_per_thread = 8;
    const std::uint64_t leaves = T * leaves_per_thread; // power of two
    const std::uint64_t nodes = 2 * leaves;             // heap layout
    const std::uint64_t passes = 3 * p.scale;

    // Heap-indexed tree: node i has children 2i, 2i+1; leaves occupy
    // [leaves, 2*leaves). One lock per node, line-strided.
    const sim::Addr tree = k.alloc("tree", nodes * 4); // line-padded nodes
    const sim::Addr locks = k.alloc("locks", nodes * 4);

    sim::Rng rng(p.seed ^ 0x80);
    for (std::uint64_t i = leaves; i < nodes; ++i)
        k.initWord(tree + i * 32, rng.next() & 0xffff);

    const isa::Reg rPass = 3, rI = 4, rNode = 5, rParent = 6, rVal = 7,
                   rTmp = 8, rTree = 9, rLocks = 10, rLo = 11, rHi = 12,
                   rRep = 13, rAcc = 14;

    k.emitPreamble();
    k.loadImm(rTree, tree);
    k.loadImm(rLocks, locks);
    k.loadImm(rTmp, leaves_per_thread);
    a.mul(rLo, isa::kRegThreadId, rTmp);
    k.loadImm(rVal, leaves);
    a.add(rLo, rLo, rVal); // first owned leaf index
    a.add(rHi, rLo, rTmp);

    a.li(rPass, 0);
    a.label("pass");

    // --- Upward: each owned leaf climbs to the root. Ancestors inside
    // the thread's private subtree are updated with plain accesses;
    // only the top levels shared between threads take the node lock
    // (as SPLASH-2 FMM locks only shared tree nodes).
    a.add(rI, rLo, 0);
    a.label("up_leaf");
    a.slli(rTmp, rI, 5);
    a.add(rTmp, rTmp, rTree);
    a.ld(rAcc, rTmp, 0); // leaf value
    a.add(rNode, rI, 0);
    a.label("climb");
    a.srli(rParent, rNode, 1);
    a.beq(rParent, 0, "climb_done");
    // Multipole-translation stand-in between levels.
    a.li(rRep, 0);
    a.label("up_mix");
    a.slli(rTmp, rAcc, 3);
    a.add(rAcc, rAcc, rTmp);
    a.srli(rTmp, rAcc, 11);
    a.xor_(rAcc, rAcc, rTmp);
    a.addi(rRep, rRep, 1);
    k.loadImm(rTmp, p.intensity);
    a.blt(rRep, rTmp, "up_mix");
    a.andi(rAcc, rAcc, 0xffff);
    // Stop at the thread's subtree root (index in [T, 2T)); the levels
    // above it are shared between threads and are updated once per
    // pass below, under node locks.
    k.loadImm(rTmp, T);
    a.blt(rParent, rTmp, "climb_done");
    a.slli(rTmp, rParent, 5);
    a.add(rTmp, rTmp, rTree);
    a.ld(rVal, rTmp, 0);
    a.add(rVal, rVal, rAcc);
    a.st(rVal, rTmp, 0);
    a.add(rNode, rParent, 0);
    a.jmp("climb");
    a.label("climb_done");
    a.addi(rI, rI, 1);
    a.blt(rI, rHi, "up_leaf");

    // Propagate my subtree root into the shared top of the tree, one
    // locked update per level (the SPLASH-2 FMM pattern: only shared
    // nodes are lock-protected).
    k.loadImm(rTmp, T);
    a.add(rNode, rTmp, isa::kRegThreadId); // my subtree root index
    a.slli(rTmp, rNode, 5);
    a.add(rTmp, rTmp, rTree);
    a.ld(rAcc, rTmp, 0);
    a.label("top_climb");
    a.srli(rParent, rNode, 1);
    a.beq(rParent, 0, "top_done");
    a.slli(rTmp, rParent, 5);
    a.add(rTmp, rTmp, rLocks);
    k.lockAcquire(rTmp);
    a.slli(rTmp, rParent, 5);
    a.add(rTmp, rTmp, rTree);
    a.ld(rVal, rTmp, 0);
    a.add(rVal, rVal, rAcc);
    a.st(rVal, rTmp, 0);
    a.slli(rTmp, rParent, 5);
    a.add(rTmp, rTmp, rLocks);
    k.lockRelease(rTmp);
    a.add(rNode, rParent, 0);
    a.jmp("top_climb");
    a.label("top_done");

    k.barrier();

    // --- Downward: each owned leaf folds its ancestor chain back in
    // (shared reads of interior nodes).
    a.add(rI, rLo, 0);
    a.label("down_leaf");
    a.li(rAcc, 0);
    a.srli(rNode, rI, 1);
    a.label("descend");
    a.beq(rNode, 0, "descend_done");
    a.slli(rTmp, rNode, 5);
    a.add(rTmp, rTmp, rTree);
    a.ld(rVal, rTmp, 0);
    a.add(rAcc, rAcc, rVal);
    a.srli(rNode, rNode, 1);
    a.jmp("descend");
    a.label("descend_done");
    a.slli(rTmp, rI, 5);
    a.add(rTmp, rTmp, rTree);
    a.ld(rVal, rTmp, 0);
    a.xor_(rVal, rVal, rAcc);
    a.andi(rVal, rVal, 0xffffff);
    a.st(rVal, rTmp, 0);
    a.addi(rI, rI, 1);
    a.blt(rI, rHi, "down_leaf");

    k.barrier();

    a.addi(rPass, rPass, 1);
    k.loadImm(rTmp, passes);
    a.blt(rPass, rTmp, "pass");

    a.halt();
    return k.finish();
}

} // namespace rr::workloads
