#include "workloads/kernels.hh"

#include "sim/logging.hh"

namespace rr::workloads
{

const std::vector<std::string> &
kernelNames()
{
    static const std::vector<std::string> names = {
        "fft",      "lu",        "radix",    "ocean",    "barnes",
        "cholesky", "water-nsq", "water-sp", "raytrace", "fmm",
    };
    return names;
}

Workload
buildKernel(const std::string &name, const WorkloadParams &p)
{
    if (name == "fft")
        return buildFft(p);
    if (name == "lu")
        return buildLu(p);
    if (name == "radix")
        return buildRadix(p);
    if (name == "ocean")
        return buildOcean(p);
    if (name == "barnes")
        return buildBarnes(p);
    if (name == "cholesky")
        return buildCholesky(p);
    if (name == "water-nsq")
        return buildWaterNsq(p);
    if (name == "water-sp")
        return buildWaterSp(p);
    if (name == "raytrace")
        return buildRaytrace(p);
    if (name == "fmm")
        return buildFmm(p);
    sim::fatal("unknown kernel '%s'", name.c_str());
}

} // namespace rr::workloads
