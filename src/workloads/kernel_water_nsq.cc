/**
 * @file
 * water-nsq kernel: pairwise molecule interactions. A thread owns a
 * stripe of molecules; for each owned molecule it interacts with a
 * window of following molecules, accumulating forces into both sides
 * under per-molecule locks — the fine-grained locking that dominates
 * SPLASH-2 WATER-NSQUARED — with a barrier between time steps.
 */

#include "workloads/kernels.hh"

#include "sim/rng.hh"

namespace rr::workloads
{

Workload
buildWaterNsq(const WorkloadParams &p)
{
    KernelBuilder k("water-nsq", p);
    isa::Assembler &a = k.a();

    const std::uint64_t T = p.numThreads;
    const std::uint64_t mols = T * 24 * p.scale;
    const std::uint64_t window = 4;
    const std::uint64_t steps = 2;

    // Molecule: line of 4 words (position, force, ...); lock per
    // molecule, line-strided.
    const sim::Addr mol = k.alloc("mol", mols * 4);
    const sim::Addr locks = k.alloc("locks", mols * 4);

    sim::Rng rng(p.seed ^ 0x50);
    for (std::uint64_t i = 0; i < mols; ++i)
        k.initWord(mol + i * 32, rng.next() & 0xffff);

    const isa::Reg rStep = 3, rI = 4, rJ = 5, rPi = 6, rPj = 7, rD = 8,
                   rTmp = 9, rMolB = 10, rLockB = 11, rVal = 12,
                   rEnd = 13, rLo = 14, rNm = 15, rRep = 16, rHi = 17;

    k.emitPreamble();
    k.loadImm(rMolB, mol);
    k.loadImm(rLockB, locks);
    k.loadImm(rNm, mols);
    // Contiguous molecule block [tid*mpt, (tid+1)*mpt): contention then
    // only occurs near block boundaries, as in the real partitioning.
    k.loadImm(rTmp, mols / T);
    a.mul(rLo, isa::kRegThreadId, rTmp);
    a.add(rHi, rLo, rTmp);

    a.li(rStep, 0);
    a.label("step");

    a.add(rI, rLo, 0);
    a.label("i_loop");
    a.bge(rI, rHi, "i_done");

    // for (j = i+1; j < min(i+1+window, mols); ++j)
    a.addi(rJ, rI, 1);
    a.addi(rEnd, rI, 1 + static_cast<std::int64_t>(window));
    a.blt(rEnd, rNm, "j_loop");
    a.add(rEnd, rNm, 0);
    a.label("j_loop");
    a.bge(rJ, rEnd, "j_done");

    // d = pos_i ^ pos_j (stand-in force term).
    a.slli(rPi, rI, 5);
    a.add(rPi, rPi, rMolB);
    a.slli(rPj, rJ, 5);
    a.add(rPj, rPj, rMolB);
    a.ld(rD, rPi, 0);
    a.ld(rTmp, rPj, 0);
    a.xor_(rD, rD, rTmp);
    // Potential-evaluation stand-in: `intensity` rounds of mixing
    // (registers only — the real code does ~100s of flops per pair).
    a.li(rRep, 0);
    a.label("mix");
    a.slli(rTmp, rD, 2);
    a.add(rD, rD, rTmp);
    a.srli(rTmp, rD, 7);
    a.xor_(rD, rD, rTmp);
    a.addi(rRep, rRep, 1);
    k.loadImm(rTmp, p.intensity);
    a.blt(rRep, rTmp, "mix");
    a.andi(rD, rD, 0xff);

    // lock(i); force_i += d; unlock(i)
    a.slli(rTmp, rI, 5);
    a.add(rTmp, rTmp, rLockB);
    k.lockAcquire(rTmp);
    a.ld(rVal, rPi, 8);
    a.add(rVal, rVal, rD);
    a.st(rVal, rPi, 8);
    k.lockRelease(rTmp);

    // lock(j); force_j -= d; unlock(j)
    a.slli(rTmp, rJ, 5);
    a.add(rTmp, rTmp, rLockB);
    k.lockAcquire(rTmp);
    a.ld(rVal, rPj, 8);
    a.sub(rVal, rVal, rD);
    a.st(rVal, rPj, 8);
    k.lockRelease(rTmp);

    a.addi(rJ, rJ, 1);
    a.jmp("j_loop");
    a.label("j_done");
    a.addi(rI, rI, 1);
    a.jmp("i_loop");
    a.label("i_done");

    k.barrier();

    // Advance positions with the accumulated force (own block).
    a.add(rI, rLo, 0);
    a.label("adv_loop");
    a.bge(rI, rHi, "adv_done");
    a.slli(rPi, rI, 5);
    a.add(rPi, rPi, rMolB);
    a.ld(rVal, rPi, 0);
    a.ld(rTmp, rPi, 8);
    a.add(rVal, rVal, rTmp);
    a.st(rVal, rPi, 0);
    a.st(0, rPi, 8); // reset force
    a.addi(rI, rI, 1);
    a.jmp("adv_loop");
    a.label("adv_done");

    k.barrier();

    a.addi(rStep, rStep, 1);
    k.loadImm(rTmp, steps);
    a.blt(rStep, rTmp, "step");

    a.halt();
    return k.finish();
}

} // namespace rr::workloads
