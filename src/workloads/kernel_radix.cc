/**
 * @file
 * radix kernel: one digit pass of a parallel radix sort. Threads build
 * private histograms of their keys, merge them into a global histogram
 * under per-bucket locks, thread 0 computes the prefix sums, every
 * thread then ranks its buckets (prefix + earlier threads' counts), and
 * the scatter phase permutes keys into the output array with plain
 * stores — the scattered remote writes that dominate SPLASH-2 RADIX.
 */

#include "workloads/kernels.hh"

#include "sim/rng.hh"

namespace rr::workloads
{

Workload
buildRadix(const WorkloadParams &p)
{
    KernelBuilder k("radix", p);
    isa::Assembler &a = k.a();

    const std::uint64_t T = p.numThreads;
    const std::uint64_t buckets = 16;
    const std::uint64_t keys_per_thread = 384 * p.scale;
    const std::uint64_t total_keys = T * keys_per_thread;

    const sim::Addr keys = k.alloc("keys", total_keys);
    const sim::Addr out = k.alloc("out", total_keys);
    const sim::Addr ghist = k.alloc("ghist", buckets);
    // One lock per bucket, each on its own line (4-word stride).
    const sim::Addr locks = k.alloc("locks", buckets * 4);
    const sim::Addr prefix = k.alloc("prefix", buckets);
    const sim::Addr lhist = k.alloc("lhist", T * buckets);
    // Private per-thread scatter cursors (line-separated per thread).
    const sim::Addr cursors = k.alloc("cursors", T * buckets);

    sim::Rng rng(p.seed ^ 0x20);
    for (std::uint64_t i = 0; i < total_keys; ++i)
        k.initWord(keys + i * 8, rng.next() & 0xffff);

    const isa::Reg rI = 3, rKey = 4, rB = 5, rPtr = 6, rVal = 7, rTmp = 8,
                   rMyKeys = 9, rMyHist = 10, rEnd = 11, rLockB = 12,
                   rGh = 13, rCur = 14, rOut = 15, rPos = 16;

    k.emitPreamble();
    // My slice of the key array and my private histogram.
    k.loadImm(rTmp, keys_per_thread * 8);
    a.mul(rMyKeys, isa::kRegThreadId, rTmp);
    k.loadImm(rTmp, keys);
    a.add(rMyKeys, rMyKeys, rTmp);
    k.loadImm(rTmp, buckets * 8);
    a.mul(rMyHist, isa::kRegThreadId, rTmp);
    k.loadImm(rTmp, lhist);
    a.add(rMyHist, rMyHist, rTmp);
    k.loadImm(rGh, ghist);
    k.loadImm(rLockB, locks);
    k.loadImm(rCur, cursors);
    k.loadImm(rOut, out);

    // --- Phase 1: private histogram ---
    a.li(rI, 0);
    a.label("hist_loop");
    a.slli(rTmp, rI, 3);
    a.add(rTmp, rTmp, rMyKeys);
    a.ld(rKey, rTmp, 0);
    a.andi(rB, rKey, static_cast<std::int64_t>(buckets - 1));
    a.slli(rB, rB, 3);
    a.add(rPtr, rB, rMyHist);
    a.ld(rVal, rPtr, 0);
    a.addi(rVal, rVal, 1);
    a.st(rVal, rPtr, 0);
    a.addi(rI, rI, 1);
    k.loadImm(rTmp, keys_per_thread);
    a.blt(rI, rTmp, "hist_loop");

    // --- Phase 2: merge under per-bucket locks ---
    a.li(rB, 0);
    a.label("merge_loop");
    a.slli(rPtr, rB, 5); // lock stride: 4 words = 32 bytes
    a.add(rPtr, rPtr, rLockB);
    k.lockAcquire(rPtr);
    a.slli(rTmp, rB, 3);
    a.add(rVal, rTmp, rMyHist);
    a.ld(rVal, rVal, 0);
    a.add(rTmp, rTmp, rGh);
    a.ld(rKey, rTmp, 0);
    a.add(rKey, rKey, rVal);
    a.st(rKey, rTmp, 0);
    k.lockRelease(rPtr);
    a.addi(rB, rB, 1);
    k.loadImm(rTmp, buckets);
    a.blt(rB, rTmp, "merge_loop");

    k.barrier();

    // --- Phase 3: thread 0 computes the global prefix sums ---
    a.bne(isa::kRegThreadId, 0, "prefix_done");
    a.li(rVal, 0); // running sum
    a.li(rB, 0);
    a.label("prefix_loop");
    a.slli(rTmp, rB, 3);
    a.add(rTmp, rTmp, rGh);
    a.ld(rKey, rTmp, 0);
    k.loadImm(rTmp, prefix);
    a.slli(rPos, rB, 3);
    a.add(rTmp, rTmp, rPos);
    a.st(rVal, rTmp, 0); // prefix[b] = sum so far
    a.add(rVal, rVal, rKey);
    a.addi(rB, rB, 1);
    k.loadImm(rTmp, buckets);
    a.blt(rB, rTmp, "prefix_loop");
    a.label("prefix_done");

    k.barrier();

    // --- Phase 4: rank my buckets (as in SPLASH-2 RADIX: each thread
    // derives private cursors from the prefix sums plus the earlier
    // threads' histogram counts, so the scatter needs no atomics) ---
    // myCursor base = cursors + tid * buckets * 8
    k.loadImm(rTmp, buckets * 8);
    a.mul(rEnd, isa::kRegThreadId, rTmp);
    k.loadImm(rTmp, cursors);
    a.add(rEnd, rEnd, rTmp); // rEnd = my cursor array
    a.li(rB, 0);
    a.label("rank_b");
    k.loadImm(rTmp, prefix);
    a.slli(rPos, rB, 3);
    a.add(rTmp, rTmp, rPos);
    a.ld(rVal, rTmp, 0); // base = prefix[b]
    // add lhist[t'][b] for t' < tid
    a.li(rI, 0);
    a.label("rank_t");
    a.bge(rI, isa::kRegThreadId, "rank_t_done");
    k.loadImm(rTmp, buckets * 8);
    a.mul(rKey, rI, rTmp);
    a.add(rKey, rKey, rPos);
    k.loadImm(rTmp, lhist);
    a.add(rKey, rKey, rTmp);
    a.ld(rKey, rKey, 0);
    a.add(rVal, rVal, rKey);
    a.addi(rI, rI, 1);
    a.jmp("rank_t");
    a.label("rank_t_done");
    a.add(rTmp, rPos, rEnd);
    a.st(rVal, rTmp, 0); // myCursor[b] = base
    a.addi(rB, rB, 1);
    k.loadImm(rTmp, buckets);
    a.blt(rB, rTmp, "rank_b");

    // --- Phase 5: scatter with private cursors (plain stores) ---
    a.li(rI, 0);
    a.label("scatter_loop");
    a.slli(rTmp, rI, 3);
    a.add(rTmp, rTmp, rMyKeys);
    a.ld(rKey, rTmp, 0);
    a.andi(rB, rKey, static_cast<std::int64_t>(buckets - 1));
    a.slli(rB, rB, 3);
    a.add(rPtr, rB, rEnd);
    a.ld(rPos, rPtr, 0); // pos = myCursor[b]
    a.addi(rVal, rPos, 1);
    a.st(rVal, rPtr, 0); // myCursor[b]++
    a.slli(rPos, rPos, 3);
    a.add(rPos, rPos, rOut);
    a.st(rKey, rPos, 0);
    a.addi(rI, rI, 1);
    k.loadImm(rTmp, keys_per_thread);
    a.blt(rI, rTmp, "scatter_loop");

    k.barrier();
    a.halt();
    return k.finish();
}

} // namespace rr::workloads
