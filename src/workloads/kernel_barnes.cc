/**
 * @file
 * barnes kernel: a lock-protected shared-structure build followed by a
 * pointer-chasing traversal, mimicking SPLASH-2 BARNES' tree build and
 * force walk. Bodies are inserted at the head of hash buckets (per-
 * bucket locks); the traversal walks every bucket's linked list via
 * addresses stored in memory.
 */

#include "workloads/kernels.hh"

#include "sim/rng.hh"

namespace rr::workloads
{

Workload
buildBarnes(const WorkloadParams &p)
{
    KernelBuilder k("barnes", p);
    isa::Assembler &a = k.a();

    const std::uint64_t T = p.numThreads;
    const std::uint64_t buckets = 32;
    const std::uint64_t bodies_per_thread = 48 * p.scale;

    // Bucket heads (0 = empty), per-bucket locks, per-thread node pools
    // (node = 2 words: value, next) and per-thread results.
    const sim::Addr heads = k.alloc("heads", buckets);
    const sim::Addr locks = k.alloc("locks", buckets * 4);
    const sim::Addr pool = k.alloc("pool", T * bodies_per_thread * 2);
    const sim::Addr result = k.alloc("result", T * 4);

    const isa::Reg rI = 3, rB = 4, rNode = 5, rPtr = 6, rVal = 7,
                   rTmp = 8, rMyPool = 9, rHeads = 10, rLocks = 11,
                   rAcc = 12, rP = 13, rRes = 14, rRep = 15;

    k.emitPreamble();
    k.loadImm(rTmp, bodies_per_thread * 16);
    a.mul(rMyPool, isa::kRegThreadId, rTmp);
    k.loadImm(rTmp, pool);
    a.add(rMyPool, rMyPool, rTmp);
    k.loadImm(rHeads, heads);
    k.loadImm(rLocks, locks);

    // --- Build: insert my bodies at bucket heads under per-bucket locks
    a.li(rI, 0);
    a.label("insert");
    // node address = myPool + i*16
    a.slli(rNode, rI, 4);
    a.add(rNode, rNode, rMyPool);
    // value = f(tid, i)
    a.slli(rVal, isa::kRegThreadId, 16);
    a.add(rVal, rVal, rI);
    a.st(rVal, rNode, 0);
    // bucket = (i * 7 + tid) & (buckets-1)
    a.slli(rB, rI, 3);
    a.sub(rB, rB, rI); // i*7
    a.add(rB, rB, isa::kRegThreadId);
    a.andi(rB, rB, static_cast<std::int64_t>(buckets - 1));
    a.slli(rPtr, rB, 5);
    a.add(rPtr, rPtr, rLocks);
    k.lockAcquire(rPtr);
    a.slli(rTmp, rB, 3);
    a.add(rTmp, rTmp, rHeads);
    a.ld(rVal, rTmp, 0);   // old head
    a.st(rVal, rNode, 8);  // node.next = old head
    a.st(rNode, rTmp, 0);  // head = node
    k.lockRelease(rPtr);
    a.addi(rI, rI, 1);
    k.loadImm(rTmp, bodies_per_thread);
    a.blt(rI, rTmp, "insert");

    k.barrier();

    // --- Traverse: pointer-chase every bucket list, accumulate ---
    a.li(rAcc, 0);
    a.li(rB, 0);
    a.label("walk_bucket");
    a.slli(rTmp, rB, 3);
    a.add(rTmp, rTmp, rHeads);
    a.ld(rP, rTmp, 0);
    a.label("walk_node");
    a.beq(rP, 0, "bucket_done");
    a.ld(rVal, rP, 0); // node value
    a.add(rAcc, rAcc, rVal);
    // Force-evaluation stand-in per visited body.
    a.li(rRep, 0);
    a.label("walk_mix");
    a.slli(rVal, rAcc, 1);
    a.add(rAcc, rAcc, rVal);
    a.srli(rVal, rAcc, 17);
    a.xor_(rAcc, rAcc, rVal);
    a.addi(rRep, rRep, 1);
    k.loadImm(rVal, p.intensity);
    a.blt(rRep, rVal, "walk_mix");
    a.ld(rP, rP, 8); // follow next pointer
    a.jmp("walk_node");
    a.label("bucket_done");
    a.addi(rB, rB, 1);
    k.loadImm(rTmp, buckets);
    a.blt(rB, rTmp, "walk_bucket");

    // Publish my traversal checksum.
    a.slli(rRes, isa::kRegThreadId, 5);
    k.loadImm(rTmp, result);
    a.add(rRes, rRes, rTmp);
    a.st(rAcc, rRes, 0);

    k.barrier();
    a.halt();
    return k.finish();
}

} // namespace rr::workloads
