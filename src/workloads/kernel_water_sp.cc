/**
 * @file
 * water-sp kernel: spatial-cell decomposition. Threads own contiguous
 * cell bands, read neighbouring cells (shared only at band boundaries)
 * and accumulate into boundary neighbours under the neighbour's cell
 * lock — SPLASH-2 WATER-SPATIAL's boundary-cell locking — with a
 * barrier per step.
 */

#include "workloads/kernels.hh"

#include "sim/rng.hh"

namespace rr::workloads
{

Workload
buildWaterSp(const WorkloadParams &p)
{
    KernelBuilder k("water-sp", p);
    isa::Assembler &a = k.a();

    const std::uint64_t T = p.numThreads;
    const std::uint64_t cells_per_thread = 24;
    const std::uint64_t cells = T * cells_per_thread;
    const std::uint64_t steps = 4 * p.scale;

    // Cell: 4 words (value, accumulator, ...); lock per cell.
    const sim::Addr cell = k.alloc("cell", cells * 4);
    const sim::Addr locks = k.alloc("locks", cells * 4);

    sim::Rng rng(p.seed ^ 0x60);
    for (std::uint64_t i = 0; i < cells; ++i)
        k.initWord(cell + i * 32, rng.next() & 0xffff);

    const isa::Reg rStep = 3, rC = 4, rLo = 5, rHi = 6, rPtr = 7,
                   rVal = 8, rTmp = 9, rCellB = 10, rLockB = 11,
                   rNb = 12, rAcc = 13, rNc = 14, rRep = 15, rHim1 = 16;

    k.emitPreamble();
    k.loadImm(rCellB, cell);
    k.loadImm(rLockB, locks);
    k.loadImm(rNc, cells);
    k.loadImm(rTmp, cells_per_thread);
    a.mul(rLo, isa::kRegThreadId, rTmp);
    a.add(rHi, rLo, rTmp);

    a.li(rStep, 0);
    a.label("step");

    a.add(rC, rLo, 0);
    a.label("cell_loop");

    // Read my cell and both neighbours (wrapping).
    a.slli(rPtr, rC, 5);
    a.add(rPtr, rPtr, rCellB);
    a.ld(rAcc, rPtr, 0);
    // left neighbour (c == 0 wraps to cells-1)
    a.addi(rNb, rC, -1);
    a.bge(rNb, 0, "left_ok");
    k.loadImm(rNb, cells - 1);
    a.label("left_ok");
    a.slli(rTmp, rNb, 5);
    a.add(rTmp, rTmp, rCellB);
    a.ld(rVal, rTmp, 0);
    a.add(rAcc, rAcc, rVal);
    // right neighbour (cells-1 wraps to 0)
    a.addi(rNb, rC, 1);
    a.blt(rNb, rNc, "right_ok");
    a.li(rNb, 0);
    a.label("right_ok");
    a.slli(rTmp, rNb, 5);
    a.add(rTmp, rTmp, rCellB);
    a.ld(rVal, rTmp, 0);
    a.add(rAcc, rAcc, rVal);
    a.srli(rAcc, rAcc, 1);

    // Intra-cell computation stand-in (`intensity` mixing rounds).
    a.li(rRep, 0);
    a.label("mix");
    a.slli(rTmp, rAcc, 1);
    a.add(rAcc, rAcc, rTmp);
    a.srli(rTmp, rAcc, 9);
    a.xor_(rAcc, rAcc, rTmp);
    a.addi(rRep, rRep, 1);
    k.loadImm(rTmp, p.intensity);
    a.blt(rRep, rTmp, "mix");
    a.andi(rAcc, rAcc, 0xfffff);

    // Update my own cell value (no lock needed: I own it this phase).
    a.st(rAcc, rPtr, 0);

    // Only band-boundary cells spill into the neighbour's accumulator;
    // that crosses the ownership boundary, hence the cell lock.
    a.addi(rHim1, rHi, -1);
    a.bne(rC, rHim1, "no_spill");
    a.andi(rVal, rAcc, 0xf);
    a.slli(rTmp, rNb, 5);
    a.add(rTmp, rTmp, rLockB);
    k.lockAcquire(rTmp);
    a.slli(rTmp, rNb, 5);
    a.add(rTmp, rTmp, rCellB);
    a.ld(rAcc, rTmp, 8);
    a.add(rAcc, rAcc, rVal);
    a.st(rAcc, rTmp, 8);
    a.slli(rTmp, rNb, 5);
    a.add(rTmp, rTmp, rLockB);
    k.lockRelease(rTmp);
    a.label("no_spill");

    a.addi(rC, rC, 1);
    a.blt(rC, rHi, "cell_loop");

    k.barrier();

    a.addi(rStep, rStep, 1);
    k.loadImm(rTmp, steps);
    a.blt(rStep, rTmp, "step");

    a.halt();
    return k.finish();
}

} // namespace rr::workloads
