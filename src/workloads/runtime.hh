/**
 * @file
 * Workload-construction runtime: a KernelBuilder wrapping the assembler
 * with a memory-layout allocator, unique labels, and canned
 * synchronization idioms (test-and-test-and-set spin locks, a
 * sense-reversing barrier, fetch-add work tickets) built from the
 * micro-ISA's XCHG/FADD/FENCE primitives.
 *
 * Register conventions:
 *   r0  zero            r1  thread id        r2  number of threads
 *   r3..r23             kernel code (caller-owned)
 *   r24..r28            runtime helpers (clobbered by lock/barrier)
 *   r29                 constant 1 (set by emitPreamble)
 */

#ifndef RR_WORKLOADS_RUNTIME_HH
#define RR_WORKLOADS_RUNTIME_HH

#include <cstdint>
#include <map>
#include <string>

#include "isa/assembler.hh"
#include "isa/program.hh"
#include "sim/types.hh"

namespace rr::workloads
{

/** Registers reserved for runtime helper sequences. */
inline constexpr isa::Reg rScratch0 = 24;
inline constexpr isa::Reg rScratch1 = 25;
inline constexpr isa::Reg rScratch2 = 26;
inline constexpr isa::Reg rScratch3 = 27;
inline constexpr isa::Reg rScratch4 = 28;
/** Holds the constant 1 after emitPreamble(). */
inline constexpr isa::Reg rOne = 29;

/** A named, assembled workload. */
struct Workload
{
    std::string name;
    isa::Program program;
    std::uint32_t numThreads = 0;
    /** Named data regions (for examples, tests and result inspection). */
    std::map<std::string, sim::Addr> regions;
};

/** Build-time parameters shared by every kernel factory. */
struct WorkloadParams
{
    std::uint32_t numThreads = 8;
    /**
     * Problem-size multiplier. scale=1 is the bench default
     * (roughly 10^5 instructions per thread); tests use smaller values.
     */
    std::uint64_t scale = 1;
    /**
     * Local-compute repetitions between communication phases (models
     * the arithmetic intensity of the real applications; raising it
     * lowers coherence traffic per instruction).
     */
    std::uint64_t intensity = 16;
    std::uint64_t seed = 12345;
};

class KernelBuilder
{
  public:
    KernelBuilder(std::string name, const WorkloadParams &params);

    isa::Assembler &a() { return a_; }
    const WorkloadParams &params() const { return params_; }

    /** Fresh label derived from @p base. */
    std::string uniq(const std::string &base);

    /** @name Memory layout */
    ///@{
    /** Reserve a line-aligned region of @p words 8-byte words. */
    sim::Addr alloc(const std::string &region, std::uint64_t words);
    /** Address of a previously allocated region. */
    sim::Addr region(const std::string &region) const;
    /** Pre-set one word of the initial image. */
    void initWord(sim::Addr addr, std::uint64_t value);
    ///@}

    /** @name Code idioms */
    ///@{
    /** Emit the per-thread preamble (sets rOne). Call first. */
    void emitPreamble();

    /** Load a 64-bit address/constant into @p rd. */
    void loadImm(isa::Reg rd, std::uint64_t value);

    /** Delay iterations between probes of a contended flag line. */
    static constexpr std::uint64_t kBackoffIterations = 24;

    /**
     * Acquire the spin lock at @p base_reg + off (test-and-test-and-set
     * with XCHG, backoff between probes, acquire fence). Clobbers
     * rScratch3 and rScratch4.
     */
    void lockAcquire(isa::Reg base_reg, std::int64_t off = 0);

    /** Release fence + unlock store. */
    void lockRelease(isa::Reg base_reg, std::int64_t off = 0);

    /**
     * Register-only delay (kBackoffIterations loop). Use between
     * optimistic retries of contended resources (e.g. re-checking a
     * queue after finding it empty) — retrying a lock at full speed
     * can starve remote cores indefinitely. Clobbers rScratch0.
     */
    void pause();

    /**
     * @name Ticket lock (FIFO-fair)
     * Test-and-set locks can convoy: a core that releases and promptly
     * re-acquires wins every race against remote requesters (its
     * release store drains late, leaving only a few free cycles). The
     * ticket lock grants in fetch-add order and cannot starve anyone.
     */
    ///@{
    /** Allocate a ticket lock (ticket and serving words, own lines). */
    sim::Addr allocTicketLock(const std::string &region);
    /** Acquire; clobbers rScratch2..rScratch4. */
    void ticketAcquire(isa::Reg base_reg);
    /** Release; clobbers rScratch4. */
    void ticketRelease(isa::Reg base_reg);
    ///@}

    /**
     * Sense-reversing barrier across all threads (backoff while
     * spinning). Uses an internal count/sense region and one private
     * sense word per thread. Clobbers rScratch1..rScratch4.
     */
    void barrier();
    ///@}

    /** Assemble; every thread enters at pc 0. */
    Workload finish();

  private:
    void emitBackoff(isa::Reg counter);

    std::string name_;
    WorkloadParams params_;
    isa::Assembler a_;
    std::map<std::string, sim::Addr> regions_;
    sim::Addr cursor_;
    std::uint64_t labelCounter_ = 0;
    sim::Addr barrierBase_ = 0;
    sim::Addr senseBase_ = 0;
};

} // namespace rr::workloads

#endif // RR_WORKLOADS_RUNTIME_HH
