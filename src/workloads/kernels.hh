/**
 * @file
 * SPLASH-2-inspired kernel registry. Each kernel reproduces the sharing
 * and synchronization pattern of its namesake at laptop scale (see
 * DESIGN.md for the substitution argument):
 *
 *   fft        barrier-separated local compute + all-to-all transpose reads
 *   lu         pivot-block broadcast, blocked owner updates, barriers
 *   radix      private histograms, lock-merged global histogram,
 *              fetch-add scatter permutation
 *   ocean      nearest-neighbour stencil over banded grid, barrier sweeps
 *   barnes     lock-protected tree (hash-bucket) build + pointer-chasing
 *              traversal
 *   cholesky   self-scheduled task queue (fetch-add tickets) over blocks
 *   water-nsq  pairwise interactions with per-molecule locks
 *   water-sp   spatial cells, neighbour reads, boundary-cell locks
 *   raytrace   tile work queue, read-only scene pointer chasing,
 *              rare global-counter locks
 *   fmm        tree upward/downward passes with shared-parent locks
 */

#ifndef RR_WORKLOADS_KERNELS_HH
#define RR_WORKLOADS_KERNELS_HH

#include <string>
#include <vector>

#include "workloads/runtime.hh"

namespace rr::workloads
{

/** Names of all registered kernels, in canonical order. */
const std::vector<std::string> &kernelNames();

/** Build a kernel by name; fatal() on unknown names. */
Workload buildKernel(const std::string &name, const WorkloadParams &p);

Workload buildFft(const WorkloadParams &p);
Workload buildLu(const WorkloadParams &p);
Workload buildRadix(const WorkloadParams &p);
Workload buildOcean(const WorkloadParams &p);
Workload buildBarnes(const WorkloadParams &p);
Workload buildCholesky(const WorkloadParams &p);
Workload buildWaterNsq(const WorkloadParams &p);
Workload buildWaterSp(const WorkloadParams &p);
Workload buildRaytrace(const WorkloadParams &p);
Workload buildFmm(const WorkloadParams &p);

} // namespace rr::workloads

#endif // RR_WORKLOADS_KERNELS_HH
