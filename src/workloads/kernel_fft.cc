/**
 * @file
 * fft kernel: iterations of barrier-separated phases. Phase A updates
 * the thread's own row block in place (private-ish writes); phase B
 * reads the whole matrix in a transposed, strided pattern (all-to-all
 * communication, the signature SPLASH-2 FFT transpose) and folds the
 * result into the thread's own rows.
 */

#include "workloads/kernels.hh"

#include "sim/rng.hh"

namespace rr::workloads
{

Workload
buildFft(const WorkloadParams &p)
{
    KernelBuilder k("fft", p);
    isa::Assembler &a = k.a();

    const std::uint64_t T = p.numThreads;
    const std::uint64_t rows_per_thread = 4 * p.scale;
    const std::uint64_t N = T * rows_per_thread; // rows
    const std::uint64_t C = 16;                  // words per row
    const std::uint64_t iters = 4;

    const sim::Addr mat = k.alloc("mat", N * C);
    sim::Rng rng(p.seed);
    for (std::uint64_t i = 0; i < N * C; ++i)
        k.initWord(mat + i * 8, rng.next() & 0xffffff);

    // Registers.
    const isa::Reg rIter = 3, rRow = 4, rCol = 5, rRowPtr = 6, rVal = 7,
                   rAcc = 8, rK = 9, rTmp = 10, rMyLo = 11, rMyHi = 12,
                   rMatBase = 13, rN = 14, rRep = 15;

    k.emitPreamble();
    k.loadImm(rMatBase, mat);
    k.loadImm(rN, N);
    // My row range: [tid * rpt, (tid+1) * rpt).
    k.loadImm(rTmp, rows_per_thread);
    a.mul(rMyLo, isa::kRegThreadId, rTmp);
    a.add(rMyHi, rMyLo, rTmp);

    a.li(rIter, 0);
    a.label("iter_loop");

    // --- Phase A: butterfly-stage stand-in — `intensity` local passes
    // over my rows between transposes ---
    a.li(rRep, 0);
    a.label("a_rep");
    a.add(rRow, rMyLo, 0);
    a.label("a_row");
    // rRowPtr = mat + row * C * 8
    a.slli(rRowPtr, rRow, 7); // * 128 (C=16 words)
    a.add(rRowPtr, rRowPtr, rMatBase);
    a.li(rCol, 0);
    a.label("a_col");
    a.slli(rTmp, rCol, 3);
    a.add(rTmp, rTmp, rRowPtr);
    a.ld(rVal, rTmp, 0);
    a.slli(rAcc, rVal, 2);
    a.add(rVal, rVal, rAcc); // val *= 5
    a.add(rVal, rVal, rRow);
    a.add(rVal, rVal, rIter);
    a.st(rVal, rTmp, 0);
    a.addi(rCol, rCol, 1);
    k.loadImm(rTmp, C);
    a.blt(rCol, rTmp, "a_col");
    a.addi(rRow, rRow, 1);
    a.blt(rRow, rMyHi, "a_row");
    a.addi(rRep, rRep, 1);
    k.loadImm(rTmp, p.intensity);
    a.blt(rRep, rTmp, "a_rep");

    k.barrier();

    // --- Phase B: transpose-partition reads folded into my rows. Each
    // thread reads the residue class of rows (tid+1) mod T, which lies
    // almost entirely in other threads' row blocks (all-to-all
    // communication without rereading the whole matrix). ---
    a.add(rRow, rMyLo, 0);
    a.label("b_row");
    a.li(rAcc, 0);
    a.addi(rK, isa::kRegThreadId, 1);
    a.blt(rK, isa::kRegNumThreads, "b_k");
    a.li(rK, 0);
    a.label("b_k");
    // col = (row + k) & (C - 1); read mat[k][col]
    a.add(rCol, rRow, rK);
    a.andi(rCol, rCol, static_cast<std::int64_t>(C - 1));
    a.slli(rTmp, rK, 7);
    a.add(rTmp, rTmp, rMatBase);
    a.slli(rCol, rCol, 3);
    a.add(rTmp, rTmp, rCol);
    a.ld(rVal, rTmp, 0);
    a.add(rAcc, rAcc, rVal);
    a.add(rK, rK, isa::kRegNumThreads);
    a.blt(rK, rN, "b_k");
    // Fold into my row's word 0.
    a.slli(rRowPtr, rRow, 7);
    a.add(rRowPtr, rRowPtr, rMatBase);
    a.ld(rVal, rRowPtr, 0);
    a.xor_(rVal, rVal, rAcc);
    a.st(rVal, rRowPtr, 0);
    a.addi(rRow, rRow, 1);
    a.blt(rRow, rMyHi, "b_row");

    k.barrier();

    a.addi(rIter, rIter, 1);
    k.loadImm(rTmp, iters);
    a.blt(rIter, rTmp, "iter_loop");

    a.halt();
    return k.finish();
}

} // namespace rr::workloads
