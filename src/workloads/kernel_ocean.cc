/**
 * @file
 * ocean kernel: an in-place 4-point stencil over a banded grid. Threads
 * own contiguous row bands and read their neighbours' boundary rows —
 * SPLASH-2 OCEAN's nearest-neighbour communication — with a barrier per
 * sweep.
 */

#include "workloads/kernels.hh"

#include "sim/rng.hh"

namespace rr::workloads
{

Workload
buildOcean(const WorkloadParams &p)
{
    KernelBuilder k("ocean", p);
    isa::Assembler &a = k.a();

    const std::uint64_t T = p.numThreads;
    const std::uint64_t rows_per_thread = 8;
    const std::uint64_t R = T * rows_per_thread;
    const std::uint64_t C = 32; // words per row
    const std::uint64_t iters = 3 * p.scale;

    const sim::Addr grid = k.alloc("grid", R * C);
    sim::Rng rng(p.seed ^ 0x30);
    for (std::uint64_t i = 0; i < R * C; ++i)
        k.initWord(grid + i * 8, rng.next() & 0xfffff);

    const isa::Reg rIter = 3, rRow = 4, rCol = 5, rPtr = 6, rVal = 7,
                   rTmp = 8, rLo = 9, rHi = 10, rBase = 11, rAcc = 12,
                   rRm1 = 13, rRep = 14;

    k.emitPreamble();
    k.loadImm(rBase, grid);
    // My row band [tid*rpt, (tid+1)*rpt), clamped to interior [1, R-1).
    k.loadImm(rTmp, rows_per_thread);
    a.mul(rLo, isa::kRegThreadId, rTmp);
    a.add(rHi, rLo, rTmp);
    a.bne(rLo, 0, "lo_ok");
    a.li(rLo, 1);
    a.label("lo_ok");
    k.loadImm(rTmp, R - 1);
    a.blt(rHi, rTmp, "hi_ok");
    k.loadImm(rHi, R - 1);
    a.label("hi_ok");
    k.loadImm(rRm1, R - 1);

    a.li(rIter, 0);
    a.label("iter");

    a.add(rRow, rLo, 0);
    a.label("row");
    a.slli(rPtr, rRow, 8); // row * C * 8 (C=32)
    a.add(rPtr, rPtr, rBase);
    a.li(rCol, 1);
    a.label("col");
    a.slli(rTmp, rCol, 3);
    a.add(rTmp, rTmp, rPtr); // &grid[row][col]
    a.ld(rAcc, rTmp, -8);    // left
    a.ld(rVal, rTmp, 8);     // right
    a.add(rAcc, rAcc, rVal);
    a.ld(rVal, rTmp, -static_cast<std::int64_t>(C * 8)); // up
    a.add(rAcc, rAcc, rVal);
    a.ld(rVal, rTmp, static_cast<std::int64_t>(C * 8)); // down
    a.add(rAcc, rAcc, rVal);
    a.srli(rAcc, rAcc, 2);
    // Relaxation-computation stand-in (`intensity` mixing rounds).
    a.li(rRep, 0);
    a.label("mix");
    a.slli(rVal, rAcc, 2);
    a.add(rAcc, rAcc, rVal);
    a.srli(rVal, rAcc, 13);
    a.xor_(rAcc, rAcc, rVal);
    a.addi(rRep, rRep, 1);
    k.loadImm(rVal, p.intensity);
    a.blt(rRep, rVal, "mix");
    a.andi(rAcc, rAcc, 0xfffff);
    a.st(rAcc, rTmp, 0);
    a.addi(rCol, rCol, 1);
    k.loadImm(rTmp, C - 1);
    a.blt(rCol, rTmp, "col");
    a.addi(rRow, rRow, 1);
    a.blt(rRow, rHi, "row");

    k.barrier();

    a.addi(rIter, rIter, 1);
    k.loadImm(rTmp, iters);
    a.blt(rIter, rTmp, "iter");

    a.halt();
    return k.finish();
}

} // namespace rr::workloads
