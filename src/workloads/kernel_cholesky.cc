/**
 * @file
 * cholesky kernel: self-scheduled block updates. Threads pull task ids
 * from a shared fetch-add ticket counter and update the corresponding
 * block from a source block — the task-queue pattern of SPLASH-2
 * CHOLESKY (dependencies are approximated; the sharing pattern, not the
 * numerics, is what matters for the recorder).
 */

#include "workloads/kernels.hh"

#include "sim/rng.hh"

namespace rr::workloads
{

Workload
buildCholesky(const WorkloadParams &p)
{
    KernelBuilder k("cholesky", p);
    isa::Assembler &a = k.a();

    const std::uint64_t T = p.numThreads;
    const std::uint64_t B = 32; // words per block
    const std::uint64_t tasks = 10 * T * p.scale;
    const std::uint64_t blocks = tasks + 1;

    const sim::Addr ticket = k.alloc("ticket", 1);
    const sim::Addr blk = k.alloc("blocks", blocks * B);

    sim::Rng rng(p.seed ^ 0x40);
    for (std::uint64_t i = 0; i < blocks * B; ++i)
        k.initWord(blk + i * 8, rng.next() & 0xffffff);

    const isa::Reg rTask = 3, rSrc = 4, rDst = 5, rW = 6, rVal = 7,
                   rTmp = 8, rTicket = 9, rBase = 10, rSval = 11,
                   rRep = 12;

    k.emitPreamble();
    k.loadImm(rTicket, ticket);
    k.loadImm(rBase, blk);

    a.label("grab");
    a.fadd(rTask, rOne, rTicket, 0);
    k.loadImm(rTmp, tasks);
    a.bge(rTask, rTmp, "done");

    // dst = task + 1, src = task / 2 (earlier block).
    a.addi(rDst, rTask, 1);
    a.srli(rSrc, rTask, 1);
    a.slli(rDst, rDst, 8); // * B * 8
    a.add(rDst, rDst, rBase);
    a.slli(rSrc, rSrc, 8);
    a.add(rSrc, rSrc, rBase);

    a.li(rW, 0);
    a.label("update");
    a.slli(rTmp, rW, 3);
    a.add(rVal, rTmp, rSrc);
    a.ld(rSval, rVal, 0);
    a.add(rVal, rTmp, rDst);
    a.ld(rTmp, rVal, 0);
    a.slli(rSval, rSval, 1);
    a.add(rTmp, rTmp, rSval);
    a.add(rTmp, rTmp, rTask);
    // Factorization-computation stand-in per block word.
    a.li(rRep, 0);
    a.label("upd_mix");
    a.slli(rSval, rTmp, 2);
    a.add(rTmp, rTmp, rSval);
    a.srli(rSval, rTmp, 15);
    a.xor_(rTmp, rTmp, rSval);
    a.addi(rRep, rRep, 1);
    k.loadImm(rSval, p.intensity);
    a.blt(rRep, rSval, "upd_mix");
    a.andi(rTmp, rTmp, 0xffffff);
    a.st(rTmp, rVal, 0);
    a.addi(rW, rW, 1);
    k.loadImm(rTmp, B);
    a.blt(rW, rTmp, "update");
    a.jmp("grab");

    a.label("done");
    k.barrier();
    a.halt();
    return k.finish();
}

} // namespace rr::workloads
