/**
 * @file
 * lu kernel: blocked LU-style rounds. Each round, the owner of the
 * pivot block updates it; after a barrier every thread folds the pivot
 * block into the blocks it owns (one-to-all broadcast reads, the
 * dominant sharing pattern of SPLASH-2 LU), separated by barriers.
 */

#include "workloads/kernels.hh"

#include "sim/rng.hh"

namespace rr::workloads
{

Workload
buildLu(const WorkloadParams &p)
{
    KernelBuilder k("lu", p);
    isa::Assembler &a = k.a();

    const std::uint64_t T = p.numThreads;
    const std::uint64_t B = 32;          // words per block
    const std::uint64_t NB = 4 * T;      // number of blocks
    const std::uint64_t rounds = 3 * p.scale;

    const sim::Addr blocks = k.alloc("blocks", NB * B);
    sim::Rng rng(p.seed ^ 0x10);
    for (std::uint64_t i = 0; i < NB * B; ++i)
        k.initWord(blocks + i * 8, rng.next() & 0xffffff);

    const isa::Reg rRound = 3, rPivot = 4, rPtr = 5, rW = 6, rVal = 7,
                   rTmp = 8, rBlk = 9, rPivPtr = 10, rBase = 11, rNb = 12,
                   rT = 13, rPval = 14;

    k.emitPreamble();
    k.loadImm(rBase, blocks);
    k.loadImm(rNb, NB);
    k.loadImm(rT, T);

    a.li(rRound, 0);
    a.label("round");

    // pivot = round % NB (NB is a power of two times T... compute via
    // subtract loop to avoid requiring a modulo instruction).
    a.add(rPivot, rRound, 0);
    a.label("mod_pivot");
    a.blt(rPivot, rNb, "mod_done");
    a.sub(rPivot, rPivot, rNb);
    a.jmp("mod_pivot");
    a.label("mod_done");

    // Owner (pivot % T == tid) updates the pivot block.
    a.add(rTmp, rPivot, 0);
    a.label("mod_owner");
    a.blt(rTmp, rT, "owner_done");
    a.sub(rTmp, rTmp, rT);
    a.jmp("mod_owner");
    a.label("owner_done");
    a.bne(rTmp, isa::kRegThreadId, "skip_pivot");

    a.slli(rPivPtr, rPivot, 8); // * B * 8
    a.add(rPivPtr, rPivPtr, rBase);
    a.li(rW, 0);
    a.label("piv_w");
    a.slli(rTmp, rW, 3);
    a.add(rTmp, rTmp, rPivPtr);
    a.ld(rVal, rTmp, 0);
    a.slli(rPval, rVal, 1);
    a.add(rVal, rVal, rPval); // *3
    a.add(rVal, rVal, rRound);
    a.st(rVal, rTmp, 0);
    a.addi(rW, rW, 1);
    k.loadImm(rTmp, B);
    a.blt(rW, rTmp, "piv_w");
    a.label("skip_pivot");

    k.barrier();

    // Every thread updates its own blocks using the pivot block.
    a.slli(rPivPtr, rPivot, 8);
    a.add(rPivPtr, rPivPtr, rBase);
    a.add(rBlk, isa::kRegThreadId, 0);
    a.label("blk_loop");
    a.beq(rBlk, rPivot, "blk_next"); // skip the pivot itself
    a.slli(rPtr, rBlk, 8);
    a.add(rPtr, rPtr, rBase);
    a.li(rW, 0);
    a.label("upd_w");
    a.slli(rTmp, rW, 3);
    a.add(rVal, rTmp, rPivPtr);
    a.ld(rPval, rVal, 0); // pivot word (shared read)
    a.add(rVal, rTmp, rPtr);
    a.ld(rTmp, rVal, 0);
    a.slli(rPval, rPval, 1);
    a.add(rTmp, rTmp, rPval);
    a.st(rTmp, rVal, 0);
    a.addi(rW, rW, 1);
    k.loadImm(rTmp, B);
    a.blt(rW, rTmp, "upd_w");
    a.label("blk_next");
    a.add(rBlk, rBlk, rT);
    a.blt(rBlk, rNb, "blk_loop");

    k.barrier();

    a.addi(rRound, rRound, 1);
    k.loadImm(rTmp, rounds);
    a.blt(rRound, rTmp, "round");

    a.halt();
    return k.finish();
}

} // namespace rr::workloads
