/**
 * @file
 * Coherence protocol vocabulary shared between the memory system, the
 * cores and the RelaxReplay recorders: MESI states, access kinds, the
 * global serialization stamp clock, and the observer interfaces through
 * which perform/snoop/eviction events reach the recorders.
 */

#ifndef RR_MEM_COHERENCE_HH
#define RR_MEM_COHERENCE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace rr::mem
{

class BackingStore;

enum class MesiState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

const char *toString(MesiState s);

/** Kind of memory access issued by a core. */
enum class AccessKind : std::uint8_t
{
    Load,
    Store,
    Xchg, ///< atomic exchange (read-modify-write)
    Fadd, ///< atomic fetch-and-add (read-modify-write)
};

constexpr bool
isWriteKind(AccessKind k)
{
    return k != AccessKind::Load;
}

constexpr bool
isRmwKind(AccessKind k)
{
    return k == AccessKind::Xchg || k == AccessKind::Fadd;
}

/** Bus transaction kinds of the snoopy MESI protocol. */
enum class BusKind : std::uint8_t
{
    GetS, ///< read request (miss)
    GetM, ///< write request (miss or S->M upgrade)
    PutM, ///< dirty writeback (timing/bandwidth only in this model)
};

/**
 * Global serialization stamp clock. Every perform and snoop event gets a
 * strictly increasing stamp; the stamp order is the single linearization
 * of the machine's memory events. Recorders use stamps to totally order
 * interval terminations (the paper's "globally-consistent clock").
 */
class StampClock
{
  public:
    /** Allocate the next stamp. */
    std::uint64_t next() { return ++last_; }
    std::uint64_t last() const { return last_; }

  private:
    std::uint64_t last_ = 0;
};

/** A memory access reaching its global serialization point. */
struct PerformEvent
{
    sim::CoreId core;
    /** Core-assigned identifier, echoed back (the dynamic SeqNum). */
    std::uint64_t tag;
    AccessKind kind;
    /** Word-aligned byte address accessed. */
    sim::Addr addr;
    /** Value loaded (old memory value for RMWs); 0 for plain stores. */
    std::uint64_t loadValue;
    /** Value written (new memory value); 0 for plain loads. */
    std::uint64_t storeValue;
    std::uint64_t stamp;
    sim::Cycle cycle;
};

/** A coherence transaction observed on the snoopy interconnect. */
struct SnoopEvent
{
    sim::CoreId requester;
    sim::Addr lineAddr;
    /** True for GetM (write intent), false for GetS. */
    bool isWrite;
    /**
     * True when the observing core's L1 held the line (any valid MESI
     * state) when the transaction was granted. Dependency-recording
     * interval orderings (Cyrus/Karma-style) piggyback ordering
     * information exactly when a cache responds to or is invalidated
     * by a request.
     */
    bool observerHadLine = false;
    std::uint64_t stamp;
    sim::Cycle cycle;
};

/**
 * Observer of memory-system events, implemented by the per-core MRR hubs
 * (and by test harnesses). Perform events are delivered to the issuing
 * core's observers at the access's serialization point; snoop events are
 * delivered to every core except the requester (ring snoopy protocol:
 * all caches see all transactions).
 */
class MemoryObserver
{
  public:
    virtual ~MemoryObserver() = default;

    virtual void onPerform(const PerformEvent &) {}

    /** @param observer core id of the core observing the snoop. */
    virtual void onSnoop([[maybe_unused]] sim::CoreId observer,
                         const SnoopEvent &)
    {
    }

    /**
     * Core @p core 's ability to observe future transactions on
     * @p line_addr was destroyed: a dirty (Modified) line left its L1
     * without a transaction visible to that core's future self
     * (capacity eviction or back-invalidation), or — under the real
     * directory backend — the home directory dropped the core from the
     * line's tracking state. The Section 4.3 event: RelaxReplay_Opt
     * answers it with a conservative Snoop Table bump.
     */
    virtual void
    onDirtyEviction(sim::CoreId core, sim::Addr line_addr,
                    std::uint64_t stamp)
    {
        (void)core;
        (void)line_addr;
        (void)stamp;
    }
};

/** Completion callback interface implemented by cores. */
class MemClient
{
  public:
    virtual ~MemClient() = default;

    /**
     * The access identified by @p tag has completed: its data (for loads
     * and RMWs, the value loaded) is available to the pipeline.
     */
    virtual void memCompleted(std::uint64_t tag, AccessKind kind,
                              std::uint64_t load_value, sim::Cycle when) = 0;
};

/**
 * The coherent memory hierarchy a machine is built against: the
 * protocol-independent contract between the cores, the MRR recorder
 * hubs and whatever coherence backend implements it. Two backends
 * exist — the ring-based snoopy MESI (SnoopyMemorySystem) and the
 * home-directory MESI (DirectoryMemorySystem); createMemorySystem()
 * picks one from sim::MachineConfig::coherence.
 *
 * The invariants every backend must keep (the recorder depends on
 * them; see docs/COHERENCE.md):
 *  - every access serializes exactly once, emitting one PerformEvent
 *    stamped by the shared StampClock (write atomicity, Observation 1);
 *  - between an access's perform and its counting, any conflicting
 *    remote write either delivers a SnoopEvent to this core or is
 *    preceded by an onDirtyEviction bump for the line at this core
 *    (the Section 4.3 conservative fallback);
 *  - snoop events are stamped before the requesting transaction's own
 *    performs, so dependence-source intervals terminate with smaller
 *    stamps than the dependent performs.
 */
class CoherenceProtocol
{
  public:
    CoherenceProtocol(const sim::MachineConfig &cfg, BackingStore &backing,
                      StampClock &clock);
    virtual ~CoherenceProtocol();

    CoherenceProtocol(const CoherenceProtocol &) = delete;
    CoherenceProtocol &operator=(const CoherenceProtocol &) = delete;

    /** Which protocol this backend implements. */
    sim::CoherenceKind kind() const { return cfg_.coherence; }

    /** Register the completion-callback target for a core. */
    void setClient(sim::CoreId core, MemClient *client);

    /**
     * Register a broadcast event observer (tracer, test harness): it
     * receives every perform/snoop/eviction event for every core.
     */
    void addObserver(MemoryObserver *obs);

    /**
     * Register an observer that only cares about one core's events — a
     * perform by @p core, a snoop observed by @p core, or a dirty
     * eviction from @p core 's L1 — as the per-core MRR hubs do. The
     * memory system then routes events directly instead of fanning
     * every event out to every hub (which rejected all but one
     * delivery), turning the O(cores^2) virtual-call pattern on the
     * serialize/snoop hot path into O(cores).
     */
    void addCoreObserver(sim::CoreId core, MemoryObserver *obs);

    /**
     * Whether core @p core can issue an access to @p word_addr this
     * cycle (an MSHR is free, or the access merges into a pending one).
     */
    virtual bool canAccept(sim::CoreId core, sim::Addr word_addr) const = 0;

    /**
     * Issue an access. The caller must have checked canAccept(). The
     * access completes later via MemClient::memCompleted with the same
     * @p tag; its PerformEvent is emitted at its serialization point.
     */
    virtual void access(sim::CoreId core, AccessKind kind,
                        sim::Addr word_addr, std::uint64_t store_value,
                        std::uint64_t tag) = 0;

    /**
     * Advance one cycle: process coherence requests, then fire due
     * completions and fills. Must be called before the cores tick.
     */
    virtual void tick(sim::Cycle now) = 0;

    sim::Cycle now() const { return now_; }
    sim::StatSet &stats() { return stats_; }

    /** MESI state of a line in a given core's L1 (for tests). */
    virtual MesiState l1State(sim::CoreId core,
                              sim::Addr line_addr) const = 0;

    /** Number of in-flight coherence transactions (for tests). */
    virtual std::size_t inflightCount() const = 0;

    /** True when no transaction, completion or queued request remains. */
    virtual bool quiescent() const = 0;

  protected:
    /** One access waiting on (or satisfied by) a transaction. */
    struct PendingAccess
    {
        AccessKind kind;
        sim::Addr word;
        std::uint64_t storeValue;
        std::uint64_t tag;
    };

    /** Serialize one access: apply/sample value, emit PerformEvent. */
    std::uint64_t serialize(sim::CoreId core, const PendingAccess &acc);

    /** Deliver a perform/snoop/eviction event for @p core. */
    template <typename Fn>
    void
    notifyObservers(sim::CoreId core, Fn &&fn)
    {
        for (auto *obs : coreObservers_[core])
            fn(obs);
        for (auto *obs : observers_)
            fn(obs);
    }

    const sim::MachineConfig &cfg_;
    BackingStore &backing_;
    StampClock &clock_;
    sim::Cycle now_ = 0;

    std::vector<MemClient *> clients_;
    std::vector<MemoryObserver *> observers_;
    std::vector<std::vector<MemoryObserver *>> coreObservers_;

    sim::StatSet stats_;
};

/**
 * Historical name of the (then only) memory system; the cores and the
 * machine reference the protocol-independent interface through it.
 */
using MemorySystem = CoherenceProtocol;

/** Build the backend selected by @p cfg.coherence. */
std::unique_ptr<MemorySystem>
createMemorySystem(const sim::MachineConfig &cfg, BackingStore &backing,
                   StampClock &clock);

} // namespace rr::mem

#endif // RR_MEM_COHERENCE_HH
