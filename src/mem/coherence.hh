/**
 * @file
 * Coherence protocol vocabulary shared between the memory system, the
 * cores and the RelaxReplay recorders: MESI states, access kinds, the
 * global serialization stamp clock, and the observer interfaces through
 * which perform/snoop/eviction events reach the recorders.
 */

#ifndef RR_MEM_COHERENCE_HH
#define RR_MEM_COHERENCE_HH

#include <cstdint>

#include "sim/types.hh"

namespace rr::mem
{

enum class MesiState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

const char *toString(MesiState s);

/** Kind of memory access issued by a core. */
enum class AccessKind : std::uint8_t
{
    Load,
    Store,
    Xchg, ///< atomic exchange (read-modify-write)
    Fadd, ///< atomic fetch-and-add (read-modify-write)
};

constexpr bool
isWriteKind(AccessKind k)
{
    return k != AccessKind::Load;
}

constexpr bool
isRmwKind(AccessKind k)
{
    return k == AccessKind::Xchg || k == AccessKind::Fadd;
}

/** Bus transaction kinds of the snoopy MESI protocol. */
enum class BusKind : std::uint8_t
{
    GetS, ///< read request (miss)
    GetM, ///< write request (miss or S->M upgrade)
    PutM, ///< dirty writeback (timing/bandwidth only in this model)
};

/**
 * Global serialization stamp clock. Every perform and snoop event gets a
 * strictly increasing stamp; the stamp order is the single linearization
 * of the machine's memory events. Recorders use stamps to totally order
 * interval terminations (the paper's "globally-consistent clock").
 */
class StampClock
{
  public:
    /** Allocate the next stamp. */
    std::uint64_t next() { return ++last_; }
    std::uint64_t last() const { return last_; }

  private:
    std::uint64_t last_ = 0;
};

/** A memory access reaching its global serialization point. */
struct PerformEvent
{
    sim::CoreId core;
    /** Core-assigned identifier, echoed back (the dynamic SeqNum). */
    std::uint64_t tag;
    AccessKind kind;
    /** Word-aligned byte address accessed. */
    sim::Addr addr;
    /** Value loaded (old memory value for RMWs); 0 for plain stores. */
    std::uint64_t loadValue;
    /** Value written (new memory value); 0 for plain loads. */
    std::uint64_t storeValue;
    std::uint64_t stamp;
    sim::Cycle cycle;
};

/** A coherence transaction observed on the snoopy interconnect. */
struct SnoopEvent
{
    sim::CoreId requester;
    sim::Addr lineAddr;
    /** True for GetM (write intent), false for GetS. */
    bool isWrite;
    /**
     * True when the observing core's L1 held the line (any valid MESI
     * state) when the transaction was granted. Dependency-recording
     * interval orderings (Cyrus/Karma-style) piggyback ordering
     * information exactly when a cache responds to or is invalidated
     * by a request.
     */
    bool observerHadLine = false;
    std::uint64_t stamp;
    sim::Cycle cycle;
};

/**
 * Observer of memory-system events, implemented by the per-core MRR hubs
 * (and by test harnesses). Perform events are delivered to the issuing
 * core's observers at the access's serialization point; snoop events are
 * delivered to every core except the requester (ring snoopy protocol:
 * all caches see all transactions).
 */
class MemoryObserver
{
  public:
    virtual ~MemoryObserver() = default;

    virtual void onPerform(const PerformEvent &) {}

    /** @param observer core id of the core observing the snoop. */
    virtual void onSnoop([[maybe_unused]] sim::CoreId observer,
                         const SnoopEvent &)
    {
    }

    /**
     * A dirty (Modified) line left core @p core 's L1 without a bus
     * transaction visible to that core's future self (capacity eviction
     * or back-invalidation). Only meaningful for the directory-coherence
     * extension of Section 4.3.
     */
    virtual void
    onDirtyEviction(sim::CoreId core, sim::Addr line_addr,
                    std::uint64_t stamp)
    {
        (void)core;
        (void)line_addr;
        (void)stamp;
    }
};

/** Completion callback interface implemented by cores. */
class MemClient
{
  public:
    virtual ~MemClient() = default;

    /**
     * The access identified by @p tag has completed: its data (for loads
     * and RMWs, the value loaded) is available to the pipeline.
     */
    virtual void memCompleted(std::uint64_t tag, AccessKind kind,
                              std::uint64_t load_value, sim::Cycle when) = 0;
};

} // namespace rr::mem

#endif // RR_MEM_COHERENCE_HH
