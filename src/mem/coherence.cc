/**
 * @file
 * Protocol-independent memory-system machinery: the CoherenceProtocol
 * base (observer/client registries and the single serialization point
 * every backend funnels accesses through) and the backend factory.
 */

#include "mem/coherence.hh"

#include "mem/backing_store.hh"
#include "mem/directory.hh"
#include "mem/memory_system.hh"

namespace rr::mem
{

const char *
toString(MesiState s)
{
    switch (s) {
      case MesiState::Invalid: return "I";
      case MesiState::Shared: return "S";
      case MesiState::Exclusive: return "E";
      case MesiState::Modified: return "M";
    }
    return "?";
}

CoherenceProtocol::CoherenceProtocol(const sim::MachineConfig &cfg,
                                     BackingStore &backing,
                                     StampClock &clock)
    : cfg_(cfg), backing_(backing), clock_(clock), stats_("mem")
{
    clients_.resize(cfg.numCores, nullptr);
    coreObservers_.resize(cfg.numCores);
}

CoherenceProtocol::~CoherenceProtocol() = default;

void
CoherenceProtocol::setClient(sim::CoreId core, MemClient *client)
{
    clients_.at(core) = client;
}

void
CoherenceProtocol::addObserver(MemoryObserver *obs)
{
    observers_.push_back(obs);
}

void
CoherenceProtocol::addCoreObserver(sim::CoreId core, MemoryObserver *obs)
{
    coreObservers_.at(core).push_back(obs);
}

std::uint64_t
CoherenceProtocol::serialize(sim::CoreId core, const PendingAccess &acc)
{
    const std::uint64_t stamp = clock_.next();
    std::uint64_t load_v = 0;
    std::uint64_t store_v = 0;
    switch (acc.kind) {
      case AccessKind::Load:
        load_v = backing_.read64(acc.word);
        break;
      case AccessKind::Store:
        store_v = acc.storeValue;
        backing_.write64(acc.word, store_v);
        break;
      case AccessKind::Xchg:
        load_v = backing_.read64(acc.word);
        store_v = acc.storeValue;
        backing_.write64(acc.word, store_v);
        break;
      case AccessKind::Fadd:
        load_v = backing_.read64(acc.word);
        store_v = load_v + acc.storeValue;
        backing_.write64(acc.word, store_v);
        break;
    }
    const PerformEvent ev{core,    acc.tag, acc.kind, acc.word,
                          load_v,  store_v, stamp,    now_};
    notifyObservers(core, [&ev](MemoryObserver *obs) { obs->onPerform(ev); });
    return load_v;
}

std::unique_ptr<MemorySystem>
createMemorySystem(const sim::MachineConfig &cfg, BackingStore &backing,
                   StampClock &clock)
{
    if (cfg.coherence == sim::CoherenceKind::Directory)
        return std::make_unique<DirectoryMemorySystem>(cfg, backing,
                                                       clock);
    return std::make_unique<SnoopyMemorySystem>(cfg, backing, clock);
}

} // namespace rr::mem
