/**
 * @file
 * A set-associative tag array with MESI state and LRU replacement.
 * Holds no data (the BackingStore is the value authority); used for both
 * the private L1s and the shared L2 (which only uses Invalid/Shared).
 */

#ifndef RR_MEM_CACHE_ARRAY_HH
#define RR_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/coherence.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace rr::mem
{

class CacheArray
{
  public:
    struct Line
    {
        sim::Addr tag = 0; ///< full line address
        MesiState state = MesiState::Invalid;
        std::uint64_t lruStamp = 0;

        bool valid() const { return state != MesiState::Invalid; }
    };

    explicit CacheArray(const sim::CacheConfig &cfg)
        : assoc_(cfg.associativity), numSets_(cfg.numSets()),
          lines_(static_cast<std::size_t>(assoc_) * numSets_)
    {
    }

    /** Find the line holding @p line_addr; nullptr when absent. */
    Line *
    find(sim::Addr line_addr)
    {
        Line *set = setFor(line_addr);
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (set[w].valid() && set[w].tag == line_addr)
                return &set[w];
        }
        return nullptr;
    }

    const Line *
    find(sim::Addr line_addr) const
    {
        return const_cast<CacheArray *>(this)->find(line_addr);
    }

    MesiState
    stateOf(sim::Addr line_addr) const
    {
        const Line *l = find(line_addr);
        return l ? l->state : MesiState::Invalid;
    }

    /** Refresh the LRU position of a line on access. */
    void touch(Line &line) { line.lruStamp = ++lruClock_; }

    /**
     * Pick a victim way for installing @p line_addr: an invalid way if
     * one exists, otherwise the LRU way whose line is not @p blocked.
     * Returns nullptr when every way is blocked (caller retries later).
     */
    Line *
    victimFor(sim::Addr line_addr,
              const std::function<bool(sim::Addr)> &blocked)
    {
        Line *set = setFor(line_addr);
        Line *victim = nullptr;
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            Line &l = set[w];
            if (!l.valid())
                return &l;
            if (blocked && blocked(l.tag))
                continue;
            if (!victim || l.lruStamp < victim->lruStamp)
                victim = &l;
        }
        return victim;
    }

    /** Install a line into @p way (previous contents already handled). */
    void
    install(Line &way, sim::Addr line_addr, MesiState state)
    {
        way.tag = line_addr;
        way.state = state;
        touch(way);
    }

    /** Iterate over all valid lines (diagnostics / invalidation sweeps). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn)
    {
        for (auto &l : lines_) {
            if (l.valid())
                fn(l);
        }
    }

    std::uint32_t associativity() const { return assoc_; }
    std::uint32_t numSets() const { return numSets_; }

  private:
    Line *
    setFor(sim::Addr line_addr)
    {
        const std::uint64_t set =
            (line_addr / sim::kLineBytes) & (numSets_ - 1);
        return &lines_[static_cast<std::size_t>(set) * assoc_];
    }

    std::uint32_t assoc_;
    std::uint32_t numSets_;
    std::vector<Line> lines_;
    std::uint64_t lruClock_ = 0;
};

} // namespace rr::mem

#endif // RR_MEM_CACHE_ARRAY_HH
