/**
 * @file
 * The home-directory MESI backend (sim::CoherenceKind::Directory).
 *
 * Each line has a home directory entry colocated with its L2 bank that
 * tracks the exclusive owner (E/M holder) and a full-map sharer
 * bitvector (hence the 64-core cap enforced by MachineConfig::validate).
 * Requests are point-to-point: a GetS forwards to the owner when one
 * exists, a GetM invalidates exactly the listed cores, and clean/E
 * evictions are silent — so, unlike the snoopy ring, a core only
 * observes the transactions the directory routes to it. The recorder
 * consequences (Section 4.3 of the paper) are:
 *
 *  - Silent clean evictions leave stale sharers listed; the directory
 *    keeps sending them invalidations, so a core that performed an
 *    access while holding the line keeps observing conflicting writes
 *    until it is explicitly unlisted. Spurious snoops are harmless
 *    (observerHadLine is sampled from the actual L1).
 *  - A core is unlisted only on paths that emit the conservative
 *    onDirtyEviction bump first: its own dirty eviction (PutM), or the
 *    destruction of the whole entry when the inclusive L2 evicts the
 *    line — which bumps *every* listed core.
 *  - A request for a line with no directory entry (tracking destroyed,
 *    or cold) is conservatively broadcast to all cores, mirroring what
 *    a real directory's "no info -> act as if shared by all" fallback
 *    does.
 *
 * Scaling: one grant per home bank per cycle (bank = line % numCores)
 * instead of the snoopy ring's single global grant, and point-to-point
 * hop latencies independent of the core count — the properties the
 * 32/64-core runs in bench/fig14_scalability exercise.
 */

#ifndef RR_MEM_DIRECTORY_HH
#define RR_MEM_DIRECTORY_HH

#include <cstdint>
#include <vector>

#include "mem/memory_system.hh"

namespace rr::mem
{

class DirectoryMemorySystem final : public CacheMemorySystem
{
  public:
    DirectoryMemorySystem(const sim::MachineConfig &cfg,
                          BackingStore &backing, StampClock &clock);

    // --- test accessors ---------------------------------------------
    /** Whether a directory entry exists for @p line_addr. */
    bool dirHasEntry(sim::Addr line_addr) const;
    /** Owner core of @p line_addr, or -1 (no entry / no owner). */
    std::int32_t dirOwner(sim::Addr line_addr) const;
    /** Sharer bitmask of @p line_addr (0 when no entry). */
    std::uint64_t dirSharers(sim::Addr line_addr) const;
    std::uint32_t numBanks() const { return numBanks_; }

  protected:
    /**
     * Inclusive-L2 install; destroying the victim's directory entry
     * bumps every listed core (they all lose snoop visibility).
     */
    bool installL2(sim::Addr line) override;

  private:
    /** Home directory entry: full-map sharers + exclusive owner. */
    struct DirEntry
    {
        std::int32_t owner = -1; ///< E/M holder; -1 when none
        std::uint64_t sharers = 0;
    };

    void processRequests() override;
    void grant(const BusRequest &req);

    std::uint32_t
    bankOf(sim::Addr line) const
    {
        return static_cast<std::uint32_t>((line / sim::kLineBytes) %
                                          numBanks_);
    }

    sim::FlatMap<DirEntry> dir_;
    std::uint32_t numBanks_;
    std::vector<bool> bankGranted_; ///< per-cycle scratch
};

} // namespace rr::mem

#endif // RR_MEM_DIRECTORY_HH
