#include "mem/backing_store.hh"

namespace rr::mem
{

std::uint64_t
BackingStore::fingerprint() const
{
    // Combine per-word hashes with addition so that unordered_map
    // iteration order does not matter.
    std::uint64_t acc = 0;
    for (const auto &[pageno, page] : pages_) {
        const std::uint64_t base = pageno * kPageBytes;
        for (std::size_t i = 0; i < kPageBytes / sim::kWordBytes; ++i) {
            const std::uint64_t v = page.words[i];
            if (v == 0)
                continue;
            std::uint64_t h = base + i * sim::kWordBytes;
            h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
            h *= 0x2545f4914f6cdd1dULL;
            acc += h;
        }
    }
    return acc;
}

} // namespace rr::mem
