#include "mem/sharded_store.hh"

#include <algorithm>
#include <mutex>

namespace rr::mem
{

ShardedStore::ShardedStore(const BackingStore &initial,
                           std::uint32_t shards)
{
    if (shards == 0)
        shards = 1;
    shards_.reserve(shards);
    for (std::uint32_t s = 0; s < shards; ++s)
        shards_.push_back(std::make_unique<Shard>());
    initial.forEachPage([&](std::uint64_t page_index,
                            const std::uint64_t *words) {
        std::uint64_t *page = ensurePage(page_index);
        std::copy(words, words + BackingStore::kWordsPerPage, page);
    });
}

std::uint64_t *
ShardedStore::findPage(std::uint64_t page_index)
{
    Shard &s = shardOf(page_index);
    std::shared_lock lock(s.mu);
    auto it = s.pages.find(page_index);
    return it == s.pages.end() ? nullptr : it->second.words;
}

std::uint64_t *
ShardedStore::ensurePage(std::uint64_t page_index)
{
    Shard &s = shardOf(page_index);
    std::unique_lock lock(s.mu);
    return s.pages[page_index].words;
}

void
ShardedStore::commit(
    std::vector<std::pair<sim::Addr, std::uint64_t>> &writes)
{
    std::sort(writes.begin(), writes.end());
    std::uint64_t *page = nullptr;
    std::uint64_t page_index = ~0ULL;
    for (const auto &[addr, value] : writes) {
        const std::uint64_t pi = addr / BackingStore::kPageBytes;
        if (pi != page_index || !page) {
            page = ensurePage(pi);
            page_index = pi;
        }
        page[(addr % BackingStore::kPageBytes) / sim::kWordBytes] =
            value;
    }
}

BackingStore
ShardedStore::collapse() const
{
    BackingStore out;
    for (const auto &shard : shards_) {
        std::shared_lock lock(shard->mu);
        for (const auto &[index, page] : shard->pages)
            out.setPage(index, page.words);
    }
    return out;
}

} // namespace rr::mem
