/**
 * @file
 * A sparse memory image partitioned into independently locked shards —
 * the shared store of the parallel replayer.
 *
 * Pages are statically assigned to shards by page index, so any word
 * address maps to exactly one shard. The shard locks protect only the
 * page-table *structure* (concurrent find vs. insert); the words
 * themselves are read and written without locks, through page
 * pointers that stay valid for the store's lifetime (std::unordered_map
 * nodes are pointer-stable and pages are never erased).
 *
 * That contract is exactly what DAG-scheduled replay needs: the
 * interval dependency graph orders every pair of intervals that touch
 * the same word (one of them writing), and the engine's atomic
 * in-degree release chain turns that order into happens-before — so
 * word-level accesses are data-race-free by construction, and taking a
 * lock per access (instead of per page-table miss) would only buy
 * back what the DAG already guarantees, at ~100× the cost on the
 * replay hot path.
 */

#ifndef RR_MEM_SHARDED_STORE_HH
#define RR_MEM_SHARDED_STORE_HH

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mem/backing_store.hh"
#include "sim/types.hh"

namespace rr::mem
{

class ShardedStore
{
  public:
    /**
     * Partition a copy of @p initial into @p shards shards (clamped to
     * at least 1).
     */
    explicit ShardedStore(const BackingStore &initial,
                          std::uint32_t shards = 64);

    /**
     * The page holding @p page_index, or nullptr if it was never
     * materialized. Takes the owning shard's lock shared for the
     * lookup only; the returned pointer stays valid forever and may be
     * read/written directly by callers whose word-level accesses are
     * externally ordered.
     */
    std::uint64_t *findPage(std::uint64_t page_index);

    /** Like findPage, but materializes the (zero) page when absent. */
    std::uint64_t *ensurePage(std::uint64_t page_index);

    /** Read one word (convenience wrapper over findPage). */
    std::uint64_t
    read(sim::Addr a)
    {
        a = sim::wordAddr(a);
        const std::uint64_t *page =
            findPage(a / BackingStore::kPageBytes);
        if (!page)
            return 0;
        return page[(a % BackingStore::kPageBytes) / sim::kWordBytes];
    }

    /**
     * Apply a write set: (word address, final value) pairs, addresses
     * unique. Sorts @p writes by address as a side effect so each
     * touched page is looked up once.
     */
    void commit(std::vector<std::pair<sim::Addr, std::uint64_t>> &writes);

    /**
     * Merge all shards back into one flat BackingStore. Page sets are
     * disjoint across shards by construction, so this is a plain
     * union. Call after replay has quiesced.
     */
    BackingStore collapse() const;

    std::uint32_t numShards() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }

  private:
    struct Page
    {
        std::uint64_t words[BackingStore::kWordsPerPage] = {};
    };

    struct Shard
    {
        mutable std::shared_mutex mu;
        std::unordered_map<std::uint64_t, Page> pages;
    };

    Shard &
    shardOf(std::uint64_t page_index)
    {
        return *shards_[page_index % shards_.size()];
    }

    /** unique_ptr: shared_mutex is neither movable nor copyable. */
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace rr::mem

#endif // RR_MEM_SHARDED_STORE_HH
