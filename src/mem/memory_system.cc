#include "mem/memory_system.hh"

#include <algorithm>

#include "sim/faultinject.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace rr::mem
{

// --- CacheMemorySystem: protocol-independent hierarchy machinery ----

CacheMemorySystem::CacheMemorySystem(const sim::MachineConfig &cfg,
                                     BackingStore &backing,
                                     StampClock &clock)
    : CoherenceProtocol(cfg, backing, clock),
      l2_(sim::CacheConfig{cfg.totalL2Bytes(), cfg.l2.associativity,
                           cfg.l2.mshrEntries, cfg.l2.hitLatency})
{
    l1s_.reserve(cfg.numCores);
    for (std::uint32_t c = 0; c < cfg.numCores; ++c)
        l1s_.emplace_back(cfg.l1);
    mshrs_.resize(cfg.numCores);
    mshrByLine_.resize(cfg.numCores);
}

CacheMemorySystem::Mshr *
CacheMemorySystem::mshrFor(sim::CoreId core, sim::Addr line) const
{
    Mshr *const *slot = mshrByLine_[core].find(line);
    return slot ? *slot : nullptr;
}

std::size_t
CacheMemorySystem::freeMshrs(sim::CoreId core) const
{
    return cfg_.l1.mshrEntries - mshrs_.at(core).size();
}

bool
CacheMemorySystem::lineHasAnyMshr(sim::Addr line) const
{
    const std::uint32_t *count = lineMshrCount_.find(line);
    return count != nullptr && *count > 0;
}

bool
CacheMemorySystem::canAccept(sim::CoreId core, sim::Addr word_addr) const
{
    const sim::Addr line = sim::lineAddr(word_addr);
    return mshrFor(core, line) != nullptr || freeMshrs(core) > 0;
}

void
CacheMemorySystem::scheduleHitDone(sim::CoreId core,
                                   const PendingAccess &acc,
                                   std::uint64_t load_value,
                                   sim::Cycle when)
{
    Event ev{};
    ev.when = when;
    ev.type = Event::HitDone;
    ev.core = core;
    ev.tag = acc.tag;
    ev.kind = acc.kind;
    ev.loadValue = load_value;
    ev.mshr = nullptr;
    schedule(ev);
}

void
CacheMemorySystem::schedule(Event ev)
{
    ev.order = ++eventOrder_;
    events_.push(ev);
}

void
CacheMemorySystem::access(sim::CoreId core, AccessKind kind,
                          sim::Addr word_addr, std::uint64_t store_value,
                          std::uint64_t tag)
{
    RR_ASSERT(canAccept(core, word_addr), "access without canAccept");
    stats_.counter(isWriteKind(kind) ? "accesses_write" : "accesses_read")++;
    accessInternal(core, {kind, sim::wordAddr(word_addr), store_value, tag});
}

void
CacheMemorySystem::accessInternal(sim::CoreId core, const PendingAccess &acc)
{
    const sim::Addr line = sim::lineAddr(acc.word);

    // Merge into a pending transaction on the same line, if any.
    if (Mshr *mshr = mshrFor(core, line)) {
        mshr->waiting.push_back(acc);
        stats_.counter("mshr_merges")++;
        return;
    }

    CacheArray &l1 = l1s_[core];
    CacheArray::Line *ln = l1.find(line);
    const bool writer = isWriteKind(acc.kind);
    const bool hit =
        ln && (!writer || ln->state == MesiState::Modified ||
               ln->state == MesiState::Exclusive);

    if (hit) {
        if (writer && ln->state == MesiState::Exclusive)
            ln->state = MesiState::Modified; // silent E->M upgrade
        l1.touch(*ln);
        const std::uint64_t v = serialize(core, acc);
        scheduleHitDone(core, acc, v, now_ + cfg_.l1.hitLatency);
        stats_.counter("l1_hits")++;
        return;
    }

    stats_.counter("l1_misses")++;
    RR_ASSERT(freeMshrs(core) > 0, "no free MSHR on miss path");
    auto &list = mshrs_[core];
    list.push_back(Mshr{line, core, writer ? BusKind::GetM : BusKind::GetS,
                        false, MesiState::Invalid, {acc}});
    Mshr *mshr = &list.back();
    mshrByLine_[core][line] = mshr;
    ++lineMshrCount_[line];
    busQueue_.push_back(BusRequest{core, line, mshr->kind, mshr});
}

void
CacheMemorySystem::tick(sim::Cycle now)
{
    now_ = now;
    deliverDelayedSnoops();
    processRequests();

    while (!events_.empty() && events_.top().when <= now_) {
        Event ev = events_.top();
        events_.pop();
        if (ev.type == Event::HitDone) {
            if (clients_[ev.core])
                clients_[ev.core]->memCompleted(ev.tag, ev.kind,
                                                ev.loadValue, now_);
        } else {
            completeFill(ev.mshr);
        }
    }
}

bool
CacheMemorySystem::grantBlocked(const BusRequest &req) const
{
    if (inflight_.count(req.line))
        return true;
    // A victimless fill is impossible only when every way of the target
    // L2 set is pinned by pending transactions; block then.
    if (req.kind != BusKind::PutM && !l2_.find(req.line)) {
        const auto blocked = [this](sim::Addr victim) {
            return inflight_.count(victim) > 0 || lineHasAnyMshr(victim);
        };
        if (!const_cast<CacheArray &>(l2_).victimFor(req.line, blocked))
            return true;
    }
    return false;
}

bool
CacheMemorySystem::installL2(sim::Addr line)
{
    if (CacheArray::Line *hit = l2_.find(line)) {
        l2_.touch(*hit);
        stats_.counter("l2_hits")++;
        return true;
    }
    stats_.counter("l2_misses")++;
    const auto blocked = [this](sim::Addr victim) {
        return inflight_.count(victim) > 0 || lineHasAnyMshr(victim);
    };
    CacheArray::Line *way = l2_.victimFor(line, blocked);
    RR_ASSERT(way, "L2 victim availability checked at grant");
    if (way->valid()) {
        // Inclusive L2: back-invalidate every L1 copy of the victim.
        const sim::Addr victim = way->tag;
        stats_.counter("l2_evictions")++;
        for (sim::CoreId c = 0; c < cfg_.numCores; ++c) {
            CacheArray::Line *l1_line = l1s_[c].find(victim);
            if (!l1_line)
                continue;
            stats_.counter("back_invalidations")++;
            if (l1_line->state == MesiState::Modified) {
                const std::uint64_t stamp = clock_.next();
                notifyObservers(c, [&](MemoryObserver *obs) {
                    obs->onDirtyEviction(c, victim, stamp);
                });
                busQueue_.push_back(
                    BusRequest{c, victim, BusKind::PutM, nullptr});
            }
            l1_line->state = MesiState::Invalid;
        }
    }
    l2_.install(*way, line, MesiState::Shared);
    return false;
}

void
CacheMemorySystem::deliverSnoopTo(sim::CoreId dest, const SnoopEvent &ev)
{
    if (sim::FaultInjector::enabled() && !coreObservers_[dest].empty()) {
        auto *inj = sim::FaultInjector::get();
        // Drop or delay the *recorder-side* delivery only; the
        // broadcast observers (tracers, ground-truth listeners) always
        // see the snoop, so execution is unperturbed and the recorded
        // log is what degrades.
        if (inj->dropSnoop(dest)) {
            stats_.counter("fault_snoops_dropped")++;
            if (sim::TraceSink::enabled())
                sim::TraceSink::get()->instant(
                    sim::TraceSink::kRecordPid, dest, "fault",
                    "snoop-dropped", now_,
                    {{"line", ev.lineAddr}, {"requester", ev.requester}});
            for (auto *obs : observers_)
                obs->onSnoop(dest, ev);
            return;
        }
        if (inj->delaySnoop(dest)) {
            stats_.counter("fault_snoops_delayed")++;
            if (sim::TraceSink::enabled())
                sim::TraceSink::get()->instant(
                    sim::TraceSink::kRecordPid, dest, "fault",
                    "snoop-delayed", now_,
                    {{"line", ev.lineAddr},
                     {"cycles", inj->plan().delaySnoopCycles}});
            delayedSnoops_.push_back(DelayedSnoop{
                now_ + inj->plan().delaySnoopCycles, dest, ev});
            for (auto *obs : observers_)
                obs->onSnoop(dest, ev);
            return;
        }
    }
    notifyObservers(dest, [&ev, dest](MemoryObserver *obs) {
        obs->onSnoop(dest, ev);
    });
}

void
CacheMemorySystem::deliverDelayedSnoops()
{
    while (!delayedSnoops_.empty() &&
           delayedSnoops_.front().deliverAt <= now_) {
        const DelayedSnoop d = delayedSnoops_.front();
        delayedSnoops_.pop_front();
        for (auto *obs : coreObservers_[d.dest])
            obs->onSnoop(d.dest, d.ev);
    }
}

void
CacheMemorySystem::evictL1Line(sim::CoreId core, CacheArray::Line &way)
{
    stats_.counter("l1_evictions")++;
    if (way.state == MesiState::Modified) {
        const std::uint64_t stamp = clock_.next();
        notifyObservers(core, [&](MemoryObserver *obs) {
            obs->onDirtyEviction(core, way.tag, stamp);
        });
        busQueue_.push_back(BusRequest{core, way.tag, BusKind::PutM,
                                       nullptr});
    }
    way.state = MesiState::Invalid;
}

void
CacheMemorySystem::completeFill(Mshr *mshr)
{
    const sim::CoreId core = mshr->core;
    const sim::Addr line = mshr->line;
    CacheArray &l1 = l1s_[core];

    CacheArray::Line *way = l1.find(line);
    if (!way) {
        // Not an upgrade: pick a victim way. Skip ways pinned by this
        // core's pending upgrades.
        const auto blocked = [this, core](sim::Addr victim) {
            return mshrFor(core, victim) != nullptr;
        };
        way = l1.victimFor(line, blocked);
        if (!way) {
            // Whole set pinned; retry next cycle (extremely rare).
            Event retry{};
            retry.when = now_ + 1;
            retry.type = Event::Fill;
            retry.mshr = mshr;
            retry.core = core;
            schedule(retry);
            return;
        }
        if (way->valid())
            evictL1Line(core, *way);
        l1.install(*way, line, mshr->fillState);
    } else {
        // Upgrade completion (or refill over a stale S copy).
        way->state = mshr->fillState;
        l1.touch(*way);
    }

    inflight_.erase(line);

    // Retire the MSHR, then replay accesses the transaction could not
    // satisfy (writers merged into a GetS, or late arrivals).
    std::vector<PendingAccess> leftovers = std::move(mshr->waiting);
    mshrByLine_[core].erase(line);
    auto &list = mshrs_[core];
    for (auto it = list.begin(); it != list.end(); ++it) {
        if (&*it == mshr) {
            list.erase(it);
            break;
        }
    }
    std::uint32_t *cnt = lineMshrCount_.find(line);
    RR_ASSERT(cnt != nullptr && *cnt > 0, "MSHR line count out of sync");
    if (--*cnt == 0)
        lineMshrCount_.erase(line);

    for (const PendingAccess &acc : leftovers)
        accessInternal(core, acc);
}

MesiState
CacheMemorySystem::l1State(sim::CoreId core, sim::Addr line_addr) const
{
    return l1s_.at(core).stateOf(sim::lineAddr(line_addr));
}

bool
CacheMemorySystem::quiescent() const
{
    if (!busQueue_.empty() || !events_.empty() || !inflight_.empty() ||
        !delayedSnoops_.empty())
        return false;
    for (const auto &list : mshrs_) {
        if (!list.empty())
            return false;
    }
    return true;
}

// --- SnoopyMemorySystem: the ring-based snoopy MESI backend ---------

void
SnoopyMemorySystem::processRequests()
{
    // The ring bus grants at most one transaction per cycle.
    for (auto it = busQueue_.begin(); it != busQueue_.end(); ++it) {
        if (grantBlocked(*it))
            continue;
        BusRequest req = *it;
        busQueue_.erase(it);
        grant(req);
        return;
    }
}

void
SnoopyMemorySystem::grant(const BusRequest &req)
{
    if (req.kind == BusKind::PutM) {
        stats_.counter("bus_putm")++;
        if (sim::TraceSink::enabled()) {
            sim::TraceSink::get()->instant(
                sim::TraceSink::kRecordPid, req.core, "coherence", "PutM",
                now_, {{"line", req.line}});
        }
        return; // bandwidth-only: the BackingStore already has the value
    }

    Mshr *mshr = req.mshr;
    const sim::Addr line = req.line;
    const bool is_write = req.kind == BusKind::GetM;
    stats_.counter(is_write ? "bus_getm" : "bus_gets")++;
    if (sim::TraceSink::enabled()) {
        sim::TraceSink::get()->instant(
            sim::TraceSink::kRecordPid, req.core, "coherence",
            is_write ? "GetM" : "GetS", now_, {{"line", line}});
    }

    // Snoop all other caches; find a supplier and apply transitions.
    bool other_has_line = false;
    bool supplied_by_cache = false;
    std::vector<bool> had_line(cfg_.numCores, false);
    for (sim::CoreId c = 0; c < cfg_.numCores; ++c) {
        if (c == req.core)
            continue;
        CacheArray::Line *ln = l1s_[c].find(line);
        if (!ln)
            continue;
        had_line[c] = true;
        other_has_line = true;
        if (ln->state == MesiState::Modified ||
            ln->state == MesiState::Exclusive)
            supplied_by_cache = true;
        if (is_write) {
            ln->state = MesiState::Invalid;
        } else if (ln->state != MesiState::Shared) {
            ln->state = MesiState::Shared; // M/E owner downgrades
        }
    }
    if (supplied_by_cache)
        stats_.counter("c2c_transfers")++;

    // Upgrade: the requester already holds the line in S; a GetM then
    // needs no data transfer.
    CacheArray::Line *own = l1s_[req.core].find(line);
    const bool upgrade = is_write && own != nullptr;

    const std::uint32_t ring =
        cfg_.numCores * cfg_.uncore.ringHopDelay;
    std::uint32_t latency = ring;
    if (upgrade) {
        stats_.counter("bus_upgrades")++;
        // Invalidation-only transaction; ring traversal covers it.
    } else if (supplied_by_cache) {
        latency += cfg_.l1.hitLatency;
        installL2(line); // keep inclusion; supplier writes through to L2
    } else {
        const bool l2_hit = installL2(line);
        latency += cfg_.uncore.l2Latency;
        if (!l2_hit)
            latency += cfg_.uncore.memLatency;
    }

    mshr->granted = true;
    mshr->fillState = is_write
                          ? MesiState::Modified
                          : (other_has_line ? MesiState::Shared
                                            : MesiState::Exclusive);
    inflight_.insert(line);

    // Broadcast the snoop before serializing this transaction's own
    // accesses so dependence-source intervals terminate with smaller
    // stamps than the dependent performs.
    emitSnoop(req.core, line, is_write, had_line);

    // Serialize the waiting accesses the granted transaction satisfies;
    // a GetS cannot satisfy writers (they replay after the fill).
    std::vector<PendingAccess> leftover;
    const sim::Cycle done_at = now_ + latency;
    for (const PendingAccess &acc : mshr->waiting) {
        if (is_write || !isWriteKind(acc.kind)) {
            const std::uint64_t v = serialize(req.core, acc);
            scheduleHitDone(req.core, acc, v, done_at);
        } else {
            leftover.push_back(acc);
        }
    }
    mshr->waiting = std::move(leftover);

    Event fill{};
    fill.when = done_at;
    fill.type = Event::Fill;
    fill.mshr = mshr;
    fill.core = req.core;
    schedule(fill);
}

void
SnoopyMemorySystem::emitSnoop(sim::CoreId requester, sim::Addr line,
                              bool is_write,
                              const std::vector<bool> &had_line)
{
    SnoopEvent ev{requester, line,  is_write,
                  false,     clock_.next(), now_};
    for (sim::CoreId c = 0; c < cfg_.numCores; ++c) {
        if (c == requester)
            continue;
        ev.observerHadLine = had_line.empty() ? false : had_line[c];
        deliverSnoopTo(c, ev);
    }
}

} // namespace rr::mem
