/**
 * @file
 * Sparse 64-bit physical memory image.
 *
 * The memory system applies store values and samples load values at each
 * access's global serialization point, so a single flat image is the
 * value authority for the whole machine; caches track MESI state and
 * timing only. This is exactly the write-atomicity property RelaxReplay
 * requires (Observation 1 in the paper), enforced by construction.
 */

#ifndef RR_MEM_BACKING_STORE_HH
#define RR_MEM_BACKING_STORE_HH

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "isa/program.hh"
#include "sim/types.hh"

namespace rr::mem
{

class BackingStore : public isa::MemoryIf
{
  public:
    static constexpr std::uint32_t kPageBytes = 4096;
    static constexpr std::size_t kWordsPerPage =
        kPageBytes / sim::kWordBytes;

    std::uint64_t
    read64(sim::Addr a) override
    {
        a = sim::wordAddr(a);
        const Page *p = findPage(a);
        if (!p)
            return 0;
        return p->words[wordIndex(a)];
    }

    void
    write64(sim::Addr a, std::uint64_t v) override
    {
        a = sim::wordAddr(a);
        getPage(a).words[wordIndex(a)] = v;
    }

    /** Const read (read64 is non-const only because MemoryIf is). */
    std::uint64_t
    peek(sim::Addr a) const
    {
        a = sim::wordAddr(a);
        const Page *p = findPage(a);
        return p ? p->words[wordIndex(a)] : 0;
    }

    /** Number of pages materialized so far. */
    std::size_t numPages() const { return pages_.size(); }

    /**
     * Order-independent FNV-style hash of all nonzero words; used by the
     * determinism tests to compare recorded and replayed final states.
     */
    std::uint64_t fingerprint() const;

    /** Copy the full image (cheap: pages are sparse). */
    BackingStore clone() const { return *this; }

    /**
     * Visit every materialized page as (page_index, words), where
     * words is kWordsPerPage uint64s. Iteration order is unspecified
     * (hash-map order) — callers needing determinism must sort.
     */
    template <typename Fn>
    void
    forEachPage(Fn &&fn) const
    {
        for (const auto &[index, page] : pages_)
            fn(index, page.words);
    }

    /** Install a whole page image (used when merging sharded views). */
    void
    setPage(std::uint64_t page_index, const std::uint64_t *words)
    {
        std::memcpy(pages_[page_index].words, words,
                    sizeof(Page::words));
    }

  private:
    struct Page
    {
        std::uint64_t words[kPageBytes / sim::kWordBytes] = {};
    };

    static std::size_t
    wordIndex(sim::Addr a)
    {
        return static_cast<std::size_t>((a % kPageBytes) / sim::kWordBytes);
    }

    const Page *
    findPage(sim::Addr a) const
    {
        auto it = pages_.find(a / kPageBytes);
        return it == pages_.end() ? nullptr : &it->second;
    }

    Page &getPage(sim::Addr a) { return pages_[a / kPageBytes]; }

    std::unordered_map<std::uint64_t, Page> pages_;
};

} // namespace rr::mem

#endif // RR_MEM_BACKING_STORE_HH
