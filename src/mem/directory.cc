#include "mem/directory.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace rr::mem
{

DirectoryMemorySystem::DirectoryMemorySystem(const sim::MachineConfig &cfg,
                                             BackingStore &backing,
                                             StampClock &clock)
    : CacheMemorySystem(cfg, backing, clock), numBanks_(cfg.numCores)
{
}

bool
DirectoryMemorySystem::dirHasEntry(sim::Addr line_addr) const
{
    return dir_.find(sim::lineAddr(line_addr)) != nullptr;
}

std::int32_t
DirectoryMemorySystem::dirOwner(sim::Addr line_addr) const
{
    const DirEntry *e = dir_.find(sim::lineAddr(line_addr));
    return e ? e->owner : -1;
}

std::uint64_t
DirectoryMemorySystem::dirSharers(sim::Addr line_addr) const
{
    const DirEntry *e = dir_.find(sim::lineAddr(line_addr));
    return e ? e->sharers : 0;
}

void
DirectoryMemorySystem::processRequests()
{
    if (busQueue_.empty())
        return;
    // Banked arbitration: each home bank grants at most one request per
    // cycle, independently of the others. This is the structural reason
    // the directory scales past the snoopy ring's one-grant-per-cycle
    // bottleneck.
    bankGranted_.assign(numBanks_, false);
    std::vector<BusRequest> granted;
    std::deque<BusRequest> keep;
    for (const BusRequest &req : busQueue_) {
        const std::uint32_t bank = bankOf(req.line);
        if (bankGranted_[bank] || grantBlocked(req)) {
            keep.push_back(req);
            continue;
        }
        bankGranted_[bank] = true;
        granted.push_back(req);
    }
    busQueue_.swap(keep);
    for (const BusRequest &req : granted) {
        // Re-check: a grant earlier this same cycle may have pinned the
        // last available way of this request's L2 set.
        if (grantBlocked(req)) {
            busQueue_.push_back(req);
            continue;
        }
        grant(req);
    }
}

void
DirectoryMemorySystem::grant(const BusRequest &req)
{
    const sim::Addr line = req.line;

    if (req.kind == BusKind::PutM) {
        // Dirty writeback reached home. The writer already emitted its
        // conservative bump at eviction time (evictL1Line), which keeps
        // the Opt *counting* safe — but bumps do not generate
        // dependency *edges*. A later reader still needs the
        // write->read edge produced by the ordering marker its GetS
        // routes to this core, so demote the ex-owner to a listed
        // sharer instead of dropping it from the tracking state.
        stats_.counter("dir_putm")++;
        if (DirEntry *e = dir_.find(line)) {
            if (e->owner == static_cast<std::int32_t>(req.core)) {
                e->sharers |= std::uint64_t{1} << e->owner;
                e->owner = -1;
            }
        }
        if (sim::TraceSink::enabled()) {
            sim::TraceSink::get()->instant(
                sim::TraceSink::kRecordPid, req.core, "coherence", "PutM",
                now_, {{"line", line}});
        }
        return;
    }

    Mshr *mshr = req.mshr;
    const bool is_write = req.kind == BusKind::GetM;
    stats_.counter(is_write ? "dir_getm" : "dir_gets")++;
    if (sim::TraceSink::enabled()) {
        sim::TraceSink::get()->instant(
            sim::TraceSink::kRecordPid, req.core, "coherence",
            is_write ? "GetM" : "GetS", now_, {{"line", line}});
    }

    // Sample actual L1 presence before any invalidation/downgrade: it
    // is what SnoopEvent::observerHadLine reports.
    std::vector<bool> had_line(cfg_.numCores, false);
    for (sim::CoreId c = 0; c < cfg_.numCores; ++c)
        had_line[c] = l1s_[c].find(line) != nullptr;

    DirEntry *entry = dir_.find(line);
    const bool untracked = entry == nullptr;
    if (untracked) {
        // No tracking state (cold line, or the entry was destroyed by
        // an L2 eviction): conservatively act as if every core could
        // hold the line, i.e. broadcast the snoop like the ring does.
        stats_.counter("dir_broadcasts")++;
        entry = &dir_[line];
    }
    const std::uint64_t req_bit = std::uint64_t{1} << req.core;

    // Which cores the directory routes this transaction to.
    std::uint64_t targets = 0;
    if (untracked) {
        for (sim::CoreId c = 0; c < cfg_.numCores; ++c)
            targets |= std::uint64_t{1} << c;
    } else {
        // Every listed core is notified, for GetS too: only the owner
        // supplies data, but the home also sends listed sharers an
        // ordering-only marker (a Cyrus/Karma-style piggyback). A
        // demoted ex-writer is still listed as a sharer, and a later
        // reader needs the write->read edge its marker produces; the
        // data-only routing (owner alone) loses exactly those edges.
        targets = entry->sharers;
        if (entry->owner >= 0)
            targets |= std::uint64_t{1} << entry->owner;
    }
    targets &= ~req_bit;

    // Forward to the owner when it really still holds the line in E/M
    // (a silent E eviction leaves a stale owner pointer behind; the
    // home then supplies the data itself).
    bool forwarded = false;
    if (entry->owner >= 0 && entry->owner != static_cast<std::int32_t>(
                                                 req.core)) {
        CacheArray::Line *own = l1s_[entry->owner].find(line);
        if (own && (own->state == MesiState::Modified ||
                    own->state == MesiState::Exclusive)) {
            forwarded = true;
            if (!is_write)
                own->state = MesiState::Shared; // owner downgrades
        } else {
            stats_.counter("dir_stale_owner")++;
        }
    }
    if (forwarded)
        stats_.counter("c2c_transfers")++;

    // GetM invalidates every targeted L1 copy (listed sharers + owner;
    // everyone on a conservative broadcast).
    if (is_write) {
        for (sim::CoreId c = 0; c < cfg_.numCores; ++c) {
            if (!((targets >> c) & 1))
                continue;
            if (CacheArray::Line *ln = l1s_[c].find(line))
                ln->state = MesiState::Invalid;
        }
    }

    // Tracking-state update. Cores are only unlisted on paths that
    // delivered them a snoop (this GetM) or a bump (PutM, entry
    // destruction); a demoted owner is kept listed as a sharer so
    // future invalidations still reach it.
    const bool upgrade = is_write && l1s_[req.core].find(line) != nullptr;
    if (is_write) {
        entry->sharers = 0;
        entry->owner = static_cast<std::int32_t>(req.core);
    } else {
        if (entry->owner >= 0 &&
            entry->owner != static_cast<std::int32_t>(req.core)) {
            entry->sharers |= std::uint64_t{1} << entry->owner;
            entry->owner = -1;
        }
        if (entry->owner < 0 && (entry->sharers & ~req_bit) == 0) {
            entry->sharers &= ~req_bit;
            entry->owner = static_cast<std::int32_t>(req.core); // E grant
        } else {
            entry->sharers |= req_bit;
        }
    }

    // Decide the fill state before touching the L2: installL2 may
    // erase a victim's directory entry, and FlatMap's backward-shift
    // deletion can relocate `entry`.
    const MesiState fill_state =
        is_write ? MesiState::Modified
                 : (entry->owner == static_cast<std::int32_t>(req.core)
                        ? MesiState::Exclusive
                        : MesiState::Shared);
    entry = nullptr;

    // Point-to-point timing, independent of the core count (contrast
    // with the snoopy ring's numCores * ringHopDelay traversal).
    const std::uint32_t hop = 2 * cfg_.uncore.ringHopDelay;
    std::uint32_t latency;
    if (upgrade) {
        stats_.counter("dir_upgrades")++;
        latency = 2 * hop + 1; // requester <-> home invalidation round
    } else if (forwarded) {
        // requester -> home -> owner -> requester
        latency = 3 * hop + cfg_.l1.hitLatency;
        installL2(line); // inclusion: the supplier writes through
    } else {
        const bool l2_hit = installL2(line);
        latency = 2 * hop + cfg_.uncore.l2Latency;
        if (!l2_hit)
            latency += cfg_.uncore.memLatency;
    }

    mshr->granted = true;
    mshr->fillState = fill_state;
    inflight_.insert(line);

    // Deliver snoops to the routed cores before serializing this
    // transaction's own accesses (invariant: dependence sources get
    // smaller stamps than the dependent performs).
    if (targets != 0) {
        SnoopEvent ev{req.core, line,          is_write,
                      false,    clock_.next(), now_};
        for (sim::CoreId c = 0; c < cfg_.numCores; ++c) {
            if (!((targets >> c) & 1))
                continue;
            ev.observerHadLine = had_line[c];
            deliverSnoopTo(c, ev);
        }
    }

    // Serialize the accesses this transaction satisfies; a GetS cannot
    // satisfy writers (they replay after the fill).
    std::vector<PendingAccess> leftover;
    const sim::Cycle done_at = now_ + latency;
    for (const PendingAccess &acc : mshr->waiting) {
        if (is_write || !isWriteKind(acc.kind)) {
            const std::uint64_t v = serialize(req.core, acc);
            scheduleHitDone(req.core, acc, v, done_at);
        } else {
            leftover.push_back(acc);
        }
    }
    mshr->waiting = std::move(leftover);

    Event fill{};
    fill.when = done_at;
    fill.type = Event::Fill;
    fill.mshr = mshr;
    fill.core = req.core;
    schedule(fill);
}

bool
DirectoryMemorySystem::installL2(sim::Addr line)
{
    if (CacheArray::Line *hit = l2_.find(line)) {
        l2_.touch(*hit);
        stats_.counter("l2_hits")++;
        return true;
    }
    stats_.counter("l2_misses")++;
    const auto blocked = [this](sim::Addr victim) {
        return inflight_.count(victim) > 0 || lineHasAnyMshr(victim);
    };
    CacheArray::Line *way = l2_.victimFor(line, blocked);
    RR_ASSERT(way, "L2 victim availability checked at grant");
    if (way->valid()) {
        const sim::Addr victim = way->tag;
        stats_.counter("l2_evictions")++;
        // Destroying the victim's directory entry destroys every listed
        // core's ability to observe future transactions on the line —
        // the Section 4.3 event. Bump them all conservatively, stale
        // sharers included: any of them may hold performed-but-
        // uncounted accesses to the line.
        if (DirEntry *e = dir_.find(victim)) {
            std::uint64_t listed = e->sharers;
            if (e->owner >= 0)
                listed |= std::uint64_t{1} << e->owner;
            for (sim::CoreId c = 0; c < cfg_.numCores; ++c) {
                if (!((listed >> c) & 1))
                    continue;
                stats_.counter("dir_eviction_bumps")++;
                const std::uint64_t stamp = clock_.next();
                notifyObservers(c, [&](MemoryObserver *obs) {
                    obs->onDirtyEviction(c, victim, stamp);
                });
            }
            dir_.erase(victim);
        }
        // Inclusive L2: back-invalidate every L1 copy of the victim.
        for (sim::CoreId c = 0; c < cfg_.numCores; ++c) {
            CacheArray::Line *l1_line = l1s_[c].find(victim);
            if (!l1_line)
                continue;
            stats_.counter("back_invalidations")++;
            if (l1_line->state == MesiState::Modified)
                busQueue_.push_back(
                    BusRequest{c, victim, BusKind::PutM, nullptr});
            l1_line->state = MesiState::Invalid;
        }
    }
    l2_.install(*way, line, MesiState::Shared);
    return false;
}

} // namespace rr::mem
