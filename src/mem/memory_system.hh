/**
 * @file
 * The coherent memory hierarchy: per-core private L1s, a shared L2, and
 * a ring-based snoopy MESI bus with a single global serialization point.
 *
 * Model summary (see DESIGN.md):
 *  - Every access serializes exactly once: at its L1 hit, or at the bus
 *    grant of the transaction it rides, or at the post-fill replay. At
 *    serialization the access's value is applied to / sampled from the
 *    BackingStore and a PerformEvent is emitted. Stamp order is the
 *    machine's single memory linearization; this yields write atomicity
 *    by construction (paper Observation 1).
 *  - The bus grants at most one transaction per cycle and never grants a
 *    transaction on a line with an in-flight (granted, unfilled)
 *    transaction, mirroring MSHR/transient-state blocking in real
 *    protocols.
 *  - Snoop events are broadcast to every core but the requester at grant
 *    time (ring snoopy: all caches observe all transactions), stamped
 *    just before the transaction's own perform events so that recorder
 *    interval ordering is dependence-consistent.
 *  - Caches hold tags + MESI only; values live in the BackingStore.
 */

#ifndef RR_MEM_MEMORY_SYSTEM_HH
#define RR_MEM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <deque>
#include <list>
#include <queue>
#include <vector>

#include "mem/backing_store.hh"
#include "mem/cache_array.hh"
#include "mem/coherence.hh"
#include "sim/config.hh"
#include "sim/flat_map.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace rr::mem
{

class MemorySystem
{
  public:
    MemorySystem(const sim::MachineConfig &cfg, BackingStore &backing,
                 StampClock &clock);

    /** Register the completion-callback target for a core. */
    void setClient(sim::CoreId core, MemClient *client);

    /**
     * Register a broadcast event observer (tracer, test harness): it
     * receives every perform/snoop/eviction event for every core.
     */
    void addObserver(MemoryObserver *obs);

    /**
     * Register an observer that only cares about one core's events — a
     * perform by @p core, a snoop observed by @p core, or a dirty
     * eviction from @p core 's L1 — as the per-core MRR hubs do. The
     * memory system then routes events directly instead of fanning
     * every event out to every hub (which rejected all but one
     * delivery), turning the O(cores^2) virtual-call pattern on the
     * serialize/snoop hot path into O(cores).
     */
    void addCoreObserver(sim::CoreId core, MemoryObserver *obs);

    /**
     * Whether core @p core can issue an access to @p word_addr this
     * cycle (an MSHR is free, or the access merges into a pending one).
     */
    bool canAccept(sim::CoreId core, sim::Addr word_addr) const;

    /**
     * Issue an access. The caller must have checked canAccept(). The
     * access completes later via MemClient::memCompleted with the same
     * @p tag; its PerformEvent is emitted at its serialization point.
     */
    void access(sim::CoreId core, AccessKind kind, sim::Addr word_addr,
                std::uint64_t store_value, std::uint64_t tag);

    /**
     * Advance one cycle: run the bus grant phase, then fire due
     * completions and fills. Must be called before the cores tick.
     */
    void tick(sim::Cycle now);

    sim::Cycle now() const { return now_; }
    sim::StatSet &stats() { return stats_; }

    /** MESI state of a line in a given core's L1 (for tests). */
    MesiState l1State(sim::CoreId core, sim::Addr line_addr) const;

    /** Number of in-flight bus transactions (for tests). */
    std::size_t inflightCount() const { return inflight_.size(); }

    /** True when no transaction, completion or queued request remains. */
    bool quiescent() const;

  private:
    struct PendingAccess
    {
        AccessKind kind;
        sim::Addr word;
        std::uint64_t storeValue;
        std::uint64_t tag;
    };

    struct Mshr
    {
        sim::Addr line;
        sim::CoreId core;
        BusKind kind;
        bool granted = false;
        MesiState fillState = MesiState::Invalid;
        std::vector<PendingAccess> waiting;
    };

    struct BusRequest
    {
        sim::CoreId core;
        sim::Addr line;
        BusKind kind;
        Mshr *mshr; ///< null for PutM
    };

    struct Event
    {
        sim::Cycle when;
        std::uint64_t order;
        enum Type { HitDone, Fill } type;
        // HitDone payload
        sim::CoreId core;
        std::uint64_t tag;
        AccessKind kind;
        std::uint64_t loadValue;
        // Fill payload
        Mshr *mshr;
    };

    struct EventLater
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return a.when != b.when ? a.when > b.when : a.order > b.order;
        }
    };

    /** Serialize one access: apply/sample value, emit PerformEvent. */
    std::uint64_t serialize(sim::CoreId core, const PendingAccess &acc);

    /** Issue path shared by external accesses and post-fill replays. */
    void accessInternal(sim::CoreId core, const PendingAccess &acc);

    void grantPhase();
    void grant(const BusRequest &req);
    void completeFill(Mshr *mshr);
    void scheduleHitDone(sim::CoreId core, const PendingAccess &acc,
                         std::uint64_t load_value, sim::Cycle when);
    void schedule(Event ev);

    Mshr *mshrFor(sim::CoreId core, sim::Addr line) const;
    std::size_t freeMshrs(sim::CoreId core) const;
    bool lineHasAnyMshr(sim::Addr line) const;

    /** Evict @p way from core @p core 's L1 (PutM + notifications). */
    void evictL1Line(sim::CoreId core, CacheArray::Line &way);

    /** Install @p line into the L2, evicting/back-invalidating. */
    bool installL2(sim::Addr line);

    void emitSnoop(sim::CoreId requester, sim::Addr line, bool is_write,
                   const std::vector<bool> &had_line);

    /**
     * A snoop whose delivery to one core's *recorder-side* observers
     * (coreObservers_) was postponed by fault injection. The broadcast
     * observers saw the event at its original grant cycle, so injected
     * delays perturb only what the recorder hardware observes, never the
     * simulated execution itself.
     */
    struct DelayedSnoop
    {
        sim::Cycle deliverAt;
        sim::CoreId dest;
        SnoopEvent ev;
    };

    /** Fire delayed snoops that are due at now_ (fault injection). */
    void deliverDelayedSnoops();

    const sim::MachineConfig &cfg_;
    BackingStore &backing_;
    StampClock &clock_;
    sim::Cycle now_ = 0;
    std::uint64_t eventOrder_ = 0;

    /** Deliver a perform/snoop/eviction event for @p core. */
    template <typename Fn>
    void
    notifyObservers(sim::CoreId core, Fn &&fn)
    {
        for (auto *obs : coreObservers_[core])
            fn(obs);
        for (auto *obs : observers_)
            fn(obs);
    }

    std::vector<MemClient *> clients_;
    std::vector<MemoryObserver *> observers_;
    std::vector<std::vector<MemoryObserver *>> coreObservers_;

    std::vector<CacheArray> l1s_;
    CacheArray l2_;

    std::vector<std::list<Mshr>> mshrs_; // per core
    /**
     * Per-core line -> MSHR index, probed on every access (merge
     * check) and every canAccept(); open-addressing flat maps keep the
     * lookup a single short probe instead of an unordered_map's
     * node-pointer chase.
     */
    std::vector<sim::FlatMap<Mshr *>> mshrByLine_;
    sim::FlatMap<std::uint32_t> lineMshrCount_;

    std::deque<BusRequest> busQueue_;
    /** FIFO by construction: the injected delay is one fixed constant. */
    std::deque<DelayedSnoop> delayedSnoops_;
    sim::FlatSet inflight_;
    std::priority_queue<Event, std::vector<Event>, EventLater> events_;

    sim::StatSet stats_;
};

} // namespace rr::mem

#endif // RR_MEM_MEMORY_SYSTEM_HH
