/**
 * @file
 * The cache-hierarchy half of the memory system, shared by both
 * coherence backends, and the ring-based snoopy MESI backend.
 *
 * Model summary (see DESIGN.md and docs/COHERENCE.md):
 *  - Every access serializes exactly once: at its L1 hit, or at the
 *    grant of the transaction it rides, or at the post-fill replay. At
 *    serialization the access's value is applied to / sampled from the
 *    BackingStore and a PerformEvent is emitted. Stamp order is the
 *    machine's single memory linearization; this yields write atomicity
 *    by construction (paper Observation 1).
 *  - Requests are never granted on a line with an in-flight (granted,
 *    unfilled) transaction, mirroring MSHR/transient-state blocking in
 *    real protocols. The snoopy bus grants at most one transaction per
 *    cycle; the directory backend (directory.hh) grants one per home
 *    bank per cycle.
 *  - Snoopy: snoop events are broadcast to every core but the requester
 *    at grant time (ring snoopy: all caches observe all transactions),
 *    stamped just before the transaction's own perform events so that
 *    recorder interval ordering is dependence-consistent.
 *  - Caches hold tags + MESI only; values live in the BackingStore.
 */

#ifndef RR_MEM_MEMORY_SYSTEM_HH
#define RR_MEM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <deque>
#include <list>
#include <queue>
#include <vector>

#include "mem/backing_store.hh"
#include "mem/cache_array.hh"
#include "mem/coherence.hh"
#include "sim/config.hh"
#include "sim/flat_map.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace rr::mem
{

/**
 * Everything both backends share: the per-core L1s, the inclusive
 * shared L2, MSHRs with same-line merging, the event queue that fires
 * completions and fills, and the fault-injection-aware snoop delivery.
 * A backend supplies the request-processing policy (processRequests)
 * and may refine the eviction/install paths.
 */
class CacheMemorySystem : public CoherenceProtocol
{
  public:
    CacheMemorySystem(const sim::MachineConfig &cfg, BackingStore &backing,
                      StampClock &clock);

    bool canAccept(sim::CoreId core, sim::Addr word_addr) const override;

    void access(sim::CoreId core, AccessKind kind, sim::Addr word_addr,
                std::uint64_t store_value, std::uint64_t tag) override;

    void tick(sim::Cycle now) override;

    MesiState l1State(sim::CoreId core, sim::Addr line_addr) const override;

    std::size_t inflightCount() const override { return inflight_.size(); }

    bool quiescent() const override;

  protected:
    struct Mshr
    {
        sim::Addr line;
        sim::CoreId core;
        BusKind kind;
        bool granted = false;
        MesiState fillState = MesiState::Invalid;
        std::vector<PendingAccess> waiting;
    };

    struct BusRequest
    {
        sim::CoreId core;
        sim::Addr line;
        BusKind kind;
        Mshr *mshr; ///< null for PutM
    };

    struct Event
    {
        sim::Cycle when;
        std::uint64_t order;
        enum Type { HitDone, Fill } type;
        // HitDone payload
        sim::CoreId core;
        std::uint64_t tag;
        AccessKind kind;
        std::uint64_t loadValue;
        // Fill payload
        Mshr *mshr;
    };

    struct EventLater
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return a.when != b.when ? a.when > b.when : a.order > b.order;
        }
    };

    /**
     * Grant queued requests for this cycle (the per-protocol policy:
     * one bus grant for the snoopy ring, one grant per home bank for
     * the directory). Runs before due events fire.
     */
    virtual void processRequests() = 0;

    /** Issue path shared by external accesses and post-fill replays. */
    void accessInternal(sim::CoreId core, const PendingAccess &acc);

    void completeFill(Mshr *mshr);
    void scheduleHitDone(sim::CoreId core, const PendingAccess &acc,
                         std::uint64_t load_value, sim::Cycle when);
    void schedule(Event ev);

    Mshr *mshrFor(sim::CoreId core, sim::Addr line) const;
    std::size_t freeMshrs(sim::CoreId core) const;
    bool lineHasAnyMshr(sim::Addr line) const;

    /**
     * Whether @p req may be granted now: its line has no in-flight
     * transaction and (for fills) the L2 can produce a victim way.
     */
    bool grantBlocked(const BusRequest &req) const;

    /** Evict @p way from core @p core 's L1 (PutM + notifications). */
    virtual void evictL1Line(sim::CoreId core, CacheArray::Line &way);

    /** Install @p line into the L2, evicting/back-invalidating. */
    virtual bool installL2(sim::Addr line);

    /**
     * Deliver one snoop to core @p dest 's observers, consulting the
     * fault injector: an injected drop or delay perturbs only what the
     * *recorder-side* observers (coreObservers_) see — the broadcast
     * observers (tracers, ground-truth listeners) always see the event
     * at its true cycle, so the simulated execution is unperturbed and
     * only the recorded log degrades.
     */
    void deliverSnoopTo(sim::CoreId dest, const SnoopEvent &ev);

    std::uint64_t eventOrder_ = 0;

    std::vector<CacheArray> l1s_;
    CacheArray l2_;

    std::vector<std::list<Mshr>> mshrs_; // per core
    /**
     * Per-core line -> MSHR index, probed on every access (merge
     * check) and every canAccept(); open-addressing flat maps keep the
     * lookup a single short probe instead of an unordered_map's
     * node-pointer chase.
     */
    std::vector<sim::FlatMap<Mshr *>> mshrByLine_;
    sim::FlatMap<std::uint32_t> lineMshrCount_;

    std::deque<BusRequest> busQueue_;
    sim::FlatSet inflight_;
    std::priority_queue<Event, std::vector<Event>, EventLater> events_;

  private:
    /**
     * A snoop whose delivery to one core's *recorder-side* observers
     * was postponed by fault injection; see deliverSnoopTo.
     */
    struct DelayedSnoop
    {
        sim::Cycle deliverAt;
        sim::CoreId dest;
        SnoopEvent ev;
    };

    /** Fire delayed snoops that are due at now_ (fault injection). */
    void deliverDelayedSnoops();

    /** FIFO by construction: the injected delay is one fixed constant. */
    std::deque<DelayedSnoop> delayedSnoops_;
};

/** The ring-based snoopy MESI backend (sim::CoherenceKind::Snoopy). */
class SnoopyMemorySystem final : public CacheMemorySystem
{
  public:
    using CacheMemorySystem::CacheMemorySystem;

  private:
    void processRequests() override;
    void grant(const BusRequest &req);
    void emitSnoop(sim::CoreId requester, sim::Addr line, bool is_write,
                   const std::vector<bool> &had_line);
};

} // namespace rr::mem

#endif // RR_MEM_MEMORY_SYSTEM_HH
