/**
 * @file
 * A Program is the unit of work a core executes: an instruction vector
 * shared by all threads plus per-thread entry points and an initial data
 * image. Workloads are Programs produced by the Assembler DSL.
 */

#ifndef RR_ISA_PROGRAM_HH
#define RR_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "sim/types.hh"

namespace rr::isa
{

/** Initial register conventions for thread startup. */
inline constexpr Reg kRegThreadId = 1;  ///< r1 = thread id
inline constexpr Reg kRegNumThreads = 2; ///< r2 = number of threads

/** A complete executable image. */
struct Program
{
    /** Shared code; threads are distinguished by entry PC and r1. */
    std::vector<Instruction> code;
    /** Entry PC per thread; threads beyond the vector reuse entry 0. */
    std::vector<std::uint64_t> entries;
    /** Initial memory image: 8-byte-aligned word address -> value. */
    std::map<sim::Addr, std::uint64_t> initialData;
    /** Label table kept for diagnostics. */
    std::map<std::string, std::uint64_t> labels;

    std::uint64_t
    entryFor(std::uint32_t tid) const
    {
        if (entries.empty())
            return 0;
        return entries[tid < entries.size() ? tid : 0];
    }

    const Instruction &
    at(std::uint64_t pc) const
    {
        return code.at(pc);
    }

    std::uint64_t size() const { return code.size(); }
};

/**
 * Architectural per-thread execution context used by the functional
 * interpreter and the replayer.
 */
struct ExecContext
{
    std::uint64_t pc = 0;
    std::uint64_t regs[kNumRegs] = {};
    bool halted = false;
    /** Retired (architecturally executed) instruction count. */
    std::uint64_t instructions = 0;

    std::uint64_t readReg(Reg r) const { return r == 0 ? 0 : regs[r]; }

    void
    writeReg(Reg r, std::uint64_t v)
    {
        if (r != 0)
            regs[r] = v;
    }
};

/** Memory interface for functional execution. */
class MemoryIf
{
  public:
    virtual ~MemoryIf() = default;
    virtual std::uint64_t read64(sim::Addr a) = 0;
    virtual void write64(sim::Addr a, std::uint64_t v) = 0;
};

/**
 * Functionally execute exactly one instruction. Atomics are performed as
 * a read followed by a write on @p mem (functional execution is single-
 * stepped, so this is atomic by construction).
 *
 * @return the instruction that was executed.
 */
const Instruction &step(const Program &prog, ExecContext &ctx,
                        MemoryIf &mem);

/**
 * Pure ALU evaluation shared by the interpreter and the OoO core:
 * computes the result of a non-memory, non-control instruction.
 */
std::uint64_t evalAlu(const Instruction &inst, std::uint64_t rs1,
                      std::uint64_t rs2);

/**
 * Evaluate a conditional branch: true iff taken.
 */
bool evalBranch(const Instruction &inst, std::uint64_t rs1,
                std::uint64_t rs2);

} // namespace rr::isa

#endif // RR_ISA_PROGRAM_HH
