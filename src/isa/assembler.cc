#include "isa/assembler.hh"

#include "sim/logging.hh"

namespace rr::isa
{

void
Assembler::label(const std::string &name)
{
    auto [it, inserted] = labels_.emplace(name, code_.size());
    if (!inserted)
        sim::fatal("assembler: duplicate label '%s'", name.c_str());
}

void
Assembler::entry(std::uint32_t tid)
{
    entries_[tid] = code_.size();
}

void
Assembler::data(sim::Addr addr, std::uint64_t value)
{
    data_[sim::wordAddr(addr)] = value;
}

Program
Assembler::assemble()
{
    for (const auto &fix : fixups_) {
        auto it = labels_.find(fix.target);
        if (it == labels_.end())
            sim::fatal("assembler: undefined label '%s'",
                       fix.target.c_str());
        code_[fix.index].imm = static_cast<std::int64_t>(it->second);
    }

    Program prog;
    prog.code = code_;
    prog.initialData = data_;
    prog.labels = labels_;
    if (entries_.empty()) {
        prog.entries = {0};
    } else {
        std::uint32_t max_tid = entries_.rbegin()->first;
        prog.entries.assign(max_tid + 1, 0);
        std::uint64_t last = entries_.count(0) ? entries_.at(0) : 0;
        for (std::uint32_t t = 0; t <= max_tid; ++t) {
            auto it = entries_.find(t);
            if (it != entries_.end())
                last = it->second;
            prog.entries[t] = last;
        }
    }
    return prog;
}

} // namespace rr::isa
