#include "isa/program.hh"

#include "sim/logging.hh"

namespace rr::isa
{

std::uint64_t
evalAlu(const Instruction &inst, std::uint64_t rs1, std::uint64_t rs2)
{
    const std::uint64_t imm = static_cast<std::uint64_t>(inst.imm);
    switch (inst.op) {
      case Opcode::Li: return imm;
      case Opcode::Add: return rs1 + rs2;
      case Opcode::Sub: return rs1 - rs2;
      case Opcode::Mul: return rs1 * rs2;
      case Opcode::And: return rs1 & rs2;
      case Opcode::Or: return rs1 | rs2;
      case Opcode::Xor: return rs1 ^ rs2;
      case Opcode::Sll: return rs1 << (rs2 & 63);
      case Opcode::Srl: return rs1 >> (rs2 & 63);
      case Opcode::Slt:
        return static_cast<std::int64_t>(rs1) <
                       static_cast<std::int64_t>(rs2)
                   ? 1
                   : 0;
      case Opcode::Sltu: return rs1 < rs2 ? 1 : 0;
      case Opcode::Addi: return rs1 + imm;
      case Opcode::Andi: return rs1 & imm;
      case Opcode::Ori: return rs1 | imm;
      case Opcode::Xori: return rs1 ^ imm;
      case Opcode::Slli: return rs1 << (imm & 63);
      case Opcode::Srli: return rs1 >> (imm & 63);
      default:
        sim::panic("evalAlu: not an ALU opcode: %s", mnemonic(inst.op));
    }
}

bool
evalBranch(const Instruction &inst, std::uint64_t rs1, std::uint64_t rs2)
{
    switch (inst.op) {
      case Opcode::Beq: return rs1 == rs2;
      case Opcode::Bne: return rs1 != rs2;
      case Opcode::Blt:
        return static_cast<std::int64_t>(rs1) <
               static_cast<std::int64_t>(rs2);
      case Opcode::Bge:
        return static_cast<std::int64_t>(rs1) >=
               static_cast<std::int64_t>(rs2);
      default:
        sim::panic("evalBranch: not a branch: %s", mnemonic(inst.op));
    }
}

const Instruction &
step(const Program &prog, ExecContext &ctx, MemoryIf &mem)
{
    RR_ASSERT(!ctx.halted, "stepping a halted context");
    RR_ASSERT(ctx.pc < prog.size(), "pc %llu out of range",
              static_cast<unsigned long long>(ctx.pc));

    const Instruction &inst = prog.code[ctx.pc];
    const std::uint64_t rs1 = ctx.readReg(inst.rs1);
    const std::uint64_t rs2 = ctx.readReg(inst.rs2);
    std::uint64_t next_pc = ctx.pc + 1;

    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Fence:
        break;
      case Opcode::Ld:
        ctx.writeReg(inst.rd, mem.read64(sim::wordAddr(rs1 + inst.imm)));
        break;
      case Opcode::St:
        mem.write64(sim::wordAddr(rs1 + inst.imm), rs2);
        break;
      case Opcode::Xchg: {
        const sim::Addr a = sim::wordAddr(rs1 + inst.imm);
        const std::uint64_t old = mem.read64(a);
        mem.write64(a, rs2);
        ctx.writeReg(inst.rd, old);
        break;
      }
      case Opcode::Fadd: {
        const sim::Addr a = sim::wordAddr(rs1 + inst.imm);
        const std::uint64_t old = mem.read64(a);
        mem.write64(a, old + rs2);
        ctx.writeReg(inst.rd, old);
        break;
      }
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        if (evalBranch(inst, rs1, rs2))
            next_pc = static_cast<std::uint64_t>(inst.imm);
        break;
      case Opcode::Jmp:
        next_pc = static_cast<std::uint64_t>(inst.imm);
        break;
      case Opcode::Jal:
        ctx.writeReg(inst.rd, ctx.pc + 1);
        next_pc = static_cast<std::uint64_t>(inst.imm);
        break;
      case Opcode::Jr:
        next_pc = rs1;
        break;
      case Opcode::Halt:
        ctx.halted = true;
        next_pc = ctx.pc;
        break;
      default:
        ctx.writeReg(inst.rd, evalAlu(inst, rs1, rs2));
        break;
    }

    ctx.pc = next_pc;
    ++ctx.instructions;
    return inst;
}

} // namespace rr::isa
