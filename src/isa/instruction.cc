#include "isa/instruction.hh"

#include "sim/logging.hh"

namespace rr::isa
{

bool
Instruction::readsRs1() const
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::Li:
      case Opcode::Jmp:
      case Opcode::Jal:
      case Opcode::Fence:
      case Opcode::Halt:
        return false;
      default:
        return true;
    }
}

bool
Instruction::readsRs2() const
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Slt:
      case Opcode::Sltu:
      case Opcode::St:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Xchg:
      case Opcode::Fadd:
        return true;
      default:
        return false;
    }
}

const char *
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Li: return "li";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::Slt: return "slt";
      case Opcode::Sltu: return "sltu";
      case Opcode::Addi: return "addi";
      case Opcode::Andi: return "andi";
      case Opcode::Ori: return "ori";
      case Opcode::Xori: return "xori";
      case Opcode::Slli: return "slli";
      case Opcode::Srli: return "srli";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Jmp: return "jmp";
      case Opcode::Jal: return "jal";
      case Opcode::Jr: return "jr";
      case Opcode::Xchg: return "xchg";
      case Opcode::Fadd: return "fadd";
      case Opcode::Fence: return "fence";
      case Opcode::Halt: return "halt";
    }
    return "?";
}

std::string
disassemble(const Instruction &inst)
{
    using sim::strfmt;
    const char *m = mnemonic(inst.op);
    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Fence:
      case Opcode::Halt:
        return m;
      case Opcode::Li:
        return strfmt("%s r%u, %lld", m, inst.rd,
                      static_cast<long long>(inst.imm));
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Slt:
      case Opcode::Sltu:
        return strfmt("%s r%u, r%u, r%u", m, inst.rd, inst.rs1, inst.rs2);
      case Opcode::Addi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Slli:
      case Opcode::Srli:
        return strfmt("%s r%u, r%u, %lld", m, inst.rd, inst.rs1,
                      static_cast<long long>(inst.imm));
      case Opcode::Ld:
        return strfmt("%s r%u, %lld(r%u)", m, inst.rd,
                      static_cast<long long>(inst.imm), inst.rs1);
      case Opcode::St:
        return strfmt("%s r%u, %lld(r%u)", m, inst.rs2,
                      static_cast<long long>(inst.imm), inst.rs1);
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        return strfmt("%s r%u, r%u, @%lld", m, inst.rs1, inst.rs2,
                      static_cast<long long>(inst.imm));
      case Opcode::Jmp:
        return strfmt("%s @%lld", m, static_cast<long long>(inst.imm));
      case Opcode::Jal:
        return strfmt("%s r%u, @%lld", m, inst.rd,
                      static_cast<long long>(inst.imm));
      case Opcode::Jr:
        return strfmt("%s r%u", m, inst.rs1);
      case Opcode::Xchg:
      case Opcode::Fadd:
        return strfmt("%s r%u, r%u, %lld(r%u)", m, inst.rd, inst.rs2,
                      static_cast<long long>(inst.imm), inst.rs1);
    }
    return "?";
}

} // namespace rr::isa
