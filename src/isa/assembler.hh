/**
 * @file
 * A small in-memory assembler for the micro-ISA. Workloads build code
 * through named-label method calls; assemble() resolves forward
 * references and returns an immutable Program.
 *
 * Example:
 * @code
 *     Assembler a;
 *     a.li(3, 100);
 *     a.label("loop");
 *     a.addi(3, 3, -1);
 *     a.bne(3, 0, "loop");
 *     a.halt();
 *     Program p = a.assemble();
 * @endcode
 */

#ifndef RR_ISA_ASSEMBLER_HH
#define RR_ISA_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace rr::isa
{

class Assembler
{
  public:
    /** Define a label at the current position. Names must be unique. */
    void label(const std::string &name);

    /** Current position (index of the next emitted instruction). */
    std::uint64_t here() const { return code_.size(); }

    /** @name Instruction emitters */
    ///@{
    void nop() { emit({Opcode::Nop, 0, 0, 0, 0}); }
    void li(Reg rd, std::int64_t imm) { emit({Opcode::Li, rd, 0, 0, imm}); }
    void add(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Add, rd, rs1, rs2); }
    void sub(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Sub, rd, rs1, rs2); }
    void mul(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Mul, rd, rs1, rs2); }
    void and_(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::And, rd, rs1, rs2); }
    void or_(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Or, rd, rs1, rs2); }
    void xor_(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Xor, rd, rs1, rs2); }
    void sll(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Sll, rd, rs1, rs2); }
    void srl(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Srl, rd, rs1, rs2); }
    void slt(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Slt, rd, rs1, rs2); }
    void sltu(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Sltu, rd, rs1, rs2); }
    void addi(Reg rd, Reg rs1, std::int64_t imm)
    {
        emit({Opcode::Addi, rd, rs1, 0, imm});
    }
    void andi(Reg rd, Reg rs1, std::int64_t imm)
    {
        emit({Opcode::Andi, rd, rs1, 0, imm});
    }
    void ori(Reg rd, Reg rs1, std::int64_t imm)
    {
        emit({Opcode::Ori, rd, rs1, 0, imm});
    }
    void xori(Reg rd, Reg rs1, std::int64_t imm)
    {
        emit({Opcode::Xori, rd, rs1, 0, imm});
    }
    void slli(Reg rd, Reg rs1, std::int64_t imm)
    {
        emit({Opcode::Slli, rd, rs1, 0, imm});
    }
    void srli(Reg rd, Reg rs1, std::int64_t imm)
    {
        emit({Opcode::Srli, rd, rs1, 0, imm});
    }
    void ld(Reg rd, Reg base, std::int64_t off)
    {
        emit({Opcode::Ld, rd, base, 0, off});
    }
    void st(Reg value, Reg base, std::int64_t off)
    {
        emit({Opcode::St, 0, base, value, off});
    }
    void beq(Reg a, Reg b, const std::string &target)
    {
        emitBranch(Opcode::Beq, a, b, target);
    }
    void bne(Reg a, Reg b, const std::string &target)
    {
        emitBranch(Opcode::Bne, a, b, target);
    }
    void blt(Reg a, Reg b, const std::string &target)
    {
        emitBranch(Opcode::Blt, a, b, target);
    }
    void bge(Reg a, Reg b, const std::string &target)
    {
        emitBranch(Opcode::Bge, a, b, target);
    }
    void jmp(const std::string &target)
    {
        emitBranch(Opcode::Jmp, 0, 0, target);
    }
    void jal(Reg rd, const std::string &target)
    {
        fixups_.push_back({code_.size(), target});
        emit({Opcode::Jal, rd, 0, 0, 0});
    }
    void jr(Reg rs1) { emit({Opcode::Jr, 0, rs1, 0, 0}); }
    void xchg(Reg rd, Reg value, Reg base, std::int64_t off)
    {
        emit({Opcode::Xchg, rd, base, value, off});
    }
    void fadd(Reg rd, Reg value, Reg base, std::int64_t off)
    {
        emit({Opcode::Fadd, rd, base, value, off});
    }
    void fence() { emit({Opcode::Fence, 0, 0, 0, 0}); }
    void halt() { emit({Opcode::Halt, 0, 0, 0, 0}); }
    ///@}

    /** Mark the current position as the entry point of thread tid. */
    void entry(std::uint32_t tid);

    /** Pre-initialize a word of memory in the program image. */
    void data(sim::Addr addr, std::uint64_t value);

    /** Resolve all label references and return the finished Program. */
    Program assemble();

  private:
    void emit(Instruction inst) { code_.push_back(inst); }

    void
    emitR(Opcode op, Reg rd, Reg rs1, Reg rs2)
    {
        emit({op, rd, rs1, rs2, 0});
    }

    void
    emitBranch(Opcode op, Reg a, Reg b, const std::string &target)
    {
        fixups_.push_back({code_.size(), target});
        emit({op, 0, a, b, 0});
    }

    struct Fixup
    {
        std::uint64_t index;
        std::string target;
    };

    std::vector<Instruction> code_;
    std::vector<Fixup> fixups_;
    std::map<std::string, std::uint64_t> labels_;
    std::map<std::uint32_t, std::uint64_t> entries_;
    std::map<sim::Addr, std::uint64_t> data_;
};

} // namespace rr::isa

#endif // RR_ISA_ASSEMBLER_HH
