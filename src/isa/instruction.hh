/**
 * @file
 * The micro-ISA: a small RISC-like instruction set rich enough to express
 * the SPLASH-2-style workloads (ALU ops, 8-byte loads/stores, branches,
 * atomic exchange / fetch-add, fences) while staying trivial to decode.
 *
 * Registers: 32 64-bit integer registers; r0 is hardwired to zero.
 * All memory operands are 8-byte aligned words at address rs1 + imm.
 * Branch/jump targets are absolute instruction indices (label-resolved
 * by the Assembler).
 */

#ifndef RR_ISA_INSTRUCTION_HH
#define RR_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

namespace rr::isa
{

/** Number of architectural integer registers. */
inline constexpr std::uint32_t kNumRegs = 32;

/** Register index. */
using Reg = std::uint8_t;

enum class Opcode : std::uint8_t
{
    Nop,
    Li,    ///< rd = imm (full 64-bit immediate)
    Add,   ///< rd = rs1 + rs2
    Sub,   ///< rd = rs1 - rs2
    Mul,   ///< rd = rs1 * rs2
    And,   ///< rd = rs1 & rs2
    Or,    ///< rd = rs1 | rs2
    Xor,   ///< rd = rs1 ^ rs2
    Sll,   ///< rd = rs1 << (rs2 & 63)
    Srl,   ///< rd = rs1 >> (rs2 & 63), logical
    Slt,   ///< rd = (int64)rs1 < (int64)rs2
    Sltu,  ///< rd = rs1 < rs2, unsigned
    Addi,  ///< rd = rs1 + imm
    Andi,  ///< rd = rs1 & imm
    Ori,   ///< rd = rs1 | imm
    Xori,  ///< rd = rs1 ^ imm
    Slli,  ///< rd = rs1 << (imm & 63)
    Srli,  ///< rd = rs1 >> (imm & 63)
    Ld,    ///< rd = mem64[rs1 + imm]
    St,    ///< mem64[rs1 + imm] = rs2
    Beq,   ///< if (rs1 == rs2) pc = imm
    Bne,   ///< if (rs1 != rs2) pc = imm
    Blt,   ///< if ((int64)rs1 < (int64)rs2) pc = imm
    Bge,   ///< if ((int64)rs1 >= (int64)rs2) pc = imm
    Jmp,   ///< pc = imm
    Jal,   ///< rd = pc + 1; pc = imm
    Jr,    ///< pc = rs1
    Xchg,  ///< rd = mem64[rs1 + imm]; mem64[rs1 + imm] = rs2 (atomic)
    Fadd,  ///< rd = mem64[rs1 + imm]; mem64[rs1 + imm] += rs2 (atomic)
    Fence, ///< full memory fence: drains write buffer, orders all accesses
    Halt,  ///< terminate this thread
};

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    Reg rd = 0;
    Reg rs1 = 0;
    Reg rs2 = 0;
    /** Immediate operand, or absolute branch/jump target index. */
    std::int64_t imm = 0;

    bool isLoad() const { return op == Opcode::Ld; }
    bool isStore() const { return op == Opcode::St; }
    bool isAtomic() const { return op == Opcode::Xchg || op == Opcode::Fadd; }
    /** Any instruction that accesses memory (load, store or atomic). */
    bool isMem() const { return isLoad() || isStore() || isAtomic(); }
    bool isFence() const { return op == Opcode::Fence; }
    bool isHalt() const { return op == Opcode::Halt; }

    /** Conditional branches only (not unconditional jumps). */
    bool
    isCondBranch() const
    {
        return op == Opcode::Beq || op == Opcode::Bne ||
               op == Opcode::Blt || op == Opcode::Bge;
    }

    /** Any instruction that can redirect the PC. */
    bool
    isControl() const
    {
        return isCondBranch() || op == Opcode::Jmp || op == Opcode::Jal ||
               op == Opcode::Jr;
    }

    /** Control transfer whose target is not known at decode. */
    bool isIndirect() const { return op == Opcode::Jr; }

    /** True iff the instruction writes register rd. */
    bool
    writesRd() const
    {
        switch (op) {
          case Opcode::Nop:
          case Opcode::St:
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge:
          case Opcode::Jmp:
          case Opcode::Jr:
          case Opcode::Fence:
          case Opcode::Halt:
            return false;
          default:
            return rd != 0;
        }
    }

    /** True iff the instruction reads rs1 / rs2. */
    bool readsRs1() const;
    bool readsRs2() const;
};

/** Human-readable rendering, e.g. "add r3, r1, r2". */
std::string disassemble(const Instruction &inst);

const char *mnemonic(Opcode op);

} // namespace rr::isa

#endif // RR_ISA_INSTRUCTION_HH
