/**
 * @file
 * Fundamental scalar types and address helpers shared by every module.
 */

#ifndef RR_SIM_TYPES_HH
#define RR_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace rr::sim
{

/** A point in simulated time, measured in core clock cycles. */
using Cycle = std::uint64_t;

/** A byte address in the simulated flat 64-bit physical address space. */
using Addr = std::uint64_t;

/** Identifier of a core (and of its private cache / MRR). */
using CoreId = std::uint32_t;

/**
 * Dynamic-instruction sequence number, unique per core and monotonically
 * increasing in fetch order. Squashed (wrong-path) instructions consume
 * sequence numbers too; numbers are never reused.
 */
using SeqNum = std::uint64_t;

/** Interval sequence number (the paper's CISN/PISN values). */
using Isn = std::uint64_t;

/** Sentinel for "no cycle / not yet happened". */
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for invalid sequence numbers. */
inline constexpr SeqNum kNoSeqNum = std::numeric_limits<SeqNum>::max();

/** Cache line size, bytes. Fixed at 32B per the paper's Table 1. */
inline constexpr std::uint32_t kLineBytes = 32;

/** All data accesses are 8-byte words. */
inline constexpr std::uint32_t kWordBytes = 8;

/** Line-align a byte address. */
constexpr Addr
lineAddr(Addr a)
{
    return a & ~static_cast<Addr>(kLineBytes - 1);
}

/** Word-align a byte address. */
constexpr Addr
wordAddr(Addr a)
{
    return a & ~static_cast<Addr>(kWordBytes - 1);
}

/** True iff two byte addresses fall in the same cache line. */
constexpr bool
sameLine(Addr a, Addr b)
{
    return lineAddr(a) == lineAddr(b);
}

} // namespace rr::sim

#endif // RR_SIM_TYPES_HH
