/**
 * @file
 * A chunked bump allocator for decode-time staging. One Arena serves
 * one thread: allocation is a pointer bump, `reset()` recycles every
 * block without returning memory to the OS, and nothing is freed
 * per-object — exactly the lifetime of "all intervals of one log
 * chunk", which are staged here and then bulk-moved into their
 * destination containers. Trivially-destructible payloads only: the
 * arena never runs destructors.
 */

#ifndef RR_SIM_ARENA_HH
#define RR_SIM_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "sim/logging.hh"

namespace rr::sim
{

class Arena
{
  public:
    static constexpr std::size_t kDefaultBlockBytes = 256 * 1024;

    explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
        : blockBytes_(block_bytes)
    {
        RR_ASSERT(block_bytes >= 64, "arena block too small");
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Uninitialized, aligned storage for @p count objects of T. */
    template <typename T>
    T *
    allocArray(std::size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena never runs destructors");
        if (count == 0)
            return nullptr;
        const std::size_t bytes = count * sizeof(T);
        return static_cast<T *>(allocBytes(bytes, alignof(T)));
    }

    /**
     * Recycle every block for reuse. Previously returned pointers are
     * invalidated but the memory stays owned by the arena, so a
     * steady-state decode loop stops allocating after its first chunk.
     */
    void
    reset()
    {
        block_ = 0;
        used_ = 0;
    }

    /** Bytes currently reserved from the OS (capacity, not usage). */
    std::size_t
    capacityBytes() const
    {
        std::size_t total = 0;
        for (const auto &b : blocks_)
            total += b.size;
        return total;
    }

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
    };

    /** Offset of the next @p align -aligned position in the current
     *  block — aligns the actual pointer, not the offset, since block
     *  bases only carry operator-new alignment. */
    std::size_t
    alignedOffset(std::size_t align) const
    {
        const auto base = reinterpret_cast<std::uintptr_t>(
            blocks_[block_].data.get());
        const std::uintptr_t p =
            (base + used_ + align - 1) & ~(std::uintptr_t{align} - 1);
        return static_cast<std::size_t>(p - base);
    }

    void *
    allocBytes(std::size_t bytes, std::size_t align)
    {
        if (blocks_.empty() || block_ >= blocks_.size() ||
            alignedOffset(align) + bytes > blocks_[block_].size)
            advance(bytes + align - 1); // worst-case padding
        const std::size_t aligned = alignedOffset(align);
        void *p = blocks_[block_].data.get() + aligned;
        used_ = aligned + bytes;
        return p;
    }

    /** Move to the next block able to hold @p need bytes, making one
     *  when no recycled block fits (oversized requests get a block of
     *  their own). */
    void
    advance(std::size_t need)
    {
        const std::size_t next = blocks_.empty() ? 0 : block_ + 1;
        if (next < blocks_.size() && blocks_[next].size >= need) {
            block_ = next;
            used_ = 0;
            return;
        }
        Block b;
        b.size = need > blockBytes_ ? need : blockBytes_;
        b.data = std::make_unique<std::byte[]>(b.size);
        blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(next),
                       std::move(b));
        block_ = next;
        used_ = 0;
    }

    std::size_t blockBytes_;
    std::vector<Block> blocks_;
    std::size_t block_ = 0;
    /** Offset into blocks_[block_]; ignored while blocks_ is empty. */
    std::size_t used_ = 0;
};

} // namespace rr::sim

#endif // RR_SIM_ARENA_HH
