/**
 * @file
 * Configuration structs for the simulated machine and the RelaxReplay
 * recorder. Defaults reproduce Table 1 of the paper.
 */

#ifndef RR_SIM_CONFIG_HH
#define RR_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace rr::sim
{

/** Core pipeline parameters (4-way OoO superscalar of Table 1). */
struct CoreConfig
{
    std::uint32_t fetchWidth = 4;
    std::uint32_t dispatchWidth = 4;
    std::uint32_t issueWidth = 4;
    std::uint32_t retireWidth = 4;
    std::uint32_t robEntries = 176;
    std::uint32_t lsqEntries = 128;
    std::uint32_t numLdStUnits = 2;
    std::uint32_t writeBufferEntries = 16;
    /** Extra cycles for a multiply beyond the 1-cycle ALU latency. */
    std::uint32_t mulLatency = 3;
    /** Cycles from mispredict detection to redirected fetch. */
    std::uint32_t branchRedirectPenalty = 3;
    /** Entries in the bimodal (2-bit counter) branch predictor. */
    std::uint32_t predictorEntries = 1024;
    /**
     * Maximum value of the NMI (non-memory instructions since the last
     * memory access) count attached to a TRAQ entry; a 4-bit field per
     * the paper. Longer gaps allocate NMI-group pseudo entries.
     */
    std::uint32_t nmiGroupLimit = 15;
};

/** One cache level. Line size is global (kLineBytes). */
struct CacheConfig
{
    std::uint32_t sizeBytes = 64 * 1024;
    std::uint32_t associativity = 4;
    std::uint32_t mshrEntries = 64;
    /** Round-trip hit latency, cycles. */
    std::uint32_t hitLatency = 2;

    std::uint32_t numSets() const
    {
        return sizeBytes / kLineBytes / associativity;
    }
};

/** Ring interconnect and memory timing (Table 1). */
struct UncoreConfig
{
    /** Per-hop delay on the ring, cycles. */
    std::uint32_t ringHopDelay = 1;
    /** Average L2 round-trip beyond the ring traversal, cycles. */
    std::uint32_t l2Latency = 12;
    /** Memory round-trip from L2, cycles. */
    std::uint32_t memLatency = 150;
};

/**
 * Which coherence backend the machine is built with (Section 4.3: the
 * recorder must work under either; see docs/COHERENCE.md).
 */
enum class CoherenceKind : std::uint8_t
{
    /** Ring-based snoopy MESI: every core observes every transaction. */
    Snoopy,
    /**
     * Home-directory MESI: per-line sharer/owner tracking; only the
     * cores the directory lists receive invalidations/forwards, and
     * losing tracking state (dirty eviction, back-invalidation)
     * triggers the conservative Snoop Table bump of Section 4.3.
     */
    Directory,
};

const char *toString(CoherenceKind kind);

/** Parse "snoopy"/"directory"; returns false on anything else. */
bool parseCoherenceKind(const std::string &text, CoherenceKind &out);

/** Which counting policy a recorder instance uses (Section 3.2). */
enum class RecorderMode
{
    /** Any access whose PISN != CISN at counting is logged as reordered. */
    Base,
    /** Snoop Table filters out accesses nobody observed in between. */
    Opt,
};

const char *toString(RecorderMode mode);

/** RelaxReplay recorder parameters (Table 1, bottom). */
struct RecorderConfig
{
    RecorderMode mode = RecorderMode::Opt;
    /**
     * Maximum interval size in counted instructions; 0 means unbounded
     * (the paper's "INF" configuration).
     */
    std::uint64_t maxIntervalInstructions = 0;
    std::uint32_t traqEntries = 176;
    /** Read/write signatures: 4 x 256-bit Bloom filters with H3 hashes. */
    std::uint32_t signatureBanks = 4;
    std::uint32_t signatureBitsPerBank = 256;
    /** Snoop Table: 2 arrays of 64 16-bit counters (RelaxReplay_Opt). */
    std::uint32_t snoopTableArrays = 2;
    std::uint32_t snoopTableEntries = 64;
    /** Bits in the NMI (non-memory instruction) field of a TRAQ entry. */
    std::uint32_t nmiBits = 4;
    /**
     * Emulate directory coherence's loss of snoop visibility after a
     * dirty eviction by conservatively bumping the Snoop Table counters
     * for evicted dirty lines (Section 4.3).
     */
    bool directoryEvictionBump = false;
    /**
     * Record explicit inter-interval dependencies instead of relying
     * only on the global-timestamp total order (Section 3.6: pairing
     * RelaxReplay with a Cyrus/Karma-style ordering enables parallel
     * replay). When a core responds to or conflicts with another
     * core's transaction, it sends the requester an ordering edge to
     * its latest closed interval; the edges plus same-core program
     * order form a DAG that any topological replay order satisfies.
     */
    bool recordDependencies = false;
};

/** The whole machine. */
struct MachineConfig
{
    std::uint32_t numCores = 8;
    CoreConfig core;
    CacheConfig l1;                  // private, per core
    CacheConfig l2{512 * 1024, 16, 64, 12}; // per-core share of shared L2
    UncoreConfig uncore;
    CoherenceKind coherence = CoherenceKind::Snoopy;
    std::uint64_t seed = 1;

    /** Total shared L2 capacity across all per-core shares. */
    std::uint32_t totalL2Bytes() const { return l2.sizeBytes * numCores; }

    /** Abort with fatal() if the configuration is inconsistent. */
    void validate() const;
};

} // namespace rr::sim

#endif // RR_SIM_CONFIG_HH
