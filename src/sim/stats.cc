#include "sim/stats.hh"

#include <iomanip>

#include "sim/logging.hh"

namespace rr::sim
{

void
Histogram::merge(const Histogram &o)
{
    RR_ASSERT(binWidth_ == o.binWidth_ && bins_.size() == o.bins_.size(),
              "histogram merge shape mismatch (%llu/%zu vs %llu/%zu)",
              static_cast<unsigned long long>(binWidth_), bins_.size(),
              static_cast<unsigned long long>(o.binWidth_), o.bins_.size());
    for (std::size_t i = 0; i < bins_.size(); ++i)
        bins_[i] += o.bins_[i];
    total_ += o.total_;
}

Histogram &
StatSet::histogram(const std::string &name, std::uint64_t bin_width,
                   std::size_t num_bins)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name, Histogram(bin_width, num_bins))
                 .first;
    }
    return it->second;
}

void
StatSet::mergeFrom(const StatSet &o)
{
    for (const auto &[key, c] : o.counters_)
        counters_[key].merge(c);
    for (const auto &[key, s] : o.scalars_)
        scalars_[key].merge(s);
    for (const auto &[key, h] : o.histograms_)
        histogram(key, h.binWidth(), h.numBins() - 1).merge(h);
}

void
StatSet::print(std::ostream &os) const
{
    for (const auto &[key, c] : counters_)
        os << name_ << "." << key << " " << c.value() << "\n";
    for (const auto &[key, s] : scalars_) {
        os << name_ << "." << key << " mean=" << std::setprecision(6)
           << s.mean() << " min=" << s.min() << " max=" << s.max()
           << " n=" << s.count() << "\n";
    }
    for (const auto &[key, h] : histograms_) {
        os << name_ << "." << key << " histogram n=" << h.total()
           << " width=" << h.binWidth();
        for (std::size_t i = 0; i < h.numBins(); ++i) {
            if (h.binCount(i) == 0)
                continue;
            os << " [" << i * h.binWidth()
               << (i + 1 == h.numBins() ? "+" : "") << "]=" << h.binCount(i);
        }
        os << "\n";
    }
}

namespace
{

void
jsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

/** A double, or `null` for fields of an empty sample stream. */
void
jsonDouble(std::ostream &os, double v, bool is_null)
{
    if (is_null)
        os << "null";
    else
        os << std::setprecision(17) << v;
}

} // namespace

void
StatSet::toJson(std::ostream &os) const
{
    os << "{\"name\":";
    jsonString(os, name_);
    os << ",\"counters\":{";
    bool first = true;
    for (const auto &[key, c] : counters_) {
        if (!first)
            os << ',';
        first = false;
        jsonString(os, key);
        os << ':' << c.value();
    }
    os << "},\"scalars\":{";
    first = true;
    for (const auto &[key, s] : scalars_) {
        if (!first)
            os << ',';
        first = false;
        jsonString(os, key);
        const bool empty = s.count() == 0;
        os << ":{\"count\":" << s.count() << ",\"sum\":";
        jsonDouble(os, s.sum(), false);
        os << ",\"mean\":";
        jsonDouble(os, s.mean(), empty);
        os << ",\"min\":";
        jsonDouble(os, s.min(), empty);
        os << ",\"max\":";
        jsonDouble(os, s.max(), empty);
        os << '}';
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[key, h] : histograms_) {
        if (!first)
            os << ',';
        first = false;
        jsonString(os, key);
        os << ":{\"bin_width\":" << h.binWidth()
           << ",\"total\":" << h.total() << ",\"bins\":[";
        for (std::size_t i = 0; i < h.numBins(); ++i)
            os << (i ? "," : "") << h.binCount(i);
        os << "]}";
    }
    os << "}}";
}

void
StatSet::toCsv(std::ostream &os) const
{
    for (const auto &[key, c] : counters_)
        os << name_ << ',' << key << ",value," << c.value() << "\n";
    for (const auto &[key, s] : scalars_) {
        os << name_ << ',' << key << ",count," << s.count() << "\n";
        os << name_ << ',' << key << ",sum," << std::setprecision(17)
           << s.sum() << "\n";
        const bool empty = s.count() == 0;
        for (const auto &[field, value] :
             {std::pair<const char *, double>{"mean", s.mean()},
              {"min", s.min()},
              {"max", s.max()}}) {
            os << name_ << ',' << key << ',' << field << ',';
            if (!empty)
                os << std::setprecision(17) << value;
            os << "\n";
        }
    }
    for (const auto &[key, h] : histograms_) {
        os << name_ << ',' << key << ",total," << h.total() << "\n";
        for (std::size_t i = 0; i < h.numBins(); ++i) {
            os << name_ << ',' << key << ",bin" << i * h.binWidth() << ','
               << h.binCount(i) << "\n";
        }
    }
}

void
writeStatsJson(std::ostream &os, const std::vector<const StatSet *> &sets)
{
    os << "[";
    for (std::size_t i = 0; i < sets.size(); ++i) {
        os << (i ? ",\n " : "\n ");
        sets[i]->toJson(os);
    }
    os << "\n]";
}

} // namespace rr::sim
