#include "sim/stats.hh"

#include <iomanip>

namespace rr::sim
{

void
StatSet::print(std::ostream &os) const
{
    for (const auto &[key, c] : counters_)
        os << name_ << "." << key << " " << c.value() << "\n";
    for (const auto &[key, s] : scalars_) {
        os << name_ << "." << key << " mean=" << std::setprecision(6)
           << s.mean() << " min=" << s.min() << " max=" << s.max()
           << " n=" << s.count() << "\n";
    }
}

} // namespace rr::sim
