/**
 * @file
 * The one definition of what `--jobs 0` means. Every surface that
 * accepts a worker count (rrsim, the benches, SweepRunner, TaskPool,
 * the parallel replayer and log decoder) resolves it here, so "0 =
 * all host cores" behaves identically everywhere.
 */

#ifndef RR_SIM_JOBS_HH
#define RR_SIM_JOBS_HH

#include <cstdint>
#include <thread>

namespace rr::sim
{

/** Resolve a user-facing job count: 0 means hardware_concurrency(),
 *  and a host that reports 0 cores still yields one worker. */
inline std::uint32_t
resolveJobs(std::uint32_t jobs)
{
    if (jobs != 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : static_cast<std::uint32_t>(hw);
}

} // namespace rr::sim

#endif // RR_SIM_JOBS_HH
