/**
 * @file
 * Lightweight statistics: named counters, scalar samples and binned
 * histograms, grouped into StatSet objects that can be printed, merged
 * hierarchically, and serialized to JSON or CSV for machine-readable
 * experiment output (`rrsim --stats-json`, bench `--stats-json`).
 */

#ifndef RR_SIM_STATS_HH
#define RR_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace rr::sim
{

/** A monotonically increasing named event counter. */
class Counter
{
  public:
    void operator+=(std::uint64_t n) { value_ += n; }
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    /** Fold another counter in (hierarchical aggregation). */
    void merge(const Counter &o) { value_ += o.value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Running mean/min/max of a scalar sample stream (e.g. queue occupancy
 * sampled every cycle).
 *
 * An empty stream has no minimum or maximum: min()/max()/mean() return
 * 0.0 for convenience in arithmetic, but that value is indistinguishable
 * from a real 0 sample — consumers that must tell the two apart check
 * count() == 0 first, and the JSON export serializes the three fields as
 * `null` for empty streams.
 */
class ScalarStat
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (count_ == 1 || v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Fold another sample stream in (hierarchical aggregation). */
    void
    merge(const ScalarStat &o)
    {
        if (o.count_ == 0)
            return;
        if (count_ == 0) {
            *this = o;
            return;
        }
        sum_ += o.sum_;
        count_ += o.count_;
        if (o.min_ < min_)
            min_ = o.min_;
        if (o.max_ > max_)
            max_ = o.max_;
    }

    void
    reset()
    {
        sum_ = min_ = max_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Fixed-bin-width histogram; samples beyond the last bin land in an
 * overflow bucket. Used e.g. for the TRAQ-occupancy distribution of
 * the paper's Figure 12 (bin width 10).
 */
class Histogram
{
  public:
    Histogram() : Histogram(10, 20) {}

    /**
     * @param bin_width Width of each bin.
     * @param num_bins Number of regular bins before the overflow bucket.
     */
    Histogram(std::uint64_t bin_width, std::size_t num_bins)
        : binWidth_(bin_width), bins_(num_bins + 1, 0)
    {
    }

    /** Record one sample. */
    void
    sample(std::uint64_t v)
    {
        std::size_t idx = static_cast<std::size_t>(v / binWidth_);
        if (idx >= bins_.size())
            idx = bins_.size() - 1;
        ++bins_[idx];
        ++total_;
    }

    std::uint64_t binWidth() const { return binWidth_; }
    /** Number of bins, including the final overflow bucket. */
    std::size_t numBins() const { return bins_.size(); }
    std::uint64_t binCount(std::size_t i) const { return bins_.at(i); }
    std::uint64_t total() const { return total_; }

    /** Fraction of all samples that fell into bin i. */
    double
    binFraction(std::size_t i) const
    {
        return total_ ? static_cast<double>(bins_.at(i)) / total_ : 0.0;
    }

    /** Fold another histogram in; shapes must match (asserted). */
    void merge(const Histogram &o);

  private:
    std::uint64_t binWidth_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t total_ = 0;
};

/**
 * A named, ordered collection of counters, scalar stats and histograms.
 * Modules own a StatSet and register their statistics by name; harnesses
 * print, merge or serialize them generically.
 */
class StatSet
{
  public:
    explicit StatSet(std::string name = "") : name_(std::move(name)) {}

    /** Get-or-create a counter by name. */
    Counter &counter(const std::string &name) { return counters_[name]; }
    /** Get-or-create a scalar stat by name. */
    ScalarStat &scalar(const std::string &name) { return scalars_[name]; }
    /**
     * Get-or-create a histogram by name. The shape arguments only apply
     * on creation; an existing histogram is returned as-is.
     */
    Histogram &histogram(const std::string &name,
                         std::uint64_t bin_width = 10,
                         std::size_t num_bins = 20);

    /** Read a counter; returns 0 when absent. */
    std::uint64_t
    counterValue(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second.value();
    }

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, ScalarStat> &scalars() const
    {
        return scalars_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    /**
     * Hierarchical merge: fold every statistic of @p o into this set by
     * name (counters add, scalar streams combine, histogram bins add).
     * The other set's name is ignored.
     */
    void mergeFrom(const StatSet &o);

    /** Pretty-print all statistics, one per line, prefixed by set name. */
    void print(std::ostream &os) const;

    /**
     * Serialize as one JSON object:
     * {"name":..., "counters":{...}, "scalars":{...}, "histograms":{...}}.
     * Empty scalar streams serialize mean/min/max as null (see
     * ScalarStat).
     */
    void toJson(std::ostream &os) const;

    /**
     * Serialize as CSV rows `set,stat,field,value` (one row per counter,
     * per scalar field, and per histogram bin). Empty scalar streams
     * leave the mean/min/max value column empty.
     */
    void toCsv(std::ostream &os) const;

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, ScalarStat> scalars_;
    std::map<std::string, Histogram> histograms_;
};

/**
 * Write several stat sets as one JSON array (the payload of
 * `--stats-json` outputs).
 */
void writeStatsJson(std::ostream &os,
                    const std::vector<const StatSet *> &sets);

} // namespace rr::sim

#endif // RR_SIM_STATS_HH
