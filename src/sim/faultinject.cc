#include "faultinject.hh"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "logging.hh"

namespace rr::sim
{

namespace
{

/** Parse a decimal probability in [0, 1] into parts per million. */
std::uint32_t
parseRatePpm(const std::string &clause, const std::string &value)
{
    std::size_t pos = 0;
    double p = 0.0;
    try {
        p = std::stod(value, &pos);
    } catch (const std::exception &) {
        pos = 0;
    }
    if (pos != value.size() || p < 0.0 || p > 1.0)
        throw std::invalid_argument(
            "fault spec: " + clause + ": expected probability in [0,1], got '"
            + value + "'");
    return static_cast<std::uint32_t>(p * 1e6 + 0.5);
}

/** Parse a non-negative integer, with optional k/m byte suffixes. */
std::uint64_t
parseCount(const std::string &clause, const std::string &value,
           bool allow_suffix)
{
    std::size_t pos = 0;
    unsigned long long n = 0;
    try {
        n = std::stoull(value, &pos);
    } catch (const std::exception &) {
        pos = 0;
    }
    std::uint64_t scale = 1;
    if (allow_suffix && pos == value.size() - 1) {
        char suffix = static_cast<char>(std::tolower(value[pos]));
        if (suffix == 'k')
            scale = 1024, ++pos;
        else if (suffix == 'm')
            scale = 1024 * 1024, ++pos;
    }
    if (value.empty() || pos != value.size())
        throw std::invalid_argument("fault spec: " + clause
                                    + ": expected a count, got '" + value
                                    + "'");
    return static_cast<std::uint64_t>(n) * scale;
}

void
appendClause(std::ostringstream &os, const char *name, double ppm)
{
    if (ppm == 0)
        return;
    if (os.tellp() > 0)
        os << ",";
    os << name << "=" << ppm / 1e6;
}

void
appendCount(std::ostringstream &os, const char *name, std::uint64_t n)
{
    if (n == 0)
        return;
    if (os.tellp() > 0)
        os << ",";
    os << name << "=" << n;
}

} // namespace

bool
FaultPlan::any() const
{
    return dropSnoopPpm || delaySnoopPpm || forceTermPpm || stSaturateAt
           || sigAliasBits || shortWritePpm || ioErrorPpm || enospcPpm
           || fsyncFailures || crashAtByte || logBudgetBytes;
}

std::string
FaultPlan::describe() const
{
    if (!any())
        return "none";
    std::ostringstream os;
    appendClause(os, "drop-snoop", dropSnoopPpm);
    appendClause(os, "delay-snoop", delaySnoopPpm);
    if (delaySnoopPpm)
        appendCount(os, "delay-cycles", delaySnoopCycles);
    appendClause(os, "force-term", forceTermPpm);
    appendCount(os, "st-saturate", stSaturateAt);
    appendCount(os, "alias-sig", sigAliasBits);
    appendClause(os, "short-write", shortWritePpm);
    appendClause(os, "io-error", ioErrorPpm);
    appendClause(os, "enospc", enospcPpm);
    appendCount(os, "fsync-fail", fsyncFailures);
    appendCount(os, "crash-at", crashAtByte);
    appendCount(os, "budget", logBudgetBytes);
    if (os.tellp() > 0)
        os << ",";
    os << "seed=" << seed;
    return os.str();
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t end = spec.find(',', start);
        if (end == std::string::npos)
            end = spec.size();
        std::string clause = spec.substr(start, end - start);
        start = end + 1;
        if (clause.empty())
            continue;
        std::size_t eq = clause.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument("fault spec: clause '" + clause
                                        + "' is not name=value");
        std::string name = clause.substr(0, eq);
        std::string value = clause.substr(eq + 1);
        if (name == "seed") {
            plan.seed = parseCount(clause, value, false);
        } else if (name == "drop-snoop") {
            plan.dropSnoopPpm = parseRatePpm(clause, value);
        } else if (name == "delay-snoop") {
            plan.delaySnoopPpm = parseRatePpm(clause, value);
        } else if (name == "delay-cycles") {
            plan.delaySnoopCycles = static_cast<std::uint32_t>(
                parseCount(clause, value, false));
        } else if (name == "force-term") {
            plan.forceTermPpm = parseRatePpm(clause, value);
        } else if (name == "st-saturate") {
            plan.stSaturateAt = static_cast<std::uint16_t>(
                parseCount(clause, value, false));
        } else if (name == "alias-sig") {
            std::uint64_t bits = parseCount(clause, value, false);
            if (bits > 32)
                throw std::invalid_argument(
                    "fault spec: alias-sig: at most 32 bits");
            plan.sigAliasBits = static_cast<std::uint32_t>(bits);
        } else if (name == "short-write") {
            plan.shortWritePpm = parseRatePpm(clause, value);
        } else if (name == "io-error") {
            plan.ioErrorPpm = parseRatePpm(clause, value);
        } else if (name == "enospc") {
            plan.enospcPpm = parseRatePpm(clause, value);
        } else if (name == "fsync-fail") {
            plan.fsyncFailures = static_cast<std::uint32_t>(
                parseCount(clause, value, false));
        } else if (name == "crash-at") {
            plan.crashAtByte = parseCount(clause, value, true);
        } else if (name == "budget") {
            plan.logBudgetBytes = parseCount(clause, value, true);
        } else {
            throw std::invalid_argument("fault spec: unknown clause '" + name
                                        + "'");
        }
    }
    return plan;
}

std::atomic<FaultInjector *> FaultInjector::injector_{nullptr};

FaultInjector::FaultInjector(const FaultPlan &plan)
    : plan_(plan), rng_(plan.seed), stats_("faults"),
      syncFailuresLeft_(plan.fsyncFailures)
{
}

void
FaultInjector::install(const FaultPlan &plan)
{
    auto *injector = new FaultInjector(plan);
    FaultInjector *expected = nullptr;
    if (!injector_.compare_exchange_strong(expected, injector,
                                           std::memory_order_acq_rel)) {
        delete injector;
        fatal("fault injector already installed");
    }
}

void
FaultInjector::installFromEnv()
{
    const char *spec = std::getenv("RR_FAULTS");
    if (!spec || !*spec || enabled())
        return;
    try {
        install(FaultPlan::parse(spec));
    } catch (const std::invalid_argument &e) {
        fatal("RR_FAULTS: %s", e.what());
    }
}

void
FaultInjector::uninstall()
{
    FaultInjector *injector =
        injector_.exchange(nullptr, std::memory_order_acq_rel);
    delete injector;
}

bool
FaultInjector::roll(std::uint32_t ppm)
{
    // Zero-rate clauses must not advance the RNG: a plan that never
    // fires has to leave the fault sequence of the clauses that do fire
    // unchanged, and an all-zero plan must be indistinguishable from no
    // injector at all.
    if (ppm == 0)
        return false;
    return rng_.below(1000000) < ppm;
}

bool
FaultInjector::dropSnoop(CoreId dest)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!roll(plan_.dropSnoopPpm))
        return false;
    stats_.counter("snoops_dropped")++;
    stats_.counter(strfmt("snoops_dropped_core%u", dest))++;
    return true;
}

bool
FaultInjector::delaySnoop(CoreId dest)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!roll(plan_.delaySnoopPpm))
        return false;
    stats_.counter("snoops_delayed")++;
    stats_.counter(strfmt("snoops_delayed_core%u", dest))++;
    return true;
}

bool
FaultInjector::forceTerminate(CoreId core)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!roll(plan_.forceTermPpm))
        return false;
    stats_.counter("forced_terminations")++;
    stats_.counter(strfmt("forced_terminations_core%u", core))++;
    return true;
}

Addr
FaultInjector::aliasLine(Addr line_addr)
{
    if (plan_.sigAliasBits == 0)
        return line_addr;
    Addr mask = (static_cast<Addr>(1) << plan_.sigAliasBits) - 1;
    return line_addr & ~(mask * kLineBytes);
}

FaultInjector::IoOutcome
FaultInjector::onWrite(std::uint64_t file_offset, std::size_t len)
{
    std::lock_guard<std::mutex> lock(mutex_);
    IoOutcome out;
    if (plan_.crashAtByte && file_offset + len > plan_.crashAtByte) {
        out.kind = IoOutcome::Kind::Crash;
        out.maxBytes = plan_.crashAtByte > file_offset
                           ? plan_.crashAtByte - file_offset
                           : 0;
        stats_.counter("crash_triggered")++;
        return out;
    }
    if (roll(plan_.ioErrorPpm)) {
        out.kind = IoOutcome::Kind::Error;
        out.err = EIO;
        stats_.counter("io_errors")++;
        return out;
    }
    if (roll(plan_.enospcPpm)) {
        out.kind = IoOutcome::Kind::Error;
        out.err = ENOSPC;
        stats_.counter("enospc_errors")++;
        return out;
    }
    if (len > 1 && roll(plan_.shortWritePpm)) {
        out.kind = IoOutcome::Kind::ShortWrite;
        out.maxBytes = 1 + rng_.below(len - 1);
        stats_.counter("short_writes")++;
        return out;
    }
    return out;
}

int
FaultInjector::onSync()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (syncFailuresLeft_ == 0)
        return 0;
    --syncFailuresLeft_;
    stats_.counter("sync_failures")++;
    return EIO;
}

void
FaultInjector::noteDegradation(const char *what)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.counter(what)++;
}

} // namespace rr::sim
