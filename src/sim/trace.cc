#include "sim/trace.hh"

#include <cstdlib>
#include <sstream>

#include "sim/logging.hh"

namespace rr::sim
{

std::atomic<TraceSink *> TraceSink::sink_{nullptr};

TraceSink::TraceSink(std::ofstream out) : out_(std::move(out))
{
    out_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    writeMetadata(kRecordPid, "record (ts = simulated cycles)");
    writeMetadata(kSweepPid, "sweep (ts = wall microseconds)");
}

void
TraceSink::open(const std::string &path)
{
    if (enabled())
        fatal("trace sink already open (--trace given twice?)");
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace file '%s'", path.c_str());
    sink_.store(new TraceSink(std::move(out)), std::memory_order_release);
}

void
TraceSink::openFromEnv()
{
    const char *path = std::getenv("RR_TRACE");
    if (path != nullptr && *path != '\0' && !enabled())
        open(path);
}

void
TraceSink::close()
{
    TraceSink *sink = sink_.exchange(nullptr, std::memory_order_acq_rel);
    if (sink == nullptr)
        return;
    sink->out_ << "\n]}\n";
    sink->out_.close();
    delete sink;
}

namespace
{

/** Append a JSON string literal (keys and values we emit are plain). */
void
appendJsonString(std::ostringstream &os, const char *s)
{
    os << '"';
    for (; *s != '\0'; ++s) {
        if (*s == '"' || *s == '\\')
            os << '\\';
        os << *s;
    }
    os << '"';
}

void
appendArgs(std::ostringstream &os, std::initializer_list<TraceArg> args)
{
    if (args.size() == 0)
        return;
    os << ",\"args\":{";
    bool first = true;
    for (const TraceArg &a : args) {
        if (!first)
            os << ',';
        first = false;
        appendJsonString(os, a.key);
        os << ':';
        if (a.str != nullptr)
            appendJsonString(os, a.str);
        else
            os << a.num;
    }
    os << '}';
}

} // namespace

void
TraceSink::writeEvent(std::uint32_t pid, std::uint32_t tid, const char *cat,
                      const char *name, char ph, std::uint64_t ts,
                      std::uint64_t dur, bool has_dur,
                      std::initializer_list<TraceArg> args)
{
    std::ostringstream os;
    os << "{\"name\":";
    appendJsonString(os, name);
    os << ",\"cat\":";
    appendJsonString(os, cat);
    os << ",\"ph\":\"" << ph << "\"";
    if (ph == 'i') // thread scope keeps Perfetto from drawing a global line
        os << ",\"s\":\"t\"";
    os << ",\"ts\":" << ts;
    if (has_dur)
        os << ",\"dur\":" << dur;
    os << ",\"pid\":" << pid << ",\"tid\":" << tid;
    appendArgs(os, args);
    os << '}';
    writeRaw(os.str());
}

void
TraceSink::writeMetadata(std::uint32_t pid, const char *process_name)
{
    std::ostringstream os;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":";
    appendJsonString(os, process_name);
    os << "}}";
    writeRaw(os.str());
}

void
TraceSink::writeRaw(const std::string &line)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (events_ > 0)
        out_ << ",\n";
    out_ << line;
    ++events_;
}

void
TraceSink::instant(std::uint32_t pid, std::uint32_t tid, const char *cat,
                   const char *name, std::uint64_t ts,
                   std::initializer_list<TraceArg> args)
{
    writeEvent(pid, tid, cat, name, 'i', ts, 0, false, args);
}

void
TraceSink::complete(std::uint32_t pid, std::uint32_t tid, const char *cat,
                    const std::string &name, std::uint64_t ts,
                    std::uint64_t dur, std::initializer_list<TraceArg> args)
{
    writeEvent(pid, tid, cat, name.c_str(), 'X', ts, dur, true, args);
}

void
TraceSink::counter(std::uint32_t pid, std::uint32_t tid, const char *name,
                   std::uint64_t ts, std::uint64_t value)
{
    writeEvent(pid, tid, "counter", name, 'C', ts, 0, false,
               {TraceArg{"value", value}});
}

} // namespace rr::sim
