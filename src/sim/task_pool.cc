#include "sim/task_pool.hh"

#include <chrono>
#include <thread>

namespace rr::sim
{

namespace
{

std::uint32_t
hardwareWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace

TaskPool::TaskPool(std::uint32_t workers)
    : workers_(workers == 0 ? hardwareWorkers() : workers)
{
}

void
TaskPool::submit(Task task)
{
    {
        std::lock_guard lock(mu_);
        if (cancelled_)
            return;
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
TaskPool::cancelPending()
{
    {
        std::lock_guard lock(mu_);
        cancelled_ = true;
        queue_.clear();
    }
    cv_.notify_all();
}

void
TaskPool::workerLoop(std::uint32_t worker_index, DrainStats &stats)
{
    using clock = std::chrono::steady_clock;
    for (;;) {
        std::unique_lock lock(mu_);
        cv_.wait(lock,
                 [this] { return !queue_.empty() || inflight_ == 0; });
        if (queue_.empty())
            return; // inflight_ == 0: nothing left, nothing coming.
        Task task = std::move(queue_.front());
        queue_.pop_front();
        ++inflight_;
        lock.unlock();

        const auto t0 = clock::now();
        task();
        const auto t1 = clock::now();
        stats.workerBusySeconds[worker_index] +=
            std::chrono::duration<double>(t1 - t0).count();
        ++stats.workerTasks[worker_index];

        lock.lock();
        --inflight_;
        const bool done = queue_.empty() && inflight_ == 0;
        lock.unlock();
        if (done)
            cv_.notify_all(); // release workers parked on "in flight"
    }
}

TaskPool::DrainStats
TaskPool::drain()
{
    DrainStats stats;
    stats.workerBusySeconds.assign(workers_, 0.0);
    stats.workerTasks.assign(workers_, 0);

    const auto t0 = std::chrono::steady_clock::now();
    if (workers_ == 1) {
        workerLoop(0, stats);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(workers_ - 1);
        for (std::uint32_t w = 1; w < workers_; ++w)
            threads.emplace_back(
                [this, w, &stats] { workerLoop(w, stats); });
        workerLoop(0, stats);
        for (auto &t : threads)
            t.join();
    }
    const auto t1 = std::chrono::steady_clock::now();

    {
        // Re-arm after a cancelled drain so submit() + drain() starts
        // a fresh cycle (no worker is alive to observe the flag now).
        std::lock_guard lock(mu_);
        cancelled_ = false;
    }
    stats.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    for (const std::uint64_t n : stats.workerTasks)
        stats.tasksRun += n;
    return stats;
}

} // namespace rr::sim
