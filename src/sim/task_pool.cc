#include "sim/task_pool.hh"

#include <chrono>
#include <thread>

#include "sim/jobs.hh"

namespace rr::sim
{

TaskPool::TaskPool(std::uint32_t workers)
    : workers_(resolveJobs(workers)), local_(workers_)
{
}

TaskPool::~TaskPool()
{
    if (serving())
        stop(/*finish_queued=*/false);
}

void
TaskPool::submit(Task task)
{
    {
        std::lock_guard lock(mu_);
        if (cancelled_)
            return;
        queue_.push_back(std::move(task));
        ++queued_;
    }
    cv_.notify_one();
}

void
TaskPool::submit(Task task, std::uint32_t affinity)
{
    {
        std::lock_guard lock(mu_);
        if (cancelled_)
            return;
        local_[affinity % workers_].push_back(std::move(task));
        ++queued_;
    }
    cv_.notify_one();
}

std::uint64_t
TaskPool::dropQueuedLocked()
{
    const std::uint64_t dropped = queued_;
    queue_.clear();
    for (auto &q : local_)
        q.clear();
    queued_ = 0;
    return dropped;
}

std::uint64_t
TaskPool::cancelPending()
{
    std::uint64_t dropped;
    {
        std::lock_guard lock(mu_);
        // Latching the refuse-new-submits flag only makes sense inside
        // a drain(), whose completion re-arms it. A serving pool has
        // no such point: latching here would silently drop every
        // later submit forever, wedging the daemon after its first
        // cancellation.
        if (!serving_)
            cancelled_ = true;
        dropped = dropQueuedLocked();
    }
    cv_.notify_all();
    return dropped;
}

void
TaskPool::start()
{
    {
        std::lock_guard lock(mu_);
        serving_ = true;
        stopping_ = false;
        stopFinishQueued_ = true;
        serviceTasksRun_ = 0;
    }
    serviceThreads_.reserve(workers_);
    for (std::uint32_t w = 0; w < workers_; ++w)
        serviceThreads_.emplace_back([this, w] { serviceLoop(w); });
}

std::uint64_t
TaskPool::stop(bool finish_queued)
{
    std::uint64_t dropped = 0;
    {
        std::lock_guard lock(mu_);
        stopping_ = true;
        stopFinishQueued_ = finish_queued;
        if (!finish_queued)
            dropped = dropQueuedLocked();
    }
    cv_.notify_all();
    for (auto &t : serviceThreads_)
        t.join();
    serviceThreads_.clear();
    {
        std::lock_guard lock(mu_);
        serving_ = false;
        stopping_ = false;
        // Tasks submitted after the workers decided to exit stay
        // queued for the next start()/drain() cycle, like a submit
        // racing the end of a drain.
    }
    return dropped;
}

bool
TaskPool::serving() const
{
    std::lock_guard lock(mu_);
    return serving_;
}

std::uint64_t
TaskPool::serviceTasksRun() const
{
    std::lock_guard lock(mu_);
    return serviceTasksRun_;
}

void
TaskPool::serviceLoop(std::uint32_t worker_index)
{
    for (;;) {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [this] { return queued_ != 0 || stopping_; });
        if (stopping_ && (queued_ == 0 || !stopFinishQueued_))
            return;
        Task task = takeLocked(worker_index);
        ++inflight_;
        lock.unlock();

        task();

        lock.lock();
        --inflight_;
        ++serviceTasksRun_;
        const bool idle = queued_ == 0 && inflight_ == 0;
        lock.unlock();
        if (idle)
            cv_.notify_all(); // wake stop()'s drain wait / peers to exit
        else
            cv_.notify_one(); // a hinted task may await a busy worker
    }
}

TaskPool::Task
TaskPool::takeLocked(std::uint32_t worker_index)
{
    auto pop_front = [this](std::deque<Task> &q) {
        Task t = std::move(q.front());
        q.pop_front();
        --queued_;
        return t;
    };
    if (!local_[worker_index].empty())
        return pop_front(local_[worker_index]);
    if (!queue_.empty())
        return pop_front(queue_);
    // Steal the oldest task of the nearest busy neighbour.
    for (std::uint32_t i = 1; i < workers_; ++i) {
        std::deque<Task> &q = local_[(worker_index + i) % workers_];
        if (!q.empty())
            return pop_front(q);
    }
    return {};
}

void
TaskPool::workerLoop(std::uint32_t worker_index, DrainStats &stats)
{
    using clock = std::chrono::steady_clock;
    for (;;) {
        std::unique_lock lock(mu_);
        cv_.wait(lock,
                 [this] { return queued_ != 0 || inflight_ == 0; });
        if (queued_ == 0)
            return; // inflight_ == 0: nothing left, nothing coming.
        Task task = takeLocked(worker_index);
        ++inflight_;
        lock.unlock();

        const auto t0 = clock::now();
        task();
        const auto t1 = clock::now();
        stats.workerBusySeconds[worker_index] +=
            std::chrono::duration<double>(t1 - t0).count();
        ++stats.workerTasks[worker_index];

        lock.lock();
        --inflight_;
        const bool done = queued_ == 0 && inflight_ == 0;
        lock.unlock();
        if (done)
            cv_.notify_all(); // release workers parked on "in flight"
        else
            cv_.notify_one(); // a hinted task may await a busy worker
    }
}

TaskPool::DrainStats
TaskPool::drain()
{
    DrainStats stats;
    stats.workerBusySeconds.assign(workers_, 0.0);
    stats.workerTasks.assign(workers_, 0);

    const auto t0 = std::chrono::steady_clock::now();
    if (workers_ == 1) {
        workerLoop(0, stats);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(workers_ - 1);
        for (std::uint32_t w = 1; w < workers_; ++w)
            threads.emplace_back(
                [this, w, &stats] { workerLoop(w, stats); });
        workerLoop(0, stats);
        for (auto &t : threads)
            t.join();
    }
    const auto t1 = std::chrono::steady_clock::now();

    {
        // Re-arm after a cancelled drain so submit() + drain() starts
        // a fresh cycle (no worker is alive to observe the flag now).
        std::lock_guard lock(mu_);
        cancelled_ = false;
    }
    stats.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    for (const std::uint64_t n : stats.workerTasks)
        stats.tasksRun += n;
    return stats;
}

} // namespace rr::sim
