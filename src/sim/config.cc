#include "sim/config.hh"

#include "sim/logging.hh"

namespace rr::sim
{

const char *
toString(RecorderMode mode)
{
    switch (mode) {
      case RecorderMode::Base:
        return "Base";
      case RecorderMode::Opt:
        return "Opt";
    }
    return "?";
}

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

void
validateCache(const char *name, const CacheConfig &c)
{
    if (c.sizeBytes == 0 || c.sizeBytes % (kLineBytes * c.associativity))
        fatal("%s: size must be a multiple of line*assoc", name);
    if (!isPow2(c.numSets()))
        fatal("%s: number of sets (%u) must be a power of two", name,
              c.numSets());
    if (c.mshrEntries == 0)
        fatal("%s: need at least one MSHR", name);
}

} // namespace

void
MachineConfig::validate() const
{
    if (numCores == 0)
        fatal("machine needs at least one core");
    if (core.robEntries == 0 || core.lsqEntries == 0)
        fatal("core queues must be non-empty");
    if (core.fetchWidth == 0 || core.retireWidth == 0)
        fatal("core widths must be non-zero");
    if (core.writeBufferEntries == 0)
        fatal("write buffer must be non-empty");
    if (!isPow2(core.predictorEntries))
        fatal("predictor entries must be a power of two");
    validateCache("L1", l1);
    validateCache("L2", l2);
}

} // namespace rr::sim
