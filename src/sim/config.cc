#include "sim/config.hh"

#include "sim/logging.hh"

namespace rr::sim
{

const char *
toString(RecorderMode mode)
{
    switch (mode) {
      case RecorderMode::Base:
        return "Base";
      case RecorderMode::Opt:
        return "Opt";
    }
    return "?";
}

const char *
toString(CoherenceKind kind)
{
    switch (kind) {
      case CoherenceKind::Snoopy:
        return "snoopy";
      case CoherenceKind::Directory:
        return "directory";
    }
    return "?";
}

bool
parseCoherenceKind(const std::string &text, CoherenceKind &out)
{
    if (text == "snoopy") {
        out = CoherenceKind::Snoopy;
        return true;
    }
    if (text == "directory") {
        out = CoherenceKind::Directory;
        return true;
    }
    return false;
}

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

void
validateCache(const char *name, const CacheConfig &c)
{
    if (c.sizeBytes == 0 || c.sizeBytes % (kLineBytes * c.associativity))
        fatal("%s: size must be a multiple of line*assoc", name);
    if (!isPow2(c.numSets()))
        fatal("%s: number of sets (%u) must be a power of two", name,
              c.numSets());
    if (c.mshrEntries == 0)
        fatal("%s: need at least one MSHR", name);
}

} // namespace

void
MachineConfig::validate() const
{
    if (numCores == 0)
        fatal("machine needs at least one core");
    if (core.robEntries == 0 || core.lsqEntries == 0)
        fatal("core queues must be non-empty");
    if (core.fetchWidth == 0 || core.retireWidth == 0)
        fatal("core widths must be non-zero");
    if (core.writeBufferEntries == 0)
        fatal("write buffer must be non-empty");
    if (!isPow2(core.predictorEntries))
        fatal("predictor entries must be a power of two");
    if (coherence == CoherenceKind::Directory && numCores > 64)
        fatal("directory coherence supports at most 64 cores "
              "(full-map sharer bitvector)");
    validateCache("L1", l1);
    validateCache("L2", l2);
}

} // namespace rr::sim
