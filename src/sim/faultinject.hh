/**
 * @file
 * Deterministic, seeded fault injection. A FaultPlan (parsed from
 * `--faults=SPEC` or the RR_FAULTS environment variable) describes which
 * faults to inject and at what rate; a single process-global
 * FaultInjector (same install pattern as TraceSink) is consulted from
 * the instrumented layers:
 *
 *  - mem::MemorySystem    drop or delay coherence snoops on their way to
 *                         the per-core recorder hubs (the broadcast
 *                         observers — tracers, ground-truth listeners —
 *                         always see every snoop, so injected faults
 *                         perturb only the *recording*, never the
 *                         simulated execution),
 *  - rnr::IntervalRecorder forced interval terminations, Snoop Table
 *                         counter saturation (with Opt→Base degradation)
 *                         and signature-aliasing stress,
 *  - rnr::LogWriter       transient I/O faults: short writes, EIO,
 *                         ENOSPC, fsync failures, and a hard
 *                         crash-at-byte-N that tears the file mid-chunk.
 *
 * Decisions are driven by a private xoshiro RNG seeded from the plan, so
 * a (plan, workload) pair reproduces the exact same fault sequence. A
 * rate of zero never draws from the RNG, so an installed zero-fault plan
 * leaves recordings bit-identical to an uninstrumented run.
 *
 * The disabled path is one relaxed load plus a predicted branch:
 *
 *     if (sim::FaultInjector::enabled())
 *         ... = sim::FaultInjector::get()->dropSnoop(core);
 */

#ifndef RR_SIM_FAULTINJECT_HH
#define RR_SIM_FAULTINJECT_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "rng.hh"
#include "stats.hh"
#include "types.hh"

namespace rr::sim
{

/**
 * The parsed fault specification. Rates are in parts per million;
 * count/byte knobs are absolute. A default-constructed plan injects
 * nothing (any() == false).
 *
 * Spec grammar (see docs/ROBUSTNESS.md): comma-separated `name=value`
 * clauses. Rate-valued clauses take a decimal probability in [0, 1]
 * (e.g. `drop-snoop=0.02`); byte-valued clauses accept `k`/`m` suffixes
 * (e.g. `budget=64k`).
 *
 *   seed=N            RNG seed for all fault decisions (default 1)
 *   drop-snoop=P      drop a snoop before it reaches a recorder hub
 *   delay-snoop=P     delay a snoop's recorder delivery
 *   delay-cycles=N    how long delayed snoops are held (default 8)
 *   force-term=P      force interval termination per counted entry
 *   st-saturate=N     saturate Snoop Table counters at N (0 = off)
 *   alias-sig=N       clear N line-index bits before signature insert
 *   short-write=P     truncate a log write (the writer must resume)
 *   io-error=P        fail a log write attempt with EIO (transient)
 *   enospc=P          fail a log write attempt with ENOSPC (transient)
 *   fsync-fail=N      first N fsync/fflush attempts fail (transient)
 *   crash-at=N        hard-stop the log file at byte N (torn file)
 *   budget=N          log-size budget in bytes (writer degrades, 0=off)
 */
struct FaultPlan
{
    std::uint64_t seed = 1;

    // Recorder-observation faults (mem + rnr layers).
    std::uint32_t dropSnoopPpm = 0;
    std::uint32_t delaySnoopPpm = 0;
    std::uint32_t delaySnoopCycles = 8;
    std::uint32_t forceTermPpm = 0;
    std::uint16_t stSaturateAt = 0;
    std::uint32_t sigAliasBits = 0;

    // Log-store I/O faults (rnr::LogWriter file sink).
    std::uint32_t shortWritePpm = 0;
    std::uint32_t ioErrorPpm = 0;
    std::uint32_t enospcPpm = 0;
    std::uint32_t fsyncFailures = 0;
    std::uint64_t crashAtByte = 0;
    std::uint64_t logBudgetBytes = 0;

    /** Whether any clause would ever inject a fault. */
    bool any() const;

    /** Human-readable one-line rendering of the active clauses. */
    std::string describe() const;

    /**
     * Parse a spec string (see grammar above). Throws
     * std::invalid_argument naming the offending clause on bad input.
     * An empty spec yields the default (inject-nothing) plan.
     */
    static FaultPlan parse(const std::string &spec);
};

/**
 * Process-global fault decision point. Install once before constructing
 * the Machine / LogWriter under test; every decision method is
 * mutex-serialized (sweep jobs may share one injector) and counts what
 * it injected in stats().
 */
class FaultInjector
{
  public:
    /** Outcome of consulting the injector for one file write attempt. */
    struct IoOutcome
    {
        enum class Kind
        {
            None,       ///< Perform the write normally.
            ShortWrite, ///< Write only maxBytes, then report short.
            Error,      ///< Fail the attempt with errno err.
            Crash       ///< Write maxBytes then die (torn file).
        };
        Kind kind = Kind::None;
        int err = 0;
        std::size_t maxBytes = 0;
    };

    /** Whether a global injector is installed (the hot-path check). */
    static bool
    enabled()
    {
        return injector_.load(std::memory_order_relaxed) != nullptr;
    }

    /** The installed injector; only valid when enabled(). */
    static FaultInjector *
    get()
    {
        return injector_.load(std::memory_order_acquire);
    }

    /**
     * Install a global injector driven by @p plan; fatal() if one is
     * already installed.
     */
    static void install(const FaultPlan &plan);

    /** install(parse(RR_FAULTS)) when set and no injector exists. */
    static void installFromEnv();

    /** Uninstall and destroy the global injector; no-op if disabled. */
    static void uninstall();

    const FaultPlan &plan() const { return plan_; }

    /** Counters of every fault injected so far. */
    const StatSet &stats() const { return stats_; }

    /** Should this snoop be dropped before reaching core observers? */
    bool dropSnoop(CoreId dest);

    /** Should this snoop's recorder delivery be delayed? */
    bool delaySnoop(CoreId dest);

    /** Should the recorder terminate the current interval right now? */
    bool forceTerminate(CoreId core);

    /**
     * Coarsen a line address for signature insertion/query: clears
     * `alias-sig` line-index bits so neighbouring lines alias. Purely
     * conservative — extra conflicts, never missed ones.
     */
    Addr aliasLine(Addr line_addr);

    /**
     * Consult the plan for one write of @p len bytes at absolute file
     * offset @p file_offset.
     */
    IoOutcome onWrite(std::uint64_t file_offset, std::size_t len);

    /** 0 to let an fsync/fflush succeed, else the errno to fail with. */
    int onSync();

    /** Note a recorder downgrade / writer degradation (counted). */
    void noteDegradation(const char *what);

  private:
    explicit FaultInjector(const FaultPlan &plan);

    /** One seeded Bernoulli draw; never draws when ppm == 0. */
    bool roll(std::uint32_t ppm);

    static std::atomic<FaultInjector *> injector_;

    FaultPlan plan_;
    std::mutex mutex_;
    Rng rng_;
    StatSet stats_;
    std::uint32_t syncFailuresLeft_;
};

} // namespace rr::sim

#endif // RR_SIM_FAULTINJECT_HH
