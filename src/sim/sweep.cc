#include "sim/sweep.hh"

#include <chrono>
#include <thread>

namespace rr::sim
{

namespace
{

std::uint32_t
hardwareWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

SweepRunner::SweepRunner(std::uint32_t workers, std::uint64_t base_seed)
    : workers_(workers == 0 ? hardwareWorkers() : workers),
      baseSeed_(base_seed)
{
}

std::uint64_t
SweepRunner::jobSeed(std::uint64_t index) const
{
    // Two mixing rounds keep adjacent indices uncorrelated even for a
    // base seed of 0; never 0 so callers can use the seed directly.
    const std::uint64_t seed = splitmix64(splitmix64(baseSeed_) ^ index);
    return seed == 0 ? 1 : seed;
}

void
SweepRunner::enqueue(Job job)
{
    jobs_.push_back(std::move(job));
}

SweepStats
SweepRunner::run()
{
    const auto start = std::chrono::steady_clock::now();
    instructions_.store(0, std::memory_order_relaxed);

    const std::size_t n = jobs_.size();
    const std::uint32_t active = static_cast<std::uint32_t>(
        std::min<std::size_t>(workers_, n));

    if (active <= 1) {
        // Inline execution: zero threading overhead, and the natural
        // reference ordering for determinism comparisons.
        for (auto &job : jobs_)
            job();
    } else {
        std::atomic<std::size_t> next{0};
        auto worker = [&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                jobs_[i]();
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(active);
        for (std::uint32_t t = 0; t < active; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    jobs_.clear();
    const auto end = std::chrono::steady_clock::now();
    lastStats_.wallSeconds =
        std::chrono::duration<double>(end - start).count();
    lastStats_.jobsRun = n;
    lastStats_.workers = active == 0 ? 1 : active;
    lastStats_.totalInstructions =
        instructions_.load(std::memory_order_relaxed);
    return lastStats_;
}

} // namespace rr::sim
