#include "sim/sweep.hh"

#include <chrono>
#include <thread>

#include "sim/jobs.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace rr::sim
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

SweepRunner::SweepRunner(std::uint32_t workers, std::uint64_t base_seed)
    : workers_(resolveJobs(workers)),
      baseSeed_(base_seed)
{
}

std::uint64_t
SweepRunner::jobSeed(std::uint64_t index) const
{
    // Two mixing rounds keep adjacent indices uncorrelated even for a
    // base seed of 0; never 0 so callers can use the seed directly.
    const std::uint64_t seed = splitmix64(splitmix64(baseSeed_) ^ index);
    return seed == 0 ? 1 : seed;
}

void
SweepRunner::enqueue(Job job)
{
    jobs_.push_back(QueuedJob{std::string(), std::move(job)});
}

void
SweepRunner::enqueue(std::string label, Job job)
{
    jobs_.push_back(QueuedJob{std::move(label), std::move(job)});
}

void
SweepRunner::accumulateStats(const StatSet &s)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    aggregated_.mergeFrom(s);
}

void
SweepRunner::runJob(std::size_t index, std::uint32_t worker,
                    std::chrono::steady_clock::time_point run_start)
{
    if (!TraceSink::enabled()) {
        jobs_[index].fn();
        return;
    }
    // Sweep-track timestamps are wall microseconds since run() started
    // (not simulated cycles; the two pids use different clocks).
    const auto wall_us = [run_start](std::chrono::steady_clock::time_point tp) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                tp - run_start)
                .count());
    };
    const std::uint64_t t0 = wall_us(std::chrono::steady_clock::now());
    jobs_[index].fn();
    const std::uint64_t t1 = wall_us(std::chrono::steady_clock::now());
    const std::string &label = jobs_[index].label;
    TraceSink::get()->complete(
        TraceSink::kSweepPid, worker, "sweep",
        label.empty() ? strfmt("job%llu",
                               static_cast<unsigned long long>(index))
                      : label,
        t0, t1 - t0,
        {{"job", static_cast<std::uint64_t>(index)}});
}

SweepStats
SweepRunner::run()
{
    const auto start = std::chrono::steady_clock::now();
    instructions_.store(0, std::memory_order_relaxed);

    const std::size_t n = jobs_.size();
    const std::uint32_t active = static_cast<std::uint32_t>(
        std::min<std::size_t>(workers_, n));

    if (active <= 1) {
        // Inline execution: zero threading overhead, and the natural
        // reference ordering for determinism comparisons.
        for (std::size_t i = 0; i < n; ++i)
            runJob(i, 0, start);
    } else {
        std::atomic<std::size_t> next{0};
        auto worker = [&](std::uint32_t wid) {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                runJob(i, wid, start);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(active);
        for (std::uint32_t t = 0; t < active; ++t)
            pool.emplace_back(worker, t);
        for (auto &t : pool)
            t.join();
    }

    jobs_.clear();
    const auto end = std::chrono::steady_clock::now();
    lastStats_.wallSeconds =
        std::chrono::duration<double>(end - start).count();
    lastStats_.jobsRun = n;
    lastStats_.workers = active == 0 ? 1 : active;
    lastStats_.totalInstructions =
        instructions_.load(std::memory_order_relaxed);
    return lastStats_;
}

} // namespace rr::sim
