/**
 * @file
 * Error reporting helpers, modeled after gem5's panic()/fatal() split:
 * panic() flags an internal simulator bug (aborts), fatal() flags a user
 * configuration error (clean exit), warn()/inform() are advisory.
 */

#ifndef RR_SIM_LOGGING_HH
#define RR_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace rr::sim
{

/** Abort with a message; use for conditions that indicate a simulator bug. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a message; use for user errors (bad configuration, etc.). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message to stderr; simulation continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** panic() unless the condition holds. */
#define RR_ASSERT(cond, ...)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::rr::sim::panic("assertion '%s' failed at %s:%d: %s", #cond, \
                             __FILE__, __LINE__,                          \
                             ::rr::sim::strfmt(__VA_ARGS__).c_str());     \
        }                                                                 \
    } while (0)

} // namespace rr::sim

#endif // RR_SIM_LOGGING_HH
