/**
 * @file
 * Event tracing in the Chrome trace format (chrome://tracing /
 * Perfetto). A single process-global TraceSink is installed with
 * TraceSink::open() (driven by `--trace=FILE` or the RR_TRACE
 * environment variable); instrumentation sites across the recorder,
 * memory system, cores and sweep engine then emit per-core timeline
 * events.
 *
 * The disabled path is one relaxed load plus a predicted branch:
 *
 *     if (sim::TraceSink::enabled())
 *         sim::TraceSink::get()->instant(...);
 *
 * Conventions:
 *  - pid kRecordPid (0): simulated-machine events; timestamps are
 *    simulated cycles, tid is the core id.
 *  - pid kSweepPid (1): sweep-engine events; timestamps are host
 *    wall-clock microseconds since the batch started, tid is the host
 *    worker index.
 *
 * Emission is mutex-serialized, so concurrent sweep jobs may trace
 * safely — but per-core tracks of different jobs share tids, so traces
 * are most useful for single-run debugging (`--jobs 1`).
 */

#ifndef RR_SIM_TRACE_HH
#define RR_SIM_TRACE_HH

#include <atomic>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <mutex>
#include <string>

namespace rr::sim
{

/** One key/value pair in a trace event's "args" object. */
struct TraceArg
{
    const char *key;
    std::uint64_t num = 0;
    /** When non-null, the arg serializes as a JSON string instead. */
    const char *str = nullptr;

    TraceArg(const char *k, std::uint64_t v) : key(k), num(v) {}
    TraceArg(const char *k, std::uint32_t v) : key(k), num(v) {}
    TraceArg(const char *k, int v)
        : key(k), num(static_cast<std::uint64_t>(v))
    {
    }
    TraceArg(const char *k, bool v) : key(k), num(v ? 1 : 0) {}
    TraceArg(const char *k, const char *s) : key(k), str(s) {}
};

class TraceSink
{
  public:
    /** Track (pid) for simulated-machine events; ts in cycles. */
    static constexpr std::uint32_t kRecordPid = 0;
    /** Track (pid) for sweep-engine events; ts in wall microseconds. */
    static constexpr std::uint32_t kSweepPid = 1;

    /** Whether a global sink is installed (the hot-path check). */
    static bool
    enabled()
    {
        return sink_.load(std::memory_order_relaxed) != nullptr;
    }

    /** The installed sink; only valid when enabled(). */
    static TraceSink *
    get()
    {
        return sink_.load(std::memory_order_acquire);
    }

    /**
     * Install a global sink writing to @p path; fatal() if the file
     * cannot be opened or a sink is already installed.
     */
    static void open(const std::string &path);

    /** open(RR_TRACE) when the variable is set and no sink exists. */
    static void openFromEnv();

    /** Flush, close the JSON document and uninstall; no-op if disabled. */
    static void close();

    /** Events written so far (tests). */
    std::uint64_t eventCount() const { return events_; }

    /** A zero-duration point event on one track. */
    void instant(std::uint32_t pid, std::uint32_t tid, const char *cat,
                 const char *name, std::uint64_t ts,
                 std::initializer_list<TraceArg> args = {});

    /** A complete (ph "X") event spanning [ts, ts+dur]. */
    void complete(std::uint32_t pid, std::uint32_t tid, const char *cat,
                  const std::string &name, std::uint64_t ts,
                  std::uint64_t dur,
                  std::initializer_list<TraceArg> args = {});

    /** A counter (ph "C") sample. */
    void counter(std::uint32_t pid, std::uint32_t tid, const char *name,
                 std::uint64_t ts, std::uint64_t value);

  private:
    explicit TraceSink(std::ofstream out);

    void writeEvent(std::uint32_t pid, std::uint32_t tid, const char *cat,
                    const char *name, char ph, std::uint64_t ts,
                    std::uint64_t dur, bool has_dur,
                    std::initializer_list<TraceArg> args);
    void writeMetadata(std::uint32_t pid, const char *process_name);
    void writeRaw(const std::string &line);

    static std::atomic<TraceSink *> sink_;

    std::mutex mutex_;
    std::ofstream out_;
    std::uint64_t events_ = 0;
};

} // namespace rr::sim

#endif // RR_SIM_TRACE_HH
