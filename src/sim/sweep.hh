/**
 * @file
 * Parallel experiment engine. A SweepRunner executes a batch of
 * independent jobs — typically whole Machine recordings of an
 * app x core-count x policy-set sweep — across a bounded pool of host
 * threads, with deterministic per-job seeds and results collected in
 * submission order. Every job is self-contained (each builds its own
 * Machine, which shares no mutable state with other instances), so the
 * outputs are bit-identical for any worker count; only the wall clock
 * changes.
 */

#ifndef RR_SIM_SWEEP_HH
#define RR_SIM_SWEEP_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace rr::sim
{

/** Aggregate timing of one SweepRunner::run() batch. */
struct SweepStats
{
    double wallSeconds = 0.0;
    std::uint64_t jobsRun = 0;
    std::uint32_t workers = 0;
    /** Simulated instructions reported via countInstructions(). */
    std::uint64_t totalInstructions = 0;

    /** Simulated-instruction throughput of the whole batch. */
    double
    instructionsPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(totalInstructions) / wallSeconds
                   : 0.0;
    }
};

class SweepRunner
{
  public:
    using Job = std::function<void()>;

    /**
     * @param workers Host threads to run jobs on; 0 picks the hardware
     *        concurrency. One worker runs every job inline on the
     *        calling thread.
     * @param base_seed Base of the deterministic per-job seed sequence.
     */
    explicit SweepRunner(std::uint32_t workers = 0,
                         std::uint64_t base_seed = 1);

    std::uint32_t workers() const { return workers_; }

    /**
     * Deterministic seed for job @p index: a SplitMix64 mix of the base
     * seed and the index. Depends only on (base_seed, index) — never on
     * the worker count or scheduling — so seeded sweeps reproduce
     * bit-identically at any parallelism.
     */
    std::uint64_t jobSeed(std::uint64_t index) const;

    /** Queue a job for the next run(). Jobs must be independent. */
    void enqueue(Job job);

    /** Same, with a label used by trace events ("sweep" track). */
    void enqueue(std::string label, Job job);

    std::size_t pending() const { return jobs_.size(); }

    /**
     * Run every queued job to completion with at most workers() jobs in
     * flight, then clear the queue. Jobs start in submission order;
     * completion order is unspecified, so jobs must write their results
     * into caller-owned, per-job slots (see sweepMap).
     */
    SweepStats run();

    /** Stats of the most recent run(). */
    const SweepStats &lastStats() const { return lastStats_; }

    /**
     * Thread-safe accumulation of simulated instructions into the
     * current run's throughput stats; call from inside jobs.
     */
    void
    countInstructions(std::uint64_t n)
    {
        instructions_.fetch_add(n, std::memory_order_relaxed);
    }

    /**
     * Thread-safe merge of a finished job's StatSet into the batch-wide
     * aggregate (counters add, scalars/histograms combine); call from
     * inside jobs. The aggregate survives run() for later export.
     */
    void accumulateStats(const StatSet &s);

    /** Batch-wide aggregate built by accumulateStats(). */
    const StatSet &aggregatedStats() const { return aggregated_; }

  private:
    struct QueuedJob
    {
        std::string label;
        Job fn;
    };

    void runJob(std::size_t index, std::uint32_t worker,
                std::chrono::steady_clock::time_point run_start);

    std::uint32_t workers_;
    std::uint64_t baseSeed_;
    std::vector<QueuedJob> jobs_;
    std::atomic<std::uint64_t> instructions_{0};
    SweepStats lastStats_;
    std::mutex statsMutex_;
    StatSet aggregated_{"sweep"};
};

/**
 * Map @p count job indices through @p fn concurrently; the result
 * vector is indexed like the inputs regardless of execution order.
 * @p fn receives (index, jobSeed(index)).
 */
template <typename R, typename Fn>
std::vector<R>
sweepMap(SweepRunner &runner, std::size_t count, Fn fn)
{
    std::vector<R> out(count);
    for (std::size_t i = 0; i < count; ++i) {
        runner.enqueue([&runner, &out, fn, i] {
            out[i] = fn(i, runner.jobSeed(i));
        });
    }
    runner.run();
    return out;
}

} // namespace rr::sim

#endif // RR_SIM_SWEEP_HH
