/**
 * @file
 * Deterministic pseudo-random number generation. Every source of
 * randomness in the simulator and the workload generators goes through
 * this class so that a (seed, config) pair fully determines an execution.
 */

#ifndef RR_SIM_RNG_HH
#define RR_SIM_RNG_HH

#include <cstdint>

namespace rr::sim
{

/**
 * xoshiro256** generator seeded via SplitMix64. Small, fast and good
 * enough for workload shuffling and synthetic data generation.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        // SplitMix64 expansion of the seed into the 256-bit state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next uniformly distributed 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free mapping is fine here;
        // slight modulo bias is irrelevant for workload generation.
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli trial with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t v, int k)
    {
        return (v << k) | (v >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace rr::sim

#endif // RR_SIM_RNG_HH
