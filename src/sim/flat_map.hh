/**
 * @file
 * Open-addressing hash containers keyed on 64-bit addresses, used on
 * the memory-system hot path instead of std::unordered_map. Linear
 * probing over a power-of-two table with backward-shift deletion (no
 * tombstones), so lookups stay one cache line long even after heavy
 * insert/erase churn — exactly the MSHR traffic pattern, where a few
 * dozen lines are tracked at a time but every access probes the table.
 *
 * The all-ones key is reserved as the empty-slot marker; line and word
 * addresses never take that value (the simulated address space is far
 * below 2^64).
 */

#ifndef RR_SIM_FLAT_MAP_HH
#define RR_SIM_FLAT_MAP_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace rr::sim
{

/** Open-addressing map from 64-bit keys to values of type V. */
template <typename V>
class FlatMap
{
  public:
    static constexpr std::uint64_t kEmptyKey = ~0ULL;

    explicit FlatMap(std::size_t initial_capacity = 16)
    {
        std::size_t cap = 16;
        while (cap < initial_capacity * 2)
            cap *= 2;
        keys_.assign(cap, kEmptyKey);
        vals_.assign(cap, V{});
        mask_ = cap - 1;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void
    clear()
    {
        std::fill(keys_.begin(), keys_.end(), kEmptyKey);
        std::fill(vals_.begin(), vals_.end(), V{});
        size_ = 0;
    }

    /** Pointer to the value for @p key, or nullptr when absent. */
    V *
    find(std::uint64_t key)
    {
        const std::size_t slot = probe(key);
        return keys_[slot] == key ? &vals_[slot] : nullptr;
    }

    const V *
    find(std::uint64_t key) const
    {
        const std::size_t slot = probe(key);
        return keys_[slot] == key ? &vals_[slot] : nullptr;
    }

    bool contains(std::uint64_t key) const { return find(key) != nullptr; }

    /** Value for @p key, default-constructing it when absent. */
    V &
    operator[](std::uint64_t key)
    {
        RR_ASSERT(key != kEmptyKey, "FlatMap key reserved for empty slots");
        std::size_t slot = probe(key);
        if (keys_[slot] != key) {
            if ((size_ + 1) * 4 >= (mask_ + 1) * 3) {
                grow();
                slot = probe(key);
            }
            keys_[slot] = key;
            vals_[slot] = V{};
            ++size_;
        }
        return vals_[slot];
    }

    /** Remove @p key; returns false when it was absent. */
    bool
    erase(std::uint64_t key)
    {
        std::size_t slot = probe(key);
        if (keys_[slot] != key)
            return false;
        // Backward-shift deletion: pull displaced entries back so every
        // remaining key stays reachable from its home slot.
        std::size_t hole = slot;
        std::size_t next = hole;
        for (;;) {
            next = (next + 1) & mask_;
            if (keys_[next] == kEmptyKey)
                break;
            const std::size_t home = homeSlot(keys_[next]);
            // The entry at `next` may move into the hole iff the hole
            // lies on its probe path, i.e. home..next (cyclically)
            // passes through the hole.
            if (((next - home) & mask_) >= ((next - hole) & mask_)) {
                keys_[hole] = keys_[next];
                vals_[hole] = std::move(vals_[next]);
                hole = next;
            }
        }
        keys_[hole] = kEmptyKey;
        vals_[hole] = V{};
        --size_;
        return true;
    }

  private:
    std::size_t
    homeSlot(std::uint64_t key) const
    {
        // Fibonacci hashing: multiply by the 64-bit golden ratio and
        // keep the top bits, which mix the (line-aligned, low-entropy)
        // address bits well.
        return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> 33) &
               mask_;
    }

    /** Slot holding @p key, or the first empty slot on its probe path. */
    std::size_t
    probe(std::uint64_t key) const
    {
        std::size_t slot = homeSlot(key);
        while (keys_[slot] != key && keys_[slot] != kEmptyKey)
            slot = (slot + 1) & mask_;
        return slot;
    }

    void
    grow()
    {
        std::vector<std::uint64_t> old_keys = std::move(keys_);
        std::vector<V> old_vals = std::move(vals_);
        const std::size_t cap = (mask_ + 1) * 2;
        keys_.assign(cap, kEmptyKey);
        vals_.assign(cap, V{});
        mask_ = cap - 1;
        for (std::size_t i = 0; i < old_keys.size(); ++i) {
            if (old_keys[i] == kEmptyKey)
                continue;
            const std::size_t slot = probe(old_keys[i]);
            keys_[slot] = old_keys[i];
            vals_[slot] = std::move(old_vals[i]);
        }
    }

    std::vector<std::uint64_t> keys_;
    std::vector<V> vals_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

/** Open-addressing set of 64-bit keys (a FlatMap with empty payloads). */
class FlatSet
{
  public:
    explicit FlatSet(std::size_t initial_capacity = 16)
        : map_(initial_capacity)
    {
    }

    std::size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }
    void clear() { map_.clear(); }
    bool contains(std::uint64_t key) const { return map_.contains(key); }
    std::size_t count(std::uint64_t key) const { return map_.contains(key); }
    void insert(std::uint64_t key) { map_[key] = Unit{}; }
    bool erase(std::uint64_t key) { return map_.erase(key); }

  private:
    struct Unit
    {
    };
    FlatMap<Unit> map_;
};

} // namespace rr::sim

#endif // RR_SIM_FLAT_MAP_HH
