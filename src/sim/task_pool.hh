/**
 * @file
 * A dynamic task pool for dependency-graph execution.
 *
 * SweepRunner (sweep.hh) runs a *fixed* list of independent jobs; the
 * parallel replayer needs the other shape: tasks that become runnable
 * while the pool is draining, because finishing one interval unblocks
 * its DAG successors. TaskPool supports exactly that — submit() is
 * callable from inside a running task, and drain() returns when the
 * queue is empty and no task is in flight.
 *
 * The pool follows SweepRunner's idioms: workers == 0 means all
 * hardware threads, and a single-worker pool executes inline on the
 * draining thread (no spawn), which keeps `--jobs 1` runs trivially
 * deterministic and sanitizer-quiet.
 */

#ifndef RR_SIM_TASK_POOL_HH
#define RR_SIM_TASK_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rr::sim
{

class TaskPool
{
  public:
    using Task = std::function<void()>;

    /** @param workers Worker threads; 0 = all hardware threads. */
    explicit TaskPool(std::uint32_t workers = 0);
    ~TaskPool();

    std::uint32_t workers() const { return workers_; }

    /**
     * Enqueue a task. Thread-safe; callable both before drain() and
     * from inside a running task. Dropped silently after
     * cancelPending() during a drain() (the flag re-arms when the
     * cancelled drain() returns); in service mode submits are never
     * silently dropped — see cancelPending().
     */
    void submit(Task task);

    /**
     * Enqueue with an affinity hint: the task lands on worker
     * `affinity % workers()`'s local queue and runs there unless that
     * worker falls idle last — idle workers steal from the shared
     * queue first, then from other workers' local queues, so a hint
     * can delay a task but never strand it. The parallel replayer
     * hints with the interval's core id, which keeps a core's chain
     * (and its write-set pages) on a stable worker.
     */
    void submit(Task task, std::uint32_t affinity);

    /**
     * Drop every queued-but-not-started task; in-flight tasks run to
     * completion. Returns the number of tasks dropped.
     *
     * During a drain() the pool additionally refuses new submits for
     * the remainder of that drain (stop-the-world after a replay
     * divergence). In service mode there is no drain end to re-arm
     * the flag, so cancelPending() only clears what is queued *now*
     * and later submits are accepted — a long-lived server must not
     * be wedged by one cancellation.
     */
    std::uint64_t cancelPending();

    /**
     * Service mode: spawn workers() persistent threads that execute
     * tasks as they are submitted and otherwise sleep. Unlike drain(),
     * the pool stays alive through idle periods — the shape a
     * long-lived daemon needs. Not reentrant; do not mix a running
     * service with drain().
     */
    void start();

    /**
     * Leave service mode. With @p finish_queued the workers first run
     * everything already queued (graceful drain); otherwise queued
     * tasks are dropped (their count is returned) and only in-flight
     * tasks finish. Joins all workers before returning. The pool can
     * be start()ed again afterwards.
     */
    std::uint64_t stop(bool finish_queued = true);

    /** True between start() and stop(). */
    bool serving() const;

    /** Tasks executed since start() (service mode only). */
    std::uint64_t serviceTasksRun() const;

    /** What one drain() did, for utilization stats. */
    struct DrainStats
    {
        double wallSeconds = 0.0;
        std::uint64_t tasksRun = 0;
        /** Sum of task run times per worker. */
        std::vector<double> workerBusySeconds;
        std::vector<std::uint64_t> workerTasks;
    };

    /**
     * Run tasks until the queue is empty and none is in flight, then
     * return. Spawns workers() - 1 threads and participates itself
     * (inline execution when workers() == 1). Tasks must not throw —
     * engines convert failures into state + cancelPending(). The pool
     * is reusable: a later submit() + drain() starts a fresh cycle.
     */
    DrainStats drain();

  private:
    void workerLoop(std::uint32_t worker_index, DrainStats &stats);
    void serviceLoop(std::uint32_t worker_index);
    /** Pop the next task for @p worker_index; caller holds mu_ and
     *  guarantees queued_ != 0. */
    Task takeLocked(std::uint32_t worker_index);
    /** Clear all queues; caller holds mu_. Returns tasks dropped. */
    std::uint64_t dropQueuedLocked();

    const std::uint32_t workers_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Task> queue_;
    /** Per-worker affinity queues; queued_ counts queue_ + local_. */
    std::vector<std::deque<Task>> local_;
    std::uint64_t queued_ = 0;
    std::uint32_t inflight_ = 0;
    bool cancelled_ = false;

    // Service mode (all under mu_ except the thread handles, which
    // only start()/stop() touch — callers serialize those two).
    bool serving_ = false;
    bool stopping_ = false;
    bool stopFinishQueued_ = true;
    std::uint64_t serviceTasksRun_ = 0;
    std::vector<std::thread> serviceThreads_;
};

} // namespace rr::sim

#endif // RR_SIM_TASK_POOL_HH
