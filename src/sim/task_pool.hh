/**
 * @file
 * A dynamic task pool for dependency-graph execution.
 *
 * SweepRunner (sweep.hh) runs a *fixed* list of independent jobs; the
 * parallel replayer needs the other shape: tasks that become runnable
 * while the pool is draining, because finishing one interval unblocks
 * its DAG successors. TaskPool supports exactly that — submit() is
 * callable from inside a running task, and drain() returns when the
 * queue is empty and no task is in flight.
 *
 * The pool follows SweepRunner's idioms: workers == 0 means all
 * hardware threads, and a single-worker pool executes inline on the
 * draining thread (no spawn), which keeps `--jobs 1` runs trivially
 * deterministic and sanitizer-quiet.
 */

#ifndef RR_SIM_TASK_POOL_HH
#define RR_SIM_TASK_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace rr::sim
{

class TaskPool
{
  public:
    using Task = std::function<void()>;

    /** @param workers Worker threads; 0 = all hardware threads. */
    explicit TaskPool(std::uint32_t workers = 0);

    std::uint32_t workers() const { return workers_; }

    /**
     * Enqueue a task. Thread-safe; callable both before drain() and
     * from inside a running task. Dropped silently after
     * cancelPending() (the flag re-arms when the cancelled drain()
     * returns).
     */
    void submit(Task task);

    /**
     * Enqueue with an affinity hint: the task lands on worker
     * `affinity % workers()`'s local queue and runs there unless that
     * worker falls idle last — idle workers steal from the shared
     * queue first, then from other workers' local queues, so a hint
     * can delay a task but never strand it. The parallel replayer
     * hints with the interval's core id, which keeps a core's chain
     * (and its write-set pages) on a stable worker.
     */
    void submit(Task task, std::uint32_t affinity);

    /**
     * Drop every queued-but-not-started task and refuse new submits
     * for the remainder of the current drain. In-flight tasks run to
     * completion. Used to stop the world after a replay divergence.
     */
    void cancelPending();

    /** What one drain() did, for utilization stats. */
    struct DrainStats
    {
        double wallSeconds = 0.0;
        std::uint64_t tasksRun = 0;
        /** Sum of task run times per worker. */
        std::vector<double> workerBusySeconds;
        std::vector<std::uint64_t> workerTasks;
    };

    /**
     * Run tasks until the queue is empty and none is in flight, then
     * return. Spawns workers() - 1 threads and participates itself
     * (inline execution when workers() == 1). Tasks must not throw —
     * engines convert failures into state + cancelPending(). The pool
     * is reusable: a later submit() + drain() starts a fresh cycle.
     */
    DrainStats drain();

  private:
    void workerLoop(std::uint32_t worker_index, DrainStats &stats);
    /** Pop the next task for @p worker_index; caller holds mu_ and
     *  guarantees queued_ != 0. */
    Task takeLocked(std::uint32_t worker_index);

    const std::uint32_t workers_;

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Task> queue_;
    /** Per-worker affinity queues; queued_ counts queue_ + local_. */
    std::vector<std::deque<Task>> local_;
    std::uint64_t queued_ = 0;
    std::uint32_t inflight_ = 0;
    bool cancelled_ = false;
};

} // namespace rr::sim

#endif // RR_SIM_TASK_POOL_HH
