#include "machine/machine.hh"

#include "sim/logging.hh"

namespace rr::machine
{

/** Collects the per-core architectural reference trace. */
class Machine::TraceListener : public cpu::CoreListener
{
  public:
    void
    onRetire(const cpu::RetireInfo &info) override
    {
        ++summary.retiredInstructions;
        if (info.op == isa::Opcode::Ld || info.op == isa::Opcode::Xchg ||
            info.op == isa::Opcode::Fadd) {
            ++summary.retiredLoads;
            summary.loadValueHash =
                mixLoadValue(summary.loadValueHash, info.loadValue);
        }
    }

    CoreSummary summary;
};

Machine::Machine(const sim::MachineConfig &cfg, isa::Program prog,
                 const std::vector<sim::RecorderConfig> &policies)
    : cfg_(cfg), prog_(std::move(prog))
{
    cfg_.validate();
    RR_ASSERT(!policies.empty(), "need at least one recorder policy");

    // Materialize the program's initial data image.
    for (const auto &[addr, value] : prog_.initialData)
        backing_.write64(addr, value);
    initial_ = backing_.clone();

    memsys_ = mem::createMemorySystem(cfg_, backing_, clock_);

    // Under directory coherence, losing directory tracking state is a
    // real protocol event (reported through onDirtyEviction); every
    // recorder must answer it with the Section 4.3 conservative bump,
    // not just the ones that opted into the snoopy-mode emulation.
    std::vector<sim::RecorderConfig> effective = policies;
    if (cfg_.coherence == sim::CoherenceKind::Directory) {
        for (auto &p : effective)
            p.directoryEvictionBump = true;
    }

    for (sim::CoreId c = 0; c < cfg_.numCores; ++c) {
        cores_.push_back(std::make_unique<cpu::Core>(c, cfg_, prog_,
                                                     *memsys_, clock_));
        hubs_.push_back(
            std::make_unique<rnr::MrrHub>(c, effective, clock_));
        tracers_.push_back(std::make_unique<TraceListener>());
        cores_[c]->addListener(hubs_[c].get());
        cores_[c]->addListener(tracers_[c].get());
        // The hub only consumes core c's events; register it for
        // direct routing instead of the broadcast fan-out.
        memsys_->addCoreObserver(c, hubs_[c].get());
        cores_[c]->start(c, cfg_.numCores);
    }

    std::vector<rnr::MrrHub *> peers;
    for (auto &hub : hubs_)
        peers.push_back(hub.get());
    for (auto &hub : hubs_)
        hub->setPeers(peers);
}

Machine::~Machine() = default;

void
Machine::setIntervalSink(
    std::size_t policy,
    std::function<void(sim::CoreId, const rnr::IntervalRecord &)> sink)
{
    RR_ASSERT(!ran_, "setIntervalSink must be called before run");
    for (sim::CoreId c = 0; c < cfg_.numCores; ++c) {
        hubs_[c]->recorder(policy).setIntervalSink(
            [sink, c](const rnr::IntervalRecord &iv) { sink(c, iv); });
    }
}

void
Machine::collectStats(std::vector<const sim::StatSet *> &out)
{
    out.push_back(&memsys_->stats());
    for (auto &core : cores_)
        out.push_back(&core->stats());
    for (auto &hub : hubs_) {
        out.push_back(&hub->stats());
        for (std::size_t p = 0; p < hub->numPolicies(); ++p)
            out.push_back(&hub->recorder(p).stats());
    }
}

RecordingResult
Machine::run(std::uint64_t max_cycles)
{
    RR_ASSERT(!ran_, "Machine::run may only be called once");
    ran_ = true;

    for (cycle_ = 0;; ++cycle_) {
        memsys_->tick(cycle_);
        bool all_done = memsys_->quiescent();
        for (auto &core : cores_) {
            core->tick(cycle_);
            all_done = all_done && core->quiescent();
        }
        for (auto &hub : hubs_)
            hub->sampleOccupancy();
        if (all_done && memsys_->quiescent())
            break;
        if (cycle_ >= max_cycles)
            sim::fatal("machine did not quiesce in %llu cycles "
                       "(deadlock or runaway workload)",
                       static_cast<unsigned long long>(max_cycles));
    }

    RecordingResult res;
    res.cycles = cycle_;
    const std::size_t num_policies = hubs_.front()->numPolicies();
    res.logs.resize(num_policies);
    for (std::size_t p = 0; p < num_policies; ++p) {
        for (auto &hub : hubs_)
            res.logs[p].push_back(hub->recorder(p).takeLog());
    }
    for (sim::CoreId c = 0; c < cfg_.numCores; ++c) {
        CoreSummary s = tracers_[c]->summary;
        for (std::uint32_t r = 0; r < isa::kNumRegs; ++r)
            s.finalRegs[r] = cores_[c]->archReg(r);
        res.totalInstructions += s.retiredInstructions;
        res.cores.push_back(s);
    }
    res.memoryFingerprint = backing_.fingerprint();
    return res;
}

} // namespace rr::machine
