/**
 * @file
 * Whole-machine assembly: cores + MRR hubs + memory system + backing
 * store, plus the recording driver that runs a program to completion and
 * packages everything needed for replay and for the evaluation figures.
 */

#ifndef RR_MACHINE_MACHINE_HH
#define RR_MACHINE_MACHINE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "mem/backing_store.hh"
#include "mem/memory_system.hh"
#include "rnr/log.hh"
#include "rnr/mrr_hub.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace rr::machine
{

/** Per-core architectural summary of a recorded execution. */
struct CoreSummary
{
    std::uint64_t retiredInstructions = 0;
    std::uint64_t retiredLoads = 0; ///< loads + atomics
    /** Order-sensitive hash chain over retired load/atomic values. */
    std::uint64_t loadValueHash = 0;
    std::array<std::uint64_t, isa::kNumRegs> finalRegs{};
};

/** Everything a recording run produces. */
struct RecordingResult
{
    sim::Cycle cycles = 0;
    std::vector<CoreSummary> cores;
    /** logs[policy][core]. */
    std::vector<std::vector<rnr::CoreLog>> logs;
    std::uint64_t memoryFingerprint = 0;
    std::uint64_t totalInstructions = 0;
};

/** Hash chain used for the recorded and replayed load-value traces. */
constexpr std::uint64_t
mixLoadValue(std::uint64_t hash, std::uint64_t value)
{
    hash ^= value + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2);
    return hash * 0x2545f4914f6cdd1dULL;
}

class Machine
{
  public:
    /**
     * @param policies Recorder configurations to record simultaneously
     *        (at least one); all share each core's TRAQ.
     */
    Machine(const sim::MachineConfig &cfg, isa::Program prog,
            const std::vector<sim::RecorderConfig> &policies);
    ~Machine();

    /**
     * Run to completion (every core halted, memory quiescent).
     * @param max_cycles Deadlock guard; fatal() when exceeded.
     */
    RecordingResult run(std::uint64_t max_cycles = 2'000'000'000ULL);

    /** Memory image before the run (for replay). */
    const mem::BackingStore &initialMemory() const { return initial_; }

    cpu::Core &core(sim::CoreId c) { return *cores_.at(c); }
    rnr::MrrHub &hub(sim::CoreId c) { return *hubs_.at(c); }

    /**
     * Stream every interval policy @p policy closes, on any core, into
     * @p sink as recording proceeds (the persistent log store's entry
     * point; see rnr::LogWriter). Call before run().
     */
    void setIntervalSink(
        std::size_t policy,
        std::function<void(sim::CoreId, const rnr::IntervalRecord &)>
            sink);

    /**
     * Append every StatSet this machine owns (memory system, cores, MRR
     * hubs, and each hub's per-policy recorders) to @p out, for JSON/CSV
     * export. The pointers stay valid as long as the Machine lives.
     */
    void collectStats(std::vector<const sim::StatSet *> &out);

    mem::MemorySystem &memorySystem() { return *memsys_; }
    mem::BackingStore &memory() { return backing_; }
    sim::Cycle cycles() const { return cycle_; }
    const sim::MachineConfig &config() const { return cfg_; }

  private:
    class TraceListener;

    sim::MachineConfig cfg_;
    /** Owned copy: callers may pass temporaries. */
    const isa::Program prog_;
    mem::StampClock clock_;
    mem::BackingStore backing_;
    mem::BackingStore initial_;
    std::unique_ptr<mem::MemorySystem> memsys_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::vector<std::unique_ptr<rnr::MrrHub>> hubs_;
    std::vector<std::unique_ptr<TraceListener>> tracers_;
    sim::Cycle cycle_ = 0;
    bool ran_ = false;
};

} // namespace rr::machine

#endif // RR_MACHINE_MACHINE_HH
