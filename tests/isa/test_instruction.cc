#include <gtest/gtest.h>

#include "isa/instruction.hh"

namespace
{

using namespace rr::isa;

Instruction
make(Opcode op, Reg rd = 1, Reg rs1 = 2, Reg rs2 = 3, std::int64_t imm = 0)
{
    return Instruction{op, rd, rs1, rs2, imm};
}

TEST(Instruction, Classification)
{
    EXPECT_TRUE(make(Opcode::Ld).isLoad());
    EXPECT_TRUE(make(Opcode::Ld).isMem());
    EXPECT_TRUE(make(Opcode::St).isStore());
    EXPECT_TRUE(make(Opcode::Xchg).isAtomic());
    EXPECT_TRUE(make(Opcode::Fadd).isAtomic());
    EXPECT_TRUE(make(Opcode::Fadd).isMem());
    EXPECT_FALSE(make(Opcode::Add).isMem());
    EXPECT_TRUE(make(Opcode::Fence).isFence());
    EXPECT_TRUE(make(Opcode::Halt).isHalt());
}

TEST(Instruction, ControlFlowClassification)
{
    EXPECT_TRUE(make(Opcode::Beq).isCondBranch());
    EXPECT_TRUE(make(Opcode::Bge).isCondBranch());
    EXPECT_FALSE(make(Opcode::Jmp).isCondBranch());
    EXPECT_TRUE(make(Opcode::Jmp).isControl());
    EXPECT_TRUE(make(Opcode::Jal).isControl());
    EXPECT_TRUE(make(Opcode::Jr).isControl());
    EXPECT_TRUE(make(Opcode::Jr).isIndirect());
    EXPECT_FALSE(make(Opcode::Jal).isIndirect());
    EXPECT_FALSE(make(Opcode::Add).isControl());
}

TEST(Instruction, RegisterWriteClassification)
{
    EXPECT_TRUE(make(Opcode::Add).writesRd());
    EXPECT_TRUE(make(Opcode::Ld).writesRd());
    EXPECT_TRUE(make(Opcode::Xchg).writesRd());
    EXPECT_TRUE(make(Opcode::Jal).writesRd());
    EXPECT_FALSE(make(Opcode::St).writesRd());
    EXPECT_FALSE(make(Opcode::Beq).writesRd());
    EXPECT_FALSE(make(Opcode::Jmp).writesRd());
    EXPECT_FALSE(make(Opcode::Halt).writesRd());
    // Writes to r0 are discarded: not a register write.
    EXPECT_FALSE(make(Opcode::Add, 0).writesRd());
}

TEST(Instruction, SourceRegisterClassification)
{
    EXPECT_TRUE(make(Opcode::Add).readsRs1());
    EXPECT_TRUE(make(Opcode::Add).readsRs2());
    EXPECT_TRUE(make(Opcode::Addi).readsRs1());
    EXPECT_FALSE(make(Opcode::Addi).readsRs2());
    EXPECT_TRUE(make(Opcode::Ld).readsRs1());
    EXPECT_FALSE(make(Opcode::Ld).readsRs2());
    EXPECT_TRUE(make(Opcode::St).readsRs2()); // store data
    EXPECT_TRUE(make(Opcode::Xchg).readsRs2());
    EXPECT_FALSE(make(Opcode::Li).readsRs1());
    EXPECT_FALSE(make(Opcode::Jmp).readsRs1());
    EXPECT_TRUE(make(Opcode::Jr).readsRs1());
}

TEST(Instruction, DisassembleFormats)
{
    EXPECT_EQ(disassemble(make(Opcode::Add, 3, 1, 2)), "add r3, r1, r2");
    EXPECT_EQ(disassemble(make(Opcode::Li, 4, 0, 0, -7)), "li r4, -7");
    EXPECT_EQ(disassemble(make(Opcode::Ld, 5, 6, 0, 16)),
              "ld r5, 16(r6)");
    EXPECT_EQ(disassemble(make(Opcode::St, 0, 6, 7, 8)), "st r7, 8(r6)");
    EXPECT_EQ(disassemble(make(Opcode::Beq, 0, 1, 2, 42)),
              "beq r1, r2, @42");
    EXPECT_EQ(disassemble(make(Opcode::Halt)), "halt");
    EXPECT_EQ(disassemble(make(Opcode::Fadd, 3, 4, 5, 0)),
              "fadd r3, r5, 0(r4)");
}

TEST(Instruction, MnemonicsAreUnique)
{
    // Spot-check a few; duplicates would break tooling.
    EXPECT_STRNE(mnemonic(Opcode::Add), mnemonic(Opcode::Addi));
    EXPECT_STRNE(mnemonic(Opcode::Sll), mnemonic(Opcode::Slli));
    EXPECT_STRNE(mnemonic(Opcode::Xchg), mnemonic(Opcode::Fadd));
}

} // namespace
