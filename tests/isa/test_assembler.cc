#include <gtest/gtest.h>

#include "isa/assembler.hh"

namespace
{

using namespace rr::isa;

TEST(Assembler, ResolvesBackwardLabels)
{
    Assembler a;
    a.label("top");
    a.addi(1, 1, 1);
    a.jmp("top");
    Program p = a.assemble();
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p.code[1].op, Opcode::Jmp);
    EXPECT_EQ(p.code[1].imm, 0);
}

TEST(Assembler, ResolvesForwardLabels)
{
    Assembler a;
    a.beq(1, 2, "skip");
    a.addi(1, 1, 1);
    a.label("skip");
    a.halt();
    Program p = a.assemble();
    EXPECT_EQ(p.code[0].imm, 2);
}

TEST(AssemblerDeathTest, UndefinedLabelIsFatal)
{
    Assembler a;
    a.jmp("nowhere");
    EXPECT_EXIT(a.assemble(), testing::ExitedWithCode(1), "undefined");
}

TEST(AssemblerDeathTest, DuplicateLabelIsFatal)
{
    Assembler a;
    a.label("x");
    EXPECT_EXIT(a.label("x"), testing::ExitedWithCode(1), "duplicate");
}

TEST(Assembler, StoreOperandsMapToRs1Rs2)
{
    Assembler a;
    a.st(7, 6, 24);
    Program p = a.assemble();
    EXPECT_EQ(p.code[0].rs1, 6); // base
    EXPECT_EQ(p.code[0].rs2, 7); // value
    EXPECT_EQ(p.code[0].imm, 24);
}

TEST(Assembler, AtomicOperands)
{
    Assembler a;
    a.xchg(3, 4, 5, 8);
    a.fadd(6, 7, 8, 0);
    Program p = a.assemble();
    EXPECT_EQ(p.code[0].op, Opcode::Xchg);
    EXPECT_EQ(p.code[0].rd, 3);
    EXPECT_EQ(p.code[0].rs2, 4); // new value
    EXPECT_EQ(p.code[0].rs1, 5); // base
    EXPECT_EQ(p.code[1].op, Opcode::Fadd);
}

TEST(Assembler, EntriesDefaultToZero)
{
    Assembler a;
    a.halt();
    Program p = a.assemble();
    EXPECT_EQ(p.entryFor(0), 0u);
    EXPECT_EQ(p.entryFor(5), 0u);
}

TEST(Assembler, PerThreadEntries)
{
    Assembler a;
    a.entry(0);
    a.halt();
    a.entry(2);
    a.halt();
    Program p = a.assemble();
    EXPECT_EQ(p.entryFor(0), 0u);
    EXPECT_EQ(p.entryFor(1), 0u); // inherits previous entry
    EXPECT_EQ(p.entryFor(2), 1u);
    EXPECT_EQ(p.entryFor(7), 0u); // beyond table: entry 0
}

TEST(Assembler, DataWordsAreWordAligned)
{
    Assembler a;
    a.data(0x1004, 99); // unaligned: snapped to 0x1000
    a.halt();
    Program p = a.assemble();
    ASSERT_EQ(p.initialData.count(0x1000), 1u);
    EXPECT_EQ(p.initialData.at(0x1000), 99u);
}

TEST(Assembler, JalRecordsLinkRegisterAndTarget)
{
    Assembler a;
    a.jal(9, "fn");
    a.halt();
    a.label("fn");
    a.jr(9);
    Program p = a.assemble();
    EXPECT_EQ(p.code[0].op, Opcode::Jal);
    EXPECT_EQ(p.code[0].rd, 9);
    EXPECT_EQ(p.code[0].imm, 2);
}

TEST(Assembler, HereTracksPosition)
{
    Assembler a;
    EXPECT_EQ(a.here(), 0u);
    a.nop();
    a.nop();
    EXPECT_EQ(a.here(), 2u);
}

} // namespace
