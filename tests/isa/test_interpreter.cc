#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/program.hh"
#include "mem/backing_store.hh"

namespace
{

using namespace rr::isa;
using rr::mem::BackingStore;

/** Run a program to completion on the functional interpreter. */
ExecContext
runToHalt(const Program &p, BackingStore &mem, std::uint64_t max = 100000)
{
    ExecContext ctx;
    ctx.pc = p.entryFor(0);
    while (!ctx.halted && ctx.instructions < max)
        step(p, ctx, mem);
    EXPECT_TRUE(ctx.halted) << "program did not halt";
    return ctx;
}

TEST(Interpreter, AluArithmetic)
{
    Assembler a;
    a.li(1, 10);
    a.li(2, 3);
    a.add(3, 1, 2);
    a.sub(4, 1, 2);
    a.mul(5, 1, 2);
    a.and_(6, 1, 2);
    a.or_(7, 1, 2);
    a.xor_(8, 1, 2);
    a.halt();
    BackingStore mem;
    auto ctx = runToHalt(a.assemble(), mem);
    EXPECT_EQ(ctx.regs[3], 13u);
    EXPECT_EQ(ctx.regs[4], 7u);
    EXPECT_EQ(ctx.regs[5], 30u);
    EXPECT_EQ(ctx.regs[6], 2u);
    EXPECT_EQ(ctx.regs[7], 11u);
    EXPECT_EQ(ctx.regs[8], 9u);
}

TEST(Interpreter, ShiftsAndCompares)
{
    Assembler a;
    a.li(1, 0xf0);
    a.slli(2, 1, 4);
    a.srli(3, 1, 4);
    a.li(4, -1);
    a.slt(5, 4, 1);  // -1 < 0xf0 signed -> 1
    a.sltu(6, 4, 1); // max unsigned < 0xf0 -> 0
    a.halt();
    BackingStore mem;
    auto ctx = runToHalt(a.assemble(), mem);
    EXPECT_EQ(ctx.regs[2], 0xf00u);
    EXPECT_EQ(ctx.regs[3], 0xfu);
    EXPECT_EQ(ctx.regs[5], 1u);
    EXPECT_EQ(ctx.regs[6], 0u);
}

TEST(Interpreter, R0IsHardwiredZero)
{
    Assembler a;
    a.li(0, 99); // discarded
    a.add(1, 0, 0);
    a.halt();
    BackingStore mem;
    auto ctx = runToHalt(a.assemble(), mem);
    EXPECT_EQ(ctx.regs[0], 0u);
    EXPECT_EQ(ctx.regs[1], 0u);
}

TEST(Interpreter, LoadStoreRoundTrip)
{
    Assembler a;
    a.li(1, 0x2000);
    a.li(2, 1234);
    a.st(2, 1, 8);
    a.ld(3, 1, 8);
    a.halt();
    BackingStore mem;
    auto ctx = runToHalt(a.assemble(), mem);
    EXPECT_EQ(ctx.regs[3], 1234u);
    EXPECT_EQ(mem.read64(0x2008), 1234u);
}

TEST(Interpreter, InitialDataVisible)
{
    Assembler a;
    a.data(0x3000, 77);
    a.li(1, 0x3000);
    a.ld(2, 1, 0);
    a.halt();
    BackingStore mem;
    Program p = a.assemble();
    for (auto &[addr, v] : p.initialData)
        mem.write64(addr, v);
    auto ctx = runToHalt(p, mem);
    EXPECT_EQ(ctx.regs[2], 77u);
}

TEST(Interpreter, BranchLoop)
{
    Assembler a;
    a.li(1, 5);
    a.li(2, 0);
    a.label("loop");
    a.add(2, 2, 1);
    a.addi(1, 1, -1);
    a.bne(1, 0, "loop");
    a.halt();
    BackingStore mem;
    auto ctx = runToHalt(a.assemble(), mem);
    EXPECT_EQ(ctx.regs[2], 15u); // 5+4+3+2+1
}

TEST(Interpreter, JalAndJr)
{
    Assembler a;
    a.li(3, 0);
    a.jal(9, "fn");
    a.addi(3, 3, 100); // executed after return
    a.halt();
    a.label("fn");
    a.addi(3, 3, 1);
    a.jr(9);
    BackingStore mem;
    auto ctx = runToHalt(a.assemble(), mem);
    EXPECT_EQ(ctx.regs[3], 101u);
}

TEST(Interpreter, AtomicXchgReturnsOldValue)
{
    Assembler a;
    a.data(0x4000, 5);
    a.li(1, 0x4000);
    a.li(2, 9);
    a.xchg(3, 2, 1, 0);
    a.halt();
    BackingStore mem;
    Program p = a.assemble();
    for (auto &[addr, v] : p.initialData)
        mem.write64(addr, v);
    auto ctx = runToHalt(p, mem);
    EXPECT_EQ(ctx.regs[3], 5u);
    EXPECT_EQ(mem.read64(0x4000), 9u);
}

TEST(Interpreter, AtomicFaddAccumulates)
{
    Assembler a;
    a.li(1, 0x4000);
    a.li(2, 3);
    a.fadd(3, 2, 1, 0);
    a.fadd(4, 2, 1, 0);
    a.halt();
    BackingStore mem;
    auto ctx = runToHalt(a.assemble(), mem);
    EXPECT_EQ(ctx.regs[3], 0u);
    EXPECT_EQ(ctx.regs[4], 3u);
    EXPECT_EQ(mem.read64(0x4000), 6u);
}

TEST(Interpreter, HaltStopsAndCounts)
{
    Assembler a;
    a.nop();
    a.halt();
    BackingStore mem;
    auto ctx = runToHalt(a.assemble(), mem);
    EXPECT_EQ(ctx.instructions, 2u); // nop + halt both count
}

TEST(Interpreter, UnalignedAccessSnapsToWord)
{
    Assembler a;
    a.li(1, 0x2003); // unaligned base
    a.li(2, 55);
    a.st(2, 1, 0);
    a.halt();
    BackingStore mem;
    runToHalt(a.assemble(), mem);
    EXPECT_EQ(mem.read64(0x2000), 55u);
}

TEST(Interpreter, EvalBranchVariants)
{
    Instruction beq{Opcode::Beq, 0, 1, 2, 0};
    EXPECT_TRUE(evalBranch(beq, 5, 5));
    EXPECT_FALSE(evalBranch(beq, 5, 6));
    Instruction blt{Opcode::Blt, 0, 1, 2, 0};
    EXPECT_TRUE(evalBranch(blt, static_cast<std::uint64_t>(-1), 0));
    Instruction bge{Opcode::Bge, 0, 1, 2, 0};
    EXPECT_TRUE(evalBranch(bge, 0, static_cast<std::uint64_t>(-1)));
}

} // namespace
