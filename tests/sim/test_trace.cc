#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "machine/machine.hh"
#include "rnr/log.hh"
#include "sim/trace.hh"
#include "workloads/kernels.hh"

namespace
{

using namespace rr;

machine::RecordingResult
recordFft()
{
    workloads::WorkloadParams wp;
    wp.numThreads = 2;
    wp.scale = 1;
    const auto w = workloads::buildKernel("fft", wp);
    sim::MachineConfig cfg;
    cfg.numCores = 2;
    std::vector<sim::RecorderConfig> pol(1);
    machine::Machine m(cfg, w.program, pol);
    return m.run();
}

/** Extract `"key":<number>` from a one-event JSON line. */
bool
numField(const std::string &line, const char *key, std::uint64_t &out)
{
    const std::string pat = std::string("\"") + key + "\":";
    const auto p = line.find(pat);
    if (p == std::string::npos)
        return false;
    out = std::strtoull(line.c_str() + p + pat.size(), nullptr, 10);
    return true;
}

TEST(Trace, EmittedFileIsWellFormedAndOrderedPerCore)
{
    const std::string path =
        ::testing::TempDir() + "rr_trace_test.json";
    ASSERT_FALSE(sim::TraceSink::enabled());
    sim::TraceSink::open(path);
    ASSERT_TRUE(sim::TraceSink::enabled());
    recordFft();
    EXPECT_GT(sim::TraceSink::get()->eventCount(), 0u);
    sim::TraceSink::close();
    EXPECT_FALSE(sim::TraceSink::enabled());

    std::ifstream in(path);
    ASSERT_TRUE(in);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_NE(line.find("\"traceEvents\""), std::string::npos);

    // The sink writes one event per line; a single-policy recording's
    // interval ("X") events per core track must be back-to-back in
    // time: each starts no earlier than the previous one ended.
    std::map<std::uint64_t, std::uint64_t> track_end; // tid -> last end
    std::size_t intervals = 0;
    std::size_t instants = 0;
    while (std::getline(in, line)) {
        if (line.find("\"ph\":\"X\"") != std::string::npos) {
            std::uint64_t pid = 0, tid = 0, ts = 0, dur = 0;
            ASSERT_TRUE(numField(line, "pid", pid)) << line;
            ASSERT_TRUE(numField(line, "tid", tid)) << line;
            ASSERT_TRUE(numField(line, "ts", ts)) << line;
            ASSERT_TRUE(numField(line, "dur", dur)) << line;
            if (pid != sim::TraceSink::kRecordPid)
                continue;
            ++intervals;
            const auto it = track_end.find(tid);
            if (it != track_end.end()) {
                EXPECT_GE(ts, it->second) << line;
            }
            track_end[tid] = ts + dur;
        } else if (line.find("\"ph\":\"i\"") != std::string::npos) {
            std::uint64_t ts = 0;
            EXPECT_TRUE(numField(line, "ts", ts)) << line;
            EXPECT_NE(line.find("\"s\":\"t\""), std::string::npos)
                << line;
            ++instants;
        }
    }
    EXPECT_GT(intervals, 0u);
    EXPECT_GT(instants, 0u);
    EXPECT_EQ(track_end.size(), 2u); // one interval track per core
    std::remove(path.c_str());
}

TEST(Trace, DisabledTracingIsBitIdentical)
{
    const machine::RecordingResult base = recordFft();

    const std::string path =
        ::testing::TempDir() + "rr_trace_identical.json";
    ASSERT_FALSE(sim::TraceSink::enabled());
    sim::TraceSink::open(path);
    const machine::RecordingResult traced = recordFft();
    sim::TraceSink::close();
    std::remove(path.c_str());

    EXPECT_EQ(base.totalInstructions, traced.totalInstructions);
    EXPECT_EQ(base.cycles, traced.cycles);
    EXPECT_EQ(base.memoryFingerprint, traced.memoryFingerprint);
    ASSERT_EQ(base.logs[0].size(), traced.logs[0].size());
    for (std::size_t c = 0; c < base.logs[0].size(); ++c) {
        const auto pa = rnr::pack(base.logs[0][c]);
        const auto pb = rnr::pack(traced.logs[0][c]);
        EXPECT_EQ(pa.bitCount, pb.bitCount) << "core " << c;
        EXPECT_EQ(pa.bytes, pb.bytes) << "core " << c;
    }
}

} // namespace
