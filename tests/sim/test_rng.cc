#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"

namespace
{

using rr::sim::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    const std::uint64_t first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u); // all three values appear
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(r.chance(5, 5));
        EXPECT_FALSE(r.chance(0, 5));
    }
}

TEST(Rng, BitsLookBalanced)
{
    Rng r(13);
    int ones = 0;
    for (int i = 0; i < 1000; ++i)
        ones += __builtin_popcountll(r.next());
    // 64000 bits, expect ~32000 ones.
    EXPECT_NEAR(ones, 32000, 1200);
}

} // namespace
