#include <gtest/gtest.h>

#include "sim/config.hh"

namespace
{

using namespace rr::sim;

TEST(Config, DefaultsMatchPaperTable1)
{
    MachineConfig cfg;
    EXPECT_EQ(cfg.numCores, 8u);
    EXPECT_EQ(cfg.core.robEntries, 176u);
    EXPECT_EQ(cfg.core.lsqEntries, 128u);
    EXPECT_EQ(cfg.core.numLdStUnits, 2u);
    EXPECT_EQ(cfg.core.issueWidth, 4u);
    EXPECT_EQ(cfg.l1.sizeBytes, 64u * 1024);
    EXPECT_EQ(cfg.l1.associativity, 4u);
    EXPECT_EQ(cfg.l1.hitLatency, 2u);
    EXPECT_EQ(cfg.l2.sizeBytes, 512u * 1024); // per core
    EXPECT_EQ(cfg.l2.associativity, 16u);
    EXPECT_EQ(cfg.uncore.memLatency, 150u);
    EXPECT_EQ(kLineBytes, 32u);
}

TEST(Config, RecorderDefaultsMatchPaperTable1)
{
    RecorderConfig rc;
    EXPECT_EQ(rc.traqEntries, 176u);
    EXPECT_EQ(rc.signatureBanks, 4u);
    EXPECT_EQ(rc.signatureBitsPerBank, 256u);
    EXPECT_EQ(rc.snoopTableArrays, 2u);
    EXPECT_EQ(rc.snoopTableEntries, 64u);
    EXPECT_EQ(rc.nmiBits, 4u);
}

TEST(Config, L1SetCount)
{
    MachineConfig cfg;
    // 64KB / 32B lines / 4 ways = 512 sets.
    EXPECT_EQ(cfg.l1.numSets(), 512u);
}

TEST(Config, TotalL2Scales)
{
    MachineConfig cfg;
    cfg.numCores = 16;
    EXPECT_EQ(cfg.totalL2Bytes(), 16u * 512 * 1024);
}

TEST(Config, ValidateAcceptsDefaults)
{
    MachineConfig cfg;
    cfg.validate(); // must not exit
    cfg.numCores = 4;
    cfg.validate();
}

TEST(ConfigDeathTest, RejectsZeroCores)
{
    MachineConfig cfg;
    cfg.numCores = 0;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "core");
}

TEST(ConfigDeathTest, RejectsNonPow2Sets)
{
    MachineConfig cfg;
    cfg.l1.sizeBytes = 96 * 1024; // 768 sets: not a power of two
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "sets");
}

TEST(Config, LineHelpers)
{
    EXPECT_EQ(lineAddr(0x1234), 0x1220u);
    EXPECT_EQ(wordAddr(0x1234), 0x1230u);
    EXPECT_TRUE(sameLine(0x1220, 0x123f));
    EXPECT_FALSE(sameLine(0x121f, 0x1220));
}

TEST(Config, RecorderModeNames)
{
    EXPECT_STREQ(toString(RecorderMode::Base), "Base");
    EXPECT_STREQ(toString(RecorderMode::Opt), "Opt");
}

} // namespace
