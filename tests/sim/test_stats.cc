#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace
{

using namespace rr::sim;

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    c++;
    EXPECT_EQ(c.value(), 7u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ScalarStat, TracksMeanMinMax)
{
    ScalarStat s;
    EXPECT_EQ(s.mean(), 0.0);
    s.sample(2.0);
    s.sample(4.0);
    s.sample(9.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_EQ(s.count(), 3u);
}

TEST(ScalarStat, SingleSampleIsMinAndMax)
{
    ScalarStat s;
    s.sample(-3.5);
    EXPECT_DOUBLE_EQ(s.min(), -3.5);
    EXPECT_DOUBLE_EQ(s.max(), -3.5);
    EXPECT_DOUBLE_EQ(s.mean(), -3.5);
}

TEST(Histogram, BinsByWidth)
{
    Histogram h(10, 3); // bins [0,10) [10,20) [20,30) + overflow
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(25);
    h.sample(1000); // overflow
    EXPECT_EQ(h.numBins(), 4u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.binFraction(0), 0.4);
}

TEST(Histogram, ExactBoundaryGoesToUpperBin)
{
    Histogram h(10, 5);
    h.sample(10);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(0), 0u);
}

TEST(StatSet, CounterValueForMissingNameIsZero)
{
    StatSet s("x");
    EXPECT_EQ(s.counterValue("nope"), 0u);
    s.counter("hits") += 3;
    EXPECT_EQ(s.counterValue("hits"), 3u);
}

TEST(StatSet, PrintIncludesNames)
{
    StatSet s("unit");
    s.counter("events") += 2;
    s.scalar("occ").sample(1.0);
    std::ostringstream os;
    s.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("unit.events 2"), std::string::npos);
    EXPECT_NE(out.find("unit.occ"), std::string::npos);
}

} // namespace
