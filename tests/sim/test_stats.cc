#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace
{

using namespace rr::sim;

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    c++;
    EXPECT_EQ(c.value(), 7u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ScalarStat, TracksMeanMinMax)
{
    ScalarStat s;
    EXPECT_EQ(s.mean(), 0.0);
    s.sample(2.0);
    s.sample(4.0);
    s.sample(9.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_EQ(s.count(), 3u);
}

TEST(ScalarStat, SingleSampleIsMinAndMax)
{
    ScalarStat s;
    s.sample(-3.5);
    EXPECT_DOUBLE_EQ(s.min(), -3.5);
    EXPECT_DOUBLE_EQ(s.max(), -3.5);
    EXPECT_DOUBLE_EQ(s.mean(), -3.5);
}

TEST(Histogram, BinsByWidth)
{
    Histogram h(10, 3); // bins [0,10) [10,20) [20,30) + overflow
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(25);
    h.sample(1000); // overflow
    EXPECT_EQ(h.numBins(), 4u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.binFraction(0), 0.4);
}

TEST(Histogram, ExactBoundaryGoesToUpperBin)
{
    Histogram h(10, 5);
    h.sample(10);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(0), 0u);
}

TEST(StatSet, CounterValueForMissingNameIsZero)
{
    StatSet s("x");
    EXPECT_EQ(s.counterValue("nope"), 0u);
    s.counter("hits") += 3;
    EXPECT_EQ(s.counterValue("hits"), 3u);
}

TEST(StatSet, PrintIncludesNames)
{
    StatSet s("unit");
    s.counter("events") += 2;
    s.scalar("occ").sample(1.0);
    std::ostringstream os;
    s.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("unit.events 2"), std::string::npos);
    EXPECT_NE(out.find("unit.occ"), std::string::npos);
}

TEST(ScalarStat, MergeHandlesEmptyStreams)
{
    ScalarStat a;
    ScalarStat b;
    b.sample(3.0);
    b.sample(-1.0);

    a.merge(b); // empty += non-empty: copies
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.min(), -1.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);

    ScalarStat empty;
    a.merge(empty); // non-empty += empty: unchanged
    EXPECT_EQ(a.count(), 2u);

    ScalarStat c;
    c.sample(10.0);
    a.merge(c);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), -1.0);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

TEST(StatSet, HistogramIsGetOrCreate)
{
    StatSet s("unit");
    Histogram &h = s.histogram("occ", 5, 4);
    h.sample(7);
    // Shape arguments only apply on creation.
    Histogram &again = s.histogram("occ", 999, 1);
    EXPECT_EQ(&h, &again);
    EXPECT_EQ(again.binWidth(), 5u);
    EXPECT_EQ(again.binCount(1), 1u);
}

TEST(StatSet, PrintIncludesHistograms)
{
    StatSet s("unit");
    s.histogram("occ", 10, 3).sample(15);
    s.histogram("occ").sample(1000); // overflow bucket
    std::ostringstream os;
    s.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("unit.occ histogram n=2 width=10"),
              std::string::npos);
    EXPECT_NE(out.find("[10]=1"), std::string::npos);
    EXPECT_NE(out.find("[30+]=1"), std::string::npos);
}

TEST(StatSet, MergeFromCombinesAllKinds)
{
    StatSet a("a");
    a.counter("hits") += 2;
    a.scalar("occ").sample(1.0);
    a.histogram("dist", 10, 2).sample(5);

    StatSet b("b");
    b.counter("hits") += 3;
    b.counter("misses") += 1;
    b.scalar("occ").sample(9.0);
    b.histogram("dist", 10, 2).sample(15);

    a.mergeFrom(b);
    EXPECT_EQ(a.counterValue("hits"), 5u);
    EXPECT_EQ(a.counterValue("misses"), 1u);
    EXPECT_EQ(a.scalars().at("occ").count(), 2u);
    EXPECT_DOUBLE_EQ(a.scalars().at("occ").max(), 9.0);
    EXPECT_EQ(a.histograms().at("dist").total(), 2u);
    EXPECT_EQ(a.histograms().at("dist").binCount(1), 1u);
}

TEST(StatSet, JsonContainsEveryStatAndNullsEmptyScalars)
{
    StatSet s("unit");
    s.counter("events") += 7;
    s.scalar("occ").sample(2.5);
    s.scalar("never_sampled"); // registered but empty
    s.histogram("dist", 10, 2).sample(25);

    std::ostringstream os;
    s.toJson(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"name\":\"unit\""), std::string::npos);
    EXPECT_NE(out.find("\"events\":7"), std::string::npos);
    EXPECT_NE(out.find("\"count\":1"), std::string::npos);
    // Empty stream: mean/min/max are null, not a fake 0.
    EXPECT_NE(out.find("\"never_sampled\":{\"count\":0,\"sum\":0,"
                       "\"mean\":null,\"min\":null,\"max\":null}"),
              std::string::npos);
    EXPECT_NE(out.find("\"dist\":{\"bin_width\":10,\"total\":1,"
                       "\"bins\":[0,0,1]}"),
              std::string::npos);
}

TEST(StatSet, CsvHasOneRowPerField)
{
    StatSet s("unit");
    s.counter("events") += 7;
    s.scalar("empty");
    s.histogram("dist", 10, 1).sample(3);

    std::ostringstream os;
    s.toCsv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("unit,events,value,7"), std::string::npos);
    // Empty scalar leaves the value column blank.
    EXPECT_NE(out.find("unit,empty,mean,\n"), std::string::npos);
    EXPECT_NE(out.find("unit,dist,bin0,1"), std::string::npos);
}

TEST(WriteStatsJson, WrapsSetsInAnArray)
{
    StatSet a("a");
    a.counter("x") += 1;
    StatSet b("b");
    std::ostringstream os;
    writeStatsJson(os, {&a, &b});
    const std::string out = os.str();
    EXPECT_EQ(out.front(), '[');
    EXPECT_EQ(out.back(), ']');
    EXPECT_NE(out.find("\"name\":\"a\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"b\""), std::string::npos);
}

} // namespace
