/**
 * @file
 * Unit tests for the deterministic fault-injection subsystem: FaultPlan
 * spec parsing (round-trips and typed rejection of bad clauses), the
 * install/uninstall lifecycle, seed-determinism of fault decisions, the
 * zero-rate-never-draws guarantee that underpins bit-identical
 * zero-fault recordings, and the per-clause I/O outcome semantics
 * (crash-at, io-error, enospc, short-write, fsync-fail).
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <stdexcept>
#include <vector>

#include "sim/faultinject.hh"
#include "sim/types.hh"

namespace
{

using namespace rr;
using sim::FaultInjector;
using sim::FaultPlan;

/** Installs a plan for one test and guarantees uninstall on exit. */
class InjectorGuard
{
  public:
    explicit InjectorGuard(const FaultPlan &plan)
    {
        FaultInjector::install(plan);
    }
    ~InjectorGuard() { FaultInjector::uninstall(); }
};

TEST(FaultPlan, DefaultPlanInjectsNothing)
{
    FaultPlan plan;
    EXPECT_FALSE(plan.any());
    EXPECT_EQ(plan.describe(), "none");
    EXPECT_EQ(plan.seed, 1u);
}

TEST(FaultPlan, ParseEmptySpecYieldsDefault)
{
    FaultPlan plan = FaultPlan::parse("");
    EXPECT_FALSE(plan.any());
    EXPECT_EQ(plan.seed, 1u);
}

TEST(FaultPlan, ParseAllClauses)
{
    FaultPlan plan = FaultPlan::parse(
        "seed=42,drop-snoop=0.02,delay-snoop=0.05,delay-cycles=16,"
        "force-term=0.005,st-saturate=4,alias-sig=6,short-write=0.3,"
        "io-error=0.2,enospc=0.1,fsync-fail=2,crash-at=700,budget=64k");
    EXPECT_EQ(plan.seed, 42u);
    EXPECT_EQ(plan.dropSnoopPpm, 20000u);
    EXPECT_EQ(plan.delaySnoopPpm, 50000u);
    EXPECT_EQ(plan.delaySnoopCycles, 16u);
    EXPECT_EQ(plan.forceTermPpm, 5000u);
    EXPECT_EQ(plan.stSaturateAt, 4u);
    EXPECT_EQ(plan.sigAliasBits, 6u);
    EXPECT_EQ(plan.shortWritePpm, 300000u);
    EXPECT_EQ(plan.ioErrorPpm, 200000u);
    EXPECT_EQ(plan.enospcPpm, 100000u);
    EXPECT_EQ(plan.fsyncFailures, 2u);
    EXPECT_EQ(plan.crashAtByte, 700u);
    EXPECT_EQ(plan.logBudgetBytes, 64u * 1024u);
    EXPECT_TRUE(plan.any());
}

TEST(FaultPlan, ByteSuffixes)
{
    EXPECT_EQ(FaultPlan::parse("budget=4k").logBudgetBytes, 4096u);
    EXPECT_EQ(FaultPlan::parse("budget=2m").logBudgetBytes,
              2u * 1024u * 1024u);
    EXPECT_EQ(FaultPlan::parse("crash-at=1K").crashAtByte, 1024u);
}

TEST(FaultPlan, DescribeParsesBack)
{
    const char *spec =
        "drop-snoop=0.02,force-term=0.005,st-saturate=4,fsync-fail=2,"
        "budget=1024,seed=9";
    FaultPlan plan = FaultPlan::parse(spec);
    FaultPlan again = FaultPlan::parse(plan.describe());
    EXPECT_EQ(again.seed, plan.seed);
    EXPECT_EQ(again.dropSnoopPpm, plan.dropSnoopPpm);
    EXPECT_EQ(again.forceTermPpm, plan.forceTermPpm);
    EXPECT_EQ(again.stSaturateAt, plan.stSaturateAt);
    EXPECT_EQ(again.fsyncFailures, plan.fsyncFailures);
    EXPECT_EQ(again.logBudgetBytes, plan.logBudgetBytes);
}

TEST(FaultPlan, RejectsBadInput)
{
    EXPECT_THROW(FaultPlan::parse("bogus-clause=1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("drop-snoop"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("drop-snoop=1.5"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("drop-snoop=-0.1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("drop-snoop=abc"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("seed=12x"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("budget=9z"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("alias-sig=33"),
                 std::invalid_argument);
    // One bad clause poisons the whole spec even when others are fine.
    EXPECT_THROW(FaultPlan::parse("drop-snoop=0.1,nope=3"),
                 std::invalid_argument);
}

TEST(FaultInjector, InstallUninstallLifecycle)
{
    ASSERT_FALSE(FaultInjector::enabled());
    {
        InjectorGuard guard(FaultPlan::parse("drop-snoop=0.5"));
        ASSERT_TRUE(FaultInjector::enabled());
        ASSERT_NE(FaultInjector::get(), nullptr);
        EXPECT_EQ(FaultInjector::get()->plan().dropSnoopPpm, 500000u);
    }
    EXPECT_FALSE(FaultInjector::enabled());
    // uninstall with nothing installed is a no-op.
    FaultInjector::uninstall();
    EXPECT_FALSE(FaultInjector::enabled());
}

TEST(FaultInjector, SameSeedSameDecisionSequence)
{
    const FaultPlan plan = FaultPlan::parse("seed=7,drop-snoop=0.5");
    std::vector<bool> first, second;
    {
        InjectorGuard guard(plan);
        for (int i = 0; i < 256; ++i)
            first.push_back(FaultInjector::get()->dropSnoop(0));
    }
    {
        InjectorGuard guard(plan);
        for (int i = 0; i < 256; ++i)
            second.push_back(FaultInjector::get()->dropSnoop(0));
    }
    EXPECT_EQ(first, second);

    std::vector<bool> other;
    {
        InjectorGuard guard(FaultPlan::parse("seed=8,drop-snoop=0.5"));
        for (int i = 0; i < 256; ++i)
            other.push_back(FaultInjector::get()->dropSnoop(0));
    }
    EXPECT_NE(first, other);
}

TEST(FaultInjector, ZeroRateClausesNeverDrawFromTheRng)
{
    // The force-term decision stream must be identical whether or not
    // zero-rate drop/delay consultations are interleaved: a rate of 0
    // returns false without consuming RNG state. This is the property
    // that makes a zero-fault plan bit-identical to no injector.
    const FaultPlan plan = FaultPlan::parse("seed=3,force-term=0.5");
    std::vector<bool> plain, interleaved;
    {
        InjectorGuard guard(plan);
        for (int i = 0; i < 256; ++i)
            plain.push_back(FaultInjector::get()->forceTerminate(0));
    }
    {
        InjectorGuard guard(plan);
        for (int i = 0; i < 256; ++i) {
            EXPECT_FALSE(FaultInjector::get()->dropSnoop(0));
            EXPECT_FALSE(FaultInjector::get()->delaySnoop(1));
            interleaved.push_back(
                FaultInjector::get()->forceTerminate(0));
        }
    }
    EXPECT_EQ(plain, interleaved);
}

TEST(FaultInjector, DecisionsAreCounted)
{
    InjectorGuard guard(FaultPlan::parse("seed=5,drop-snoop=1.0"));
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(FaultInjector::get()->dropSnoop(2));
    const sim::StatSet &stats = FaultInjector::get()->stats();
    EXPECT_EQ(stats.counterValue("snoops_dropped"), 10u);
    EXPECT_EQ(stats.counterValue("snoops_dropped_core2"), 10u);
}

TEST(FaultInjector, AliasLineClearsLowLineIndexBits)
{
    InjectorGuard guard(FaultPlan::parse("alias-sig=2"));
    FaultInjector *inj = FaultInjector::get();
    const sim::Addr base = 16 * sim::kLineBytes;
    // All four lines of an alias group coarsen to the group base...
    for (sim::Addr line = 0; line < 4; ++line)
        EXPECT_EQ(inj->aliasLine(base + line * sim::kLineBytes), base);
    // ...and the next group does not alias into this one.
    EXPECT_EQ(inj->aliasLine(base + 4 * sim::kLineBytes),
              base + 4 * sim::kLineBytes);
}

TEST(FaultInjector, AliasLineIsIdentityWhenDisabled)
{
    InjectorGuard guard(FaultPlan::parse("drop-snoop=0.5"));
    EXPECT_EQ(FaultInjector::get()->aliasLine(0x12345 * sim::kLineBytes),
              sim::Addr{0x12345} * sim::kLineBytes);
}

TEST(FaultInjector, CrashAtTearsTheWriteStraddlingTheBoundary)
{
    using Outcome = FaultInjector::IoOutcome;
    InjectorGuard guard(FaultPlan::parse("crash-at=100"));
    FaultInjector *inj = FaultInjector::get();

    // Writes entirely below the boundary proceed normally.
    EXPECT_EQ(inj->onWrite(0, 50).kind, Outcome::Kind::None);
    EXPECT_EQ(inj->onWrite(50, 50).kind, Outcome::Kind::None);

    // The write that would cross byte 100 is torn mid-buffer.
    Outcome out = inj->onWrite(90, 20);
    EXPECT_EQ(out.kind, Outcome::Kind::Crash);
    EXPECT_EQ(out.maxBytes, 10u);

    // At or past the boundary nothing more may reach the file.
    out = inj->onWrite(100, 5);
    EXPECT_EQ(out.kind, Outcome::Kind::Crash);
    EXPECT_EQ(out.maxBytes, 0u);
}

TEST(FaultInjector, IoErrorOutcomesCarryTheRightErrno)
{
    using Outcome = FaultInjector::IoOutcome;
    {
        InjectorGuard guard(FaultPlan::parse("io-error=1.0"));
        Outcome out = FaultInjector::get()->onWrite(0, 64);
        EXPECT_EQ(out.kind, Outcome::Kind::Error);
        EXPECT_EQ(out.err, EIO);
    }
    {
        InjectorGuard guard(FaultPlan::parse("enospc=1.0"));
        Outcome out = FaultInjector::get()->onWrite(0, 64);
        EXPECT_EQ(out.kind, Outcome::Kind::Error);
        EXPECT_EQ(out.err, ENOSPC);
    }
}

TEST(FaultInjector, ShortWriteTruncatesButNeverToZero)
{
    using Outcome = FaultInjector::IoOutcome;
    InjectorGuard guard(FaultPlan::parse("seed=11,short-write=1.0"));
    FaultInjector *inj = FaultInjector::get();
    for (int i = 0; i < 64; ++i) {
        Outcome out = inj->onWrite(0, 64);
        ASSERT_EQ(out.kind, Outcome::Kind::ShortWrite);
        EXPECT_GE(out.maxBytes, 1u);
        EXPECT_LT(out.maxBytes, 64u);
    }
    // A 1-byte write cannot be made shorter; it must pass.
    EXPECT_EQ(inj->onWrite(0, 1).kind, Outcome::Kind::None);
}

TEST(FaultInjector, FsyncFailuresAreTransientAndBounded)
{
    InjectorGuard guard(FaultPlan::parse("fsync-fail=2"));
    FaultInjector *inj = FaultInjector::get();
    EXPECT_EQ(inj->onSync(), EIO);
    EXPECT_EQ(inj->onSync(), EIO);
    // After the budget is consumed every sync succeeds.
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(inj->onSync(), 0);
}

TEST(FaultInjector, DegradationsAreCounted)
{
    InjectorGuard guard(FaultPlan::parse("st-saturate=1"));
    FaultInjector::get()->noteDegradation("opt_base_downgrades");
    FaultInjector::get()->noteDegradation("opt_base_downgrades");
    EXPECT_EQ(FaultInjector::get()->stats().counterValue(
                  "opt_base_downgrades"),
              2u);
}

} // namespace
