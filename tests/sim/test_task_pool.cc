#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "sim/task_pool.hh"

namespace
{

using rr::sim::TaskPool;

TEST(TaskPool, DrainOnEmptyQueueReturnsImmediately)
{
    TaskPool pool(4);
    const auto stats = pool.drain();
    EXPECT_EQ(stats.tasksRun, 0u);
}

TEST(TaskPool, RunsEveryTaskExactlyOnce)
{
    TaskPool pool(4);
    std::vector<std::atomic<int>> ran(100);
    for (auto &r : ran)
        r = 0;
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran, i] { ++ran[i]; });
    const auto stats = pool.drain();
    EXPECT_EQ(stats.tasksRun, 100u);
    for (const auto &r : ran)
        EXPECT_EQ(r.load(), 1);
}

TEST(TaskPool, SubmitFromInsideATask)
{
    // A chain submitted link by link from inside the pool: drain()
    // must not return until the whole chain ran.
    TaskPool pool(4);
    std::atomic<int> depth{0};
    std::function<void(int)> link = [&](int d) {
        ++depth;
        if (d < 50)
            pool.submit([&link, d] { link(d + 1); });
    };
    pool.submit([&link] { link(1); });
    const auto stats = pool.drain();
    EXPECT_EQ(depth.load(), 50);
    EXPECT_EQ(stats.tasksRun, 50u);
}

TEST(TaskPool, SingleWorkerRunsInline)
{
    TaskPool pool(1);
    EXPECT_EQ(pool.workers(), 1u);
    std::thread::id runner;
    pool.submit([&runner] { runner = std::this_thread::get_id(); });
    pool.drain();
    EXPECT_TRUE(runner == std::this_thread::get_id());
}

TEST(TaskPool, CancelPendingDropsQueuedTasks)
{
    TaskPool pool(1); // inline: deterministic ordering
    std::atomic<int> ran{0};
    for (int i = 0; i < 10; ++i) {
        pool.submit([&] {
            if (++ran == 3)
                pool.cancelPending();
        });
    }
    pool.drain();
    EXPECT_EQ(ran.load(), 3);

    // The pool is reusable and the cancel flag resets on drain().
    pool.submit([&] { ++ran; });
    pool.drain();
    EXPECT_EQ(ran.load(), 4);
}

TEST(TaskPool, DrainStatsCoverEveryWorker)
{
    TaskPool pool(3);
    for (int i = 0; i < 30; ++i)
        pool.submit([] {});
    const auto stats = pool.drain();
    ASSERT_EQ(stats.workerBusySeconds.size(), 3u);
    ASSERT_EQ(stats.workerTasks.size(), 3u);
    std::uint64_t sum = 0;
    for (const auto t : stats.workerTasks)
        sum += t;
    EXPECT_EQ(sum, 30u);
    EXPECT_EQ(stats.tasksRun, 30u);
    EXPECT_GT(stats.wallSeconds, 0.0);
}

TEST(TaskPool, ZeroMeansAllHardwareThreads)
{
    TaskPool pool(0);
    EXPECT_GE(pool.workers(), 1u);
}

TEST(TaskPool, AffinityTasksAllRunExactlyOnce)
{
    TaskPool pool(4);
    std::vector<std::atomic<int>> ran(100);
    for (auto &r : ran)
        r = 0;
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran, i] { ++ran[i]; },
                    static_cast<std::uint32_t>(i % 7));
    const auto stats = pool.drain();
    EXPECT_EQ(stats.tasksRun, 100u);
    for (const auto &r : ran)
        EXPECT_EQ(r.load(), 1);
}

TEST(TaskPool, AffinityHintNeverStrandsTasks)
{
    // Every task hints at the same worker; idle workers must steal
    // from its local queue rather than let the backlog serialize.
    TaskPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 48; ++i)
        pool.submit(
            [&ran] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                ++ran;
            },
            0);
    const auto stats = pool.drain();
    EXPECT_EQ(ran.load(), 48);
    std::uint32_t busy_workers = 0;
    for (const auto t : stats.workerTasks)
        busy_workers += t != 0;
    EXPECT_GT(busy_workers, 1u);
}

TEST(TaskPool, AffinitySubmitFromInsideATask)
{
    // A per-"core" chain submitted link by link with a stable hint —
    // the parallel replayer's same-core continuation pattern.
    TaskPool pool(4);
    std::array<std::atomic<int>, 3> depth{};
    std::function<void(std::uint32_t, int)> link =
        [&](std::uint32_t core, int d) {
            ++depth[core];
            if (d < 40)
                pool.submit([&link, core, d] { link(core, d + 1); },
                            core);
        };
    for (std::uint32_t core = 0; core < 3; ++core)
        pool.submit([&link, core] { link(core, 1); }, core);
    const auto stats = pool.drain();
    EXPECT_EQ(stats.tasksRun, 3u * 40u);
    for (const auto &d : depth)
        EXPECT_EQ(d.load(), 40);
}

TEST(TaskPool, MixedPlainAndAffinitySubmits)
{
    TaskPool pool(3);
    std::atomic<int> ran{0};
    for (int i = 0; i < 60; ++i) {
        if (i % 2 == 0)
            pool.submit([&ran] { ++ran; });
        else
            pool.submit([&ran] { ++ran; },
                        static_cast<std::uint32_t>(i));
    }
    EXPECT_EQ(pool.drain().tasksRun, 60u);
    EXPECT_EQ(ran.load(), 60);
}

TEST(TaskPool, AffinityOnSingleWorkerRunsInline)
{
    TaskPool pool(1);
    std::thread::id runner;
    pool.submit([&runner] { runner = std::this_thread::get_id(); }, 5);
    EXPECT_EQ(pool.drain().tasksRun, 1u);
    EXPECT_TRUE(runner == std::this_thread::get_id());
}

} // namespace
