#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "sim/task_pool.hh"

namespace
{

using rr::sim::TaskPool;

TEST(TaskPool, DrainOnEmptyQueueReturnsImmediately)
{
    TaskPool pool(4);
    const auto stats = pool.drain();
    EXPECT_EQ(stats.tasksRun, 0u);
}

TEST(TaskPool, RunsEveryTaskExactlyOnce)
{
    TaskPool pool(4);
    std::vector<std::atomic<int>> ran(100);
    for (auto &r : ran)
        r = 0;
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran, i] { ++ran[i]; });
    const auto stats = pool.drain();
    EXPECT_EQ(stats.tasksRun, 100u);
    for (const auto &r : ran)
        EXPECT_EQ(r.load(), 1);
}

TEST(TaskPool, SubmitFromInsideATask)
{
    // A chain submitted link by link from inside the pool: drain()
    // must not return until the whole chain ran.
    TaskPool pool(4);
    std::atomic<int> depth{0};
    std::function<void(int)> link = [&](int d) {
        ++depth;
        if (d < 50)
            pool.submit([&link, d] { link(d + 1); });
    };
    pool.submit([&link] { link(1); });
    const auto stats = pool.drain();
    EXPECT_EQ(depth.load(), 50);
    EXPECT_EQ(stats.tasksRun, 50u);
}

TEST(TaskPool, SingleWorkerRunsInline)
{
    TaskPool pool(1);
    EXPECT_EQ(pool.workers(), 1u);
    std::thread::id runner;
    pool.submit([&runner] { runner = std::this_thread::get_id(); });
    pool.drain();
    EXPECT_TRUE(runner == std::this_thread::get_id());
}

TEST(TaskPool, CancelPendingDropsQueuedTasks)
{
    TaskPool pool(1); // inline: deterministic ordering
    std::atomic<int> ran{0};
    for (int i = 0; i < 10; ++i) {
        pool.submit([&] {
            if (++ran == 3)
                pool.cancelPending();
        });
    }
    pool.drain();
    EXPECT_EQ(ran.load(), 3);

    // The pool is reusable and the cancel flag resets on drain().
    pool.submit([&] { ++ran; });
    pool.drain();
    EXPECT_EQ(ran.load(), 4);
}

TEST(TaskPool, DrainStatsCoverEveryWorker)
{
    TaskPool pool(3);
    for (int i = 0; i < 30; ++i)
        pool.submit([] {});
    const auto stats = pool.drain();
    ASSERT_EQ(stats.workerBusySeconds.size(), 3u);
    ASSERT_EQ(stats.workerTasks.size(), 3u);
    std::uint64_t sum = 0;
    for (const auto t : stats.workerTasks)
        sum += t;
    EXPECT_EQ(sum, 30u);
    EXPECT_EQ(stats.tasksRun, 30u);
    EXPECT_GT(stats.wallSeconds, 0.0);
}

TEST(TaskPool, ZeroMeansAllHardwareThreads)
{
    TaskPool pool(0);
    EXPECT_GE(pool.workers(), 1u);
}

TEST(TaskPool, AffinityTasksAllRunExactlyOnce)
{
    TaskPool pool(4);
    std::vector<std::atomic<int>> ran(100);
    for (auto &r : ran)
        r = 0;
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran, i] { ++ran[i]; },
                    static_cast<std::uint32_t>(i % 7));
    const auto stats = pool.drain();
    EXPECT_EQ(stats.tasksRun, 100u);
    for (const auto &r : ran)
        EXPECT_EQ(r.load(), 1);
}

TEST(TaskPool, AffinityHintNeverStrandsTasks)
{
    // Every task hints at the same worker; idle workers must steal
    // from its local queue rather than let the backlog serialize.
    TaskPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 48; ++i)
        pool.submit(
            [&ran] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                ++ran;
            },
            0);
    const auto stats = pool.drain();
    EXPECT_EQ(ran.load(), 48);
    std::uint32_t busy_workers = 0;
    for (const auto t : stats.workerTasks)
        busy_workers += t != 0;
    EXPECT_GT(busy_workers, 1u);
}

TEST(TaskPool, AffinitySubmitFromInsideATask)
{
    // A per-"core" chain submitted link by link with a stable hint —
    // the parallel replayer's same-core continuation pattern.
    TaskPool pool(4);
    std::array<std::atomic<int>, 3> depth{};
    std::function<void(std::uint32_t, int)> link =
        [&](std::uint32_t core, int d) {
            ++depth[core];
            if (d < 40)
                pool.submit([&link, core, d] { link(core, d + 1); },
                            core);
        };
    for (std::uint32_t core = 0; core < 3; ++core)
        pool.submit([&link, core] { link(core, 1); }, core);
    const auto stats = pool.drain();
    EXPECT_EQ(stats.tasksRun, 3u * 40u);
    for (const auto &d : depth)
        EXPECT_EQ(d.load(), 40);
}

TEST(TaskPool, MixedPlainAndAffinitySubmits)
{
    TaskPool pool(3);
    std::atomic<int> ran{0};
    for (int i = 0; i < 60; ++i) {
        if (i % 2 == 0)
            pool.submit([&ran] { ++ran; });
        else
            pool.submit([&ran] { ++ran; },
                        static_cast<std::uint32_t>(i));
    }
    EXPECT_EQ(pool.drain().tasksRun, 60u);
    EXPECT_EQ(ran.load(), 60);
}

TEST(TaskPool, AffinityOnSingleWorkerRunsInline)
{
    TaskPool pool(1);
    std::thread::id runner;
    pool.submit([&runner] { runner = std::this_thread::get_id(); }, 5);
    EXPECT_EQ(pool.drain().tasksRun, 1u);
    EXPECT_TRUE(runner == std::this_thread::get_id());
}

// --- service mode (the replay daemon's executor shape) ----------------

TEST(TaskPool, ServiceModeRunsTasksAcrossIdlePeriods)
{
    TaskPool pool(4);
    pool.start();
    EXPECT_TRUE(pool.serving());
    std::atomic<int> ran{0};
    for (int i = 0; i < 50; ++i)
        pool.submit([&ran] { ++ran; });
    while (pool.serviceTasksRun() < 50)
        std::this_thread::yield();
    // Idle gap, then a second burst: the pool must stay alive.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    for (int i = 0; i < 50; ++i)
        pool.submit([&ran] { ++ran; }, static_cast<std::uint32_t>(i));
    EXPECT_EQ(pool.stop(/*finish_queued=*/true), 0u);
    EXPECT_EQ(ran.load(), 100);
    EXPECT_FALSE(pool.serving());
}

TEST(TaskPool, ServiceStopWithoutFinishDropsQueued)
{
    TaskPool pool(1);
    pool.start();
    std::atomic<bool> release{false};
    std::atomic<int> ran{0};
    pool.submit([&] {
        ++ran;
        while (!release.load())
            std::this_thread::yield();
    });
    // Queue more behind the blocked worker, then abort-stop: the
    // queued tasks are dropped, the in-flight one finishes.
    for (int i = 0; i < 50; ++i)
        pool.submit([&ran] { ++ran; });
    std::thread releaser([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        release = true;
    });
    const std::uint64_t dropped = pool.stop(/*finish_queued=*/false);
    releaser.join();
    EXPECT_EQ(ran.load() + static_cast<int>(dropped), 51);
    EXPECT_GE(dropped, 1u);
}

TEST(TaskPool, CancelPendingDoesNotWedgeServiceMode)
{
    // Regression: cancelPending() used to latch the refuse-submits
    // flag unconditionally. Inside a drain() the latch re-arms when
    // the drain returns, but a serving pool has no drain end — the
    // latch silently dropped every later submit, wedging the daemon
    // after its first cancellation.
    TaskPool pool(2);
    pool.start();
    pool.submit([] {});
    pool.cancelPending();
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran = true; });
    while (!ran.load())
        std::this_thread::yield();
    pool.stop(true);
    EXPECT_TRUE(ran.load());
}

TEST(TaskPool, ServiceRestartAfterStop)
{
    TaskPool pool(2);
    for (int cycle = 0; cycle < 3; ++cycle) {
        pool.start();
        std::atomic<int> ran{0};
        for (int i = 0; i < 20; ++i)
            pool.submit([&ran] { ++ran; });
        pool.stop(true);
        EXPECT_EQ(ran.load(), 20);
    }
}

TEST(TaskPool, ServiceConcurrentCancelStealShutdown)
{
    // TSan-covered regression for the shutdown/steal/cancel triangle:
    // three submitters spray affinity-hinted tasks across the local
    // deques (forcing steals), a canceller drops pending work
    // concurrently, and the pool is abort-stopped while everything is
    // in flight. Accounting must be airtight: every submitted task
    // either ran or was counted dropped — none lost, none run twice.
    constexpr int kSubmitters = 3;
    constexpr int kPerSubmitter = 200;
    for (int round = 0; round < 10; ++round) {
        TaskPool pool(4);
        pool.start();
        std::atomic<std::uint64_t> ran{0};
        std::atomic<std::uint64_t> cancel_dropped{0};
        std::atomic<bool> go{false};
        std::vector<std::thread> submitters;
        for (int s = 0; s < kSubmitters; ++s) {
            submitters.emplace_back([&, s] {
                while (!go.load())
                    std::this_thread::yield();
                for (int i = 0; i < kPerSubmitter; ++i)
                    pool.submit(
                        [&ran] {
                            ran.fetch_add(1,
                                          std::memory_order_relaxed);
                        },
                        static_cast<std::uint32_t>(i + s));
            });
        }
        std::thread canceller([&] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < 25; ++i) {
                cancel_dropped += pool.cancelPending();
                std::this_thread::yield();
            }
        });
        go = true;
        for (auto &t : submitters)
            t.join();
        canceller.join();
        const std::uint64_t stop_dropped = pool.stop(false);
        EXPECT_EQ(ran.load() + cancel_dropped.load() + stop_dropped,
                  static_cast<std::uint64_t>(kSubmitters) *
                      kPerSubmitter)
            << "round " << round;
        EXPECT_EQ(pool.serviceTasksRun(), ran.load());
    }
}

} // namespace
