/**
 * @file
 * sim::Arena: bump allocation, alignment, block recycling across
 * reset(), oversized requests, and steady-state capacity behavior —
 * the properties the parallel chunk decode relies on for its
 * zero-allocation staging loop.
 */

#include "sim/arena.hh"

#include <cstdint>
#include <cstring>
#include <set>

#include <gtest/gtest.h>

namespace
{

using rr::sim::Arena;

TEST(Arena, AllocZeroReturnsNull)
{
    Arena a;
    EXPECT_EQ(a.allocArray<std::uint64_t>(0), nullptr);
    EXPECT_EQ(a.capacityBytes(), 0u);
}

TEST(Arena, AllocationsAreDisjointAndWritable)
{
    Arena a;
    std::uint32_t *x = a.allocArray<std::uint32_t>(100);
    std::uint64_t *y = a.allocArray<std::uint64_t>(50);
    ASSERT_NE(x, nullptr);
    ASSERT_NE(y, nullptr);
    for (std::size_t i = 0; i < 100; ++i)
        x[i] = static_cast<std::uint32_t>(i);
    for (std::size_t i = 0; i < 50; ++i)
        y[i] = ~static_cast<std::uint64_t>(i);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_EQ(x[i], i);
    for (std::size_t i = 0; i < 50; ++i)
        EXPECT_EQ(y[i], ~static_cast<std::uint64_t>(i));
}

TEST(Arena, RespectsAlignment)
{
    Arena a;
    a.allocArray<char>(1); // misalign the bump pointer
    std::uint64_t *p = a.allocArray<std::uint64_t>(3);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                  alignof(std::uint64_t),
              0u);
    a.allocArray<char>(3);
    struct alignas(32) Wide
    {
        std::uint64_t v[4];
    };
    Wide *w = a.allocArray<Wide>(2);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w) % alignof(Wide), 0u);
}

TEST(Arena, SpillsIntoNewBlocks)
{
    Arena a(64); // minimum block size: every allocation spills
    std::set<std::uint8_t *> seen;
    for (int i = 0; i < 16; ++i) {
        std::uint8_t *p = a.allocArray<std::uint8_t>(48);
        std::memset(p, i, 48);
        EXPECT_TRUE(seen.insert(p).second);
    }
    EXPECT_GE(a.capacityBytes(), 16u * 48u);
}

TEST(Arena, OversizedRequestGetsOwnBlock)
{
    Arena a(64);
    std::uint8_t *big = a.allocArray<std::uint8_t>(10'000);
    ASSERT_NE(big, nullptr);
    std::memset(big, 0xAB, 10'000);
    EXPECT_EQ(big[9'999], 0xAB);
    EXPECT_GE(a.capacityBytes(), 10'000u);
}

TEST(Arena, ResetRecyclesWithoutGrowingCapacity)
{
    Arena a(1024);
    // Warm up: allocate a multi-block working set.
    for (int i = 0; i < 8; ++i)
        a.allocArray<std::uint64_t>(100);
    const std::size_t warm = a.capacityBytes();
    EXPECT_GT(warm, 0u);
    // Steady state: same allocation pattern after reset() must reuse
    // the warm blocks — capacity stays flat, pointers repeat.
    std::uint64_t *first = nullptr;
    for (int round = 0; round < 5; ++round) {
        a.reset();
        std::uint64_t *p = a.allocArray<std::uint64_t>(100);
        if (round == 0)
            first = p;
        else
            EXPECT_EQ(p, first);
        for (int i = 1; i < 8; ++i)
            a.allocArray<std::uint64_t>(100);
        EXPECT_EQ(a.capacityBytes(), warm);
    }
}

TEST(Arena, ResetThenLargerRequestStillWorks)
{
    Arena a(256);
    a.allocArray<std::uint8_t>(200);
    a.reset();
    std::uint8_t *p = a.allocArray<std::uint8_t>(500);
    ASSERT_NE(p, nullptr);
    std::memset(p, 7, 500);
    EXPECT_EQ(p[499], 7);
}

} // namespace
