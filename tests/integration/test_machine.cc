#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "machine/machine.hh"

namespace
{

using namespace rr;
using isa::Assembler;

sim::RecorderConfig
optPolicy()
{
    sim::RecorderConfig rc;
    rc.mode = sim::RecorderMode::Opt;
    return rc;
}

TEST(Machine, RunsSingleCoreProgram)
{
    Assembler a;
    a.li(3, 7);
    a.li(4, 6);
    a.mul(5, 3, 4);
    a.halt();
    sim::MachineConfig cfg;
    cfg.numCores = 1;
    machine::Machine m(cfg, a.assemble(), {optPolicy()});
    auto res = m.run();
    EXPECT_EQ(res.totalInstructions, 4u);
    EXPECT_EQ(m.core(0).archReg(5), 42u);
    EXPECT_EQ(res.cores.size(), 1u);
    EXPECT_EQ(res.logs.size(), 1u);
    EXPECT_EQ(res.logs[0].size(), 1u);
}

TEST(Machine, InitialDataLandsInMemory)
{
    Assembler a;
    a.data(0x8000, 5);
    a.li(3, 0x8000);
    a.ld(4, 3, 0);
    a.halt();
    sim::MachineConfig cfg;
    cfg.numCores = 1;
    machine::Machine m(cfg, a.assemble(), {optPolicy()});
    EXPECT_EQ(m.initialMemory().peek(0x8000), 5u);
    m.run();
    EXPECT_EQ(m.core(0).archReg(4), 5u);
}

TEST(Machine, ThreadsGetIdAndCount)
{
    Assembler a;
    a.add(3, 1, 0); // r3 = tid
    a.add(4, 2, 0); // r4 = nthreads
    a.halt();
    sim::MachineConfig cfg;
    cfg.numCores = 3;
    machine::Machine m(cfg, a.assemble(), {optPolicy()});
    m.run();
    for (sim::CoreId c = 0; c < 3; ++c) {
        EXPECT_EQ(m.core(c).archReg(3), c);
        EXPECT_EQ(m.core(c).archReg(4), 3u);
    }
}

TEST(Machine, SummaryCountsRetiredLoads)
{
    Assembler a;
    a.li(3, 0x8000);
    a.ld(4, 3, 0);
    a.ld(5, 3, 8);
    a.fadd(6, 4, 3, 16);
    a.halt();
    sim::MachineConfig cfg;
    cfg.numCores = 1;
    machine::Machine m(cfg, a.assemble(), {optPolicy()});
    auto res = m.run();
    EXPECT_EQ(res.cores[0].retiredLoads, 3u); // 2 loads + 1 atomic
    EXPECT_EQ(res.cores[0].retiredInstructions, 5u);
}

TEST(Machine, LogInstructionsMatchRetired)
{
    Assembler a;
    a.li(3, 0x8000);
    a.li(4, 20);
    a.label("loop");
    a.st(4, 3, 0);
    a.ld(5, 3, 0);
    a.addi(4, 4, -1);
    a.bne(4, 0, "loop");
    a.halt();
    sim::MachineConfig cfg;
    cfg.numCores = 1;
    machine::Machine m(cfg, a.assemble(), {optPolicy()});
    auto res = m.run();
    rnr::LogStats stats;
    stats.accumulate(res.logs[0][0]);
    EXPECT_EQ(stats.instructions(), res.cores[0].retiredInstructions);
}

TEST(MachineDeathTest, RunTwiceIsABug)
{
    Assembler a;
    a.halt();
    sim::MachineConfig cfg;
    cfg.numCores = 1;
    machine::Machine m(cfg, a.assemble(), {optPolicy()});
    m.run();
    EXPECT_DEATH(m.run(), "once");
}

TEST(MachineDeathTest, NonQuiescingProgramHitsGuard)
{
    Assembler a;
    a.label("forever");
    a.jmp("forever");
    sim::MachineConfig cfg;
    cfg.numCores = 1;
    machine::Machine m(cfg, a.assemble(), {optPolicy()});
    EXPECT_EXIT(m.run(10000), testing::ExitedWithCode(1), "quiesce");
}

TEST(Machine, SixteenCoreConfigWorks)
{
    Assembler a;
    a.li(3, 0x8000);
    a.slli(4, 1, 3);
    a.add(4, 4, 3);
    a.st(1, 4, 0); // each thread writes its tid to its own word
    a.halt();
    sim::MachineConfig cfg;
    cfg.numCores = 16;
    machine::Machine m(cfg, a.assemble(), {optPolicy()});
    m.run();
    for (std::uint64_t t = 0; t < 16; ++t)
        EXPECT_EQ(m.memory().read64(0x8000 + t * 8), t);
}

} // namespace
