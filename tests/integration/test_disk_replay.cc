/**
 * @file
 * End-to-end persistence determinism: record each workload kernel
 * *through the streaming LogWriter* to a real .rrlog file, then replay
 * from that file alone — a fresh LogReader, a fresh Machine for the
 * initial memory image, the workload rebuilt from the persisted
 * metadata — and require the replayed load-value hashes, retired
 * instruction counts and final memory fingerprint to equal the
 * recorded ones. This is the "record once, replay from disk many
 * times" property the persistent log store exists to provide; it must
 * hold for both the Base and Opt recorders.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "rnr/logstore.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"
#include "workloads/kernels.hh"

namespace
{

using namespace rr;

rnr::RecordingMeta
metaFor(const std::string &kernel, std::uint32_t cores,
        sim::RecorderMode mode)
{
    rnr::RecordingMeta meta;
    meta.kernel = kernel;
    meta.cores = cores;
    meta.scale = 1;
    meta.intensity = workloads::WorkloadParams{}.intensity;
    meta.workloadSeed = workloads::WorkloadParams{}.seed;
    meta.machineSeed = sim::MachineConfig{}.seed;
    meta.mode = mode;
    meta.intervalCap = 0;
    meta.deps = false;
    return meta;
}

/**
 * Replay using nothing but the file: every parameter (kernel, machine
 * shape, seeds, recorder mode) comes from the persisted metadata, and
 * the initial memory image from a fresh Machine, exactly as
 * `rrsim replay file.rrlog` does in a separate process.
 */
void
replayFromDiskAndCheck(const std::string &path)
{
    rnr::LogReader reader(path);
    const rnr::RecordingMeta &meta = reader.meta();

    workloads::WorkloadParams wp;
    wp.numThreads = meta.cores;
    wp.scale = meta.scale;
    wp.intensity = meta.intensity;
    wp.seed = meta.workloadSeed;
    auto w = workloads::buildKernel(meta.kernel, wp);

    sim::MachineConfig cfg;
    cfg.numCores = meta.cores;
    cfg.seed = meta.machineSeed;
    std::vector<sim::RecorderConfig> policies(1);
    policies[0] = {meta.mode, meta.intervalCap};
    machine::Machine fresh(cfg, w.program, policies);

    std::vector<rnr::CoreLog> logs = reader.readAll();
    ASSERT_EQ(logs.size(), meta.cores);
    std::vector<rnr::CoreLog> patched;
    for (const auto &log : logs)
        patched.push_back(rnr::patch(log));

    rnr::Replayer rep(w.program, std::move(patched),
                      fresh.initialMemory().clone());
    std::vector<std::uint64_t> hashes(meta.cores, 0);
    std::vector<std::uint64_t> loads(meta.cores, 0);
    rep.setLoadHook([&](sim::CoreId c, std::uint64_t v) {
        hashes[c] = machine::mixLoadValue(hashes[c], v);
        ++loads[c];
    });
    const auto res = rep.run();

    const rnr::RecordingSummary summary = reader.summary();
    EXPECT_EQ(res.memory.fingerprint(), summary.memoryFingerprint);
    EXPECT_EQ(res.instructions, summary.totalInstructions);
    ASSERT_EQ(summary.cores.size(), meta.cores);
    for (sim::CoreId c = 0; c < meta.cores; ++c) {
        EXPECT_EQ(hashes[c], summary.cores[c].loadValueHash)
            << "core " << c;
        EXPECT_EQ(loads[c], summary.cores[c].retiredLoads)
            << "core " << c;
        EXPECT_EQ(res.contexts[c].instructions,
                  summary.cores[c].retiredInstructions)
            << "core " << c;
    }
}

void
recordToDiskAndReplay(const std::string &kernel)
{
    constexpr std::uint32_t kCores = 4;
    workloads::WorkloadParams wp;
    wp.numThreads = kCores;
    auto w = workloads::buildKernel(kernel, wp);

    sim::MachineConfig cfg;
    cfg.numCores = kCores;
    // Record Base and Opt simultaneously, each streaming to its own
    // file as intervals close (the bounded-memory recording path).
    std::vector<sim::RecorderConfig> policies(2);
    policies[0] = {sim::RecorderMode::Base, 0};
    policies[1] = {sim::RecorderMode::Opt, 0};

    std::vector<std::string> paths;
    std::vector<std::unique_ptr<rnr::LogWriter>> writers;
    for (std::size_t pol = 0; pol < policies.size(); ++pol) {
        paths.push_back(::testing::TempDir() + "rr_disk_replay_" +
                        kernel + "_" + std::to_string(pol) + ".rrlog");
        writers.push_back(std::make_unique<rnr::LogWriter>(
            paths[pol], metaFor(kernel, kCores, policies[pol].mode)));
    }

    machine::Machine m(cfg, w.program, policies);
    for (std::size_t pol = 0; pol < policies.size(); ++pol) {
        rnr::LogWriter *writer = writers[pol].get();
        m.setIntervalSink(pol, [writer](sim::CoreId c,
                                        const rnr::IntervalRecord &iv) {
            writer->append(c, iv);
        });
    }
    const auto rec = m.run(500'000'000ULL);

    for (std::size_t pol = 0; pol < policies.size(); ++pol) {
        SCOPED_TRACE(testing::Message()
                     << kernel << " policy="
                     << sim::toString(policies[pol].mode));
        rnr::RecordingSummary summary;
        summary.totalInstructions = rec.totalInstructions;
        summary.cycles = rec.cycles;
        summary.memoryFingerprint = rec.memoryFingerprint;
        for (sim::CoreId c = 0; c < kCores; ++c)
            summary.cores.push_back(rnr::CoreReplaySummary{
                rec.logs[pol][c].intervals.size(),
                rec.cores[c].retiredInstructions,
                rec.cores[c].retiredLoads, rec.cores[c].loadValueHash});
        writers[pol]->finish(summary);
        EXPECT_EQ(writers[pol]->intervalsWritten(),
                  summary.cores[0].intervals +
                      summary.cores[1].intervals +
                      summary.cores[2].intervals +
                      summary.cores[3].intervals);

        // The streamed file holds exactly the in-memory log.
        rnr::LogReader reader(paths[pol]);
        const auto disk_logs = reader.readAll();
        ASSERT_EQ(disk_logs.size(), kCores);
        for (sim::CoreId c = 0; c < kCores; ++c) {
            const auto &mem_log = rec.logs[pol][c];
            ASSERT_EQ(disk_logs[c].intervals.size(),
                      mem_log.intervals.size())
                << "core " << c;
            for (std::size_t i = 0; i < mem_log.intervals.size(); ++i) {
                EXPECT_EQ(disk_logs[c].intervals[i].entries,
                          mem_log.intervals[i].entries);
                EXPECT_EQ(disk_logs[c].intervals[i].cisn,
                          mem_log.intervals[i].cisn);
                EXPECT_EQ(disk_logs[c].intervals[i].timestamp,
                          mem_log.intervals[i].timestamp);
            }
        }
        EXPECT_TRUE(reader.verify().empty());

        replayFromDiskAndCheck(paths[pol]);
        std::remove(paths[pol].c_str());
    }
}

class DiskReplayAllKernels : public ::testing::TestWithParam<std::string>
{
};

TEST_P(DiskReplayAllKernels, RecordedFileReplaysDeterministically)
{
    recordToDiskAndReplay(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, DiskReplayAllKernels,
    ::testing::ValuesIn(rr::workloads::kernelNames()),
    [](const auto &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
