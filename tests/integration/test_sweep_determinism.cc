/**
 * @file
 * The parallel experiment engine must not perturb the experiments: the
 * same app recorded through sim::SweepRunner with 1 worker (inline,
 * serial reference) and with 8 workers must produce bit-identical
 * packed logs and memory fingerprints for every policy. Each job
 * builds its own Machine, so the only way this could fail is shared
 * mutable state leaking between concurrent recordings — exactly what
 * the test guards against.
 */

#include <gtest/gtest.h>

#include <vector>

#include "machine/machine.hh"
#include "rnr/log.hh"
#include "sim/sweep.hh"
#include "workloads/kernels.hh"

namespace
{

using namespace rr;

std::vector<sim::RecorderConfig>
fourPolicies()
{
    std::vector<sim::RecorderConfig> p(4);
    p[0].mode = sim::RecorderMode::Base;
    p[0].maxIntervalInstructions = 4096;
    p[1].mode = sim::RecorderMode::Base;
    p[1].maxIntervalInstructions = 0;
    p[2].mode = sim::RecorderMode::Opt;
    p[2].maxIntervalInstructions = 4096;
    p[3].mode = sim::RecorderMode::Opt;
    p[3].maxIntervalInstructions = 0;
    return p;
}

struct RecordedRun
{
    std::uint64_t memoryFingerprint = 0;
    std::uint64_t totalInstructions = 0;
    /** pack()ed log bytes per policy per core: the bit-exact artifact. */
    std::vector<std::vector<std::vector<std::uint8_t>>> packedLogs;
};

RecordedRun
recordOnce(const std::string &kernel, std::uint32_t cores)
{
    workloads::WorkloadParams wp;
    wp.numThreads = cores;
    wp.scale = 1;
    const auto w = workloads::buildKernel(kernel, wp);
    sim::MachineConfig cfg;
    cfg.numCores = cores;
    machine::Machine m(cfg, w.program, fourPolicies());
    const machine::RecordingResult rec = m.run();

    RecordedRun out;
    out.memoryFingerprint = rec.memoryFingerprint;
    out.totalInstructions = rec.totalInstructions;
    for (const auto &policy_logs : rec.logs) {
        std::vector<std::vector<std::uint8_t>> per_core;
        for (const auto &log : policy_logs)
            per_core.push_back(rnr::pack(log).bytes);
        out.packedLogs.push_back(std::move(per_core));
    }
    return out;
}

/** The same kernel recorded several times in one sweep batch. */
std::vector<RecordedRun>
sweepRecord(const std::string &kernel, std::uint32_t workers,
            std::size_t copies)
{
    sim::SweepRunner runner(workers);
    return sim::sweepMap<RecordedRun>(
        runner, copies,
        [&kernel](std::size_t, std::uint64_t) {
            return recordOnce(kernel, 4);
        });
}

TEST(SweepDeterminism, OneAndEightWorkersProduceIdenticalRecordings)
{
    // Several concurrent copies of the same recording maximize the
    // chance of exposing cross-job interference under 8 workers.
    for (const char *kernel : {"fft", "radix"}) {
        const std::vector<RecordedRun> serial = sweepRecord(kernel, 1, 8);
        const std::vector<RecordedRun> parallel =
            sweepRecord(kernel, 8, 8);
        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].memoryFingerprint,
                      parallel[i].memoryFingerprint)
                << kernel << " copy " << i;
            EXPECT_EQ(serial[i].totalInstructions,
                      parallel[i].totalInstructions)
                << kernel << " copy " << i;
            ASSERT_EQ(serial[i].packedLogs.size(),
                      parallel[i].packedLogs.size());
            for (std::size_t p = 0; p < serial[i].packedLogs.size(); ++p)
                EXPECT_EQ(serial[i].packedLogs[p],
                          parallel[i].packedLogs[p])
                    << kernel << " copy " << i << " policy " << p;
        }
    }
}

TEST(SweepDeterminism, JobSeedsDependOnlyOnIndex)
{
    sim::SweepRunner one(1, 42);
    sim::SweepRunner eight(8, 42);
    for (std::uint64_t i = 0; i < 100; ++i) {
        EXPECT_EQ(one.jobSeed(i), eight.jobSeed(i));
        EXPECT_NE(one.jobSeed(i), 0u);
        if (i > 0)
            EXPECT_NE(one.jobSeed(i), one.jobSeed(i - 1));
    }
    sim::SweepRunner other(8, 43);
    EXPECT_NE(one.jobSeed(0), other.jobSeed(0));
}

TEST(SweepDeterminism, ResultsCollectInSubmissionOrder)
{
    sim::SweepRunner runner(8);
    const std::vector<std::size_t> out = sim::sweepMap<std::size_t>(
        runner, 64, [](std::size_t i, std::uint64_t) { return i * 3; });
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * 3);
}

TEST(SweepDeterminism, ThroughputStatsAccumulate)
{
    sim::SweepRunner runner(4);
    for (int i = 0; i < 10; ++i)
        runner.enqueue([&runner] { runner.countInstructions(1000); });
    const sim::SweepStats stats = runner.run();
    EXPECT_EQ(stats.jobsRun, 10u);
    EXPECT_EQ(stats.totalInstructions, 10'000u);
    EXPECT_EQ(stats.workers, 4u);
    EXPECT_GE(stats.wallSeconds, 0.0);
    EXPECT_GT(stats.instructionsPerSecond(), 0.0);
}

} // namespace
