/**
 * @file
 * Cross-policy invariants over identical executions. Because the
 * MrrHub records all four configurations from one TRAQ ("record once,
 * log many"), the logs describe the very same execution and must obey:
 *
 *  - Opt never logs more reordered accesses than Base (at equal
 *    interval caps): the Snoop Table only filters, never adds.
 *  - A capped recorder never logs fewer intervals than an uncapped one
 *    (same mode).
 *  - Every policy's log replays the same instruction stream: identical
 *    total instruction counts.
 *  - Reordered accesses are a subset of the accesses that performed
 *    out of program order... except stores counted after an interval
 *    change (perform-at-head still precedes counting), so we check the
 *    weaker, always-true direction: Opt-reordered <= Base-reordered.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "rnr/log.hh"
#include "workloads/kernels.hh"

namespace
{

using namespace rr;

class PolicyInvariants : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PolicyInvariants, HoldAcrossConfigurations)
{
    workloads::WorkloadParams wp;
    wp.numThreads = 4;
    wp.scale = 1;
    auto w = workloads::buildKernel(GetParam(), wp);

    sim::MachineConfig cfg;
    cfg.numCores = 4;
    std::vector<sim::RecorderConfig> policies(4);
    policies[0] = {sim::RecorderMode::Base, 4096};
    policies[1] = {sim::RecorderMode::Base, 0};
    policies[2] = {sim::RecorderMode::Opt, 4096};
    policies[3] = {sim::RecorderMode::Opt, 0};

    machine::Machine m(cfg, w.program, policies);
    auto rec = m.run(500'000'000ULL);

    rnr::LogStats stats[4];
    for (int p = 0; p < 4; ++p) {
        for (const auto &log : rec.logs[p])
            stats[p].accumulate(log);
    }

    // Same execution: every log replays the same instruction stream.
    for (int p = 0; p < 4; ++p)
        EXPECT_EQ(stats[p].instructions(), rec.totalInstructions)
            << "policy " << p;

    // Opt filters Base's reordered set (same interval cap).
    EXPECT_LE(stats[2].reordered(), stats[0].reordered()); // 4K
    EXPECT_LE(stats[3].reordered(), stats[1].reordered()); // INF

    // Caps only add interval boundaries.
    EXPECT_GE(stats[0].intervals, stats[1].intervals); // Base
    EXPECT_GE(stats[2].intervals, stats[3].intervals); // Opt

    // Opt's log is never larger than Base's at the same cap: same
    // frames, same or fewer reordered entries, same or fewer blocks.
    EXPECT_LE(stats[2].totalBits, stats[0].totalBits);
    EXPECT_LE(stats[3].totalBits, stats[1].totalBits);

    // Reordered accesses cannot exceed the truly out-of-order ones
    // plus interval-straddling stores; sanity-bound them by the OOO
    // count plus total stores.
    std::uint64_t ooo = 0, mem_total = 0;
    for (sim::CoreId c = 0; c < 4; ++c) {
        ooo += m.hub(c).stats().counterValue("ooo_loads") +
               m.hub(c).stats().counterValue("ooo_stores");
        mem_total += m.hub(c).stats().counterValue("counted_mem");
    }
    EXPECT_LE(stats[2].reordered(), mem_total);
    EXPECT_LE(stats[0].reorderedLoads, mem_total);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, PolicyInvariants,
    ::testing::ValuesIn(rr::workloads::kernelNames()),
    [](const auto &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
